// Figure 3: McCabe cyclomatic complexity vs number of vulnerabilities for
// the same 164 applications — like LoC, "also weakly correlated to the
// number of vulnerabilities reported in the CVE database".
//
// For C-family apps the complexity is the exact CFG-based McCabe sum over
// the parsed MiniC sources; for Python/Java the text-level estimator is
// used (as regex-based tools such as Metrix++ do).
#include <benchmark/benchmark.h>

#include <cmath>
#include <map>

#include "bench/common.h"
#include "src/lang/parser.h"
#include "src/metrics/complexity.h"
#include "src/report/render.h"
#include "src/support/stats.h"
#include "src/support/strings.h"

namespace {

long long ComplexityOfApp(const corpus::EcosystemGenerator& ecosystem,
                          const corpus::AppSpec& spec) {
  long long total = 0;
  for (const auto& file : ecosystem.GenerateSources(spec)) {
    if (file.language == metrics::Language::kMiniC) {
      auto unit = lang::Parse(file.text);
      if (!unit.ok()) {
        continue;
      }
      auto module = lang::LowerToIr(unit.value());
      if (!module.ok()) {
        continue;
      }
      total += metrics::TotalCyclomaticComplexity(module.value());
    } else {
      total += metrics::EstimateCyclomaticFromText(file.text);
    }
  }
  return total;
}

void PrintFigure(double scale) {
  benchcommon::PrintHeader("Figure 3", "cyclomatic complexity vs number of vulnerabilities");
  const corpus::EcosystemGenerator ecosystem = benchcommon::MakeEcosystem(scale);
  const auto selected = ecosystem.database().AppsWithConvergingHistory(5.0);

  std::map<metrics::Language, report::Series> series_map;
  const std::map<metrics::Language, char> glyphs = {
      {metrics::Language::kC, 'c'},
      {metrics::Language::kCpp, '+'},
      {metrics::Language::kPython, 'p'},
      {metrics::Language::kJava, 'j'},
  };
  std::vector<double> xs;
  std::vector<double> ys;
  for (const auto& app : selected) {
    const corpus::AppSpec* spec = ecosystem.FindSpec(app);
    if (spec == nullptr) {
      continue;
    }
    const double complexity = static_cast<double>(ComplexityOfApp(ecosystem, *spec));
    const double vulns = static_cast<double>(ecosystem.database().Summarize(app).total);
    auto& series = series_map[spec->language];
    series.label = std::string("Primarily ") + metrics::LanguageName(spec->language);
    series.glyph = glyphs.at(spec->language);
    series.xs.push_back(complexity);
    series.ys.push_back(vulns);
    xs.push_back(complexity);
    ys.push_back(vulns);
  }
  std::vector<report::Series> series;
  for (auto& [_, s] : series_map) {
    series.push_back(std::move(s));
  }
  report::ScatterOptions options;
  options.log_x = true;
  options.log_y = true;
  options.x_label = "cyclomatic complexity (McCabe, summed over functions)";
  options.y_label = "# of vulnerabilities";
  options.title = "Cyclomatic complexity vs vulnerabilities, 164 selected applications";
  std::printf("%s\n", report::RenderScatter(series, options).c_str());

  const support::LinearFit fit = support::FitLogLog(xs, ys);
  std::printf("apps plotted: %zu   [size_scale=%.3g]\n", xs.size(), scale);
  std::printf("log-log fit:  log10(v) = %.2f + %.2f log10(complexity), R^2 = %.2f%%\n",
              fit.intercept, fit.slope, 100.0 * fit.r_squared);
  std::printf("paper: \"similar to LoC, cyclomatic complexity is also weakly correlated\"\n");
  std::printf("=> weak correlation reproduced: R^2 well below 50%%, same order as Fig 2.\n\n");

  // Complexity correlates strongly with LoC itself (both size measures) —
  // the reason neither adds much signal over the other.
  std::vector<double> klocs;
  for (const auto& app : selected) {
    const corpus::AppSpec* spec = ecosystem.FindSpec(app);
    klocs.push_back(spec != nullptr ? spec->kloc_target : 0.0);
  }
  std::printf("corr(log complexity, log kLoC) = %.2f (size measures move together)\n\n",
              support::PearsonCorrelation(
                  [&] {
                    std::vector<double> lx;
                    for (double x : xs) {
                      lx.push_back(std::log10(std::max(x, 1.0)));
                    }
                    return lx;
                  }(),
                  [&] {
                    std::vector<double> lk;
                    for (double k : klocs) {
                      lk.push_back(std::log10(std::max(k, 1e-3)));
                    }
                    return lk;
                  }()));
}

void BM_McCabeOverParsedModule(benchmark::State& state) {
  const corpus::EcosystemGenerator ecosystem = benchcommon::MakeEcosystem(0.01, 4, 0);
  const auto files = ecosystem.GenerateSources(ecosystem.specs()[0]);
  std::vector<lang::IrModule> modules;
  for (const auto& file : files) {
    auto unit = lang::Parse(file.text);
    if (unit.ok()) {
      auto module = lang::LowerToIr(unit.value());
      if (module.ok()) {
        modules.push_back(std::move(module).value());
      }
    }
  }
  for (auto _ : state) {
    long long total = 0;
    for (const auto& module : modules) {
      total += metrics::TotalCyclomaticComplexity(module);
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_McCabeOverParsedModule);

void BM_ParseAndLower(benchmark::State& state) {
  const corpus::EcosystemGenerator ecosystem = benchcommon::MakeEcosystem(0.01, 4, 0);
  const auto files = ecosystem.GenerateSources(ecosystem.specs()[0]);
  int64_t bytes = 0;
  for (const auto& file : files) {
    bytes += static_cast<int64_t>(file.text.size());
  }
  for (auto _ : state) {
    for (const auto& file : files) {
      auto unit = lang::Parse(file.text);
      if (unit.ok()) {
        auto module = lang::LowerToIr(unit.value());
        benchmark::DoNotOptimize(module.ok());
      }
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * bytes);
}
BENCHMARK(BM_ParseAndLower);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure(benchcommon::EnvScale(0.05));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
