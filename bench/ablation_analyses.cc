// Ablation (§4.2): "the concern with many bug-finding tools is a high false
// positive rate". Compares the library's three vulnerability detectors on
// generated programs, scored against fuzzing ground truth:
//
//   lint       — syntactic, flow-insensitive (cheapest, noisiest)
//   intervals  — abstract interpretation, sound may-analysis
//   symexec    — bounded symbolic execution (most precise, costliest)
//
// Ground truth: each program is fuzzed through the concrete interpreter;
// a line is "confirmed vulnerable" if some input faults there. Detector
// recall is measured against confirmed lines; flagged-but-unconfirmed lines
// are reported separately (they may be real but unfuzzed, or false alarms).
#include <benchmark/benchmark.h>

#include <chrono>
#include <set>

#include "bench/common.h"
#include "src/corpus/codegen.h"
#include "src/dataflow/intervals.h"
#include "src/lang/interp.h"
#include "src/lang/parser.h"
#include "src/metrics/callgraph.h"
#include "src/metrics/smells.h"
#include "src/report/render.h"
#include "src/support/strings.h"
#include "src/symexec/executor.h"

namespace {

struct DetectorScore {
  long long flagged = 0;
  long long confirmed_hits = 0;  // Flagged lines with a fuzz-confirmed fault.
  long long misses = 0;          // Confirmed lines the detector did not flag.
  double millis = 0.0;

  double Recall(long long confirmed_total) const {
    return confirmed_total > 0
               ? static_cast<double>(confirmed_hits) / static_cast<double>(confirmed_total)
               : 1.0;
  }
  double ConfirmedRate() const {
    return flagged > 0 ? static_cast<double>(confirmed_hits) / static_cast<double>(flagged)
                       : 1.0;
  }
};

// Fuzzes every root of the module; returns the set of fault lines.
std::set<int> FuzzGroundTruth(const lang::IrModule& module, uint64_t seed) {
  std::set<int> fault_lines;
  const metrics::CallGraph graph(module);
  support::Rng rng(seed);
  lang::InterpOptions interp_options;
  interp_options.max_steps = 8192;  // Generated loops can spin; keep trials cheap.
  for (const auto& root : graph.Roots()) {
    const lang::IrFunction* fn = module.FindFunction(root);
    for (int trial = 0; trial < 60; ++trial) {
      std::vector<int64_t> inputs;
      std::vector<int64_t> args;
      for (int i = 0; i < 16; ++i) {
        inputs.push_back(rng.NextBool(0.6)
                             ? static_cast<int64_t>(rng.NextBelow(24))
                             : static_cast<int64_t>(rng.NextBelow(1 << 13)) - (1 << 12));
      }
      for (size_t i = 0; i < fn->param_regs.size(); ++i) {
        args.push_back(static_cast<int64_t>(rng.NextBelow(1 << 13)) - (1 << 12));
      }
      const auto trace = lang::Execute(module, root, args, inputs, interp_options);
      if (trace.outcome == lang::ExecOutcome::kOutOfBounds ||
          trace.outcome == lang::ExecOutcome::kDivisionByZero) {
        fault_lines.insert(trace.fault_line);
      }
    }
  }
  return fault_lines;
}

std::set<int> LintLines(const lang::IrModule& module) {
  std::set<int> lines;
  for (const auto& signal : metrics::FindBugSignals(module)) {
    if (signal.kind == metrics::BugSignal::Kind::kUncheckedInputIndex ||
        signal.kind == metrics::BugSignal::Kind::kNonConstantDivisor) {
      lines.insert(signal.line);
    }
  }
  return lines;
}

std::set<int> IntervalLines(const lang::IrModule& module) {
  std::set<int> lines;
  for (const auto& fn : module.functions) {
    for (const auto& finding : dataflow::AnalyzeIntervals(fn).findings) {
      lines.insert(finding.line);
    }
  }
  return lines;
}

std::set<int> SymexecLines(const lang::IrModule& module) {
  std::set<int> lines;
  const metrics::CallGraph graph(module);
  symx::SymExecOptions options;
  options.max_paths = 24;
  options.max_steps_per_path = 768;
  options.max_total_steps = 1 << 13;
  options.max_solver_queries = 96;
  options.solver_conflict_budget = 400;
  options.max_expr_nodes = 128;
  options.exploit_sample_trials = 16;
  options.exploit_exact_cap = 4;
  for (const auto& root : graph.Roots()) {
    for (const auto& vuln : symx::Explore(module, root, options).vulns) {
      lines.insert(vuln.line);
    }
  }
  return lines;
}

void Score(DetectorScore& score, const std::set<int>& flagged,
           const std::set<int>& confirmed) {
  score.flagged += static_cast<long long>(flagged.size());
  for (const int line : flagged) {
    if (confirmed.contains(line)) {
      ++score.confirmed_hits;
    }
  }
  for (const int line : confirmed) {
    if (!flagged.contains(line)) {
      ++score.misses;
    }
  }
}

void PrintComparison() {
  benchcommon::PrintHeader("Ablation: analyses",
                           "lint vs abstract interpretation vs symbolic execution");
  DetectorScore lint;
  DetectorScore intervals;
  DetectorScore symexec;
  long long confirmed_total = 0;
  const int programs = 40;
  for (int p = 0; p < programs; ++p) {
    support::Rng rng(1000 + static_cast<uint64_t>(p) * 37);
    corpus::AppStyle style;
    style.complexity = rng.NextDouble() * 0.7;
    style.unsafety = rng.NextDouble();
    style.taintiness = rng.NextDouble();
    const std::string source = corpus::GenerateMiniCFile(rng, style, 150);
    auto unit = lang::Parse(source);
    if (!unit.ok()) {
      continue;
    }
    auto module = lang::LowerToIr(unit.value());
    if (!module.ok()) {
      continue;
    }
    const std::set<int> confirmed = FuzzGroundTruth(module.value(), 77 + p);
    confirmed_total += static_cast<long long>(confirmed.size());
    auto timed = [&](DetectorScore& score, auto detector) {
      const auto t0 = std::chrono::steady_clock::now();
      const std::set<int> flagged = detector(module.value());
      const auto t1 = std::chrono::steady_clock::now();
      score.millis +=
          std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count() / 1000.0;
      Score(score, flagged, confirmed);
    };
    timed(lint, LintLines);
    timed(intervals, IntervalLines);
    timed(symexec, SymexecLines);
  }

  std::vector<std::vector<std::string>> rows;
  auto add_row = [&](const char* name, const DetectorScore& score) {
    rows.push_back({name, std::to_string(score.flagged),
                    std::to_string(score.confirmed_hits),
                    support::Format("%.0f%%", 100.0 * score.Recall(confirmed_total)),
                    support::Format("%.0f%%", 100.0 * score.ConfirmedRate()),
                    support::Format("%.1f ms", score.millis)});
  };
  add_row("lint (syntactic)", lint);
  add_row("intervals (abstract interp.)", intervals);
  add_row("symexec (bounded paths)", symexec);
  std::printf("programs: %d, fuzz-confirmed vulnerable lines: %lld\n\n", programs,
              confirmed_total);
  std::printf("%s\n", report::RenderTable({"detector", "flagged", "confirmed", "recall",
                                           "confirmed rate", "total time"},
                                          rows)
                          .c_str());
  std::printf(
      "expected shape (§4.2): the cheap syntactic pass over-reports (low confirmed\n"
      "rate), the sound interval analysis recalls every confirmed line at moderate\n"
      "noise, and symbolic execution buys the highest confirmed rate at the highest\n"
      "cost — the spread the paper proposes to feed into the learner rather than\n"
      "trusting any single tool.\n\n");
}

void BM_LintDetector(benchmark::State& state) {
  support::Rng rng(55);
  corpus::AppStyle style;
  const std::string source = corpus::GenerateMiniCFile(rng, style, 200);
  auto module = lang::LowerToIr(lang::Parse(source).value()).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(LintLines(module).size());
  }
}
BENCHMARK(BM_LintDetector)->Unit(benchmark::kMicrosecond);

void BM_IntervalDetector(benchmark::State& state) {
  support::Rng rng(55);
  corpus::AppStyle style;
  const std::string source = corpus::GenerateMiniCFile(rng, style, 200);
  auto module = lang::LowerToIr(lang::Parse(source).value()).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntervalLines(module).size());
  }
}
BENCHMARK(BM_IntervalDetector)->Unit(benchmark::kMicrosecond);

void BM_SymexecDetector(benchmark::State& state) {
  support::Rng rng(55);
  corpus::AppStyle style;
  const std::string source = corpus::GenerateMiniCFile(rng, style, 200);
  auto module = lang::LowerToIr(lang::Parse(source).value()).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SymexecLines(module).size());
  }
}
BENCHMARK(BM_SymexecDetector)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
