// Analysis-as-a-service throughput: the clair::Scheduler serving an
// open-loop stream of mixed score requests, batched vs unbatched.
//
// The mixed workload interleaves priorities, extract-only probes, and a
// duplicate-heavy tail (many requests for identical sources, as a fleet of
// CI jobs scoring the same release would issue). Batched mode coalesces the
// duplicates into one extraction per content key and funnels every
// surviving row through one columnar forest call per hypothesis; unbatched
// mode serves the same queue as waves of one. Both run against
// cache-disabled testbeds so the comparison isolates the scheduler's own
// batching from the persistent feature cache (a warm-cache section reports
// the cache counters separately).
//
// Every result is compared bit-for-bit against an independent synchronous
// sweep (ExtractFeatures + per-hypothesis PredictRisk + the severity
// weighting of SecurityEvaluator::Evaluate); any mismatch fails the bench.
// Emits BENCH_serving.json. `--smoke` runs a reduced workload and still
// writes the JSON (the ctest `servperf` label runs this mode).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/clair/evaluator.h"
#include "src/clair/hypothesis.h"
#include "src/clair/pipeline.h"
#include "src/clair/scheduler.h"
#include "src/clair/testbed.h"
#include "src/corpus/codegen.h"
#include "src/support/rng.h"
#include "src/support/strings.h"

namespace {

double Seconds(std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

double LatencyMs(const clair::ScoreResult& result) {
  return std::chrono::duration<double, std::milli>(result.resolved_at -
                                                   result.submitted_at)
      .count();
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) {
    return 0.0;
  }
  std::sort(sorted.begin(), sorted.end());
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

// One synthetic single-file subject per unique content key.
std::vector<metrics::SourceFile> MakeSubjectFiles(uint64_t seed, int lines) {
  support::Rng rng(seed);
  corpus::AppStyle style;
  metrics::SourceFile file;
  file.path = support::Format("subject_%llu.c",
                              static_cast<unsigned long long>(seed));
  file.language = metrics::Language::kMiniC;
  file.text = corpus::GenerateMiniCFile(rng, style, lines);
  return {file};
}

struct Workload {
  std::vector<clair::ScoreRequest> requests;
  size_t unique_subjects = 0;
};

// Deterministic mixed workload: `unique` distinct subjects, each repeated a
// varying number of times (the duplicate-heavy tail that coalescing
// exploits), shuffled priorities, and a sprinkle of extract-only probes.
Workload MakeWorkload(size_t unique, size_t total) {
  Workload workload;
  workload.unique_subjects = unique;
  std::vector<std::vector<metrics::SourceFile>> subjects;
  subjects.reserve(unique);
  for (size_t s = 0; s < unique; ++s) {
    subjects.push_back(MakeSubjectFiles(100 + s, 60 + static_cast<int>(s) * 7));
  }
  support::Rng rng(42);
  for (size_t i = 0; i < total; ++i) {
    const size_t s = i % unique;  // Round-robin: every subject duplicated.
    clair::ScoreRequest request;
    request.subject = support::Format("subject_%zu", s);
    request.files = subjects[s];
    request.priority = static_cast<int>(rng.NextBelow(3));
    request.extract_only = i % 7 == 6;
    workload.requests.push_back(std::move(request));
  }
  return workload;
}

// Synchronous per-subject reference, computed exactly as the evaluator does:
// one extraction, per-hypothesis PredictRisk in StandardHypotheses() order,
// severity-weighted overall risk.
struct Reference {
  metrics::FeatureVector features;
  std::vector<std::string> hypothesis_ids;
  std::vector<double> hypothesis_risks;
  double overall_risk = 0.0;
};

Reference MakeReference(const clair::Testbed& testbed,
                        const clair::TrainedModel& model,
                        const std::vector<metrics::SourceFile>& files) {
  Reference ref;
  ref.features = testbed.ExtractFeatures(files);
  double weighted = 0.0;
  double weight_total = 0.0;
  for (const auto& hypothesis : clair::StandardHypotheses()) {
    const clair::HypothesisModel* bundle = model.ForHypothesis(hypothesis.id);
    if (bundle == nullptr) {
      continue;
    }
    const double risk = bundle->PredictRisk(ref.features);
    const double weight = clair::HypothesisSeverityWeight(hypothesis.id);
    ref.hypothesis_ids.push_back(hypothesis.id);
    ref.hypothesis_risks.push_back(risk);
    weighted += weight * risk;
    weight_total += weight;
  }
  ref.overall_risk = weight_total > 0.0 ? weighted / weight_total : 0.0;
  return ref;
}

// Exact (bitwise, via ==) comparison of a served result against the
// synchronous reference. Returns a description of the first mismatch, or
// empty when identical.
std::string CompareToReference(const clair::ScoreResult& result,
                               const Reference& ref, bool extract_only) {
  if (result.state != clair::RequestState::kDone) {
    return support::Format("request %llu resolved %s, expected done",
                           static_cast<unsigned long long>(result.id),
                           clair::RequestStateName(result.state));
  }
  if (result.features.values() != ref.features.values()) {
    return support::Format("request %llu: feature row differs from sync sweep",
                           static_cast<unsigned long long>(result.id));
  }
  if (extract_only) {
    return result.hypothesis_risks.empty()
               ? std::string()
               : support::Format("request %llu: extract-only carries risks",
                                 static_cast<unsigned long long>(result.id));
  }
  if (result.hypothesis_ids != ref.hypothesis_ids) {
    return support::Format("request %llu: hypothesis set differs",
                           static_cast<unsigned long long>(result.id));
  }
  for (size_t i = 0; i < ref.hypothesis_risks.size(); ++i) {
    if (result.hypothesis_risks[i] != ref.hypothesis_risks[i]) {
      return support::Format(
          "request %llu: risk[%s] %.17g != sync %.17g",
          static_cast<unsigned long long>(result.id),
          ref.hypothesis_ids[i].c_str(), result.hypothesis_risks[i],
          ref.hypothesis_risks[i]);
    }
  }
  if (result.overall_risk != ref.overall_risk) {
    return support::Format("request %llu: overall %.17g != sync %.17g",
                           static_cast<unsigned long long>(result.id),
                           result.overall_risk, ref.overall_risk);
  }
  return std::string();
}

struct ModeResult {
  double seconds = 0.0;
  double requests_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  clair::SchedulerStats stats;
  clair::FeatureCacheStats cache;
  std::string mismatch;  // First output divergence from the sync reference.
};

// Serves the whole workload through one scheduler: open-loop submit of
// every request up front, then a drain to completion. `testbed` should be
// cache-free so both modes pay full extraction cost per non-coalesced
// request.
ModeResult ServeWorkload(const clair::Testbed& testbed,
                         const clair::TrainedModel& model,
                         const Workload& workload,
                         const std::map<std::string, Reference>& references,
                         bool batching) {
  ModeResult mode;
  std::vector<uint64_t> ids;
  ids.reserve(workload.requests.size());
  const auto t0 = std::chrono::steady_clock::now();
  {
    clair::SchedulerOptions options;
    options.batching = batching;
    clair::Scheduler scheduler(testbed, model, options);
    for (const auto& request : workload.requests) {
      ids.push_back(scheduler.Submit(request));
    }
    scheduler.Drain();
    mode.seconds = Seconds(t0, std::chrono::steady_clock::now());
    mode.requests_per_sec =
        static_cast<double>(ids.size()) / std::max(mode.seconds, 1e-9);
    std::vector<double> latencies;
    latencies.reserve(ids.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      const clair::ScoreResult result = scheduler.Wait(ids[i]);
      latencies.push_back(LatencyMs(result));
      if (mode.mismatch.empty()) {
        const auto& request = workload.requests[i];
        mode.mismatch = CompareToReference(
            result, references.at(request.subject), request.extract_only);
      }
    }
    mode.p50_ms = Percentile(latencies, 0.50);
    mode.p99_ms = Percentile(latencies, 0.99);
    mode.stats = scheduler.stats();
  }
  mode.cache = testbed.cache_stats();
  return mode;
}

std::string ModeJson(const ModeResult& mode, size_t requests) {
  return support::Format(
      "{\"requests\": %zu, \"seconds\": %.3f, \"requests_per_sec\": %.2f, "
      "\"p50_ms\": %.2f, \"p99_ms\": %.2f, \"waves\": %llu, "
      "\"coalesced\": %llu, \"predict_batches\": %llu, "
      "\"predict_rows\": %llu}",
      requests, mode.seconds, mode.requests_per_sec, mode.p50_ms, mode.p99_ms,
      static_cast<unsigned long long>(mode.stats.waves),
      static_cast<unsigned long long>(mode.stats.coalesced),
      static_cast<unsigned long long>(mode.stats.predict_batches),
      static_cast<unsigned long long>(mode.stats.predict_rows));
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  benchcommon::PrintHeader(
      "Serving throughput",
      "async stage-DAG scheduler, cross-request batching vs waves of one");

  // Train once on the small shared corpus (same shape as the mlperf bench).
  corpus::CorpusOptions corpus_options;
  corpus_options.mature_apps = 48;
  corpus_options.immature_apps = 8;
  corpus_options.size_scale = 0.01;
  corpus::EcosystemGenerator ecosystem(corpus_options);
  clair::TestbedOptions train_options;
  train_options.deep_analysis_max_files = 1;
  clair::Testbed train_testbed(ecosystem, train_options);
  clair::PipelineOptions pipeline_options;
  pipeline_options.cv_folds = 5;
  const clair::TrainingPipeline pipeline(train_testbed.Collect(),
                                         pipeline_options);
  const clair::TrainedModel model = pipeline.TrainFinal();

  const size_t unique = smoke ? 4 : 10;
  const size_t total = smoke ? 20 : 60;
  const Workload workload = MakeWorkload(unique, total);

  // Cache-free testbeds: one per mode so extraction and coalescing counters
  // stay per-mode, plus one for the synchronous reference sweep.
  clair::TestbedOptions serve_options;
  serve_options.deep_analysis_max_files = 1;
  serve_options.cache_features = false;
  clair::Testbed reference_testbed(ecosystem, serve_options);
  clair::Testbed unbatched_testbed(ecosystem, serve_options);
  clair::Testbed batched_testbed(ecosystem, serve_options);

  std::map<std::string, Reference> references;
  for (size_t s = 0; s < workload.unique_subjects; ++s) {
    const auto& request = workload.requests[s];
    references.emplace(request.subject,
                       MakeReference(reference_testbed, model, request.files));
  }

  std::printf("workload: %zu requests over %zu unique subjects "
              "(duplicate-heavy, mixed priorities, 1-in-7 extract-only)\n\n",
              workload.requests.size(), workload.unique_subjects);

  const ModeResult unbatched =
      ServeWorkload(unbatched_testbed, model, workload, references, false);
  const ModeResult batched =
      ServeWorkload(batched_testbed, model, workload, references, true);
  const double speedup =
      batched.requests_per_sec / std::max(unbatched.requests_per_sec, 1e-9);

  const auto print_mode = [&](const char* name, const ModeResult& mode) {
    std::printf("%-10s %8.2f req/s   p50 %8.2f ms   p99 %8.2f ms   "
                "waves %llu   coalesced %llu   predict rows %llu\n",
                name, mode.requests_per_sec, mode.p50_ms, mode.p99_ms,
                static_cast<unsigned long long>(mode.stats.waves),
                static_cast<unsigned long long>(mode.stats.coalesced),
                static_cast<unsigned long long>(mode.stats.predict_rows));
  };
  print_mode("unbatched", unbatched);
  print_mode("batched", batched);
  std::printf("speedup (batched vs unbatched): %.2fx\n\n", speedup);

  // Warm-cache section: same workload against a cache-enabled testbed, to
  // report the feature-cache counters the scheduler surfaces (hits from
  // repeats across waves, coalesced fills from duplicates within one).
  clair::TestbedOptions cached_options;
  cached_options.deep_analysis_max_files = 1;
  clair::Testbed cached_testbed(ecosystem, cached_options);
  const ModeResult cached =
      ServeWorkload(cached_testbed, model, workload, references, true);
  std::printf("warm cache: hits %llu  misses %llu  coalesced fills %llu\n",
              static_cast<unsigned long long>(cached.cache.hits),
              static_cast<unsigned long long>(cached.cache.misses),
              static_cast<unsigned long long>(cached.cache.coalesced_fills));

  bool ok = true;
  for (const auto* mode : {&unbatched, &batched, &cached}) {
    if (!mode->mismatch.empty()) {
      std::fprintf(stderr, "OUTPUT MISMATCH: %s\n", mode->mismatch.c_str());
      ok = false;
    }
  }
  if (ok) {
    std::printf("all %zu served results bit-identical to the synchronous "
                "sweep in every mode\n",
                workload.requests.size() * 3);
  }

  benchcommon::JsonSink json;
  json.Add("bench", "serving_throughput", true);
  json.AddInt("requests", workload.requests.size());
  json.AddInt("unique_subjects", workload.unique_subjects);
  json.AddRaw("unbatched", ModeJson(unbatched, workload.requests.size()));
  json.AddRaw("batched", ModeJson(batched, workload.requests.size()));
  json.AddNumber("speedup_batched_vs_unbatched", speedup);
  json.AddRaw(
      "warm_cache",
      support::Format("{\"hits\": %llu, \"misses\": %llu, "
                      "\"coalesced_fills\": %llu}",
                      static_cast<unsigned long long>(cached.cache.hits),
                      static_cast<unsigned long long>(cached.cache.misses),
                      static_cast<unsigned long long>(
                          cached.cache.coalesced_fills)));
  json.Add("outputs_identical", ok ? "true" : "false", false);
  const char* json_path = "BENCH_serving.json";
  if (!json.WriteTo(json_path)) {
    std::fprintf(stderr, "failed to write %s\n", json_path);
    return 1;
  }
  std::printf("wrote %s\n", json_path);
  if (!ok) {
    return 1;
  }
  // The smoke workload is too small to hold the throughput bar reliably
  // under ctest parallelism; the full run enforces it.
  if (!smoke && speedup < 2.0) {
    std::fprintf(stderr, "speedup %.2fx below the 2x serving bar\n", speedup);
    return 1;
  }
  return 0;
}
