// Figure 1: how top systems venues evaluate security — papers using lines
// of code, CVE report counts, or formal verification, per venue.
//
// Reproduces the stacked per-venue counts (totals 384 / 116 / 31) and
// includes google-benchmark timings for the survey scan.
#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "src/corpus/survey.h"
#include "src/report/render.h"

namespace {

void PrintFigure() {
  benchcommon::PrintHeader(
      "Figure 1", "papers using LoC / CVE counts / formal verification, by venue");
  const auto papers = corpus::GenerateSurveyCorpus();

  const corpus::EvalMethod methods[] = {corpus::EvalMethod::kLinesOfCode,
                                        corpus::EvalMethod::kCveReports,
                                        corpus::EvalMethod::kFormalVerification};
  std::vector<std::vector<std::string>> rows;
  for (const auto method : methods) {
    std::vector<std::string> row = {corpus::EvalMethodName(method)};
    int total = 0;
    for (const auto& venue : corpus::SurveyVenues()) {
      const int count = corpus::CountSurvey(papers, venue, method);
      row.push_back(std::to_string(count));
      total += count;
    }
    row.push_back(std::to_string(total));
    rows.push_back(std::move(row));
  }
  std::vector<std::string> header = {"evaluation method"};
  for (const auto& venue : corpus::SurveyVenues()) {
    header.push_back(venue);
  }
  header.push_back("TOTAL");
  std::printf("%s\n", report::RenderTable(header, rows).c_str());

  // The figure's horizontal bars (totals per method).
  std::vector<report::Bar> bars;
  for (const auto method : methods) {
    int total = 0;
    for (const auto& venue : corpus::SurveyVenues()) {
      total += corpus::CountSurvey(papers, venue, method);
    }
    bars.push_back({corpus::EvalMethodName(method), static_cast<double>(total)});
  }
  std::printf("%s\n", report::RenderBars(bars, 60, "Papers by evaluation method").c_str());
  std::printf("paper reports: LoC=384, CVE=116, formally verified/proved=31\n\n");
}

void BM_SurveyScan(benchmark::State& state) {
  const auto papers = corpus::GenerateSurveyCorpus();
  for (auto _ : state) {
    int total = 0;
    for (const auto& venue : corpus::SurveyVenues()) {
      total += corpus::CountSurvey(papers, venue, corpus::EvalMethod::kLinesOfCode);
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(papers.size()));
}
BENCHMARK(BM_SurveyScan);

void BM_SurveyGeneration(benchmark::State& state) {
  for (auto _ : state) {
    auto papers = corpus::GenerateSurveyCorpus();
    benchmark::DoNotOptimize(papers.data());
  }
}
BENCHMARK(BM_SurveyGeneration);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
