// Out-of-core feature-store bench: ingest throughput, peak-RSS comparison of
// streamed vs in-memory forest training on the same store, and function-level
// top-K ranking quality against the corpus generator's latent truth. Emits
// BENCH_store.json and exits non-zero if the streamed model's structure or
// predictions differ from the in-memory model's — the bench doubles as the
// scale-sized equivalence gate.
//
// Peak RSS is measured honestly: each phase (ingest / train-stream /
// train-memory) re-execs this binary as a child process, and the parent reads
// the child's ru_maxrss from wait4. In-process phase timing would share one
// address space and the high-water mark of whichever phase peaked first.
//
// `--smoke` runs a reduced row count for CI (ctest -L storeperf);
// CLAIR_STORE_ROWS overrides the full-run row count (default 1,000,000).
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/clair/function_rank.h"
#include "src/clair/testbed.h"
#include "src/metrics/extract.h"
#include "src/ml/feature_store.h"
#include "src/ml/tree.h"
#include "src/report/render.h"
#include "src/support/hash.h"
#include "src/support/rng.h"
#include "src/support/strings.h"

namespace {

using benchcommon::JsonSink;

constexpr size_t kFeatures = 8;
constexpr uint64_t kRowSeed = 20170508;

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

std::vector<std::string> FeatureNames() {
  std::vector<std::string> names;
  for (size_t j = 0; j < kFeatures; ++j) {
    names.push_back(support::Format("f%zu", j));
  }
  return names;
}

// One deterministic synthetic row: low-cardinality, binary, and continuous
// columns plus a learnable target.
void FillRow(support::Rng& rng, std::vector<double>& row, double& target) {
  row[0] = static_cast<double>(rng.NextBelow(9));
  row[1] = static_cast<double>(rng.NextBelow(5)) * 0.25;
  row[2] = rng.NextBool(0.4) ? 1.0 : 0.0;
  row[3] = static_cast<double>(rng.NextBelow(64));
  row[4] = rng.NextDouble() * 100.0;
  row[5] = rng.NextDouble() * rng.NextDouble();
  row[6] = static_cast<double>(rng.NextBelow(3));
  row[7] = row[0] * 0.5 + rng.NextDouble();
  const bool hot = row[0] + 3.0 * row[2] + 0.05 * row[4] > 7.0;
  target = hot != rng.NextBool(0.1) ? 1.0 : 0.0;
}

// --- Child phases (re-exec'd; results go to a key=value file) ---------------

void WriteResult(const std::string& out, const std::map<std::string, std::string>& kv) {
  std::ofstream file(out);
  for (const auto& [key, value] : kv) {
    file << key << "=" << value << "\n";
  }
}

int PhaseIngest(const std::string& path, const std::string& out, size_t rows) {
  auto writer = ml::FeatureStoreWriter::Create(path, FeatureNames(), {"neg", "pos"});
  if (!writer.ok()) {
    std::fprintf(stderr, "ingest: %s\n", writer.error().message().c_str());
    return 1;
  }
  support::Rng rng(kRowSeed);
  std::vector<double> row(kFeatures);
  double target = 0.0;
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < rows; ++i) {
    FillRow(rng, row, target);
    // ~100k distinct names: the string table dedups the rest.
    writer.value()->Append(support::Format("fn_%zu", i % 100000), row, target);
  }
  auto finished = writer.value()->Finish();
  const auto t1 = std::chrono::steady_clock::now();
  if (!finished.ok()) {
    std::fprintf(stderr, "ingest: %s\n", finished.error().message().c_str());
    return 1;
  }
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  WriteResult(out, {{"seconds", support::Format("%.6f", Seconds(t0, t1))},
                    {"rows", std::to_string(finished.value())},
                    {"file_bytes", std::to_string(static_cast<long long>(f.tellg()))}});
  return 0;
}

ml::ForestOptions BenchForestOptions(int trees) {
  ml::ForestOptions options;
  options.num_trees = trees;
  options.seed = 7;
  options.tree.max_depth = 10;
  // The streaming path forces these; set them explicitly so the in-memory
  // run trains the identical forest.
  options.tree.split_mode = ml::SplitMode::kHistogram;
  options.tree.feature_sample = ml::FeatureSample::kStableByNode;
  return options;
}

// crc64 over PredictProba of every 997th store row: a compact fingerprint of
// model behaviour (not just structure). Walks chunk-by-chunk and releases
// each chunk's pages so the sweep itself stays inside the RSS budget.
uint64_t PredictionDigest(const ml::RandomForestClassifier& forest,
                          const ml::FeatureStore& store) {
  uint64_t state = support::kCrc64Init;
  std::vector<double> row(store.feature_names().size());
  for (size_t c = 0; c < store.num_chunks(); ++c) {
    const auto chunk = store.chunk(c);
    const size_t rows = chunk.targets.size();
    size_t local = (997 - chunk.row_begin % 997) % 997;
    for (; local < rows; local += 997) {
      for (size_t f = 0; f < row.size(); ++f) {
        row[f] = chunk.Column(f)[local];
      }
      const auto proba = forest.PredictProba(row);
      state = support::Crc64Update(state, proba.data(), proba.size() * sizeof(double));
    }
    store.ReleaseChunk(c);
  }
  return support::Crc64Finish(state);
}

int PhaseTrainStream(const std::string& path, const std::string& out, int trees) {
  auto store = ml::FeatureStore::Open(path);
  if (!store.ok()) {
    std::fprintf(stderr, "train-stream: %s\n", store.error().message().c_str());
    return 1;
  }
  ml::RandomForestClassifier forest(BenchForestOptions(trees));
  const auto t0 = std::chrono::steady_clock::now();
  forest.TrainStreaming(store.value());
  const auto t1 = std::chrono::steady_clock::now();
  WriteResult(out, {{"seconds", support::Format("%.6f", Seconds(t0, t1))},
                    {"digest", support::Format("%016llx",
                         static_cast<unsigned long long>(forest.StructureDigest()))},
                    {"pred", support::Format("%016llx",
                         static_cast<unsigned long long>(
                             PredictionDigest(forest, store.value())))}});
  return 0;
}

int PhaseTrainMemory(const std::string& path, const std::string& out, int trees) {
  auto store = ml::FeatureStore::Open(path);
  if (!store.ok()) {
    std::fprintf(stderr, "train-memory: %s\n", store.error().message().c_str());
    return 1;
  }
  // Materialise everything — the cost the streaming path avoids.
  const ml::Dataset data = store.value().ToDataset();
  std::vector<size_t> all_rows(data.num_rows());
  for (size_t i = 0; i < all_rows.size(); ++i) {
    all_rows[i] = i;
  }
  ml::RandomForestClassifier forest(BenchForestOptions(trees));
  const auto t0 = std::chrono::steady_clock::now();
  forest.TrainIndexed(data, all_rows);
  const auto t1 = std::chrono::steady_clock::now();
  WriteResult(out, {{"seconds", support::Format("%.6f", Seconds(t0, t1))},
                    {"digest", support::Format("%016llx",
                         static_cast<unsigned long long>(forest.StructureDigest()))},
                    {"pred", support::Format("%016llx",
                         static_cast<unsigned long long>(
                             PredictionDigest(forest, store.value())))}});
  return 0;
}

// --- Parent-side child driver -----------------------------------------------

struct ChildRun {
  int exit_code = -1;
  double maxrss_mb = 0.0;
  std::map<std::string, std::string> kv;
};

ChildRun RunChild(const std::vector<std::string>& args, const std::string& out) {
  ChildRun run;
  std::vector<char*> argv;
  static char self[] = "/proc/self/exe";
  argv.push_back(self);
  std::vector<std::string> storage = args;
  for (auto& arg : storage) {
    argv.push_back(arg.data());
  }
  argv.push_back(nullptr);
  const pid_t pid = fork();
  if (pid == 0) {
    execv("/proc/self/exe", argv.data());
    _exit(127);
  }
  if (pid < 0) {
    return run;
  }
  int status = 0;
  struct rusage usage;
  std::memset(&usage, 0, sizeof(usage));
  if (wait4(pid, &status, 0, &usage) != pid) {
    return run;
  }
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  run.maxrss_mb = static_cast<double>(usage.ru_maxrss) / 1024.0;  // KiB on Linux.
  std::ifstream file(out);
  std::string line;
  while (std::getline(file, line)) {
    const auto eq = line.find('=');
    if (eq != std::string::npos) {
      run.kv[line.substr(0, eq)] = line.substr(eq + 1);
    }
  }
  return run;
}

double KvDouble(const ChildRun& run, const std::string& key) {
  const auto it = run.kv.find(key);
  return it != run.kv.end() ? std::atof(it->second.c_str()) : 0.0;
}

std::string KvString(const ChildRun& run, const std::string& key) {
  const auto it = run.kv.find(key);
  return it != run.kv.end() ? it->second : "<missing>";
}

// --- Ranking section (in-process; the corpus is small) ----------------------

void PrintRanking(bool smoke, JsonSink& json) {
  benchcommon::PrintHeader(
      "Function ranking",
      "top-K triage quality vs the generator's latent CVE attribution");
  const auto ecosystem = smoke ? benchcommon::MakeEcosystem(0.01, 24, 4)
                               : benchcommon::MakeEcosystem(0.02);
  const std::string path = "BENCH_store_rank.clfs";
  auto writer = ml::FeatureStoreWriter::Create(
      path, metrics::FunctionFeatureNames(), clair::FunctionClassNames());
  if (!writer.ok()) {
    std::fprintf(stderr, "ranking: %s\n", writer.error().message().c_str());
    return;
  }
  clair::FunctionRankOptions options;
  auto stats = clair::CollectFunctionRows(ecosystem, options, *writer.value());
  if (!stats.ok() || !writer.value()->Finish().ok()) {
    std::fprintf(stderr, "ranking: collection failed\n");
    return;
  }
  auto store = ml::FeatureStore::Open(path);
  if (!store.ok()) {
    return;
  }
  ml::ForestOptions forest_options;
  forest_options.num_trees = smoke ? 16 : 48;
  forest_options.seed = 2017;
  ml::RandomForestClassifier forest(forest_options);
  forest.TrainStreaming(store.value());

  const std::vector<size_t> ks = {10, 25, 50, 100, 250};
  const auto ranking = clair::EvaluateRanking(forest, store.value(), ks);
  const double base_rate = static_cast<double>(stats.value().positives) /
                           static_cast<double>(stats.value().functions);
  std::printf("%zu functions from %zu apps; %zu carry >=1 attributed CVE "
              "(base rate %.3f)\n\n",
              stats.value().functions, stats.value().apps, stats.value().positives,
              base_rate);
  std::vector<std::vector<std::string>> rows;
  std::string topk_json = "[";
  for (size_t i = 0; i < ranking.size(); ++i) {
    const auto& m = ranking[i];
    rows.push_back({std::to_string(m.k), std::to_string(m.hits),
                    support::Format("%.3f", m.precision),
                    support::Format("%.3f", m.recall),
                    support::Format("%.1fx", m.precision / base_rate)});
    topk_json += support::Format(
        "%s{\"k\": %zu, \"hits\": %zu, \"precision\": %.4f, \"recall\": %.4f}",
        i > 0 ? ", " : "", m.k, m.hits, m.precision, m.recall);
  }
  topk_json += "]";
  std::printf("%s\n", report::RenderTable(
                          {"K", "hits", "precision@K", "recall@K", "lift vs random"}, rows)
                          .c_str());
  if (ranking.size() > 2 && base_rate > 0.0) {
    std::printf("a security team auditing the top-%zu functions finds vulnerable\n"
                "code at %.1fx the rate of random triage.\n\n",
                ranking[2].k, ranking[2].precision / base_rate);
  }
  json.AddInt("rank_functions", stats.value().functions);
  json.AddInt("rank_positives", stats.value().positives);
  json.AddNumber("rank_base_rate", base_rate);
  json.AddRaw("rank_topk", topk_json);
  std::remove(path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string mode;
  std::string path = "BENCH_store_scale.clfs";
  std::string out = "BENCH_store_phase.txt";
  size_t rows = 0;
  int trees = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--mode=", 7) == 0) {
      mode = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--path=", 7) == 0) {
      path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--rows=", 7) == 0) {
      rows = static_cast<size_t>(std::atoll(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--trees=", 8) == 0) {
      trees = std::atoi(argv[i] + 8);
    }
  }
  if (mode == "ingest") {
    return PhaseIngest(path, out, rows);
  }
  if (mode == "train-stream") {
    return PhaseTrainStream(path, out, trees);
  }
  if (mode == "train-memory") {
    return PhaseTrainMemory(path, out, trees);
  }

  if (rows == 0) {
    rows = 1000000;
    if (const char* env = std::getenv("CLAIR_STORE_ROWS")) {
      const long long v = std::atoll(env);
      if (v > 0) {
        rows = static_cast<size_t>(v);
      }
    }
    if (smoke) {
      rows = 20000;
    }
  }
  if (trees == 0) {
    trees = smoke ? 4 : 8;
  }

  JsonSink json;
  json.Add("bench", "feature_store", true);
  json.Add("mode", smoke ? "smoke" : "full", true);
  json.AddInt("rows", rows);
  json.AddInt("trees", static_cast<uint64_t>(trees));

  benchcommon::PrintHeader(
      "Out-of-core feature store",
      "columnar ingest + streamed-vs-in-memory forest training");

  // Phase 1: ingest.
  const auto ingest = RunChild({"--mode=ingest", "--path=" + path, "--out=" + out,
                                "--rows=" + std::to_string(rows)},
                               out);
  if (ingest.exit_code != 0) {
    std::fprintf(stderr, "FAIL: ingest child exited %d\n", ingest.exit_code);
    return 1;
  }
  const double ingest_seconds = KvDouble(ingest, "seconds");
  const double file_mb = KvDouble(ingest, "file_bytes") / (1024.0 * 1024.0);
  std::printf("ingest: %zu rows -> %.1f MiB store in %.2f s (%.0f rows/s), "
              "writer peak RSS %.1f MiB\n",
              rows, file_mb, ingest_seconds,
              static_cast<double>(rows) / ingest_seconds, ingest.maxrss_mb);
  json.AddNumber("ingest_seconds", ingest_seconds);
  json.AddNumber("ingest_rows_per_sec", static_cast<double>(rows) / ingest_seconds);
  json.AddNumber("store_file_mb", file_mb);
  json.AddNumber("ingest_rss_mb", ingest.maxrss_mb);

  // Phases 2+3: the same forest, streamed vs fully materialised. Each in a
  // fresh child so ru_maxrss isolates that phase's true peak.
  const auto streamed = RunChild({"--mode=train-stream", "--path=" + path,
                                  "--out=" + out, "--trees=" + std::to_string(trees)},
                                 out);
  const auto memory = RunChild({"--mode=train-memory", "--path=" + path,
                                "--out=" + out, "--trees=" + std::to_string(trees)},
                               out);
  std::remove(path.c_str());
  std::remove(out.c_str());
  if (streamed.exit_code != 0 || memory.exit_code != 0) {
    std::fprintf(stderr, "FAIL: training child exited %d/%d\n", streamed.exit_code,
                 memory.exit_code);
    return 1;
  }

  std::printf("\n%s\n",
              report::RenderTable(
                  {"training mode", "time", "peak RSS", "forest digest"},
                  {{"streamed (TrainStreaming)",
                    support::Format("%.2f s", KvDouble(streamed, "seconds")),
                    support::Format("%.1f MiB", streamed.maxrss_mb),
                    KvString(streamed, "digest")},
                   {"in-memory (ToDataset + TrainIndexed)",
                    support::Format("%.2f s", KvDouble(memory, "seconds")),
                    support::Format("%.1f MiB", memory.maxrss_mb),
                    KvString(memory, "digest")}})
                  .c_str());
  const double rss_ratio = memory.maxrss_mb / std::max(streamed.maxrss_mb, 1e-9);
  std::printf("streamed training holds %.1fx less peak memory on identical "
              "forests.\n\n",
              rss_ratio);
  json.AddNumber("train_stream_seconds", KvDouble(streamed, "seconds"));
  json.AddNumber("train_memory_seconds", KvDouble(memory, "seconds"));
  json.AddNumber("train_stream_rss_mb", streamed.maxrss_mb);
  json.AddNumber("train_memory_rss_mb", memory.maxrss_mb);
  json.AddNumber("train_rss_ratio", rss_ratio);
  json.Add("forest_digest", KvString(streamed, "digest"), true);

  // The gate: identical structure AND identical predictions, or the bench
  // fails loudly.
  const bool digests_match = KvString(streamed, "digest") == KvString(memory, "digest");
  const bool predictions_match = KvString(streamed, "pred") == KvString(memory, "pred");
  json.AddInt("digests_match", digests_match ? 1 : 0);
  json.AddInt("predictions_match", predictions_match ? 1 : 0);
  if (!digests_match || !predictions_match) {
    std::fprintf(stderr,
                 "FAIL: streamed vs in-memory mismatch (structure %s, predictions %s)\n",
                 digests_match ? "ok" : "DIFFER", predictions_match ? "ok" : "DIFFER");
    json.WriteTo("BENCH_store.json");
    return 1;
  }
  std::printf("equivalence gate: structure and prediction digests match.\n\n");

  PrintRanking(smoke, json);

  if (!json.WriteTo("BENCH_store.json")) {
    std::fprintf(stderr, "could not write BENCH_store.json\n");
    return 1;
  }
  std::printf("wrote BENCH_store.json\n");
  return 0;
}
