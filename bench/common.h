// Shared helpers for the figure-reproduction benches.
#ifndef BENCH_COMMON_H_
#define BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "src/clair/testbed.h"
#include "src/corpus/ecosystem.h"
#include "src/support/strings.h"

namespace benchcommon {

// Minimal writer for the machine-readable BENCH_*.json artifacts: ordered
// (key, value) entries emitted as one flat JSON object. Values are quoted
// strings, numbers, or raw pre-rendered JSON for nested arrays/objects.
// Shared by every perf bench so the emitter boilerplate lives once.
class JsonSink {
 public:
  void Add(const std::string& key, const std::string& value, bool quote) {
    entries_.push_back({key, value, quote});
  }
  void AddNumber(const std::string& key, double value) {
    Add(key, support::Format("%.6g", value), false);
  }
  void AddInt(const std::string& key, uint64_t value) {
    Add(key, std::to_string(value), false);
  }
  void AddRaw(const std::string& key, const std::string& json) {
    Add(key, json, false);
  }

  bool WriteTo(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
      return false;
    }
    out << "{\n";
    for (size_t i = 0; i < entries_.size(); ++i) {
      const auto& e = entries_[i];
      out << "  \"" << e.key << "\": ";
      if (e.quote) {
        out << '"' << e.value << '"';
      } else {
        out << e.value;
      }
      out << (i + 1 < entries_.size() ? ",\n" : "\n");
    }
    out << "}\n";
    return out.good();
  }

 private:
  struct Entry {
    std::string key;
    std::string value;
    bool quote;
  };
  std::vector<Entry> entries_;
};

// Reads a double from the environment, falling back to `fallback`. Benches
// use this so `CLAIR_SIZE_SCALE=1.0 ./fig2_loc_vs_vulns` reproduces the
// figure at the paper's full application sizes.
inline double EnvScale(double fallback) {
  const char* text = std::getenv("CLAIR_SIZE_SCALE");
  if (text == nullptr) {
    return fallback;
  }
  const double value = std::atof(text);
  return value > 0.0 ? value : fallback;
}

// The full 164-app ecosystem at a given size scale.
inline corpus::EcosystemGenerator MakeEcosystem(double size_scale,
                                                int mature_apps = 164,
                                                int immature_apps = 24) {
  corpus::CorpusOptions options;
  options.mature_apps = mature_apps;
  options.immature_apps = immature_apps;
  options.size_scale = size_scale;
  return corpus::EcosystemGenerator(options);
}

inline void PrintHeader(const char* figure, const char* caption) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, caption);
  std::printf("(paper: \"A Clairvoyant Approach to Evaluating Software "
              "(In)Security\", HotOS'17)\n");
  std::printf("==============================================================\n\n");
}

}  // namespace benchcommon

#endif  // BENCH_COMMON_H_
