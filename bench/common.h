// Shared helpers for the figure-reproduction benches.
#ifndef BENCH_COMMON_H_
#define BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/clair/testbed.h"
#include "src/corpus/ecosystem.h"

namespace benchcommon {

// Reads a double from the environment, falling back to `fallback`. Benches
// use this so `CLAIR_SIZE_SCALE=1.0 ./fig2_loc_vs_vulns` reproduces the
// figure at the paper's full application sizes.
inline double EnvScale(double fallback) {
  const char* text = std::getenv("CLAIR_SIZE_SCALE");
  if (text == nullptr) {
    return fallback;
  }
  const double value = std::atof(text);
  return value > 0.0 ? value : fallback;
}

// The full 164-app ecosystem at a given size scale.
inline corpus::EcosystemGenerator MakeEcosystem(double size_scale,
                                                int mature_apps = 164,
                                                int immature_apps = 24) {
  corpus::CorpusOptions options;
  options.mature_apps = mature_apps;
  options.immature_apps = immature_apps;
  options.size_scale = size_scale;
  return corpus::EcosystemGenerator(options);
}

inline void PrintHeader(const char* figure, const char* caption) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, caption);
  std::printf("(paper: \"A Clairvoyant Approach to Evaluating Software "
              "(In)Security\", HotOS'17)\n");
  std::printf("==============================================================\n\n");
}

}  // namespace benchcommon

#endif  // BENCH_COMMON_H_
