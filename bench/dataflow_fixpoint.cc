// Fixpoint-engine throughput: word-packed bitset + priority-worklist engine
// vs the dense reference sweeps it replaced, per analysis and per CFG tier.
//
// Every timed function is also cross-checked between the two modes (reaching
// sets, live-in sets, idoms, taint summaries, interval reports); any
// disagreement is counted, reported in the JSON, and fails the bench with a
// nonzero exit. The engine is only a performance change — results are
// specified bit-identical.
//
// Emits BENCH_dataflow.json in the working directory. `--smoke` runs reduced
// workloads and skips the google-benchmark timing loops but still writes the
// JSON and still enforces the equivalence check (the ctest `dfperf` label
// runs this mode).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/corpus/codegen.h"
#include "src/dataflow/analyses.h"
#include "src/dataflow/intervals.h"
#include "src/dataflow/random_cfg.h"
#include "src/lang/parser.h"
#include "src/support/rng.h"
#include "src/support/strings.h"

namespace {

using dataflow::DataflowMode;

double Seconds(std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

// Machine-readable artifact writer (shared across benches, see common.h).
using benchcommon::JsonSink;

// --- Equivalence oracle ------------------------------------------------------

// Compares every externally observable result of the two modes for one
// function. Returns the number of disagreements (0 when bit-identical).
int CrossCheck(const lang::IrFunction& fn) {
  int mismatches = 0;
  const dataflow::CfgView cfg(fn);
  {
    const dataflow::ReachingDefinitions engine(fn, &cfg, DataflowMode::kEngine);
    const dataflow::ReachingDefinitions reference(fn, &cfg, DataflowMode::kReference);
    for (size_t b = 0; b < fn.blocks.size(); ++b) {
      if (!(engine.InSet(static_cast<lang::BlockId>(b)) ==
            reference.InSet(static_cast<lang::BlockId>(b)))) {
        ++mismatches;
      }
    }
    if (engine.MeanReachingPerUse() != reference.MeanReachingPerUse()) {
      ++mismatches;
    }
  }
  {
    const dataflow::Liveness engine(fn, &cfg, DataflowMode::kEngine);
    const dataflow::Liveness reference(fn, &cfg, DataflowMode::kReference);
    for (size_t b = 0; b < fn.blocks.size(); ++b) {
      for (lang::RegId r = 0; r < fn.reg_count; ++r) {
        if (engine.LiveIn(static_cast<lang::BlockId>(b), r) !=
            reference.LiveIn(static_cast<lang::BlockId>(b), r)) {
          ++mismatches;
        }
      }
    }
    if (engine.MaxLiveAtEntry() != reference.MaxLiveAtEntry()) {
      ++mismatches;
    }
  }
  {
    const dataflow::Dominators engine(fn, &cfg, DataflowMode::kEngine);
    const dataflow::Dominators reference(fn, &cfg, DataflowMode::kReference);
    for (size_t b = 0; b < fn.blocks.size(); ++b) {
      if (engine.Idom(static_cast<lang::BlockId>(b)) !=
          reference.Idom(static_cast<lang::BlockId>(b))) {
        ++mismatches;
      }
    }
    if (engine.TreeDepth() != reference.TreeDepth()) {
      ++mismatches;
    }
  }
  {
    const auto engine = dataflow::AnalyzeTaint(fn, &cfg, DataflowMode::kEngine);
    const auto reference = dataflow::AnalyzeTaint(fn, &cfg, DataflowMode::kReference);
    if (engine.tainted_instructions != reference.tainted_instructions ||
        engine.tainted_branches != reference.tainted_branches ||
        engine.tainted_array_indices != reference.tainted_array_indices ||
        engine.tainted_sinks != reference.tainted_sinks ||
        engine.tainted_call_args != reference.tainted_call_args ||
        engine.input_sites != reference.input_sites) {
      ++mismatches;
    }
  }
  {
    dataflow::IntervalOptions engine_options;
    engine_options.mode = DataflowMode::kEngine;
    dataflow::IntervalOptions reference_options;
    reference_options.mode = DataflowMode::kReference;
    const auto engine = dataflow::AnalyzeIntervals(fn, engine_options, &cfg);
    const auto reference = dataflow::AnalyzeIntervals(fn, reference_options);
    if (engine.array_accesses != reference.array_accesses ||
        engine.proven_in_bounds != reference.proven_in_bounds ||
        engine.divisions != reference.divisions ||
        engine.proven_nonzero_divisor != reference.proven_nonzero_divisor ||
        engine.findings.size() != reference.findings.size()) {
      ++mismatches;
    }
  }
  return mismatches;
}

// --- Timed workloads ---------------------------------------------------------

struct AnalysisTiming {
  std::string name;
  double engine_seconds = 0.0;
  double reference_seconds = 0.0;

  double Speedup() const {
    return engine_seconds > 0.0 ? reference_seconds / engine_seconds : 0.0;
  }
};

struct TierResult {
  std::string name;
  int blocks = 0;
  int functions = 0;
  std::vector<AnalysisTiming> analyses;
  int mismatches = 0;

  double AggregateSpeedup() const {
    double engine = 0.0;
    double reference = 0.0;
    for (const auto& timing : analyses) {
      engine += timing.engine_seconds;
      reference += timing.reference_seconds;
    }
    return engine > 0.0 ? reference / engine : 0.0;
  }
};

// One synthetic tier: `functions` random CFGs of exactly `blocks` blocks.
TierResult RunTier(const std::string& name, int blocks, int functions, int regs,
                   uint64_t seed) {
  TierResult result;
  result.name = name;
  result.blocks = blocks;
  result.functions = functions;

  support::Rng rng(seed);
  dataflow::RandomCfgOptions options;
  options.min_blocks = blocks;
  options.max_blocks = blocks;
  options.num_regs = regs;
  options.max_instrs_per_block = 8;
  std::vector<lang::IrFunction> fns;
  fns.reserve(static_cast<size_t>(functions));
  for (int i = 0; i < functions; ++i) {
    fns.push_back(dataflow::MakeRandomFunction(rng, options));
  }
  std::vector<dataflow::CfgView> views;
  views.reserve(fns.size());
  for (const auto& fn : fns) {
    views.emplace_back(fn);
  }

  auto time_analysis = [&](const std::string& analysis,
                           auto&& run /* (fn, cfg, mode) -> observable */) {
    AnalysisTiming timing;
    timing.name = analysis;
    for (const DataflowMode mode : {DataflowMode::kEngine, DataflowMode::kReference}) {
      const auto t0 = std::chrono::steady_clock::now();
      uint64_t sink = 0;
      for (size_t i = 0; i < fns.size(); ++i) {
        sink += run(fns[i], views[i], mode);
      }
      benchmark::DoNotOptimize(sink);
      const auto t1 = std::chrono::steady_clock::now();
      (mode == DataflowMode::kEngine ? timing.engine_seconds
                                     : timing.reference_seconds) = Seconds(t0, t1);
    }
    result.analyses.push_back(timing);
  };

  time_analysis("reaching_defs", [](const lang::IrFunction& fn,
                                    const dataflow::CfgView& cfg, DataflowMode mode) {
    const dataflow::ReachingDefinitions rd(fn, &cfg, mode);
    return static_cast<uint64_t>(rd.InSet(static_cast<lang::BlockId>(fn.blocks.size()) - 1)
                                     .Count());
  });
  time_analysis("liveness", [](const lang::IrFunction& fn,
                               const dataflow::CfgView& cfg, DataflowMode mode) {
    const dataflow::Liveness lv(fn, &cfg, mode);
    return static_cast<uint64_t>(lv.MaxLiveAtEntry());
  });
  time_analysis("dominators", [](const lang::IrFunction& fn,
                                 const dataflow::CfgView& cfg, DataflowMode mode) {
    const dataflow::Dominators dom(fn, &cfg, mode);
    return static_cast<uint64_t>(dom.TreeDepth());
  });
  time_analysis("taint", [](const lang::IrFunction& fn, const dataflow::CfgView& cfg,
                            DataflowMode mode) {
    const auto summary = dataflow::AnalyzeTaint(fn, &cfg, mode);
    return static_cast<uint64_t>(summary.tainted_instructions);
  });

  for (const auto& fn : fns) {
    result.mismatches += CrossCheck(fn);
  }
  return result;
}

std::string TimingJson(const AnalysisTiming& timing) {
  return support::Format(
      "{\"engine_seconds\": %.6f, \"reference_seconds\": %.6f, \"speedup\": %.2f}",
      timing.engine_seconds, timing.reference_seconds, timing.Speedup());
}

std::string TierJson(const TierResult& tier) {
  std::string body = support::Format(
      "{\"blocks\": %d, \"functions\": %d, \"mismatches\": %d, "
      "\"aggregate_speedup\": %.2f",
      tier.blocks, tier.functions, tier.mismatches, tier.AggregateSpeedup());
  for (const auto& timing : tier.analyses) {
    body += support::Format(", \"%s\": %s", timing.name.c_str(),
                            TimingJson(timing).c_str());
  }
  body += "}";
  return body;
}

// Full-pipeline feature extraction on realistic (corpus-generated) modules:
// DataflowFeatures + IntervalFeatures in both modes, with the feature maps
// compared for exact equality.
struct CorpusResult {
  double engine_seconds = 0.0;
  double reference_seconds = 0.0;
  int mismatches = 0;
  int modules = 0;

  double Speedup() const {
    return engine_seconds > 0.0 ? reference_seconds / engine_seconds : 0.0;
  }
};

CorpusResult RunCorpus(int modules, int target_lines, int reps) {
  CorpusResult result;
  result.modules = modules;
  std::vector<lang::IrModule> lowered;
  support::Rng rng(7701);
  corpus::AppStyle style;
  for (int m = 0; m < modules; ++m) {
    const std::string source = corpus::GenerateMiniCFile(rng, style, target_lines);
    auto unit = lang::Parse(source);
    if (!unit.ok()) continue;
    auto module = lang::LowerToIr(unit.value());
    if (!module.ok()) continue;
    lowered.push_back(std::move(module).value());
  }
  std::vector<metrics::FeatureVector> engine_features;
  for (const DataflowMode mode : {DataflowMode::kEngine, DataflowMode::kReference}) {
    dataflow::IntervalOptions interval_options;
    interval_options.mode = mode;
    const auto t0 = std::chrono::steady_clock::now();
    for (int rep = 0; rep < reps; ++rep) {
      for (size_t m = 0; m < lowered.size(); ++m) {
        metrics::FeatureVector fv = dataflow::DataflowFeatures(lowered[m], nullptr, mode);
        const metrics::FeatureVector ai = dataflow::IntervalFeatures(lowered[m], interval_options);
        for (const auto& [key, value] : ai.values()) {
          fv.Set(key, value);
        }
        if (rep == 0) {
          if (mode == DataflowMode::kEngine) {
            engine_features.push_back(fv);
          } else if (!(engine_features[m].values() == fv.values())) {
            ++result.mismatches;
          }
        }
      }
    }
    const auto t1 = std::chrono::steady_clock::now();
    (mode == DataflowMode::kEngine ? result.engine_seconds
                                   : result.reference_seconds) = Seconds(t0, t1);
  }
  return result;
}

// --- google-benchmark microbenches (full mode only) --------------------------

lang::IrFunction BenchFunction(int blocks, int regs) {
  support::Rng rng(42);
  dataflow::RandomCfgOptions options;
  options.min_blocks = blocks;
  options.max_blocks = blocks;
  options.num_regs = regs;
  return dataflow::MakeRandomFunction(rng, options);
}

void BM_ReachingDefs(benchmark::State& state) {
  const auto fn = BenchFunction(static_cast<int>(state.range(0)), 64);
  const dataflow::CfgView cfg(fn);
  const auto mode =
      state.range(1) != 0 ? DataflowMode::kEngine : DataflowMode::kReference;
  for (auto _ : state) {
    const dataflow::ReachingDefinitions rd(fn, &cfg, mode);
    benchmark::DoNotOptimize(rd.definitions().size());
  }
}
BENCHMARK(BM_ReachingDefs)
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Unit(benchmark::kMillisecond);

void BM_Liveness(benchmark::State& state) {
  const auto fn = BenchFunction(static_cast<int>(state.range(0)), 64);
  const dataflow::CfgView cfg(fn);
  const auto mode =
      state.range(1) != 0 ? DataflowMode::kEngine : DataflowMode::kReference;
  for (auto _ : state) {
    const dataflow::Liveness lv(fn, &cfg, mode);
    benchmark::DoNotOptimize(lv.MaxLiveAtEntry());
  }
}
BENCHMARK(BM_Liveness)
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  benchcommon::PrintHeader(
      "dataflow_fixpoint",
      "bitset/worklist fixpoint engine vs dense reference sweeps");

  struct TierSpec {
    const char* name;
    int blocks;
    int functions;
    int regs;
  };
  const std::vector<TierSpec> specs =
      smoke ? std::vector<TierSpec>{{"small", 16, 6, 24}, {"large", 128, 3, 48}}
            : std::vector<TierSpec>{{"small", 64, 24, 48},
                                    {"medium", 256, 12, 96},
                                    {"large", 1024, 6, 160}};

  JsonSink sink;
  sink.Add("bench", "dataflow_fixpoint", true);
  sink.Add("mode", smoke ? "smoke" : "full", true);

  int total_mismatches = 0;
  double largest_aggregate = 0.0;
  std::printf("%-8s %6s %4s | %-14s %10s %10s %8s\n", "tier", "blocks", "fns",
              "analysis", "engine(s)", "ref(s)", "speedup");
  for (const auto& spec : specs) {
    const TierResult tier =
        RunTier(spec.name, spec.blocks, spec.functions, spec.regs, 0xC1A1D);
    for (const auto& timing : tier.analyses) {
      std::printf("%-8s %6d %4d | %-14s %10.4f %10.4f %7.2fx\n", tier.name.c_str(),
                  tier.blocks, tier.functions, timing.name.c_str(),
                  timing.engine_seconds, timing.reference_seconds, timing.Speedup());
    }
    std::printf("%-8s %6d %4d | %-14s %10s %10s %7.2fx  (mismatches: %d)\n\n",
                tier.name.c_str(), tier.blocks, tier.functions, "aggregate", "", "",
                tier.AggregateSpeedup(), tier.mismatches);
    sink.AddRaw("tier_" + tier.name, TierJson(tier));
    total_mismatches += tier.mismatches;
    largest_aggregate = tier.AggregateSpeedup();  // Last tier is the largest.
  }

  const CorpusResult corpus = RunCorpus(smoke ? 2 : 6, smoke ? 120 : 400, smoke ? 1 : 3);
  std::printf("corpus: %d modules, engine %.4fs vs reference %.4fs (%.2fx), "
              "feature mismatches: %d\n",
              corpus.modules, corpus.engine_seconds, corpus.reference_seconds,
              corpus.Speedup(), corpus.mismatches);
  sink.AddRaw("corpus",
              support::Format("{\"modules\": %d, \"engine_seconds\": %.6f, "
                              "\"reference_seconds\": %.6f, \"speedup\": %.2f, "
                              "\"mismatches\": %d}",
                              corpus.modules, corpus.engine_seconds,
                              corpus.reference_seconds, corpus.Speedup(),
                              corpus.mismatches));
  total_mismatches += corpus.mismatches;

  sink.AddNumber("largest_tier_aggregate_speedup", largest_aggregate);
  sink.AddInt("equivalence_mismatches", static_cast<uint64_t>(total_mismatches));
  if (!sink.WriteTo("BENCH_dataflow.json")) {
    std::fprintf(stderr, "failed to write BENCH_dataflow.json\n");
    return 2;
  }
  std::printf("\nwrote BENCH_dataflow.json (largest-tier aggregate speedup %.2fx)\n",
              largest_aggregate);
  if (total_mismatches != 0) {
    std::fprintf(stderr, "FAIL: %d engine/reference mismatches\n", total_mismatches);
    return 1;
  }
  if (smoke) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
