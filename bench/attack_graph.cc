// §4.1: "estimate how difficult it is to attack a program by building an
// attack-graph". Scaling study: graph size, generation time, and analysis
// cost as the network grows, plus the hardening effect of patching the
// minimal cut.
#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "src/attack/graph.h"
#include "src/report/render.h"
#include "src/support/strings.h"

namespace {

// A layered enterprise network: internet -> n_dmz DMZ hosts -> n_app app
// hosts -> one database. Every DMZ host runs httpd; app hosts run appd; the
// database runs sqld + a local-privilege-escalation-prone cron.
attack::NetworkModel MakeLayeredNetwork(int n_dmz, int n_app) {
  attack::NetworkModel model;
  const int internet = model.AddHost("internet", {});
  std::vector<int> dmz;
  for (int i = 0; i < n_dmz; ++i) {
    dmz.push_back(model.AddHost("dmz" + std::to_string(i), {"httpd"}));
    model.Connect(internet, dmz.back());
  }
  std::vector<int> app;
  for (int i = 0; i < n_app; ++i) {
    app.push_back(model.AddHost("app" + std::to_string(i), {"appd"}));
    for (const int d : dmz) {
      model.ConnectBoth(d, app.back());
    }
  }
  const int db = model.AddHost("db", {"sqld", "cron"});
  for (const int a : app) {
    model.ConnectBoth(a, db);
  }
  model.AddExploit({"CVE-httpd-rce", "httpd", attack::Privilege::kUser,
                    attack::Privilege::kUser, true, 1.0});
  model.AddExploit({"CVE-appd-deserial", "appd", attack::Privilege::kUser,
                    attack::Privilege::kUser, true, 1.5});
  model.AddExploit({"CVE-sqld-auth", "sqld", attack::Privilege::kUser,
                    attack::Privilege::kUser, true, 2.0});
  model.AddExploit({"CVE-cron-lpe", "cron", attack::Privilege::kUser,
                    attack::Privilege::kRoot, false, 1.0});
  return model;
}

void PrintScaling() {
  benchcommon::PrintHeader("Attack graphs", "generation and analysis scaling");
  std::vector<std::vector<std::string>> rows;
  for (const auto& [n_dmz, n_app] :
       std::vector<std::pair<int, int>>{{1, 1}, {2, 4}, {4, 8}, {8, 16}, {16, 32}}) {
    const attack::NetworkModel model = MakeLayeredNetwork(n_dmz, n_app);
    const attack::AttackGraph graph(model, {0, attack::Privilege::kRoot});
    const attack::AttackState goal{model.HostIndex("db"), attack::Privilege::kRoot};
    const auto path = graph.ShortestPath(goal);
    double cost = 0.0;
    for (const auto& edge : path) {
      cost += edge.cost;
    }
    rows.push_back({support::Format("%d dmz / %d app", n_dmz, n_app),
                    std::to_string(model.hosts().size()),
                    std::to_string(graph.states().size()),
                    std::to_string(graph.edges().size()),
                    graph.CanReach(goal) ? "yes" : "no",
                    support::Format("%zu steps / cost %.1f", path.size(), cost)});
  }
  std::printf("%s\n", report::RenderTable({"topology", "hosts", "states", "edges",
                                           "db root reachable", "cheapest attack"},
                                          rows)
                          .c_str());

  // Patch-set analysis on the mid-size network.
  const attack::NetworkModel model = MakeLayeredNetwork(4, 8);
  const attack::AttackGraph graph(model, {0, attack::Privilege::kRoot});
  const attack::AttackState goal{model.HostIndex("db"), attack::Privilege::kRoot};
  const auto cut = graph.MinimalCut(model, goal);
  std::printf("minimal patch set on the 4/8 network (%zu exploit class(es)):\n",
              cut.size());
  for (const auto& id : cut) {
    std::printf("  patch %s\n", id.c_str());
  }
  std::printf("=> one well-placed patch severs every path: the attack-graph view finds\n"
              "   the chokepoint that per-CVE counting cannot.\n\n");
}

void BM_GraphGeneration(benchmark::State& state) {
  const attack::NetworkModel model =
      MakeLayeredNetwork(static_cast<int>(state.range(0)),
                         static_cast<int>(state.range(0)) * 2);
  for (auto _ : state) {
    const attack::AttackGraph graph(model, {0, attack::Privilege::kRoot});
    benchmark::DoNotOptimize(graph.states().size());
  }
}
BENCHMARK(BM_GraphGeneration)->Arg(2)->Arg(8)->Arg(16)->Unit(benchmark::kMicrosecond);

void BM_ShortestPath(benchmark::State& state) {
  const attack::NetworkModel model = MakeLayeredNetwork(8, 16);
  const attack::AttackGraph graph(model, {0, attack::Privilege::kRoot});
  const attack::AttackState goal{model.HostIndex("db"), attack::Privilege::kRoot};
  for (auto _ : state) {
    const auto path = graph.ShortestPath(goal);
    benchmark::DoNotOptimize(path.size());
  }
}
BENCHMARK(BM_ShortestPath)->Unit(benchmark::kMicrosecond);

void BM_MinimalCut(benchmark::State& state) {
  const attack::NetworkModel model = MakeLayeredNetwork(2, 4);
  const attack::AttackGraph graph(model, {0, attack::Privilege::kRoot});
  const attack::AttackState goal{model.HostIndex("db"), attack::Privilege::kRoot};
  for (auto _ : state) {
    const auto cut = graph.MinimalCut(model, goal);
    benchmark::DoNotOptimize(cut.size());
  }
}
BENCHMARK(BM_MinimalCut)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  PrintScaling();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
