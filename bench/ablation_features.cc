// Ablation (§4 "maybe more metrics?"): does a weighted aggregation of many
// code properties beat LoC alone? Cross-validated AUC per feature family,
// cumulatively enabled:
//   loc-only -> +complexity (McCabe/Halstead/Shin) -> +smells/lint ->
//   +callgraph -> +dataflow/taint -> +symbolic execution.
#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "src/clair/pipeline.h"
#include "src/report/render.h"
#include "src/support/strings.h"

namespace {

// Keeps only features whose name starts with one of `prefixes`.
std::vector<clair::AppRecord> FilterFeatures(const std::vector<clair::AppRecord>& records,
                                             const std::vector<std::string>& prefixes) {
  std::vector<clair::AppRecord> out;
  for (const auto& record : records) {
    clair::AppRecord filtered;
    filtered.name = record.name;
    filtered.labels = record.labels;
    for (const auto& [name, value] : record.features.values()) {
      for (const auto& prefix : prefixes) {
        if (name.rfind(prefix, 0) == 0) {
          filtered.features.Set(name, value);
          break;
        }
      }
    }
    out.push_back(std::move(filtered));
  }
  return out;
}

void PrintAblation(double scale) {
  benchcommon::PrintHeader("Ablation: feature families",
                           "is aggregating many noisy metrics better than LoC alone?");
  const corpus::EcosystemGenerator ecosystem =
      benchcommon::MakeEcosystem(scale, 164, 24);
  clair::TestbedOptions testbed_options;
  testbed_options.deep_analysis_max_files = 1;
  const clair::Testbed testbed(ecosystem, testbed_options);
  const auto records = testbed.Collect();

  struct Family {
    const char* label;
    std::vector<std::string> prefixes;
  };
  // Cumulative families.
  std::vector<Family> families = {
      {"loc only", {"loc."}},
      {"+complexity", {"loc.", "mccabe.", "halstead.", "shin.", "nesting."}},
      {"+smells/lint", {"loc.", "mccabe.", "halstead.", "shin.", "nesting.", "smell.",
                        "lint."}},
      {"+callgraph", {"loc.", "mccabe.", "halstead.", "shin.", "nesting.", "smell.",
                      "lint.", "callgraph.", "lang.", "app."}},
      {"+dataflow/AI", {"loc.", "mccabe.", "halstead.", "shin.", "nesting.", "smell.",
                        "lint.", "callgraph.", "lang.", "app.", "dataflow.", "ai."}},
      {"+symbolic (all)", {""}},  // Empty prefix matches everything.
  };
  // Density hypotheses: vulnerability-profile questions that report volume
  // (and therefore plain size) cannot answer — the regime where the paper
  // expects multi-metric aggregation to pay off.
  const std::vector<std::string> hypothesis_ids = {"net_dominant", "mem_dominant",
                                                   "high_sev_share"};

  std::vector<std::vector<std::string>> rows;
  for (const auto& family : families) {
    const auto filtered = FilterFeatures(records, family.prefixes);
    clair::PipelineOptions options;
    options.cv_folds = 10;
    const clair::TrainingPipeline pipeline(filtered, options);
    std::vector<std::string> row = {family.label,
                                    std::to_string(pipeline.feature_names().size())};
    for (const auto& id : hypothesis_ids) {
      const clair::Hypothesis* hypothesis = clair::FindHypothesis(id);
      const auto report = pipeline.EvaluateHypothesis(*hypothesis);
      row.push_back(support::Format("%.3f", report.best.auc));
    }
    rows.push_back(std::move(row));
  }
  std::vector<std::string> header = {"feature set", "#features"};
  for (const auto& id : hypothesis_ids) {
    header.push_back("AUC " + id);
  }
  std::printf("%s\n", report::RenderTable(header, rows).c_str());

  // The headline quantitative comparison: predicting the NUMBER of
  // vulnerabilities (log10), LoC-only vs richer families — against Figure
  // 2's R² ≈ 24.66% LoC baseline.
  std::printf("Vulnerability-count regression (CV R², target log10(1+vulns)):\n");
  std::vector<std::vector<std::string>> reg_rows;
  for (const auto& family : families) {
    const auto filtered = FilterFeatures(records, family.prefixes);
    clair::PipelineOptions options;
    options.cv_folds = 10;
    const clair::TrainingPipeline pipeline(filtered, options);
    std::vector<std::string> row = {family.label};
    for (const auto& outcome : pipeline.EvaluateCountRegression()) {
      row.push_back(support::Format("%.3f", outcome.metrics.r_squared));
    }
    reg_rows.push_back(std::move(row));
  }
  std::printf("%s\n", report::RenderTable({"feature set", "R2 ols", "R2 ridge",
                                           "R2 forest"},
                                          reg_rows)
                          .c_str());
  std::printf(
      "paper's Figure-2 baseline: LoC alone explains ~25%% of log-vuln variance; the\n"
      "aggregated feature vector should explain substantially more (the recoverable\n"
      "style signal), while latent maturity + noise bound the ceiling.\n\n");

  std::printf(
      "paper's position (§4): \"a weighted aggregation of multiple metrics can provide\n"
      "a more precise estimation\". On profile questions like these, LoC alone has no\n"
      "mechanism to answer (size says nothing about WHERE vulnerabilities cluster);\n"
      "the richer families carry the taint/unsafety signal. Note the contrast with\n"
      "any-X hypotheses (fig4_training): those saturate with report volume, so plain\n"
      "size is already competitive there — LoC's one genuine strength.\n\n");
}

void BM_FilterFeatures(benchmark::State& state) {
  const corpus::EcosystemGenerator ecosystem = benchcommon::MakeEcosystem(0.005, 16, 0);
  clair::TestbedOptions testbed_options;
  testbed_options.with_symexec = false;
  testbed_options.deep_analysis_max_files = 1;
  const clair::Testbed testbed(ecosystem, testbed_options);
  const auto records = testbed.Collect();
  for (auto _ : state) {
    auto filtered = FilterFeatures(records, {"loc.", "mccabe."});
    benchmark::DoNotOptimize(filtered.size());
  }
}
BENCHMARK(BM_FilterFeatures);

}  // namespace

int main(int argc, char** argv) {
  PrintAblation(benchcommon::EnvScale(0.01));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
