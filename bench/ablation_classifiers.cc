// Ablation (§5.2): "tuning the parameters to the learning algorithms" —
// stability of each learner family across CV seeds, plus the effect of
// feature selection (top-k by information gain) on the best learner.
#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "src/clair/pipeline.h"
#include "src/ml/eval.h"
#include "src/ml/feature_select.h"
#include "src/report/render.h"
#include "src/support/strings.h"
#include "src/support/stats.h"

namespace {

void PrintAblation(double scale) {
  benchcommon::PrintHeader("Ablation: learners",
                           "learner stability across CV seeds + feature selection");
  const corpus::EcosystemGenerator ecosystem =
      benchcommon::MakeEcosystem(scale, 164, 24);
  clair::TestbedOptions testbed_options;
  testbed_options.deep_analysis_max_files = 1;
  const clair::Testbed testbed(ecosystem, testbed_options);
  const auto records = testbed.Collect();
  const clair::Hypothesis* hypothesis = clair::FindHypothesis("av_network");

  // Learner stability: mean +/- stddev of AUC over 5 CV seeds.
  std::vector<std::vector<std::string>> rows;
  for (const auto& learner : clair::StandardLearners()) {
    support::RunningStats auc_stats;
    support::RunningStats f1_stats;
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      clair::PipelineOptions options;
      options.cv_folds = 10;
      options.seed = seed;
      const clair::TrainingPipeline pipeline(records, options);
      ml::Dataset data = pipeline.BuildDataset(*hypothesis);
      pipeline.ApplyTransforms(data, nullptr);
      const ml::CvMetrics metrics =
          ml::CrossValidate(data, learner.factory, options.cv_folds, seed);
      auc_stats.Add(metrics.auc);
      f1_stats.Add(metrics.macro_f1);
    }
    rows.push_back({learner.name,
                    support::Format("%.3f +/- %.3f", auc_stats.mean(), auc_stats.stddev()),
                    support::Format("%.3f +/- %.3f", f1_stats.mean(), f1_stats.stddev())});
  }
  std::printf("hypothesis: av_network (is any vulnerability network-reachable?)\n\n");
  std::printf("%s\n",
              report::RenderTable({"learner", "AUC (5 seeds)", "macro-F1 (5 seeds)"}, rows)
                  .c_str());

  // Feature selection sweep on the random forest.
  clair::PipelineOptions options;
  options.cv_folds = 10;
  const clair::TrainingPipeline pipeline(records, options);
  ml::Dataset data = pipeline.BuildDataset(*hypothesis);
  pipeline.ApplyTransforms(data, nullptr);
  const auto ranking = ml::RankByInformationGain(data);
  std::vector<std::vector<std::string>> selection_rows;
  for (const size_t k : {size_t{5}, size_t{10}, size_t{20}, size_t{40}, ranking.size()}) {
    const ml::Dataset reduced = ml::SelectFeatures(data, ranking, k);
    const ml::CvMetrics metrics = ml::CrossValidate(
        reduced, clair::StandardLearners()[3].factory, options.cv_folds, options.seed);
    selection_rows.push_back({std::to_string(std::min(k, ranking.size())),
                              support::Format("%.3f", metrics.auc),
                              support::Format("%.3f", metrics.macro_f1)});
  }
  std::printf("Feature selection (information gain, random forest):\n");
  std::printf("%s\n",
              report::RenderTable({"top-k features", "AUC", "macro-F1"}, selection_rows)
                  .c_str());
  std::printf("Top-10 features by information gain:\n");
  for (size_t i = 0; i < std::min<size_t>(10, ranking.size()); ++i) {
    std::printf("  %-34s gain=%.4f\n",
                data.feature_names()[ranking[i].first].c_str(), ranking[i].second);
  }
  std::printf("\n");
}

void BM_ForestTraining(benchmark::State& state) {
  const corpus::EcosystemGenerator ecosystem = benchcommon::MakeEcosystem(0.005, 32, 0);
  clair::TestbedOptions testbed_options;
  testbed_options.with_symexec = false;
  testbed_options.deep_analysis_max_files = 1;
  const clair::Testbed testbed(ecosystem, testbed_options);
  clair::PipelineOptions options;
  const clair::TrainingPipeline pipeline(testbed.Collect(), options);
  ml::Dataset data = pipeline.BuildDataset(clair::StandardHypotheses()[0]);
  pipeline.ApplyTransforms(data, nullptr);
  for (auto _ : state) {
    auto model = clair::StandardLearners()[3].factory();
    model->Train(data);
    benchmark::DoNotOptimize(model.get());
  }
}
BENCHMARK(BM_ForestTraining)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintAblation(benchcommon::EnvScale(0.01));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
