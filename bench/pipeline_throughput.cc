// §5.3: "the security evaluation requires very little effort from the
// developers" — end-to-end latency of the developer-facing path: feature
// extraction + per-hypothesis prediction on an already-trained model, plus
// the training-phase hot path (histogram-binned forest training vs the
// sort-based exact reference).
//
// Emits machine-readable results to BENCH_pipeline.json in the working
// directory. `--smoke` runs a reduced corpus/dataset, skips the
// google-benchmark timing loops, and still writes the JSON (the ctest
// `mlperf` label runs this mode).
#include <benchmark/benchmark.h>
#include <sys/stat.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "bench/common.h"
#include "src/clair/evaluator.h"
#include "src/clair/function_rank.h"
#include "src/clair/incremental.h"
#include "src/clair/pipeline.h"
#include "src/clair/serialize.h"
#include "src/clair/shard.h"
#include "src/clair/testbed.h"
#include "src/corpus/codegen.h"
#include "src/corpus/history.h"
#include "src/dataflow/analyses.h"
#include "src/dataflow/intervals.h"
#include "src/lang/parser.h"
#include "src/ml/eval.h"
#include "src/ml/tree.h"
#include "src/report/render.h"
#include "src/support/fault_injection.h"
#include "src/support/strings.h"
#include "src/support/thread_pool.h"

namespace {

double Seconds(std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

// Accumulates results for BENCH_pipeline.json: per-stage milliseconds (with
// optional rows/s), the thread sweep, and the training mode comparison.
// The emitter itself is the shared benchcommon::JsonSink; this wrapper only
// renders the bench's nested sections.
class JsonSink {
 public:
  void AddStage(const std::string& name, double ms, double rows_per_sec = 0.0) {
    stages_.push_back(support::Format(
        "    {\"name\": \"%s\", \"ms\": %.3f, \"rows_per_sec\": %.1f}", name.c_str(), ms,
        rows_per_sec));
  }
  void AddThreadSweep(int workers, double seconds, double apps_per_sec) {
    sweep_.push_back(support::Format(
        "    {\"workers\": %d, \"seconds\": %.3f, \"apps_per_sec\": %.2f}", workers,
        seconds, apps_per_sec));
  }
  void SetTraining(size_t rows, size_t features, double train_speedup,
                   double cv_speedup) {
    training_ = support::Format(
        "{\"rows\": %zu, \"features\": %zu, "
        "\"train_speedup_histogram_vs_exact\": %.2f, "
        "\"cv_speedup_histogram_vs_exact\": %.2f}",
        rows, features, train_speedup, cv_speedup);
  }
  void SetDataflow(size_t modules, double speedup, bool identical) {
    dataflow_ = support::Format(
        "{\"modules\": %zu, \"engine_vs_reference_speedup\": %.2f, "
        "\"features_identical\": %s}",
        modules, speedup, identical ? "true" : "false");
  }
  void SetRobustness(const std::string& faults, const clair::RunReport& report) {
    robustness_ = support::Format(
        "{\"faults\": \"%s\", \"apps\": %llu, "
        "\"stage_failures\": %llu, \"stages_degraded\": %llu}",
        faults.c_str(), static_cast<unsigned long long>(report.apps_total),
        static_cast<unsigned long long>(report.TotalFailures()),
        static_cast<unsigned long long>(report.TotalDegraded()));
  }
  void AddShardSweep(int workers, double seconds, double apps_per_sec,
                     bool identical) {
    shard_sweep_.push_back(support::Format(
        "    {\"workers\": %d, \"seconds\": %.3f, \"apps_per_sec\": %.2f, "
        "\"merge_identical\": %s}",
        workers, seconds, apps_per_sec, identical ? "true" : "false"));
  }
  void SetShardChaos(const std::string& faults, const clair::ShardSweepStats& stats,
                     bool identical) {
    shard_chaos_ = support::Format(
        "{\"faults\": \"%s\", \"worker_crashes\": %llu, \"shards_stolen\": %llu, "
        "\"leases_revoked\": %llu, \"dropped_blocks\": %llu, "
        "\"merge_identical\": %s}",
        faults.c_str(), static_cast<unsigned long long>(stats.worker_crashes),
        static_cast<unsigned long long>(stats.shards_stolen),
        static_cast<unsigned long long>(stats.leases_revoked),
        static_cast<unsigned long long>(stats.checkpoint_dropped_blocks),
        identical ? "true" : "false");
  }

  bool Write(const std::string& path) const {
    benchcommon::JsonSink sink;
    sink.Add("bench", "pipeline_throughput", true);
    if (!training_.empty()) {
      sink.AddRaw("training", training_);
    }
    if (!dataflow_.empty()) {
      sink.AddRaw("dataflow", dataflow_);
    }
    if (!robustness_.empty()) {
      sink.AddRaw("robustness", robustness_);
    }
    if (!shard_chaos_.empty()) {
      sink.AddRaw("shard_chaos", shard_chaos_);
    }
    sink.AddRaw("stages", JoinArray(stages_));
    sink.AddRaw("thread_sweep", JoinArray(sweep_));
    if (!shard_sweep_.empty()) {
      sink.AddRaw("shard_sweep", JoinArray(shard_sweep_));
    }
    return sink.WriteTo(path);
  }

 private:
  static std::string JoinArray(const std::vector<std::string>& items) {
    std::string out = "[\n";
    for (size_t i = 0; i < items.size(); ++i) {
      out += items[i];
      out += i + 1 < items.size() ? ",\n" : "\n";
    }
    out += "  ]";
    return out;
  }

  std::vector<std::string> stages_;
  std::vector<std::string> sweep_;
  std::vector<std::string> shard_sweep_;
  std::string training_;
  std::string dataflow_;
  std::string robustness_;
  std::string shard_chaos_;
};

class Fixture {
 public:
  static Fixture& Get() {
    static Fixture* instance = new Fixture();
    return *instance;
  }

  const clair::Testbed& testbed() const { return *testbed_; }
  const clair::TrainedModel& model() const { return model_; }

 private:
  Fixture() {
    corpus::CorpusOptions corpus_options;
    corpus_options.mature_apps = 48;
    corpus_options.immature_apps = 8;
    corpus_options.size_scale = 0.01;
    ecosystem_ = std::make_unique<corpus::EcosystemGenerator>(corpus_options);
    clair::TestbedOptions testbed_options;
    testbed_options.deep_analysis_max_files = 1;
    testbed_ = std::make_unique<clair::Testbed>(*ecosystem_, testbed_options);
    clair::PipelineOptions pipeline_options;
    pipeline_options.cv_folds = 5;
    const clair::TrainingPipeline pipeline(testbed_->Collect(), pipeline_options);
    model_ = pipeline.TrainFinal();
  }

  std::unique_ptr<corpus::EcosystemGenerator> ecosystem_;
  std::unique_ptr<clair::Testbed> testbed_;
  clair::TrainedModel model_;
};

std::vector<metrics::SourceFile> MakeSubject(int lines) {
  support::Rng rng(7);
  corpus::AppStyle style;
  metrics::SourceFile file;
  file.path = "subject.c";
  file.language = metrics::Language::kMiniC;
  file.text = corpus::GenerateMiniCFile(rng, style, lines);
  return {file};
}

// Synthetic training matrix with continuous features (> 256 distinct values
// per column, so the histogram path really quantile-compresses) and a weak
// multivariate signal — shaped like the corpus feature matrix but big enough
// that split finding dominates.
ml::Dataset MakeTrainingDataset(size_t rows, size_t features, uint64_t seed) {
  std::vector<std::string> names;
  names.reserve(features);
  for (size_t j = 0; j < features; ++j) {
    names.push_back(support::Format("f%zu", j));
  }
  ml::Dataset data = ml::Dataset::ForClassification(std::move(names), {"neg", "pos"});
  data.Reserve(rows);
  support::Rng rng(seed);
  std::vector<double> row(features);
  for (size_t i = 0; i < rows; ++i) {
    const double label = i % 2 == 0 ? 0.0 : 1.0;
    for (size_t j = 0; j < features; ++j) {
      const double signal = j < 4 ? label * 0.8 : 0.0;
      row[j] = signal + rng.Normal(0.0, 1.0);
    }
    data.AddRow(row, label);
  }
  return data;
}

// Forest training + 5-fold CV in histogram vs exact split mode on the same
// dataset. The histogram path pays one binning pass, then every tree node is
// an O(rows + bins) scan instead of an O(rows log rows) sort; CV folds train
// on row-index views over the shared binned codes instead of Subset copies.
void PrintTrainingThroughput(bool smoke, JsonSink& json) {
  benchcommon::PrintHeader("Forest training",
                           "histogram-binned vs exact sort-based split search");
  const size_t rows = smoke ? 600 : 4000;
  const size_t features = 32;
  const int num_trees = smoke ? 12 : 48;
  const ml::Dataset data = MakeTrainingDataset(rows, features, 11);

  struct ModeResult {
    double train_seconds = 0.0;
    double cv_seconds = 0.0;
    double cv_accuracy = 0.0;
  };
  const auto run_mode = [&](ml::SplitMode mode) {
    ModeResult result;
    ml::ForestOptions options;
    options.num_trees = num_trees;
    options.tree.max_depth = 10;
    options.tree.split_mode = mode;
    options.seed = 13;
    {
      // Fresh dataset copy shares no binned cache with the CV run below, so
      // the train row includes the one-time binning pass (cold cost).
      const ml::Dataset cold = MakeTrainingDataset(rows, features, 11);
      ml::RandomForestClassifier forest(options);
      const auto t0 = std::chrono::steady_clock::now();
      forest.Train(cold);
      result.train_seconds = Seconds(t0, std::chrono::steady_clock::now());
    }
    {
      const auto t0 = std::chrono::steady_clock::now();
      const ml::CvMetrics cv = ml::CrossValidate(
          data,
          [&options] {
            return std::unique_ptr<ml::Classifier>(new ml::RandomForestClassifier(options));
          },
          5, 1);
      result.cv_seconds = Seconds(t0, std::chrono::steady_clock::now());
      result.cv_accuracy = cv.accuracy;
    }
    return result;
  };

  const ModeResult histogram = run_mode(ml::SplitMode::kHistogram);
  const ModeResult exact = run_mode(ml::SplitMode::kExact);
  const double train_speedup = exact.train_seconds / histogram.train_seconds;
  const double cv_speedup = exact.cv_seconds / histogram.cv_seconds;
  const auto rows_per_sec = [&](double seconds) {
    return static_cast<double>(rows) / seconds;
  };

  std::vector<std::vector<std::string>> table;
  table.push_back({"histogram", support::Format("%.3f s", histogram.train_seconds),
                   support::Format("%.0f", rows_per_sec(histogram.train_seconds)),
                   support::Format("%.3f s", histogram.cv_seconds),
                   support::Format("%.3f", histogram.cv_accuracy)});
  table.push_back({"exact", support::Format("%.3f s", exact.train_seconds),
                   support::Format("%.0f", rows_per_sec(exact.train_seconds)),
                   support::Format("%.3f s", exact.cv_seconds),
                   support::Format("%.3f", exact.cv_accuracy)});
  std::printf("%zu rows x %zu continuous features, %d trees, depth 10, 5-fold CV\n\n",
              rows, features, num_trees);
  std::printf("%s\n",
              report::RenderTable(
                  {"split mode", "forest train", "rows/s", "5-fold CV", "CV accuracy"},
                  table)
                  .c_str());
  std::printf("histogram vs exact: %.2fx on training, %.2fx on CV; accuracy gap %.4f\n"
              "(acceptance bar: >= 3x, accuracy within 0.01)\n\n",
              train_speedup, cv_speedup,
              std::fabs(histogram.cv_accuracy - exact.cv_accuracy));

  json.AddStage("forest_train_histogram", histogram.train_seconds * 1000.0,
                rows_per_sec(histogram.train_seconds));
  json.AddStage("forest_train_exact", exact.train_seconds * 1000.0,
                rows_per_sec(exact.train_seconds));
  json.AddStage("forest_cv_histogram", histogram.cv_seconds * 1000.0,
                rows_per_sec(histogram.cv_seconds));
  json.AddStage("forest_cv_exact", exact.cv_seconds * 1000.0,
                rows_per_sec(exact.cv_seconds));
  json.SetTraining(rows, features, train_speedup, cv_speedup);
}

void PrintLatencies(JsonSink& json) {
  benchcommon::PrintHeader("Pipeline throughput",
                           "developer-facing evaluation latency (trained model)");
  auto& fixture = Fixture::Get();
  const clair::SecurityEvaluator evaluator(fixture.model(), fixture.testbed());
  std::vector<std::vector<std::string>> rows;
  for (const int lines : {100, 500, 2000, 8000}) {
    const auto files = MakeSubject(lines);
    const auto t0 = std::chrono::steady_clock::now();
    const auto report = evaluator.Evaluate("subject", files);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count() / 1000.0;
    rows.push_back({std::to_string(lines), support::Format("%.1f ms", ms),
                    support::Format("%.3f", report.overall_risk)});
    json.AddStage(support::Format("evaluate_%d_loc", lines), ms);
  }
  std::printf("%s\n",
              report::RenderTable({"subject LoC", "evaluation latency", "overall risk"},
                                  rows)
                  .c_str());
  std::printf("training is offline (once per corpus refresh); evaluation is the\n"
              "developer-visible cost and stays interactive.\n\n");
}

// Thread-scaling sweep: full testbed collection (source synthesis + the
// extraction battery per app) at 1/2/4/N workers. Caching is off so every
// row measures real extraction work; determinism tests elsewhere prove the
// output is bit-identical across all rows.
void PrintThreadScaling(bool smoke, JsonSink& json) {
  benchcommon::PrintHeader("Thread scaling",
                           "parallel testbed collection at 1..N workers");
  const auto ecosystem = smoke
                             ? benchcommon::MakeEcosystem(0.01, 24, 4)
                             : benchcommon::MakeEcosystem(benchcommon::EnvScale(0.01));
  const int hw = support::ResolveThreadCount(0);
  std::vector<int> worker_counts = smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4};
  if (!smoke && hw > 4) {
    worker_counts.push_back(hw);
  }
  std::vector<std::vector<std::string>> rows;
  double serial_seconds = 0.0;
  size_t apps = 0;
  for (const int workers : worker_counts) {
    clair::TestbedOptions options;
    options.deep_analysis_max_files = 1;
    options.cache_features = false;  // Cold rows; the cache is measured below.
    options.threads = workers;
    const clair::Testbed testbed(ecosystem, options);
    const auto t0 = std::chrono::steady_clock::now();
    const auto records = testbed.Collect();
    const auto t1 = std::chrono::steady_clock::now();
    const double seconds = Seconds(t0, t1);
    apps = records.size();
    if (workers == worker_counts.front()) {
      serial_seconds = seconds;
    }
    rows.push_back({std::to_string(workers), support::Format("%.2f s", seconds),
                    support::Format("%.1f", static_cast<double>(apps) / seconds),
                    support::Format("%.2fx", serial_seconds / seconds)});
    json.AddThreadSweep(workers, seconds, static_cast<double>(apps) / seconds);
  }
  std::printf("%zu apps per sweep; hardware threads on this machine: %d\n\n", apps, hw);
  std::printf("%s\n", report::RenderTable({"workers", "collection time", "apps/sec",
                                           "speedup vs 1 worker"},
                                          rows)
                          .c_str());
  std::printf("workers set via TestbedOptions.threads (dedicated pool); production\n"
              "runs size the global pool from CLAIR_THREADS. per-app tasks are\n"
              "independent and seeded by index, so every row yields the same bytes.\n\n");
}

// Content-addressed feature-row cache: a second sweep over unchanged sources
// replays extraction from FNV-1a-keyed rows. The warm/cold ratio is
// core-count-independent (it removes the work rather than spreading it).
void PrintCacheEffect(bool smoke, JsonSink& json) {
  benchcommon::PrintHeader("Feature-row cache",
                           "cold vs warm testbed sweep (content-addressed rows)");
  const auto ecosystem = smoke
                             ? benchcommon::MakeEcosystem(0.01, 24, 4)
                             : benchcommon::MakeEcosystem(benchcommon::EnvScale(0.01));
  clair::TestbedOptions options;
  options.deep_analysis_max_files = 1;
  options.threads = 1;
  const clair::Testbed testbed(ecosystem, options);
  const auto timed_sweep = [&] {
    const auto t0 = std::chrono::steady_clock::now();
    const auto records = testbed.Collect();
    const auto t1 = std::chrono::steady_clock::now();
    return std::make_pair(Seconds(t0, t1), records.size());
  };
  const auto [cold_seconds, apps] = timed_sweep();
  const auto cold_stats = testbed.cache_stats();
  const auto [warm_seconds, apps2] = timed_sweep();
  const auto warm_stats = testbed.cache_stats();
  (void)apps2;
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"cold", support::Format("%.2f s", cold_seconds),
                  support::Format("%llu", static_cast<unsigned long long>(cold_stats.hits)),
                  support::Format("%llu", static_cast<unsigned long long>(cold_stats.misses)),
                  "1.00x"});
  rows.push_back(
      {"warm", support::Format("%.2f s", warm_seconds),
       support::Format("%llu", static_cast<unsigned long long>(warm_stats.hits - cold_stats.hits)),
       support::Format("%llu",
                       static_cast<unsigned long long>(warm_stats.misses - cold_stats.misses)),
       support::Format("%.2fx", cold_seconds / warm_seconds)});
  std::printf("%zu apps per sweep; cache keyed on file bytes + extraction options\n\n",
              apps);
  std::printf("%s\n",
              report::RenderTable({"sweep", "time", "cache hits", "cache misses", "speedup"},
                                  rows)
                  .c_str());
  std::printf("warm sweeps skip parsing, dataflow, symexec and dynamic tracing for\n"
              "unchanged files — the common case in incremental corpus refreshes.\n\n");
  json.AddStage("testbed_sweep_cold", cold_seconds * 1000.0);
  json.AddStage("testbed_sweep_warm", warm_seconds * 1000.0);
}

// Dataflow fixpoint engine vs the dense reference sweeps on lowered MiniC
// modules: the pipeline-level view of the word-packed bitset + priority
// worklist (bench/dataflow_fixpoint has the per-analysis breakdown on
// synthetic CFG tiers). Feature maps are required to match exactly — the
// engine is a pure scheduling/representation change.
void PrintDataflow(bool smoke, JsonSink& json) {
  benchcommon::PrintHeader("Dataflow fixpoints",
                           "packed-bitset worklist engine vs dense reference sweeps");
  const int num_modules = smoke ? 6 : 24;
  const int target_lines = smoke ? 300 : 1200;
  support::Rng rng(29);
  corpus::AppStyle style;
  std::vector<lang::IrModule> modules;
  for (int i = 0; i < num_modules; ++i) {
    auto unit = lang::Parse(corpus::GenerateMiniCFile(rng, style, target_lines));
    if (!unit.ok()) {
      continue;
    }
    auto module = lang::LowerToIr(unit.value());
    if (module.ok()) {
      modules.push_back(std::move(module.value()));
    }
  }
  const auto run_mode = [&](dataflow::DataflowMode mode) {
    std::vector<metrics::FeatureVector> features;
    features.reserve(modules.size());
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& module : modules) {
      metrics::FeatureVector fv = dataflow::DataflowFeatures(module, nullptr, mode);
      dataflow::IntervalOptions options;
      options.mode = mode;
      const metrics::FeatureVector ai = dataflow::IntervalFeatures(module, options);
      for (const auto& [key, value] : ai.values()) {
        fv.Set(key, value);
      }
      features.push_back(std::move(fv));
    }
    const double seconds = Seconds(t0, std::chrono::steady_clock::now());
    return std::make_pair(seconds, std::move(features));
  };
  const auto [engine_seconds, engine_features] = run_mode(dataflow::DataflowMode::kEngine);
  const auto [reference_seconds, reference_features] =
      run_mode(dataflow::DataflowMode::kReference);
  bool identical = engine_features.size() == reference_features.size();
  for (size_t i = 0; identical && i < engine_features.size(); ++i) {
    identical = engine_features[i].values() == reference_features[i].values();
  }
  const double speedup = reference_seconds / engine_seconds;
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"engine", support::Format("%.3f s", engine_seconds),
                  support::Format("%.1f", static_cast<double>(modules.size()) / engine_seconds),
                  "1.00x"});
  rows.push_back(
      {"reference", support::Format("%.3f s", reference_seconds),
       support::Format("%.1f", static_cast<double>(modules.size()) / reference_seconds),
       support::Format("%.2fx slower", speedup)});
  std::printf("%zu lowered modules (~%d LoC each); dataflow.* + ai.* extraction\n\n",
              modules.size(), target_lines);
  std::printf("%s\n",
              report::RenderTable({"mode", "extraction time", "modules/s", "relative"}, rows)
                  .c_str());
  std::printf("feature maps identical across modes: %s (must be yes; the engine only\n"
              "changes set representation and visit order, never fixpoints)\n\n",
              identical ? "yes" : "NO");
  json.AddStage("dataflow_features_engine", engine_seconds * 1000.0);
  json.AddStage("dataflow_features_reference", reference_seconds * 1000.0);
  json.SetDataflow(modules.size(), speedup, identical);
}

// Fault-tolerant sweep: collect under a mixed injected-fault load and show
// the failure taxonomy — every app row still lands, degraded stages are
// accounted per-stage, and the overhead vs a clean sweep stays small. The
// cache is off (fault verdicts are part of the cache key, so a faulted
// sweep would never reuse clean rows anyway, but cold rows keep the timing
// honest).
void PrintRobustness(bool smoke, JsonSink& json) {
  benchcommon::PrintHeader("Fault-tolerant sweep",
                           "collection under injected faults (degrade, never drop)");
  const auto ecosystem = smoke
                             ? benchcommon::MakeEcosystem(0.01, 24, 4)
                             : benchcommon::MakeEcosystem(benchcommon::EnvScale(0.01));
  const std::string faults = "parse:0.15,solver:0.1,dynamic:0.1";
  clair::TestbedOptions options;
  options.deep_analysis_max_files = 1;
  options.cache_features = false;
  const auto timed_sweep = [&](const clair::Testbed& testbed) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto records = testbed.Collect();
    const auto t1 = std::chrono::steady_clock::now();
    return std::make_pair(Seconds(t0, t1), records.size());
  };
  const clair::Testbed clean(ecosystem, options);
  const auto [clean_seconds, clean_apps] = timed_sweep(clean);
  double faulted_seconds = 0.0;
  size_t faulted_apps = 0;
  clair::RunReport report;
  {
    support::FaultInjector::ScopedConfig scoped(faults);
    const clair::Testbed faulted(ecosystem, options);
    std::tie(faulted_seconds, faulted_apps) = timed_sweep(faulted);
    report = faulted.run_report();
  }
  std::printf("CLAIR_FAULTS=\"%s\"; %zu/%zu apps collected (clean/faulted)\n\n",
              faults.c_str(), clean_apps, faulted_apps);
  std::printf("%s\n", report.ToString().c_str());
  std::printf("clean %.2f s vs faulted %.2f s (%.2fx); degraded stages fall back to\n"
              "neutral features + robust.* provenance, rows are never dropped.\n\n",
              clean_seconds, faulted_seconds, faulted_seconds / clean_seconds);
  json.AddStage("testbed_sweep_clean", clean_seconds * 1000.0);
  json.AddStage("testbed_sweep_faulted", faulted_seconds * 1000.0);
  json.SetRobustness(faults, report);
}

// Sharded fleet sweeps: the simulated-transport coordinator at 1..N
// workers, plus one seeded kill-schedule run. Every configuration's merged
// records AND merged function-row store must byte-equal the 1-process
// sweep — a mismatch fails the bench (exit 1), because a merge that loses
// or reorders rows silently would invalidate every fleet-scale dataset.
bool PrintShardScaling(bool smoke, JsonSink& json) {
  benchcommon::PrintHeader("Sharded fleet sweeps",
                           "supervised shard workers, crash-consistent merge");
  const auto ecosystem = smoke
                             ? benchcommon::MakeEcosystem(0.01, 24, 4)
                             : benchcommon::MakeEcosystem(benchcommon::EnvScale(0.01));
  const std::string work_dir = "BENCH_shard_work";
  ::mkdir(work_dir.c_str(), 0755);
  clair::TestbedOptions testbed_options;
  testbed_options.deep_analysis_max_files = 1;
  testbed_options.cache_features = false;

  // 1-process reference: the bytes every sharded run must reproduce.
  const clair::Testbed reference(ecosystem, testbed_options);
  const auto t0 = std::chrono::steady_clock::now();
  const auto expected_records = reference.Collect();
  const double reference_seconds = Seconds(t0, std::chrono::steady_clock::now());
  const std::string expected_bytes = clair::SaveRecords(expected_records);
  const std::string baseline_store_path = work_dir + "/baseline.clfs";
  std::string expected_store;
  {
    auto writer = ml::FeatureStoreWriter::Create(
        baseline_store_path, metrics::FunctionFeatureNames(),
        clair::FunctionClassNames(), ml::FeatureStoreOptions{});
    if (!writer.ok() || !reference.CollectFunctionRows(*writer.value()).ok() ||
        !writer.value()->Finish().ok()) {
      std::fprintf(stderr, "shard bench: baseline store failed\n");
      return false;
    }
    std::ifstream in(baseline_store_path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    expected_store = buffer.str();
  }

  const auto run_config = [&](int workers, const char* subdir) {
    clair::ShardSweepOptions options;
    options.num_shards = 8;
    options.num_workers = workers;
    options.work_dir = work_dir + "/" + subdir;
    ::mkdir(options.work_dir.c_str(), 0755);
    options.testbed = testbed_options;
    clair::ShardCoordinator coordinator(ecosystem, options);
    const auto start = std::chrono::steady_clock::now();
    auto result = coordinator.Run();
    const double seconds = Seconds(start, std::chrono::steady_clock::now());
    bool identical = false;
    clair::ShardSweepStats stats;
    if (result.ok()) {
      stats = result.value().stats;
      std::ifstream in(result.value().store_path, std::ios::binary);
      std::ostringstream buffer;
      buffer << in.rdbuf();
      identical = clair::SaveRecords(result.value().records) == expected_bytes &&
                  buffer.str() == expected_store;
      std::remove(result.value().store_path.c_str());
    }
    return std::make_tuple(seconds, identical, stats);
  };

  bool all_identical = true;
  const size_t apps = expected_records.size();
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"1-process", support::Format("%.2f s", reference_seconds),
                  support::Format("%.1f", static_cast<double>(apps) / reference_seconds),
                  "-", "reference"});
  for (const int workers : smoke ? std::vector<int>{1, 3} : std::vector<int>{1, 2, 4}) {
    const auto [seconds, identical, stats] =
        run_config(workers, support::Format("w%d", workers).c_str());
    all_identical = all_identical && identical;
    rows.push_back({support::Format("%d workers", workers),
                    support::Format("%.2f s", seconds),
                    support::Format("%.1f", static_cast<double>(apps) / seconds),
                    support::Format("%llu", static_cast<unsigned long long>(
                                                stats.generations_launched)),
                    identical ? "yes" : "NO"});
    json.AddShardSweep(workers, seconds, static_cast<double>(apps) / seconds,
                       identical);
  }
  // One seeded kill schedule on top: crashes, steals, torn checkpoint
  // tails — and still the same bytes.
  const std::string chaos_faults = "worker_crash:0.5,heartbeat_loss:0.2,seed:17";
  {
    support::FaultInjector::ScopedConfig scoped(chaos_faults);
    const auto [seconds, identical, stats] = run_config(3, "chaos");
    all_identical = all_identical && identical;
    rows.push_back({"3 workers + chaos", support::Format("%.2f s", seconds),
                    support::Format("%.1f", static_cast<double>(apps) / seconds),
                    support::Format("%llu", static_cast<unsigned long long>(
                                                stats.generations_launched)),
                    identical ? "yes" : "NO"});
    json.SetShardChaos(chaos_faults, stats, identical);
  }
  std::remove(baseline_store_path.c_str());
  std::printf("%zu apps, 8 shards, simulated transport; chaos row runs under\n"
              "CLAIR_FAULTS=\"%s\"\n\n",
              apps, chaos_faults.c_str());
  std::printf("%s\n",
              report::RenderTable({"configuration", "sweep + merge", "apps/sec",
                                   "generations", "bytes == 1-process"},
                                  rows)
                  .c_str());
  std::printf("merge determinism is load-bearing: records, function-row store and\n"
              "robustness fold must byte-equal the 1-process sweep (DESIGN.md s8).\n\n");
  return all_identical;
}

// Function-granular incremental re-extraction: cold full-app extraction vs
// a warm re-score after a one-function edit. The granular tiers (AST cache,
// per-file metric vectors, per-function dataflow/interval payloads,
// per-entry symexec results, per-file dynamic batteries) confine the warm
// cost to the changed set; the result must be bit-identical to from-scratch
// extraction of the edited tree (a mismatch fails the bench). Emits
// BENCH_incremental.json including the proc.* forest-importance ablation.
bool PrintIncremental(bool smoke) {
  benchcommon::PrintHeader("Incremental re-extraction",
                           "warm one-function-edit re-score vs cold full-app extraction");
  const auto ecosystem = smoke
                             ? benchcommon::MakeEcosystem(0.01, 24, 4)
                             : benchcommon::MakeEcosystem(benchcommon::EnvScale(0.02), 48, 8);

  // Subject: the selected app with the most MiniC files, so the cold sweep
  // covers a realistic multi-file battery.
  const corpus::AppSpec* subject = nullptr;
  size_t subject_minic = 0;
  for (const auto& name : ecosystem.database().AppsWithConvergingHistory(5.0)) {
    const corpus::AppSpec* spec = ecosystem.FindSpec(name);
    if (spec == nullptr) {
      continue;
    }
    size_t minic = 0;
    for (const auto& file : ecosystem.GenerateSources(*spec)) {
      if (file.language == metrics::Language::kMiniC) {
        ++minic;
      }
    }
    if (minic > subject_minic) {
      subject = spec;
      subject_minic = minic;
    }
  }
  if (subject == nullptr) {
    std::fprintf(stderr, "incremental bench: no MiniC app in the corpus\n");
    return false;
  }
  const auto files = ecosystem.GenerateSources(*subject);

  clair::TestbedOptions options;
  options.deep_analysis_max_files = smoke ? 4 : 16;
  const clair::Testbed testbed(ecosystem, options);

  const auto t_cold0 = std::chrono::steady_clock::now();
  const auto cold_features = testbed.ExtractFeatures(files);
  const double cold_seconds = Seconds(t_cold0, std::chrono::steady_clock::now());
  const auto cold_stats = testbed.incremental_stats();

  // The canonical developer event: one statement added to one function.
  auto edited = files;
  std::string edited_fn;
  bool edit_applied = false;
  for (auto& file : edited) {
    if (file.language != metrics::Language::kMiniC) {
      continue;
    }
    const auto index = clair::IndexFunctions(file);
    if (index.functions.empty()) {
      continue;
    }
    edited_fn = index.functions.front().name;
    edit_applied = corpus::ApplyFunctionEdit(file, edited_fn, "int hotfix_probe = 41;");
    break;
  }
  if (!edit_applied) {
    std::fprintf(stderr, "incremental bench: could not apply the function edit\n");
    return false;
  }
  const auto plan = clair::PlanFunctionDiff(files, edited);

  const auto t_warm0 = std::chrono::steady_clock::now();
  const auto warm_features = testbed.ExtractFeatures(edited);
  const double warm_seconds = Seconds(t_warm0, std::chrono::steady_clock::now());
  const auto warm_stats = testbed.incremental_stats();

  // An unchanged re-score is a pure L1 row hit.
  const auto t_noop0 = std::chrono::steady_clock::now();
  const auto replay_features = testbed.ExtractFeatures(edited);
  const double noop_seconds = Seconds(t_noop0, std::chrono::steady_clock::now());

  // Bit-identity: the warm result must equal from-scratch extraction of the
  // edited tree — both through fresh granular caches and through the
  // module-level path with the granular layer disabled.
  const clair::Testbed scratch(ecosystem, options);
  clair::TestbedOptions module_options = options;
  module_options.cache_functions = false;
  const clair::Testbed module_path(ecosystem, module_options);
  const bool identical =
      warm_features.values() == scratch.ExtractFeatures(edited).values() &&
      warm_features.values() == module_path.ExtractFeatures(edited).values() &&
      replay_features.values() == warm_features.values();

  const double speedup = cold_seconds / warm_seconds;
  const uint64_t fn_cold = cold_stats.fn_dataflow_computed;
  const uint64_t fn_warm = warm_stats.fn_dataflow_computed - cold_stats.fn_dataflow_computed;
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"cold full app", support::Format("%.2f ms", cold_seconds * 1000.0),
                  support::Format("%llu", static_cast<unsigned long long>(fn_cold)),
                  "1.00x"});
  rows.push_back({"warm 1-fn edit", support::Format("%.2f ms", warm_seconds * 1000.0),
                  support::Format("%llu", static_cast<unsigned long long>(fn_warm)),
                  support::Format("%.1fx", speedup)});
  rows.push_back({"warm unchanged", support::Format("%.2f ms", noop_seconds * 1000.0), "0",
                  support::Format("%.1fx", cold_seconds / noop_seconds)});
  std::printf("app %s: %zu MiniC files, deep budget %d files; edit touched %s\n"
              "(diff plan: %zu modified / %zu unchanged functions)\n\n",
              subject->name.c_str(), subject_minic, options.deep_analysis_max_files,
              edited_fn.c_str(), plan.modified, plan.unchanged);
  std::printf("%s\n",
              report::RenderTable({"re-score", "latency", "fn batteries run", "speedup"}, rows)
                  .c_str());
  std::printf("warm == from-scratch bytes: %s (must be yes); acceptance bar >= 20x\n\n",
              identical ? "yes" : "NO");

  // proc.* ablation: does the forest actually lean on the process features?
  // Function rows with and without the proc.* block, same forest config.
  const auto& names = metrics::FunctionFeatureNames();
  std::vector<size_t> proc_cols;
  for (size_t j = 0; j < names.size(); ++j) {
    if (names[j].rfind("proc.", 0) == 0) {
      proc_cols.push_back(j);
    }
  }
  ml::Dataset with_proc = ml::Dataset::ForClassification(
      {names.begin(), names.end()}, clair::FunctionClassNames());
  ml::Dataset without_proc = ml::Dataset::ForClassification(
      {names.begin(), names.end()}, clair::FunctionClassNames());
  for (const auto& name : ecosystem.database().AppsWithConvergingHistory(5.0)) {
    const corpus::AppSpec* spec = ecosystem.FindSpec(name);
    if (spec == nullptr) {
      continue;
    }
    for (const auto& row : clair::ExtractAppFunctionRows(ecosystem, *spec)) {
      with_proc.AddRow(row.values, row.target);
      auto ablated = row.values;
      for (const size_t j : proc_cols) {
        ablated[j] = 0.0;
      }
      without_proc.AddRow(ablated, row.target);
    }
  }
  ml::ForestOptions forest_options;
  forest_options.num_trees = smoke ? 24 : 48;
  forest_options.seed = 13;
  ml::RandomForestClassifier forest(forest_options);
  forest.Train(with_proc);
  double proc_importance = 0.0;
  double total_importance = 0.0;
  for (const auto& [feature, importance] : forest.FeatureImportance()) {
    total_importance += importance;
    if (feature.rfind("proc.", 0) == 0) {
      proc_importance += importance;
    }
  }
  const double proc_share = total_importance > 0.0 ? proc_importance / total_importance : 0.0;
  const auto forest_factory = [&forest_options] {
    return std::unique_ptr<ml::Classifier>(new ml::RandomForestClassifier(forest_options));
  };
  const ml::CvMetrics cv_with = ml::CrossValidate(with_proc, forest_factory, 5, 1);
  const ml::CvMetrics cv_without = ml::CrossValidate(without_proc, forest_factory, 5, 1);
  std::printf("proc.* ablation over %zu function rows (%zu proc columns):\n"
              "forest importance share %.3f; 5-fold CV accuracy %.3f with proc.*\n"
              "vs %.3f with the block zeroed (must be nonzero importance).\n\n",
              with_proc.num_rows(), proc_cols.size(), proc_share, cv_with.accuracy,
              cv_without.accuracy);

  benchcommon::JsonSink sink;
  sink.Add("bench", "incremental_rescore", true);
  sink.Add("app", subject->name, true);
  sink.AddInt("minic_files", subject_minic);
  sink.AddInt("deep_files", static_cast<uint64_t>(options.deep_analysis_max_files));
  sink.AddNumber("cold_ms", cold_seconds * 1000.0);
  sink.AddNumber("warm_edit_ms", warm_seconds * 1000.0);
  sink.AddNumber("warm_unchanged_ms", noop_seconds * 1000.0);
  sink.AddNumber("speedup_warm_vs_cold", speedup);
  sink.AddInt("changed_functions", plan.modified);
  sink.AddInt("fn_batteries_cold", fn_cold);
  sink.AddInt("fn_batteries_warm", fn_warm);
  sink.Add("identical_to_scratch", identical ? "true" : "false", false);
  sink.AddRaw("proc_ablation",
              support::Format("{\"rows\": %zu, \"proc_columns\": %zu, "
                              "\"importance_share\": %.4f, "
                              "\"cv_accuracy_with\": %.4f, "
                              "\"cv_accuracy_without\": %.4f}",
                              with_proc.num_rows(), proc_cols.size(), proc_share,
                              cv_with.accuracy, cv_without.accuracy));
  const char* json_path = "BENCH_incremental.json";
  if (sink.WriteTo(json_path)) {
    std::printf("wrote %s\n\n", json_path);
  } else {
    std::fprintf(stderr, "failed to write %s\n", json_path);
    return false;
  }
  return identical && proc_importance > 0.0;
}

void BM_EvaluateSubject(benchmark::State& state) {
  auto& fixture = Fixture::Get();
  const clair::SecurityEvaluator evaluator(fixture.model(), fixture.testbed());
  const auto files = MakeSubject(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const auto report = evaluator.Evaluate("subject", files);
    benchmark::DoNotOptimize(report.overall_risk);
  }
}
BENCHMARK(BM_EvaluateSubject)->Arg(100)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

void BM_PredictOnly(benchmark::State& state) {
  auto& fixture = Fixture::Get();
  const auto files = MakeSubject(500);
  const auto features = fixture.testbed().ExtractFeatures(files);
  const auto* bundle = fixture.model().ForHypothesis("cvss_gt7");
  for (auto _ : state) {
    benchmark::DoNotOptimize(bundle->PredictRisk(features));
  }
}
BENCHMARK(BM_PredictOnly)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  JsonSink json;
  PrintTrainingThroughput(smoke, json);
  PrintDataflow(smoke, json);
  PrintThreadScaling(smoke, json);
  PrintCacheEffect(smoke, json);
  PrintRobustness(smoke, json);
  const bool shards_identical = PrintShardScaling(smoke, json);
  const bool incremental_ok = PrintIncremental(smoke);
  if (!smoke) {
    PrintLatencies(json);
  }
  const char* json_path = "BENCH_pipeline.json";
  if (json.Write(json_path)) {
    std::printf("wrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "failed to write %s\n", json_path);
    return 1;
  }
  if (!shards_identical) {
    std::fprintf(stderr, "sharded merge does not match the 1-process sweep\n");
    return 1;
  }
  if (!incremental_ok) {
    std::fprintf(stderr,
                 "incremental warm re-score does not match from-scratch extraction\n");
    return 1;
  }
  if (!smoke) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}
