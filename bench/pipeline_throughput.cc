// §5.3: "the security evaluation requires very little effort from the
// developers" — end-to-end latency of the developer-facing path: feature
// extraction + per-hypothesis prediction on an already-trained model.
#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>

#include "bench/common.h"
#include "src/clair/evaluator.h"
#include "src/clair/pipeline.h"
#include "src/corpus/codegen.h"
#include "src/report/render.h"
#include "src/support/strings.h"

namespace {

class Fixture {
 public:
  static Fixture& Get() {
    static Fixture* instance = new Fixture();
    return *instance;
  }

  const clair::Testbed& testbed() const { return *testbed_; }
  const clair::TrainedModel& model() const { return model_; }

 private:
  Fixture() {
    corpus::CorpusOptions corpus_options;
    corpus_options.mature_apps = 48;
    corpus_options.immature_apps = 8;
    corpus_options.size_scale = 0.01;
    ecosystem_ = std::make_unique<corpus::EcosystemGenerator>(corpus_options);
    clair::TestbedOptions testbed_options;
    testbed_options.deep_analysis_max_files = 1;
    testbed_ = std::make_unique<clair::Testbed>(*ecosystem_, testbed_options);
    clair::PipelineOptions pipeline_options;
    pipeline_options.cv_folds = 5;
    const clair::TrainingPipeline pipeline(testbed_->Collect(), pipeline_options);
    model_ = pipeline.TrainFinal();
  }

  std::unique_ptr<corpus::EcosystemGenerator> ecosystem_;
  std::unique_ptr<clair::Testbed> testbed_;
  clair::TrainedModel model_;
};

std::vector<metrics::SourceFile> MakeSubject(int lines) {
  support::Rng rng(7);
  corpus::AppStyle style;
  metrics::SourceFile file;
  file.path = "subject.c";
  file.language = metrics::Language::kMiniC;
  file.text = corpus::GenerateMiniCFile(rng, style, lines);
  return {file};
}

void PrintLatencies() {
  benchcommon::PrintHeader("Pipeline throughput",
                           "developer-facing evaluation latency (trained model)");
  auto& fixture = Fixture::Get();
  const clair::SecurityEvaluator evaluator(fixture.model(), fixture.testbed());
  std::vector<std::vector<std::string>> rows;
  for (const int lines : {100, 500, 2000, 8000}) {
    const auto files = MakeSubject(lines);
    const auto t0 = std::chrono::steady_clock::now();
    const auto report = evaluator.Evaluate("subject", files);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count() / 1000.0;
    rows.push_back({std::to_string(lines), support::Format("%.1f ms", ms),
                    support::Format("%.3f", report.overall_risk)});
  }
  std::printf("%s\n",
              report::RenderTable({"subject LoC", "evaluation latency", "overall risk"},
                                  rows)
                  .c_str());
  std::printf("training is offline (once per corpus refresh); evaluation is the\n"
              "developer-visible cost and stays interactive.\n\n");
}

void BM_EvaluateSubject(benchmark::State& state) {
  auto& fixture = Fixture::Get();
  const clair::SecurityEvaluator evaluator(fixture.model(), fixture.testbed());
  const auto files = MakeSubject(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const auto report = evaluator.Evaluate("subject", files);
    benchmark::DoNotOptimize(report.overall_risk);
  }
}
BENCHMARK(BM_EvaluateSubject)->Arg(100)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

void BM_PredictOnly(benchmark::State& state) {
  auto& fixture = Fixture::Get();
  const auto files = MakeSubject(500);
  const auto features = fixture.testbed().ExtractFeatures(files);
  const auto* bundle = fixture.model().ForHypothesis("cvss_gt7");
  for (auto _ : state) {
    benchmark::DoNotOptimize(bundle->PredictRisk(features));
  }
}
BENCHMARK(BM_PredictOnly)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  PrintLatencies();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
