// §5.3: "the security evaluation requires very little effort from the
// developers" — end-to-end latency of the developer-facing path: feature
// extraction + per-hypothesis prediction on an already-trained model.
#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>

#include "bench/common.h"
#include "src/clair/evaluator.h"
#include "src/clair/pipeline.h"
#include "src/clair/testbed.h"
#include "src/corpus/codegen.h"
#include "src/report/render.h"
#include "src/support/strings.h"
#include "src/support/thread_pool.h"

namespace {

class Fixture {
 public:
  static Fixture& Get() {
    static Fixture* instance = new Fixture();
    return *instance;
  }

  const clair::Testbed& testbed() const { return *testbed_; }
  const clair::TrainedModel& model() const { return model_; }

 private:
  Fixture() {
    corpus::CorpusOptions corpus_options;
    corpus_options.mature_apps = 48;
    corpus_options.immature_apps = 8;
    corpus_options.size_scale = 0.01;
    ecosystem_ = std::make_unique<corpus::EcosystemGenerator>(corpus_options);
    clair::TestbedOptions testbed_options;
    testbed_options.deep_analysis_max_files = 1;
    testbed_ = std::make_unique<clair::Testbed>(*ecosystem_, testbed_options);
    clair::PipelineOptions pipeline_options;
    pipeline_options.cv_folds = 5;
    const clair::TrainingPipeline pipeline(testbed_->Collect(), pipeline_options);
    model_ = pipeline.TrainFinal();
  }

  std::unique_ptr<corpus::EcosystemGenerator> ecosystem_;
  std::unique_ptr<clair::Testbed> testbed_;
  clair::TrainedModel model_;
};

std::vector<metrics::SourceFile> MakeSubject(int lines) {
  support::Rng rng(7);
  corpus::AppStyle style;
  metrics::SourceFile file;
  file.path = "subject.c";
  file.language = metrics::Language::kMiniC;
  file.text = corpus::GenerateMiniCFile(rng, style, lines);
  return {file};
}

void PrintLatencies() {
  benchcommon::PrintHeader("Pipeline throughput",
                           "developer-facing evaluation latency (trained model)");
  auto& fixture = Fixture::Get();
  const clair::SecurityEvaluator evaluator(fixture.model(), fixture.testbed());
  std::vector<std::vector<std::string>> rows;
  for (const int lines : {100, 500, 2000, 8000}) {
    const auto files = MakeSubject(lines);
    const auto t0 = std::chrono::steady_clock::now();
    const auto report = evaluator.Evaluate("subject", files);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count() / 1000.0;
    rows.push_back({std::to_string(lines), support::Format("%.1f ms", ms),
                    support::Format("%.3f", report.overall_risk)});
  }
  std::printf("%s\n",
              report::RenderTable({"subject LoC", "evaluation latency", "overall risk"},
                                  rows)
                  .c_str());
  std::printf("training is offline (once per corpus refresh); evaluation is the\n"
              "developer-visible cost and stays interactive.\n\n");
}

// Thread-scaling sweep: full testbed collection (source synthesis + the
// extraction battery per app) on the 164-app corpus at 1/2/4/N workers.
// Caching is off so every row measures real extraction work; determinism
// tests elsewhere prove the output is bit-identical across all rows.
void PrintThreadScaling() {
  benchcommon::PrintHeader("Thread scaling",
                           "parallel testbed collection at 1..N workers");
  const auto ecosystem = benchcommon::MakeEcosystem(benchcommon::EnvScale(0.01));
  const int hw = support::ResolveThreadCount(0);
  std::vector<int> worker_counts = {1, 2, 4};
  if (hw > 4) {
    worker_counts.push_back(hw);
  }
  std::vector<std::vector<std::string>> rows;
  double serial_seconds = 0.0;
  size_t apps = 0;
  for (const int workers : worker_counts) {
    clair::TestbedOptions options;
    options.deep_analysis_max_files = 1;
    options.cache_features = false;  // Cold rows; the cache is measured below.
    options.threads = workers;
    const clair::Testbed testbed(ecosystem, options);
    const auto t0 = std::chrono::steady_clock::now();
    const auto records = testbed.Collect();
    const auto t1 = std::chrono::steady_clock::now();
    const double seconds = std::chrono::duration<double>(t1 - t0).count();
    apps = records.size();
    if (workers == 1) {
      serial_seconds = seconds;
    }
    rows.push_back({std::to_string(workers), support::Format("%.2f s", seconds),
                    support::Format("%.1f", static_cast<double>(apps) / seconds),
                    support::Format("%.2fx", serial_seconds / seconds)});
  }
  std::printf("%zu apps per sweep; hardware threads on this machine: %d\n\n", apps, hw);
  std::printf("%s\n", report::RenderTable({"workers", "collection time", "apps/sec",
                                           "speedup vs 1 worker"},
                                          rows)
                          .c_str());
  std::printf("workers set via TestbedOptions.threads (dedicated pool); production\n"
              "runs size the global pool from CLAIR_THREADS. per-app tasks are\n"
              "independent and seeded by index, so every row yields the same bytes.\n\n");
}

// Content-addressed feature-row cache: a second sweep over unchanged sources
// replays extraction from FNV-1a-keyed rows. The warm/cold ratio is
// core-count-independent (it removes the work rather than spreading it).
void PrintCacheEffect() {
  benchcommon::PrintHeader("Feature-row cache",
                           "cold vs warm testbed sweep (content-addressed rows)");
  const auto ecosystem = benchcommon::MakeEcosystem(benchcommon::EnvScale(0.01));
  clair::TestbedOptions options;
  options.deep_analysis_max_files = 1;
  options.threads = 1;
  const clair::Testbed testbed(ecosystem, options);
  const auto timed_sweep = [&] {
    const auto t0 = std::chrono::steady_clock::now();
    const auto records = testbed.Collect();
    const auto t1 = std::chrono::steady_clock::now();
    return std::make_pair(std::chrono::duration<double>(t1 - t0).count(),
                          records.size());
  };
  const auto [cold_seconds, apps] = timed_sweep();
  const auto cold_stats = testbed.cache_stats();
  const auto [warm_seconds, apps2] = timed_sweep();
  const auto warm_stats = testbed.cache_stats();
  (void)apps2;
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"cold", support::Format("%.2f s", cold_seconds),
                  support::Format("%llu", static_cast<unsigned long long>(cold_stats.hits)),
                  support::Format("%llu", static_cast<unsigned long long>(cold_stats.misses)),
                  "1.00x"});
  rows.push_back(
      {"warm", support::Format("%.2f s", warm_seconds),
       support::Format("%llu", static_cast<unsigned long long>(warm_stats.hits - cold_stats.hits)),
       support::Format("%llu",
                       static_cast<unsigned long long>(warm_stats.misses - cold_stats.misses)),
       support::Format("%.2fx", cold_seconds / warm_seconds)});
  std::printf("%zu apps per sweep; cache keyed on file bytes + extraction options\n\n",
              apps);
  std::printf("%s\n",
              report::RenderTable({"sweep", "time", "cache hits", "cache misses", "speedup"},
                                  rows)
                  .c_str());
  std::printf("warm sweeps skip parsing, dataflow, symexec and dynamic tracing for\n"
              "unchanged files — the common case in incremental corpus refreshes.\n\n");
}

void BM_EvaluateSubject(benchmark::State& state) {
  auto& fixture = Fixture::Get();
  const clair::SecurityEvaluator evaluator(fixture.model(), fixture.testbed());
  const auto files = MakeSubject(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const auto report = evaluator.Evaluate("subject", files);
    benchmark::DoNotOptimize(report.overall_risk);
  }
}
BENCHMARK(BM_EvaluateSubject)->Arg(100)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

void BM_PredictOnly(benchmark::State& state) {
  auto& fixture = Fixture::Get();
  const auto files = MakeSubject(500);
  const auto features = fixture.testbed().ExtractFeatures(files);
  const auto* bundle = fixture.model().ForHypothesis("cvss_gt7");
  for (auto _ : state) {
    benchmark::DoNotOptimize(bundle->PredictRisk(features));
  }
}
BENCHMARK(BM_PredictOnly)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  PrintThreadScaling();
  PrintCacheEffect();
  PrintLatencies();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
