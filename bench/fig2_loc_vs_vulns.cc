// Figure 2: lines of code (kLoC, log) vs number of vulnerabilities (log)
// for 164 open-source applications with >= 5-year CVE histories, split by
// primary language. The paper reports the log–log fit
//   log10(#vuln) = 0.17 + 0.39 · log10(kLoC),  R² = 24.66%
// and concludes LoC is a weak security indicator.
//
// LoC here is *measured* by the cloc-style counter over generated sources.
// The default run shrinks every app by CLAIR_SIZE_SCALE (default 0.05) to
// keep runtime modest; the regression slope and R² are scale-invariant, and
// the intercept is reported after correcting for the scale shift.
#include <benchmark/benchmark.h>

#include <cmath>
#include <map>

#include "bench/common.h"
#include "src/metrics/cloc.h"
#include "src/report/render.h"
#include "src/support/stats.h"
#include "src/support/strings.h"

namespace {

struct AppPoint {
  std::string name;
  metrics::Language language;
  double measured_kloc = 0.0;
  double vulns = 0.0;
};

std::vector<AppPoint> MeasureCorpus(const corpus::EcosystemGenerator& ecosystem) {
  std::vector<AppPoint> points;
  const auto selected = ecosystem.database().AppsWithConvergingHistory(5.0);
  for (const auto& app : selected) {
    const corpus::AppSpec* spec = ecosystem.FindSpec(app);
    if (spec == nullptr) {
      continue;
    }
    long long code_lines = 0;
    for (const auto& file : ecosystem.GenerateSources(*spec)) {
      code_lines += metrics::CountLines(file.text, file.language).code;
    }
    AppPoint point;
    point.name = app;
    point.language = spec->language;
    point.measured_kloc = static_cast<double>(code_lines) / 1000.0;
    point.vulns = static_cast<double>(ecosystem.database().Summarize(app).total);
    points.push_back(std::move(point));
  }
  return points;
}

void PrintFigure(double scale) {
  benchcommon::PrintHeader("Figure 2", "lines of code vs number of vulnerabilities");
  const corpus::EcosystemGenerator ecosystem = benchcommon::MakeEcosystem(scale);
  const auto points = MeasureCorpus(ecosystem);

  // Per-language series, paper glyph per language.
  std::map<metrics::Language, report::Series> series_map;
  const std::map<metrics::Language, char> glyphs = {
      {metrics::Language::kC, 'c'},
      {metrics::Language::kCpp, '+'},
      {metrics::Language::kPython, 'p'},
      {metrics::Language::kJava, 'j'},
  };
  std::vector<double> xs;
  std::vector<double> ys;
  for (const auto& point : points) {
    auto& series = series_map[point.language];
    series.label = std::string("Primarily ") + metrics::LanguageName(point.language);
    series.glyph = glyphs.at(point.language);
    series.xs.push_back(point.measured_kloc);
    series.ys.push_back(point.vulns);
    xs.push_back(point.measured_kloc);
    ys.push_back(point.vulns);
  }
  std::vector<report::Series> series;
  for (auto& [_, s] : series_map) {
    series.push_back(std::move(s));
  }
  report::ScatterOptions options;
  options.log_x = true;
  options.log_y = true;
  options.x_label = "thousand lines of code (measured by cloc-style counter)";
  options.y_label = "# of vulnerabilities";
  options.title = "LoC vs vulnerabilities, 164 selected applications";
  std::printf("%s\n", report::RenderScatter(series, options).c_str());

  const support::LinearFit fit = support::FitLogLog(xs, ys);
  // Undo the size-scale shift so the intercept is comparable to the paper's.
  const double full_scale_intercept = fit.intercept + fit.slope * std::log10(scale);
  std::printf("apps plotted:            %zu\n", points.size());
  std::printf("log-log fit (measured):  log10(v) = %.2f + %.2f log10(kLoC)\n",
              fit.intercept, fit.slope);
  std::printf("scale-corrected:         log10(v) = %.2f + %.2f log10(kLoC)   "
              "[size_scale=%.3g]\n",
              full_scale_intercept, fit.slope, scale);
  std::printf("R^2 = %.2f%%   (paper: log10(v) = 0.17 + 0.39 log10(kLoC), "
              "R^2 = 24.66%%)\n",
              100.0 * fit.r_squared);
  std::printf("=> %.2f%% of the variance is NOT explained by LoC: the paper's point\n",
              100.0 * (1.0 - fit.r_squared));
  std::printf("   that LoC comparisons within 1-2 orders of magnitude carry no "
              "significance.\n\n");

  // Per-language counts, mirroring the paper's corpus description.
  std::vector<std::vector<std::string>> rows;
  for (const auto& [language, s] : glyphs) {
    int count = 0;
    support::RunningStats vuln_stats;
    for (const auto& point : points) {
      if (point.language == language) {
        ++count;
        vuln_stats.Add(point.vulns);
      }
    }
    (void)s;
    rows.push_back({metrics::LanguageName(language), std::to_string(count),
                    support::Format("%.1f", vuln_stats.mean())});
  }
  std::printf("%s\n",
              report::RenderTable({"language", "apps", "mean #vulns"}, rows).c_str());
  std::printf("paper mix: 126 C, 20 C++, 6 Python, 12 Java; Java lower (small sample)\n\n");
}

void BM_ClocThroughput(benchmark::State& state) {
  const corpus::EcosystemGenerator ecosystem = benchcommon::MakeEcosystem(0.01, 4, 0);
  const auto files = ecosystem.GenerateSources(ecosystem.specs()[0]);
  int64_t bytes = 0;
  for (const auto& file : files) {
    bytes += static_cast<int64_t>(file.text.size());
  }
  for (auto _ : state) {
    long long total = 0;
    for (const auto& file : files) {
      total += metrics::CountLines(file.text, file.language).code;
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * bytes);
}
BENCHMARK(BM_ClocThroughput);

void BM_SourceGeneration(benchmark::State& state) {
  const corpus::EcosystemGenerator ecosystem = benchcommon::MakeEcosystem(0.01, 4, 0);
  for (auto _ : state) {
    auto files = ecosystem.GenerateSources(ecosystem.specs()[0]);
    benchmark::DoNotOptimize(files.data());
  }
}
BENCHMARK(BM_SourceGeneration);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure(benchcommon::EnvScale(0.05));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
