// Figure 4: the training phase of the security-evaluation model.
//
//   CVE database -> converging-history selection -> static-analysis code
//   properties -> CVE hypotheses (CVSS>7? AV=N? CWE=121? ...) -> machine
//   learning with cross-validation -> trained weights.
//
// This bench runs the whole phase over the 164-app corpus and prints, per
// hypothesis, each learner's 10-fold CV quality plus the trained model's
// most important code properties — the "weights" of Figure 4.
#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "src/clair/pipeline.h"
#include "src/report/render.h"
#include "src/support/strings.h"

namespace {

void PrintFigure(double scale) {
  benchcommon::PrintHeader("Figure 4", "the training phase of the security model");
  const corpus::EcosystemGenerator ecosystem =
      benchcommon::MakeEcosystem(scale, 164, 24);
  clair::TestbedOptions testbed_options;
  testbed_options.deep_analysis_max_files = 1;
  const clair::Testbed testbed(ecosystem, testbed_options);
  const auto records = testbed.Collect();
  std::printf("CVE database: %zu records over %d applications\n",
              ecosystem.database().size(), 164 + 24);
  std::printf("selected (>=5y converging history): %zu applications\n", records.size());

  clair::PipelineOptions pipeline_options;
  pipeline_options.cv_folds = 10;
  const clair::TrainingPipeline pipeline(records, pipeline_options);
  std::printf("feature vector: %zu code properties per application\n\n",
              pipeline.feature_names().size());

  const auto reports = pipeline.EvaluateAll();
  std::vector<std::vector<std::string>> rows;
  for (const auto& report : reports) {
    for (const auto& outcome : report.per_learner) {
      rows.push_back({
          report.hypothesis_id,
          outcome.learner,
          support::Format("%.3f", outcome.metrics.accuracy),
          support::Format("%.3f", outcome.metrics.macro_f1),
          support::Format("%.3f", outcome.metrics.auc),
          outcome.learner == report.best_learner ? "<= best" : "",
      });
    }
  }
  std::printf("%s\n",
              report::RenderTable(
                  {"hypothesis", "learner", "accuracy", "macro-F1", "AUC", ""}, rows)
                  .c_str());

  std::printf("Hypothesis base rates and best models:\n");
  std::vector<std::vector<std::string>> summary_rows;
  for (const auto& report : reports) {
    summary_rows.push_back({
        report.hypothesis_id,
        support::Format("%.0f%%", 100.0 * report.positive_rate),
        report.best_learner,
        support::Format("%.3f", report.best.auc),
    });
  }
  std::printf("%s\n", report::RenderTable({"hypothesis", "positive rate", "best learner",
                                           "best AUC"},
                                          summary_rows)
                          .c_str());

  std::printf("Trained weights — top code properties per hypothesis (Fig 4's W):\n");
  for (const auto& report : reports) {
    std::printf("  %-18s:", report.hypothesis_id.c_str());
    const size_t n = std::min<size_t>(4, report.top_features.size());
    for (size_t i = 0; i < n; ++i) {
      std::printf(" %s", report.top_features[i].first.c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "\npaper: framework proposal — AUC > 0.5 on style-driven hypotheses shows code\n"
      "properties carry recoverable vulnerability signal, while hypotheses driven by\n"
      "latent maturity stay near chance (the irreducible noise the paper anticipates).\n\n");
}

void BM_CrossValidateOneHypothesis(benchmark::State& state) {
  const corpus::EcosystemGenerator ecosystem = benchcommon::MakeEcosystem(0.005, 32, 0);
  clair::TestbedOptions testbed_options;
  testbed_options.deep_analysis_max_files = 1;
  testbed_options.with_symexec = false;
  const clair::Testbed testbed(ecosystem, testbed_options);
  const auto records = testbed.Collect();
  clair::PipelineOptions options;
  options.cv_folds = 5;
  const clair::TrainingPipeline pipeline(records, options);
  const auto& hypothesis = clair::StandardHypotheses()[0];
  for (auto _ : state) {
    const auto report = pipeline.EvaluateHypothesis(hypothesis);
    benchmark::DoNotOptimize(report.best.accuracy);
  }
}
BENCHMARK(BM_CrossValidateOneHypothesis)->Unit(benchmark::kMillisecond);

void BM_FeatureExtractionPerApp(benchmark::State& state) {
  const corpus::EcosystemGenerator ecosystem = benchcommon::MakeEcosystem(0.01, 4, 0);
  clair::TestbedOptions testbed_options;
  testbed_options.deep_analysis_max_files = 1;
  const clair::Testbed testbed(ecosystem, testbed_options);
  const auto files = ecosystem.GenerateSources(ecosystem.specs()[0]);
  for (auto _ : state) {
    const auto features = testbed.ExtractFeatures(files);
    benchmark::DoNotOptimize(features.size());
  }
}
BENCHMARK(BM_FeatureExtractionPerApp)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure(benchcommon::EnvScale(0.01));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
