// §4.1's symbolic-execution signal: "using symbolic execution ... we can
// calculate the number of different execution paths in a program that can
// be triggered by specific ranges of inputs."
//
// Sweeps programs of growing branch depth: feasible-path counts (exactly
// 2^k for k independent branches), exploitability fractions for a guarded
// overflow (exact model counting vs Monte-Carlo sampling), and solver
// micro-benchmarks.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench/common.h"
#include "src/lang/parser.h"
#include "src/report/render.h"
#include "src/support/strings.h"
#include "src/support/rng.h"
#include "src/symexec/bitblast.h"
#include "src/symexec/counter.h"
#include "src/symexec/executor.h"

namespace {

lang::IrModule MustLower(const std::string& source) {
  auto unit = lang::Parse(source);
  auto module = lang::LowerToIr(unit.value());
  return std::move(module).value();
}

std::string DiamondProgram(int branches) {
  std::string body = "int main() {\n  int r = 0;\n";
  for (int i = 0; i < branches; ++i) {
    body += support::Format("  int x%d = input();\n  if (x%d > 0) { r += %d; }\n", i, i,
                            1 << i);
  }
  body += "  return r;\n}\n";
  return body;
}

void PrintPathCounting() {
  benchcommon::PrintHeader("Symbolic execution", "path counting and exploitability");
  std::printf("Feasible paths for k independent input branches (expect 2^k):\n");
  std::vector<std::vector<std::string>> rows;
  for (int k = 1; k <= 7; ++k) {
    const auto module = MustLower(DiamondProgram(k));
    symx::SymExecOptions options;
    options.max_paths = 1 << 10;
    const symx::SymExecResult result = symx::Explore(module, "main", options);
    rows.push_back({std::to_string(k), std::to_string(result.paths_completed),
                    std::to_string(1 << k), std::to_string(result.solver_queries),
                    std::to_string(result.forks)});
  }
  std::printf("%s\n", report::RenderTable({"branches", "paths found", "expected",
                                           "solver queries", "forks"},
                                          rows)
                          .c_str());
}

void PrintExploitability() {
  std::printf("Exploitability of a guarded out-of-bounds write:\n");
  std::printf("  buf[N]; i = input(); if (0 <= i < GUARD) buf[i] = 1;\n");
  std::printf("  trigger space = GUARD - N of 2^16 inputs (width 16)\n\n");
  std::vector<std::vector<std::string>> rows;
  for (const auto& [array_size, guard] :
       std::vector<std::pair<int, int>>{{4, 8}, {8, 32}, {16, 256}, {16, 4096}}) {
    const std::string source = support::Format(
        "int main() {\n"
        "  int buf[%d];\n"
        "  int i = input();\n"
        "  if (i >= 0 && i < %d) { buf[i] = 1; return buf[i]; }\n"
        "  return 0;\n}\n",
        array_size, guard);
    const auto module = MustLower(source);
    symx::SymExecOptions options;
    options.exploit_exact_cap = 512;
    const symx::SymExecResult result = symx::Explore(module, "main", options);
    const double expected =
        static_cast<double>(guard - array_size) / std::pow(2.0, 16.0);
    const double measured = result.vulns.empty() ? 0.0 : result.vulns[0].exploit_fraction;
    rows.push_back({support::Format("buf[%d], guard<%d", array_size, guard),
                    support::Format("%.3e", expected), support::Format("%.3e", measured),
                    result.vulns.empty() ? "MISSED" : "found"});
  }
  std::printf("%s\n", report::RenderTable({"program", "true fraction",
                                           "estimated fraction", "site"},
                                          rows)
                          .c_str());
  std::printf("exact projected #SAT is used up to the cap, then Monte-Carlo sampling.\n\n");
}

void PrintCounterComparison() {
  std::printf("Exact #SAT vs sampling on x in [0, K) over 16-bit inputs:\n");
  std::vector<std::vector<std::string>> rows;
  for (const int k : {10, 100, 1000}) {
    symx::ExprPool pool(16);
    const symx::ExprRef x = pool.FreshVar("x");
    std::vector<symx::ExprRef> constraints = {
        pool.Binary(symx::ExprOp::kSle, pool.Const(0), x),
        pool.Binary(symx::ExprOp::kSlt, x, pool.Const(k)),
    };
    const symx::CountResult exact = symx::CountExact(pool, constraints, {0}, 2000);
    support::Rng rng(42);
    const double sampled = symx::EstimateFraction(pool, constraints, rng, 20000);
    rows.push_back({support::Format("0 <= x < %d", k), std::to_string(exact.models),
                    exact.exact ? "exact" : "cap hit",
                    support::Format("%.5f", sampled),
                    support::Format("%.5f", static_cast<double>(k) / 65536.0)});
  }
  std::printf("%s\n", report::RenderTable({"constraint", "#SAT models", "status",
                                           "sampled fraction", "true fraction"},
                                          rows)
                          .c_str());
}

void BM_SatPigeonhole(benchmark::State& state) {
  for (auto _ : state) {
    symx::SatSolver solver;
    const int pigeons = static_cast<int>(state.range(0));
    const int holes = pigeons - 1;
    std::vector<std::vector<symx::Var>> at(pigeons, std::vector<symx::Var>(holes));
    for (auto& row : at) {
      for (auto& v : row) {
        v = solver.NewVar();
      }
    }
    for (int p = 0; p < pigeons; ++p) {
      std::vector<symx::Lit> clause;
      for (int h = 0; h < holes; ++h) {
        clause.push_back(symx::MakeLit(at[p][h], false));
      }
      solver.AddClause(clause);
    }
    for (int h = 0; h < holes; ++h) {
      for (int p1 = 0; p1 < pigeons; ++p1) {
        for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
          solver.AddBinary(symx::MakeLit(at[p1][h], true), symx::MakeLit(at[p2][h], true));
        }
      }
    }
    benchmark::DoNotOptimize(solver.Solve());
  }
}
BENCHMARK(BM_SatPigeonhole)->Arg(5)->Arg(6)->Arg(7)->Unit(benchmark::kMicrosecond);

void BM_ExploreDiamond(benchmark::State& state) {
  const auto module = MustLower(DiamondProgram(static_cast<int>(state.range(0))));
  symx::SymExecOptions options;
  options.max_paths = 1 << 10;
  for (auto _ : state) {
    const auto result = symx::Explore(module, "main", options);
    benchmark::DoNotOptimize(result.paths_completed);
  }
  state.counters["paths"] = static_cast<double>(1 << state.range(0));
}
BENCHMARK(BM_ExploreDiamond)->Arg(3)->Arg(5)->Arg(7)->Unit(benchmark::kMillisecond);

void BM_BitblastMultiply(benchmark::State& state) {
  for (auto _ : state) {
    symx::ExprPool pool(16);
    const symx::ExprRef x = pool.FreshVar("x");
    const symx::ExprRef y = pool.FreshVar("y");
    const symx::ExprRef product = pool.Binary(symx::ExprOp::kMul, x, y);
    const symx::ExprRef eq =
        pool.Binary(symx::ExprOp::kEq, product, pool.Const(3 * 5 * 7 * 11));
    symx::SatSolver solver;
    symx::BitBlaster blaster(pool, solver);
    blaster.AssertTrue(eq);
    benchmark::DoNotOptimize(solver.Solve());
  }
}
BENCHMARK(BM_BitblastMultiply)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintPathCounting();
  PrintExploitability();
  PrintCounterComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
