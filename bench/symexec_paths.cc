// §4.1's symbolic-execution signal: "using symbolic execution ... we can
// calculate the number of different execution paths in a program that can
// be triggered by specific ranges of inputs."
//
// Sweeps programs of growing branch depth: feasible-path counts (exactly
// 2^k for k independent branches), exploitability fractions for a guarded
// overflow (exact model counting vs Monte-Carlo sampling), the incremental
// (persistent SAT instance + activation literals) vs one-shot solver
// comparison, and solver micro-benchmarks.
//
// Emits machine-readable results to BENCH_symexec.json in the working
// directory. `--smoke` runs reduced workloads and skips the google-benchmark
// timing loops but still writes the JSON (the ctest `symperf` label runs
// this mode).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>

#include "bench/common.h"
#include "src/lang/parser.h"
#include "src/report/render.h"
#include "src/support/strings.h"
#include "src/support/rng.h"
#include "src/symexec/bitblast.h"
#include "src/symexec/counter.h"
#include "src/symexec/executor.h"

namespace {

lang::IrModule MustLower(const std::string& source) {
  auto unit = lang::Parse(source);
  auto module = lang::LowerToIr(unit.value());
  return std::move(module).value();
}

std::string DiamondProgram(int branches) {
  std::string body = "int main() {\n  int r = 0;\n";
  for (int i = 0; i < branches; ++i) {
    body += support::Format("  int x%d = input();\n  if (x%d > 0) { r += %d; }\n", i, i,
                            1 << i);
  }
  body += "  return r;\n}\n";
  return body;
}

// k correlated branches over one input: k+1 feasible paths with long shared
// path-condition prefixes — the workload incremental solving amortizes.
std::string BandsProgram(int k) {
  std::string body = "int main() {\n  int r = 0;\n  int x = input();\n";
  for (int i = 0; i < k; ++i) {
    body += support::Format("  if (x > %d) { r += %d; }\n", i * 8, 1 << (i % 24));
  }
  body += "  return r;\n}\n";
  return body;
}

// Guarded array traffic: feasibility checks plus out-of-bounds reachability
// queries and exploitability counting on every symbolic index.
std::string GuardedArrayProgram(int accesses) {
  std::string body = "int main() {\n  int buf[8];\n  int r = 0;\n";
  for (int i = 0; i < accesses; ++i) {
    body += support::Format(
        "  int i%d = input();\n  if (i%d >= 0 && i%d < %d) { buf[i%d] = i%d; r += "
        "buf[i%d]; }\n",
        i, i, i, 8 + (i % 3), i, i, i);
  }
  body += "  return r;\n}\n";
  return body;
}

double Seconds(std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

struct ModeStats {
  double seconds = 0.0;
  uint64_t paths = 0;
  uint64_t queries = 0;
  uint64_t pruned = 0;
  uint64_t conflicts = 0;
  uint64_t reuse_hits = 0;
  uint64_t folds = 0;
  size_t vulns = 0;
  double fraction_sum = 0.0;  // Sum of exploit fractions (bit-compared).

  double QueriesPerSec() const { return seconds > 0.0 ? queries / seconds : 0.0; }
  double QueriesPerPath() const {
    return paths > 0 ? static_cast<double>(queries) / static_cast<double>(paths)
                     : 0.0;
  }
};

ModeStats RunMode(const lang::IrModule& module, bool incremental, int repeats,
                  bool range_pruning = true) {
  symx::SymExecOptions options;
  options.max_paths = 1 << 10;
  options.max_total_steps = 1 << 20;
  options.max_solver_queries = 1 << 20;
  options.incremental_solver = incremental;
  options.range_pruning = range_pruning;
  ModeStats stats;
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < repeats; ++r) {
    const symx::SymExecResult result = symx::Explore(module, "main", options);
    stats.paths += result.paths_explored;
    stats.queries += result.solver_queries;
    stats.pruned += result.range_pruned;
    stats.conflicts += result.sat_conflicts;
    stats.reuse_hits += result.model_reuse_hits;
    stats.folds += result.simplifier_folds;
    stats.vulns = result.vulns.size();
    stats.fraction_sum = 0.0;
    for (const auto& vuln : result.vulns) {
      stats.fraction_sum += vuln.exploit_fraction;
    }
  }
  stats.seconds = Seconds(t0, std::chrono::steady_clock::now());
  return stats;
}

void PrintPathCounting() {
  benchcommon::PrintHeader("Symbolic execution", "path counting and exploitability");
  std::printf("Feasible paths for k independent input branches (expect 2^k):\n");
  std::vector<std::vector<std::string>> rows;
  for (int k = 1; k <= 7; ++k) {
    const auto module = MustLower(DiamondProgram(k));
    symx::SymExecOptions options;
    options.max_paths = 1 << 10;
    const symx::SymExecResult result = symx::Explore(module, "main", options);
    rows.push_back({std::to_string(k), std::to_string(result.paths_completed),
                    std::to_string(1 << k), std::to_string(result.solver_queries),
                    std::to_string(result.forks),
                    std::to_string(result.model_reuse_hits),
                    std::to_string(result.sat_conflicts),
                    std::to_string(result.simplifier_folds)});
  }
  std::printf("%s\n", report::RenderTable({"branches", "paths found", "expected",
                                           "solver queries", "forks", "reuse hits",
                                           "conflicts", "folds"},
                                          rows)
                          .c_str());
}

void PrintExploitability() {
  std::printf("Exploitability of a guarded out-of-bounds write:\n");
  std::printf("  buf[N]; i = input(); if (0 <= i < GUARD) buf[i] = 1;\n");
  std::printf("  trigger space = GUARD - N of 2^16 inputs (width 16)\n\n");
  std::vector<std::vector<std::string>> rows;
  for (const auto& [array_size, guard] :
       std::vector<std::pair<int, int>>{{4, 8}, {8, 32}, {16, 256}, {16, 4096}}) {
    const std::string source = support::Format(
        "int main() {\n"
        "  int buf[%d];\n"
        "  int i = input();\n"
        "  if (i >= 0 && i < %d) { buf[i] = 1; return buf[i]; }\n"
        "  return 0;\n}\n",
        array_size, guard);
    const auto module = MustLower(source);
    symx::SymExecOptions options;
    options.exploit_exact_cap = 512;
    const symx::SymExecResult result = symx::Explore(module, "main", options);
    const double expected =
        static_cast<double>(guard - array_size) / std::pow(2.0, 16.0);
    const double measured = result.vulns.empty() ? 0.0 : result.vulns[0].exploit_fraction;
    rows.push_back({support::Format("buf[%d], guard<%d", array_size, guard),
                    support::Format("%.3e", expected), support::Format("%.3e", measured),
                    result.vulns.empty() ? "MISSED" : "found"});
  }
  std::printf("%s\n", report::RenderTable({"program", "true fraction",
                                           "estimated fraction", "site"},
                                          rows)
                          .c_str());
  std::printf("exact projected #SAT is used up to the cap, then Monte-Carlo sampling.\n\n");
}

void PrintCounterComparison() {
  std::printf("Exact #SAT vs sampling on x in [0, K) over 16-bit inputs:\n");
  std::vector<std::vector<std::string>> rows;
  for (const int k : {10, 100, 1000}) {
    symx::ExprPool pool(16);
    const symx::ExprRef x = pool.FreshVar("x");
    std::vector<symx::ExprRef> constraints = {
        pool.Binary(symx::ExprOp::kSle, pool.Const(0), x),
        pool.Binary(symx::ExprOp::kSlt, x, pool.Const(k)),
    };
    const symx::CountResult exact = symx::CountExact(pool, constraints, {0}, 2000);
    support::Rng rng(42);
    const double sampled = symx::EstimateFraction(pool, constraints, rng, 20000);
    rows.push_back({support::Format("0 <= x < %d", k), std::to_string(exact.models),
                    exact.exact ? "exact" : "cap hit",
                    support::Format("%.5f", sampled),
                    support::Format("%.5f", static_cast<double>(k) / 65536.0)});
  }
  std::printf("%s\n", report::RenderTable({"constraint", "#SAT models", "status",
                                           "sampled fraction", "true fraction"},
                                          rows)
                          .c_str());
}

// Machine-readable artifact writer (shared across benches, see common.h).
using benchcommon::JsonSink;

std::string ModeJson(const ModeStats& s) {
  return support::Format(
      "{\"seconds\": %.6f, \"paths\": %llu, \"solver_queries\": %llu, "
      "\"queries_per_sec\": %.1f, \"sat_conflicts\": %llu, "
      "\"model_reuse_hits\": %llu, \"simplifier_folds\": %llu, \"vulns\": %zu}",
      s.seconds, static_cast<unsigned long long>(s.paths),
      static_cast<unsigned long long>(s.queries), s.QueriesPerSec(),
      static_cast<unsigned long long>(s.conflicts),
      static_cast<unsigned long long>(s.reuse_hits),
      static_cast<unsigned long long>(s.folds), s.vulns);
}

// Range-guided pruning: the same workloads with the constant-interval
// precheck on vs off. Exploration results must be bit-identical (paths,
// vulns, exploit fractions); the payoff is SAT queries per explored path.
// Returns false on any semantic mismatch.
bool RunPruningComparison(JsonSink& sink, bool smoke) {
  struct Workload {
    std::string name;
    lang::IrModule module;
  };
  const int repeats = smoke ? 1 : 3;
  std::vector<Workload> workloads;
  workloads.push_back({"diamond", MustLower(DiamondProgram(smoke ? 6 : 8))});
  workloads.push_back({"bands", MustLower(BandsProgram(smoke ? 8 : 12))});
  workloads.push_back(
      {"guarded_array", MustLower(GuardedArrayProgram(smoke ? 3 : 5))});

  std::printf("Range-guided path pruning (constant-interval precheck) vs\n");
  std::printf("solver-every-branch; identical exploration results required:\n\n");
  std::vector<std::vector<std::string>> rows;
  uint64_t off_queries = 0;
  uint64_t off_paths = 0;
  uint64_t on_queries = 0;
  uint64_t on_paths = 0;
  uint64_t on_pruned = 0;
  double off_seconds = 0.0;
  double on_seconds = 0.0;
  bool agree = true;
  std::string pruning_json = "[";
  for (size_t w = 0; w < workloads.size(); ++w) {
    const auto& workload = workloads[w];
    const ModeStats off =
        RunMode(workload.module, /*incremental=*/true, repeats, /*range_pruning=*/false);
    const ModeStats on =
        RunMode(workload.module, /*incremental=*/true, repeats, /*range_pruning=*/true);
    if (on.paths != off.paths || on.vulns != off.vulns ||
        on.fraction_sum != off.fraction_sum) {
      std::fprintf(stderr,
                   "FAIL: %s: pruned/unpruned disagree (paths %llu vs %llu, "
                   "vulns %zu vs %zu, fraction sum %.17g vs %.17g)\n",
                   workload.name.c_str(), static_cast<unsigned long long>(on.paths),
                   static_cast<unsigned long long>(off.paths), on.vulns, off.vulns,
                   on.fraction_sum, off.fraction_sum);
      agree = false;
    }
    off_queries += off.queries;
    off_paths += off.paths;
    on_queries += on.queries;
    on_paths += on.paths;
    on_pruned += on.pruned;
    off_seconds += off.seconds;
    on_seconds += on.seconds;
    const double drop = off.QueriesPerPath() > 0.0
                            ? 1.0 - on.QueriesPerPath() / off.QueriesPerPath()
                            : 0.0;
    const double prune_rate =
        on.queries + on.pruned > 0
            ? static_cast<double>(on.pruned) /
                  static_cast<double>(on.queries + on.pruned)
            : 0.0;
    rows.push_back({workload.name, std::to_string(on.paths),
                    support::Format("%.2f", off.QueriesPerPath()),
                    support::Format("%.2f", on.QueriesPerPath()),
                    support::Format("%.1f%%", 100.0 * drop),
                    std::to_string(on.pruned),
                    support::Format("%.2f", prune_rate)});
    pruning_json += support::Format(
        "%s{\"name\": \"%s\", \"queries_per_path_off\": %.4f, "
        "\"queries_per_path_on\": %.4f, \"query_drop\": %.4f, "
        "\"range_pruned\": %llu, \"prune_rate\": %.4f, "
        "\"seconds_off\": %.6f, \"seconds_on\": %.6f}",
        w == 0 ? "" : ", ", workload.name.c_str(), off.QueriesPerPath(),
        on.QueriesPerPath(), drop, static_cast<unsigned long long>(on.pruned),
        prune_rate, off.seconds, on.seconds);
  }
  pruning_json += "]";
  std::printf("%s\n",
              report::RenderTable({"workload", "paths", "q/path off", "q/path on",
                                   "query drop", "pruned", "prune rate"},
                                  rows)
                  .c_str());
  const double qpp_off =
      off_paths > 0 ? static_cast<double>(off_queries) / off_paths : 0.0;
  const double qpp_on =
      on_paths > 0 ? static_cast<double>(on_queries) / on_paths : 0.0;
  const double total_drop = qpp_off > 0.0 ? 1.0 - qpp_on / qpp_off : 0.0;
  const double total_rate =
      on_queries + on_pruned > 0
          ? static_cast<double>(on_pruned) /
                static_cast<double>(on_queries + on_pruned)
          : 0.0;
  std::printf("total: %.2f queries/path unpruned vs %.2f pruned "
              "(%.1f%% drop, prune rate %.2f), %.3fs vs %.3fs\n\n",
              qpp_off, qpp_on, 100.0 * total_drop, total_rate, off_seconds,
              on_seconds);
  sink.AddRaw("pruning_workloads", pruning_json);
  sink.AddNumber("queries_per_path_unpruned", qpp_off);
  sink.AddNumber("queries_per_path_pruned", qpp_on);
  sink.AddNumber("query_drop_per_path", total_drop);
  sink.AddNumber("range_prune_rate", total_rate);
  sink.AddInt("pruning_agrees", agree ? 1 : 0);
  return agree;
}

// Runs every workload in both solver modes, prints the comparison table, and
// writes BENCH_symexec.json. Aborts with a nonzero exit if the two modes
// disagree on path counts or vuln sites (they are specified bit-identical).
int RunModeComparison(bool smoke) {
  struct Workload {
    std::string name;
    lang::IrModule module;
  };
  const int repeats = smoke ? 1 : 3;
  std::vector<Workload> workloads;
  workloads.push_back({"diamond", MustLower(DiamondProgram(smoke ? 6 : 8))});
  workloads.push_back({"bands", MustLower(BandsProgram(smoke ? 8 : 12))});
  workloads.push_back(
      {"guarded_array", MustLower(GuardedArrayProgram(smoke ? 3 : 5))});

  std::printf("Incremental (persistent SAT + activation literals) vs one-shot\n");
  std::printf("(fresh solver per query); identical exploration results required:\n\n");
  std::vector<std::vector<std::string>> rows;
  JsonSink sink;
  sink.Add("bench", "symexec_paths", true);
  sink.AddInt("smoke", smoke ? 1 : 0);
  sink.AddInt("repeats", static_cast<uint64_t>(repeats));

  double total_inc_seconds = 0.0;
  double total_os_seconds = 0.0;
  uint64_t total_inc_queries = 0;
  uint64_t total_os_queries = 0;
  uint64_t total_inc_paths = 0;
  uint64_t total_reuse_hits = 0;
  uint64_t total_folds = 0;
  bool mismatch = false;
  std::string workloads_json = "[";
  for (size_t w = 0; w < workloads.size(); ++w) {
    const auto& workload = workloads[w];
    const ModeStats oneshot = RunMode(workload.module, /*incremental=*/false, repeats);
    const ModeStats inc = RunMode(workload.module, /*incremental=*/true, repeats);
    if (inc.paths != oneshot.paths || inc.vulns != oneshot.vulns) {
      std::fprintf(stderr,
                   "FAIL: %s: incremental/one-shot disagree (paths %llu vs %llu, "
                   "vulns %zu vs %zu)\n",
                   workload.name.c_str(), static_cast<unsigned long long>(inc.paths),
                   static_cast<unsigned long long>(oneshot.paths), inc.vulns,
                   oneshot.vulns);
      mismatch = true;
    }
    total_inc_seconds += inc.seconds;
    total_os_seconds += oneshot.seconds;
    total_inc_queries += inc.queries;
    total_os_queries += oneshot.queries;
    total_inc_paths += inc.paths;
    total_reuse_hits += inc.reuse_hits;
    total_folds += inc.folds;
    const double speedup =
        oneshot.QueriesPerSec() > 0.0 ? inc.QueriesPerSec() / oneshot.QueriesPerSec()
                                      : 0.0;
    rows.push_back({workload.name, std::to_string(inc.paths),
                    std::to_string(inc.queries),
                    support::Format("%.0f", oneshot.QueriesPerSec()),
                    support::Format("%.0f", inc.QueriesPerSec()),
                    support::Format("%.2fx", speedup),
                    std::to_string(inc.reuse_hits), std::to_string(inc.conflicts)});
    workloads_json += support::Format(
        "%s{\"name\": \"%s\", \"oneshot\": %s, \"incremental\": %s, "
        "\"speedup_queries_per_sec\": %.3f}",
        w == 0 ? "" : ", ", workload.name.c_str(), ModeJson(oneshot).c_str(),
        ModeJson(inc).c_str(), speedup);
  }
  workloads_json += "]";
  std::printf("%s\n",
              report::RenderTable({"workload", "paths", "queries", "oneshot q/s",
                                   "incremental q/s", "speedup", "reuse hits",
                                   "conflicts"},
                                  rows)
                  .c_str());

  const double os_qps =
      total_os_seconds > 0.0 ? total_os_queries / total_os_seconds : 0.0;
  const double inc_qps =
      total_inc_seconds > 0.0 ? total_inc_queries / total_inc_seconds : 0.0;
  const double total_speedup = os_qps > 0.0 ? inc_qps / os_qps : 0.0;
  std::printf("total: %.0f q/s one-shot vs %.0f q/s incremental (%.2fx), "
              "%llu model-reuse hits, %llu simplifier folds\n\n",
              os_qps, inc_qps, total_speedup,
              static_cast<unsigned long long>(total_reuse_hits),
              static_cast<unsigned long long>(total_folds));

  sink.AddRaw("workloads", workloads_json);
  sink.AddNumber("total_oneshot_queries_per_sec", os_qps);
  sink.AddNumber("total_incremental_queries_per_sec", inc_qps);
  sink.AddNumber("total_speedup_queries_per_sec", total_speedup);
  sink.AddNumber("total_paths_per_sec_incremental",
                 total_inc_seconds > 0.0 ? total_inc_paths / total_inc_seconds : 0.0);
  sink.AddNumber("model_reuse_hit_rate",
                 total_inc_queries + total_reuse_hits > 0
                     ? static_cast<double>(total_reuse_hits) /
                           static_cast<double>(total_inc_queries + total_reuse_hits)
                     : 0.0);
  sink.AddInt("modes_agree", mismatch ? 0 : 1);
  if (!RunPruningComparison(sink, smoke)) {
    mismatch = true;
  }
  const std::string path = "BENCH_symexec.json";
  if (sink.WriteTo(path)) {
    std::printf("wrote %s\n\n", path.c_str());
  } else {
    std::fprintf(stderr, "WARNING: could not write %s\n", path.c_str());
  }
  return mismatch ? 1 : 0;
}

void BM_SatPigeonhole(benchmark::State& state) {
  for (auto _ : state) {
    symx::SatSolver solver;
    const int pigeons = static_cast<int>(state.range(0));
    const int holes = pigeons - 1;
    std::vector<std::vector<symx::Var>> at(pigeons, std::vector<symx::Var>(holes));
    for (auto& row : at) {
      for (auto& v : row) {
        v = solver.NewVar();
      }
    }
    for (int p = 0; p < pigeons; ++p) {
      std::vector<symx::Lit> clause;
      for (int h = 0; h < holes; ++h) {
        clause.push_back(symx::MakeLit(at[p][h], false));
      }
      solver.AddClause(clause);
    }
    for (int h = 0; h < holes; ++h) {
      for (int p1 = 0; p1 < pigeons; ++p1) {
        for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
          solver.AddBinary(symx::MakeLit(at[p1][h], true), symx::MakeLit(at[p2][h], true));
        }
      }
    }
    benchmark::DoNotOptimize(solver.Solve());
  }
}
BENCHMARK(BM_SatPigeonhole)->Arg(5)->Arg(6)->Arg(7)->Unit(benchmark::kMicrosecond);

void BM_ExploreDiamond(benchmark::State& state) {
  const auto module = MustLower(DiamondProgram(static_cast<int>(state.range(0))));
  symx::SymExecOptions options;
  options.max_paths = 1 << 10;
  for (auto _ : state) {
    const auto result = symx::Explore(module, "main", options);
    benchmark::DoNotOptimize(result.paths_completed);
  }
  state.counters["paths"] = static_cast<double>(1 << state.range(0));
}
BENCHMARK(BM_ExploreDiamond)->Arg(3)->Arg(5)->Arg(7)->Unit(benchmark::kMillisecond);

void BM_BitblastMultiply(benchmark::State& state) {
  for (auto _ : state) {
    symx::ExprPool pool(16);
    const symx::ExprRef x = pool.FreshVar("x");
    const symx::ExprRef y = pool.FreshVar("y");
    const symx::ExprRef product = pool.Binary(symx::ExprOp::kMul, x, y);
    const symx::ExprRef eq =
        pool.Binary(symx::ExprOp::kEq, product, pool.Const(3 * 5 * 7 * 11));
    symx::SatSolver solver;
    symx::BitBlaster blaster(pool, solver);
    blaster.AssertTrue(eq);
    benchmark::DoNotOptimize(solver.Solve());
  }
}
BENCHMARK(BM_BitblastMultiply)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  PrintPathCounting();
  PrintExploitability();
  PrintCounterComparison();
  const int status = RunModeComparison(smoke);
  if (status != 0) return status;
  if (smoke) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
