// The worker half of sharded fleet sweeps (see shard.h for the
// coordinator): one worker owns one shard generation at a time, resumes the
// shard's crc-guarded checkpoint, extracts the remaining apps in sorted
// order, streams every app's function rows into a fresh per-generation
// ml::FeatureStore file, and leaves a RunReport next to the checkpoint when
// it completes cleanly.
//
// Durability contract (what the coordinator's merge relies on):
//   - the checkpoint file is the unit of record durability: one crc block
//     per app, appended and flushed before the app counts as done, shared
//     across generations so a stolen shard resumes instead of recomputing;
//   - the store file is atomic per generation: it only becomes readable
//     when the generation Finish()es, so a crashed generation's store is
//     discarded whole and the finishing generation re-streams the shard's
//     function rows (cheap — parse + lower + function metrics, no deep
//     battery) from the same deterministic extractor;
//   - a simulated crash (`CLAIR_FAULTS=worker_crash:<rate>`) tears the
//     checkpoint tail mid-block, exactly as SIGKILL mid-write would, and
//     the tolerant loader drops the torn block on resume.
//
// Workers run behind a WorkerTransport: SimulatedWorkerTransport executes
// them cooperatively inside Poll() on the supervisor thread (fully
// deterministic — chaos schedules replay bit-identically), while
// ForkWorkerTransport forks real subprocesses that re-exec the host binary
// into ShardWorkerMain, giving each shard a real crash domain.
#ifndef SRC_CLAIR_SHARD_WORKER_H_
#define SRC_CLAIR_SHARD_WORKER_H_

#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/clair/testbed.h"
#include "src/ml/feature_store.h"
#include "src/support/result.h"

namespace clair {

// One shard generation's work order. `generation` counts steals: it starts
// at 0 and bumps every time the lease is revoked and the remainder is
// reassigned; crash verdicts salt on it, so a transient worker_crash
// clears on the next generation while rate-1 crashes stay deterministic.
struct ShardTask {
  int shard = 0;
  int generation = 0;
  // Full shard membership in global (sorted) order. The worker re-streams
  // function rows for every app but only extracts records absent from the
  // checkpoint.
  std::vector<std::string> apps;
  std::string checkpoint_path;  // Appended across generations.
  std::string store_path;       // Fresh per generation; "" disables rows.
  std::string report_path;      // Written on clean completion; "" disables.
  // Simulated-crash verdicts are only consulted when set; the coordinator
  // clears it for last-resort inline runs so rate-1 chaos still converges.
  bool allow_crash = true;
  // Active fault-injection config, serialized into the task so a fork/exec
  // worker reproduces the parent's seeded chaos (ScopedConfig changes the
  // in-process injector, which exec does not inherit).
  std::string fault_config;
  // File descriptor the worker writes one byte per processed app to
  // (heartbeats for the fork transport); < 0 disables.
  int heartbeat_fd = -1;
};

// Text round-trip for shipping a task to a fork/exec worker.
std::string SaveShardTask(const ShardTask& task);
support::Result<ShardTask> LoadShardTask(std::string_view text);

struct ShardWorkerStats {
  size_t apps_done = 0;       // Records extracted + checkpointed this run.
  size_t apps_resumed = 0;    // Records served from the shard checkpoint.
  size_t function_rows = 0;   // Rows streamed into the generation store.
  size_t dropped_blocks = 0;  // Corrupt/torn checkpoint blocks at resume.
};

// Resumable shard sweep: one Step() per app, so the simulated transport can
// interleave workers deterministically and the fork worker can heartbeat
// between apps. Create() performs the resume (checkpoint load + newline
// repair) and opens the generation store.
class ShardWorkerRun {
 public:
  enum class Status {
    kRunning,  // More apps to process.
    kDone,     // Shard complete; store finished, report written.
    kCrashed,  // Simulated worker_crash fired; checkpoint tail torn.
  };

  static support::Result<std::unique_ptr<ShardWorkerRun>> Create(
      const corpus::EcosystemGenerator& ecosystem, const TestbedOptions& options,
      ShardTask task);

  ShardWorkerRun(const ShardWorkerRun&) = delete;
  ShardWorkerRun& operator=(const ShardWorkerRun&) = delete;

  // Processes the next app (function rows always; record extraction unless
  // resumed). Returns kDone after the finalize step (store Finish + report
  // write); any finalize failure surfaces as kCrashed so the coordinator
  // requeues the shard.
  Status Step();

  Status status() const { return status_; }
  const ShardWorkerStats& stats() const { return stats_; }
  const ShardTask& task() const { return task_; }

 private:
  ShardWorkerRun(const corpus::EcosystemGenerator& ecosystem,
                 const TestbedOptions& options, ShardTask task);

  std::optional<support::Error> Init();
  Status Finalize();

  const corpus::EcosystemGenerator& ecosystem_;
  ShardTask task_;
  Testbed testbed_;
  std::vector<const corpus::AppSpec*> specs_;  // Parallel to task_.apps.
  std::unordered_set<std::string> resumed_;
  std::ofstream checkpoint_;
  std::unique_ptr<ml::FeatureStoreWriter> writer_;
  size_t next_ = 0;
  Status status_ = Status::kRunning;
  ShardWorkerStats stats_;
};

// Supervision event surfaced by a transport's Poll().
struct WorkerEvent {
  enum class Kind { kHeartbeat, kExit };
  Kind kind = Kind::kHeartbeat;
  int slot = -1;
  int exit_code = 0;  // kExit only; 0 = clean shard completion.
};

// Process boundary between coordinator and workers. The coordinator only
// ever talks to this interface: Spawn() a task onto a fresh slot, Poll()
// one supervision tick for heartbeats/exits, Kill() a slot whose lease was
// revoked. Slot ids are never reused within a sweep.
class WorkerTransport {
 public:
  virtual ~WorkerTransport() = default;
  // Capacity: the coordinator keeps at most this many slots live.
  virtual int max_workers() const = 0;
  virtual support::Result<int> Spawn(const ShardTask& task) = 0;
  // Advances/observes the fleet one tick; events are in slot order for the
  // simulated transport (deterministic) and arrival order for fork.
  virtual std::vector<WorkerEvent> Poll() = 0;
  // Hard-kills a slot; idempotent, and the slot emits no further events.
  virtual void Kill(int slot) = 0;
};

// Deterministic in-process transport: workers are ShardWorkerRun state
// machines advanced `apps_per_tick` Step()s per Poll() on the calling
// thread, in slot order. One heartbeat event per completed step; a crash
// verdict surfaces as exit code 2, clean completion as exit 0. Chaos runs
// under this transport are bit-identical for a fixed CLAIR_FAULTS config.
class SimulatedWorkerTransport : public WorkerTransport {
 public:
  SimulatedWorkerTransport(const corpus::EcosystemGenerator& ecosystem,
                           const TestbedOptions& options, int num_workers,
                           int apps_per_tick = 1);

  int max_workers() const override { return num_workers_; }
  support::Result<int> Spawn(const ShardTask& task) override;
  std::vector<WorkerEvent> Poll() override;
  void Kill(int slot) override;

 private:
  const corpus::EcosystemGenerator& ecosystem_;
  TestbedOptions options_;
  int num_workers_;
  int apps_per_tick_;
  int next_slot_ = 0;
  std::map<int, std::unique_ptr<ShardWorkerRun>> live_;
};

// Real subprocess transport: Spawn() forks and execs `executable` (pass
// /proc/self/exe to re-exec the host binary) with
// `--clair-shard-worker=<task file>`; the binary must route that argv into
// ShardWorkerMain before doing anything else. Heartbeats arrive as one
// byte per processed app over a pipe; Poll() sleeps `tick_sleep_ms`, so a
// lease TTL of T ticks is roughly T * tick_sleep_ms of wall silence —
// size it well above per-app extraction time. Kill() is a real SIGKILL:
// mid-write deaths leave exactly the torn checkpoint tails the tolerant
// loader is built for.
class ForkWorkerTransport : public WorkerTransport {
 public:
  ForkWorkerTransport(std::string executable, int num_workers,
                      int tick_sleep_ms = 10);
  ~ForkWorkerTransport() override;

  int max_workers() const override { return num_workers_; }
  support::Result<int> Spawn(const ShardTask& task) override;
  std::vector<WorkerEvent> Poll() override;
  void Kill(int slot) override;

 private:
  struct Child {
    int pid = -1;
    int pipe_fd = -1;  // Read end of the heartbeat pipe.
    bool killed = false;
  };

  std::string executable_;
  int num_workers_;
  int tick_sleep_ms_;
  int next_slot_ = 0;
  std::map<int, Child> live_;
};

// Entry hook for binaries that use ForkWorkerTransport: call first thing in
// main(). Returns -1 when argv carries no worker marker (continue as
// normal); otherwise loads the task file, installs its fault config, runs
// the shard to completion and returns the process exit code (0 done,
// 2 crashed, 3 setup failure). `ecosystem` and `options` must be
// constructed identically to the coordinator's — the binary's own setup
// code is the config transport.
int ShardWorkerMain(int argc, char** argv, const corpus::EcosystemGenerator& ecosystem,
                    const TestbedOptions& options);

}  // namespace clair

#endif  // SRC_CLAIR_SHARD_WORKER_H_
