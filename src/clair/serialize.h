// Persistence for the testbed's (features, labels) rows.
//
// Training is deterministic given the rows and PipelineOptions, so saving
// the rows is a complete, future-proof serialization of a trained model:
// load + TrainFinal() reproduces it bit-for-bit. This sidesteps versioning
// per-learner binary formats (the same trade Weka's ARFF makes).
//
// Format: line-based, UTF-8, one `[app]` block per record:
//
//   [app]
//   name=openvault17
//   label.total=42
//   label.critical=3
//   ...
//   label.cwe.121=2
//   feature.loc.code=12345
//
#ifndef SRC_CLAIR_SERIALIZE_H_
#define SRC_CLAIR_SERIALIZE_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/clair/testbed.h"
#include "src/support/result.h"

namespace clair {

std::string SaveRecords(const std::vector<AppRecord>& records);

support::Result<std::vector<AppRecord>> LoadRecords(std::string_view text);

}  // namespace clair

#endif  // SRC_CLAIR_SERIALIZE_H_
