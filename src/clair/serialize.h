// Persistence for the testbed's (features, labels) rows.
//
// Training is deterministic given the rows and PipelineOptions, so saving
// the rows is a complete, future-proof serialization of a trained model:
// load + TrainFinal() reproduces it bit-for-bit. This sidesteps versioning
// per-learner binary formats (the same trade Weka's ARFF makes).
//
// Format: line-based, UTF-8, one `[app]` block per record:
//
//   [app]
//   name=openvault17
//   label.total=42
//   label.critical=3
//   ...
//   label.cwe.121=2
//   feature.loc.code=12345
//
#ifndef SRC_CLAIR_SERIALIZE_H_
#define SRC_CLAIR_SERIALIZE_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/clair/testbed.h"
#include "src/support/result.h"

namespace clair {

std::string SaveRecords(const std::vector<AppRecord>& records);

support::Result<std::vector<AppRecord>> LoadRecords(std::string_view text);

// --- Checkpointed collection (Testbed::Collect streaming) ---
//
// A checkpoint file is a sequence of blocks, each an [app] section in the
// SaveRecords format followed by one `crc=<16 hex digits>` integrity line
// digesting the section text. The crc line is written last, so a sweep
// killed mid-write leaves at most one truncated block, which the tolerant
// loader below drops (that app is simply recomputed on resume). Records
// round-trip bit-identically: doubles are saved with %.17g.

// One record as a checkpoint block (section + crc line).
std::string SaveCheckpointRecord(const AppRecord& record);

struct CheckpointLoadStats {
  size_t complete_records = 0;
  size_t dropped_blocks = 0;  // Truncated tail, crc mismatch, or bad section.
};

// Tolerant reader: returns every block whose crc verifies and whose section
// parses, silently dropping the rest. Never fails — an unreadable
// checkpoint degrades to an empty resume set.
std::vector<AppRecord> LoadCheckpoint(std::string_view text,
                                      CheckpointLoadStats* stats = nullptr);

}  // namespace clair

#endif  // SRC_CLAIR_SERIALIZE_H_
