// Sharded fleet sweeps with worker supervision, lease-based work stealing,
// and a deterministic crash-consistent merge.
//
// A fleet audit of a real ecosystem outgrows one process long before it
// outgrows one machine's disk: the coordinator here partitions the selected
// corpus into M shards by content hash of the app name (stable under any
// corpus ordering), hands shards to N workers behind a WorkerTransport, and
// supervises them with leases: every heartbeat renews the holder's lease on
// a logical clock that ticks once per supervision poll, and a lease that
// expires — worker dead, wedged, or its heartbeats eaten by injected
// heartbeat_loss chaos — is revoked: the slot is killed, the shard's
// partial checkpoint is kept (it is the durable record of every committed
// app), and the remainder is requeued at the next *generation* for any free
// worker to steal.
//
// Determinism argument for the merge (DESIGN.md §8 carries the full
// version): every row is a pure function of app content — records via
// Testbed::ExtractRecord, function rows via ExtractAppFunctionRows — so two
// workers that both produce a row produce identical bytes, and dedupe by
// name is safe regardless of which generation's copy survives. The merge
// walks the *global sorted app order* (not shard order, not completion
// order), pulling each app's record from its shard checkpoint and its
// function rows from the shard's finished store, re-extracting inline iff a
// crash schedule destroyed both copies. The output is therefore
// byte-identical to a 1-process sweep at any worker count, shard count, or
// kill schedule — the invariant the chaos tests pin.
#ifndef SRC_CLAIR_SHARD_H_
#define SRC_CLAIR_SHARD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/clair/shard_worker.h"
#include "src/clair/testbed.h"
#include "src/ml/feature_store.h"
#include "src/support/result.h"

namespace clair {

struct ShardSweepOptions {
  int num_shards = 8;
  int num_workers = 3;
  // Directory for shard checkpoints, per-generation stores, worker reports,
  // and the merged fleet store. Must exist and be writable.
  std::string work_dir;
  // When true, shard workers stream function rows and the merge produces
  // `<work_dir>/fleet.clfs`, byte-identical to a 1-process
  // CollectFunctionRows store written with `store_options`.
  bool collect_function_rows = true;
  ml::FeatureStoreOptions store_options;
  // Lease TTL in supervision ticks (one tick per transport Poll). A worker
  // whose last heartbeat is older than this loses its shard. With the
  // simulated transport one tick is apps_per_tick extraction steps, so any
  // live worker heartbeats every tick and only chaos or real death expires
  // a lease.
  int lease_ttl_ticks = 8;
  // Simulated transport pacing: worker steps per supervision tick.
  int apps_per_tick = 1;
  // A shard that crashes this many generations falls back to an inline
  // run with crash injection disabled — the termination guarantee under
  // `worker_crash:1`.
  int max_generations = 16;
  // Keep shard checkpoints / generation stores / reports after the merge
  // (for post-mortems); default wipes everything but the fleet store.
  bool keep_shard_files = false;
  TestbedOptions testbed;
};

struct ShardSweepStats {
  int shards = 0;
  int workers = 0;
  uint64_t ticks = 0;                  // Supervision polls (lease clock).
  uint64_t generations_launched = 0;   // Spawns, initial + steals + inline.
  uint64_t worker_crashes = 0;         // Nonzero worker exits observed.
  uint64_t leases_revoked = 0;         // Expiries (missed heartbeats).
  uint64_t shards_stolen = 0;          // Requeues after crash or revocation.
  uint64_t heartbeats_lost = 0;        // Injected heartbeat_loss verdicts.
  uint64_t inline_fallbacks = 0;       // Shards finished by the coordinator.
  uint64_t healed_records = 0;         // Records re-extracted at merge time.
  uint64_t healed_function_apps = 0;   // Apps whose rows were re-extracted.
  uint64_t duplicate_records = 0;      // Cross-generation duplicates merged.
  uint64_t checkpoint_dropped_blocks = 0;  // Torn/corrupt blocks, all shards.
  uint64_t function_rows = 0;          // Rows in the merged fleet store.
};

struct ShardSweepResult {
  // Global sorted-app order; byte-identical (via SaveRecords) to
  // Testbed::Collect on the same ecosystem and testbed options.
  std::vector<AppRecord> records;
  // Fold of worker reports + merge healing: taxonomy accounting for the
  // fleet. Wall-clock fields are real and therefore nondeterministic;
  // byte-stable audits should fold SummarizeRecordRobustness(records).
  RunReport report;
  // "" unless collect_function_rows; else <work_dir>/fleet.clfs.
  std::string store_path;
  ShardSweepStats stats;
};

class ShardCoordinator {
 public:
  // `transport` may be null: the coordinator then owns a
  // SimulatedWorkerTransport built from the sweep options (deterministic,
  // in-process). Pass a ForkWorkerTransport for real process isolation.
  ShardCoordinator(const corpus::EcosystemGenerator& ecosystem,
                   ShardSweepOptions options,
                   std::unique_ptr<WorkerTransport> transport = nullptr);

  // Partition -> supervise -> merge. Runs to completion: every shard either
  // finishes under a worker or falls back inline, so Run() terminates under
  // any fault schedule, including worker_crash:1.
  support::Result<ShardSweepResult> Run();

  // Stable shard assignment: FNV-1a of the app name mod num_shards.
  // Independent of corpus order, worker count, and everything else — the
  // reason a kill schedule keyed on app content replays identically.
  static int ShardOf(const std::string& app, int num_shards);

 private:
  struct ShardState;

  const corpus::EcosystemGenerator& ecosystem_;
  ShardSweepOptions options_;
  std::unique_ptr<WorkerTransport> transport_;
};

}  // namespace clair

#endif  // SRC_CLAIR_SHARD_H_
