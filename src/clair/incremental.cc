#include "src/clair/incremental.h"

#include <algorithm>
#include <map>
#include <utility>

#include "src/lang/lexer.h"
#include "src/lang/parser.h"

namespace clair {
namespace {

// Seed distinct from the app/file cache domains so function keys never
// collide with file keys by construction.
const uint64_t kFunctionHashSeed = Fnv1a64("clair.incremental.fn.v1");

uint64_t MixToken(uint64_t hash, const lang::Token& token) {
  hash = (hash ^ static_cast<uint64_t>(token.kind)) * 0x100000001b3ULL;
  hash = Fnv1a64(token.text, hash);
  // Separator: ("ab","c") and ("a","bc") must differ.
  return (hash ^ 0x1fULL) * 0x100000001b3ULL;
}

}  // namespace

const char* FunctionChangeName(FunctionChange change) {
  switch (change) {
    case FunctionChange::kUnchanged:
      return "unchanged";
    case FunctionChange::kModified:
      return "modified";
    case FunctionChange::kAdded:
      return "added";
    case FunctionChange::kDeleted:
      return "deleted";
  }
  return "?";
}

uint64_t TokenHashOfText(const std::string& text) {
  const auto lexed = lang::Lex(text);
  if (!lexed.ok()) {
    return 0;
  }
  uint64_t hash = kFunctionHashSeed;
  for (const auto& token : lexed.value().tokens) {
    if (token.kind == lang::TokenKind::kEof) {
      break;
    }
    hash = MixToken(hash, token);
  }
  return hash;
}

FileFunctionIndex IndexFunctions(const metrics::SourceFile& file) {
  FileFunctionIndex index;
  index.path = file.path;
  if (file.language != metrics::Language::kMiniC) {
    // Opaque content: text digest only, so the planner still sees change.
    index.file_token_hash = Fnv1a64(file.text);
    return index;
  }
  const auto lexed = lang::Lex(file.text);
  if (!lexed.ok()) {
    index.file_token_hash = Fnv1a64(file.text);
    return index;
  }
  auto unit = lang::Parse(file.text);
  if (!unit.ok()) {
    index.file_token_hash = Fnv1a64(file.text);
    return index;
  }
  index.parsed = true;

  // Function spans in declaration order (the parser emits them sorted by
  // line; functions never share a line in MiniC).
  for (const auto& fn : unit.value().functions) {
    FunctionFingerprint fp;
    fp.name = fn.name;
    fp.line = fn.line;
    fp.end_line = fn.end_line;
    fp.token_hash = kFunctionHashSeed;
    index.functions.push_back(std::move(fp));
  }

  uint64_t file_hash = kFunctionHashSeed;
  uint64_t preamble = kFunctionHashSeed;
  size_t current = 0;  // Function whose span we may be inside.
  for (const auto& token : lexed.value().tokens) {
    if (token.kind == lang::TokenKind::kEof) {
      break;
    }
    file_hash = MixToken(file_hash, token);
    // Advance past spans that ended before this token's line.
    while (current < index.functions.size() &&
           token.line > index.functions[current].end_line) {
      ++current;
    }
    if (current < index.functions.size() &&
        token.line >= index.functions[current].line &&
        token.line <= index.functions[current].end_line) {
      index.functions[current].token_hash =
          MixToken(index.functions[current].token_hash, token);
    } else {
      preamble = MixToken(preamble, token);
    }
  }
  index.file_token_hash = file_hash;
  index.preamble_hash = preamble;
  return index;
}

DiffPlan PlanFunctionDiff(const std::vector<FileFunctionIndex>& old_version,
                          const std::vector<FileFunctionIndex>& new_version) {
  DiffPlan plan;
  std::map<std::string, const FileFunctionIndex*> old_by_path;
  for (const auto& file : old_version) {
    old_by_path[file.path] = &file;
  }
  auto note = [&plan](const std::string& path, const std::string& function,
                      FunctionChange change) {
    plan.deltas.push_back({path, function, change});
    switch (change) {
      case FunctionChange::kUnchanged:
        ++plan.unchanged;
        return;
      case FunctionChange::kModified:
        ++plan.modified;
        break;
      case FunctionChange::kAdded:
        ++plan.added;
        break;
      case FunctionChange::kDeleted:
        ++plan.deleted;
        break;
    }
    if (plan.changed_files.empty() || plan.changed_files.back() != path) {
      plan.changed_files.push_back(path);
    }
  };

  for (const auto& file : new_version) {
    const auto it = old_by_path.find(file.path);
    if (it == old_by_path.end()) {
      // New file: every function is an addition (or the file as a whole when
      // it is opaque).
      if (file.functions.empty()) {
        note(file.path, "", FunctionChange::kAdded);
      }
      for (const auto& fn : file.functions) {
        note(file.path, fn.name, FunctionChange::kAdded);
      }
      continue;
    }
    const FileFunctionIndex& old_file = *it->second;
    old_by_path.erase(it);
    if (!file.parsed || !old_file.parsed) {
      // Opaque on either side: one whole-file verdict from the text digest.
      note(file.path, "",
           file.file_token_hash == old_file.file_token_hash
               ? FunctionChange::kUnchanged
               : FunctionChange::kModified);
      continue;
    }
    std::map<std::string, const FunctionFingerprint*> old_fns;
    for (const auto& fn : old_file.functions) {
      old_fns[fn.name] = &fn;
    }
    for (const auto& fn : file.functions) {
      const auto old_fn = old_fns.find(fn.name);
      if (old_fn == old_fns.end()) {
        note(file.path, fn.name, FunctionChange::kAdded);
        continue;
      }
      note(file.path, fn.name,
           fn.token_hash == old_fn->second->token_hash ? FunctionChange::kUnchanged
                                                       : FunctionChange::kModified);
      old_fns.erase(old_fn);
    }
    for (const auto& [name, fn] : old_fns) {
      (void)fn;
      note(file.path, name, FunctionChange::kDeleted);
    }
  }
  // Files present only in the old version, in their original order.
  for (const auto& file : old_version) {
    if (old_by_path.count(file.path) == 0) {
      continue;
    }
    if (file.functions.empty()) {
      note(file.path, "", FunctionChange::kDeleted);
    }
    for (const auto& fn : file.functions) {
      note(file.path, fn.name, FunctionChange::kDeleted);
    }
  }
  return plan;
}

DiffPlan PlanFunctionDiff(const std::vector<metrics::SourceFile>& old_files,
                          const std::vector<metrics::SourceFile>& new_files) {
  std::vector<FileFunctionIndex> old_index;
  old_index.reserve(old_files.size());
  for (const auto& file : old_files) {
    old_index.push_back(IndexFunctions(file));
  }
  std::vector<FileFunctionIndex> new_index;
  new_index.reserve(new_files.size());
  for (const auto& file : new_files) {
    new_index.push_back(IndexFunctions(file));
  }
  return PlanFunctionDiff(old_index, new_index);
}

std::shared_ptr<const ParsedFile> AstCache::Get(const metrics::SourceFile& file) const {
  uint64_t key = Fnv1a64(file.path);
  key = (key ^ static_cast<uint64_t>(file.language)) * 0x100000001b3ULL;
  key = Fnv1a64(file.text, key);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  auto parsed = std::make_shared<ParsedFile>();
  parsed->index = IndexFunctions(file);
  if (file.language == metrics::Language::kMiniC) {
    auto unit = lang::Parse(file.text);
    if (unit.ok()) {
      auto owned = std::make_shared<lang::TranslationUnit>(std::move(unit).value());
      parsed->unit = owned;
      auto module = lang::LowerToIr(*owned);
      if (module.ok()) {
        parsed->module =
            std::make_shared<const lang::IrModule>(std::move(module).value());
      }
    }
  }
  std::shared_ptr<const ParsedFile> shared = std::move(parsed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (entries_.emplace(key, shared).second) {
      order_.push_back(key);
      while (entries_.size() > max_entries_ && !order_.empty()) {
        entries_.erase(order_.front());
        order_.pop_front();
      }
    }
  }
  return shared;
}

size_t AstCache::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void AstCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  order_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

}  // namespace clair
