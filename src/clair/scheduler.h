// Analysis-as-a-service: an asynchronous scheduler that serves a continuous
// stream of "score this subject" requests over the extraction stage DAG
// (stage_graph.h), instead of the one-shot synchronous sweep the
// Pipeline/Testbed pair runs.
//
// Throughput comes from cross-request batching. A coordinator thread drains
// the queue in priority order and plans *waves* of up to
// `SchedulerOptions::max_batch` requests; within a wave:
//   - duplicate in-flight content keys are coalesced: N requests for
//     identical sources cost ONE extraction (the followers copy the
//     leader's row and are counted in FeatureCacheStats::coalesced_fills);
//   - unique extractions fan out on the support::ThreadPool, and the pool's
//     completion hook publishes extract-only requests the moment their row
//     lands — before the rest of the wave finishes;
//   - all surviving rows go through ONE columnar forest call per hypothesis
//     (HypothesisModel::PredictRiskBatch), amortizing tree traversal across
//     the wave, with the severity-weighted overall risk computed exactly as
//     SecurityEvaluator::Evaluate does.
// Symbolic-execution solver work batches implicitly: wave extractions reuse
// each worker thread's persistent incremental SAT session
// (SymExecOptions::reuse_solver_session), so one solver serves the queued
// path queries of many requests.
//
// Determinism contract: a request's result — features, per-hypothesis
// risks, overall risk — is bit-identical to an independent synchronous
// sweep (ExtractFeatures + PredictRisk per hypothesis) at any
// CLAIR_THREADS, any batch composition, and with batching on or off; only
// scheduling metadata (wave number, latency, completion order) varies.
//
// Requests support priorities (higher first, FIFO within a priority) and
// cancellation: a queued request unwinds all its not-yet-started stages; a
// request cancelled mid-wave (after extraction, before predict) unwinds
// exactly the predict stage. Shutdown is a deterministic drain — the
// destructor resolves every submitted request before returning, upholding
// the never-drop-a-row guarantee (every request ends kDone, kFailed with a
// taxonomized error, or kCancelled; never silently lost).
#ifndef SRC_CLAIR_SCHEDULER_H_
#define SRC_CLAIR_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/clair/pipeline.h"
#include "src/clair/stage_graph.h"
#include "src/clair/testbed.h"
#include "src/metrics/extract.h"
#include "src/support/thread_pool.h"

namespace clair {

enum class RequestState : uint8_t {
  kQueued = 0,
  kRunning,
  kDone,
  kFailed,     // Resolved with a taxonomized error, never silently dropped.
  kCancelled,  // Unwound before its remaining stages ran.
};

const char* RequestStateName(RequestState state);

struct ScoreRequest {
  std::string subject;
  std::vector<metrics::SourceFile> files;
  int priority = 0;  // Higher runs sooner; ties break by submission order.
  // Resolve after feature assembly, skipping predict — these publish from
  // the extraction wave's completion hook, before the wave barrier.
  bool extract_only = false;
};

struct ScoreResult {
  uint64_t id = 0;
  std::string subject;
  RequestState state = RequestState::kQueued;
  metrics::FeatureVector features;
  // Parallel arrays in StandardHypotheses() order (hypotheses the model
  // bundle covers). Empty for extract_only / failed / cancelled requests.
  std::vector<std::string> hypothesis_ids;
  std::vector<double> hypothesis_risks;
  double overall_risk = 0.0;  // Severity-weighted, as SecurityEvaluator.
  std::string error;          // Set when state == kFailed.
  int stages_unwound = 0;     // DAG stages cancelled before they started.
  uint64_t wave = 0;          // Wave that served it (0 = never scheduled).
  bool coalesced = false;     // Row copied from a duplicate in-flight leader.
  uint64_t completion_index = 0;  // Global resolve order, 1-based.
  std::chrono::steady_clock::time_point submitted_at;
  std::chrono::steady_clock::time_point resolved_at;
};

struct SchedulerOptions {
  // false = waves of one request: the unbatched reference mode the serving
  // bench compares against. Results are bit-identical either way.
  bool batching = true;
  size_t max_batch = 64;  // Requests per wave (>= 1).
  // Worker pool for wave extraction; 0 = the process-global pool
  // (CLAIR_THREADS). Results are bit-identical at any setting.
  int threads = 0;
  // Construct idle: nothing runs until Resume() (or Drain/destruction).
  // Tests use this to build a fully-loaded queue and observe priority order.
  bool start_paused = false;
  // Test hook: invoked on the coordinator thread after a wave's extractions
  // complete and before its batched predict, with no scheduler lock held —
  // Cancel() from inside is safe, which is how the mid-DAG cancellation
  // test unwinds a predict deterministically.
  std::function<void(uint64_t wave)> on_wave_extracted;
};

struct SchedulerStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t cancelled = 0;
  uint64_t waves = 0;
  uint64_t batched_requests = 0;  // Requests served by waves of size > 1.
  uint64_t coalesced = 0;         // Extractions avoided by deduplication.
  uint64_t predict_batches = 0;   // Batched forest calls (per hypothesis).
  uint64_t predict_rows = 0;      // Rows those calls scored.
};

class Scheduler {
 public:
  // Borrows the testbed (extraction configuration + feature cache) and the
  // trained model bundle; both must outlive the scheduler.
  Scheduler(const Testbed& testbed, const TrainedModel& model,
            SchedulerOptions options = {});
  // Deterministic drain: resolves every submitted request, then joins.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Enqueues a request; returns its id (monotonic from 1).
  uint64_t Submit(ScoreRequest request);

  // Cancels a request. Queued: resolves kCancelled immediately, unwinding
  // every not-yet-started stage. Running before its predict stage started:
  // marks it for unwind at the wave's post-extraction checkpoint and
  // returns true. Already resolved (or predict underway): returns false.
  bool Cancel(uint64_t id);

  // Blocks until the request resolves; returns a copy of its result. An
  // unknown id returns a kFailed result with an explanatory error.
  ScoreResult Wait(uint64_t id);

  // Starts a paused scheduler (no-op when already running).
  void Resume();

  // Resumes if paused and blocks until every submitted request resolves.
  void Drain();

  SchedulerStats stats() const;

 private:
  struct Entry {
    ScoreRequest request;
    RequestState state = RequestState::kQueued;
    bool cancel_requested = false;  // Honored at the wave checkpoint.
    bool predict_started = false;   // Past the last cancellation point.
    StageTracker tracker;           // Request-level DAG progress.
    ScoreResult result;
    Entry() : tracker(StageGraph::Extraction()) {}
  };

  void CoordinatorLoop();
  // Picks the next wave under the lock: queued entries sorted by
  // (-priority, id), truncated to max_batch (1 when batching is off).
  std::vector<uint64_t> PlanWaveLocked();
  void RunWave(const std::vector<uint64_t>& wave_ids, uint64_t wave_number);
  // Marks an entry resolved: stamps resolved_at/completion_index, updates
  // stats, and wakes waiters. Caller holds mutex_.
  void ResolveLocked(Entry& entry, RequestState state);
  static bool Resolved(RequestState state) {
    return state == RequestState::kDone || state == RequestState::kFailed ||
           state == RequestState::kCancelled;
  }
  bool HasQueuedLocked() const;

  const Testbed& testbed_;
  const TrainedModel& model_;
  SchedulerOptions options_;
  std::unique_ptr<support::ThreadPool> dedicated_pool_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<uint64_t, std::unique_ptr<Entry>> entries_;
  uint64_t next_id_ = 0;
  uint64_t completion_counter_ = 0;
  SchedulerStats stats_;
  bool paused_ = false;
  bool stopping_ = false;

  std::thread coordinator_;  // Last member: joins before the rest unwinds.
};

}  // namespace clair

#endif  // SRC_CLAIR_SCHEDULER_H_
