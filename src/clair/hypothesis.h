// The prediction targets of the training phase (Figure 4's "CVE hypotheses"
// column): yes/no questions about an application's vulnerability history,
// each answered from its CVE ground truth during training and predicted
// from code properties at evaluation time.
#ifndef SRC_CLAIR_HYPOTHESIS_H_
#define SRC_CLAIR_HYPOTHESIS_H_

#include <functional>
#include <string>
#include <vector>

#include "src/cvedb/cvedb.h"

namespace clair {

// Corpus-level statistics some hypotheses are defined relative to.
struct CorpusStats {
  double median_total_vulns = 0.0;
  double median_vulns_per_year = 0.0;
  // Median fraction of an app's CVEs that are high severity (CVSS > 7).
  double median_high_share = 0.0;
};

CorpusStats ComputeCorpusStats(const std::vector<cvedb::AppSummary>& summaries);

struct Hypothesis {
  std::string id;
  std::string question;
  // Class names; Label() returns an index into this vector.
  std::vector<std::string> classes;
  std::function<int(const cvedb::AppSummary&, const CorpusStats&)> label;
  // Developer-facing mitigation hint when the risky class is predicted
  // (§5.3: "applying bound checking if there is high risk of buffer
  // overflow, or placing the application behind firewall...").
  std::string mitigation;
};

// The standard battery, including the paper's three worked examples:
//   cvss_gt7   — "how many high-severity vulnerabilities exist (CVSS > 7)?"
//   av_network — "any vulnerabilities accessible from the network (AV = N)?"
//   cwe121     — "any stack-based buffer overflow (CWE = 121)?"
// plus memory-safety, critical-severity, and above-median-rate questions.
const std::vector<Hypothesis>& StandardHypotheses();

// Finds a hypothesis by id (nullptr if absent).
const Hypothesis* FindHypothesis(const std::string& id);

}  // namespace clair

#endif  // SRC_CLAIR_HYPOTHESIS_H_
