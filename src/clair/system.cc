#include "src/clair/system.h"

#include <algorithm>

#include "src/support/strings.h"

namespace clair {

double SystemEvaluator::ExposureOf(bool network_facing, bool privileged) {
  double exposure = network_facing ? 1.0 : 0.6;
  if (privileged) {
    exposure *= 1.25;
  }
  return exposure;
}

SystemReport SystemEvaluator::Evaluate(
    const std::vector<SystemComponent>& components) const {
  SystemReport report;
  double survival = 1.0;  // Probability no component is compromised.
  for (const auto& component : components) {
    ComponentAssessment assessment;
    assessment.report = evaluator_.Evaluate(component.name, component.files);
    assessment.network_facing = component.network_facing;
    assessment.privileged = component.privileged;
    assessment.exposure = ExposureOf(component.network_facing, component.privileged);
    assessment.exposed_risk =
        std::min(assessment.report.overall_risk * assessment.exposure, 1.0);
    survival *= 1.0 - assessment.exposed_risk;
    if (assessment.exposed_risk >= report.weakest_risk) {
      report.weakest_risk = assessment.exposed_risk;
      report.weakest_link = component.name;
    }
    report.components.push_back(std::move(assessment));
  }
  report.system_risk = 1.0 - survival;
  std::stable_sort(report.components.begin(), report.components.end(),
                   [](const ComponentAssessment& a, const ComponentAssessment& b) {
                     return a.exposed_risk > b.exposed_risk;
                   });
  return report;
}

std::string SystemReport::ToString() const {
  std::string out = support::Format("System risk: %.3f (weakest link: %s at %.3f)\n",
                                    system_risk, weakest_link.c_str(), weakest_risk);
  for (const auto& component : components) {
    out += support::Format("  %-22s raw=%.3f exposure=%.2f exposed=%.3f%s%s\n",
                           component.report.subject.c_str(),
                           component.report.overall_risk, component.exposure,
                           component.exposed_risk,
                           component.network_facing ? " [net]" : "",
                           component.privileged ? " [priv]" : "");
  }
  return out;
}

}  // namespace clair
