// Function-granular vulnerability ranking — the LEOPARD-style refinement of
// the paper's app-level study: instead of predicting an application's CVE
// count, rank individual functions by predicted vulnerability so a security
// team can spend its audit budget on the top K.
//
// Rows come from the generator's latent truth: corpus::AttributeCves assigns
// each synthetic CVE to a culpable function (hazard-weighted), and every
// MiniC function in the selected corpus becomes one row — fixed schema
// metrics::FunctionFeatureNames(), label "vulnerable" iff the function has
// at least one attributed CVE. Rows stream straight into an ml::FeatureStore
// so fleet-scale sweeps never materialise the matrix in memory.
#ifndef SRC_CLAIR_FUNCTION_RANK_H_
#define SRC_CLAIR_FUNCTION_RANK_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "src/corpus/ecosystem.h"
#include "src/ml/classifier.h"
#include "src/ml/eval.h"
#include "src/ml/feature_store.h"
#include "src/support/result.h"

namespace clair {

// Class names for the function-label store: index 0 benign, 1 vulnerable.
std::vector<std::string> FunctionClassNames();

struct FunctionCorpusStats {
  size_t apps = 0;       // Selected C-family apps that contributed rows.
  size_t functions = 0;  // Rows appended.
  size_t positives = 0;  // Functions with >= 1 attributed CVE.
  // Splice accounting (zero for from-scratch sweeps): rows copied from the
  // previous store vs re-extracted because their file changed.
  size_t rows_reused = 0;
  size_t rows_recomputed = 0;
};

// One function-granular labelled row: name "app/src/file.c::function",
// values parallel to metrics::FunctionFeatureNames(), target 1.0 iff the
// generator attributed a CVE to the function.
struct FunctionRow {
  std::string name;
  std::vector<double> values;
  double target = 0.0;
};

// One app's rows, in file order then declaration order — the same order a
// serial sweep would produce. Deterministic per app and independent of who
// calls it (the wave-parallel collector below and the shard worker both
// stream from this, so their stores are byte-identical). Rows carry the
// proc.* process features (churn, age, touches — corpus::VersionHistory)
// alongside the static battery.
std::vector<FunctionRow> ExtractAppFunctionRows(
    const corpus::EcosystemGenerator& ecosystem, const corpus::AppSpec& spec);

// Same, at `version_lag` commits before the app's HEAD (clamped to the
// initial import). proc.* features are evaluated as of that version's last
// applied commit.
std::vector<FunctionRow> ExtractAppFunctionRowsAt(
    const corpus::EcosystemGenerator& ecosystem, const corpus::AppSpec& spec,
    size_t version_lag);

struct FunctionRankOptions {
  double min_history_years = 5.0;  // Same selection policy as Testbed.
  // Worker count for per-app extraction (0 = process default, 1 = serial).
  int threads = 0;
  // Apps extracted concurrently per wave. The serial append between waves
  // bounds peak memory to one wave's rows regardless of corpus size, and
  // rows always land in sorted-app order, so the store file is
  // byte-identical at any thread count.
  size_t wave_apps = 8;
  // Extract every app at this many commits before its HEAD (0 = HEAD).
  size_t version_lag = 0;
};

// Streams one row per MiniC function of every selected app into `writer`
// (row name "app/src/file.c::function"). The caller owns Finish().
support::Result<FunctionCorpusStats> CollectFunctionRows(
    const corpus::EcosystemGenerator& ecosystem, const FunctionRankOptions& options,
    ml::FeatureStoreWriter& writer);

// Incremental store update: streams the function rows of the corpus at
// `options.version_lag` into `writer`, reusing rows from `previous` (a
// finished store extracted at `previous_version_lag`) for every file whose
// token stream is unchanged between the two versions — only the 5 trailing
// proc.* columns are re-evaluated, since process metrics move with the
// as-of day even when code does not. Changed files re-run the full static
// battery. The output store is byte-identical to a from-scratch
// CollectFunctionRows at the same lag; rows_reused / rows_recomputed in the
// returned stats expose the split.
support::Result<FunctionCorpusStats> SpliceFunctionRows(
    const corpus::EcosystemGenerator& ecosystem, const FunctionRankOptions& options,
    const ml::FeatureStore& previous, size_t previous_version_lag,
    ml::FeatureStoreWriter& writer);

// Scores every row of a finished store with `model` (positive-class
// probability, streamed chunk-by-chunk with bounded residency) and returns
// top-K precision/recall against the store's labels for each requested K.
std::vector<ml::RankingMetrics> EvaluateRanking(const ml::Classifier& model,
                                                const ml::FeatureStore& store,
                                                std::span<const size_t> ks);

}  // namespace clair

#endif  // SRC_CLAIR_FUNCTION_RANK_H_
