// Function-granular vulnerability ranking — the LEOPARD-style refinement of
// the paper's app-level study: instead of predicting an application's CVE
// count, rank individual functions by predicted vulnerability so a security
// team can spend its audit budget on the top K.
//
// Rows come from the generator's latent truth: corpus::AttributeCves assigns
// each synthetic CVE to a culpable function (hazard-weighted), and every
// MiniC function in the selected corpus becomes one row — fixed schema
// metrics::FunctionFeatureNames(), label "vulnerable" iff the function has
// at least one attributed CVE. Rows stream straight into an ml::FeatureStore
// so fleet-scale sweeps never materialise the matrix in memory.
#ifndef SRC_CLAIR_FUNCTION_RANK_H_
#define SRC_CLAIR_FUNCTION_RANK_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "src/corpus/ecosystem.h"
#include "src/ml/classifier.h"
#include "src/ml/eval.h"
#include "src/ml/feature_store.h"
#include "src/support/result.h"

namespace clair {

// Class names for the function-label store: index 0 benign, 1 vulnerable.
std::vector<std::string> FunctionClassNames();

struct FunctionCorpusStats {
  size_t apps = 0;       // Selected C-family apps that contributed rows.
  size_t functions = 0;  // Rows appended.
  size_t positives = 0;  // Functions with >= 1 attributed CVE.
};

// One function-granular labelled row: name "app/src/file.c::function",
// values parallel to metrics::FunctionFeatureNames(), target 1.0 iff the
// generator attributed a CVE to the function.
struct FunctionRow {
  std::string name;
  std::vector<double> values;
  double target = 0.0;
};

// One app's rows, in file order then declaration order — the same order a
// serial sweep would produce. Deterministic per app and independent of who
// calls it (the wave-parallel collector below and the shard worker both
// stream from this, so their stores are byte-identical).
std::vector<FunctionRow> ExtractAppFunctionRows(
    const corpus::EcosystemGenerator& ecosystem, const corpus::AppSpec& spec);

struct FunctionRankOptions {
  double min_history_years = 5.0;  // Same selection policy as Testbed.
  // Worker count for per-app extraction (0 = process default, 1 = serial).
  int threads = 0;
  // Apps extracted concurrently per wave. The serial append between waves
  // bounds peak memory to one wave's rows regardless of corpus size, and
  // rows always land in sorted-app order, so the store file is
  // byte-identical at any thread count.
  size_t wave_apps = 8;
};

// Streams one row per MiniC function of every selected app into `writer`
// (row name "app/src/file.c::function"). The caller owns Finish().
support::Result<FunctionCorpusStats> CollectFunctionRows(
    const corpus::EcosystemGenerator& ecosystem, const FunctionRankOptions& options,
    ml::FeatureStoreWriter& writer);

// Scores every row of a finished store with `model` (positive-class
// probability, streamed chunk-by-chunk with bounded residency) and returns
// top-K precision/recall against the store's labels for each requested K.
std::vector<ml::RankingMetrics> EvaluateRanking(const ml::Classifier& model,
                                                const ml::FeatureStore& store,
                                                std::span<const size_t> ks);

}  // namespace clair

#endif  // SRC_CLAIR_FUNCTION_RANK_H_
