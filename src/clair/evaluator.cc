#include "src/clair/evaluator.h"

#include <algorithm>
#include <cmath>

#include "src/support/strings.h"
#include "src/support/thread_pool.h"

namespace clair {

double HypothesisSeverityWeight(const std::string& id) {
  if (id == "critical") {
    return 1.0;
  }
  if (id == "cvss_gt7") {
    return 0.9;
  }
  if (id == "av_network") {
    return 0.8;
  }
  if (id == "cwe121" || id == "memory_safety") {
    return 0.7;
  }
  return 0.5;
}

std::string SecurityReport::ToString() const {
  std::string out = support::Format("Security report for %s\n", subject.c_str());
  out += support::Format("  overall risk: %.3f\n", overall_risk);
  for (const auto& prediction : predictions) {
    out += support::Format("  [%s] %-18s risk=%.3f%s\n",
                           prediction.predicted_risky ? "!" : " ",
                           prediction.hypothesis_id.c_str(), prediction.risk,
                           prediction.predicted_risky ? "  <- predicted risky" : "");
    if (prediction.predicted_risky && !prediction.mitigation.empty()) {
      out += support::Format("      hint: %s\n", prediction.mitigation.c_str());
    }
    if (!prediction.contributing_features.empty()) {
      out += "      drivers:";
      const size_t n = std::min<size_t>(3, prediction.contributing_features.size());
      for (size_t i = 0; i < n; ++i) {
        out += support::Format(" %s", prediction.contributing_features[i].first.c_str());
      }
      out += "\n";
    }
  }
  return out;
}

std::string VersionDelta::ToString() const {
  std::string out =
      support::Format("Version comparison: %.3f -> %.3f (delta %+0.3f)\n",
                      before.overall_risk, after.overall_risk, risk_delta);
  for (const auto& [id, delta] : by_hypothesis) {
    out += support::Format("  %-18s %+0.3f\n", id.c_str(), delta);
  }
  return out;
}

SecurityEvaluator::SecurityEvaluator(const TrainedModel& model, const Testbed& testbed)
    : model_(model), testbed_(testbed) {}

SecurityReport SecurityEvaluator::Evaluate(
    const std::string& subject, const std::vector<metrics::SourceFile>& files) const {
  SecurityReport report;
  report.subject = subject;
  report.features = testbed_.ExtractFeatures(files);
  double weighted = 0.0;
  double weight_total = 0.0;
  for (const auto& hypothesis : StandardHypotheses()) {
    const HypothesisModel* bundle = model_.ForHypothesis(hypothesis.id);
    if (bundle == nullptr) {
      continue;
    }
    HypothesisPrediction prediction;
    prediction.hypothesis_id = hypothesis.id;
    prediction.question = hypothesis.question;
    prediction.risk = bundle->PredictRisk(report.features);
    prediction.predicted_risky = prediction.risk >= 0.5;
    if (prediction.predicted_risky) {
      prediction.mitigation = hypothesis.mitigation;
    }
    auto importance = bundle->model->FeatureImportance();
    if (importance.size() > 5) {
      importance.resize(5);
    }
    prediction.contributing_features = std::move(importance);
    const double weight = HypothesisSeverityWeight(hypothesis.id);
    weighted += weight * prediction.risk;
    weight_total += weight;
    report.predictions.push_back(std::move(prediction));
  }
  report.overall_risk = weight_total > 0.0 ? weighted / weight_total : 0.0;
  return report;
}

VersionDelta SecurityEvaluator::CompareVersions(
    const std::vector<metrics::SourceFile>& before,
    const std::vector<metrics::SourceFile>& after) const {
  VersionDelta delta;
  delta.before = Evaluate("before", before);
  delta.after = Evaluate("after", after);
  delta.risk_delta = delta.after.overall_risk - delta.before.overall_risk;
  for (size_t i = 0;
       i < delta.before.predictions.size() && i < delta.after.predictions.size(); ++i) {
    delta.by_hypothesis.emplace_back(
        delta.before.predictions[i].hypothesis_id,
        delta.after.predictions[i].risk - delta.before.predictions[i].risk);
  }
  std::sort(delta.by_hypothesis.begin(), delta.by_hypothesis.end(),
            [](const auto& a, const auto& b) {
              return std::fabs(a.second) > std::fabs(b.second);
            });
  return delta;
}

std::vector<SecurityReport> SecurityEvaluator::RankLibraries(
    const std::vector<std::pair<std::string, std::vector<metrics::SourceFile>>>& candidates)
    const {
  // Candidate libraries evaluate independently (one extraction battery
  // each); collect in input order, then sort.
  std::vector<SecurityReport> reports = support::ParallelMap<SecurityReport>(
      candidates.size(),
      [&](size_t i) { return Evaluate(candidates[i].first, candidates[i].second); });
  std::stable_sort(reports.begin(), reports.end(),
                   [](const SecurityReport& a, const SecurityReport& b) {
                     return a.overall_risk < b.overall_risk;
                   });
  return reports;
}

}  // namespace clair
