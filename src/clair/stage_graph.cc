#include "src/clair/stage_graph.h"

namespace clair {

const char* StageName(StageKind kind) {
  switch (kind) {
    case StageKind::kParse:
      return "parse";
    case StageKind::kLower:
      return "lower";
    case StageKind::kDataflow:
      return "dataflow";
    case StageKind::kIntervals:
      return "intervals";
    case StageKind::kSymexec:
      return "symexec";
    case StageKind::kDynamic:
      return "dynamic";
    case StageKind::kFeatures:
      return "features";
    case StageKind::kPredict:
      return "predict";
    case StageKind::kCount:
      break;
  }
  return "?";
}

const char* StageStateName(StageState state) {
  switch (state) {
    case StageState::kPending:
      return "pending";
    case StageState::kRunning:
      return "running";
    case StageState::kDone:
      return "done";
    case StageState::kFailed:
      return "failed";
    case StageState::kSkipped:
      return "skipped";
    case StageState::kDisabled:
      return "disabled";
    case StageState::kCancelled:
      return "cancelled";
  }
  return "?";
}

StageGraph::StageGraph(std::vector<StageKind> order, std::vector<StageEdge> edges)
    : order_(std::move(order)), edges_(std::move(edges)) {
  for (const StageEdge& edge : edges_) {
    deps_[static_cast<size_t>(edge.to)].push_back(edge);
  }
}

const StageGraph& StageGraph::Extraction() {
  static const StageGraph graph(
      {StageKind::kParse, StageKind::kLower, StageKind::kDataflow,
       StageKind::kIntervals, StageKind::kSymexec, StageKind::kDynamic,
       StageKind::kFeatures, StageKind::kPredict},
      {
          {StageKind::kParse, StageKind::kLower, /*hard=*/true},
          {StageKind::kLower, StageKind::kDataflow, /*hard=*/true},
          {StageKind::kLower, StageKind::kIntervals, /*hard=*/true},
          {StageKind::kLower, StageKind::kSymexec, /*hard=*/true},
          {StageKind::kLower, StageKind::kDynamic, /*hard=*/true},
          {StageKind::kDataflow, StageKind::kFeatures, /*hard=*/false},
          {StageKind::kIntervals, StageKind::kFeatures, /*hard=*/false},
          {StageKind::kSymexec, StageKind::kFeatures, /*hard=*/false},
          {StageKind::kDynamic, StageKind::kFeatures, /*hard=*/false},
          {StageKind::kFeatures, StageKind::kPredict, /*hard=*/true},
      });
  return graph;
}

StageTracker::StageTracker(const StageGraph& graph) : graph_(graph) {
  states_.fill(StageState::kPending);
}

void StageTracker::Disable(StageKind kind) { Set(kind, StageState::kDisabled); }

StageKind StageTracker::NextRunnable() {
  // One pass per call keeps the cascade simple: marking a stage kSkipped
  // here may unblock (skip) its own dependents, which the *next* pass
  // handles. The graph is tiny (8 stages), so the re-scan cost is nil.
  for (bool progressed = true; progressed;) {
    progressed = false;
    for (const StageKind kind : graph_.Order()) {
      if (state(kind) != StageState::kPending) {
        continue;
      }
      bool deps_settled = true;
      bool hard_dep_missing = false;
      for (const StageEdge& dep : graph_.Deps(kind)) {
        const StageState dep_state = state(dep.from);
        if (dep_state == StageState::kPending || dep_state == StageState::kRunning) {
          deps_settled = false;
          break;
        }
        if (dep.hard && dep_state != StageState::kDone &&
            dep_state != StageState::kDisabled) {
          hard_dep_missing = true;
        }
      }
      if (!deps_settled) {
        continue;
      }
      if (hard_dep_missing) {
        Set(kind, StageState::kSkipped);
        progressed = true;  // The skip may gate this stage's dependents.
        continue;
      }
      return kind;
    }
  }
  return StageKind::kCount;
}

int StageTracker::CancelPending() {
  int unwound = 0;
  for (const StageKind kind : graph_.Order()) {
    if (state(kind) == StageState::kPending) {
      Set(kind, StageState::kCancelled);
      ++unwound;
    }
  }
  return unwound;
}

bool StageTracker::Settled() const {
  for (const StageKind kind : graph_.Order()) {
    const StageState s = state(kind);
    if (s == StageState::kPending || s == StageState::kRunning) {
      return false;
    }
  }
  return true;
}

}  // namespace clair
