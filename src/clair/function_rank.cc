#include "src/clair/function_rank.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/lang/parser.h"
#include "src/metrics/extract.h"
#include "src/support/thread_pool.h"

namespace clair {

std::vector<FunctionRow> ExtractAppFunctionRows(
    const corpus::EcosystemGenerator& ecosystem, const corpus::AppSpec& spec) {
  std::vector<FunctionRow> rows;
  const auto files = ecosystem.GenerateSourcesProfiled(spec);
  const auto attribution = ecosystem.AttributeCves(spec, files);
  for (const auto& entry : files) {
    if (entry.file.language != metrics::Language::kMiniC) {
      continue;
    }
    auto unit = lang::Parse(entry.file.text);
    if (!unit.ok()) {
      continue;
    }
    auto module = lang::LowerToIr(unit.value());
    if (!module.ok()) {
      continue;
    }
    for (auto& fn : metrics::ExtractFunctionFeatures(unit.value(), module.value())) {
      FunctionRow row;
      row.name = entry.file.path + "::" + fn.name;
      row.values = std::move(fn.values);
      row.target = attribution.count(row.name) > 0 ? 1.0 : 0.0;
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

std::vector<std::string> FunctionClassNames() { return {"benign", "vulnerable"}; }

support::Result<FunctionCorpusStats> CollectFunctionRows(
    const corpus::EcosystemGenerator& ecosystem, const FunctionRankOptions& options,
    ml::FeatureStoreWriter& writer) {
  FunctionCorpusStats stats;
  const auto selected =
      ecosystem.database().AppsWithConvergingHistory(options.min_history_years);
  std::vector<const corpus::AppSpec*> specs;
  for (const auto& app : selected) {
    const corpus::AppSpec* spec = ecosystem.FindSpec(app);
    if (spec != nullptr) {
      specs.push_back(spec);
    }
  }
  std::unique_ptr<support::ThreadPool> dedicated;
  if (options.threads > 0) {
    dedicated = std::make_unique<support::ThreadPool>(options.threads);
  }
  support::ThreadPool& pool =
      dedicated != nullptr ? *dedicated : support::ThreadPool::Global();
  // Wave-parallel extraction, serial append: each wave's apps extract
  // concurrently (per-app work is deterministic and order-independent),
  // then their rows append in app order. Peak memory is one wave of rows;
  // the byte stream the writer sees is identical at any worker count.
  const size_t wave = std::max<size_t>(options.wave_apps, 1);
  for (size_t base = 0; base < specs.size(); base += wave) {
    const size_t count = std::min(wave, specs.size() - base);
    const auto batches =
        pool.ParallelMap<std::vector<FunctionRow>>(count, [&](size_t i) {
          return ExtractAppFunctionRows(ecosystem, *specs[base + i]);
        });
    for (const auto& batch : batches) {
      if (!batch.empty()) {
        ++stats.apps;
      }
      for (const auto& row : batch) {
        writer.Append(row.name, row.values, row.target);
        ++stats.functions;
        if (row.target != 0.0) {
          ++stats.positives;
        }
      }
    }
  }
  return stats;
}

std::vector<ml::RankingMetrics> EvaluateRanking(const ml::Classifier& model,
                                                const ml::FeatureStore& store,
                                                std::span<const size_t> ks) {
  std::vector<double> scores;
  std::vector<int> labels;
  scores.reserve(store.num_rows());
  labels.reserve(store.num_rows());
  std::vector<double> row(store.num_features());
  for (size_t c = 0; c < store.num_chunks(); ++c) {
    const auto chunk = store.chunk(c);
    for (size_t r = 0; r < chunk.rows; ++r) {
      for (size_t f = 0; f < store.num_features(); ++f) {
        row[f] = chunk.Column(f)[r];
      }
      const auto proba = model.PredictProba(row);
      scores.push_back(proba.size() > 1 ? proba[1] : 0.0);
      labels.push_back(chunk.targets[r] != 0.0 ? 1 : 0);
    }
    store.ReleaseChunk(c);
  }
  return ml::TopKRanking(scores, labels, ks);
}

}  // namespace clair
