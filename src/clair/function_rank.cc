#include "src/clair/function_rank.h"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

#include "src/corpus/history.h"
#include "src/lang/parser.h"
#include "src/metrics/extract.h"
#include "src/support/thread_pool.h"

namespace clair {
namespace {

// Rows for one materialized file: parse, lower, per-function battery, label
// join. `process` (nullable) supplies the file's proc.* metrics by function
// name.
void AppendFileRows(const metrics::SourceFile& file,
                    const std::map<std::string, metrics::ProcessMetrics>* process,
                    const std::map<std::string, int>& attribution,
                    std::vector<FunctionRow>& rows) {
  auto unit = lang::Parse(file.text);
  if (!unit.ok()) {
    return;
  }
  auto module = lang::LowerToIr(unit.value());
  if (!module.ok()) {
    return;
  }
  for (auto& fn :
       metrics::ExtractFunctionFeatures(unit.value(), module.value(), process)) {
    FunctionRow row;
    row.name = file.path + "::" + fn.name;
    row.values = std::move(fn.values);
    row.target = attribution.count(row.name) > 0 ? 1.0 : 0.0;
    rows.push_back(std::move(row));
  }
}

}  // namespace

std::vector<FunctionRow> ExtractAppFunctionRows(
    const corpus::EcosystemGenerator& ecosystem, const corpus::AppSpec& spec) {
  return ExtractAppFunctionRowsAt(ecosystem, spec, 0);
}

std::vector<FunctionRow> ExtractAppFunctionRowsAt(
    const corpus::EcosystemGenerator& ecosystem, const corpus::AppSpec& spec,
    size_t version_lag) {
  std::vector<FunctionRow> rows;
  const auto profiled = ecosystem.GenerateSourcesProfiled(spec);
  const auto attribution = ecosystem.AttributeCves(spec, profiled);
  const corpus::VersionHistory history =
      corpus::VersionHistory::ForApp(ecosystem, spec);
  const size_t head = history.head_version();
  const size_t version = head - std::min(version_lag, head);
  const auto files = history.Materialize(version);
  const auto process = history.ProcessMetricsAt(version);
  for (const auto& file : files) {
    if (file.language != metrics::Language::kMiniC) {
      continue;
    }
    const auto file_process = process.find(file.path);
    AppendFileRows(file,
                   file_process != process.end() ? &file_process->second : nullptr,
                   attribution, rows);
  }
  return rows;
}

std::vector<std::string> FunctionClassNames() { return {"benign", "vulnerable"}; }

support::Result<FunctionCorpusStats> CollectFunctionRows(
    const corpus::EcosystemGenerator& ecosystem, const FunctionRankOptions& options,
    ml::FeatureStoreWriter& writer) {
  FunctionCorpusStats stats;
  const auto selected =
      ecosystem.database().AppsWithConvergingHistory(options.min_history_years);
  std::vector<const corpus::AppSpec*> specs;
  for (const auto& app : selected) {
    const corpus::AppSpec* spec = ecosystem.FindSpec(app);
    if (spec != nullptr) {
      specs.push_back(spec);
    }
  }
  std::unique_ptr<support::ThreadPool> dedicated;
  if (options.threads > 0) {
    dedicated = std::make_unique<support::ThreadPool>(options.threads);
  }
  support::ThreadPool& pool =
      dedicated != nullptr ? *dedicated : support::ThreadPool::Global();
  // Wave-parallel extraction, serial append: each wave's apps extract
  // concurrently (per-app work is deterministic and order-independent),
  // then their rows append in app order. Peak memory is one wave of rows;
  // the byte stream the writer sees is identical at any worker count.
  const size_t wave = std::max<size_t>(options.wave_apps, 1);
  for (size_t base = 0; base < specs.size(); base += wave) {
    const size_t count = std::min(wave, specs.size() - base);
    const auto batches =
        pool.ParallelMap<std::vector<FunctionRow>>(count, [&](size_t i) {
          return ExtractAppFunctionRowsAt(ecosystem, *specs[base + i],
                                          options.version_lag);
        });
    for (const auto& batch : batches) {
      if (!batch.empty()) {
        ++stats.apps;
      }
      for (const auto& row : batch) {
        writer.Append(row.name, row.values, row.target);
        ++stats.functions;
        if (row.target != 0.0) {
          ++stats.positives;
        }
      }
    }
  }
  return stats;
}

support::Result<FunctionCorpusStats> SpliceFunctionRows(
    const corpus::EcosystemGenerator& ecosystem, const FunctionRankOptions& options,
    const ml::FeatureStore& previous, size_t previous_version_lag,
    ml::FeatureStoreWriter& writer) {
  using support::Error;
  const std::vector<std::string> schema = metrics::FunctionFeatureNames();
  if (previous.feature_names() != schema) {
    return Error(Error::Code::kFailedPrecondition,
                 "previous store schema does not match FunctionFeatureNames()");
  }
  const size_t proc_first = schema.size() - 5;  // Trailing proc.* block.

  // Sequential cursor over the previous store's rows. Both sweeps enumerate
  // the same sorted apps, the same files in order, and (marker-edit history:
  // commits modify bodies, never add or remove functions) the same function
  // sets, so the old store's rows align positionally with the new walk; the
  // name check below still guards every reuse, so a misalignment (selection
  // drift, corrupt store) degrades to recomputation, never to a wrong row.
  struct Cursor {
    const ml::FeatureStore& store;
    size_t chunk = 0;
    size_t row = 0;     // Within chunk.
    size_t global = 0;  // Across chunks.

    bool AtEnd() const { return global >= store.num_rows(); }
    const std::string& Name() const { return store.RowName(global); }
    void Read(std::vector<double>& values, double& target) {
      const auto view = store.chunk(chunk);
      values.resize(store.num_features());
      for (size_t f = 0; f < store.num_features(); ++f) {
        values[f] = view.Column(f)[row];
      }
      target = view.targets[row];
    }
    void Advance() {
      ++global;
      ++row;
      if (chunk < store.num_chunks() && row >= store.chunk(chunk).rows) {
        store.ReleaseChunk(chunk);
        ++chunk;
        row = 0;
      }
    }
  };
  Cursor cursor{previous};

  FunctionCorpusStats stats;
  const auto selected =
      ecosystem.database().AppsWithConvergingHistory(options.min_history_years);
  for (const auto& app : selected) {
    const corpus::AppSpec* spec = ecosystem.FindSpec(app);
    if (spec == nullptr) {
      continue;
    }
    const auto profiled = ecosystem.GenerateSourcesProfiled(*spec);
    const auto attribution = ecosystem.AttributeCves(*spec, profiled);
    const corpus::VersionHistory history =
        corpus::VersionHistory::ForApp(ecosystem, *spec);
    const size_t head = history.head_version();
    const size_t new_version = head - std::min(options.version_lag, head);
    const size_t prev_version = head - std::min(previous_version_lag, head);
    const auto files_new = history.Materialize(new_version);
    const auto process = history.ProcessMetricsAt(new_version);
    const auto files_prev = history.Materialize(prev_version);
    std::map<std::string, const std::string*> prev_text;
    for (const auto& file : files_prev) {
      prev_text[file.path] = &file.text;
    }

    bool contributed = false;
    for (const auto& file : files_new) {
      if (file.language != metrics::Language::kMiniC) {
        continue;
      }
      const std::string prefix = file.path + "::";
      const auto old_text = prev_text.find(file.path);
      const bool file_unchanged =
          old_text != prev_text.end() && *old_text->second == file.text;

      // Rows the previous store holds for this file (consecutive, cursor
      // order): reuse them when the file is token-identical, else discard
      // and recompute.
      std::vector<FunctionRow> reused;
      while (!cursor.AtEnd() && cursor.Name().rfind(prefix, 0) == 0) {
        if (file_unchanged) {
          FunctionRow row;
          row.name = cursor.Name();
          cursor.Read(row.values, row.target);
          reused.push_back(std::move(row));
        }
        cursor.Advance();
      }

      std::vector<FunctionRow> rows;
      if (file_unchanged && !reused.empty()) {
        rows = std::move(reused);
        const auto file_process = process.find(file.path);
        for (auto& row : rows) {
          // Static columns are identical by construction (same token
          // stream); the proc.* block moves with the as-of day, so it is
          // re-evaluated even for untouched code.
          metrics::ProcessMetrics pm;
          if (file_process != process.end()) {
            const std::string fn_name = row.name.substr(prefix.size());
            const auto it = file_process->second.find(fn_name);
            if (it != file_process->second.end()) {
              pm = it->second;
            }
          }
          row.values[proc_first + 0] = pm.touches;
          row.values[proc_first + 1] = pm.age_days;
          row.values[proc_first + 2] = pm.days_since_change;
          row.values[proc_first + 3] = pm.lines_added;
          row.values[proc_first + 4] = pm.lines_deleted;
        }
        stats.rows_reused += rows.size();
      } else {
        const auto file_process = process.find(file.path);
        AppendFileRows(
            file, file_process != process.end() ? &file_process->second : nullptr,
            attribution, rows);
        stats.rows_recomputed += rows.size();
      }
      for (const auto& row : rows) {
        writer.Append(row.name, row.values, row.target);
        ++stats.functions;
        if (row.target != 0.0) {
          ++stats.positives;
        }
        contributed = true;
      }
    }
    if (contributed) {
      ++stats.apps;
    }
  }
  return stats;
}

std::vector<ml::RankingMetrics> EvaluateRanking(const ml::Classifier& model,
                                                const ml::FeatureStore& store,
                                                std::span<const size_t> ks) {
  std::vector<double> scores;
  std::vector<int> labels;
  scores.reserve(store.num_rows());
  labels.reserve(store.num_rows());
  std::vector<double> row(store.num_features());
  for (size_t c = 0; c < store.num_chunks(); ++c) {
    const auto chunk = store.chunk(c);
    for (size_t r = 0; r < chunk.rows; ++r) {
      for (size_t f = 0; f < store.num_features(); ++f) {
        row[f] = chunk.Column(f)[r];
      }
      const auto proba = model.PredictProba(row);
      scores.push_back(proba.size() > 1 ? proba[1] : 0.0);
      labels.push_back(chunk.targets[r] != 0.0 ? 1 : 0);
    }
    store.ReleaseChunk(c);
  }
  return ml::TopKRanking(scores, labels, ks);
}

}  // namespace clair
