// Explicit stage DAG for feature extraction and scoring.
//
// The extraction battery has always had an implicit pipeline shape — parse,
// lower, then four independent deep analyses, then feature assembly, then
// prediction. This header makes that shape a first-class object: a static
// `StageGraph` describing the stages and their dependency edges, plus a
// small per-run `StageTracker` state machine that walks the graph in its
// deterministic order, skips stages whose *hard* prerequisites did not
// complete (a file that fails to parse never reaches dataflow), tolerates
// *soft* failures (a degraded analysis still feeds feature assembly), and
// supports cancellation (pending stages unwind without running).
//
// Two consumers share it: `Testbed::ExtractFeatures` drives its per-file
// deep-analysis loop off `StageGraph::Extraction()`, and `clair::Scheduler`
// tracks per-request progress with one tracker per request so a cancel can
// report exactly which stages were unwound. The graph's `Order()` is fixed
// to the battery's historical execution order, so the refactor is
// bit-identical to the hand-rolled loop it replaces.
#ifndef SRC_CLAIR_STAGE_GRAPH_H_
#define SRC_CLAIR_STAGE_GRAPH_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace clair {

// Stages of the score-one-subject pipeline, in deterministic execution
// order. kParse..kDynamic are per-file analysis stages; kFeatures (feature
// assembly + densities) and kPredict (model inference) are per-request.
enum class StageKind : int {
  kParse = 0,
  kLower,
  kDataflow,
  kIntervals,
  kSymexec,
  kDynamic,
  kFeatures,
  kPredict,
  kCount,
};

inline constexpr int kStageKindCount = static_cast<int>(StageKind::kCount);

const char* StageName(StageKind kind);

// A dependency edge. `hard` edges gate execution: if the prerequisite did
// not complete, the dependent stage is skipped outright (parse → lower,
// lower → analyses, features → predict). Soft edges only order execution:
// the dependent still runs when the prerequisite degraded (analyses →
// features — a failed dataflow pass must not suppress feature assembly,
// that is the never-drop-a-row guarantee).
struct StageEdge {
  StageKind from;
  StageKind to;
  bool hard;
};

class StageGraph {
 public:
  // The extraction DAG:
  //   parse → lower → {dataflow, intervals, symexec, dynamic} → features
  //   → predict
  // with hard edges through lower and into predict, soft edges from the
  // analyses into features.
  static const StageGraph& Extraction();

  // All stages in deterministic topological order (the battery's historical
  // execution order; ties broken by enum value).
  const std::vector<StageKind>& Order() const { return order_; }
  const std::vector<StageEdge>& edges() const { return edges_; }

  // Prerequisites of `kind` (pairs of stage and hardness).
  const std::vector<StageEdge>& Deps(StageKind kind) const {
    return deps_[static_cast<size_t>(kind)];
  }

 private:
  StageGraph(std::vector<StageKind> order, std::vector<StageEdge> edges);

  std::vector<StageKind> order_;
  std::vector<StageEdge> edges_;
  std::array<std::vector<StageEdge>, kStageKindCount> deps_;
};

enum class StageState : uint8_t {
  kPending,    // Not yet started.
  kRunning,    // Claimed by a runner.
  kDone,       // Completed (possibly after retries).
  kFailed,     // Ran and degraded/failed; soft dependents still proceed.
  kSkipped,    // Never ran: a hard prerequisite failed or was skipped.
  kDisabled,   // Not part of this run's configuration; never gates.
  kCancelled,  // Unwound by cancellation before it started.
};

const char* StageStateName(StageState state);

// Per-run walk over a StageGraph. Not thread-safe: each run (one file's
// deep battery, one request's lifecycle) owns its tracker and advances it
// from a single thread at a time.
class StageTracker {
 public:
  explicit StageTracker(const StageGraph& graph);

  // Removes a stage from this run (e.g. with_dataflow=false, or per-file
  // trackers that stop before kFeatures). Disabled stages never gate their
  // dependents. Only valid before the walk starts.
  void Disable(StageKind kind);

  // Returns the next stage that is pending with every prerequisite settled
  // and every hard prerequisite completed (or disabled), in graph order.
  // Stages whose hard prerequisites failed are marked kSkipped as they are
  // encountered (the skip cascades through hard edges). Returns
  // StageKind::kCount when nothing further can run.
  StageKind NextRunnable();

  void MarkRunning(StageKind kind) { Set(kind, StageState::kRunning); }
  void MarkDone(StageKind kind) { Set(kind, StageState::kDone); }
  void MarkFailed(StageKind kind) { Set(kind, StageState::kFailed); }

  // Cancellation unwind: every still-pending stage moves to kCancelled.
  // Returns how many stages were unwound. Running stages are left to finish
  // (their results are discarded by the caller).
  int CancelPending();

  StageState state(StageKind kind) const {
    return states_[static_cast<size_t>(kind)];
  }

  // True once no stage is pending or running.
  bool Settled() const;

 private:
  void Set(StageKind kind, StageState state) {
    states_[static_cast<size_t>(kind)] = state;
  }

  const StageGraph& graph_;
  std::array<StageState, kStageKindCount> states_;
};

}  // namespace clair

#endif  // SRC_CLAIR_STAGE_GRAPH_H_
