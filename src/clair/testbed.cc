#include "src/clair/testbed.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <set>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "src/clair/serialize.h"
#include "src/corpus/history.h"
#include "src/dataflow/analyses.h"
#include "src/dataflow/intervals.h"
#include "src/lang/interp.h"
#include "src/lang/parser.h"
#include "src/metrics/callgraph.h"
#include "src/support/rng.h"
#include "src/support/strings.h"
#include "src/support/thread_pool.h"

namespace clair {
namespace {

// Salts separating the function-granular payload namespaces inside the
// shared RowCache / per-file FeatureCache: the same token hash must never
// alias a dataflow row with an interval row.
constexpr uint64_t kFileRowSalt = 0x8f11e50a7c01ULL;
constexpr uint64_t kDataflowRowSalt = 0xda7af10aULL;
constexpr uint64_t kIntervalsRowSalt = 0x17e2f0a1ULL;
constexpr uint64_t kSymexecRowSalt = 0x53e7ecULL;
constexpr uint64_t kDynamicRowSalt = 0xd59a1cULL;

// FNV-1a over the 8 little-endian bytes of `value`, chained from `hash`.
uint64_t MixU64(uint64_t hash, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash = (hash ^ ((value >> (8 * i)) & 0xff)) * 0x100000001b3ULL;
  }
  return hash;
}

// §5.3's dynamic-trace extension: execute the module's call-graph roots on
// random inputs and summarise runtime behaviour. `deadline` (not owned) is
// threaded into the interpreter, which halts a trial gracefully on expiry;
// the expiry is then re-raised here so the stage wrapper records a timeout
// instead of caching a partially-sampled row.
metrics::FeatureVector DynamicFeatures(const lang::IrModule& module, int trials,
                                       uint64_t seed, support::Deadline* deadline) {
  metrics::FeatureVector fv;
  const metrics::CallGraph graph(module);
  std::vector<std::string> entries;
  if (module.FindFunction("main") != nullptr) {
    entries.push_back("main");
  } else {
    entries = graph.Roots();
    if (entries.size() > 8) {
      entries.resize(8);  // Bound per-file cost on large modules.
    }
  }
  support::Rng rng(seed);
  long long runs = 0;
  long long faults = 0;
  long long aborted = 0;
  long long steps = 0;
  long long branches = 0;
  long long sink_events = 0;
  lang::InterpOptions interp_options;
  interp_options.max_steps = 1 << 14;
  interp_options.deadline = deadline;
  for (const auto& entry : entries) {
    for (int t = 0; t < trials; ++t) {
      std::vector<int64_t> inputs;
      for (int i = 0; i < 16; ++i) {
        inputs.push_back(rng.NextBool(0.7)
                             ? static_cast<int64_t>(rng.NextBelow(32))
                             : static_cast<int64_t>(rng.NextBelow(1 << 12)) - 2048);
      }
      const auto trace =
          lang::Execute(module, entry, {0, 1, 2, 3}, std::move(inputs), interp_options);
      if (deadline != nullptr) {
        deadline->ThrowIfExpired("dynamic");
      }
      ++runs;
      steps += static_cast<long long>(trace.steps);
      branches += static_cast<long long>(trace.branches);
      sink_events += static_cast<long long>(trace.sink_values.size());
      if (trace.outcome == lang::ExecOutcome::kOutOfBounds ||
          trace.outcome == lang::ExecOutcome::kDivisionByZero) {
        ++faults;
      } else if (trace.outcome == lang::ExecOutcome::kAborted) {
        ++aborted;
      }
    }
  }
  if (runs > 0) {
    fv.Set("dynamic.runs", static_cast<double>(runs));
    fv.Set("dynamic.fault_rate", static_cast<double>(faults) / runs);
    fv.Set("dynamic.abort_rate", static_cast<double>(aborted) / runs);
    fv.Set("dynamic.mean_steps", static_cast<double>(steps) / runs);
    fv.Set("dynamic.branch_density",
           steps > 0 ? static_cast<double>(branches) / static_cast<double>(steps) : 0.0);
    fv.Set("dynamic.sink_events_per_run", static_cast<double>(sink_events) / runs);
  }
  return fv;
}

}  // namespace

Testbed::Testbed(const corpus::EcosystemGenerator& ecosystem, TestbedOptions options)
    : ecosystem_(ecosystem),
      options_(options),
      fn_cache_(1 << 18, options.function_cache_max_bytes) {}

bool Testbed::GranularActive() const {
  // Any armed fault site disables the granular tier: the module-level path
  // is the one whose injection semantics the robustness suite pins, and a
  // faulted run must never serve rows cached by a clean run (or vice versa
  // across attempt salts at sub-stage granularity).
  return options_.cache_functions &&
         support::FaultInjector::Global().Fingerprint() == 0;
}

// Retry-and-degrade wrapper around one deep-analysis stage. Failure modes
// are normalised here: an Error result, an InjectedFault, a watchdog
// DeadlineExceeded, and any other std::exception all count a failed
// attempt. Each retry runs under the next ScopedAttempt salt, so injected
// verdicts re-roll (transient faults recover; rate-1.0 faults fail every
// attempt and degrade). Provenance is stamped into the row as sparse
// `robust.*` features — absent on clean rows, so fault-free output is
// byte-identical to a build without this layer.
template <typename T, typename Fn>
std::optional<T> Testbed::GuardStage(StageKind stage, metrics::FeatureVector& features,
                                     Fn&& run) const {
  StageCounters& counters = stage_counters_[static_cast<int>(stage)];
  const int max_attempts = std::max(options_.stage_retries, 0) + 1;
  const auto start = std::chrono::steady_clock::now();
  std::optional<T> result;
  int failed_attempts = 0;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    counters.attempts.fetch_add(1, std::memory_order_relaxed);
    if (attempt > 0) {
      counters.retries.fetch_add(1, std::memory_order_relaxed);
    }
    bool injected = false;
    bool timeout = false;
    try {
      support::FaultInjector::ScopedAttempt salt(static_cast<uint32_t>(attempt));
      auto outcome = run(attempt);
      if (outcome.ok()) {
        result.emplace(std::move(outcome).value());
      } else {
        // Sites whose substrate reports failure as an error value rather
        // than a throw (the parser, lowering) tag injected faults by
        // message so the taxonomy still separates them from organic errors.
        injected = support::StartsWith(outcome.error().message(), "injected fault");
      }
    } catch (const support::InjectedFault&) {
      injected = true;
    } catch (const support::DeadlineExceeded&) {
      timeout = true;
    } catch (const std::exception&) {
      // Organic analyzer failure: counted below, row continues.
    }
    if (result.has_value()) {
      break;
    }
    ++failed_attempts;
    counters.failures.fetch_add(1, std::memory_order_relaxed);
    if (injected) {
      counters.injected.fetch_add(1, std::memory_order_relaxed);
    }
    if (timeout) {
      counters.timeouts.fetch_add(1, std::memory_order_relaxed);
    }
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  counters.wall_nanos.fetch_add(
      static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()),
      std::memory_order_relaxed);
  const std::string prefix = std::string("robust.") + StageName(stage);
  if (failed_attempts > 0) {
    features.Add(prefix + "_failures", static_cast<double>(failed_attempts));
  }
  if (!result.has_value()) {
    counters.degraded.fetch_add(1, std::memory_order_relaxed);
    features.Add(prefix + "_degraded", 1.0);
    return std::nullopt;
  }
  if (failed_attempts > 0) {
    counters.recovered.fetch_add(1, std::memory_order_relaxed);
    features.Add(prefix + "_retries", static_cast<double>(failed_attempts));
  }
  return result;
}

uint64_t Testbed::OptionsFingerprint() const {
  // Canonical text encoding of every option that changes extraction output.
  // min_history_years, threads, and checkpoint_path are deliberately
  // excluded: selection does not change a row's content, worker count never
  // changes results, and checkpointing only persists them. The active
  // fault-injection config is included (fingerprint 0 when no site is
  // armed), so faulted runs never share cached rows with clean ones.
  const auto& sx = options_.symexec;
  const std::string encoding = support::Format(
      "df=%d sx=%d dyn=%d trials=%d dseed=%llu deep=%d "
      "width=%d paths=%llu steps=%llu total=%llu queries=%llu depth=%d "
      "array=%d nodes=%llu conflicts=%llu cap=%llu exploit=%d "
      "retries=%d budget=%llu wall=%d faults=%016llx",
      options_.with_dataflow, options_.with_symexec, options_.with_dynamic,
      options_.dynamic_trials,
      static_cast<unsigned long long>(options_.dynamic_seed),
      options_.deep_analysis_max_files, sx.width,
      static_cast<unsigned long long>(sx.max_paths),
      static_cast<unsigned long long>(sx.max_steps_per_path),
      static_cast<unsigned long long>(sx.max_total_steps),
      static_cast<unsigned long long>(sx.max_solver_queries), sx.max_call_depth,
      sx.max_symbolic_array, static_cast<unsigned long long>(sx.max_expr_nodes),
      static_cast<unsigned long long>(sx.solver_conflict_budget),
      static_cast<unsigned long long>(sx.exploit_exact_cap),
      sx.exploit_sample_trials, options_.stage_retries,
      static_cast<unsigned long long>(options_.stage_step_budget),
      options_.stage_wall_ms,
      static_cast<unsigned long long>(support::FaultInjector::Global().Fingerprint()));
  return Fnv1a64(encoding);
}

// Per-file shallow battery with content-addressed reuse. Replicates
// metrics::ExtractAppFeatures op-for-op: MergeSum in file order over vectors
// that are bit-identical whether cached or freshly computed (FeatureVector
// round-trips doubles exactly through the cache), then the same app-level
// epilogue.
metrics::FeatureVector Testbed::GranularAppFeatures(
    const std::vector<metrics::SourceFile>& files) const {
  metrics::FeatureVector app;
  for (const auto& file : files) {
    uint64_t key = Fnv1a64(file.path, kFileRowSalt);
    key = MixU64(key, static_cast<uint64_t>(file.language));
    key = Fnv1a64(file.text, key);
    metrics::FeatureVector row;
    if (file_cache_.Lookup(key, &row)) {
      file_rows_reused_.fetch_add(1, std::memory_order_relaxed);
    } else {
      row = metrics::ExtractFileFeatures(file);
      file_cache_.Insert(key, row);
      file_rows_computed_.fetch_add(1, std::memory_order_relaxed);
    }
    app.MergeSum(row);
  }
  app.Set("app.files", static_cast<double>(files.size()));
  const double code = app.Get("loc.code");
  const double comment = app.Get("loc.comment");
  if (code > 0.0) {
    app.Set("loc.comment_ratio", comment / code);
  }
  return app;
}

// Per-function dataflow battery with payload reuse. The loop mirrors
// dataflow::DataflowFeatures exactly — same tick weights, same accumulation
// order, same epilogue — with each function's contribution either computed
// (and cached under its body-token hash) or replayed from the cache.
metrics::FeatureVector Testbed::GranularDataflow(const lang::IrModule& module,
                                                 const FileFunctionIndex& index,
                                                 support::Deadline* deadline) const {
  const uint64_t options_fp = OptionsFingerprint();
  std::map<std::string, uint64_t> hash_by_name;
  for (const auto& fp : index.functions) {
    hash_by_name[fp.name] = fp.token_hash;
  }
  metrics::FeatureVector fv;
  double mean_reaching_sum = 0.0;
  int max_live = 0;
  int max_dom_depth = 0;
  dataflow::TaintSummary total;
  for (const auto& fn : module.functions) {
    deadline->TickOrThrow("dataflow", fn.blocks.size() + 1);
    uint64_t key = 0;
    bool keyed = false;
    if (const auto it = hash_by_name.find(fn.name); it != hash_by_name.end()) {
      key = MixU64(MixU64(kDataflowRowSalt, it->second), options_fp);
      keyed = true;
    }
    std::vector<double> row;
    if (keyed && fn_cache_.Lookup(key, &row) && row.size() == 9) {
      fn_dataflow_reused_.fetch_add(1, std::memory_order_relaxed);
    } else {
      const dataflow::CfgView cfg(fn);
      const dataflow::ReachingDefinitions rd(fn, &cfg);
      const dataflow::Liveness lv(fn, &cfg);
      const dataflow::Dominators dom(fn, &cfg);
      const dataflow::TaintSummary ts = dataflow::AnalyzeTaint(fn, &cfg);
      row = {rd.MeanReachingPerUse(),
             static_cast<double>(lv.MaxLiveAtEntry()),
             static_cast<double>(dom.TreeDepth()),
             static_cast<double>(ts.tainted_instructions),
             static_cast<double>(ts.tainted_branches),
             static_cast<double>(ts.tainted_array_indices),
             static_cast<double>(ts.tainted_sinks),
             static_cast<double>(ts.tainted_call_args),
             static_cast<double>(ts.input_sites)};
      fn_dataflow_computed_.fetch_add(1, std::memory_order_relaxed);
      if (keyed) {
        fn_cache_.Insert(key, row);
      }
    }
    mean_reaching_sum += row[0];
    max_live = std::max(max_live, static_cast<int>(row[1]));
    max_dom_depth = std::max(max_dom_depth, static_cast<int>(row[2]));
    total.tainted_instructions += static_cast<long long>(row[3]);
    total.tainted_branches += static_cast<long long>(row[4]);
    total.tainted_array_indices += static_cast<long long>(row[5]);
    total.tainted_sinks += static_cast<long long>(row[6]);
    total.tainted_call_args += static_cast<long long>(row[7]);
    total.input_sites += static_cast<long long>(row[8]);
  }
  const double fn_count =
      module.functions.empty() ? 1.0 : static_cast<double>(module.functions.size());
  fv.Set("dataflow.mean_reaching_defs", mean_reaching_sum / fn_count);
  fv.Set("dataflow.max_live_regs", static_cast<double>(max_live));
  fv.Set("dataflow.max_dom_depth", static_cast<double>(max_dom_depth));
  fv.Set("dataflow.tainted_instructions", static_cast<double>(total.tainted_instructions));
  fv.Set("dataflow.tainted_branches", static_cast<double>(total.tainted_branches));
  fv.Set("dataflow.tainted_array_indices",
         static_cast<double>(total.tainted_array_indices));
  fv.Set("dataflow.tainted_sinks", static_cast<double>(total.tainted_sinks));
  fv.Set("dataflow.tainted_call_args", static_cast<double>(total.tainted_call_args));
  fv.Set("dataflow.input_sites", static_cast<double>(total.input_sites));
  return fv;
}

// Per-function interval analysis with payload reuse. The watchdog is the
// subtle part: AnalyzeIntervals ticks `deadline` once per worklist visit, so
// a cached function replays its recorded step delta (payload slot 6) before
// folding — cumulative budget consumption, and therefore the logical point
// where a tight budget expires, is identical warm and cold.
metrics::FeatureVector Testbed::GranularIntervals(const lang::IrModule& module,
                                                  const FileFunctionIndex& index,
                                                  support::Deadline* deadline) const {
  const uint64_t options_fp = OptionsFingerprint();
  std::map<std::string, uint64_t> hash_by_name;
  for (const auto& fp : index.functions) {
    hash_by_name[fp.name] = fp.token_hash;
  }
  metrics::FeatureVector fv;
  long long accesses = 0;
  long long proven = 0;
  long long divisions = 0;
  long long proven_div = 0;
  long long possible_oob = 0;
  long long possible_div0 = 0;
  for (const auto& fn : module.functions) {
    uint64_t key = 0;
    bool keyed = false;
    if (const auto it = hash_by_name.find(fn.name); it != hash_by_name.end()) {
      key = MixU64(MixU64(kIntervalsRowSalt, it->second), options_fp);
      keyed = true;
    }
    std::vector<double> row;
    if (keyed && fn_cache_.Lookup(key, &row) && row.size() == 7) {
      deadline->TickOrThrow("intervals", static_cast<uint64_t>(row[6]));
      fn_intervals_reused_.fetch_add(1, std::memory_order_relaxed);
    } else {
      const uint64_t before = deadline->steps_used();
      dataflow::IntervalOptions interval_options;
      interval_options.deadline = deadline;
      const dataflow::IntervalReport report =
          dataflow::AnalyzeIntervals(fn, interval_options);
      long long fn_oob = 0;
      long long fn_div0 = 0;
      for (const auto& finding : report.findings) {
        if (finding.kind == dataflow::AiFinding::Kind::kPossibleOutOfBounds) {
          ++fn_oob;
        } else {
          ++fn_div0;
        }
      }
      row = {static_cast<double>(report.array_accesses),
             static_cast<double>(report.proven_in_bounds),
             static_cast<double>(report.divisions),
             static_cast<double>(report.proven_nonzero_divisor),
             static_cast<double>(fn_oob),
             static_cast<double>(fn_div0),
             static_cast<double>(deadline->steps_used() - before)};
      fn_intervals_computed_.fetch_add(1, std::memory_order_relaxed);
      if (keyed) {
        fn_cache_.Insert(key, row);
      }
    }
    accesses += static_cast<long long>(row[0]);
    proven += static_cast<long long>(row[1]);
    divisions += static_cast<long long>(row[2]);
    proven_div += static_cast<long long>(row[3]);
    possible_oob += static_cast<long long>(row[4]);
    possible_div0 += static_cast<long long>(row[5]);
  }
  fv.Set("ai.array_accesses", static_cast<double>(accesses));
  fv.Set("ai.proven_in_bounds", static_cast<double>(proven));
  fv.Set("ai.possible_oob", static_cast<double>(possible_oob));
  fv.Set("ai.divisions", static_cast<double>(divisions));
  fv.Set("ai.proven_nonzero_divisor", static_cast<double>(proven_div));
  fv.Set("ai.possible_div0", static_cast<double>(possible_div0));
  if (accesses > 0) {
    fv.Set("ai.unproven_access_ratio",
           static_cast<double>(possible_oob) / static_cast<double>(accesses));
  }
  return fv;
}

// Per-entry symbolic exploration with payload reuse. An entry's result is a
// function of everything reachable from it, so the key is a digest of the
// entry's call-graph closure (each reachable function's body-token hash),
// the file preamble (global initializers), the entry's derived RNG seed, and
// the options fingerprint. Misses fan out on the pool exactly like
// symx::SymexFeatures; the fold runs in entry-index order either way.
metrics::FeatureVector Testbed::GranularSymexec(const lang::IrModule& module,
                                                const FileFunctionIndex& index,
                                                int attempt) const {
  metrics::FeatureVector fv;
  std::vector<std::string> entries;
  const metrics::CallGraph graph(module);
  if (module.FindFunction("main") != nullptr) {
    entries.push_back("main");
  } else {
    entries = graph.Roots();
  }
  const auto& sx = options_.symexec;
  const size_t max_entries =
      sx.max_entries > 0 ? static_cast<size_t>(sx.max_entries) : entries.size();
  if (entries.size() > max_entries) {
    entries.resize(max_entries);
  }
  symx::SymExecOptions base = sx;
  base.watchdog_steps = options_.stage_step_budget;
  base.fault_salt = static_cast<uint32_t>(attempt);

  const uint64_t options_fp = OptionsFingerprint();
  std::map<std::string, uint64_t> hash_by_name;
  for (const auto& fp : index.functions) {
    hash_by_name[fp.name] = fp.token_hash;
  }
  const auto closure_key = [&](const std::string& entry, size_t i) {
    std::set<std::string> visited;
    std::queue<std::string> frontier;
    visited.insert(entry);
    frontier.push(entry);
    while (!frontier.empty()) {
      const std::string name = frontier.front();
      frontier.pop();
      for (const auto& callee : graph.Callees(name)) {
        if (visited.insert(callee).second) {
          frontier.push(callee);
        }
      }
    }
    uint64_t key = MixU64(kSymexecRowSalt, options_fp);
    key = MixU64(key, index.preamble_hash);
    key = Fnv1a64(entry, key);
    key = MixU64(key, support::Rng::TaskSeed(base.rng_seed, static_cast<uint64_t>(i)));
    for (const auto& name : visited) {  // std::set: sorted, deterministic.
      key = Fnv1a64(name, key);
      const auto it = hash_by_name.find(name);
      key = MixU64(key, it != hash_by_name.end() ? it->second : 0x9e3779b97f4a7c15ULL);
    }
    return key;
  };

  std::vector<uint64_t> keys(entries.size(), 0);
  std::vector<std::vector<double>> rows(entries.size());
  std::vector<size_t> missing;
  for (size_t i = 0; i < entries.size(); ++i) {
    keys[i] = closure_key(entries[i], i);
    if (fn_cache_.Lookup(keys[i], &rows[i]) && rows[i].size() >= 8) {
      symexec_entries_reused_.fetch_add(1, std::memory_order_relaxed);
    } else {
      rows[i].clear();
      missing.push_back(i);
    }
  }
  if (!missing.empty()) {
    // Same fan-out as the module-level path; a watchdog throw propagates to
    // GuardStage before anything is inserted, so a failed stage caches
    // nothing (retries recompute, exactly like the module-level path).
    const std::vector<symx::SymExecResult> computed =
        support::ParallelMap<symx::SymExecResult>(missing.size(), [&](size_t m) {
          const size_t i = missing[m];
          symx::SymExecOptions entry_options = base;
          entry_options.rng_seed =
              support::Rng::TaskSeed(base.rng_seed, static_cast<uint64_t>(i));
          return symx::Explore(module, entries[i], entry_options);
        });
    for (size_t m = 0; m < missing.size(); ++m) {
      const size_t i = missing[m];
      const symx::SymExecResult& result = computed[m];
      std::vector<double> row = {static_cast<double>(result.paths_explored),
                                 static_cast<double>(result.paths_completed),
                                 static_cast<double>(result.solver_queries),
                                 static_cast<double>(result.range_pruned),
                                 static_cast<double>(result.sat_conflicts),
                                 static_cast<double>(result.model_reuse_hits),
                                 static_cast<double>(result.simplifier_folds),
                                 static_cast<double>(result.vulns.size())};
      for (const auto& vuln : result.vulns) {
        row.push_back(static_cast<double>(static_cast<int>(vuln.kind)));
        row.push_back(vuln.exploit_fraction);
      }
      fn_cache_.Insert(keys[i], row);
      rows[i] = std::move(row);
      symexec_entries_computed_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  uint64_t paths = 0;
  uint64_t completed = 0;
  uint64_t vuln_sites = 0;
  uint64_t oob_sites = 0;
  uint64_t div_sites = 0;
  uint64_t queries = 0;
  uint64_t pruned = 0;
  uint64_t conflicts = 0;
  uint64_t reuse_hits = 0;
  uint64_t folds = 0;
  double max_fraction = 0.0;
  double sum_fraction = 0.0;
  for (const auto& row : rows) {
    paths += static_cast<uint64_t>(row[0]);
    completed += static_cast<uint64_t>(row[1]);
    queries += static_cast<uint64_t>(row[2]);
    pruned += static_cast<uint64_t>(row[3]);
    conflicts += static_cast<uint64_t>(row[4]);
    reuse_hits += static_cast<uint64_t>(row[5]);
    folds += static_cast<uint64_t>(row[6]);
    const size_t nvulns = static_cast<size_t>(row[7]);
    vuln_sites += nvulns;
    for (size_t v = 0; v < nvulns; ++v) {
      const double kind = row[8 + 2 * v];
      const double fraction = row[9 + 2 * v];
      if (static_cast<int>(kind) == static_cast<int>(symx::VulnKind::kOutOfBounds)) {
        ++oob_sites;
      } else {
        ++div_sites;
      }
      max_fraction = std::max(max_fraction, fraction);
      sum_fraction += fraction;
    }
  }
  fv.Set("symx.entries", static_cast<double>(entries.size()));
  fv.Set("symx.paths", static_cast<double>(paths));
  fv.Set("symx.paths_completed", static_cast<double>(completed));
  fv.Set("symx.vuln_sites", static_cast<double>(vuln_sites));
  fv.Set("symx.oob_sites", static_cast<double>(oob_sites));
  fv.Set("symx.divzero_sites", static_cast<double>(div_sites));
  fv.Set("symx.solver_queries", static_cast<double>(queries));
  fv.Set("symx.range_pruned", static_cast<double>(pruned));
  fv.Set("symx.range_prune_rate",
         static_cast<double>(pruned) /
             static_cast<double>(std::max<uint64_t>(1, pruned + queries)));
  fv.Set("symx.sat_conflicts", static_cast<double>(conflicts));
  fv.Set("symx.model_reuse_hits", static_cast<double>(reuse_hits));
  fv.Set("symx.simplifier_folds", static_cast<double>(folds));
  fv.Set("symx.max_exploit_fraction", max_fraction);
  fv.Set("symx.sum_exploit_fraction", sum_fraction);
  return fv;
}

// Whole-file dynamic battery with payload reuse: the trace stream depends on
// every function the roots reach, so the unit of caching is the file's full
// token hash. Cached entries replay their recorded deadline consumption so
// warm and cold runs expire a tight budget at the same point.
metrics::FeatureVector Testbed::GranularDynamic(const lang::IrModule& module,
                                                const FileFunctionIndex& index,
                                                uint64_t seed,
                                                support::Deadline* deadline) const {
  uint64_t key = MixU64(kDynamicRowSalt, OptionsFingerprint());
  key = MixU64(key, index.file_token_hash);
  key = MixU64(key, seed);
  std::vector<double> row;
  if (fn_cache_.Lookup(key, &row) && row.size() == 8) {
    deadline->TickOrThrow("dynamic", static_cast<uint64_t>(row[7]));
    dynamic_files_reused_.fetch_add(1, std::memory_order_relaxed);
    metrics::FeatureVector fv;
    if (row[0] > 0.0) {
      fv.Set("dynamic.runs", row[1]);
      fv.Set("dynamic.fault_rate", row[2]);
      fv.Set("dynamic.abort_rate", row[3]);
      fv.Set("dynamic.mean_steps", row[4]);
      fv.Set("dynamic.branch_density", row[5]);
      fv.Set("dynamic.sink_events_per_run", row[6]);
    }
    return fv;
  }
  const uint64_t before = deadline->steps_used();
  const metrics::FeatureVector fv =
      DynamicFeatures(module, options_.dynamic_trials, seed, deadline);
  row = {fv.Has("dynamic.runs") ? 1.0 : 0.0,
         fv.Get("dynamic.runs"),
         fv.Get("dynamic.fault_rate"),
         fv.Get("dynamic.abort_rate"),
         fv.Get("dynamic.mean_steps"),
         fv.Get("dynamic.branch_density"),
         fv.Get("dynamic.sink_events_per_run"),
         static_cast<double>(deadline->steps_used() - before)};
  fn_cache_.Insert(key, row);
  dynamic_files_computed_.fetch_add(1, std::memory_order_relaxed);
  return fv;
}

metrics::FeatureVector Testbed::ExtractFeatures(
    const std::vector<metrics::SourceFile>& files) const {
  uint64_t cache_key = 0;
  if (options_.cache_features) {
    cache_key = HashSourceFiles(files, OptionsFingerprint());
    metrics::FeatureVector cached;
    if (cache_.Lookup(cache_key, &cached)) {
      return cached;
    }
  }
  // Granular path (clean runs with cache_functions on): the shallow battery
  // and every deep stage reuse content-addressed sub-results, and are
  // bit-identical to the module-level path below.
  const bool granular = GranularActive();
  metrics::FeatureVector features =
      granular ? GranularAppFeatures(files) : metrics::ExtractAppFeatures(files);
  if (!options_.with_dataflow && !options_.with_symexec && !options_.with_dynamic) {
    if (options_.cache_features) {
      cache_.Insert(cache_key, features);
    }
    return features;
  }
  // Deep-analysis budget (see TestbedOptions): the first
  // `deep_analysis_max_files` MiniC files in order consume the budget,
  // parse/lower failures included. Each file walks the extraction stage DAG
  // (stage_graph.h): hard edges gate — a parse or lower failure skips the
  // file's remaining stages without attempting them — while analysis
  // failures are soft: GuardStage degrades that stage for that file and the
  // walk continues, so the app row always completes.
  const StageGraph& graph = StageGraph::Extraction();
  int deep_attempted = 0;
  int deep_done = 0;
  for (const auto& file : files) {
    if (deep_attempted >= options_.deep_analysis_max_files) {
      break;
    }
    if (file.language != metrics::Language::kMiniC) {
      continue;
    }
    const int attempt_index = deep_attempted++;
    // Per-file tracker: feature assembly and prediction are per-request
    // stages owned by the caller (or the scheduler), so they are disabled
    // here; configuration switches disable their analyses the same way.
    StageTracker tracker(graph);
    tracker.Disable(StageKind::kFeatures);
    tracker.Disable(StageKind::kPredict);
    if (!options_.with_dataflow) {
      tracker.Disable(StageKind::kDataflow);
      tracker.Disable(StageKind::kIntervals);
    }
    if (!options_.with_symexec) {
      tracker.Disable(StageKind::kSymexec);
    }
    if (!options_.with_dynamic) {
      tracker.Disable(StageKind::kDynamic);
    }
    // Parse artifacts are immutable and shared: the granular path serves
    // them from the AST cache (a warm re-score of an unchanged file never
    // re-parses); the module-level path builds them fresh per file.
    std::shared_ptr<const lang::TranslationUnit> unit;
    std::shared_ptr<const lang::IrModule> module;
    std::shared_ptr<const ParsedFile> parsed;
    for (StageKind stage = tracker.NextRunnable(); stage != StageKind::kCount;
         stage = tracker.NextRunnable()) {
      tracker.MarkRunning(stage);
      bool ok = false;
      switch (stage) {
        case StageKind::kParse: {
          auto res = GuardStage<std::shared_ptr<const lang::TranslationUnit>>(
              stage, features,
              [&](int) -> support::Result<std::shared_ptr<const lang::TranslationUnit>> {
                if (granular) {
                  parsed = ast_cache_.Get(file);
                  if (parsed->unit != nullptr) {
                    return parsed->unit;
                  }
                  // Negative results are cached too; the original message is
                  // not retained (nothing downstream consumes it).
                  return support::Error(support::Error::Code::kParseError,
                                        "parse failed");
                }
                auto fresh = lang::Parse(file.text);
                if (!fresh.ok()) {
                  return std::move(fresh).error();
                }
                return std::make_shared<const lang::TranslationUnit>(
                    std::move(fresh).value());
              });
          if (res.has_value()) {
            unit = std::move(*res);
          }
          ok = unit != nullptr;
          break;
        }
        case StageKind::kLower: {
          auto res = GuardStage<std::shared_ptr<const lang::IrModule>>(
              stage, features,
              [&](int) -> support::Result<std::shared_ptr<const lang::IrModule>> {
                if (granular) {
                  if (parsed->module != nullptr) {
                    return parsed->module;
                  }
                  return support::Error(support::Error::Code::kInternal,
                                        "lowering failed");
                }
                auto fresh = lang::LowerToIr(*unit);
                if (!fresh.ok()) {
                  return std::move(fresh).error();
                }
                return std::make_shared<const lang::IrModule>(
                    std::move(fresh).value());
              });
          if (res.has_value()) {
            module = std::move(*res);
          }
          ok = module != nullptr;
          break;
        }
        case StageKind::kDataflow: {
          auto df = GuardStage<metrics::FeatureVector>(
              stage, features,
              [&](int) -> support::Result<metrics::FeatureVector> {
                support::Deadline deadline = StageDeadline();
                if (granular) {
                  return GranularDataflow(*module, parsed->index, &deadline);
                }
                return dataflow::DataflowFeatures(*module, &deadline);
              });
          if (df.has_value()) {
            features.MergeSum(*df);
            ok = true;
          }
          break;
        }
        case StageKind::kIntervals: {
          auto iv = GuardStage<metrics::FeatureVector>(
              stage, features,
              [&](int) -> support::Result<metrics::FeatureVector> {
                support::Deadline deadline = StageDeadline();
                if (granular) {
                  return GranularIntervals(*module, parsed->index, &deadline);
                }
                dataflow::IntervalOptions interval_options;
                interval_options.deadline = &deadline;
                return dataflow::IntervalFeatures(*module, interval_options);
              });
          if (iv.has_value()) {
            features.MergeSum(*iv);
            ok = true;
          }
          break;
        }
        case StageKind::kSymexec: {
          auto sx = GuardStage<metrics::FeatureVector>(
              stage, features,
              [&](int attempt) -> support::Result<metrics::FeatureVector> {
                if (granular) {
                  return GranularSymexec(*module, parsed->index, attempt);
                }
                // Symexec fans its entries out to pool workers, which do not
                // inherit this thread's ScopedAttempt salt — the retry
                // attempt rides in the options instead (see
                // SymExecOptions::fault_salt).
                symx::SymExecOptions symexec_options = options_.symexec;
                symexec_options.watchdog_steps = options_.stage_step_budget;
                symexec_options.fault_salt = static_cast<uint32_t>(attempt);
                return symx::SymexFeatures(*module, symexec_options);
              });
          if (sx.has_value()) {
            features.MergeSum(*sx);
            ok = true;
          }
          break;
        }
        case StageKind::kDynamic: {
          auto dyn = GuardStage<metrics::FeatureVector>(
              stage, features,
              [&](int) -> support::Result<metrics::FeatureVector> {
                support::Deadline deadline = StageDeadline();
                // Seeded by attempt index, so a file's dynamic stream is a
                // function of its position among deep candidates, not of
                // earlier parse outcomes.
                const uint64_t seed = support::Rng::TaskSeed(
                    options_.dynamic_seed, static_cast<uint64_t>(attempt_index));
                if (granular) {
                  return GranularDynamic(*module, parsed->index, seed, &deadline);
                }
                return DynamicFeatures(*module, options_.dynamic_trials, seed,
                                       &deadline);
              });
          if (dyn.has_value()) {
            features.MergeSum(*dyn);
            ok = true;
          }
          break;
        }
        case StageKind::kFeatures:
        case StageKind::kPredict:
        case StageKind::kCount:
          break;  // Disabled above; unreachable.
      }
      if (ok) {
        tracker.MarkDone(stage);
      } else {
        tracker.MarkFailed(stage);
      }
    }
    if (tracker.state(StageKind::kLower) == StageState::kDone) {
      ++deep_done;
    }
  }
  features.Set("deep.files_attempted", static_cast<double>(deep_attempted));
  features.Set("deep.files_analyzed", static_cast<double>(deep_done));

  // Density features: most raw counts scale with application size, which
  // makes them proxies for LoC; dividing by kLoC isolates the *style* signal
  // (how guard-poor, taint-heavy, or smell-ridden the code is per unit of
  // code) — the quantity the paper wants beyond Figure 2's size baseline.
  const double kloc = std::max(features.Get("loc.code") / 1000.0, 1e-3);
  for (const char* name :
       {"lint.total", "lint.unchecked-input-index", "lint.non-constant-divisor",
        "smell.total", "smell.magic_numbers", "mccabe.total", "shin.branches",
        "shin.functions", "dataflow.input_sites", "dataflow.tainted_instructions",
        "dataflow.tainted_sinks", "dataflow.tainted_array_indices", "ai.possible_oob",
        "ai.possible_div0", "symx.vuln_sites"}) {
    if (features.Has(name)) {
      features.Set(std::string(name) + "_per_kloc", features.Get(name) / kloc);
    }
  }
  // Guardedness: share of array accesses the interval analysis could prove
  // safe (1.0 = fully defensive code).
  const double accesses = features.Get("ai.array_accesses");
  if (accesses > 0.0) {
    features.Set("ai.proven_ratio", features.Get("ai.proven_in_bounds") / accesses);
  }
  const double divisions = features.Get("ai.divisions");
  if (divisions > 0.0) {
    features.Set("ai.proven_div_ratio",
                 features.Get("ai.proven_nonzero_divisor") / divisions);
  }
  if (options_.cache_features) {
    cache_.Insert(cache_key, features);
  }
  return features;
}

std::vector<AppRecord> Testbed::Collect() const {
  const auto selected =
      ecosystem_.database().AppsWithConvergingHistory(options_.min_history_years);
  std::vector<const corpus::AppSpec*> specs;
  specs.reserve(selected.size());
  std::vector<std::string> names;
  for (const auto& app : selected) {
    const corpus::AppSpec* spec = ecosystem_.FindSpec(app);
    if (spec != nullptr) {
      specs.push_back(spec);
      names.push_back(app);
    }
  }
  // Checkpoint resume: load every intact block from a previous interrupted
  // sweep (the tolerant loader drops truncated tails), keyed by app name.
  // Resumed rows are returned verbatim — record serialization round-trips
  // doubles exactly, so the resumed sweep is byte-identical to an
  // uninterrupted one.
  std::unordered_map<std::string, AppRecord> resumed;
  std::unique_ptr<std::ofstream> checkpoint;
  std::mutex checkpoint_mutex;
  if (!options_.checkpoint_path.empty()) {
    bool needs_newline = false;
    {
      std::ifstream in(options_.checkpoint_path, std::ios::binary);
      if (in) {
        std::ostringstream buffer;
        buffer << in.rdbuf();
        const std::string text = buffer.str();
        needs_newline = !text.empty() && text.back() != '\n';
        CheckpointLoadStats load_stats;
        for (auto& record : LoadCheckpoint(text, &load_stats)) {
          // Last block wins: a re-extraction appended after a source change
          // (the splice protocol below) supersedes the stale block for the
          // same app.
          std::string name = record.name;
          resumed.insert_or_assign(std::move(name), std::move(record));
        }
        // Damage is recoverable (dropped apps recompute below) but never
        // silent: torn tails and corrupt blocks land in run_report().
        checkpoint_dropped_.fetch_add(load_stats.dropped_blocks,
                                      std::memory_order_relaxed);
      }
    }
    checkpoint = std::make_unique<std::ofstream>(
        options_.checkpoint_path, std::ios::binary | std::ios::app);
    if (!*checkpoint) {
      checkpoint.reset();  // Unwritable path: degrade to an unsaved sweep.
    } else if (needs_newline) {
      // A kill mid-line left the file without its trailing newline; close
      // the wounded line so the next block starts clean (the loader drops
      // the orphan).
      (*checkpoint) << '\n';
      checkpoint->flush();
    }
  }
  // One task per app: source synthesis + the full extraction battery. Every
  // input is per-app deterministic (GenerateSources forks a per-app stream,
  // ExtractFeatures derives per-index seeds), and ParallelMap collects in
  // index order, so the matrix is bit-identical at any worker count.
  std::unique_ptr<support::ThreadPool> dedicated;
  if (options_.threads > 0) {
    dedicated = std::make_unique<support::ThreadPool>(options_.threads);
  }
  support::ThreadPool& pool =
      dedicated != nullptr ? *dedicated : support::ThreadPool::Global();
  auto records = pool.ParallelMap<AppRecord>(specs.size(), [&](size_t i) {
    std::optional<std::vector<metrics::SourceFile>> files;
    if (const auto it = resumed.find(names[i]); it != resumed.end()) {
      // Splice protocol: a checkpointed row is reused only while its source
      // digest still matches the sources this sweep would extract from.
      // Legacy blocks (digest 0) are trusted verbatim; a mismatch means the
      // corpus moved under the checkpoint (e.g. a version_lag change), so
      // the row is re-extracted — through the warm function-granular caches,
      // so only changed functions pay — and appended last-wins.
      if (it->second.source_digest == 0) {
        apps_from_checkpoint_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
      files = SourcesFor(*specs[i]);
      if (HashSourceFiles(*files, 0) == it->second.source_digest) {
        apps_from_checkpoint_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
      checkpoint_stale_.fetch_add(1, std::memory_order_relaxed);
    }
    if (!files.has_value()) {
      files = SourcesFor(*specs[i]);
    }
    AppRecord record = ExtractRecordFromFiles(*specs[i], *files);
    if (checkpoint != nullptr) {
      const std::string block = SaveCheckpointRecord(record);
      std::lock_guard<std::mutex> lock(checkpoint_mutex);
      (*checkpoint) << block;
      checkpoint->flush();
      checkpoint_appends_.fetch_add(1, std::memory_order_relaxed);
    }
    return record;
  });
  apps_total_.fetch_add(records.size(), std::memory_order_relaxed);
  return records;
}

std::vector<metrics::SourceFile> Testbed::SourcesFor(const corpus::AppSpec& spec) const {
  if (options_.version_lag <= 0) {
    return ecosystem_.GenerateSources(spec);
  }
  const corpus::VersionHistory history = corpus::VersionHistory::ForApp(ecosystem_, spec);
  const size_t head = history.head_version();
  const size_t lag =
      std::min<size_t>(static_cast<size_t>(options_.version_lag), head);
  return history.Materialize(head - lag);
}

AppRecord Testbed::ExtractRecord(const corpus::AppSpec& spec) const {
  return ExtractRecordFromFiles(spec, SourcesFor(spec));
}

AppRecord Testbed::ExtractRecordFromFiles(
    const corpus::AppSpec& spec,
    const std::vector<metrics::SourceFile>& files) const {
  AppRecord record;
  record.name = spec.name;
  record.features = ExtractFeatures(files);
  // Content-only digest (no options/fault fingerprint): rows extracted under
  // different configurations from the same sources agree on it, so digest
  // equality means exactly "same input tree".
  record.source_digest = HashSourceFiles(files, 0);
  record.labels = ecosystem_.database().Summarize(record.name);
  return record;
}

IncrementalStats Testbed::incremental_stats() const {
  IncrementalStats s;
  s.files_parsed = ast_cache_.misses();
  s.parse_reused = ast_cache_.hits();
  s.file_rows_computed = file_rows_computed_.load(std::memory_order_relaxed);
  s.file_rows_reused = file_rows_reused_.load(std::memory_order_relaxed);
  s.fn_dataflow_computed = fn_dataflow_computed_.load(std::memory_order_relaxed);
  s.fn_dataflow_reused = fn_dataflow_reused_.load(std::memory_order_relaxed);
  s.fn_intervals_computed = fn_intervals_computed_.load(std::memory_order_relaxed);
  s.fn_intervals_reused = fn_intervals_reused_.load(std::memory_order_relaxed);
  s.symexec_entries_computed =
      symexec_entries_computed_.load(std::memory_order_relaxed);
  s.symexec_entries_reused = symexec_entries_reused_.load(std::memory_order_relaxed);
  s.dynamic_files_computed = dynamic_files_computed_.load(std::memory_order_relaxed);
  s.dynamic_files_reused = dynamic_files_reused_.load(std::memory_order_relaxed);
  return s;
}

support::Result<FunctionCorpusStats> Testbed::CollectFunctionRows(
    ml::FeatureStoreWriter& writer) const {
  FunctionRankOptions options;
  options.min_history_years = options_.min_history_years;
  options.threads = options_.threads;
  options.version_lag =
      options_.version_lag > 0 ? static_cast<size_t>(options_.version_lag) : 0;
  return clair::CollectFunctionRows(ecosystem_, options, writer);
}

RunReport Testbed::run_report() const {
  RunReport report;
  for (int i = 0; i < kStageKindCount; ++i) {
    const StageCounters& c = stage_counters_[i];
    StageReport stage;
    stage.attempts = c.attempts.load(std::memory_order_relaxed);
    stage.failures = c.failures.load(std::memory_order_relaxed);
    stage.injected = c.injected.load(std::memory_order_relaxed);
    stage.timeouts = c.timeouts.load(std::memory_order_relaxed);
    stage.retries = c.retries.load(std::memory_order_relaxed);
    stage.recovered = c.recovered.load(std::memory_order_relaxed);
    stage.degraded = c.degraded.load(std::memory_order_relaxed);
    stage.wall_seconds = static_cast<double>(c.wall_nanos.load(std::memory_order_relaxed)) * 1e-9;
    if (stage.attempts > 0) {
      report.stages[StageName(static_cast<StageKind>(i))] = stage;
    }
  }
  report.apps_total = apps_total_.load(std::memory_order_relaxed);
  report.apps_from_checkpoint = apps_from_checkpoint_.load(std::memory_order_relaxed);
  report.checkpoint_appends = checkpoint_appends_.load(std::memory_order_relaxed);
  report.checkpoint_dropped_blocks = checkpoint_dropped_.load(std::memory_order_relaxed);
  report.checkpoint_stale_records = checkpoint_stale_.load(std::memory_order_relaxed);
  const FeatureCacheStats cache_stats = cache_.stats();
  report.rows_from_cache = cache_stats.hits;
  report.cache_misses = cache_stats.misses;
  report.cache_entries = cache_stats.entries;
  report.cache_coalesced_fills = cache_stats.coalesced_fills;
  report.cache_integrity_rejects = cache_stats.integrity_rejects +
                                   file_cache_.stats().integrity_rejects +
                                   fn_cache_.stats().integrity_rejects;
  report.cache_evictions = cache_stats.evictions + file_cache_.stats().evictions +
                           fn_cache_.stats().evictions;
  return report;
}

}  // namespace clair
