#include "src/clair/testbed.h"

#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "src/clair/serialize.h"
#include "src/dataflow/analyses.h"
#include "src/dataflow/intervals.h"
#include "src/lang/interp.h"
#include "src/lang/parser.h"
#include "src/metrics/callgraph.h"
#include "src/support/rng.h"
#include "src/support/strings.h"
#include "src/support/thread_pool.h"

namespace clair {
namespace {

// §5.3's dynamic-trace extension: execute the module's call-graph roots on
// random inputs and summarise runtime behaviour. `deadline` (not owned) is
// threaded into the interpreter, which halts a trial gracefully on expiry;
// the expiry is then re-raised here so the stage wrapper records a timeout
// instead of caching a partially-sampled row.
metrics::FeatureVector DynamicFeatures(const lang::IrModule& module, int trials,
                                       uint64_t seed, support::Deadline* deadline) {
  metrics::FeatureVector fv;
  const metrics::CallGraph graph(module);
  std::vector<std::string> entries;
  if (module.FindFunction("main") != nullptr) {
    entries.push_back("main");
  } else {
    entries = graph.Roots();
    if (entries.size() > 8) {
      entries.resize(8);  // Bound per-file cost on large modules.
    }
  }
  support::Rng rng(seed);
  long long runs = 0;
  long long faults = 0;
  long long aborted = 0;
  long long steps = 0;
  long long branches = 0;
  long long sink_events = 0;
  lang::InterpOptions interp_options;
  interp_options.max_steps = 1 << 14;
  interp_options.deadline = deadline;
  for (const auto& entry : entries) {
    for (int t = 0; t < trials; ++t) {
      std::vector<int64_t> inputs;
      for (int i = 0; i < 16; ++i) {
        inputs.push_back(rng.NextBool(0.7)
                             ? static_cast<int64_t>(rng.NextBelow(32))
                             : static_cast<int64_t>(rng.NextBelow(1 << 12)) - 2048);
      }
      const auto trace =
          lang::Execute(module, entry, {0, 1, 2, 3}, std::move(inputs), interp_options);
      if (deadline != nullptr) {
        deadline->ThrowIfExpired("dynamic");
      }
      ++runs;
      steps += static_cast<long long>(trace.steps);
      branches += static_cast<long long>(trace.branches);
      sink_events += static_cast<long long>(trace.sink_values.size());
      if (trace.outcome == lang::ExecOutcome::kOutOfBounds ||
          trace.outcome == lang::ExecOutcome::kDivisionByZero) {
        ++faults;
      } else if (trace.outcome == lang::ExecOutcome::kAborted) {
        ++aborted;
      }
    }
  }
  if (runs > 0) {
    fv.Set("dynamic.runs", static_cast<double>(runs));
    fv.Set("dynamic.fault_rate", static_cast<double>(faults) / runs);
    fv.Set("dynamic.abort_rate", static_cast<double>(aborted) / runs);
    fv.Set("dynamic.mean_steps", static_cast<double>(steps) / runs);
    fv.Set("dynamic.branch_density",
           steps > 0 ? static_cast<double>(branches) / static_cast<double>(steps) : 0.0);
    fv.Set("dynamic.sink_events_per_run", static_cast<double>(sink_events) / runs);
  }
  return fv;
}

}  // namespace

Testbed::Testbed(const corpus::EcosystemGenerator& ecosystem, TestbedOptions options)
    : ecosystem_(ecosystem), options_(options) {}

// Retry-and-degrade wrapper around one deep-analysis stage. Failure modes
// are normalised here: an Error result, an InjectedFault, a watchdog
// DeadlineExceeded, and any other std::exception all count a failed
// attempt. Each retry runs under the next ScopedAttempt salt, so injected
// verdicts re-roll (transient faults recover; rate-1.0 faults fail every
// attempt and degrade). Provenance is stamped into the row as sparse
// `robust.*` features — absent on clean rows, so fault-free output is
// byte-identical to a build without this layer.
template <typename T, typename Fn>
std::optional<T> Testbed::GuardStage(StageKind stage, metrics::FeatureVector& features,
                                     Fn&& run) const {
  StageCounters& counters = stage_counters_[static_cast<int>(stage)];
  const int max_attempts = std::max(options_.stage_retries, 0) + 1;
  const auto start = std::chrono::steady_clock::now();
  std::optional<T> result;
  int failed_attempts = 0;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    counters.attempts.fetch_add(1, std::memory_order_relaxed);
    if (attempt > 0) {
      counters.retries.fetch_add(1, std::memory_order_relaxed);
    }
    bool injected = false;
    bool timeout = false;
    try {
      support::FaultInjector::ScopedAttempt salt(static_cast<uint32_t>(attempt));
      auto outcome = run(attempt);
      if (outcome.ok()) {
        result.emplace(std::move(outcome).value());
      } else {
        // Sites whose substrate reports failure as an error value rather
        // than a throw (the parser, lowering) tag injected faults by
        // message so the taxonomy still separates them from organic errors.
        injected = support::StartsWith(outcome.error().message(), "injected fault");
      }
    } catch (const support::InjectedFault&) {
      injected = true;
    } catch (const support::DeadlineExceeded&) {
      timeout = true;
    } catch (const std::exception&) {
      // Organic analyzer failure: counted below, row continues.
    }
    if (result.has_value()) {
      break;
    }
    ++failed_attempts;
    counters.failures.fetch_add(1, std::memory_order_relaxed);
    if (injected) {
      counters.injected.fetch_add(1, std::memory_order_relaxed);
    }
    if (timeout) {
      counters.timeouts.fetch_add(1, std::memory_order_relaxed);
    }
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  counters.wall_nanos.fetch_add(
      static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()),
      std::memory_order_relaxed);
  const std::string prefix = std::string("robust.") + StageName(stage);
  if (failed_attempts > 0) {
    features.Add(prefix + "_failures", static_cast<double>(failed_attempts));
  }
  if (!result.has_value()) {
    counters.degraded.fetch_add(1, std::memory_order_relaxed);
    features.Add(prefix + "_degraded", 1.0);
    return std::nullopt;
  }
  if (failed_attempts > 0) {
    counters.recovered.fetch_add(1, std::memory_order_relaxed);
    features.Add(prefix + "_retries", static_cast<double>(failed_attempts));
  }
  return result;
}

uint64_t Testbed::OptionsFingerprint() const {
  // Canonical text encoding of every option that changes extraction output.
  // min_history_years, threads, and checkpoint_path are deliberately
  // excluded: selection does not change a row's content, worker count never
  // changes results, and checkpointing only persists them. The active
  // fault-injection config is included (fingerprint 0 when no site is
  // armed), so faulted runs never share cached rows with clean ones.
  const auto& sx = options_.symexec;
  const std::string encoding = support::Format(
      "df=%d sx=%d dyn=%d trials=%d dseed=%llu deep=%d "
      "width=%d paths=%llu steps=%llu total=%llu queries=%llu depth=%d "
      "array=%d nodes=%llu conflicts=%llu cap=%llu exploit=%d "
      "retries=%d budget=%llu wall=%d faults=%016llx",
      options_.with_dataflow, options_.with_symexec, options_.with_dynamic,
      options_.dynamic_trials,
      static_cast<unsigned long long>(options_.dynamic_seed),
      options_.deep_analysis_max_files, sx.width,
      static_cast<unsigned long long>(sx.max_paths),
      static_cast<unsigned long long>(sx.max_steps_per_path),
      static_cast<unsigned long long>(sx.max_total_steps),
      static_cast<unsigned long long>(sx.max_solver_queries), sx.max_call_depth,
      sx.max_symbolic_array, static_cast<unsigned long long>(sx.max_expr_nodes),
      static_cast<unsigned long long>(sx.solver_conflict_budget),
      static_cast<unsigned long long>(sx.exploit_exact_cap),
      sx.exploit_sample_trials, options_.stage_retries,
      static_cast<unsigned long long>(options_.stage_step_budget),
      options_.stage_wall_ms,
      static_cast<unsigned long long>(support::FaultInjector::Global().Fingerprint()));
  return Fnv1a64(encoding);
}

metrics::FeatureVector Testbed::ExtractFeatures(
    const std::vector<metrics::SourceFile>& files) const {
  uint64_t cache_key = 0;
  if (options_.cache_features) {
    cache_key = HashSourceFiles(files, OptionsFingerprint());
    metrics::FeatureVector cached;
    if (cache_.Lookup(cache_key, &cached)) {
      return cached;
    }
  }
  metrics::FeatureVector features = metrics::ExtractAppFeatures(files);
  if (!options_.with_dataflow && !options_.with_symexec && !options_.with_dynamic) {
    if (options_.cache_features) {
      cache_.Insert(cache_key, features);
    }
    return features;
  }
  // Deep-analysis budget (see TestbedOptions): the first
  // `deep_analysis_max_files` MiniC files in order consume the budget,
  // parse/lower failures included. Each file walks the extraction stage DAG
  // (stage_graph.h): hard edges gate — a parse or lower failure skips the
  // file's remaining stages without attempting them — while analysis
  // failures are soft: GuardStage degrades that stage for that file and the
  // walk continues, so the app row always completes.
  const StageGraph& graph = StageGraph::Extraction();
  int deep_attempted = 0;
  int deep_done = 0;
  for (const auto& file : files) {
    if (deep_attempted >= options_.deep_analysis_max_files) {
      break;
    }
    if (file.language != metrics::Language::kMiniC) {
      continue;
    }
    const int attempt_index = deep_attempted++;
    // Per-file tracker: feature assembly and prediction are per-request
    // stages owned by the caller (or the scheduler), so they are disabled
    // here; configuration switches disable their analyses the same way.
    StageTracker tracker(graph);
    tracker.Disable(StageKind::kFeatures);
    tracker.Disable(StageKind::kPredict);
    if (!options_.with_dataflow) {
      tracker.Disable(StageKind::kDataflow);
      tracker.Disable(StageKind::kIntervals);
    }
    if (!options_.with_symexec) {
      tracker.Disable(StageKind::kSymexec);
    }
    if (!options_.with_dynamic) {
      tracker.Disable(StageKind::kDynamic);
    }
    std::optional<lang::TranslationUnit> unit;
    std::optional<lang::IrModule> module;
    for (StageKind stage = tracker.NextRunnable(); stage != StageKind::kCount;
         stage = tracker.NextRunnable()) {
      tracker.MarkRunning(stage);
      bool ok = false;
      switch (stage) {
        case StageKind::kParse:
          unit = GuardStage<lang::TranslationUnit>(
              stage, features, [&](int) { return lang::Parse(file.text); });
          ok = unit.has_value();
          break;
        case StageKind::kLower:
          module = GuardStage<lang::IrModule>(
              stage, features, [&](int) { return lang::LowerToIr(*unit); });
          ok = module.has_value();
          break;
        case StageKind::kDataflow: {
          auto df = GuardStage<metrics::FeatureVector>(
              stage, features,
              [&](int) -> support::Result<metrics::FeatureVector> {
                support::Deadline deadline = StageDeadline();
                return dataflow::DataflowFeatures(*module, &deadline);
              });
          if (df.has_value()) {
            features.MergeSum(*df);
            ok = true;
          }
          break;
        }
        case StageKind::kIntervals: {
          auto iv = GuardStage<metrics::FeatureVector>(
              stage, features,
              [&](int) -> support::Result<metrics::FeatureVector> {
                support::Deadline deadline = StageDeadline();
                dataflow::IntervalOptions interval_options;
                interval_options.deadline = &deadline;
                return dataflow::IntervalFeatures(*module, interval_options);
              });
          if (iv.has_value()) {
            features.MergeSum(*iv);
            ok = true;
          }
          break;
        }
        case StageKind::kSymexec: {
          auto sx = GuardStage<metrics::FeatureVector>(
              stage, features,
              [&](int attempt) -> support::Result<metrics::FeatureVector> {
                // Symexec fans its entries out to pool workers, which do not
                // inherit this thread's ScopedAttempt salt — the retry
                // attempt rides in the options instead (see
                // SymExecOptions::fault_salt).
                symx::SymExecOptions symexec_options = options_.symexec;
                symexec_options.watchdog_steps = options_.stage_step_budget;
                symexec_options.fault_salt = static_cast<uint32_t>(attempt);
                return symx::SymexFeatures(*module, symexec_options);
              });
          if (sx.has_value()) {
            features.MergeSum(*sx);
            ok = true;
          }
          break;
        }
        case StageKind::kDynamic: {
          auto dyn = GuardStage<metrics::FeatureVector>(
              stage, features,
              [&](int) -> support::Result<metrics::FeatureVector> {
                support::Deadline deadline = StageDeadline();
                // Seeded by attempt index, so a file's dynamic stream is a
                // function of its position among deep candidates, not of
                // earlier parse outcomes.
                return DynamicFeatures(
                    *module, options_.dynamic_trials,
                    support::Rng::TaskSeed(options_.dynamic_seed,
                                           static_cast<uint64_t>(attempt_index)),
                    &deadline);
              });
          if (dyn.has_value()) {
            features.MergeSum(*dyn);
            ok = true;
          }
          break;
        }
        case StageKind::kFeatures:
        case StageKind::kPredict:
        case StageKind::kCount:
          break;  // Disabled above; unreachable.
      }
      if (ok) {
        tracker.MarkDone(stage);
      } else {
        tracker.MarkFailed(stage);
      }
    }
    if (tracker.state(StageKind::kLower) == StageState::kDone) {
      ++deep_done;
    }
  }
  features.Set("deep.files_attempted", static_cast<double>(deep_attempted));
  features.Set("deep.files_analyzed", static_cast<double>(deep_done));

  // Density features: most raw counts scale with application size, which
  // makes them proxies for LoC; dividing by kLoC isolates the *style* signal
  // (how guard-poor, taint-heavy, or smell-ridden the code is per unit of
  // code) — the quantity the paper wants beyond Figure 2's size baseline.
  const double kloc = std::max(features.Get("loc.code") / 1000.0, 1e-3);
  for (const char* name :
       {"lint.total", "lint.unchecked-input-index", "lint.non-constant-divisor",
        "smell.total", "smell.magic_numbers", "mccabe.total", "shin.branches",
        "shin.functions", "dataflow.input_sites", "dataflow.tainted_instructions",
        "dataflow.tainted_sinks", "dataflow.tainted_array_indices", "ai.possible_oob",
        "ai.possible_div0", "symx.vuln_sites"}) {
    if (features.Has(name)) {
      features.Set(std::string(name) + "_per_kloc", features.Get(name) / kloc);
    }
  }
  // Guardedness: share of array accesses the interval analysis could prove
  // safe (1.0 = fully defensive code).
  const double accesses = features.Get("ai.array_accesses");
  if (accesses > 0.0) {
    features.Set("ai.proven_ratio", features.Get("ai.proven_in_bounds") / accesses);
  }
  const double divisions = features.Get("ai.divisions");
  if (divisions > 0.0) {
    features.Set("ai.proven_div_ratio",
                 features.Get("ai.proven_nonzero_divisor") / divisions);
  }
  if (options_.cache_features) {
    cache_.Insert(cache_key, features);
  }
  return features;
}

std::vector<AppRecord> Testbed::Collect() const {
  const auto selected =
      ecosystem_.database().AppsWithConvergingHistory(options_.min_history_years);
  std::vector<const corpus::AppSpec*> specs;
  specs.reserve(selected.size());
  std::vector<std::string> names;
  for (const auto& app : selected) {
    const corpus::AppSpec* spec = ecosystem_.FindSpec(app);
    if (spec != nullptr) {
      specs.push_back(spec);
      names.push_back(app);
    }
  }
  // Checkpoint resume: load every intact block from a previous interrupted
  // sweep (the tolerant loader drops truncated tails), keyed by app name.
  // Resumed rows are returned verbatim — record serialization round-trips
  // doubles exactly, so the resumed sweep is byte-identical to an
  // uninterrupted one.
  std::unordered_map<std::string, AppRecord> resumed;
  std::unique_ptr<std::ofstream> checkpoint;
  std::mutex checkpoint_mutex;
  if (!options_.checkpoint_path.empty()) {
    bool needs_newline = false;
    {
      std::ifstream in(options_.checkpoint_path, std::ios::binary);
      if (in) {
        std::ostringstream buffer;
        buffer << in.rdbuf();
        const std::string text = buffer.str();
        needs_newline = !text.empty() && text.back() != '\n';
        CheckpointLoadStats load_stats;
        for (auto& record : LoadCheckpoint(text, &load_stats)) {
          std::string name = record.name;
          resumed.emplace(std::move(name), std::move(record));
        }
        // Damage is recoverable (dropped apps recompute below) but never
        // silent: torn tails and corrupt blocks land in run_report().
        checkpoint_dropped_.fetch_add(load_stats.dropped_blocks,
                                      std::memory_order_relaxed);
      }
    }
    checkpoint = std::make_unique<std::ofstream>(
        options_.checkpoint_path, std::ios::binary | std::ios::app);
    if (!*checkpoint) {
      checkpoint.reset();  // Unwritable path: degrade to an unsaved sweep.
    } else if (needs_newline) {
      // A kill mid-line left the file without its trailing newline; close
      // the wounded line so the next block starts clean (the loader drops
      // the orphan).
      (*checkpoint) << '\n';
      checkpoint->flush();
    }
  }
  // One task per app: source synthesis + the full extraction battery. Every
  // input is per-app deterministic (GenerateSources forks a per-app stream,
  // ExtractFeatures derives per-index seeds), and ParallelMap collects in
  // index order, so the matrix is bit-identical at any worker count.
  std::unique_ptr<support::ThreadPool> dedicated;
  if (options_.threads > 0) {
    dedicated = std::make_unique<support::ThreadPool>(options_.threads);
  }
  support::ThreadPool& pool =
      dedicated != nullptr ? *dedicated : support::ThreadPool::Global();
  auto records = pool.ParallelMap<AppRecord>(specs.size(), [&](size_t i) {
    if (const auto it = resumed.find(names[i]); it != resumed.end()) {
      apps_from_checkpoint_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
    AppRecord record = ExtractRecord(*specs[i]);
    if (checkpoint != nullptr) {
      const std::string block = SaveCheckpointRecord(record);
      std::lock_guard<std::mutex> lock(checkpoint_mutex);
      (*checkpoint) << block;
      checkpoint->flush();
      checkpoint_appends_.fetch_add(1, std::memory_order_relaxed);
    }
    return record;
  });
  apps_total_.fetch_add(records.size(), std::memory_order_relaxed);
  return records;
}

AppRecord Testbed::ExtractRecord(const corpus::AppSpec& spec) const {
  AppRecord record;
  record.name = spec.name;
  record.features = ExtractFeatures(ecosystem_.GenerateSources(spec));
  record.labels = ecosystem_.database().Summarize(record.name);
  return record;
}

support::Result<FunctionCorpusStats> Testbed::CollectFunctionRows(
    ml::FeatureStoreWriter& writer) const {
  FunctionRankOptions options;
  options.min_history_years = options_.min_history_years;
  options.threads = options_.threads;
  return clair::CollectFunctionRows(ecosystem_, options, writer);
}

RunReport Testbed::run_report() const {
  RunReport report;
  for (int i = 0; i < kStageKindCount; ++i) {
    const StageCounters& c = stage_counters_[i];
    StageReport stage;
    stage.attempts = c.attempts.load(std::memory_order_relaxed);
    stage.failures = c.failures.load(std::memory_order_relaxed);
    stage.injected = c.injected.load(std::memory_order_relaxed);
    stage.timeouts = c.timeouts.load(std::memory_order_relaxed);
    stage.retries = c.retries.load(std::memory_order_relaxed);
    stage.recovered = c.recovered.load(std::memory_order_relaxed);
    stage.degraded = c.degraded.load(std::memory_order_relaxed);
    stage.wall_seconds = static_cast<double>(c.wall_nanos.load(std::memory_order_relaxed)) * 1e-9;
    if (stage.attempts > 0) {
      report.stages[StageName(static_cast<StageKind>(i))] = stage;
    }
  }
  report.apps_total = apps_total_.load(std::memory_order_relaxed);
  report.apps_from_checkpoint = apps_from_checkpoint_.load(std::memory_order_relaxed);
  report.checkpoint_appends = checkpoint_appends_.load(std::memory_order_relaxed);
  report.checkpoint_dropped_blocks = checkpoint_dropped_.load(std::memory_order_relaxed);
  const FeatureCacheStats cache_stats = cache_.stats();
  report.rows_from_cache = cache_stats.hits;
  report.cache_misses = cache_stats.misses;
  report.cache_entries = cache_stats.entries;
  report.cache_coalesced_fills = cache_stats.coalesced_fills;
  report.cache_integrity_rejects = cache_stats.integrity_rejects;
  return report;
}

}  // namespace clair
