#include "src/clair/testbed.h"

#include "src/dataflow/analyses.h"
#include "src/dataflow/intervals.h"
#include "src/lang/interp.h"
#include "src/lang/parser.h"
#include "src/metrics/callgraph.h"
#include "src/support/rng.h"

namespace clair {
namespace {

// §5.3's dynamic-trace extension: execute the module's call-graph roots on
// random inputs and summarise runtime behaviour.
metrics::FeatureVector DynamicFeatures(const lang::IrModule& module, int trials,
                                       uint64_t seed) {
  metrics::FeatureVector fv;
  const metrics::CallGraph graph(module);
  std::vector<std::string> entries;
  if (module.FindFunction("main") != nullptr) {
    entries.push_back("main");
  } else {
    entries = graph.Roots();
    if (entries.size() > 8) {
      entries.resize(8);  // Bound per-file cost on large modules.
    }
  }
  support::Rng rng(seed);
  long long runs = 0;
  long long faults = 0;
  long long aborted = 0;
  long long steps = 0;
  long long branches = 0;
  long long sink_events = 0;
  lang::InterpOptions interp_options;
  interp_options.max_steps = 1 << 14;
  for (const auto& entry : entries) {
    for (int t = 0; t < trials; ++t) {
      std::vector<int64_t> inputs;
      for (int i = 0; i < 16; ++i) {
        inputs.push_back(rng.NextBool(0.7)
                             ? static_cast<int64_t>(rng.NextBelow(32))
                             : static_cast<int64_t>(rng.NextBelow(1 << 12)) - 2048);
      }
      const auto trace =
          lang::Execute(module, entry, {0, 1, 2, 3}, std::move(inputs), interp_options);
      ++runs;
      steps += static_cast<long long>(trace.steps);
      branches += static_cast<long long>(trace.branches);
      sink_events += static_cast<long long>(trace.sink_values.size());
      if (trace.outcome == lang::ExecOutcome::kOutOfBounds ||
          trace.outcome == lang::ExecOutcome::kDivisionByZero) {
        ++faults;
      } else if (trace.outcome == lang::ExecOutcome::kAborted) {
        ++aborted;
      }
    }
  }
  if (runs > 0) {
    fv.Set("dynamic.runs", static_cast<double>(runs));
    fv.Set("dynamic.fault_rate", static_cast<double>(faults) / runs);
    fv.Set("dynamic.abort_rate", static_cast<double>(aborted) / runs);
    fv.Set("dynamic.mean_steps", static_cast<double>(steps) / runs);
    fv.Set("dynamic.branch_density",
           steps > 0 ? static_cast<double>(branches) / static_cast<double>(steps) : 0.0);
    fv.Set("dynamic.sink_events_per_run", static_cast<double>(sink_events) / runs);
  }
  return fv;
}

}  // namespace

Testbed::Testbed(const corpus::EcosystemGenerator& ecosystem, TestbedOptions options)
    : ecosystem_(ecosystem), options_(options) {}

metrics::FeatureVector Testbed::ExtractFeatures(
    const std::vector<metrics::SourceFile>& files) const {
  metrics::FeatureVector features = metrics::ExtractAppFeatures(files);
  if (!options_.with_dataflow && !options_.with_symexec && !options_.with_dynamic) {
    return features;
  }
  int deep_done = 0;
  for (const auto& file : files) {
    if (deep_done >= options_.deep_analysis_max_files) {
      break;
    }
    if (file.language != metrics::Language::kMiniC) {
      continue;
    }
    auto unit = lang::Parse(file.text);
    if (!unit.ok()) {
      continue;
    }
    auto module = lang::LowerToIr(unit.value());
    if (!module.ok()) {
      continue;
    }
    if (options_.with_dataflow) {
      features.MergeSum(dataflow::DataflowFeatures(module.value()));
      features.MergeSum(dataflow::IntervalFeatures(module.value()));
    }
    if (options_.with_symexec) {
      features.MergeSum(symx::SymexFeatures(module.value(), options_.symexec));
    }
    if (options_.with_dynamic) {
      features.MergeSum(DynamicFeatures(module.value(), options_.dynamic_trials,
                                        options_.dynamic_seed + deep_done));
    }
    ++deep_done;
  }
  features.Set("deep.files_analyzed", static_cast<double>(deep_done));

  // Density features: most raw counts scale with application size, which
  // makes them proxies for LoC; dividing by kLoC isolates the *style* signal
  // (how guard-poor, taint-heavy, or smell-ridden the code is per unit of
  // code) — the quantity the paper wants beyond Figure 2's size baseline.
  const double kloc = std::max(features.Get("loc.code") / 1000.0, 1e-3);
  for (const char* name :
       {"lint.total", "lint.unchecked-input-index", "lint.non-constant-divisor",
        "smell.total", "smell.magic_numbers", "mccabe.total", "shin.branches",
        "shin.functions", "dataflow.input_sites", "dataflow.tainted_instructions",
        "dataflow.tainted_sinks", "dataflow.tainted_array_indices", "ai.possible_oob",
        "ai.possible_div0", "symx.vuln_sites"}) {
    if (features.Has(name)) {
      features.Set(std::string(name) + "_per_kloc", features.Get(name) / kloc);
    }
  }
  // Guardedness: share of array accesses the interval analysis could prove
  // safe (1.0 = fully defensive code).
  const double accesses = features.Get("ai.array_accesses");
  if (accesses > 0.0) {
    features.Set("ai.proven_ratio", features.Get("ai.proven_in_bounds") / accesses);
  }
  const double divisions = features.Get("ai.divisions");
  if (divisions > 0.0) {
    features.Set("ai.proven_div_ratio",
                 features.Get("ai.proven_nonzero_divisor") / divisions);
  }
  return features;
}

std::vector<AppRecord> Testbed::Collect() const {
  std::vector<AppRecord> records;
  const auto selected =
      ecosystem_.database().AppsWithConvergingHistory(options_.min_history_years);
  for (const auto& app : selected) {
    const corpus::AppSpec* spec = ecosystem_.FindSpec(app);
    if (spec == nullptr) {
      continue;
    }
    AppRecord record;
    record.name = app;
    record.features = ExtractFeatures(ecosystem_.GenerateSources(*spec));
    record.labels = ecosystem_.database().Summarize(app);
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace clair
