#include "src/clair/testbed.h"

#include <memory>

#include "src/dataflow/analyses.h"
#include "src/dataflow/intervals.h"
#include "src/lang/interp.h"
#include "src/lang/parser.h"
#include "src/metrics/callgraph.h"
#include "src/support/rng.h"
#include "src/support/strings.h"
#include "src/support/thread_pool.h"

namespace clair {
namespace {

// §5.3's dynamic-trace extension: execute the module's call-graph roots on
// random inputs and summarise runtime behaviour.
metrics::FeatureVector DynamicFeatures(const lang::IrModule& module, int trials,
                                       uint64_t seed) {
  metrics::FeatureVector fv;
  const metrics::CallGraph graph(module);
  std::vector<std::string> entries;
  if (module.FindFunction("main") != nullptr) {
    entries.push_back("main");
  } else {
    entries = graph.Roots();
    if (entries.size() > 8) {
      entries.resize(8);  // Bound per-file cost on large modules.
    }
  }
  support::Rng rng(seed);
  long long runs = 0;
  long long faults = 0;
  long long aborted = 0;
  long long steps = 0;
  long long branches = 0;
  long long sink_events = 0;
  lang::InterpOptions interp_options;
  interp_options.max_steps = 1 << 14;
  for (const auto& entry : entries) {
    for (int t = 0; t < trials; ++t) {
      std::vector<int64_t> inputs;
      for (int i = 0; i < 16; ++i) {
        inputs.push_back(rng.NextBool(0.7)
                             ? static_cast<int64_t>(rng.NextBelow(32))
                             : static_cast<int64_t>(rng.NextBelow(1 << 12)) - 2048);
      }
      const auto trace =
          lang::Execute(module, entry, {0, 1, 2, 3}, std::move(inputs), interp_options);
      ++runs;
      steps += static_cast<long long>(trace.steps);
      branches += static_cast<long long>(trace.branches);
      sink_events += static_cast<long long>(trace.sink_values.size());
      if (trace.outcome == lang::ExecOutcome::kOutOfBounds ||
          trace.outcome == lang::ExecOutcome::kDivisionByZero) {
        ++faults;
      } else if (trace.outcome == lang::ExecOutcome::kAborted) {
        ++aborted;
      }
    }
  }
  if (runs > 0) {
    fv.Set("dynamic.runs", static_cast<double>(runs));
    fv.Set("dynamic.fault_rate", static_cast<double>(faults) / runs);
    fv.Set("dynamic.abort_rate", static_cast<double>(aborted) / runs);
    fv.Set("dynamic.mean_steps", static_cast<double>(steps) / runs);
    fv.Set("dynamic.branch_density",
           steps > 0 ? static_cast<double>(branches) / static_cast<double>(steps) : 0.0);
    fv.Set("dynamic.sink_events_per_run", static_cast<double>(sink_events) / runs);
  }
  return fv;
}

}  // namespace

Testbed::Testbed(const corpus::EcosystemGenerator& ecosystem, TestbedOptions options)
    : ecosystem_(ecosystem), options_(options) {}

uint64_t Testbed::OptionsFingerprint() const {
  // Canonical text encoding of every option that changes extraction output.
  // min_history_years and threads are deliberately excluded: selection does
  // not change a row's content, and worker count never changes results.
  const auto& sx = options_.symexec;
  const std::string encoding = support::Format(
      "df=%d sx=%d dyn=%d trials=%d dseed=%llu deep=%d "
      "width=%d paths=%llu steps=%llu total=%llu queries=%llu depth=%d "
      "array=%d nodes=%llu conflicts=%llu cap=%llu exploit=%d",
      options_.with_dataflow, options_.with_symexec, options_.with_dynamic,
      options_.dynamic_trials,
      static_cast<unsigned long long>(options_.dynamic_seed),
      options_.deep_analysis_max_files, sx.width,
      static_cast<unsigned long long>(sx.max_paths),
      static_cast<unsigned long long>(sx.max_steps_per_path),
      static_cast<unsigned long long>(sx.max_total_steps),
      static_cast<unsigned long long>(sx.max_solver_queries), sx.max_call_depth,
      sx.max_symbolic_array, static_cast<unsigned long long>(sx.max_expr_nodes),
      static_cast<unsigned long long>(sx.solver_conflict_budget),
      static_cast<unsigned long long>(sx.exploit_exact_cap),
      sx.exploit_sample_trials);
  return Fnv1a64(encoding);
}

metrics::FeatureVector Testbed::ExtractFeatures(
    const std::vector<metrics::SourceFile>& files) const {
  uint64_t cache_key = 0;
  if (options_.cache_features) {
    cache_key = HashSourceFiles(files, OptionsFingerprint());
    metrics::FeatureVector cached;
    if (cache_.Lookup(cache_key, &cached)) {
      return cached;
    }
  }
  metrics::FeatureVector features = metrics::ExtractAppFeatures(files);
  if (!options_.with_dataflow && !options_.with_symexec && !options_.with_dynamic) {
    if (options_.cache_features) {
      cache_.Insert(cache_key, features);
    }
    return features;
  }
  // Deep-analysis budget (see TestbedOptions): the first
  // `deep_analysis_max_files` MiniC files in order consume the budget,
  // parse/lower failures included.
  int deep_attempted = 0;
  int deep_done = 0;
  for (const auto& file : files) {
    if (deep_attempted >= options_.deep_analysis_max_files) {
      break;
    }
    if (file.language != metrics::Language::kMiniC) {
      continue;
    }
    const int attempt_index = deep_attempted++;
    auto unit = lang::Parse(file.text);
    if (!unit.ok()) {
      continue;
    }
    auto module = lang::LowerToIr(unit.value());
    if (!module.ok()) {
      continue;
    }
    if (options_.with_dataflow) {
      features.MergeSum(dataflow::DataflowFeatures(module.value()));
      features.MergeSum(dataflow::IntervalFeatures(module.value()));
    }
    if (options_.with_symexec) {
      features.MergeSum(symx::SymexFeatures(module.value(), options_.symexec));
    }
    if (options_.with_dynamic) {
      // Seeded by attempt index, so a file's dynamic stream is a function of
      // its position among deep candidates, not of earlier parse outcomes.
      features.MergeSum(
          DynamicFeatures(module.value(), options_.dynamic_trials,
                          support::Rng::TaskSeed(options_.dynamic_seed,
                                                 static_cast<uint64_t>(attempt_index))));
    }
    ++deep_done;
  }
  features.Set("deep.files_attempted", static_cast<double>(deep_attempted));
  features.Set("deep.files_analyzed", static_cast<double>(deep_done));

  // Density features: most raw counts scale with application size, which
  // makes them proxies for LoC; dividing by kLoC isolates the *style* signal
  // (how guard-poor, taint-heavy, or smell-ridden the code is per unit of
  // code) — the quantity the paper wants beyond Figure 2's size baseline.
  const double kloc = std::max(features.Get("loc.code") / 1000.0, 1e-3);
  for (const char* name :
       {"lint.total", "lint.unchecked-input-index", "lint.non-constant-divisor",
        "smell.total", "smell.magic_numbers", "mccabe.total", "shin.branches",
        "shin.functions", "dataflow.input_sites", "dataflow.tainted_instructions",
        "dataflow.tainted_sinks", "dataflow.tainted_array_indices", "ai.possible_oob",
        "ai.possible_div0", "symx.vuln_sites"}) {
    if (features.Has(name)) {
      features.Set(std::string(name) + "_per_kloc", features.Get(name) / kloc);
    }
  }
  // Guardedness: share of array accesses the interval analysis could prove
  // safe (1.0 = fully defensive code).
  const double accesses = features.Get("ai.array_accesses");
  if (accesses > 0.0) {
    features.Set("ai.proven_ratio", features.Get("ai.proven_in_bounds") / accesses);
  }
  const double divisions = features.Get("ai.divisions");
  if (divisions > 0.0) {
    features.Set("ai.proven_div_ratio",
                 features.Get("ai.proven_nonzero_divisor") / divisions);
  }
  if (options_.cache_features) {
    cache_.Insert(cache_key, features);
  }
  return features;
}

std::vector<AppRecord> Testbed::Collect() const {
  const auto selected =
      ecosystem_.database().AppsWithConvergingHistory(options_.min_history_years);
  std::vector<const corpus::AppSpec*> specs;
  specs.reserve(selected.size());
  std::vector<std::string> names;
  for (const auto& app : selected) {
    const corpus::AppSpec* spec = ecosystem_.FindSpec(app);
    if (spec != nullptr) {
      specs.push_back(spec);
      names.push_back(app);
    }
  }
  // One task per app: source synthesis + the full extraction battery. Every
  // input is per-app deterministic (GenerateSources forks a per-app stream,
  // ExtractFeatures derives per-index seeds), and ParallelMap collects in
  // index order, so the matrix is bit-identical at any worker count.
  std::unique_ptr<support::ThreadPool> dedicated;
  if (options_.threads > 0) {
    dedicated = std::make_unique<support::ThreadPool>(options_.threads);
  }
  support::ThreadPool& pool =
      dedicated != nullptr ? *dedicated : support::ThreadPool::Global();
  return pool.ParallelMap<AppRecord>(specs.size(), [&](size_t i) {
    AppRecord record;
    record.name = names[i];
    record.features = ExtractFeatures(ecosystem_.GenerateSources(*specs[i]));
    record.labels = ecosystem_.database().Summarize(record.name);
    return record;
  });
}

}  // namespace clair
