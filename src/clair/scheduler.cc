#include "src/clair/scheduler.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "src/clair/evaluator.h"
#include "src/clair/feature_cache.h"
#include "src/clair/hypothesis.h"

namespace clair {
namespace {

// Extraction stages a wave runs as one composite (the testbed walks them
// per file internally); the scheduler's request-level tracker settles them
// together when the row lands.
constexpr StageKind kExtractionStages[] = {
    StageKind::kParse,    StageKind::kLower,   StageKind::kDataflow,
    StageKind::kIntervals, StageKind::kSymexec, StageKind::kDynamic,
    StageKind::kFeatures,
};

}  // namespace

const char* RequestStateName(RequestState state) {
  switch (state) {
    case RequestState::kQueued:
      return "queued";
    case RequestState::kRunning:
      return "running";
    case RequestState::kDone:
      return "done";
    case RequestState::kFailed:
      return "failed";
    case RequestState::kCancelled:
      return "cancelled";
  }
  return "?";
}

Scheduler::Scheduler(const Testbed& testbed, const TrainedModel& model,
                     SchedulerOptions options)
    : testbed_(testbed), model_(model), options_(std::move(options)) {
  if (options_.max_batch == 0) {
    options_.max_batch = 1;
  }
  if (options_.threads > 0) {
    dedicated_pool_ = std::make_unique<support::ThreadPool>(options_.threads);
  }
  paused_ = options_.start_paused;
  coordinator_ = std::thread([this] { CoordinatorLoop(); });
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    paused_ = false;  // A paused scheduler still drains deterministically.
  }
  cv_.notify_all();
  coordinator_.join();
}

uint64_t Scheduler::Submit(ScoreRequest request) {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t id = ++next_id_;
  auto entry = std::make_unique<Entry>();
  entry->request = std::move(request);
  entry->result.id = id;
  entry->result.subject = entry->request.subject;
  entry->result.submitted_at = std::chrono::steady_clock::now();
  if (entry->request.extract_only) {
    entry->tracker.Disable(StageKind::kPredict);
  }
  entries_.emplace(id, std::move(entry));
  ++stats_.submitted;
  cv_.notify_all();
  return id;
}

bool Scheduler::Cancel(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(id);
  if (it == entries_.end()) {
    return false;
  }
  Entry& entry = *it->second;
  if (entry.state == RequestState::kQueued) {
    entry.result.stages_unwound = entry.tracker.CancelPending();
    ResolveLocked(entry, RequestState::kCancelled);
    return true;
  }
  if (entry.state == RequestState::kRunning && !entry.predict_started) {
    entry.cancel_requested = true;
    return true;
  }
  return false;  // Already resolved, or predict is past unwinding.
}

ScoreResult Scheduler::Wait(uint64_t id) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = entries_.find(id);
  if (it == entries_.end()) {
    ScoreResult missing;
    missing.id = id;
    missing.state = RequestState::kFailed;
    missing.error = "unknown request id";
    return missing;
  }
  Entry& entry = *it->second;
  cv_.wait(lock, [&] { return Resolved(entry.state); });
  return entry.result;
}

void Scheduler::Resume() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  cv_.notify_all();
}

void Scheduler::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  paused_ = false;
  cv_.notify_all();
  cv_.wait(lock, [&] {
    for (const auto& [id, entry] : entries_) {
      if (!Resolved(entry->state)) {
        return false;
      }
    }
    return true;
  });
}

SchedulerStats Scheduler::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

bool Scheduler::HasQueuedLocked() const {
  for (const auto& [id, entry] : entries_) {
    if (entry->state == RequestState::kQueued) {
      return true;
    }
  }
  return false;
}

std::vector<uint64_t> Scheduler::PlanWaveLocked() {
  std::vector<uint64_t> queued;
  for (const auto& [id, entry] : entries_) {
    if (entry->state == RequestState::kQueued) {
      queued.push_back(id);
    }
  }
  // Priority order, FIFO within a priority (ids are submission-ordered).
  std::stable_sort(queued.begin(), queued.end(), [&](uint64_t a, uint64_t b) {
    const int pa = entries_.at(a)->request.priority;
    const int pb = entries_.at(b)->request.priority;
    return pa != pb ? pa > pb : a < b;
  });
  const size_t cap = options_.batching ? options_.max_batch : 1;
  if (queued.size() > cap) {
    queued.resize(cap);
  }
  return queued;
}

void Scheduler::CoordinatorLoop() {
  for (;;) {
    std::vector<uint64_t> wave;
    uint64_t wave_number = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock,
               [&] { return stopping_ || (!paused_ && HasQueuedLocked()); });
      wave = PlanWaveLocked();
      if (wave.empty()) {
        if (stopping_) {
          return;
        }
        continue;
      }
      wave_number = ++stats_.waves;
      if (wave.size() > 1) {
        stats_.batched_requests += wave.size();
      }
      for (const uint64_t id : wave) {
        Entry& entry = *entries_.at(id);
        entry.state = RequestState::kRunning;
        entry.result.wave = wave_number;
        for (const StageKind stage : kExtractionStages) {
          entry.tracker.MarkRunning(stage);
        }
      }
    }
    RunWave(wave, wave_number);
  }
}

void Scheduler::RunWave(const std::vector<uint64_t>& wave_ids,
                        uint64_t wave_number) {
  // --- Plan: coalesce duplicate in-flight content keys. One group per
  // distinct source set; the first request in wave (priority) order leads,
  // the rest copy its row. Entry pointers are stable (unique_ptr in the
  // map) and only this coordinator mutates unresolved entries, so the wave
  // body reads them without the lock.
  struct Group {
    std::vector<Entry*> members;  // members[0] is the leader.
  };
  std::vector<Group> groups;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::map<uint64_t, size_t> group_of;
    for (const uint64_t id : wave_ids) {
      Entry* entry = entries_.at(id).get();
      const uint64_t key = HashSourceFiles(entry->request.files, /*options_fingerprint=*/0);
      const auto [it, inserted] = group_of.emplace(key, groups.size());
      if (inserted) {
        groups.push_back(Group{});
      } else {
        entry->result.coalesced = true;
      }
      groups[it->second].members.push_back(entry);
    }
  }
  uint64_t coalesced = 0;
  for (const Group& group : groups) {
    coalesced += group.members.size() - 1;
  }
  if (coalesced > 0) {
    testbed_.NoteCoalescedExtractions(coalesced);
  }

  // --- Extract: unique groups fan out on the pool. Failures are caught per
  // group (never-drop: one poisoned subject must not sink its wave-mates),
  // and the completion hook publishes extract-only requests as soon as
  // their group's row lands — no waiting for the wave barrier.
  support::ThreadPool& pool = dedicated_pool_ != nullptr
                                  ? *dedicated_pool_
                                  : support::ThreadPool::Global();
  std::vector<metrics::FeatureVector> rows(groups.size());
  std::vector<std::string> errors(groups.size());
  const auto settle_extraction = [](Entry& entry, bool ok) {
    for (const StageKind stage : kExtractionStages) {
      if (ok) {
        entry.tracker.MarkDone(stage);
      } else {
        entry.tracker.MarkFailed(stage);
      }
    }
  };
  pool.ParallelFor(
      groups.size(),
      [&](size_t g) {
        try {
          rows[g] = testbed_.ExtractFeatures(groups[g].members[0]->request.files);
        } catch (const std::exception& ex) {
          errors[g] = std::string("extraction: ") + ex.what();
        } catch (...) {
          errors[g] = "extraction: unknown exception";
        }
      },
      [&](size_t g) {
        std::lock_guard<std::mutex> lock(mutex_);
        for (Entry* entry : groups[g].members) {
          if (!entry->request.extract_only || Resolved(entry->state)) {
            continue;
          }
          settle_extraction(*entry, errors[g].empty());
          if (entry->cancel_requested) {
            entry->result.stages_unwound = entry->tracker.CancelPending();
            ResolveLocked(*entry, RequestState::kCancelled);
          } else if (!errors[g].empty()) {
            entry->result.error = errors[g];
            ResolveLocked(*entry, RequestState::kFailed);
          } else {
            entry->result.features = rows[g];
            ResolveLocked(*entry, RequestState::kDone);
          }
        }
      });

  if (options_.on_wave_extracted) {
    options_.on_wave_extracted(wave_number);
  }

  // --- Checkpoint: the last cancellation point. Under the lock, settle
  // extraction outcomes into each surviving entry, honor mid-wave cancels
  // (unwinding exactly the not-yet-started predict stage), resolve failures
  // with their taxonomized error, and commit the survivors to predict.
  std::vector<Entry*> predict_entries;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.coalesced += coalesced;
    for (size_t g = 0; g < groups.size(); ++g) {
      for (Entry* entry : groups[g].members) {
        if (Resolved(entry->state)) {
          continue;  // extract_only, or cancelled while queued elsewhere.
        }
        settle_extraction(*entry, errors[g].empty());
        if (entry->cancel_requested) {
          entry->result.stages_unwound = entry->tracker.CancelPending();
          ResolveLocked(*entry, RequestState::kCancelled);
          continue;
        }
        if (!errors[g].empty()) {
          entry->result.error = errors[g];
          ResolveLocked(*entry, RequestState::kFailed);
          continue;
        }
        entry->result.features = rows[g];
        entry->predict_started = true;
        entry->tracker.MarkRunning(StageKind::kPredict);
        predict_entries.push_back(entry);
      }
    }
  }
  if (predict_entries.empty()) {
    return;
  }

  // --- Predict: one columnar forest call per hypothesis for the whole
  // wave. Hypothesis order, the per-row transform, and the severity
  // weighting all match SecurityEvaluator::Evaluate, and PredictRiskBatch
  // is bit-identical to per-row PredictRisk — so a batched result
  // byte-equals an independent synchronous sweep.
  std::vector<const metrics::FeatureVector*> batch_rows;
  batch_rows.reserve(predict_entries.size());
  for (const Entry* entry : predict_entries) {
    batch_rows.push_back(&entry->result.features);
  }
  std::vector<double> weighted(predict_entries.size(), 0.0);
  std::vector<double> weight_total(predict_entries.size(), 0.0);
  uint64_t batches = 0;
  std::string predict_error;
  try {
    for (const auto& hypothesis : StandardHypotheses()) {
      const HypothesisModel* bundle = model_.ForHypothesis(hypothesis.id);
      if (bundle == nullptr) {
        continue;
      }
      const std::vector<double> risks = bundle->PredictRiskBatch(batch_rows);
      ++batches;
      const double weight = HypothesisSeverityWeight(hypothesis.id);
      for (size_t i = 0; i < predict_entries.size(); ++i) {
        ScoreResult& result = predict_entries[i]->result;
        result.hypothesis_ids.push_back(hypothesis.id);
        result.hypothesis_risks.push_back(risks[i]);
        weighted[i] += weight * risks[i];
        weight_total[i] += weight;
      }
    }
  } catch (const std::exception& ex) {
    predict_error = std::string("predict: ") + ex.what();
  } catch (...) {
    predict_error = "predict: unknown exception";
  }

  std::lock_guard<std::mutex> lock(mutex_);
  stats_.predict_batches += batches;
  stats_.predict_rows += batches > 0 ? predict_entries.size() : 0;
  for (size_t i = 0; i < predict_entries.size(); ++i) {
    Entry& entry = *predict_entries[i];
    if (!predict_error.empty()) {
      entry.tracker.MarkFailed(StageKind::kPredict);
      entry.result.error = predict_error;
      ResolveLocked(entry, RequestState::kFailed);
      continue;
    }
    entry.tracker.MarkDone(StageKind::kPredict);
    entry.result.overall_risk =
        weight_total[i] > 0.0 ? weighted[i] / weight_total[i] : 0.0;
    ResolveLocked(entry, RequestState::kDone);
  }
}

void Scheduler::ResolveLocked(Entry& entry, RequestState state) {
  entry.state = state;
  entry.result.state = state;
  entry.result.resolved_at = std::chrono::steady_clock::now();
  entry.result.completion_index = ++completion_counter_;
  switch (state) {
    case RequestState::kDone:
      ++stats_.completed;
      break;
    case RequestState::kFailed:
      ++stats_.failed;
      break;
    case RequestState::kCancelled:
      ++stats_.cancelled;
      break;
    case RequestState::kQueued:
    case RequestState::kRunning:
      break;  // Not terminal; never passed here.
  }
  cv_.notify_all();
}

}  // namespace clair
