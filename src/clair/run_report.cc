#include "src/clair/run_report.h"

#include "src/clair/testbed.h"
#include "src/support/strings.h"

namespace clair {

uint64_t RunReport::TotalFailures() const {
  uint64_t total = 0;
  for (const auto& [name, stage] : stages) {
    total += stage.failures;
  }
  return total;
}

uint64_t RunReport::TotalDegraded() const {
  uint64_t total = 0;
  for (const auto& [name, stage] : stages) {
    total += stage.degraded;
  }
  return total;
}

std::string RunReport::ToString() const {
  std::string out =
      "stage       attempts  failures  injected  timeouts  retries  "
      "recovered  degraded    wall_s\n";
  for (const auto& [name, s] : stages) {
    out += support::Format(
        "%-10s %9llu %9llu %9llu %9llu %8llu %10llu %9llu %9.3f\n", name.c_str(),
        static_cast<unsigned long long>(s.attempts),
        static_cast<unsigned long long>(s.failures),
        static_cast<unsigned long long>(s.injected),
        static_cast<unsigned long long>(s.timeouts),
        static_cast<unsigned long long>(s.retries),
        static_cast<unsigned long long>(s.recovered),
        static_cast<unsigned long long>(s.degraded), s.wall_seconds);
  }
  out += support::Format(
      "apps=%llu resumed_from_checkpoint=%llu checkpoint_appends=%llu "
      "rows_from_cache=%llu cache_misses=%llu cache_entries=%llu "
      "cache_coalesced_fills=%llu cache_integrity_rejects=%llu\n",
      static_cast<unsigned long long>(apps_total),
      static_cast<unsigned long long>(apps_from_checkpoint),
      static_cast<unsigned long long>(checkpoint_appends),
      static_cast<unsigned long long>(rows_from_cache),
      static_cast<unsigned long long>(cache_misses),
      static_cast<unsigned long long>(cache_entries),
      static_cast<unsigned long long>(cache_coalesced_fills),
      static_cast<unsigned long long>(cache_integrity_rejects));
  return out;
}

RunReport SummarizeRecordRobustness(const std::vector<AppRecord>& records) {
  RunReport report;
  report.apps_total = records.size();
  for (const auto& record : records) {
    for (const auto& [name, value] : record.features.WithPrefix("robust.")) {
      // Keys look like "robust.<stage>_<counter>".
      const std::string tail = name.substr(7);
      const size_t sep = tail.rfind('_');
      if (sep == std::string::npos) {
        continue;
      }
      StageReport& stage = report.stages[tail.substr(0, sep)];
      const std::string counter = tail.substr(sep + 1);
      const auto count = static_cast<uint64_t>(value);
      if (counter == "failures") {
        stage.failures += count;
      } else if (counter == "degraded") {
        stage.degraded += count;
      } else if (counter == "retries") {
        stage.retries += count;
      }
    }
  }
  return report;
}

}  // namespace clair
