#include "src/clair/run_report.h"

#include <limits>

#include "src/clair/testbed.h"
#include "src/support/strings.h"

namespace clair {
namespace {

uint64_t SatAdd(uint64_t a, uint64_t b) {
  const uint64_t sum = a + b;
  return sum < a ? std::numeric_limits<uint64_t>::max() : sum;
}

}  // namespace

void StageReport::Merge(const StageReport& other) {
  attempts = SatAdd(attempts, other.attempts);
  failures = SatAdd(failures, other.failures);
  injected = SatAdd(injected, other.injected);
  timeouts = SatAdd(timeouts, other.timeouts);
  retries = SatAdd(retries, other.retries);
  recovered = SatAdd(recovered, other.recovered);
  degraded = SatAdd(degraded, other.degraded);
  wall_seconds += other.wall_seconds;
}

void RunReport::Merge(const RunReport& other) {
  for (const auto& [name, stage] : other.stages) {
    stages[name].Merge(stage);
  }
  apps_total = SatAdd(apps_total, other.apps_total);
  apps_from_checkpoint = SatAdd(apps_from_checkpoint, other.apps_from_checkpoint);
  rows_from_cache = SatAdd(rows_from_cache, other.rows_from_cache);
  checkpoint_appends = SatAdd(checkpoint_appends, other.checkpoint_appends);
  cache_misses = SatAdd(cache_misses, other.cache_misses);
  cache_entries = SatAdd(cache_entries, other.cache_entries);
  cache_coalesced_fills = SatAdd(cache_coalesced_fills, other.cache_coalesced_fills);
  cache_integrity_rejects =
      SatAdd(cache_integrity_rejects, other.cache_integrity_rejects);
  cache_evictions = SatAdd(cache_evictions, other.cache_evictions);
  checkpoint_dropped_blocks =
      SatAdd(checkpoint_dropped_blocks, other.checkpoint_dropped_blocks);
  checkpoint_stale_records =
      SatAdd(checkpoint_stale_records, other.checkpoint_stale_records);
}

uint64_t RunReport::TotalFailures() const {
  uint64_t total = 0;
  for (const auto& [name, stage] : stages) {
    total += stage.failures;
  }
  return total;
}

uint64_t RunReport::TotalDegraded() const {
  uint64_t total = 0;
  for (const auto& [name, stage] : stages) {
    total += stage.degraded;
  }
  return total;
}

std::string RunReport::ToString() const {
  std::string out =
      "stage       attempts  failures  injected  timeouts  retries  "
      "recovered  degraded    wall_s\n";
  for (const auto& [name, s] : stages) {
    out += support::Format(
        "%-10s %9llu %9llu %9llu %9llu %8llu %10llu %9llu %9.3f\n", name.c_str(),
        static_cast<unsigned long long>(s.attempts),
        static_cast<unsigned long long>(s.failures),
        static_cast<unsigned long long>(s.injected),
        static_cast<unsigned long long>(s.timeouts),
        static_cast<unsigned long long>(s.retries),
        static_cast<unsigned long long>(s.recovered),
        static_cast<unsigned long long>(s.degraded), s.wall_seconds);
  }
  out += support::Format(
      "apps=%llu resumed_from_checkpoint=%llu checkpoint_appends=%llu "
      "checkpoint_dropped=%llu checkpoint_stale=%llu rows_from_cache=%llu "
      "cache_misses=%llu cache_entries=%llu cache_coalesced_fills=%llu "
      "cache_integrity_rejects=%llu cache_evictions=%llu\n",
      static_cast<unsigned long long>(apps_total),
      static_cast<unsigned long long>(apps_from_checkpoint),
      static_cast<unsigned long long>(checkpoint_appends),
      static_cast<unsigned long long>(checkpoint_dropped_blocks),
      static_cast<unsigned long long>(checkpoint_stale_records),
      static_cast<unsigned long long>(rows_from_cache),
      static_cast<unsigned long long>(cache_misses),
      static_cast<unsigned long long>(cache_entries),
      static_cast<unsigned long long>(cache_coalesced_fills),
      static_cast<unsigned long long>(cache_integrity_rejects),
      static_cast<unsigned long long>(cache_evictions));
  return out;
}

RunReport SummarizeRecordRobustness(const std::vector<AppRecord>& records) {
  RunReport report;
  report.apps_total = records.size();
  for (const auto& record : records) {
    for (const auto& [name, value] : record.features.WithPrefix("robust.")) {
      // Keys look like "robust.<stage>_<counter>".
      const std::string tail = name.substr(7);
      const size_t sep = tail.rfind('_');
      if (sep == std::string::npos) {
        continue;
      }
      StageReport& stage = report.stages[tail.substr(0, sep)];
      const std::string counter = tail.substr(sep + 1);
      const auto count = static_cast<uint64_t>(value);
      if (counter == "failures") {
        stage.failures += count;
      } else if (counter == "degraded") {
        stage.degraded += count;
      } else if (counter == "retries") {
        stage.retries += count;
      }
    }
  }
  return report;
}

std::string SaveRunReport(const RunReport& report) {
  std::string out = "[run_report]\n";
  for (const auto& [name, s] : report.stages) {
    const auto field = [&](const char* key, uint64_t value) {
      out += support::Format("stage.%s.%s=%llu\n", name.c_str(), key,
                             static_cast<unsigned long long>(value));
    };
    field("attempts", s.attempts);
    field("failures", s.failures);
    field("injected", s.injected);
    field("timeouts", s.timeouts);
    field("retries", s.retries);
    field("recovered", s.recovered);
    field("degraded", s.degraded);
    out += support::Format("stage.%s.wall_seconds=%.17g\n", name.c_str(),
                           s.wall_seconds);
  }
  const auto counter = [&](const char* key, uint64_t value) {
    out += support::Format("%s=%llu\n", key, static_cast<unsigned long long>(value));
  };
  counter("apps_total", report.apps_total);
  counter("apps_from_checkpoint", report.apps_from_checkpoint);
  counter("rows_from_cache", report.rows_from_cache);
  counter("checkpoint_appends", report.checkpoint_appends);
  counter("cache_misses", report.cache_misses);
  counter("cache_entries", report.cache_entries);
  counter("cache_coalesced_fills", report.cache_coalesced_fills);
  counter("cache_integrity_rejects", report.cache_integrity_rejects);
  counter("cache_evictions", report.cache_evictions);
  counter("checkpoint_dropped_blocks", report.checkpoint_dropped_blocks);
  counter("checkpoint_stale_records", report.checkpoint_stale_records);
  return out;
}

support::Result<RunReport> LoadRunReport(std::string_view text) {
  using support::Error;
  RunReport report;
  bool saw_header = false;
  int line_no = 0;
  for (const auto& raw_line : support::Split(text, '\n')) {
    ++line_no;
    const auto line = support::Trim(raw_line);
    if (line.empty()) {
      continue;
    }
    if (line == "[run_report]") {
      saw_header = true;
      continue;
    }
    const size_t eq = line.find('=');
    if (!saw_header || eq == std::string_view::npos) {
      return Error(Error::Code::kParseError,
                   support::Format("line %d: malformed run report", line_no));
    }
    const std::string key(line.substr(0, eq));
    const std::string value(line.substr(eq + 1));
    const auto bad = [&]() -> Error {
      return Error(Error::Code::kParseError,
                   support::Format("line %d: bad value for '%s'", line_no, key.c_str()));
    };
    if (support::StartsWith(key, "stage.")) {
      const std::string tail = key.substr(6);
      const size_t dot = tail.rfind('.');
      if (dot == std::string::npos) {
        return bad();
      }
      StageReport& stage = report.stages[tail.substr(0, dot)];
      const std::string field = tail.substr(dot + 1);
      if (field == "wall_seconds") {
        const auto parsed = support::ParseDouble(value);
        if (!parsed) {
          return bad();
        }
        stage.wall_seconds = *parsed;
        continue;
      }
      const auto parsed = support::ParseInt(value);
      if (!parsed || *parsed < 0) {
        return bad();
      }
      const auto count = static_cast<uint64_t>(*parsed);
      if (field == "attempts") {
        stage.attempts = count;
      } else if (field == "failures") {
        stage.failures = count;
      } else if (field == "injected") {
        stage.injected = count;
      } else if (field == "timeouts") {
        stage.timeouts = count;
      } else if (field == "retries") {
        stage.retries = count;
      } else if (field == "recovered") {
        stage.recovered = count;
      } else if (field == "degraded") {
        stage.degraded = count;
      } else {
        return Error(Error::Code::kParseError,
                     support::Format("line %d: unknown stage field '%s'", line_no,
                                     field.c_str()));
      }
      continue;
    }
    const auto parsed = support::ParseInt(value);
    if (!parsed || *parsed < 0) {
      return bad();
    }
    const auto count = static_cast<uint64_t>(*parsed);
    if (key == "apps_total") {
      report.apps_total = count;
    } else if (key == "apps_from_checkpoint") {
      report.apps_from_checkpoint = count;
    } else if (key == "rows_from_cache") {
      report.rows_from_cache = count;
    } else if (key == "checkpoint_appends") {
      report.checkpoint_appends = count;
    } else if (key == "cache_misses") {
      report.cache_misses = count;
    } else if (key == "cache_entries") {
      report.cache_entries = count;
    } else if (key == "cache_coalesced_fills") {
      report.cache_coalesced_fills = count;
    } else if (key == "cache_integrity_rejects") {
      report.cache_integrity_rejects = count;
    } else if (key == "cache_evictions") {
      report.cache_evictions = count;
    } else if (key == "checkpoint_dropped_blocks") {
      report.checkpoint_dropped_blocks = count;
    } else if (key == "checkpoint_stale_records") {
      report.checkpoint_stale_records = count;
    } else {
      return Error(Error::Code::kParseError,
                   support::Format("line %d: unknown key '%s'", line_no, key.c_str()));
    }
  }
  if (!saw_header) {
    return Error(Error::Code::kParseError, "missing [run_report] header");
  }
  return report;
}

}  // namespace clair
