#include "src/clair/pipeline.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "src/ml/linear.h"
#include "src/ml/naive_bayes.h"
#include "src/ml/tree.h"
#include "src/support/thread_pool.h"

namespace clair {

const std::vector<LearnerSpec>& StandardLearners() {
  static const std::vector<LearnerSpec> kLearners = {
      {"logistic",
       [] { return std::unique_ptr<ml::Classifier>(new ml::LogisticClassifier()); }},
      {"naive-bayes",
       [] { return std::unique_ptr<ml::Classifier>(new ml::NaiveBayesClassifier()); }},
      {"decision-tree",
       [] {
         ml::TreeOptions options;
         options.max_depth = 8;
         return std::unique_ptr<ml::Classifier>(new ml::DecisionTreeClassifier(options, 11));
       }},
      {"random-forest",
       [] {
         ml::ForestOptions options;
         options.num_trees = 48;
         options.tree.max_depth = 10;
         options.seed = 13;
         return std::unique_ptr<ml::Classifier>(new ml::RandomForestClassifier(options));
       }},
      {"knn", [] { return std::unique_ptr<ml::Classifier>(new ml::KnnClassifier(5)); }},
  };
  return kLearners;
}

double HypothesisModel::PredictRisk(const metrics::FeatureVector& features) const {
  std::vector<double> row;
  row.reserve(feature_names.size());
  for (const auto& name : feature_names) {
    double value = features.Get(name, 0.0);
    if (log1p) {
      value = value >= 0.0 ? std::log1p(value) : -std::log1p(-value);
    }
    row.push_back(value);
  }
  if (standardize) {
    const auto& means = standardizer.means();
    const auto& stddevs = standardizer.stddevs();
    for (size_t j = 0; j < row.size() && j < means.size(); ++j) {
      row[j] = (row[j] - means[j]) / stddevs[j];
    }
  }
  const auto proba = model->PredictProba(row);
  return proba.size() > 1 ? proba[1] : 0.0;
}

std::vector<double> HypothesisModel::PredictRiskBatch(
    const std::vector<const metrics::FeatureVector*>& rows) const {
  // Same transform as PredictRisk, applied per row; the classifier call is
  // the only batched step, and PredictProbaBatch is bit-identical to the
  // per-row loop, so batched risks byte-equal N independent PredictRisk
  // calls.
  std::vector<std::vector<double>> matrix;
  matrix.reserve(rows.size());
  for (const metrics::FeatureVector* features : rows) {
    std::vector<double> row;
    row.reserve(feature_names.size());
    for (const auto& name : feature_names) {
      double value = features->Get(name, 0.0);
      if (log1p) {
        value = value >= 0.0 ? std::log1p(value) : -std::log1p(-value);
      }
      row.push_back(value);
    }
    if (standardize) {
      const auto& means = standardizer.means();
      const auto& stddevs = standardizer.stddevs();
      for (size_t j = 0; j < row.size() && j < means.size(); ++j) {
        row[j] = (row[j] - means[j]) / stddevs[j];
      }
    }
    matrix.push_back(std::move(row));
  }
  const auto probas = model->PredictProbaBatch(matrix);
  std::vector<double> risks;
  risks.reserve(probas.size());
  for (const auto& proba : probas) {
    risks.push_back(proba.size() > 1 ? proba[1] : 0.0);
  }
  return risks;
}

const HypothesisModel* TrainedModel::ForHypothesis(const std::string& id) const {
  for (const auto& model : models_) {
    if (model.hypothesis_id == id) {
      return &model;
    }
  }
  return nullptr;
}

TrainingPipeline::TrainingPipeline(std::vector<AppRecord> records, PipelineOptions options)
    : records_(std::move(records)), options_(options) {
  std::set<std::string> names;
  std::vector<cvedb::AppSummary> summaries;
  for (const auto& record : records_) {
    for (const auto& [name, _] : record.features.values()) {
      names.insert(name);
    }
    summaries.push_back(record.labels);
  }
  feature_names_.assign(names.begin(), names.end());
  stats_ = ComputeCorpusStats(summaries);
  robustness_ = SummarizeRecordRobustness(records_);
}

ml::Dataset TrainingPipeline::BuildDataset(const Hypothesis& hypothesis) const {
  ml::Dataset data = ml::Dataset::ForClassification(feature_names_, hypothesis.classes);
  data.Reserve(records_.size());
  // Row-major staging + one bulk append: a single binned-cache invalidation
  // instead of one per row.
  std::vector<double> rows(records_.size() * feature_names_.size());
  std::vector<double> targets(records_.size());
  for (size_t i = 0; i < records_.size(); ++i) {
    const auto& record = records_[i];
    for (size_t j = 0; j < feature_names_.size(); ++j) {
      rows[i * feature_names_.size() + j] = record.features.Get(feature_names_[j], 0.0);
    }
    targets[i] = hypothesis.label(record.labels, stats_);
  }
  data.AppendRows(rows, targets);
  return data;
}

void TrainingPipeline::ApplyTransforms(ml::Dataset& data, ml::Standardizer* fitted) const {
  if (options_.log1p) {
    ml::ApplyLog1p(data);
  }
  if (options_.standardize) {
    ml::Standardizer standardizer;
    standardizer.Fit(data);
    standardizer.Apply(data);
    if (fitted != nullptr) {
      *fitted = standardizer;
    }
  }
}

HypothesisReport TrainingPipeline::EvaluateHypothesis(const Hypothesis& hypothesis) const {
  HypothesisReport report;
  report.hypothesis_id = hypothesis.id;
  ml::Dataset data = BuildDataset(hypothesis);
  ApplyTransforms(data, nullptr);
  const auto counts = data.ClassCounts();
  report.positive_rate = data.num_rows() == 0
                             ? 0.0
                             : static_cast<double>(counts.size() > 1 ? counts[1] : 0) /
                                   static_cast<double>(data.num_rows());
  // Learners cross-validate independently on the shared transformed dataset;
  // selection scans the results in StandardLearners() order afterwards, so
  // ties keep resolving to the same learner at any worker count.
  const auto& learners = StandardLearners();
  report.per_learner = support::ParallelMap<LearnerOutcome>(
      learners.size(), [&](size_t i) {
        return LearnerOutcome{
            learners[i].name,
            ml::CrossValidate(data, learners[i].factory, options_.cv_folds,
                              options_.seed)};
      });
  double best_score = -1.0;
  for (const auto& outcome : report.per_learner) {
    // Model selection on macro-F1 (robust to the skewed base rates these
    // hypotheses have), AUC as the tie-breaker.
    const double score = outcome.metrics.macro_f1 + 1e-3 * outcome.metrics.auc;
    if (score > best_score) {
      best_score = score;
      report.best_learner = outcome.learner;
      report.best = outcome.metrics;
    }
  }
  // Feature attribution from a final model with importances, trained on the
  // same transformed dataset (and shared binned view) the CV sweep used.
  ml::ForestOptions forest_options;
  forest_options.num_trees = 48;
  forest_options.seed = 13;
  ml::RandomForestClassifier forest(forest_options);
  forest.Train(data);
  auto importance = forest.FeatureImportance();
  if (importance.size() > 10) {
    importance.resize(10);
  }
  report.top_features = std::move(importance);
  return report;
}

std::vector<HypothesisReport> TrainingPipeline::EvaluateAll() const {
  // Hypotheses are independent (each builds its own labelled dataset), so
  // they form the outermost parallel axis of the training phase; the nested
  // learner/fold regions inside collapse to inline execution.
  const auto& hypotheses = StandardHypotheses();
  return support::ParallelMap<HypothesisReport>(
      hypotheses.size(), [&](size_t i) { return EvaluateHypothesis(hypotheses[i]); });
}

ml::Dataset TrainingPipeline::BuildCountDataset() const {
  ml::Dataset data = ml::Dataset::ForRegression(feature_names_, "log10_vulns");
  data.Reserve(records_.size());
  std::vector<double> rows(records_.size() * feature_names_.size());
  std::vector<double> targets(records_.size());
  for (size_t i = 0; i < records_.size(); ++i) {
    const auto& record = records_[i];
    for (size_t j = 0; j < feature_names_.size(); ++j) {
      rows[i * feature_names_.size() + j] = record.features.Get(feature_names_[j], 0.0);
    }
    targets[i] = std::log10(1.0 + record.labels.total);
  }
  data.AppendRows(rows, targets);
  return data;
}

std::vector<TrainingPipeline::CountRegressionOutcome>
TrainingPipeline::EvaluateCountRegression() const {
  ml::Dataset data = BuildCountDataset();
  ApplyTransforms(data, nullptr);
  struct Spec {
    const char* name;
    std::function<std::unique_ptr<ml::Regressor>()> factory;
  };
  const Spec specs[] = {
      {"ols", [] { return std::unique_ptr<ml::Regressor>(new ml::LinearRegressor(0.0)); }},
      {"ridge",
       [] { return std::unique_ptr<ml::Regressor>(new ml::LinearRegressor(10.0)); }},
      {"forest-regressor",
       [] {
         ml::ForestOptions options;
         options.num_trees = 48;
         options.tree.max_depth = 10;
         options.seed = 17;
         return std::unique_ptr<ml::Regressor>(new ml::RandomForestRegressor(options));
       }},
  };
  return support::ParallelMap<CountRegressionOutcome>(std::size(specs), [&](size_t i) {
    CountRegressionOutcome outcome;
    outcome.model = specs[i].name;
    outcome.metrics = ml::CrossValidateRegression(data, specs[i].factory,
                                                  options_.cv_folds, options_.seed);
    return outcome;
  });
}

TrainedModel TrainingPipeline::TrainFinal() const {
  return TrainFinal(EvaluateAll());
}

TrainedModel TrainingPipeline::TrainFinal(
    const std::vector<HypothesisReport>& reports) const {
  const auto& hypotheses = StandardHypotheses();
  // Final per-hypothesis models are independent fits on all rows; train them
  // in parallel and assemble in hypothesis order (empty slots = hypotheses
  // without a report).
  auto bundles = support::ParallelMap<HypothesisModel>(
      hypotheses.size(), [&](size_t i) {
        const auto& hypothesis = hypotheses[i];
        HypothesisModel bundle;
        const HypothesisReport* report = nullptr;
        for (const auto& candidate : reports) {
          if (candidate.hypothesis_id == hypothesis.id) {
            report = &candidate;
            break;
          }
        }
        if (report == nullptr) {
          return bundle;
        }
        bundle.hypothesis_id = hypothesis.id;
        bundle.learner = report->best_learner;
        bundle.log1p = options_.log1p;
        bundle.standardize = options_.standardize;
        bundle.feature_names = feature_names_;
        ml::Dataset data = BuildDataset(hypothesis);
        ApplyTransforms(data, &bundle.standardizer);
        for (const auto& learner : StandardLearners()) {
          if (learner.name == report->best_learner) {
            bundle.model = learner.factory();
            break;
          }
        }
        if (!bundle.model) {
          bundle.model = StandardLearners().front().factory();
        }
        bundle.model->Train(data);
        return bundle;
      });
  TrainedModel trained;
  for (auto& bundle : bundles) {
    if (bundle.model != nullptr) {
      trained.Add(std::move(bundle));
    }
  }
  return trained;
}

}  // namespace clair
