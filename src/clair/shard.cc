#include "src/clair/shard.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "src/clair/feature_cache.h"
#include "src/clair/serialize.h"
#include "src/support/fault_injection.h"
#include "src/support/lease.h"
#include "src/support/strings.h"

namespace clair {

namespace {

using support::Error;
using support::Result;

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Sequential reader over a finished shard store: the worker appended rows
// in shard-app order (a sorted subset of the global order), so the merge —
// which visits each shard's apps in that same relative order — only ever
// moves forward. Chunks are released as the cursor leaves them, keeping
// merge residency at one chunk per shard.
class StoreCursor {
 public:
  explicit StoreCursor(ml::FeatureStore store) : store_(std::move(store)) {}

  // Appends every row whose name starts with `app` + "/" to `writer`.
  // Returns the number of rows forwarded (0 is normal: the app simply has
  // no MiniC functions).
  size_t ForwardApp(const std::string& app, ml::FeatureStoreWriter& writer) {
    const std::string prefix = app + "/";
    size_t forwarded = 0;
    std::vector<double> values(store_.num_features());
    while (chunk_ < store_.num_chunks()) {
      const auto chunk = store_.chunk(chunk_);
      while (row_ < chunk.rows) {
        const std::string& name = store_.RowName(chunk.row_begin + row_);
        if (!support::StartsWith(name, prefix)) {
          return forwarded;
        }
        for (size_t f = 0; f < values.size(); ++f) {
          values[f] = chunk.Column(f)[row_];
        }
        writer.Append(name, values, chunk.targets[row_]);
        ++forwarded;
        ++row_;
      }
      store_.ReleaseChunk(chunk_);
      ++chunk_;
      row_ = 0;
    }
    return forwarded;
  }

 private:
  ml::FeatureStore store_;
  size_t chunk_ = 0;
  size_t row_ = 0;
};

}  // namespace

struct ShardCoordinator::ShardState {
  std::vector<std::string> apps;
  std::string checkpoint_path;
  int next_generation = 0;    // Generation the next (re)launch gets.
  int finish_generation = -1; // Generation whose store/report are final.
  int active_slot = -1;       // Transport slot holding the lease, or -1.
  int active_generation = -1;
  uint64_t heartbeat_seq = 0; // Per-generation beat counter (loss keys).
  bool done = false;
  std::vector<std::string> temp_files;
};

int ShardCoordinator::ShardOf(const std::string& app, int num_shards) {
  if (num_shards <= 1) {
    return 0;
  }
  return static_cast<int>(Fnv1a64(app) % static_cast<uint64_t>(num_shards));
}

ShardCoordinator::ShardCoordinator(const corpus::EcosystemGenerator& ecosystem,
                                   ShardSweepOptions options,
                                   std::unique_ptr<WorkerTransport> transport)
    : ecosystem_(ecosystem),
      options_(std::move(options)),
      transport_(std::move(transport)) {
  options_.num_shards = std::max(options_.num_shards, 1);
  options_.num_workers = std::max(options_.num_workers, 1);
  options_.max_generations = std::max(options_.max_generations, 1);
  // Shard workers manage the shard checkpoint themselves; a nested testbed
  // checkpoint would interleave two block streams in one file.
  options_.testbed.checkpoint_path.clear();
  if (transport_ == nullptr) {
    transport_ = std::make_unique<SimulatedWorkerTransport>(
        ecosystem_, options_.testbed, options_.num_workers, options_.apps_per_tick);
  }
}

Result<ShardSweepResult> ShardCoordinator::Run() {
  if (options_.work_dir.empty()) {
    return Error(Error::Code::kInvalidArgument, "ShardSweepOptions.work_dir is empty");
  }
  ShardSweepResult result;
  result.stats.shards = options_.num_shards;
  result.stats.workers = transport_->max_workers();

  // --- Partition: same selection policy as Testbed::Collect, same global
  // (database-sorted) order; shard membership is a pure function of the
  // app name.
  const auto selected =
      ecosystem_.database().AppsWithConvergingHistory(options_.testbed.min_history_years);
  std::vector<std::string> global_order;
  for (const auto& app : selected) {
    if (ecosystem_.FindSpec(app) != nullptr) {
      global_order.push_back(app);
    }
  }
  std::vector<ShardState> shards(options_.num_shards);
  for (int k = 0; k < options_.num_shards; ++k) {
    shards[k].checkpoint_path =
        options_.work_dir + support::Format("/shard_%d.ckpt", k);
  }
  for (const auto& app : global_order) {
    shards[ShardOf(app, options_.num_shards)].apps.push_back(app);
  }

  const std::string fault_config = support::FaultInjector::Global().ConfigString();
  auto store_path_for = [&](int shard, int generation) {
    return options_.work_dir + support::Format("/shard_%d.g%d.clfs", shard, generation);
  };
  auto report_path_for = [&](int shard, int generation) {
    return options_.work_dir +
           support::Format("/shard_%d.g%d.report", shard, generation);
  };
  auto make_task = [&](int shard, int generation, bool allow_crash) {
    ShardTask task;
    task.shard = shard;
    task.generation = generation;
    task.apps = shards[shard].apps;
    task.checkpoint_path = shards[shard].checkpoint_path;
    if (options_.collect_function_rows) {
      task.store_path = store_path_for(shard, generation);
    }
    task.report_path = report_path_for(shard, generation);
    task.allow_crash = allow_crash;
    task.fault_config = fault_config;
    shards[shard].temp_files.push_back(task.checkpoint_path);
    if (!task.store_path.empty()) {
      shards[shard].temp_files.push_back(task.store_path);
    }
    shards[shard].temp_files.push_back(task.report_path);
    // The fork transport drops the task file next to the checkpoint.
    shards[shard].temp_files.push_back(
        task.checkpoint_path + support::Format(".g%d.task", generation));
    return task;
  };
  // Last-resort path: the coordinator sweeps the shard itself, crash
  // injection off — this is what bounds every fault schedule, including
  // worker_crash:1, to a finite run.
  auto run_inline = [&](int shard) -> Result<int> {
    const int generation = shards[shard].next_generation++;
    ++result.stats.generations_launched;
    ++result.stats.inline_fallbacks;
    auto run = ShardWorkerRun::Create(ecosystem_, options_.testbed,
                                      make_task(shard, generation, false));
    if (!run.ok()) {
      return run.error().Wrap("inline shard fallback");
    }
    while (run.value()->Step() == ShardWorkerRun::Status::kRunning) {
    }
    if (run.value()->status() != ShardWorkerRun::Status::kDone) {
      return Error(Error::Code::kInternal,
                   support::Format("inline fallback for shard %d failed", shard));
    }
    return generation;
  };

  // --- Supervise: leases on a logical clock, one tick per transport poll.
  support::LeaseClock clock;
  support::LeaseTable leases(static_cast<uint64_t>(
      options_.lease_ttl_ticks < 1 ? 1 : options_.lease_ttl_ticks));
  std::deque<int> queue;
  for (int k = 0; k < options_.num_shards; ++k) {
    if (shards[k].apps.empty()) {
      shards[k].done = true;  // Empty shard: nothing to sweep or merge.
    } else {
      queue.push_back(k);
    }
  }
  std::unordered_map<int, int> slot_to_shard;
  const auto& faults = support::FaultInjector::Global();
  // Hang backstop, far beyond any legitimate schedule: generations are
  // structurally capped at shards * max_generations, every app processed
  // costs at most ~TTL ticks of heartbeat slack, and everything else
  // expires within one TTL window. Tripping this means a supervision bug,
  // and an error beats a hung test run.
  const uint64_t tick_cap =
      1000 + (static_cast<uint64_t>(options_.lease_ttl_ticks) + 64) *
                 (static_cast<uint64_t>(options_.num_shards) *
                      static_cast<uint64_t>(options_.max_generations) +
                  4 * (static_cast<uint64_t>(global_order.size()) + 1));

  while (!queue.empty() || !slot_to_shard.empty()) {
    // Fill free slots in queue order; shards past the generation cap run
    // inline instead of spawning.
    while (!queue.empty() &&
           static_cast<int>(slot_to_shard.size()) < transport_->max_workers()) {
      const int shard = queue.front();
      queue.pop_front();
      if (shards[shard].next_generation >= options_.max_generations) {
        auto finished = run_inline(shard);
        if (!finished.ok()) {
          return finished.error();
        }
        shards[shard].finish_generation = finished.value();
        shards[shard].done = true;
        continue;
      }
      const int generation = shards[shard].next_generation++;
      auto slot = transport_->Spawn(make_task(shard, generation, true));
      if (!slot.ok()) {
        return slot.error().Wrap(
            support::Format("spawning shard %d g%d", shard, generation));
      }
      ++result.stats.generations_launched;
      shards[shard].active_slot = slot.value();
      shards[shard].active_generation = generation;
      shards[shard].heartbeat_seq = 0;
      slot_to_shard[slot.value()] = shard;
      leases.Claim(shard, slot.value(), clock.now());
    }

    const uint64_t now = clock.Tick();
    ++result.stats.ticks;
    if (result.stats.ticks > tick_cap) {
      return Error(Error::Code::kInternal, "shard supervision did not converge");
    }
    for (const auto& event : transport_->Poll()) {
      const auto found = slot_to_shard.find(event.slot);
      if (found == slot_to_shard.end()) {
        continue;  // Stale event from a slot we already revoked.
      }
      const int shard = found->second;
      ShardState& state = shards[shard];
      if (event.kind == WorkerEvent::Kind::kHeartbeat) {
        // heartbeat_loss chaos is supervisor-side: the worker is healthy,
        // the beat just never arrives — keyed on (shard, generation, seq)
        // so a seeded loss schedule replays on any transport.
        const uint64_t key = support::FaultKeyMix(
            support::FaultKeyMix(static_cast<uint64_t>(shard),
                                 static_cast<uint64_t>(state.active_generation)),
            state.heartbeat_seq++);
        if (faults.ShouldFail(support::FaultSite::kHeartbeatLoss, key, 0)) {
          ++result.stats.heartbeats_lost;
        } else {
          leases.Renew(shard, event.slot, now);
        }
        continue;
      }
      // Exit event: the slot is gone either way.
      slot_to_shard.erase(found);
      leases.Release(shard);
      state.active_slot = -1;
      if (event.exit_code == 0) {
        state.finish_generation = state.active_generation;
        state.done = true;
      } else {
        ++result.stats.worker_crashes;
        ++result.stats.shards_stolen;
        queue.push_back(shard);  // Steal: next free worker, next generation.
      }
      state.active_generation = -1;
    }
    for (const int shard : leases.Expired(now)) {
      ShardState& state = shards[shard];
      ++result.stats.leases_revoked;
      ++result.stats.shards_stolen;
      transport_->Kill(state.active_slot);
      slot_to_shard.erase(state.active_slot);
      leases.Release(shard);
      state.active_slot = -1;
      state.active_generation = -1;
      queue.push_back(shard);
    }
  }

  // --- Merge, in global sorted-app order. Every row is content-determined,
  // so dedupe-by-name and the healing fallback both reproduce the exact
  // bytes a 1-process sweep writes.
  Testbed merge_testbed(ecosystem_, options_.testbed);
  std::vector<std::unordered_map<std::string, AppRecord>> committed(shards.size());
  for (size_t k = 0; k < shards.size(); ++k) {
    if (shards[k].apps.empty()) {
      continue;
    }
    CheckpointLoadStats load_stats;
    auto records = LoadCheckpoint(ReadFileOrEmpty(shards[k].checkpoint_path),
                                  &load_stats);
    result.stats.checkpoint_dropped_blocks += load_stats.dropped_blocks;
    for (auto& record : records) {
      std::string name = record.name;
      if (!committed[k].emplace(std::move(name), std::move(record)).second) {
        ++result.stats.duplicate_records;
      }
    }
  }
  result.records.reserve(global_order.size());
  for (const auto& app : global_order) {
    const int k = ShardOf(app, options_.num_shards);
    if (const auto it = committed[k].find(app); it != committed[k].end()) {
      result.records.push_back(std::move(it->second));
    } else {
      // Destroyed by the kill schedule (torn block with no surviving
      // generation). Recompute inline — deterministic, so the healed row is
      // identical to what the worker would have committed.
      const corpus::AppSpec* spec = ecosystem_.FindSpec(app);
      result.records.push_back(merge_testbed.ExtractRecord(*spec));
      ++result.stats.healed_records;
    }
  }

  if (options_.collect_function_rows) {
    result.store_path = options_.work_dir + "/fleet.clfs";
    auto writer = ml::FeatureStoreWriter::Create(
        result.store_path, metrics::FunctionFeatureNames(), FunctionClassNames(),
        options_.store_options);
    if (!writer.ok()) {
      return writer.error().Wrap("opening fleet store");
    }
    // One cursor per shard over its finishing generation's store; a store
    // that failed to open (should not happen — every shard Finish()ed) is
    // healed app-by-app.
    std::vector<std::unique_ptr<StoreCursor>> cursors(shards.size());
    for (size_t k = 0; k < shards.size(); ++k) {
      if (shards[k].apps.empty()) {
        continue;
      }
      auto store = ml::FeatureStore::Open(
          store_path_for(static_cast<int>(k), shards[k].finish_generation));
      if (store.ok()) {
        cursors[k] = std::make_unique<StoreCursor>(std::move(store).value());
      }
    }
    for (const auto& app : global_order) {
      const int k = ShardOf(app, options_.num_shards);
      if (cursors[k] != nullptr) {
        result.stats.function_rows += cursors[k]->ForwardApp(app, *writer.value());
      } else {
        const corpus::AppSpec* spec = ecosystem_.FindSpec(app);
        for (const auto& row : ExtractAppFunctionRows(ecosystem_, *spec)) {
          writer.value()->Append(row.name, row.values, row.target);
          ++result.stats.function_rows;
        }
        ++result.stats.healed_function_apps;
      }
    }
    if (auto finished = writer.value()->Finish(); !finished.ok()) {
      return finished.error().Wrap("finishing fleet store");
    }
  }

  // --- Fleet report: fold each shard's finishing-generation report (the
  // only generation whose report file exists — crashed generations never
  // reach Finalize), then account for merge-time healing.
  for (size_t k = 0; k < shards.size(); ++k) {
    if (shards[k].apps.empty() || shards[k].finish_generation < 0) {
      continue;
    }
    const std::string text = ReadFileOrEmpty(
        report_path_for(static_cast<int>(k), shards[k].finish_generation));
    if (auto report = LoadRunReport(text); report.ok()) {
      result.report.Merge(report.value());
    }
  }
  result.report.Merge(merge_testbed.run_report());
  result.report.checkpoint_dropped_blocks += result.stats.checkpoint_dropped_blocks;

  if (!options_.keep_shard_files) {
    for (auto& state : shards) {
      std::sort(state.temp_files.begin(), state.temp_files.end());
      state.temp_files.erase(
          std::unique(state.temp_files.begin(), state.temp_files.end()),
          state.temp_files.end());
      for (const auto& path : state.temp_files) {
        std::remove(path.c_str());
      }
    }
  }
  return result;
}

}  // namespace clair
