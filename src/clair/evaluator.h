// The developer-facing metric of §5.3: apply the trained classifier bundle
// to a codebase, report per-hypothesis risk with contributing code
// properties and mitigation hints, compare two versions of the code, and
// rank candidate libraries.
#ifndef SRC_CLAIR_EVALUATOR_H_
#define SRC_CLAIR_EVALUATOR_H_

#include <string>
#include <vector>

#include "src/clair/pipeline.h"
#include "src/clair/testbed.h"
#include "src/metrics/extract.h"

namespace clair {

// Severity weight of a hypothesis in the overall score: the paper's three
// worked examples plus the broader battery, weighted by how directly each
// maps to exploit impact. Exported so the serving scheduler's batched
// predict path computes the exact same severity-weighted overall risk as
// SecurityEvaluator::Evaluate.
double HypothesisSeverityWeight(const std::string& id);

struct HypothesisPrediction {
  std::string hypothesis_id;
  std::string question;
  double risk = 0.0;  // P(risky class).
  bool predicted_risky = false;
  std::string mitigation;  // Populated when predicted_risky.
  // Code properties most responsible for this hypothesis's model output.
  std::vector<std::pair<std::string, double>> contributing_features;
};

struct SecurityReport {
  std::string subject;
  metrics::FeatureVector features;
  std::vector<HypothesisPrediction> predictions;
  // Aggregate score in [0, 1]: severity-weighted mean of hypothesis risks.
  double overall_risk = 0.0;

  std::string ToString() const;
};

struct VersionDelta {
  SecurityReport before;
  SecurityReport after;
  double risk_delta = 0.0;  // after - before; positive = got riskier.
  // Per-hypothesis deltas, sorted by |delta| descending.
  std::vector<std::pair<std::string, double>> by_hypothesis;

  std::string ToString() const;
};

class SecurityEvaluator {
 public:
  // The evaluator borrows the trained model and the testbed's extraction
  // configuration; both must outlive it.
  SecurityEvaluator(const TrainedModel& model, const Testbed& testbed);

  SecurityReport Evaluate(const std::string& subject,
                          const std::vector<metrics::SourceFile>& files) const;

  // §1: "whether a code change has raised or lowered the risk".
  VersionDelta CompareVersions(const std::vector<metrics::SourceFile>& before,
                               const std::vector<metrics::SourceFile>& after) const;

  // §1: "in selecting between two library implementations ... identify which
  // is less likely to have vulnerabilities". Returns reports sorted by
  // ascending overall risk (best choice first).
  std::vector<SecurityReport> RankLibraries(
      const std::vector<std::pair<std::string, std::vector<metrics::SourceFile>>>&
          candidates) const;

 private:
  const TrainedModel& model_;
  const Testbed& testbed_;
};

}  // namespace clair

#endif  // SRC_CLAIR_EVALUATOR_H_
