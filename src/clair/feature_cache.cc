#include "src/clair/feature_cache.h"

#include <cstring>

#include "src/support/fault_injection.h"

namespace clair {
namespace {

// Approximate per-entry bookkeeping overhead (hash node, order slot,
// checksum + size fields). Precision does not matter — the cap is a memory
// guard, not an allocator — but the estimate must be stable so eviction is
// deterministic in insertion order.
constexpr uint64_t kEntryOverhead = 64;

uint64_t EstimateFeatureBytes(const metrics::FeatureVector& features) {
  uint64_t bytes = kEntryOverhead;
  for (const auto& [name, value] : features.values()) {
    (void)value;
    bytes += name.size() + sizeof(double) + 32;  // Map-node overhead.
  }
  return bytes;
}

uint64_t EstimateRowBytes(const std::vector<double>& row) {
  return kEntryOverhead + row.size() * sizeof(double);
}

}  // namespace

uint64_t Fnv1a64(std::string_view bytes, uint64_t seed) {
  uint64_t hash = seed;
  for (const char c : bytes) {
    hash = (hash ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  }
  return hash;
}

uint64_t HashSourceFiles(const std::vector<metrics::SourceFile>& files,
                         uint64_t options_fingerprint) {
  uint64_t hash = Fnv1a64("clair.feature_cache.v1");
  hash ^= options_fingerprint;
  hash *= 0x100000001b3ULL;
  for (const auto& file : files) {
    hash = Fnv1a64(file.path, hash);
    hash = (hash ^ static_cast<uint64_t>(file.language)) * 0x100000001b3ULL;
    hash = Fnv1a64(file.text, hash);
    // Separator so (path="a", text="bc") and (path="ab", text="c") differ.
    hash = (hash ^ 0x1fULL) * 0x100000001b3ULL;
  }
  return hash;
}

uint64_t ChecksumFeatures(const metrics::FeatureVector& features) {
  uint64_t hash = Fnv1a64("clair.feature_cache.row.v1");
  for (const auto& [name, value] : features.values()) {
    hash = Fnv1a64(name, hash);
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    hash = (hash ^ bits) * 0x100000001b3ULL;
  }
  return hash;
}

uint64_t ChecksumRow(const std::vector<double>& row) {
  uint64_t hash = Fnv1a64("clair.row_cache.row.v1");
  for (const double value : row) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    hash = (hash ^ bits) * 0x100000001b3ULL;
  }
  return hash;
}

bool FeatureCache::Lookup(uint64_t key, metrics::FeatureVector* out) const {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      // Integrity guard: a row that no longer matches its insert-time
      // checksum (bit rot, a bug elsewhere scribbling on the map, or an
      // injected cache fault simulating either) must not be served — the
      // caller recomputes instead of training on a corrupt row.
      const bool injected = support::FaultInjector::Global().ShouldFail(
          support::FaultSite::kCache, key);
      if (!injected && ChecksumFeatures(it->second.features) == it->second.checksum) {
        *out = it->second.features;
        hits_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      bytes_ -= it->second.bytes;
      entries_.erase(it);
      integrity_rejects_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void FeatureCache::Insert(uint64_t key, const metrics::FeatureVector& features) {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t size = EstimateFeatureBytes(features);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    bytes_ -= it->second.bytes;
    it->second = Entry{features, ChecksumFeatures(features), size};
  } else {
    entries_[key] = Entry{features, ChecksumFeatures(features), size};
    order_.push_back(key);
  }
  bytes_ += size;
  EvictOverCapLocked();
}

void FeatureCache::EvictOverCapLocked() {
  while (entries_.size() > max_entries_ ||
         (max_bytes_ != 0 && bytes_ > max_bytes_ && !entries_.empty())) {
    if (order_.empty()) {
      return;  // Only stale slots remain; nothing evictable.
    }
    const uint64_t victim = order_.front();
    order_.pop_front();
    const auto it = entries_.find(victim);
    if (it == entries_.end()) {
      continue;  // Stale slot: the entry was erased by an integrity reject.
    }
    bytes_ -= it->second.bytes;
    entries_.erase(it);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

FeatureCacheStats FeatureCache::stats() const {
  FeatureCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.integrity_rejects = integrity_rejects_.load(std::memory_order_relaxed);
  stats.coalesced_fills = coalesced_fills_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.entries = entries_.size();
    stats.bytes = bytes_;
  }
  return stats;
}

void FeatureCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  order_.clear();
  bytes_ = 0;
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  integrity_rejects_.store(0, std::memory_order_relaxed);
  coalesced_fills_.store(0, std::memory_order_relaxed);
}

bool FeatureCache::CorruptEntryForTest(uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    return false;
  }
  it->second.features.Set("corrupted.by.test",
                          it->second.features.Get("corrupted.by.test") + 1.0);
  return true;
}

bool RowCache::Lookup(uint64_t key, std::vector<double>* out) const {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      const bool injected = support::FaultInjector::Global().ShouldFail(
          support::FaultSite::kCache, key);
      if (!injected && ChecksumRow(it->second.row) == it->second.checksum) {
        *out = it->second.row;
        hits_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      bytes_ -= it->second.bytes;
      entries_.erase(it);
      integrity_rejects_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void RowCache::Insert(uint64_t key, const std::vector<double>& row) {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t size = EstimateRowBytes(row);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    bytes_ -= it->second.bytes;
    it->second = Entry{row, ChecksumRow(row), size};
  } else {
    entries_[key] = Entry{row, ChecksumRow(row), size};
    order_.push_back(key);
  }
  bytes_ += size;
  EvictOverCapLocked();
}

void RowCache::EvictOverCapLocked() {
  while (entries_.size() > max_entries_ ||
         (max_bytes_ != 0 && bytes_ > max_bytes_ && !entries_.empty())) {
    if (order_.empty()) {
      return;
    }
    const uint64_t victim = order_.front();
    order_.pop_front();
    const auto it = entries_.find(victim);
    if (it == entries_.end()) {
      continue;
    }
    bytes_ -= it->second.bytes;
    entries_.erase(it);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

FeatureCacheStats RowCache::stats() const {
  FeatureCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.integrity_rejects = integrity_rejects_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.entries = entries_.size();
    stats.bytes = bytes_;
  }
  return stats;
}

void RowCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  order_.clear();
  bytes_ = 0;
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  integrity_rejects_.store(0, std::memory_order_relaxed);
}

}  // namespace clair
