// The testbed of §5.1: selects applications with a converging CVE history,
// runs the full static-analysis battery over their sources, and joins the
// resulting feature vectors with per-app CVE label summaries.
#ifndef SRC_CLAIR_TESTBED_H_
#define SRC_CLAIR_TESTBED_H_

#include <string>
#include <vector>

#include "src/corpus/ecosystem.h"
#include "src/cvedb/cvedb.h"
#include "src/metrics/extract.h"
#include "src/symexec/executor.h"

namespace clair {

struct TestbedOptions {
  double min_history_years = 5.0;  // The paper's selection policy.
  bool with_dataflow = true;
  bool with_symexec = true;
  // §5.3's "one potential improvement is to collect dynamic traces": run the
  // concrete interpreter over random inputs and derive dynamic.* features
  // (fault rate, branch density, sink activity).
  bool with_dynamic = true;
  int dynamic_trials = 8;
  uint64_t dynamic_seed = 0xd1a9;
  // Deeper analyses run on a sample of each app's files to bound cost;
  // text-level and parse-level metrics always cover every file.
  int deep_analysis_max_files = 3;
  symx::SymExecOptions symexec = TightSymexecDefaults();

  static symx::SymExecOptions TightSymexecDefaults() {
    symx::SymExecOptions options;
    options.max_paths = 48;
    options.max_steps_per_path = 1024;
    options.max_total_steps = 1 << 14;
    options.max_solver_queries = 256;
    options.solver_conflict_budget = 1000;
    options.max_expr_nodes = 256;
    options.exploit_sample_trials = 128;
    options.exploit_exact_cap = 16;
    return options;
  }
};

// One application's joined (features, labels) row.
struct AppRecord {
  std::string name;
  metrics::FeatureVector features;
  cvedb::AppSummary labels;
};

class Testbed {
 public:
  Testbed(const corpus::EcosystemGenerator& ecosystem, TestbedOptions options = {});

  // Extracts the full feature vector for an arbitrary set of source files
  // (also used by the evaluator on developer code).
  metrics::FeatureVector ExtractFeatures(
      const std::vector<metrics::SourceFile>& files) const;

  // Runs selection + extraction + label join over the whole ecosystem.
  // Deterministic; order follows the database's sorted app names.
  std::vector<AppRecord> Collect() const;

  const TestbedOptions& options() const { return options_; }

 private:
  const corpus::EcosystemGenerator& ecosystem_;
  TestbedOptions options_;
};

}  // namespace clair

#endif  // SRC_CLAIR_TESTBED_H_
