// The testbed of §5.1: selects applications with a converging CVE history,
// runs the full static-analysis battery over their sources, and joins the
// resulting feature vectors with per-app CVE label summaries.
#ifndef SRC_CLAIR_TESTBED_H_
#define SRC_CLAIR_TESTBED_H_

#include <array>
#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/clair/feature_cache.h"
#include "src/clair/function_rank.h"
#include "src/clair/incremental.h"
#include "src/clair/run_report.h"
#include "src/clair/stage_graph.h"
#include "src/corpus/ecosystem.h"
#include "src/cvedb/cvedb.h"
#include "src/metrics/extract.h"
#include "src/support/deadline.h"
#include "src/support/fault_injection.h"
#include "src/symexec/executor.h"

namespace clair {

struct TestbedOptions {
  double min_history_years = 5.0;  // The paper's selection policy.
  bool with_dataflow = true;
  bool with_symexec = true;
  // §5.3's "one potential improvement is to collect dynamic traces": run the
  // concrete interpreter over random inputs and derive dynamic.* features
  // (fault rate, branch density, sink activity).
  bool with_dynamic = true;
  int dynamic_trials = 8;
  uint64_t dynamic_seed = 0xd1a9;
  // Deeper analyses (dataflow, intervals, symexec, dynamic traces) run on a
  // bounded sample of each app's files; text-level and parse-level metrics
  // always cover every file. Budget policy: the first
  // `deep_analysis_max_files` MiniC files *in file order* consume the
  // budget whether or not they parse and lower — a file that fails to parse
  // spends its slot and contributes nothing. This keeps per-app deep cost
  // bounded by the option alone and keeps per-file seeds stable under
  // failures. The features report both sides: `deep.files_attempted`
  // (budget consumed) and `deep.files_analyzed` (successfully analysed).
  int deep_analysis_max_files = 3;
  // Worker count for the corpus sweep in Collect(): one task per app.
  // 0 = the process default (CLAIR_THREADS, else hardware_concurrency);
  // 1 = exact serial behaviour. Results are bit-identical at any setting.
  int threads = 0;
  // Content-addressed caching of finished feature rows (see
  // feature_cache.h); repeated extraction of identical sources is a lookup.
  bool cache_features = true;
  // Function-granular incremental extraction (see incremental.h): parse
  // artifacts, per-file metric vectors, per-function dataflow/interval
  // payloads, and per-entry symexec results are content-addressed by
  // normalized token hashes, so a warm re-score after an edit re-runs deep
  // analyses only for the changed functions. Output is bit-identical to the
  // module-level path (tests/incremental_test pins this); when any fault
  // site is armed the testbed automatically falls back to the module-level
  // path, so fault semantics and faulted-run byte-identity are untouched.
  bool cache_functions = true;
  // Byte cap for the function-granular row cache (0 = unbounded); oldest
  // entries evict first, surfaced as cache_evictions in RunReport.
  size_t function_cache_max_bytes = 64ull << 20;
  // Sweep the corpus as of N commits before HEAD (corpus::VersionHistory).
  // 0 = HEAD, byte-identical to GenerateSources. A sweep at lag L followed
  // by a HEAD sweep over the same checkpoint exercises the splice protocol:
  // records whose source digest no longer matches are re-extracted (warm)
  // and superseded last-wins on resume.
  int version_lag = 0;

  // --- Robustness layer (per-stage isolation in ExtractFeatures) ---
  // Each deep stage (parse, lower, dataflow, intervals, symexec, dynamic)
  // runs guarded: an Error, an exception, an injected fault, or a watchdog
  // expiry downgrades *that stage* to neutral features — the app row always
  // completes — and stamps `robust.<stage>_failures` /
  // `robust.<stage>_degraded` provenance counters into the row.
  //
  // A failed stage is re-attempted this many times before degrading. Retry
  // verdicts re-roll the fault-injection hash (attempt salt), so transient
  // injected faults recover; deterministic failures fail every attempt.
  int stage_retries = 1;
  // Cooperative per-stage step budget (0 = off). Deterministic: expiry is a
  // pure function of the stage's own work, so rows stay bit-identical at any
  // CLAIR_THREADS. Sized far above anything the synthetic corpus reaches.
  uint64_t stage_step_budget = 1ull << 22;
  // Wall-clock per-stage budget in ms (0 = off). Nondeterministic by
  // nature — a production-sweep safety net, not for reproducible runs, and
  // a poor fit with cache_features (a timed-out row may be cached).
  int stage_wall_ms = 0;
  // When non-empty, Collect() streams each finished record to this file
  // (crc-guarded blocks, see serialize.h) and resumes an interrupted sweep
  // from it, producing records bit-identical to an uninterrupted run.
  std::string checkpoint_path;

  symx::SymExecOptions symexec = TightSymexecDefaults();

  static symx::SymExecOptions TightSymexecDefaults() {
    symx::SymExecOptions options;
    options.max_paths = 48;
    options.max_steps_per_path = 1024;
    options.max_total_steps = 1 << 14;
    options.max_solver_queries = 256;
    options.solver_conflict_budget = 1000;
    options.max_expr_nodes = 256;
    options.exploit_sample_trials = 128;
    options.exploit_exact_cap = 16;
    return options;
  }
};

// One application's joined (features, labels) row.
struct AppRecord {
  std::string name;
  metrics::FeatureVector features;
  cvedb::AppSummary labels;
  // Content digest of the sources the row was extracted from
  // (HashSourceFiles with fingerprint 0); 0 for legacy records. Checkpoint
  // resume validates it so a record from one corpus version is never
  // silently reused for another — the splice protocol of DESIGN.md §9.
  uint64_t source_digest = 0;
};

// Work avoided / performed by the function-granular incremental layer.
// "computed" counts deep-analysis executions; "reused" counts cache served
// results. A warm re-score of a one-function edit should show computed
// deltas proportional to the changed set, not the app (pinned by
// tests/incremental_test).
struct IncrementalStats {
  uint64_t files_parsed = 0;             // Parser runs (AST-cache misses).
  uint64_t parse_reused = 0;             // AST-cache hits.
  uint64_t file_rows_computed = 0;       // Shallow per-file metric vectors.
  uint64_t file_rows_reused = 0;
  uint64_t fn_dataflow_computed = 0;     // Per-function dataflow batteries.
  uint64_t fn_dataflow_reused = 0;
  uint64_t fn_intervals_computed = 0;    // Per-function interval analyses.
  uint64_t fn_intervals_reused = 0;
  uint64_t symexec_entries_computed = 0; // Per-entry symbolic explorations.
  uint64_t symexec_entries_reused = 0;
  uint64_t dynamic_files_computed = 0;   // Per-file dynamic trace batteries.
  uint64_t dynamic_files_reused = 0;
};

class Testbed {
 public:
  Testbed(const corpus::EcosystemGenerator& ecosystem, TestbedOptions options = {});

  // Extracts the full feature vector for an arbitrary set of source files
  // (also used by the evaluator on developer code).
  metrics::FeatureVector ExtractFeatures(
      const std::vector<metrics::SourceFile>& files) const;

  // Runs selection + extraction + label join over the whole ecosystem, one
  // parallel task per app (TestbedOptions::threads). Deterministic and
  // bit-identical across worker counts; order follows the database's sorted
  // app names.
  std::vector<AppRecord> Collect() const;

  // One app's joined row, exactly as Collect() would produce it: source
  // synthesis, the full extraction battery, and the CVE label join. The
  // shard worker (shard_worker.h) sweeps its subset of the corpus through
  // this, so shard rows are bit-identical to single-process rows.
  AppRecord ExtractRecord(const corpus::AppSpec& spec) const;

  // Function-granular collection: streams one row per MiniC function of
  // every selected app into `writer` (schema FunctionFeatureNames(), label
  // = has an attributed CVE). Same selection policy and thread setting as
  // Collect(); the store file is byte-identical at any worker count.
  support::Result<FunctionCorpusStats> CollectFunctionRows(
      ml::FeatureStoreWriter& writer) const;

  const TestbedOptions& options() const { return options_; }

  // Hit/miss counters of the feature-row cache (zeros when disabled).
  FeatureCacheStats cache_stats() const { return cache_.stats(); }

  // Counters of the function-granular incremental layer (computed vs reused
  // per deep stage). The acceptance surface for "a warm re-score only
  // re-runs changed functions".
  IncrementalStats incremental_stats() const;

  // Stats of the granular tiers: per-function payload rows and per-file
  // metric vectors. cache_stats() stays L1-app-row-only.
  FeatureCacheStats function_cache_stats() const { return fn_cache_.stats(); }
  FeatureCacheStats file_cache_stats() const { return file_cache_.stats(); }

  // Sources for `spec` at the testbed's configured corpus version (HEAD
  // unless TestbedOptions::version_lag rolls the sweep back N commits).
  std::vector<metrics::SourceFile> SourcesFor(const corpus::AppSpec& spec) const;

  // Failure-taxonomy snapshot: per-stage attempt/failure/degraded/retry
  // counts and wall-clock accumulated by every ExtractFeatures/Collect run
  // of this testbed so far. Wall-clock is the only nondeterministic field.
  RunReport run_report() const;

  // Coalesced-fill accounting: the serving scheduler calls this when it
  // routes N>1 duplicate in-flight requests to a single extraction, so the
  // cache's effectiveness counters (surfaced via run_report) reflect work
  // avoided by request coalescing as well as by lookups.
  void NoteCoalescedExtractions(uint64_t count) const {
    cache_.NoteCoalescedFills(count);
  }

 private:
  struct StageCounters {
    std::atomic<uint64_t> attempts{0};
    std::atomic<uint64_t> failures{0};
    std::atomic<uint64_t> injected{0};
    std::atomic<uint64_t> timeouts{0};
    std::atomic<uint64_t> retries{0};
    std::atomic<uint64_t> recovered{0};
    std::atomic<uint64_t> degraded{0};
    std::atomic<uint64_t> wall_nanos{0};
  };

  // Runs one stage with retry + degradation semantics: `run(attempt)`
  // returns support::Result<T>; an error arm, an InjectedFault, a
  // DeadlineExceeded, or any std::exception counts a failed attempt. After
  // the last attempt the stage degrades: provenance counters are stamped
  // into `features` and nullopt is returned, never an exception.
  template <typename T, typename Fn>
  std::optional<T> GuardStage(StageKind stage, metrics::FeatureVector& features,
                              Fn&& run) const;

  // Fresh per-stage watchdog from the configured budgets.
  support::Deadline StageDeadline() const {
    return support::Deadline(options_.stage_step_budget, options_.stage_wall_ms);
  }

  // Fingerprint of every option that changes extraction output; part of the
  // cache key so differently-configured testbeds never share rows.
  uint64_t OptionsFingerprint() const;

  // True when the function-granular path is in effect: enabled by options
  // and no fault site is armed (fault runs use the module-level path
  // verbatim, preserving injection semantics).
  bool GranularActive() const;

  // One app row from already-materialized sources (Collect's resume path
  // re-extracts through this after a digest mismatch).
  AppRecord ExtractRecordFromFiles(
      const corpus::AppSpec& spec,
      const std::vector<metrics::SourceFile>& files) const;

  // Granular-path stage bodies; each replicates the module-level fold
  // op-for-op and is bit-identical to it (tests/incremental_test).
  metrics::FeatureVector GranularAppFeatures(
      const std::vector<metrics::SourceFile>& files) const;
  metrics::FeatureVector GranularDataflow(const lang::IrModule& module,
                                          const FileFunctionIndex& index,
                                          support::Deadline* deadline) const;
  metrics::FeatureVector GranularIntervals(const lang::IrModule& module,
                                           const FileFunctionIndex& index,
                                           support::Deadline* deadline) const;
  metrics::FeatureVector GranularSymexec(const lang::IrModule& module,
                                         const FileFunctionIndex& index,
                                         int attempt) const;
  metrics::FeatureVector GranularDynamic(const lang::IrModule& module,
                                         const FileFunctionIndex& index,
                                         uint64_t seed,
                                         support::Deadline* deadline) const;

  const corpus::EcosystemGenerator& ecosystem_;
  TestbedOptions options_;
  mutable FeatureCache cache_;
  // Function-granular tiers (see incremental.h): parse artifacts, per-file
  // metric vectors, and per-function/per-entry analysis payloads.
  mutable AstCache ast_cache_;
  mutable FeatureCache file_cache_;
  mutable RowCache fn_cache_;
  // Indexed by StageKind; the per-request stages (features, predict) stay
  // zero here — the scheduler accounts for them in its own stats.
  mutable std::array<StageCounters, kStageKindCount> stage_counters_;
  mutable std::atomic<uint64_t> apps_total_{0};
  mutable std::atomic<uint64_t> apps_from_checkpoint_{0};
  mutable std::atomic<uint64_t> checkpoint_appends_{0};
  mutable std::atomic<uint64_t> checkpoint_dropped_{0};
  mutable std::atomic<uint64_t> checkpoint_stale_{0};
  // IncrementalStats counters.
  mutable std::atomic<uint64_t> file_rows_computed_{0};
  mutable std::atomic<uint64_t> file_rows_reused_{0};
  mutable std::atomic<uint64_t> fn_dataflow_computed_{0};
  mutable std::atomic<uint64_t> fn_dataflow_reused_{0};
  mutable std::atomic<uint64_t> fn_intervals_computed_{0};
  mutable std::atomic<uint64_t> fn_intervals_reused_{0};
  mutable std::atomic<uint64_t> symexec_entries_computed_{0};
  mutable std::atomic<uint64_t> symexec_entries_reused_{0};
  mutable std::atomic<uint64_t> dynamic_files_computed_{0};
  mutable std::atomic<uint64_t> dynamic_files_reused_{0};
};

}  // namespace clair

#endif  // SRC_CLAIR_TESTBED_H_
