// The testbed of §5.1: selects applications with a converging CVE history,
// runs the full static-analysis battery over their sources, and joins the
// resulting feature vectors with per-app CVE label summaries.
#ifndef SRC_CLAIR_TESTBED_H_
#define SRC_CLAIR_TESTBED_H_

#include <string>
#include <vector>

#include "src/clair/feature_cache.h"
#include "src/corpus/ecosystem.h"
#include "src/cvedb/cvedb.h"
#include "src/metrics/extract.h"
#include "src/symexec/executor.h"

namespace clair {

struct TestbedOptions {
  double min_history_years = 5.0;  // The paper's selection policy.
  bool with_dataflow = true;
  bool with_symexec = true;
  // §5.3's "one potential improvement is to collect dynamic traces": run the
  // concrete interpreter over random inputs and derive dynamic.* features
  // (fault rate, branch density, sink activity).
  bool with_dynamic = true;
  int dynamic_trials = 8;
  uint64_t dynamic_seed = 0xd1a9;
  // Deeper analyses (dataflow, intervals, symexec, dynamic traces) run on a
  // bounded sample of each app's files; text-level and parse-level metrics
  // always cover every file. Budget policy: the first
  // `deep_analysis_max_files` MiniC files *in file order* consume the
  // budget whether or not they parse and lower — a file that fails to parse
  // spends its slot and contributes nothing. This keeps per-app deep cost
  // bounded by the option alone and keeps per-file seeds stable under
  // failures. The features report both sides: `deep.files_attempted`
  // (budget consumed) and `deep.files_analyzed` (successfully analysed).
  int deep_analysis_max_files = 3;
  // Worker count for the corpus sweep in Collect(): one task per app.
  // 0 = the process default (CLAIR_THREADS, else hardware_concurrency);
  // 1 = exact serial behaviour. Results are bit-identical at any setting.
  int threads = 0;
  // Content-addressed caching of finished feature rows (see
  // feature_cache.h); repeated extraction of identical sources is a lookup.
  bool cache_features = true;
  symx::SymExecOptions symexec = TightSymexecDefaults();

  static symx::SymExecOptions TightSymexecDefaults() {
    symx::SymExecOptions options;
    options.max_paths = 48;
    options.max_steps_per_path = 1024;
    options.max_total_steps = 1 << 14;
    options.max_solver_queries = 256;
    options.solver_conflict_budget = 1000;
    options.max_expr_nodes = 256;
    options.exploit_sample_trials = 128;
    options.exploit_exact_cap = 16;
    return options;
  }
};

// One application's joined (features, labels) row.
struct AppRecord {
  std::string name;
  metrics::FeatureVector features;
  cvedb::AppSummary labels;
};

class Testbed {
 public:
  Testbed(const corpus::EcosystemGenerator& ecosystem, TestbedOptions options = {});

  // Extracts the full feature vector for an arbitrary set of source files
  // (also used by the evaluator on developer code).
  metrics::FeatureVector ExtractFeatures(
      const std::vector<metrics::SourceFile>& files) const;

  // Runs selection + extraction + label join over the whole ecosystem, one
  // parallel task per app (TestbedOptions::threads). Deterministic and
  // bit-identical across worker counts; order follows the database's sorted
  // app names.
  std::vector<AppRecord> Collect() const;

  const TestbedOptions& options() const { return options_; }

  // Hit/miss counters of the feature-row cache (zeros when disabled).
  FeatureCacheStats cache_stats() const { return cache_.stats(); }

 private:
  // Fingerprint of every option that changes extraction output; part of the
  // cache key so differently-configured testbeds never share rows.
  uint64_t OptionsFingerprint() const;

  const corpus::EcosystemGenerator& ecosystem_;
  TestbedOptions options_;
  mutable FeatureCache cache_;
};

}  // namespace clair

#endif  // SRC_CLAIR_TESTBED_H_
