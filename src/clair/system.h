// Whole-system evaluation — the paper's §5.3 future-work question: "can we
// use the same approach of evaluating application programs to evaluate whole
// systems? We expect that total system security is dependent upon the
// weakest link, although factors such as which applications are
// network-facing have a role as well."
//
// A system is a set of components (applications with their sources) tagged
// with deployment facts: network exposure and whether the component crosses
// a protection boundary (runs privileged). Component risks come from the
// per-application evaluator; the system score composes them with
// exposure-weighted weakest-link semantics.
#ifndef SRC_CLAIR_SYSTEM_H_
#define SRC_CLAIR_SYSTEM_H_

#include <string>
#include <vector>

#include "src/clair/evaluator.h"

namespace clair {

struct SystemComponent {
  std::string name;
  std::vector<metrics::SourceFile> files;
  bool network_facing = false;
  bool privileged = false;  // Crosses a hardware/user protection boundary.
};

struct ComponentAssessment {
  SecurityReport report;
  double exposure = 1.0;       // Deployment multiplier applied to raw risk.
  double exposed_risk = 0.0;   // min(report.overall_risk * exposure, 1).
  bool network_facing = false;
  bool privileged = false;
};

struct SystemReport {
  std::vector<ComponentAssessment> components;  // Sorted, riskiest first.
  std::string weakest_link;   // Component with the highest exposed risk.
  double weakest_risk = 0.0;
  // Composition under component independence:
  // 1 - prod_i (1 - exposed_risk_i). Dominated by the weakest link, as the
  // paper expects, but sensitive to breadth too.
  double system_risk = 0.0;

  std::string ToString() const;
};

class SystemEvaluator {
 public:
  explicit SystemEvaluator(const SecurityEvaluator& evaluator) : evaluator_(evaluator) {}

  SystemReport Evaluate(const std::vector<SystemComponent>& components) const;

  // Exposure model: network-facing components carry full weight; purely
  // local ones are discounted; privileged components are amplified because
  // a compromise crosses a protection boundary.
  static double ExposureOf(bool network_facing, bool privileged);

 private:
  const SecurityEvaluator& evaluator_;
};

}  // namespace clair

#endif  // SRC_CLAIR_SYSTEM_H_
