#include "src/clair/serialize.h"

#include <cstdlib>

#include "src/support/strings.h"

namespace clair {

using support::Error;

std::string SaveRecords(const std::vector<AppRecord>& records) {
  std::string out;
  for (const auto& record : records) {
    out += "[app]\n";
    out += "name=" + record.name + "\n";
    if (record.source_digest != 0) {
      // Content digest of the extraction sources; checkpoint resume uses it
      // to detect version drift. Omitted at zero so records built without a
      // digest round-trip byte-identically.
      out += support::Format("source=%016llx\n",
                             static_cast<unsigned long long>(record.source_digest));
    }
    const auto& labels = record.labels;
    out += support::Format("label.total=%d\n", labels.total);
    out += support::Format("label.critical=%d\n", labels.critical);
    out += support::Format("label.high_or_worse=%d\n", labels.high_or_worse);
    out += support::Format("label.network_vector=%d\n", labels.network_vector);
    out += support::Format("label.low_complexity=%d\n", labels.low_complexity);
    out += support::Format("label.no_privileges=%d\n", labels.no_privileges);
    out += support::Format("label.high_confidentiality=%d\n", labels.high_confidentiality);
    out += support::Format("label.first=%d\n", labels.first);
    out += support::Format("label.last=%d\n", labels.last);
    out += support::Format("label.max_score=%.17g\n", labels.max_score);
    out += support::Format("label.mean_score=%.17g\n", labels.mean_score);
    for (const auto& [cwe, count] : labels.by_cwe) {
      out += support::Format("label.cwe.%d=%d\n", cwe, count);
    }
    for (const auto& [name, value] : record.features.values()) {
      out += support::Format("feature.%s=%.17g\n", name.c_str(), value);
    }
  }
  return out;
}

support::Result<std::vector<AppRecord>> LoadRecords(std::string_view text) {
  std::vector<AppRecord> records;
  AppRecord* current = nullptr;
  int line_no = 0;
  for (const auto& raw_line : support::Split(text, '\n')) {
    ++line_no;
    const auto line = support::Trim(raw_line);
    if (line.empty()) {
      continue;
    }
    if (line == "[app]") {
      records.emplace_back();
      current = &records.back();
      continue;
    }
    if (current == nullptr) {
      return Error(Error::Code::kParseError,
                   support::Format("line %d: field before [app] header", line_no));
    }
    const size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Error(Error::Code::kParseError,
                   support::Format("line %d: expected key=value", line_no));
    }
    const std::string key(line.substr(0, eq));
    const std::string value(line.substr(eq + 1));
    auto parse_int = [&](int& out) -> bool {
      const auto parsed = support::ParseInt(value);
      if (!parsed) {
        return false;
      }
      out = static_cast<int>(*parsed);
      return true;
    };
    bool ok = true;
    if (key == "name") {
      current->name = value;
      current->labels.app = value;
    } else if (key == "source") {
      char* end = nullptr;
      current->source_digest = std::strtoull(value.c_str(), &end, 16);
      ok = !value.empty() && end != nullptr && *end == '\0';
    } else if (key == "label.total") {
      ok = parse_int(current->labels.total);
    } else if (key == "label.critical") {
      ok = parse_int(current->labels.critical);
    } else if (key == "label.high_or_worse") {
      ok = parse_int(current->labels.high_or_worse);
    } else if (key == "label.network_vector") {
      ok = parse_int(current->labels.network_vector);
    } else if (key == "label.low_complexity") {
      ok = parse_int(current->labels.low_complexity);
    } else if (key == "label.no_privileges") {
      ok = parse_int(current->labels.no_privileges);
    } else if (key == "label.high_confidentiality") {
      ok = parse_int(current->labels.high_confidentiality);
    } else if (key == "label.first") {
      int v;
      ok = parse_int(v);
      current->labels.first = v;
    } else if (key == "label.last") {
      int v;
      ok = parse_int(v);
      current->labels.last = v;
    } else if (key == "label.max_score") {
      const auto parsed = support::ParseDouble(value);
      ok = parsed.has_value();
      if (ok) {
        current->labels.max_score = *parsed;
      }
    } else if (key == "label.mean_score") {
      const auto parsed = support::ParseDouble(value);
      ok = parsed.has_value();
      if (ok) {
        current->labels.mean_score = *parsed;
      }
    } else if (support::StartsWith(key, "label.cwe.")) {
      const auto cwe = support::ParseInt(key.substr(10));
      const auto count = support::ParseInt(value);
      ok = cwe.has_value() && count.has_value();
      if (ok) {
        current->labels.by_cwe[static_cast<int>(*cwe)] = static_cast<int>(*count);
      }
    } else if (support::StartsWith(key, "feature.")) {
      const auto parsed = support::ParseDouble(value);
      ok = parsed.has_value();
      if (ok) {
        current->features.Set(key.substr(8), *parsed);
      }
    } else {
      return Error(Error::Code::kParseError,
                   support::Format("line %d: unknown key '%s'", line_no, key.c_str()));
    }
    if (!ok) {
      return Error(Error::Code::kParseError,
                   support::Format("line %d: bad value for '%s'", line_no, key.c_str()));
    }
  }
  return records;
}

std::string SaveCheckpointRecord(const AppRecord& record) {
  const std::string block = SaveRecords({record});
  return block + support::Format(
                     "crc=%016llx\n",
                     static_cast<unsigned long long>(Fnv1a64(block)));
}

std::vector<AppRecord> LoadCheckpoint(std::string_view text,
                                      CheckpointLoadStats* stats) {
  CheckpointLoadStats local;
  std::vector<AppRecord> records;
  std::string block;
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t eol = text.find('\n', pos);
    // A line without a terminating newline is a mid-write truncation: the
    // block it belongs to is incomplete by definition, so stop here.
    if (eol == std::string_view::npos) {
      block += text.substr(pos);
      pos = text.size();
      break;
    }
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (support::StartsWith(line, "crc=")) {
      const std::string digits(line.substr(4));
      char* end = nullptr;
      const unsigned long long crc = std::strtoull(digits.c_str(), &end, 16);
      const bool crc_ok = end != nullptr && *end == '\0' && !digits.empty() &&
                          crc == Fnv1a64(block);
      bool parsed_ok = false;
      if (crc_ok) {
        auto parsed = LoadRecords(block);
        if (parsed.ok() && parsed.value().size() == 1) {
          records.push_back(std::move(parsed.value().front()));
          ++local.complete_records;
          parsed_ok = true;
        }
      }
      if (!parsed_ok) {
        ++local.dropped_blocks;
      }
      block.clear();
    } else {
      // "[app]" starts a new block; pending lines without a crc are an
      // orphaned partial write (e.g. a kill mid-line followed by appends
      // from the resumed sweep) — drop them, keep the new block intact.
      if (line == "[app]" && !block.empty()) {
        ++local.dropped_blocks;
        block.clear();
      }
      block += line;
      block += '\n';
    }
  }
  if (!block.empty()) {
    ++local.dropped_blocks;  // Truncated tail without its crc line.
  }
  if (stats != nullptr) {
    *stats = local;
  }
  return records;
}

}  // namespace clair
