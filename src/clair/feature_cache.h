// Content-addressed cache of extracted feature rows.
//
// Feature extraction is a pure function of (source text, extraction
// options), so repeated evaluations of identical inputs — version deltas
// where most files are unchanged between runs, library comparisons rerun
// across sessions, CI gates re-evaluating an unchanged baseline — can skip
// the full static-analysis battery. Keys are 64-bit FNV-1a digests of every
// file's path, language, and text plus a fingerprint of the extraction
// options; values are the finished per-app FeatureVector. The cache is
// thread-safe (the testbed sweep runs one task per app on the parallel
// runtime) and exposes hit/miss counters for the throughput bench.
#ifndef SRC_CLAIR_FEATURE_CACHE_H_
#define SRC_CLAIR_FEATURE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/metrics/extract.h"
#include "src/metrics/feature_vector.h"

namespace clair {

// Incremental FNV-1a over bytes; `seed` chains multi-part digests.
uint64_t Fnv1a64(std::string_view bytes, uint64_t seed = 0xcbf29ce484222325ULL);

// Digest of an extraction subject: every file's identity and full text.
// Order-sensitive by design — file order affects deep-analysis budgeting.
uint64_t HashSourceFiles(const std::vector<metrics::SourceFile>& files,
                         uint64_t options_fingerprint);

// Row checksum used by the integrity guard: a digest of every (name, value)
// pair, stored beside the row at insert time and re-verified on lookup.
uint64_t ChecksumFeatures(const metrics::FeatureVector& features);

struct FeatureCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t entries = 0;
  // Cached rows rejected by the lookup-time integrity guard (checksum
  // mismatch or an injected cache fault); each reject is also a miss, so the
  // caller transparently recomputed the row.
  uint64_t integrity_rejects = 0;
  // Extractions avoided by request coalescing: duplicate in-flight requests
  // the serving scheduler routed to a single cache fill instead of extracting
  // independently (see Testbed::NoteCoalescedExtractions). Not part of
  // hits/misses — the coalesced requests never performed a lookup.
  uint64_t coalesced_fills = 0;

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
  }
};

class FeatureCache {
 public:
  // `max_entries` bounds memory; inserts beyond the bound are dropped (the
  // corpus working set is far smaller, so eviction machinery isn't worth it).
  explicit FeatureCache(size_t max_entries = 1 << 16) : max_entries_(max_entries) {}

  // Returns true and fills `out` on a valid hit. A stored row that fails the
  // integrity check is evicted and counted as integrity_rejects + a miss, so
  // the caller falls back to recomputation instead of consuming a corrupt
  // row. Counts a plain miss otherwise.
  bool Lookup(uint64_t key, metrics::FeatureVector* out) const;

  void Insert(uint64_t key, const metrics::FeatureVector& features);

  FeatureCacheStats stats() const;

  // Credits `count` coalesced fills (see FeatureCacheStats::coalesced_fills).
  void NoteCoalescedFills(uint64_t count) {
    coalesced_fills_.fetch_add(count, std::memory_order_relaxed);
  }

  void Clear();

  // Test scaffolding: silently mutates the stored row (leaving its checksum
  // stale) so tests can prove the integrity guard fires. Returns false when
  // the key is absent.
  bool CorruptEntryForTest(uint64_t key);

 private:
  struct Entry {
    metrics::FeatureVector features;
    uint64_t checksum = 0;
  };

  size_t max_entries_;
  mutable std::mutex mutex_;
  mutable std::unordered_map<uint64_t, Entry> entries_;
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  mutable std::atomic<uint64_t> integrity_rejects_{0};
  mutable std::atomic<uint64_t> coalesced_fills_{0};
};

}  // namespace clair

#endif  // SRC_CLAIR_FEATURE_CACHE_H_
