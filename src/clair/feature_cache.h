// Content-addressed caches of extracted feature rows.
//
// Feature extraction is a pure function of (source text, extraction
// options), so repeated evaluations of identical inputs — version deltas
// where most files are unchanged between runs, library comparisons rerun
// across sessions, CI gates re-evaluating an unchanged baseline — can skip
// the full static-analysis battery. Keys are 64-bit FNV-1a digests of every
// file's path, language, and text plus a fingerprint of the extraction
// options; values are the finished per-app FeatureVector. The cache is
// thread-safe (the testbed sweep runs one task per app on the parallel
// runtime) and exposes hit/miss counters for the throughput bench.
//
// Two granularities share the machinery:
//   - FeatureCache: FeatureVector values — whole-app rows (the L1 the
//     testbed consults before extracting) and per-file metric vectors.
//   - RowCache: flat vector<double> payloads — per-function analysis
//     results (dataflow, intervals, symexec entries) keyed by normalized
//     function-body token hashes, and fixed-schema function-rank rows.
//
// Both bound memory with byte-size accounting plus deterministic FIFO
// eviction (insertion order; evictions are surfaced in stats so unbounded
// growth of the function-granular tier is visible, never silent).
#ifndef SRC_CLAIR_FEATURE_CACHE_H_
#define SRC_CLAIR_FEATURE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/metrics/extract.h"
#include "src/metrics/feature_vector.h"

namespace clair {

// Incremental FNV-1a over bytes; `seed` chains multi-part digests.
uint64_t Fnv1a64(std::string_view bytes, uint64_t seed = 0xcbf29ce484222325ULL);

// Digest of an extraction subject: every file's identity and full text.
// Order-sensitive by design — file order affects deep-analysis budgeting.
uint64_t HashSourceFiles(const std::vector<metrics::SourceFile>& files,
                         uint64_t options_fingerprint);

// Row checksum used by the integrity guard: a digest of every (name, value)
// pair, stored beside the row at insert time and re-verified on lookup.
uint64_t ChecksumFeatures(const metrics::FeatureVector& features);

// Checksum of a flat payload row (RowCache's integrity guard).
uint64_t ChecksumRow(const std::vector<double>& row);

struct FeatureCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t entries = 0;
  // Approximate resident bytes of the cached values (names + payloads +
  // fixed per-entry overhead).
  uint64_t bytes = 0;
  // Entries removed by the FIFO capacity policy (max_entries / max_bytes).
  // Not integrity rejects: an evicted row was valid, just old.
  uint64_t evictions = 0;
  // Cached rows rejected by the lookup-time integrity guard (checksum
  // mismatch or an injected cache fault); each reject is also a miss, so the
  // caller transparently recomputed the row.
  uint64_t integrity_rejects = 0;
  // Extractions avoided by request coalescing: duplicate in-flight requests
  // the serving scheduler routed to a single cache fill instead of extracting
  // independently (see Testbed::NoteCoalescedExtractions). Not part of
  // hits/misses — the coalesced requests never performed a lookup.
  uint64_t coalesced_fills = 0;

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
  }
};

class FeatureCache {
 public:
  // `max_entries` bounds entry count; `max_bytes` (0 = unbounded) bounds the
  // approximate resident size. Exceeding either bound evicts the oldest
  // entries first (deterministic FIFO in insertion order).
  explicit FeatureCache(size_t max_entries = 1 << 16, size_t max_bytes = 0)
      : max_entries_(max_entries), max_bytes_(max_bytes) {}

  // Returns true and fills `out` on a valid hit. A stored row that fails the
  // integrity check is evicted and counted as integrity_rejects + a miss, so
  // the caller falls back to recomputation instead of consuming a corrupt
  // row. Counts a plain miss otherwise.
  bool Lookup(uint64_t key, metrics::FeatureVector* out) const;

  void Insert(uint64_t key, const metrics::FeatureVector& features);

  FeatureCacheStats stats() const;

  // Credits `count` coalesced fills (see FeatureCacheStats::coalesced_fills).
  void NoteCoalescedFills(uint64_t count) {
    coalesced_fills_.fetch_add(count, std::memory_order_relaxed);
  }

  void Clear();

  // Test scaffolding: silently mutates the stored row (leaving its checksum
  // stale) so tests can prove the integrity guard fires. Returns false when
  // the key is absent.
  bool CorruptEntryForTest(uint64_t key);

 private:
  struct Entry {
    metrics::FeatureVector features;
    uint64_t checksum = 0;
    uint64_t bytes = 0;
  };

  void EvictOverCapLocked();

  size_t max_entries_;
  size_t max_bytes_;
  mutable std::mutex mutex_;
  mutable std::unordered_map<uint64_t, Entry> entries_;
  // Insertion order; erased keys (integrity rejects) leave stale entries
  // that the eviction sweep skips.
  mutable std::deque<uint64_t> order_;
  mutable uint64_t bytes_ = 0;
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  mutable std::atomic<uint64_t> evictions_{0};
  mutable std::atomic<uint64_t> integrity_rejects_{0};
  mutable std::atomic<uint64_t> coalesced_fills_{0};
};

// Function-granular payload cache: flat vector<double> rows keyed by
// normalized body-token hashes (see incremental.h). Same integrity guard,
// stats surface, and FIFO capacity policy as FeatureCache; payloads are
// positional (the caller owns the schema), which keeps per-function entries
// an order of magnitude smaller than named FeatureVectors.
class RowCache {
 public:
  explicit RowCache(size_t max_entries = 1 << 18, size_t max_bytes = 0)
      : max_entries_(max_entries), max_bytes_(max_bytes) {}

  bool Lookup(uint64_t key, std::vector<double>* out) const;

  void Insert(uint64_t key, const std::vector<double>& row);

  FeatureCacheStats stats() const;

  void Clear();

 private:
  struct Entry {
    std::vector<double> row;
    uint64_t checksum = 0;
    uint64_t bytes = 0;
  };

  void EvictOverCapLocked();

  size_t max_entries_;
  size_t max_bytes_;
  mutable std::mutex mutex_;
  mutable std::unordered_map<uint64_t, Entry> entries_;
  mutable std::deque<uint64_t> order_;
  mutable uint64_t bytes_ = 0;
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  mutable std::atomic<uint64_t> evictions_{0};
  mutable std::atomic<uint64_t> integrity_rejects_{0};
};

}  // namespace clair

#endif  // SRC_CLAIR_FEATURE_CACHE_H_
