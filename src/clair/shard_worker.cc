#include "src/clair/shard_worker.h"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <sstream>
#include <thread>
#include <utility>

#include "src/clair/serialize.h"
#include "src/metrics/extract.h"
#include "src/support/fault_injection.h"
#include "src/support/strings.h"

namespace clair {

namespace {

using support::Error;
using support::Result;

// Salt for worker-crash subject keys: the verdict must depend only on which
// app the worker is committing (plus the generation as attempt salt), never
// on shard layout, so the same CLAIR_FAULTS config kills the same commits
// at any shard or worker count.
constexpr std::string_view kCrashKeySalt = "clair.shard.crash.v1";

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

std::string SaveShardTask(const ShardTask& task) {
  std::string out = "[shard_task]\n";
  out += support::Format("shard=%d\n", task.shard);
  out += support::Format("generation=%d\n", task.generation);
  out += support::Format("allow_crash=%d\n", task.allow_crash ? 1 : 0);
  out += support::Format("heartbeat_fd=%d\n", task.heartbeat_fd);
  out += "checkpoint=" + task.checkpoint_path + "\n";
  out += "store=" + task.store_path + "\n";
  out += "report=" + task.report_path + "\n";
  out += "faults=" + task.fault_config + "\n";
  for (const auto& app : task.apps) {
    out += "app=" + app + "\n";
  }
  return out;
}

Result<ShardTask> LoadShardTask(std::string_view text) {
  ShardTask task;
  bool saw_header = false;
  size_t line_number = 0;
  for (const auto& raw : support::Split(text, '\n')) {
    ++line_number;
    const std::string_view line = support::Trim(raw);
    if (line.empty()) {
      continue;
    }
    if (line == "[shard_task]") {
      saw_header = true;
      continue;
    }
    const size_t eq = line.find('=');
    if (!saw_header || eq == std::string_view::npos) {
      return Error(Error::Code::kParseError,
                   support::Format("shard task line %zu: expected key=value",
                                   line_number));
    }
    const std::string_view key = line.substr(0, eq);
    const std::string_view value = line.substr(eq + 1);
    if (key == "shard" || key == "generation" || key == "allow_crash" ||
        key == "heartbeat_fd") {
      const auto parsed = support::ParseInt(value);
      if (!parsed.has_value()) {
        return Error(Error::Code::kParseError,
                     support::Format("shard task line %zu: bad integer", line_number));
      }
      const int number = static_cast<int>(*parsed);
      if (key == "shard") {
        task.shard = number;
      } else if (key == "generation") {
        task.generation = number;
      } else if (key == "allow_crash") {
        task.allow_crash = number != 0;
      } else {
        task.heartbeat_fd = number;
      }
    } else if (key == "checkpoint") {
      task.checkpoint_path = std::string(value);
    } else if (key == "store") {
      task.store_path = std::string(value);
    } else if (key == "report") {
      task.report_path = std::string(value);
    } else if (key == "faults") {
      task.fault_config = std::string(value);
    } else if (key == "app") {
      task.apps.emplace_back(value);
    } else {
      return Error(Error::Code::kParseError,
                   support::Format("shard task line %zu: unknown key", line_number));
    }
  }
  if (!saw_header) {
    return Error(Error::Code::kParseError, "missing [shard_task] header");
  }
  return task;
}

Result<std::unique_ptr<ShardWorkerRun>> ShardWorkerRun::Create(
    const corpus::EcosystemGenerator& ecosystem, const TestbedOptions& options,
    ShardTask task) {
  std::unique_ptr<ShardWorkerRun> run(
      new ShardWorkerRun(ecosystem, options, std::move(task)));
  if (auto failed = run->Init(); failed.has_value()) {
    return failed->Wrap(support::Format("shard %d g%d", run->task_.shard,
                                        run->task_.generation));
  }
  return run;
}

ShardWorkerRun::ShardWorkerRun(const corpus::EcosystemGenerator& ecosystem,
                               const TestbedOptions& options, ShardTask task)
    : ecosystem_(ecosystem), task_(std::move(task)), testbed_(ecosystem, [&] {
        // Workers never nest their own checkpoint stream — the shard
        // checkpoint is managed here, block by block.
        TestbedOptions worker_options = options;
        worker_options.checkpoint_path.clear();
        return worker_options;
      }()) {}

std::optional<Error> ShardWorkerRun::Init() {
  specs_.reserve(task_.apps.size());
  for (const auto& app : task_.apps) {
    const corpus::AppSpec* spec = ecosystem_.FindSpec(app);
    if (spec == nullptr) {
      return Error(Error::Code::kNotFound, "unknown app in shard task: " + app);
    }
    specs_.push_back(spec);
  }
  if (task_.checkpoint_path.empty()) {
    return Error(Error::Code::kInvalidArgument, "shard task without checkpoint path");
  }
  // Resume: every intact block a previous generation committed stays
  // committed; torn tails and corrupt blocks are dropped (and counted) and
  // their apps recomputed, exactly like Testbed::Collect's resume.
  const std::string existing = ReadFileOrEmpty(task_.checkpoint_path);
  CheckpointLoadStats load_stats;
  for (const auto& record : LoadCheckpoint(existing, &load_stats)) {
    resumed_.insert(record.name);
  }
  stats_.dropped_blocks = load_stats.dropped_blocks;
  stats_.apps_resumed = 0;  // Counted per app in Step (names outside the
                            // shard never match, so stray blocks are inert).
  checkpoint_.open(task_.checkpoint_path, std::ios::binary | std::ios::app);
  if (!checkpoint_) {
    return Error(Error::Code::kInvalidArgument,
                 "cannot append to checkpoint: " + task_.checkpoint_path);
  }
  if (!existing.empty() && existing.back() != '\n') {
    // Close the torn line a mid-write death left behind so the next block
    // starts clean; the tolerant loader drops the orphan.
    checkpoint_ << '\n';
    checkpoint_.flush();
  }
  if (!task_.store_path.empty()) {
    // Per-generation stores are merge fodder: the coordinator replays their
    // raw rows through one fleet writer, so codes (the binning pass) would
    // be dead weight here.
    ml::FeatureStoreOptions store_options;
    store_options.write_codes = false;
    auto writer = ml::FeatureStoreWriter::Create(
        task_.store_path, metrics::FunctionFeatureNames(), FunctionClassNames(),
        store_options);
    if (!writer.ok()) {
      return writer.error().Wrap("opening shard store");
    }
    writer_ = std::move(writer).value();
  }
  if (task_.apps.empty()) {
    // Degenerate shard: nothing to sweep, finalize on the first Step.
    next_ = 0;
  }
  return std::nullopt;
}

ShardWorkerRun::Status ShardWorkerRun::Step() {
  if (status_ != Status::kRunning) {
    return status_;
  }
  if (next_ >= task_.apps.size()) {
    status_ = Finalize();
    return status_;
  }
  const std::string& app = task_.apps[next_];
  const corpus::AppSpec& spec = *specs_[next_];
  ++next_;
  // Function rows stream for *every* shard app, resumed or not: the
  // generation store is atomic (only a Finish()ed store is readable), so
  // the finishing generation must carry the whole shard's rows itself.
  if (writer_ != nullptr) {
    for (const auto& row : ExtractAppFunctionRows(ecosystem_, spec)) {
      writer_->Append(row.name, row.values, row.target);
      ++stats_.function_rows;
    }
  }
  if (resumed_.count(app) > 0) {
    ++stats_.apps_resumed;
  } else {
    AppRecord record = testbed_.ExtractRecord(spec);
    const std::string block = SaveCheckpointRecord(record);
    const auto& faults = support::FaultInjector::Global();
    if (task_.allow_crash &&
        faults.ShouldFail(support::FaultSite::kWorkerCrash,
                          support::FaultKey(app, support::FaultKey(kCrashKeySalt)),
                          static_cast<uint32_t>(task_.generation))) {
      // Die mid-commit: half a block, no trailing newline — the same wound
      // a SIGKILL between write() and flush leaves. The app is NOT durable;
      // whoever steals the shard recomputes it.
      checkpoint_ << block.substr(0, block.size() / 2);
      checkpoint_.flush();
      status_ = Status::kCrashed;
      return status_;
    }
    checkpoint_ << block;
    checkpoint_.flush();
    ++stats_.apps_done;
  }
  if (task_.heartbeat_fd >= 0) {
    const char beat = '.';
    // Best-effort: a closed pipe just means the supervisor already gave up
    // on us; the sweep itself must not care.
    [[maybe_unused]] const ssize_t n = ::write(task_.heartbeat_fd, &beat, 1);
  }
  if (next_ >= task_.apps.size()) {
    status_ = Finalize();
  }
  return status_;
}

ShardWorkerRun::Status ShardWorkerRun::Finalize() {
  if (writer_ != nullptr) {
    if (auto finished = writer_->Finish(); !finished.ok()) {
      return Status::kCrashed;  // Unreadable store == this generation died.
    }
  }
  if (!task_.report_path.empty()) {
    // The worker's slice of the fleet report: the live stage taxonomy from
    // its own extractions plus shard-level sweep accounting.
    RunReport report = testbed_.run_report();
    report.apps_total = task_.apps.size();
    report.apps_from_checkpoint = stats_.apps_resumed;
    report.checkpoint_appends = stats_.apps_done;
    report.checkpoint_dropped_blocks = stats_.dropped_blocks;
    std::ofstream out(task_.report_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::kCrashed;
    }
    out << SaveRunReport(report);
    out.flush();
    if (!out) {
      return Status::kCrashed;
    }
  }
  return Status::kDone;
}

SimulatedWorkerTransport::SimulatedWorkerTransport(
    const corpus::EcosystemGenerator& ecosystem, const TestbedOptions& options,
    int num_workers, int apps_per_tick)
    : ecosystem_(ecosystem),
      options_(options),
      num_workers_(num_workers < 1 ? 1 : num_workers),
      apps_per_tick_(apps_per_tick < 1 ? 1 : apps_per_tick) {}

Result<int> SimulatedWorkerTransport::Spawn(const ShardTask& task) {
  if (static_cast<int>(live_.size()) >= num_workers_) {
    return Error(Error::Code::kResourceExhausted, "no free worker slot");
  }
  auto run = ShardWorkerRun::Create(ecosystem_, options_, task);
  if (!run.ok()) {
    return run.error();
  }
  const int slot = next_slot_++;
  live_.emplace(slot, std::move(run).value());
  return slot;
}

std::vector<WorkerEvent> SimulatedWorkerTransport::Poll() {
  std::vector<WorkerEvent> events;
  // Slot order, fixed steps per slot: the interleaving is a pure function
  // of spawn order, so chaos schedules replay bit-identically.
  for (auto it = live_.begin(); it != live_.end();) {
    const int slot = it->first;
    ShardWorkerRun& run = *it->second;
    bool exited = false;
    for (int step = 0; step < apps_per_tick_ && !exited; ++step) {
      switch (run.Step()) {
        case ShardWorkerRun::Status::kRunning:
          events.push_back({WorkerEvent::Kind::kHeartbeat, slot, 0});
          break;
        case ShardWorkerRun::Status::kDone:
          events.push_back({WorkerEvent::Kind::kExit, slot, 0});
          exited = true;
          break;
        case ShardWorkerRun::Status::kCrashed:
          events.push_back({WorkerEvent::Kind::kExit, slot, 2});
          exited = true;
          break;
      }
    }
    it = exited ? live_.erase(it) : std::next(it);
  }
  return events;
}

void SimulatedWorkerTransport::Kill(int slot) { live_.erase(slot); }

ForkWorkerTransport::ForkWorkerTransport(std::string executable, int num_workers,
                                         int tick_sleep_ms)
    : executable_(std::move(executable)),
      num_workers_(num_workers < 1 ? 1 : num_workers),
      tick_sleep_ms_(tick_sleep_ms < 0 ? 0 : tick_sleep_ms) {}

ForkWorkerTransport::~ForkWorkerTransport() {
  for (auto& [slot, child] : live_) {
    ::kill(child.pid, SIGKILL);
    int wstatus = 0;
    ::waitpid(child.pid, &wstatus, 0);
    ::close(child.pipe_fd);
  }
}

Result<int> ForkWorkerTransport::Spawn(const ShardTask& task) {
  if (static_cast<int>(live_.size()) >= num_workers_) {
    return Error(Error::Code::kResourceExhausted, "no free worker slot");
  }
  // The task file is the only channel to the child (exec wipes the address
  // space); heartbeats come back on fd 3, the one descriptor we promise it.
  ShardTask shipped = task;
  shipped.heartbeat_fd = 3;
  const std::string task_path =
      task.checkpoint_path + support::Format(".g%d.task", task.generation);
  {
    std::ofstream out(task_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Error(Error::Code::kInvalidArgument,
                   "cannot write shard task file: " + task_path);
    }
    out << SaveShardTask(shipped);
    out.flush();
    if (!out) {
      return Error(Error::Code::kInternal, "short write on task file: " + task_path);
    }
  }
  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0) {
    return Error(Error::Code::kInternal,
                 std::string("pipe: ") + std::strerror(errno));
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return Error(Error::Code::kInternal,
                 std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    // Child: heartbeat pipe on fd 3, then become a pristine worker process.
    ::close(fds[0]);
    if (fds[1] != 3) {
      ::dup2(fds[1], 3);
      ::close(fds[1]);
    }
    const std::string flag = "--clair-shard-worker=" + task_path;
    char* const argv[] = {const_cast<char*>(executable_.c_str()),
                          const_cast<char*>(flag.c_str()), nullptr};
    ::execv(executable_.c_str(), argv);
    _exit(127);  // Exec failed; 127 per shell convention.
  }
  ::close(fds[1]);
  const int flags = ::fcntl(fds[0], F_GETFL, 0);
  ::fcntl(fds[0], F_SETFL, flags | O_NONBLOCK);
  const int slot = next_slot_++;
  live_.emplace(slot, Child{static_cast<int>(pid), fds[0], false});
  return slot;
}

std::vector<WorkerEvent> ForkWorkerTransport::Poll() {
  if (tick_sleep_ms_ > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(tick_sleep_ms_));
  }
  std::vector<WorkerEvent> events;
  for (auto it = live_.begin(); it != live_.end();) {
    const int slot = it->first;
    Child& child = it->second;
    // Drain heartbeats first so an exiting worker's final beats still renew
    // nothing after the exit event (coordinator processes in order).
    char buffer[256];
    for (;;) {
      const ssize_t n = ::read(child.pipe_fd, buffer, sizeof(buffer));
      if (n <= 0) {
        break;
      }
      for (ssize_t i = 0; i < n; ++i) {
        events.push_back({WorkerEvent::Kind::kHeartbeat, slot, 0});
      }
    }
    int wstatus = 0;
    const pid_t reaped = ::waitpid(child.pid, &wstatus, WNOHANG);
    if (reaped == child.pid) {
      int code = 1;
      if (WIFEXITED(wstatus)) {
        code = WEXITSTATUS(wstatus);
      } else if (WIFSIGNALED(wstatus)) {
        code = 128 + WTERMSIG(wstatus);
      }
      events.push_back({WorkerEvent::Kind::kExit, slot, code});
      ::close(child.pipe_fd);
      it = live_.erase(it);
    } else {
      ++it;
    }
  }
  return events;
}

void ForkWorkerTransport::Kill(int slot) {
  const auto it = live_.find(slot);
  if (it == live_.end()) {
    return;
  }
  ::kill(it->second.pid, SIGKILL);
  int wstatus = 0;
  ::waitpid(it->second.pid, &wstatus, 0);
  ::close(it->second.pipe_fd);
  live_.erase(it);
}

int ShardWorkerMain(int argc, char** argv, const corpus::EcosystemGenerator& ecosystem,
                    const TestbedOptions& options) {
  constexpr std::string_view kFlag = "--clair-shard-worker=";
  std::string task_path;
  for (int i = 1; i < argc; ++i) {
    if (support::StartsWith(argv[i], kFlag)) {
      task_path = std::string(argv[i]).substr(kFlag.size());
      break;
    }
  }
  if (task_path.empty()) {
    return -1;  // Not a worker invocation; caller proceeds as normal.
  }
  const std::string text = ReadFileOrEmpty(task_path);
  auto loaded = LoadShardTask(text);
  if (!loaded.ok()) {
    std::fprintf(stderr, "shard worker: %s\n", loaded.error().ToString().c_str());
    return 3;
  }
  ShardTask task = std::move(loaded).value();
  // The coordinator's injector config rides in the task (ScopedConfig swaps
  // the in-process global, which exec does not inherit); an empty config
  // explicitly disarms whatever CLAIR_FAULTS seeded at startup.
  auto faults = support::FaultInjector::Parse(task.fault_config);
  if (!faults.ok()) {
    std::fprintf(stderr, "shard worker: %s\n", faults.error().ToString().c_str());
    return 3;
  }
  support::FaultInjector::Global() = faults.value();
  auto run = ShardWorkerRun::Create(ecosystem, options, std::move(task));
  if (!run.ok()) {
    std::fprintf(stderr, "shard worker: %s\n", run.error().ToString().c_str());
    return 3;
  }
  while (run.value()->Step() == ShardWorkerRun::Status::kRunning) {
  }
  return run.value()->status() == ShardWorkerRun::Status::kDone ? 0 : 2;
}

}  // namespace clair
