// Failure taxonomy for a corpus sweep.
//
// The robustness layer never lets a stage failure abort an app row — it
// downgrades the stage and records what happened. RunReport is where those
// events become auditable: per-stage attempt/failure/injected/timeout/retry/
// degraded counts plus wall-clock, and sweep-level counters (checkpoint
// resumes, cache provenance). LEOPARD-style prediction quality arguments
// hinge on knowing how complete corpus coverage actually was; this report
// is that accounting.
//
// Two sources:
//   - Testbed::run_report()   — live counters from the current process
//     (includes attempts and wall-clock);
//   - SummarizeRecordRobustness(records) — folded from the rows'
//     `robust.*` provenance features, which survive serialization and the
//     feature cache, so a training run can audit rows it did not extract.
#ifndef SRC_CLAIR_RUN_REPORT_H_
#define SRC_CLAIR_RUN_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/result.h"

namespace clair {

struct AppRecord;

struct StageReport {
  uint64_t attempts = 0;   // Stage invocations, retries included.
  uint64_t failures = 0;   // Failed attempts, any cause.
  uint64_t injected = 0;   // ... of which were injected faults.
  uint64_t timeouts = 0;   // ... of which were watchdog expiries.
  uint64_t retries = 0;    // Re-attempts issued after a failure.
  uint64_t recovered = 0;  // Stages that succeeded on a retry.
  uint64_t degraded = 0;   // Stages downgraded to neutral features.
  double wall_seconds = 0.0;

  // Per-counter saturating sum (the shard coordinator folds many worker
  // reports; a poisoned counter must clamp, not wrap into a small lie).
  void Merge(const StageReport& other);
};

struct RunReport {
  // Keyed by stage name ("parse", "lower", "dataflow", "intervals",
  // "symexec", "dynamic"); sorted, deterministic iteration.
  std::map<std::string, StageReport> stages;
  uint64_t apps_total = 0;            // Rows the sweep was asked for.
  uint64_t apps_from_checkpoint = 0;  // Rows resumed, not recomputed.
  uint64_t rows_from_cache = 0;       // Cache hits: rows served, not computed.
  uint64_t checkpoint_appends = 0;    // Rows streamed to the checkpoint.
  uint64_t cache_misses = 0;          // Lookups that fell through to extraction.
  uint64_t cache_entries = 0;         // Rows resident at snapshot time.
  // Extractions avoided by the serving scheduler coalescing duplicate
  // in-flight requests onto one cache fill.
  uint64_t cache_coalesced_fills = 0;
  uint64_t cache_integrity_rejects = 0;
  // Entries removed from any cache tier (app rows, per-file vectors,
  // function-granular payloads) by the FIFO capacity policy. A hot sweep
  // with nonzero evictions is thrashing its byte budget — visible here, not
  // silent.
  uint64_t cache_evictions = 0;
  // Checkpoint blocks dropped at resume time — corrupt payloads (crc
  // mismatch, unparseable section) or a torn tail from a mid-write kill.
  // Those apps are recomputed, never lost, but the damage is surfaced here
  // instead of being silently skipped.
  uint64_t checkpoint_dropped_blocks = 0;
  // Checkpointed rows superseded because their source digest no longer
  // matched the sweep's sources (version drift); re-extracted and appended
  // last-wins.
  uint64_t checkpoint_stale_records = 0;

  uint64_t TotalFailures() const;
  uint64_t TotalDegraded() const;

  // Folds `other` into this report: per-stage taxonomy counters and the
  // sweep-level counters combine with saturating sums (wall-clock adds as a
  // double). The shard coordinator uses this to collapse per-worker reports
  // into one fleet report.
  void Merge(const RunReport& other);

  // Human-readable table (one line per stage plus sweep totals).
  std::string ToString() const;
};

// Folds the rows' `robust.<stage>_{failures,degraded,retries}` provenance
// counters into a report. Attempt counts and wall-clock are only known to
// the extracting process, so those fields stay zero here.
RunReport SummarizeRecordRobustness(const std::vector<AppRecord>& records);

// Text round-trip for shipping a report across a process boundary (a shard
// worker leaves its report next to its checkpoint; the coordinator folds
// it). Line-based `key=value`, doubles at %.17g, deterministic order.
std::string SaveRunReport(const RunReport& report);
support::Result<RunReport> LoadRunReport(std::string_view text);

}  // namespace clair

#endif  // SRC_CLAIR_RUN_REPORT_H_
