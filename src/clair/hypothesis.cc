#include "src/clair/hypothesis.h"

#include <algorithm>

#include "src/cvss/cwe.h"
#include "src/support/stats.h"

namespace clair {

CorpusStats ComputeCorpusStats(const std::vector<cvedb::AppSummary>& summaries) {
  CorpusStats stats;
  std::vector<double> totals;
  std::vector<double> rates;
  std::vector<double> high_shares;
  for (const auto& summary : summaries) {
    totals.push_back(static_cast<double>(summary.total));
    const double years = std::max(summary.HistoryYears(), 0.5);
    rates.push_back(static_cast<double>(summary.total) / years);
    if (summary.total > 0) {
      high_shares.push_back(static_cast<double>(summary.high_or_worse) / summary.total);
    }
  }
  stats.median_total_vulns = support::Median(totals);
  stats.median_vulns_per_year = support::Median(rates);
  stats.median_high_share = support::Median(high_shares);
  return stats;
}

const std::vector<Hypothesis>& StandardHypotheses() {
  static const std::vector<Hypothesis> kHypotheses = {
      {
          "cvss_gt7",
          "Does the application have high-severity vulnerabilities (CVSS > 7)?",
          {"no", "yes"},
          [](const cvedb::AppSummary& s, const CorpusStats&) {
            return s.high_or_worse > 0 ? 1 : 0;
          },
          "Prioritise a security review of the riskiest modules; consider "
          "sandboxing the process.",
      },
      {
          "av_network",
          "Is any vulnerability accessible from the network (AV = N)?",
          {"no", "yes"},
          [](const cvedb::AppSummary& s, const CorpusStats&) {
            return s.network_vector > 0 ? 1 : 0;
          },
          "Place the application behind a firewall or intrusion-protection "
          "system; reduce listening interfaces.",
      },
      {
          "cwe121",
          "Does the application suffer stack-based buffer overflows (CWE-121)?",
          {"no", "yes"},
          [](const cvedb::AppSummary& s, const CorpusStats&) {
            return s.CountCwe(cvss::kCweStackBufferOverflow) > 0 ? 1 : 0;
          },
          "Apply bounds checking on buffer writes; enable stack protectors "
          "and fortified sources.",
      },
      {
          "memory_safety",
          "Does the application have memory-safety vulnerabilities?",
          {"no", "yes"},
          [](const cvedb::AppSummary& s, const CorpusStats&) {
            for (const auto& [cwe, count] : s.by_cwe) {
              if (count > 0 &&
                  cvss::CategoryOf(cwe) == cvss::CweCategory::kMemorySafety) {
                return 1;
              }
            }
            return 0;
          },
          "Adopt bounds-checked containers and sanitizer-backed CI (ASan/MSan).",
      },
      {
          "critical",
          "Does the application have critical vulnerabilities (CVSS >= 9)?",
          {"no", "yes"},
          [](const cvedb::AppSummary& s, const CorpusStats&) {
            return s.critical > 0 ? 1 : 0;
          },
          "Institute a coordinated-disclosure process and fast-path patch "
          "releases.",
      },
      // Density hypotheses: questions about the *profile* of an app's
      // vulnerabilities rather than their existence. "Any-X" questions
      // saturate with report volume (and hence with size); these do not, so
      // they isolate the signal that only richer code properties carry.
      {
          "net_dominant",
          "Are most of the application's vulnerabilities network-reachable?",
          {"no", "yes"},
          [](const cvedb::AppSummary& s, const CorpusStats&) {
            return s.total > 0 && 2 * s.network_vector > s.total ? 1 : 0;
          },
          "Treat the network interface as the primary attack surface; fuzz "
          "protocol parsers and minimise exposed endpoints.",
      },
      {
          "mem_dominant",
          "Are most of the application's vulnerabilities memory-safety bugs?",
          {"no", "yes"},
          [](const cvedb::AppSummary& s, const CorpusStats&) {
            int memory = 0;
            for (const auto& [cwe, count] : s.by_cwe) {
              if (cvss::CategoryOf(cwe) == cvss::CweCategory::kMemorySafety) {
                memory += count;
              }
            }
            return s.total > 0 && 2 * memory > s.total ? 1 : 0;
          },
          "Invest in memory-safety mitigations: sanitizers in CI, hardened "
          "allocators, and migration of parsing code to safe abstractions.",
      },
      {
          "high_sev_share",
          "Is the app's share of high-severity vulnerabilities above the corpus median?",
          {"no", "yes"},
          [](const cvedb::AppSummary& s, const CorpusStats& stats) {
            if (s.total == 0) {
              return 0;
            }
            const double share = static_cast<double>(s.high_or_worse) / s.total;
            return share > stats.median_high_share ? 1 : 0;
          },
          "When bugs land here they tend to be severe: gate releases on "
          "security review, not just functional testing.",
      },
      {
          "above_median_rate",
          "Is the vulnerability discovery rate above the corpus median?",
          {"no", "yes"},
          [](const cvedb::AppSummary& s, const CorpusStats& stats) {
            const double years = std::max(s.HistoryYears(), 0.5);
            return static_cast<double>(s.total) / years > stats.median_vulns_per_year ? 1
                                                                                       : 0;
          },
          "Increase fuzzing and code-review coverage; the project's trend is "
          "worse than its peers.",
      },
  };
  return kHypotheses;
}

const Hypothesis* FindHypothesis(const std::string& id) {
  for (const auto& hypothesis : StandardHypotheses()) {
    if (hypothesis.id == id) {
      return &hypothesis;
    }
  }
  return nullptr;
}

}  // namespace clair
