// Function-granular incremental extraction support.
//
// A commit touches a handful of functions, but the app-level feature cache
// is content-addressed at whole-app granularity — any edit invalidates the
// entire deep battery. This header provides the three pieces that make
// re-extraction O(changed functions):
//
//   1. *Function content addressing*: each function body is identified by a
//      normalized token hash (FNV-1a over the lexed (kind, spelling) stream
//      inside the function's line span) — whitespace and comment changes do
//      not perturb the key, any token change does. `IndexFunctions` builds
//      the per-file index.
//   2. *Diff planning*: `PlanFunctionDiff` compares two versions of a file
//      set and classifies every function as unchanged / modified / added /
//      deleted, so callers re-run deep analyses only for the changed set.
//   3. *AST reuse*: `AstCache` keeps parsed units + lowered modules of
//      recently-seen file texts (shared, immutable), so unchanged files in
//      a warm re-score skip the parser entirely.
//
// DESIGN.md §9 documents the protocol and its bit-identity argument.
#ifndef SRC_CLAIR_INCREMENTAL_H_
#define SRC_CLAIR_INCREMENTAL_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/clair/feature_cache.h"
#include "src/lang/ast.h"
#include "src/lang/ir.h"
#include "src/metrics/extract.h"

namespace clair {

// One function's identity inside a file: name + normalized body-token hash.
struct FunctionFingerprint {
  std::string name;
  uint64_t token_hash = 0;  // FNV-1a over (kind, text) of the body's tokens.
  int line = 0;             // Declaration line (1-based).
  int end_line = 0;         // Closing-brace line.
};

// Token-level index of one MiniC file. For unparseable files `parsed` is
// false and `functions` is empty — the planner then treats the whole file
// as one opaque changed unit.
struct FileFunctionIndex {
  std::string path;
  // Hash of the file's full normalized token stream (all tokens, comments
  // and whitespace excluded). Fast equality shortcut for unchanged files.
  uint64_t file_token_hash = 0;
  // Hash of the tokens OUTSIDE every function span (globals, stray
  // declarations). Part of symexec closure keys: a global initializer edit
  // must invalidate entries even when no function body changed.
  uint64_t preamble_hash = 0;
  std::vector<FunctionFingerprint> functions;
  bool parsed = false;
};

// Lexes + parses `file` and fingerprints each function. Non-MiniC files and
// lex/parse failures return an index with parsed=false (file_token_hash
// still covers the raw text so the planner can detect change).
FileFunctionIndex IndexFunctions(const metrics::SourceFile& file);

enum class FunctionChange { kUnchanged, kModified, kAdded, kDeleted };

const char* FunctionChangeName(FunctionChange change);

struct FunctionDelta {
  std::string path;
  std::string function;
  FunctionChange change = FunctionChange::kUnchanged;
};

// The planner's verdict over two adjacent versions of a file set.
struct DiffPlan {
  std::vector<FunctionDelta> deltas;  // File order, then declaration order.
  std::vector<std::string> changed_files;  // Files with any non-unchanged delta.
  size_t unchanged = 0;
  size_t modified = 0;
  size_t added = 0;
  size_t deleted = 0;

  size_t Changed() const { return modified + added + deleted; }
};

// Classifies every function across two versions. Files are matched by path,
// functions by name within a file (MiniC function names are unique per
// file). A file present in only one version contributes all-added or
// all-deleted deltas; an unparseable file whose text hash differs
// contributes one modified delta under its path with an empty function
// name.
DiffPlan PlanFunctionDiff(const std::vector<FileFunctionIndex>& old_version,
                          const std::vector<FileFunctionIndex>& new_version);

// Convenience overload: indexes both file sets, then plans.
DiffPlan PlanFunctionDiff(const std::vector<metrics::SourceFile>& old_files,
                          const std::vector<metrics::SourceFile>& new_files);

// Immutable parse artifacts for one file text, shared between the stage
// walk, the function-granular caches, and the function-rank extractor.
struct ParsedFile {
  std::shared_ptr<const lang::TranslationUnit> unit;
  std::shared_ptr<const lang::IrModule> module;  // Null if lowering failed.
  FileFunctionIndex index;
};

// FIFO-bounded cache of ParsedFile keyed by a digest of the file text.
// Thread-safe; entries are shared_ptr-immutable so concurrent readers never
// copy an AST.
class AstCache {
 public:
  explicit AstCache(size_t max_entries = 256) : max_entries_(max_entries) {}

  // Returns the cached artifacts for `file`, parsing (and caching) on miss.
  // The returned ParsedFile's unit/module may be null when the file does not
  // parse or lower — negative results are cached too, so a warm re-score of
  // a broken file never re-parses it.
  std::shared_ptr<const ParsedFile> Get(const metrics::SourceFile& file) const;

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t entries() const;

  void Clear();

 private:
  size_t max_entries_;
  mutable std::mutex mutex_;
  mutable std::unordered_map<uint64_t, std::shared_ptr<const ParsedFile>> entries_;
  mutable std::deque<uint64_t> order_;
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
};

// Normalized token hash of a whole MiniC text (0 when it does not lex).
// Exposed for tests and for call sites that key on file contents.
uint64_t TokenHashOfText(const std::string& text);

}  // namespace clair

#endif  // SRC_CLAIR_INCREMENTAL_H_
