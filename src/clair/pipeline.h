// The training phase (Figure 4): builds a Weka-style dataset per hypothesis
// from the testbed's (features, labels) rows, cross-validates a battery of
// learners, selects the best per hypothesis, and retains final models whose
// weights can be inspected.
#ifndef SRC_CLAIR_PIPELINE_H_
#define SRC_CLAIR_PIPELINE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/clair/hypothesis.h"
#include "src/clair/testbed.h"
#include "src/ml/classifier.h"
#include "src/ml/eval.h"
#include "src/ml/transforms.h"

namespace clair {

struct LearnerSpec {
  std::string name;
  std::function<std::unique_ptr<ml::Classifier>()> factory;
};

// logistic, naive-bayes, decision-tree, random-forest, knn.
const std::vector<LearnerSpec>& StandardLearners();

struct PipelineOptions {
  int cv_folds = 10;
  uint64_t seed = 7;
  bool log1p = true;        // Heavy-tailed code features.
  bool standardize = true;
  size_t top_k_features = 0;  // 0 = keep all features.
};

struct LearnerOutcome {
  std::string learner;
  ml::CvMetrics metrics;
};

struct HypothesisReport {
  std::string hypothesis_id;
  std::vector<LearnerOutcome> per_learner;  // In StandardLearners() order.
  std::string best_learner;
  ml::CvMetrics best;
  // From the final model trained on all rows.
  std::vector<std::pair<std::string, double>> top_features;
  double positive_rate = 0.0;  // Base rate of the risky class.
};

// A trained per-hypothesis model bundle, applicable to new feature vectors.
struct HypothesisModel {
  std::string hypothesis_id;
  std::string learner;
  std::unique_ptr<ml::Classifier> model;
  ml::Standardizer standardizer;
  bool log1p = false;
  bool standardize = false;
  std::vector<std::string> feature_names;

  // Probability of the risky ("yes") class for a raw feature vector.
  double PredictRisk(const metrics::FeatureVector& features) const;

  // Batched risk: out[i] == PredictRisk(*rows[i]) exactly (same per-row
  // transform, then one Classifier::PredictProbaBatch call, so the forest
  // amortizes tree traversal across the whole batch). The serving
  // scheduler's cross-request predict batching rides on this.
  std::vector<double> PredictRiskBatch(
      const std::vector<const metrics::FeatureVector*>& rows) const;
};

class TrainedModel {
 public:
  const std::vector<HypothesisModel>& models() const { return models_; }
  const HypothesisModel* ForHypothesis(const std::string& id) const;
  void Add(HypothesisModel model) { models_.push_back(std::move(model)); }

 private:
  std::vector<HypothesisModel> models_;
};

class TrainingPipeline {
 public:
  TrainingPipeline(std::vector<AppRecord> records, PipelineOptions options = {});

  // The union of feature names across records (dataset column order).
  const std::vector<std::string>& feature_names() const { return feature_names_; }
  const CorpusStats& corpus_stats() const { return stats_; }

  // Robustness audit folded from the rows' `robust.*` provenance features:
  // how many stages degraded or retried while extracting this training set
  // (survives serialization and the feature cache — see run_report.h).
  const RunReport& robustness() const { return robustness_; }

  // Builds the per-hypothesis dataset (raw, untransformed).
  ml::Dataset BuildDataset(const Hypothesis& hypothesis) const;

  // Cross-validates all standard learners on one hypothesis.
  HypothesisReport EvaluateHypothesis(const Hypothesis& hypothesis) const;

  // CV across every standard hypothesis.
  std::vector<HypothesisReport> EvaluateAll() const;

  // Trains final models (best learner per hypothesis) on all rows. The
  // overload taking precomputed reports (from EvaluateAll) skips re-running
  // cross-validation for model selection.
  TrainedModel TrainFinal() const;
  TrainedModel TrainFinal(const std::vector<HypothesisReport>& reports) const;

  // Applies the configured transforms to a dataset (fits on it).
  void ApplyTransforms(ml::Dataset& data, ml::Standardizer* fitted) const;

  // --- Vulnerability-count regression (the paper's headline quantitative
  // goal: "predict the number ... of vulnerabilities", vs Figure 2's
  // LoC-only baseline at R² ≈ 24.66%). Target: log10(1 + total vulns). ---

  struct CountRegressionOutcome {
    std::string model;            // "ols", "ridge", "forest-regressor".
    ml::RegressionMetrics metrics;  // Cross-validated (out-of-fold R²).
  };

  ml::Dataset BuildCountDataset() const;
  // CV metrics for each standard regressor over the full feature set.
  std::vector<CountRegressionOutcome> EvaluateCountRegression() const;

 private:
  std::vector<AppRecord> records_;
  PipelineOptions options_;
  std::vector<std::string> feature_names_;
  CorpusStats stats_;
  RunReport robustness_;
};

}  // namespace clair

#endif  // SRC_CLAIR_PIPELINE_H_
