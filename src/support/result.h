// Lightweight error-or-value type used across the library in place of exceptions.
//
// The library follows the os-systems convention of surfacing recoverable
// failures as values: parsers, file loaders, and solvers return
// support::Result<T>, and callers either handle the error or propagate it.
#ifndef SRC_SUPPORT_RESULT_H_
#define SRC_SUPPORT_RESULT_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace support {

namespace internal {
// Prints the accessor and the held state to stderr, then aborts. Wrong-arm
// access is a programming error that must not compile away: under NDEBUG an
// assert would vanish and std::get would be UB on the wrong alternative.
[[noreturn]] void ResultArmViolation(const char* accessor, const std::string& held);
}  // namespace internal

// A failure description: machine-readable code plus a human-readable message.
class Error {
 public:
  enum class Code {
    kInvalidArgument,
    kParseError,
    kNotFound,
    kOutOfRange,
    kFailedPrecondition,
    kResourceExhausted,
    kInternal,
  };

  Error(Code code, std::string message) : code_(code), message_(std::move(message)) {}

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  static const char* CodeName(Code code) {
    switch (code) {
      case Code::kInvalidArgument:
        return "invalid_argument";
      case Code::kParseError:
        return "parse_error";
      case Code::kNotFound:
        return "not_found";
      case Code::kOutOfRange:
        return "out_of_range";
      case Code::kFailedPrecondition:
        return "failed_precondition";
      case Code::kResourceExhausted:
        return "resource_exhausted";
      case Code::kInternal:
        return "internal";
    }
    return "unknown";
  }

  std::string ToString() const { return std::string(CodeName(code_)) + ": " + message_; }

  // Context chaining: returns a copy with `context` prefixed, keeping the
  // code. Each propagation layer can add its frame:
  //   return status.error().Wrap("loading checkpoint");
  Error Wrap(std::string_view context) const {
    return Error(code_, std::string(context) + ": " + message_);
  }

 private:
  Code code_;
  std::string message_;
};

// Result<T> holds either a value or an Error. Accessing the wrong arm aborts
// with the held error printed — always, including NDEBUG builds; callers are
// expected to check ok() first.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return Error{...};` both work.
  Result(T value) : inner_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : inner_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(inner_); }

  const T& value() const& {
    CheckHoldsValue("Result::value()");
    return std::get<T>(inner_);
  }
  T& value() & {
    CheckHoldsValue("Result::value()");
    return std::get<T>(inner_);
  }
  T&& value() && {
    CheckHoldsValue("Result::value() &&");
    return std::get<T>(std::move(inner_));
  }

  const Error& error() const {
    if (ok()) {
      internal::ResultArmViolation("Result::error()", "result holds a value");
    }
    return std::get<Error>(inner_);
  }

  // Returns the value, or `fallback` if this result is an error.
  T value_or(T fallback) const& { return ok() ? std::get<T>(inner_) : std::move(fallback); }

 private:
  void CheckHoldsValue(const char* accessor) const {
    if (!ok()) {
      internal::ResultArmViolation(accessor, std::get<Error>(inner_).ToString());
    }
  }

  std::variant<T, Error> inner_;
};

// A Result carrying no payload: success or an Error.
class Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  static Status Ok() { return Status(); }

  bool ok() const { return !error_.has_value(); }
  const Error& error() const {
    if (ok()) {
      internal::ResultArmViolation("Status::error()", "status is ok");
    }
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

}  // namespace support

#endif  // SRC_SUPPORT_RESULT_H_
