#include "src/support/constant_interval.h"

#include <algorithm>

namespace support {
namespace {

// Extended bound: a finite __int128 value or a signed infinity. All
// arithmetic runs in this domain so no int64 overflow can corrupt a bound;
// narrowing back to int64 happens once, at the end, per direction.
struct Ext {
  int cls = 0;  // -1: -infinity, 0: finite, +1: +infinity.
  __int128 v = 0;
};

Ext NegInf() { return {-1, 0}; }
Ext PosInf() { return {+1, 0}; }
Ext Finite(__int128 v) { return {0, v}; }

Ext LowerOf(const ConstantInterval& a) {
  return a.min_defined ? Finite(a.min) : NegInf();
}
Ext UpperOf(const ConstantInterval& a) {
  return a.max_defined ? Finite(a.max) : PosInf();
}

int SignOf(const Ext& e) {
  if (e.cls != 0) return e.cls;
  return e.v < 0 ? -1 : (e.v > 0 ? 1 : 0);
}

bool ExtLess(const Ext& a, const Ext& b) {
  if (a.cls != b.cls) return a.cls < b.cls;
  return a.cls == 0 && a.v < b.v;
}

Ext ExtMin(const Ext& a, const Ext& b) { return ExtLess(b, a) ? b : a; }
Ext ExtMax(const Ext& a, const Ext& b) { return ExtLess(a, b) ? b : a; }

// Sums never mix opposite infinities here: lower-bound sums only involve
// {-inf, finite}, upper-bound sums only {finite, +inf}.
Ext ExtAdd(const Ext& a, const Ext& b) {
  if (a.cls != 0) return a;
  if (b.cls != 0) return b;
  return Finite(a.v + b.v);
}

Ext ExtNeg(const Ext& a) {
  if (a.cls != 0) return {-a.cls, 0};
  return Finite(-a.v);
}

// Corner product with the 0 * inf = 0 convention: if 0 is an endpoint of an
// operand range it is an attained value, so 0 is a valid corner result.
Ext ExtMul(const Ext& a, const Ext& b) {
  if (a.cls == 0 && b.cls == 0) return Finite(a.v * b.v);
  const int sign = SignOf(a) * SignOf(b);
  if (sign == 0) return Finite(0);
  return {sign, 0};
}

// Truncating corner division; `b` is never zero and never spans zero (the
// caller splits the divisor into sign-pure parts first).
Ext ExtDiv(const Ext& a, const Ext& b) {
  if (a.cls != 0) return {SignOf(a) * SignOf(b), 0};
  if (b.cls != 0) return Finite(0);  // |b| > |a| eventually; trunc -> 0.
  return Finite(a.v / b.v);
}

int64_t Clamp64(__int128 v) {
  if (v < static_cast<__int128>(INT64_MIN)) return INT64_MIN;
  if (v > static_cast<__int128>(INT64_MAX)) return INT64_MAX;
  return static_cast<int64_t>(v);
}

// Narrows an extended lower/upper bound pair into a ConstantInterval. A
// lower bound below INT64_MIN (or an upper bound above INT64_MAX) carries
// no representable information and drops to undefined; a bound that exits
// the int64 range on its *own* side saturates inward, which is still a
// sound (weaker) claim.
ConstantInterval FromExt(const Ext& lo, const Ext& hi) {
  ConstantInterval r = ConstantInterval::Everything();
  if (lo.cls == 0 && lo.v >= static_cast<__int128>(INT64_MIN)) {
    r.min = Clamp64(lo.v);
    r.min_defined = true;
  } else if (lo.cls > 0) {
    r.min = INT64_MAX;
    r.min_defined = true;
  }
  if (hi.cls == 0 && hi.v <= static_cast<__int128>(INT64_MAX)) {
    r.max = Clamp64(hi.v);
    r.max_defined = true;
  } else if (hi.cls < 0) {
    r.max = INT64_MIN;
    r.max_defined = true;
  }
  return r;
}

__int128 Abs128(int64_t x) {
  const __int128 w = x;
  return w < 0 ? -w : w;
}

}  // namespace

void ConstantInterval::Include(int64_t x) {
  if (is_empty()) {
    *this = SinglePoint(x);
    return;
  }
  if (min_defined) min = std::min(min, x);
  if (max_defined) max = std::max(max, x);
}

ConstantInterval ConstantInterval::Union(const ConstantInterval& a,
                                         const ConstantInterval& b) {
  if (a.is_empty()) return b;
  if (b.is_empty()) return a;
  ConstantInterval r = Everything();
  if (a.min_defined && b.min_defined) {
    r.min = std::min(a.min, b.min);
    r.min_defined = true;
  }
  if (a.max_defined && b.max_defined) {
    r.max = std::max(a.max, b.max);
    r.max_defined = true;
  }
  return r;
}

ConstantInterval ConstantInterval::Intersection(const ConstantInterval& a,
                                                const ConstantInterval& b) {
  if (a.is_empty() || b.is_empty()) return Empty();
  ConstantInterval r = Everything();
  if (a.min_defined || b.min_defined) {
    r.min_defined = true;
    r.min = a.min_defined && b.min_defined ? std::max(a.min, b.min)
                                           : (a.min_defined ? a.min : b.min);
  }
  if (a.max_defined || b.max_defined) {
    r.max_defined = true;
    r.max = a.max_defined && b.max_defined ? std::min(a.max, b.max)
                                           : (a.max_defined ? a.max : b.max);
  }
  if (r.is_empty()) return Empty();
  return r;
}

ConstantInterval operator+(const ConstantInterval& a,
                           const ConstantInterval& b) {
  if (a.is_empty() || b.is_empty()) return ConstantInterval::Empty();
  return FromExt(ExtAdd(LowerOf(a), LowerOf(b)), ExtAdd(UpperOf(a), UpperOf(b)));
}

ConstantInterval operator-(const ConstantInterval& a) {
  if (a.is_empty()) return ConstantInterval::Empty();
  return FromExt(ExtNeg(UpperOf(a)), ExtNeg(LowerOf(a)));
}

ConstantInterval operator-(const ConstantInterval& a,
                           const ConstantInterval& b) {
  // Not a + (-b): that narrows the negated operand to int64 first, and the
  // intermediate saturation (e.g. -INT64_MIN -> INT64_MAX) can cost one
  // unit of precision in the final bound. Subtract on extended bounds and
  // narrow once.
  if (a.is_empty() || b.is_empty()) return ConstantInterval::Empty();
  return FromExt(ExtAdd(LowerOf(a), ExtNeg(UpperOf(b))),
                 ExtAdd(UpperOf(a), ExtNeg(LowerOf(b))));
}

ConstantInterval operator*(const ConstantInterval& a,
                           const ConstantInterval& b) {
  if (a.is_empty() || b.is_empty()) return ConstantInterval::Empty();
  const Ext corners[4] = {
      ExtMul(LowerOf(a), LowerOf(b)), ExtMul(LowerOf(a), UpperOf(b)),
      ExtMul(UpperOf(a), LowerOf(b)), ExtMul(UpperOf(a), UpperOf(b))};
  Ext lo = corners[0];
  Ext hi = corners[0];
  for (int i = 1; i < 4; ++i) {
    lo = ExtMin(lo, corners[i]);
    hi = ExtMax(hi, corners[i]);
  }
  return FromExt(lo, hi);
}

ConstantInterval operator/(const ConstantInterval& a,
                           const ConstantInterval& b) {
  if (a.is_empty() || b.is_empty()) return ConstantInterval::Empty();
  // Truncated division is monotone in both operands only while the divisor
  // keeps one sign, so evaluate the positive and negative divisor parts
  // separately and take the hull. Zero is a fault, not a value.
  ConstantInterval out = ConstantInterval::Empty();
  bool any_part = false;
  const ConstantInterval parts[2] = {
      ConstantInterval::Intersection(b, ConstantInterval::BoundedBelow(1)),
      ConstantInterval::Intersection(b, ConstantInterval::BoundedAbove(-1))};
  for (const ConstantInterval& part : parts) {
    if (part.is_empty()) continue;
    const Ext corners[4] = {
        ExtDiv(LowerOf(a), LowerOf(part)), ExtDiv(LowerOf(a), UpperOf(part)),
        ExtDiv(UpperOf(a), LowerOf(part)), ExtDiv(UpperOf(a), UpperOf(part))};
    Ext lo = corners[0];
    Ext hi = corners[0];
    for (int i = 1; i < 4; ++i) {
      lo = ExtMin(lo, corners[i]);
      hi = ExtMax(hi, corners[i]);
    }
    out = ConstantInterval::Union(out, FromExt(lo, hi));
    any_part = true;
  }
  // Divisor is exactly {0}: every execution faults; no result constraint.
  return any_part ? out : ConstantInterval::Everything();
}

ConstantInterval operator%(const ConstantInterval& a,
                           const ConstantInterval& b) {
  if (a.is_empty() || b.is_empty()) return ConstantInterval::Empty();
  // C++ remainder: sign(r) = sign(dividend), |r| < |divisor|, |r| <= |x|
  // for the actual dividend x (so r <= max(x, 0) and r >= min(x, 0)).
  bool mag_defined = false;
  __int128 mag = 0;  // Upper bound on |r|.
  if (b.is_bounded()) {
    const __int128 bmag = std::max(Abs128(b.min), Abs128(b.max));
    if (bmag == 0) return ConstantInterval::Everything();  // Divisor == {0}.
    mag = bmag - 1;
    mag_defined = true;
  }
  Ext lo = mag_defined ? Finite(-mag) : NegInf();
  Ext hi = mag_defined ? Finite(mag) : PosInf();
  if (a.min_defined) {
    const __int128 dividend_lo = std::min<__int128>(a.min, 0);
    if (lo.cls != 0 || lo.v < dividend_lo) lo = Finite(dividend_lo);
  }
  if (a.max_defined) {
    const __int128 dividend_hi = std::max<__int128>(a.max, 0);
    if (hi.cls != 0 || hi.v > dividend_hi) hi = Finite(dividend_hi);
  }
  return FromExt(lo, hi);
}

ConstantInterval ConstantInterval::Shl(const ConstantInterval& a,
                                       const ConstantInterval& b) {
  if (a.is_empty() || b.is_empty()) return Empty();
  if (!b.is_bounded() || b.min < 0 || b.max > 63) return Everything();
  const Ext powers[2] = {Finite(static_cast<__int128>(1) << b.min),
                         Finite(static_cast<__int128>(1) << b.max)};
  Ext lo = ExtMul(LowerOf(a), powers[0]);
  Ext hi = ExtMul(UpperOf(a), powers[0]);
  for (const Ext& p : powers) {
    lo = ExtMin(lo, ExtMul(LowerOf(a), p));
    hi = ExtMax(hi, ExtMul(UpperOf(a), p));
  }
  return FromExt(lo, hi);
}

ConstantInterval ConstantInterval::Shr(const ConstantInterval& a,
                                       const ConstantInterval& b) {
  if (a.is_empty() || b.is_empty()) return Empty();
  if (!b.is_bounded() || b.min < 0 || b.max > 63) return Everything();
  // Arithmetic shift = floor division by 2^s; >> on signed __int128 is
  // arithmetic in every supported toolchain.
  const auto shift = [](const Ext& x, int64_t s) -> Ext {
    if (x.cls != 0) return x;
    return Finite(x.v >> s);
  };
  Ext lo = shift(LowerOf(a), b.min);
  Ext hi = shift(UpperOf(a), b.min);
  for (const int64_t s : {b.min, b.max}) {
    lo = ExtMin(lo, shift(LowerOf(a), s));
    hi = ExtMax(hi, shift(UpperOf(a), s));
  }
  return FromExt(lo, hi);
}

ConstantInterval ConstantInterval::Min(const ConstantInterval& a,
                                       const ConstantInterval& b) {
  if (a.is_empty() || b.is_empty()) return Empty();
  return FromExt(ExtMin(LowerOf(a), LowerOf(b)), ExtMin(UpperOf(a), UpperOf(b)));
}

ConstantInterval ConstantInterval::Max(const ConstantInterval& a,
                                       const ConstantInterval& b) {
  if (a.is_empty() || b.is_empty()) return Empty();
  return FromExt(ExtMax(LowerOf(a), LowerOf(b)), ExtMax(UpperOf(a), UpperOf(b)));
}

ConstantInterval ConstantInterval::Abs(const ConstantInterval& a) {
  if (a.is_empty()) return Empty();
  Ext lo = Finite(0);
  if (a.min_defined && a.min > 0) lo = Finite(a.min);
  if (a.max_defined && a.max < 0) lo = Finite(Abs128(a.max));
  const Ext hi = a.is_bounded()
                     ? Finite(std::max(Abs128(a.min), Abs128(a.max)))
                     : PosInf();
  return FromExt(lo, hi);
}

Tristate ConstantInterval::ProveLt(const ConstantInterval& a,
                                   const ConstantInterval& b) {
  if (a.is_empty() || b.is_empty()) return Tristate::kUnknown;
  if (a.max_defined && b.min_defined && a.max < b.min) return Tristate::kTrue;
  if (a.min_defined && b.max_defined && a.min >= b.max) return Tristate::kFalse;
  return Tristate::kUnknown;
}

Tristate ConstantInterval::ProveLe(const ConstantInterval& a,
                                   const ConstantInterval& b) {
  if (a.is_empty() || b.is_empty()) return Tristate::kUnknown;
  if (a.max_defined && b.min_defined && a.max <= b.min) return Tristate::kTrue;
  if (a.min_defined && b.max_defined && a.min > b.max) return Tristate::kFalse;
  return Tristate::kUnknown;
}

Tristate ConstantInterval::ProveGe(const ConstantInterval& a,
                                   const ConstantInterval& b) {
  return TriNot(ProveLt(a, b));
}

Tristate ConstantInterval::ProveEq(const ConstantInterval& a,
                                   const ConstantInterval& b) {
  if (a.is_empty() || b.is_empty()) return Tristate::kUnknown;
  if (a.is_single_point() && b.is_single_point(a.min)) return Tristate::kTrue;
  if ((a.max_defined && b.min_defined && a.max < b.min) ||
      (b.max_defined && a.min_defined && b.max < a.min)) {
    return Tristate::kFalse;
  }
  return Tristate::kUnknown;
}

Tristate ConstantInterval::ProveNe(const ConstantInterval& a,
                                   const ConstantInterval& b) {
  return TriNot(ProveEq(a, b));
}

}  // namespace support
