// A constant-interval algebra over int64 with explicit one-sided bounds.
//
// Unlike dataflow::Interval, which overloads INT64_MIN/INT64_MAX as
// +/-infinity sentinels (conflating "unbounded" with the genuine extreme
// constants), a ConstantInterval carries `min_defined`/`max_defined` flags:
// an undefined side means "no finite bound is known", while a defined side
// is an exact int64 claim. Arithmetic is evaluated in __int128 so no
// intermediate overflow can silently flip a bound; a result bound that
// leaves the int64 range either saturates inward (still a sound claim) or
// drops to undefined, per direction.
//
// The modelled concrete semantics are *mathematical* integer arithmetic
// (no wraparound): callers that need wraparound soundness must clamp the
// result to their machine-width range themselves (see symx range_eval).
// Division and remainder follow C++ truncation-toward-zero; shifts require
// a shift amount provably within [0, 63] and give up otherwise.
#ifndef SRC_SUPPORT_CONSTANT_INTERVAL_H_
#define SRC_SUPPORT_CONSTANT_INTERVAL_H_

#include <cstdint>

namespace support {

// Three-valued verdict for the comparison deciders.
enum class Tristate {
  kFalse = 0,
  kTrue = 1,
  kUnknown = 2,
};

inline Tristate TriNot(Tristate t) {
  if (t == Tristate::kUnknown) return Tristate::kUnknown;
  return t == Tristate::kTrue ? Tristate::kFalse : Tristate::kTrue;
}
inline Tristate TriAnd(Tristate a, Tristate b) {
  if (a == Tristate::kFalse || b == Tristate::kFalse) return Tristate::kFalse;
  if (a == Tristate::kTrue && b == Tristate::kTrue) return Tristate::kTrue;
  return Tristate::kUnknown;
}
inline Tristate TriOr(Tristate a, Tristate b) {
  if (a == Tristate::kTrue || b == Tristate::kTrue) return Tristate::kTrue;
  if (a == Tristate::kFalse && b == Tristate::kFalse) return Tristate::kFalse;
  return Tristate::kUnknown;
}

struct ConstantInterval {
  int64_t min = 0;
  int64_t max = 0;
  bool min_defined = false;
  bool max_defined = false;

  // Default: the full, unbounded interval ("everything").
  ConstantInterval() = default;
  ConstantInterval(int64_t mn, int64_t mx)
      : min(mn), max(mx), min_defined(true), max_defined(true) {}

  static ConstantInterval Everything() { return ConstantInterval{}; }
  static ConstantInterval SinglePoint(int64_t x) { return {x, x}; }
  static ConstantInterval Bounded(int64_t mn, int64_t mx) { return {mn, mx}; }
  static ConstantInterval BoundedBelow(int64_t mn) {
    ConstantInterval r;
    r.min = mn;
    r.min_defined = true;
    return r;
  }
  static ConstantInterval BoundedAbove(int64_t mx) {
    ConstantInterval r;
    r.max = mx;
    r.max_defined = true;
    return r;
  }
  // Canonical empty interval (only Intersection and explicit construction
  // produce it; arithmetic on non-empty operands never does).
  static ConstantInterval Empty() { return {1, 0}; }

  bool is_everything() const { return !min_defined && !max_defined; }
  bool is_bounded() const { return min_defined && max_defined; }
  bool is_empty() const { return min_defined && max_defined && min > max; }
  bool is_single_point() const {
    return min_defined && max_defined && min == max;
  }
  bool is_single_point(int64_t x) const {
    return min_defined && max_defined && min == x && max == x;
  }

  bool Contains(int64_t x) const {
    return !(min_defined && x < min) && !(max_defined && x > max);
  }
  // Containment for mathematically exact values wider than int64 (the fuzz
  // oracle evaluates ops in __int128).
  bool Contains(__int128 x) const {
    return !(min_defined && x < static_cast<__int128>(min)) &&
           !(max_defined && x > static_cast<__int128>(max));
  }

  // Grows the interval to include x.
  void Include(int64_t x);

  bool operator==(const ConstantInterval& o) const {
    if (is_empty() && o.is_empty()) return true;
    return min_defined == o.min_defined && max_defined == o.max_defined &&
           (!min_defined || min == o.min) && (!max_defined || max == o.max);
  }
  bool operator!=(const ConstantInterval& o) const { return !(*this == o); }

  // Lattice operations. Union is the convex hull of the two intervals.
  static ConstantInterval Union(const ConstantInterval& a,
                                const ConstantInterval& b);
  static ConstantInterval Intersection(const ConstantInterval& a,
                                       const ConstantInterval& b);

  // Overflow-safe arithmetic (mathematical semantics; see file comment).
  friend ConstantInterval operator+(const ConstantInterval& a,
                                    const ConstantInterval& b);
  friend ConstantInterval operator-(const ConstantInterval& a,
                                    const ConstantInterval& b);
  friend ConstantInterval operator-(const ConstantInterval& a);
  friend ConstantInterval operator*(const ConstantInterval& a,
                                    const ConstantInterval& b);
  // Truncating division; divisor values of zero are ignored (a fault, not a
  // value). Returns Everything when the divisor is exactly {0}.
  friend ConstantInterval operator/(const ConstantInterval& a,
                                    const ConstantInterval& b);
  // C++ remainder: sign follows the dividend, |r| < |b| and |r| <= |a|.
  friend ConstantInterval operator%(const ConstantInterval& a,
                                    const ConstantInterval& b);
  // Shifts: `b` must be provably within [0, 63] or the result is Everything.
  // Shl is a * 2^b; Shr is arithmetic (floor division by 2^b).
  static ConstantInterval Shl(const ConstantInterval& a,
                              const ConstantInterval& b);
  static ConstantInterval Shr(const ConstantInterval& a,
                              const ConstantInterval& b);

  static ConstantInterval Min(const ConstantInterval& a,
                              const ConstantInterval& b);
  static ConstantInterval Max(const ConstantInterval& a,
                              const ConstantInterval& b);
  static ConstantInterval Abs(const ConstantInterval& a);

  // Comparison deciders: cheap endpoint checks answering "provably true",
  // "provably false", or "unknown". Empty operands yield kUnknown (the
  // caller is asking about an infeasible state; any answer is vacuous).
  static Tristate ProveLt(const ConstantInterval& a, const ConstantInterval& b);
  static Tristate ProveLe(const ConstantInterval& a, const ConstantInterval& b);
  static Tristate ProveGe(const ConstantInterval& a, const ConstantInterval& b);
  static Tristate ProveEq(const ConstantInterval& a, const ConstantInterval& b);
  static Tristate ProveNe(const ConstantInterval& a, const ConstantInterval& b);
};

}  // namespace support

#endif  // SRC_SUPPORT_CONSTANT_INTERVAL_H_
