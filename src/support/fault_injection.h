// Deterministic fault injection for robustness testing.
//
// Production sweeps over arbitrary corpora hit files that crash an analyzer,
// blow a solver budget, or hang. The failure-handling paths those inputs
// exercise are rare in synthetic corpora, so they rot unless they can be
// forced on demand. This header gives every hot substrate a *named injection
// site* (parser, lowering, dataflow, interval analysis, symexec solver
// queries, dynamic-trace interpreter, feature cache) that can be made to
// fail at a configured rate:
//
//   CLAIR_FAULTS="parse:0.25,solver:1"        # 25% of parses, every query
//   CLAIR_FAULTS="dynamic:0.5,seed:42"        # optional decision seed
//
// Determinism contract: a site's verdict is a pure hash of
// (config seed, site, subject key, retry attempt) — never of wall clock,
// scheduling, or a global counter — so an injected failure hits the *same*
// subjects at any CLAIR_THREADS value and results stay bit-identical across
// worker counts. Subject keys are content-derived (source digest, module
// fingerprint, solver-query index), so retrying the same subject at the same
// attempt number re-fails deterministically, while a retry at the next
// attempt number re-rolls — which is what lets the testbed's stage-retry
// policy model *transient* faults.
#ifndef SRC_SUPPORT_FAULT_INJECTION_H_
#define SRC_SUPPORT_FAULT_INJECTION_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "src/support/result.h"

namespace support {

enum class FaultSite : int {
  kParse = 0,    // lang::Parse
  kLower,        // lang::LowerToIr
  kDataflow,     // dataflow::DataflowFeatures
  kIntervals,    // dataflow::IntervalFeatures
  kSolver,       // symexec solver queries (per-query granularity)
  kDynamic,      // lang::Execute (dynamic-trace interpreter)
  kCache,        // clair::FeatureCache lookups (simulated corruption)
  // Fleet-sweep chaos sites (clair::ShardCoordinator): a worker process
  // dying mid-shard (torn checkpoint tail + nonzero exit) and a heartbeat
  // lost in transit (the worker is healthy but its lease expires). Keys are
  // content-derived — (app, shard, generation) for crashes, (shard,
  // generation, heartbeat sequence) for losses — so a seeded kill schedule
  // replays bit-identically at any worker count or transport.
  kWorkerCrash,
  kHeartbeatLoss,
  kSiteCount,
};

inline constexpr int kFaultSiteCount = static_cast<int>(FaultSite::kSiteCount);

// Config-string name ("parse", "lower", ...); "?" for out-of-range values.
const char* FaultSiteName(FaultSite site);

// Thrown by MaybeFail at sites whose failure mode is an exception. Callers
// that guard a stage treat it like any other stage error; tests catch it to
// distinguish injected from organic failures.
class InjectedFault : public std::runtime_error {
 public:
  InjectedFault(FaultSite site, uint64_t key);
  FaultSite site() const { return site_; }

 private:
  FaultSite site_;
};

// FNV-1a over bytes; the support-layer digest used to derive subject keys.
// `seed` chains multi-part digests.
uint64_t FaultKey(std::string_view bytes, uint64_t seed = 0xcbf29ce484222325ULL);
// Mixes two 64-bit values (splitmix-style finalizer over the xor).
uint64_t FaultKeyMix(uint64_t a, uint64_t b);

class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector& other);
  FaultInjector& operator=(const FaultInjector& other);

  // Parses "site:rate[,site:rate...][,seed:<uint64>]". Rates are clamped to
  // [0, 1]; unknown site names and malformed entries are errors.
  static Result<FaultInjector> Parse(std::string_view config);

  // The process-wide injector, initialised once from CLAIR_FAULTS (a
  // malformed value is reported on stderr and treated as empty).
  static FaultInjector& Global();

  // Deterministic verdict for one (site, subject) pair at the calling
  // context's retry attempt; counts the injection when it fires.
  bool ShouldFail(FaultSite site, uint64_t key) const {
    return any_ && ShouldFailSlow(site, key, CurrentAttempt());
  }
  bool ShouldFail(FaultSite site, uint64_t key, uint32_t attempt_salt) const {
    return any_ && ShouldFailSlow(site, key, attempt_salt);
  }

  // Throws InjectedFault when the verdict fires.
  void MaybeFail(FaultSite site, uint64_t key) const {
    if (ShouldFail(site, key)) {
      throw InjectedFault(site, key);
    }
  }
  void MaybeFail(FaultSite site, uint64_t key, uint32_t attempt_salt) const {
    if (ShouldFail(site, key, attempt_salt)) {
      throw InjectedFault(site, key);
    }
  }

  bool enabled() const { return any_; }
  double rate(FaultSite site) const { return rates_[static_cast<int>(site)]; }
  // Number of injections fired at `site` since construction / last Reset.
  uint64_t injected(FaultSite site) const {
    return injected_[static_cast<size_t>(site)].load(std::memory_order_relaxed);
  }
  void ResetCounters();

  // Canonical "site:rate,..." encoding of the active config ("" when empty).
  std::string ConfigString() const;
  // Digest of the active config; 0 when no site is armed, so cache keys and
  // fingerprints are unchanged relative to injection-free builds.
  uint64_t Fingerprint() const;

  // The retry-attempt salt mixed into every verdict on this thread; stage
  // wrappers bump it per retry so transient injected faults can clear.
  static uint32_t CurrentAttempt();

  // RAII: sets the calling thread's attempt salt, restoring on destruction.
  class ScopedAttempt {
   public:
    explicit ScopedAttempt(uint32_t attempt);
    ~ScopedAttempt();
    ScopedAttempt(const ScopedAttempt&) = delete;
    ScopedAttempt& operator=(const ScopedAttempt&) = delete;

   private:
    uint32_t previous_;
  };

  // RAII: replaces the global injector with a parsed config for a test's
  // lifetime, restoring the previous one on destruction. Must not be used
  // while a parallel region is running. Aborts on a malformed config (test
  // scaffolding; a typo should fail loudly). Body follows the class — it
  // stores a FaultInjector, which is incomplete here.
  class ScopedConfig;

 private:
  bool ShouldFailSlow(FaultSite site, uint64_t key, uint32_t attempt) const;

  std::array<double, kFaultSiteCount> rates_{};  // Zero-initialised.
  uint64_t seed_ = 0;
  bool any_ = false;
  mutable std::array<std::atomic<uint64_t>, kFaultSiteCount> injected_{};
};

class FaultInjector::ScopedConfig {
 public:
  explicit ScopedConfig(std::string_view config);
  ~ScopedConfig();
  ScopedConfig(const ScopedConfig&) = delete;
  ScopedConfig& operator=(const ScopedConfig&) = delete;

 private:
  FaultInjector previous_;
};

}  // namespace support

#endif  // SRC_SUPPORT_FAULT_INJECTION_H_
