// A set of int64 values represented as sorted, disjoint, non-adjacent
// closed ranges [lo, hi] (Envoy-style insert-with-coalescing). Used for
// branch-refinement bookkeeping in the symbolic executor, where equality
// and disequality constraints punch points and holes that a single convex
// interval cannot express, and for exact model counting: the cardinality
// of the refined set short-circuits full SAT enumeration.
#ifndef SRC_SUPPORT_INTERVAL_SET_H_
#define SRC_SUPPORT_INTERVAL_SET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/support/constant_interval.h"

namespace support {

class IntervalSet {
 public:
  struct Range {
    int64_t lo = 0;
    int64_t hi = 0;  // Inclusive.
    bool operator==(const Range& o) const { return lo == o.lo && hi == o.hi; }
  };

  IntervalSet() = default;  // Empty set.

  static IntervalSet All() { return Of(INT64_MIN, INT64_MAX); }
  static IntervalSet Of(int64_t lo, int64_t hi);
  // Undefined sides of the interval become the int64 extremes; an empty
  // interval becomes the empty set.
  static IntervalSet FromConstantInterval(const ConstantInterval& ci);

  // Inserts [lo, hi], coalescing with overlapping and adjacent ranges.
  // No-op when lo > hi.
  void Insert(int64_t lo, int64_t hi);
  // Removes every value in [lo, hi], splitting a straddling range.
  void Remove(int64_t lo, int64_t hi);

  void UnionWith(const IntervalSet& other);
  void IntersectWith(const IntervalSet& other);
  // The complement within the full int64 universe.
  IntervalSet Complement() const;

  bool Contains(int64_t x) const;
  bool Empty() const { return ranges_.empty(); }
  size_t NumRanges() const { return ranges_.size(); }
  const std::vector<Range>& ranges() const { return ranges_; }

  // Convex hull; ConstantInterval::Empty() for the empty set. Bounds that
  // reach the int64 extremes are reported as undefined (unbounded) sides
  // so downstream deciders stay conservative about saturated endpoints.
  ConstantInterval Hull() const;

  // Number of values in the set, saturating at UINT64_MAX (the full
  // universe holds 2^64 values which does not fit; *saturated is set when
  // the true count exceeds the returned value).
  uint64_t Cardinality(bool* saturated = nullptr) const;

  bool operator==(const IntervalSet& o) const { return ranges_ == o.ranges_; }
  bool operator!=(const IntervalSet& o) const { return !(*this == o); }

 private:
  std::vector<Range> ranges_;  // Sorted by lo; disjoint and non-adjacent.
};

}  // namespace support

#endif  // SRC_SUPPORT_INTERVAL_SET_H_
