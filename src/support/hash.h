// Content hashes used for on-disk integrity checking.
//
// Crc64 implements CRC-64/ECMA-182 (poly 0x42F0E1EBA9EA3693, reflected form)
// with a lazily built 8-bit lookup table. The feature store frames every
// on-disk block with a crc64 of its payload so a torn write or bit flip is
// detected at open time instead of corrupting training downstream; keeping
// the routine in src/support lets src/ml depend on it without pulling in the
// clair layer (whose checkpoint files use their own Fnv1a64 brand).
#ifndef SRC_SUPPORT_HASH_H_
#define SRC_SUPPORT_HASH_H_

#include <cstddef>
#include <cstdint>

namespace support {

// CRC-64 (ECMA-182 polynomial, reflected), one-shot over a buffer.
uint64_t Crc64(const void* data, size_t size);

// Incremental form: start from kCrc64Init, fold buffers in any split, then
// finalize. Crc64(p, n) == Crc64Finish(Crc64Update(kCrc64Init, p, n)).
inline constexpr uint64_t kCrc64Init = ~0ull;
uint64_t Crc64Update(uint64_t state, const void* data, size_t size);
inline uint64_t Crc64Finish(uint64_t state) { return ~state; }

}  // namespace support

#endif  // SRC_SUPPORT_HASH_H_
