#include "src/support/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace support {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    const size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) {
      out.emplace_back(text.substr(start, i - start));
    }
  }
  return out;
}

std::string_view TrimLeft(std::string_view text) {
  size_t i = 0;
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  return text.substr(i);
}

std::string_view TrimRight(std::string_view text) {
  size_t n = text.size();
  while (n > 0 && std::isspace(static_cast<unsigned char>(text[n - 1]))) {
    --n;
  }
  return text.substr(0, n);
}

std::string_view Trim(std::string_view text) { return TrimRight(TrimLeft(text)); }

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string ToUpper(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::optional<long long> ParseInt(std::string_view text) {
  const std::string buf(Trim(text));
  if (buf.empty()) {
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return std::nullopt;
  }
  return value;
}

std::optional<double> ParseDouble(std::string_view text) {
  const std::string buf(Trim(text));
  if (buf.empty()) {
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return std::nullopt;
  }
  return value;
}

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace support
