// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library (corpus generation, bagging,
// cross-validation shuffles, sampling model counters) draws from these
// generators with an explicit seed, so all experiments are bit-reproducible
// across runs and platforms. std::mt19937 and std::rand are deliberately not
// used: libstdc++ distribution implementations are not portable.
#ifndef SRC_SUPPORT_RNG_H_
#define SRC_SUPPORT_RNG_H_

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

namespace support {

// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// Xoshiro256** — the workhorse generator.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) {
      s = sm.Next();
    }
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). Uses rejection to avoid modulo bias.
  uint64_t NextBelow(uint64_t bound) {
    if (bound <= 1) {
      return 0;
    }
    const uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      uint64_t r = NextU64();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  bool NextBool(double p_true = 0.5) { return NextDouble() < p_true; }

  // Standard normal via Box–Muller (no cached spare: keeps state minimal and
  // replay exact regardless of call interleaving).
  double Normal() {
    double u1 = NextDouble();
    while (u1 <= 1e-300) {
      u1 = NextDouble();
    }
    const double u2 = NextDouble();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.14159265358979323846 * u2);
  }

  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  // Log-normal: exp(N(mu, sigma)).
  double LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

  double Exponential(double rate) {
    double u = NextDouble();
    while (u <= 1e-300) {
      u = NextDouble();
    }
    return -std::log(u) / rate;
  }

  // Poisson via inversion for small means, normal approximation for large.
  uint64_t Poisson(double mean) {
    if (mean <= 0.0) {
      return 0;
    }
    if (mean < 30.0) {
      const double limit = std::exp(-mean);
      double product = NextDouble();
      uint64_t count = 0;
      while (product > limit) {
        product *= NextDouble();
        ++count;
      }
      return count;
    }
    const double draw = Normal(mean, std::sqrt(mean));
    return draw < 0.0 ? 0 : static_cast<uint64_t>(draw + 0.5);
  }

  // Samples an index proportionally to `weights` (need not be normalised).
  size_t Categorical(std::span<const double> weights) {
    double total = 0.0;
    for (double w : weights) {
      total += w > 0.0 ? w : 0.0;
    }
    if (total <= 0.0) {
      return 0;
    }
    double target = NextDouble() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      const double w = weights[i] > 0.0 ? weights[i] : 0.0;
      if (target < w) {
        return i;
      }
      target -= w;
    }
    return weights.size() - 1;
  }

  // Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(NextBelow(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  // Derives an independent child generator; used to give each corpus
  // application its own stream so generation order never matters.
  Rng Fork() { return Rng(NextU64() ^ 0xd1b54a32d192ed03ULL); }

  // Alias for Fork() under the splittable-RNG naming convention.
  Rng Split() { return Fork(); }

  // Expands (base seed, task index) into an independent 64-bit seed via
  // SplitMix64, so parallel tasks get stable per-index streams that do not
  // depend on scheduling or on how many sibling tasks exist. The golden-ratio
  // multiplier decorrelates adjacent indices before mixing.
  static uint64_t TaskSeed(uint64_t base_seed, uint64_t task_index) {
    SplitMix64 sm(base_seed ^ (task_index * 0x9e3779b97f4a7c15ULL) ^
                  0xd1b54a32d192ed03ULL);
    return sm.Next();
  }

  // A generator for task `task_index` of a family seeded with `base_seed`.
  // The canonical way to seed work items inside support::ParallelMap.
  static Rng ForTask(uint64_t base_seed, uint64_t task_index) {
    return Rng(TaskSeed(base_seed, task_index));
  }

  // Instance form: a child stream for task `task_index`, derived from the
  // generator's current state WITHOUT advancing it (const), so forking for
  // task i never perturbs the parent or tasks j != i.
  Rng ForkForTask(uint64_t task_index) const {
    return ForTask(state_[0] ^ Rotl(state_[2], 17) ^ state_[3], task_index);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace support

#endif  // SRC_SUPPORT_RNG_H_
