#include "src/support/thread_pool.h"

#include <cstdlib>
#include <exception>

namespace support {
namespace {

thread_local bool tl_in_parallel_region = false;

// RAII marker for nested-region detection; restores the previous value so
// serial regions nested inside parallel ones unwind correctly.
class RegionGuard {
 public:
  RegionGuard() : previous_(tl_in_parallel_region) { tl_in_parallel_region = true; }
  ~RegionGuard() { tl_in_parallel_region = previous_; }

 private:
  bool previous_;
};

}  // namespace

int ResolveThreadCount(int requested) {
  if (requested > 0) {
    return requested;
  }
  if (const char* env = std::getenv("CLAIR_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) {
      return parsed;
    }
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? static_cast<int>(hardware) : 1;
}

bool InParallelRegion() { return tl_in_parallel_region; }

// One parallel region. Indices are pre-split into per-participant stripes;
// claims go through each stripe's atomic cursor so an index runs exactly
// once no matter which participant (owner or thief) claims it.
struct ThreadPool::Job {
  struct alignas(64) Stripe {
    std::atomic<size_t> next{0};
    size_t end = 0;
  };

  const std::function<void(size_t)>* body = nullptr;
  const std::function<void(size_t)>* on_index_done = nullptr;  // Optional.
  size_t n = 0;
  std::vector<Stripe> stripes;
  std::atomic<size_t> completed{0};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr error;
};

ThreadPool::ThreadPool(int threads) {
  const int resolved = ResolveThreadCount(threads);
  workers_.reserve(static_cast<size_t>(resolved - 1));
  for (int i = 1; i < resolved; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stopping_ || generation_ != seen_generation; });
      if (stopping_) {
        return;
      }
      seen_generation = generation_;
      job = job_;
    }
    if (job != nullptr) {
      // Stripe 0 belongs to the caller; workers own 1..k-1. The worker index
      // does not matter for correctness (stealing covers every stripe), so a
      // cheap thread-id hash spreads the starting points.
      const size_t stripe =
          1 + std::hash<std::thread::id>{}(std::this_thread::get_id()) %
                  (job->stripes.size() - 1);
      Participate(*job, stripe);
    }
  }
}

void ThreadPool::Participate(Job& job, size_t first_stripe) {
  RegionGuard guard;
  const size_t stripe_count = job.stripes.size();
  for (size_t offset = 0; offset < stripe_count; ++offset) {
    Job::Stripe& stripe = job.stripes[(first_stripe + offset) % stripe_count];
    for (;;) {
      const size_t index = stripe.next.fetch_add(1);
      if (index >= stripe.end) {
        break;
      }
      if (!job.failed.load(std::memory_order_relaxed)) {
        try {
          (*job.body)(index);
          if (job.on_index_done != nullptr) {
            (*job.on_index_done)(index);
          }
        } catch (...) {
          std::lock_guard<std::mutex> lock(job.error_mutex);
          if (!job.error) {
            job.error = std::current_exception();
          }
          job.failed.store(true, std::memory_order_relaxed);
        }
      }
      if (job.completed.fetch_add(1) + 1 == job.n) {
        job.completed.notify_all();
      }
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& body) {
  static const std::function<void(size_t)> kNoHook;
  ParallelFor(n, body, kNoHook);
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& body,
                             const std::function<void(size_t)>& on_index_done) {
  if (n == 0) {
    return;
  }
  // Serial paths: a 1-participant pool, a tiny range, or a nested region.
  // All reproduce exact serial order; the parallel path reproduces the same
  // *results* because output slots are indexed and seeds are per-index.
  if (workers_.empty() || n == 1 || tl_in_parallel_region) {
    RegionGuard guard;
    for (size_t i = 0; i < n; ++i) {
      body(i);
      if (on_index_done) {
        on_index_done(i);
      }
    }
    return;
  }

  std::lock_guard<std::mutex> submit_lock(submit_mutex_);
  auto job = std::make_shared<Job>();
  job->body = &body;
  job->on_index_done = on_index_done ? &on_index_done : nullptr;
  job->n = n;
  const size_t participants = workers_.size() + 1;
  job->stripes = std::vector<Job::Stripe>(participants);
  for (size_t p = 0; p < participants; ++p) {
    job->stripes[p].next.store(n * p / participants);
    job->stripes[p].end = n * (p + 1) / participants;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = job;
    ++generation_;
  }
  wake_.notify_all();

  Participate(*job, 0);
  // Wait until every claimed index has finished executing (claims drain to
  // n even on failure — failed regions skip bodies but still count).
  size_t done = job->completed.load();
  while (done < n) {
    job->completed.wait(done);
    done = job->completed.load();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_.reset();
  }
  if (job->error) {
    std::rethrow_exception(job->error);
  }
}

namespace {

std::mutex global_pool_mutex;
std::unique_ptr<ThreadPool> global_pool;

}  // namespace

ThreadPool& ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(global_pool_mutex);
  if (global_pool == nullptr) {
    global_pool = std::make_unique<ThreadPool>(0);
  }
  return *global_pool;
}

void ThreadPool::SetGlobalThreads(int threads) {
  std::lock_guard<std::mutex> lock(global_pool_mutex);
  global_pool = std::make_unique<ThreadPool>(threads);
}

void ParallelFor(size_t n, const std::function<void(size_t)>& body) {
  ThreadPool::Global().ParallelFor(n, body);
}

}  // namespace support
