#include "src/support/interval_set.h"

#include <algorithm>

namespace support {
namespace {

// True when `r` lies entirely before value `lo` with at least a one-value
// gap (so it can neither overlap nor coalesce with a range starting at lo).
bool EndsStrictlyBefore(const IntervalSet::Range& r, int64_t lo) {
  return lo != INT64_MIN && r.hi < lo - 1;
}

}  // namespace

IntervalSet IntervalSet::Of(int64_t lo, int64_t hi) {
  IntervalSet s;
  s.Insert(lo, hi);
  return s;
}

IntervalSet IntervalSet::FromConstantInterval(const ConstantInterval& ci) {
  if (ci.is_empty()) return IntervalSet();
  return Of(ci.min_defined ? ci.min : INT64_MIN,
            ci.max_defined ? ci.max : INT64_MAX);
}

void IntervalSet::Insert(int64_t lo, int64_t hi) {
  if (lo > hi) return;
  // Everything before `first` ends at least two below lo; everything from
  // `first` to `last` overlaps or touches [lo, hi] and is coalesced into it.
  const auto first =
      std::partition_point(ranges_.begin(), ranges_.end(),
                           [&](const Range& r) { return EndsStrictlyBefore(r, lo); });
  auto last = first;
  int64_t merged_lo = lo;
  int64_t merged_hi = hi;
  while (last != ranges_.end() && (hi == INT64_MAX || last->lo <= hi + 1)) {
    merged_lo = std::min(merged_lo, last->lo);
    merged_hi = std::max(merged_hi, last->hi);
    ++last;
  }
  if (first == last) {
    ranges_.insert(first, Range{lo, hi});
    return;
  }
  first->lo = merged_lo;
  first->hi = merged_hi;
  ranges_.erase(first + 1, last);
}

void IntervalSet::Remove(int64_t lo, int64_t hi) {
  if (lo > hi || ranges_.empty()) return;
  IntersectWith(Of(lo, hi).Complement());
}

void IntervalSet::UnionWith(const IntervalSet& other) {
  for (const Range& r : other.ranges_) Insert(r.lo, r.hi);
}

void IntervalSet::IntersectWith(const IntervalSet& other) {
  std::vector<Range> out;
  size_t i = 0;
  size_t j = 0;
  while (i < ranges_.size() && j < other.ranges_.size()) {
    const Range& a = ranges_[i];
    const Range& b = other.ranges_[j];
    const int64_t lo = std::max(a.lo, b.lo);
    const int64_t hi = std::min(a.hi, b.hi);
    if (lo <= hi) out.push_back(Range{lo, hi});
    // Advance whichever range ends first; the other may still overlap more.
    if (a.hi < b.hi) {
      ++i;
    } else {
      ++j;
    }
  }
  ranges_ = std::move(out);
}

IntervalSet IntervalSet::Complement() const {
  IntervalSet out;
  int64_t cursor = INT64_MIN;
  bool cursor_valid = true;  // False once a range reaches INT64_MAX.
  for (const Range& r : ranges_) {
    if (cursor_valid && r.lo > cursor) {
      out.ranges_.push_back(Range{cursor, r.lo - 1});
    }
    if (r.hi == INT64_MAX) {
      cursor_valid = false;
    } else {
      cursor = r.hi + 1;
    }
  }
  if (cursor_valid) out.ranges_.push_back(Range{cursor, INT64_MAX});
  return out;
}

bool IntervalSet::Contains(int64_t x) const {
  const auto it =
      std::partition_point(ranges_.begin(), ranges_.end(),
                           [&](const Range& r) { return r.hi < x; });
  return it != ranges_.end() && it->lo <= x;
}

ConstantInterval IntervalSet::Hull() const {
  if (ranges_.empty()) return ConstantInterval::Empty();
  ConstantInterval hull = ConstantInterval::Everything();
  if (ranges_.front().lo != INT64_MIN) {
    hull.min = ranges_.front().lo;
    hull.min_defined = true;
  }
  if (ranges_.back().hi != INT64_MAX) {
    hull.max = ranges_.back().hi;
    hull.max_defined = true;
  }
  return hull;
}

uint64_t IntervalSet::Cardinality(bool* saturated) const {
  unsigned __int128 total = 0;
  for (const Range& r : ranges_) {
    const uint64_t span =
        static_cast<uint64_t>(r.hi) - static_cast<uint64_t>(r.lo);
    total += static_cast<unsigned __int128>(span) + 1;
  }
  const bool overflow = total > static_cast<unsigned __int128>(UINT64_MAX);
  if (saturated != nullptr) *saturated = overflow;
  return overflow ? UINT64_MAX : static_cast<uint64_t>(total);
}

}  // namespace support
