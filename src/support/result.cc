#include "src/support/result.h"

#include <cstdio>
#include <cstdlib>

namespace support {
namespace internal {

[[noreturn]] void ResultArmViolation(const char* accessor, const std::string& held) {
  std::fprintf(stderr, "fatal: %s accessed the wrong arm; held state: %s\n",
               accessor, held.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace support
