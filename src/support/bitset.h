// Word-packed bit sets for the dataflow fixpoint engine.
//
// All dataflow state (reaching-def sets, live-reg sets, taint sets) is stored
// as 64-bit words so the transfer functions run word-at-a-time instead of
// bit-at-a-time: UnionWith/IntersectWith/SubtractWith fold a whole row in
// bits/64 operations and report whether anything changed, which is exactly
// the signal the priority worklist needs to decide whether dependents must
// be revisited. BitMatrix packs all rows of one analysis into a single flat
// arena (one allocation per analysis instead of one per block), and rows are
// handed out as non-owning spans.
//
// None of these types are thread-safe; each analysis owns its state and the
// parallel runtime shards work at whole-function granularity.
#ifndef SRC_SUPPORT_BITSET_H_
#define SRC_SUPPORT_BITSET_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace support {

namespace bitset_detail {

inline constexpr size_t kWordBits = 64;

inline constexpr size_t WordsFor(size_t bits) {
  return (bits + kWordBits - 1) / kWordBits;
}

// Mask selecting the valid bits of the final word (all-ones when the width is
// a multiple of 64). Keeping trailing bits zero is an invariant of every
// mutator below, so equality and popcount can stay whole-word.
inline constexpr uint64_t TailMask(size_t bits) {
  const size_t rem = bits % kWordBits;
  return rem == 0 ? ~uint64_t{0} : (uint64_t{1} << rem) - 1;
}

}  // namespace bitset_detail

// Read-only view of a packed bit row.
class ConstBitSpan {
 public:
  ConstBitSpan() = default;
  ConstBitSpan(const uint64_t* words, size_t bits) : words_(words), bits_(bits) {}

  size_t size() const { return bits_; }
  size_t num_words() const { return bitset_detail::WordsFor(bits_); }
  const uint64_t* words() const { return words_; }

  bool Test(size_t i) const {
    return (words_[i / 64] >> (i % 64)) & uint64_t{1};
  }

  size_t Count() const {
    size_t total = 0;
    for (size_t w = 0; w < num_words(); ++w) {
      total += static_cast<size_t>(std::popcount(words_[w]));
    }
    return total;
  }

  bool None() const {
    for (size_t w = 0; w < num_words(); ++w) {
      if (words_[w] != 0) {
        return false;
      }
    }
    return true;
  }

  // Calls `fn(index)` for every set bit in ascending order, skipping zero
  // words entirely.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t w = 0; w < num_words(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        fn(w * 64 + static_cast<size_t>(bit));
        word &= word - 1;
      }
    }
  }

  friend bool operator==(const ConstBitSpan& a, const ConstBitSpan& b) {
    if (a.bits_ != b.bits_) {
      return false;
    }
    return std::memcmp(a.words_, b.words_, a.num_words() * sizeof(uint64_t)) == 0;
  }

 private:
  const uint64_t* words_ = nullptr;
  size_t bits_ = 0;
};

// Mutable view of a packed bit row. All binary operations require both sides
// to have the same width.
class BitSpan {
 public:
  BitSpan() = default;
  BitSpan(uint64_t* words, size_t bits) : words_(words), bits_(bits) {}

  operator ConstBitSpan() const { return ConstBitSpan(words_, bits_); }

  size_t size() const { return bits_; }
  size_t num_words() const { return bitset_detail::WordsFor(bits_); }
  const uint64_t* words() const { return words_; }
  uint64_t* words() { return words_; }

  bool Test(size_t i) const {
    return (words_[i / 64] >> (i % 64)) & uint64_t{1};
  }
  void Set(size_t i) { words_[i / 64] |= uint64_t{1} << (i % 64); }
  void Reset(size_t i) { words_[i / 64] &= ~(uint64_t{1} << (i % 64)); }

  void ClearAll() { std::memset(words_, 0, num_words() * sizeof(uint64_t)); }

  void CopyFrom(ConstBitSpan src) {
    std::memcpy(words_, src.words(), num_words() * sizeof(uint64_t));
  }

  // dst |= src; returns true if dst changed.
  bool UnionWith(ConstBitSpan src) {
    uint64_t changed = 0;
    const uint64_t* s = src.words();
    for (size_t w = 0; w < num_words(); ++w) {
      const uint64_t merged = words_[w] | s[w];
      changed |= merged ^ words_[w];
      words_[w] = merged;
    }
    return changed != 0;
  }

  // dst &= src; returns true if dst changed.
  bool IntersectWith(ConstBitSpan src) {
    uint64_t changed = 0;
    const uint64_t* s = src.words();
    for (size_t w = 0; w < num_words(); ++w) {
      const uint64_t merged = words_[w] & s[w];
      changed |= merged ^ words_[w];
      words_[w] = merged;
    }
    return changed != 0;
  }

  // dst &= ~src; returns true if dst changed.
  bool SubtractWith(ConstBitSpan src) {
    uint64_t changed = 0;
    const uint64_t* s = src.words();
    for (size_t w = 0; w < num_words(); ++w) {
      const uint64_t merged = words_[w] & ~s[w];
      changed |= merged ^ words_[w];
      words_[w] = merged;
    }
    return changed != 0;
  }

  // dst = (base \ kill) | gen in one pass; returns true if dst changed.
  bool AssignTransfer(ConstBitSpan base, ConstBitSpan kill, ConstBitSpan gen) {
    uint64_t changed = 0;
    const uint64_t* b = base.words();
    const uint64_t* k = kill.words();
    const uint64_t* g = gen.words();
    for (size_t w = 0; w < num_words(); ++w) {
      const uint64_t merged = (b[w] & ~k[w]) | g[w];
      changed |= merged ^ words_[w];
      words_[w] = merged;
    }
    return changed != 0;
  }

  // dst = src; returns true if dst changed.
  bool AssignFrom(ConstBitSpan src) {
    uint64_t changed = 0;
    const uint64_t* s = src.words();
    for (size_t w = 0; w < num_words(); ++w) {
      changed |= words_[w] ^ s[w];
      words_[w] = s[w];
    }
    return changed != 0;
  }

  size_t Count() const { return ConstBitSpan(*this).Count(); }
  bool None() const { return ConstBitSpan(*this).None(); }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    ConstBitSpan(*this).ForEach(fn);
  }

  friend bool operator==(const BitSpan& a, const BitSpan& b) {
    return ConstBitSpan(a) == ConstBitSpan(b);
  }

 private:
  uint64_t* words_ = nullptr;
  size_t bits_ = 0;
};

// Owning bit set (a single row).
class BitSet {
 public:
  BitSet() = default;
  explicit BitSet(size_t bits)
      : words_(bitset_detail::WordsFor(bits), 0), bits_(bits) {}

  void Resize(size_t bits) {
    words_.assign(bitset_detail::WordsFor(bits), 0);
    bits_ = bits;
  }

  size_t size() const { return bits_; }
  BitSpan Span() { return BitSpan(words_.data(), bits_); }
  ConstBitSpan Span() const { return ConstBitSpan(words_.data(), bits_); }
  operator BitSpan() { return Span(); }
  operator ConstBitSpan() const { return Span(); }

  bool Test(size_t i) const { return Span().Test(i); }
  void Set(size_t i) { Span().Set(i); }
  void Reset(size_t i) { Span().Reset(i); }
  void ClearAll() { Span().ClearAll(); }
  size_t Count() const { return Span().Count(); }
  bool None() const { return Span().None(); }
  bool UnionWith(ConstBitSpan src) { return Span().UnionWith(src); }
  bool IntersectWith(ConstBitSpan src) { return Span().IntersectWith(src); }
  bool SubtractWith(ConstBitSpan src) { return Span().SubtractWith(src); }
  bool AssignFrom(ConstBitSpan src) { return Span().AssignFrom(src); }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    Span().ForEach(fn);
  }

  friend bool operator==(const BitSet& a, const BitSet& b) {
    return a.Span() == b.Span();
  }

 private:
  std::vector<uint64_t> words_;
  size_t bits_ = 0;
};

// rows × bits matrix backed by one flat word arena. Rows are 64-bit aligned
// so every row operation is pure word arithmetic.
class BitMatrix {
 public:
  BitMatrix() = default;
  BitMatrix(size_t rows, size_t bits)
      : words_(rows * bitset_detail::WordsFor(bits), 0),
        rows_(rows),
        bits_(bits),
        stride_(bitset_detail::WordsFor(bits)) {}

  size_t rows() const { return rows_; }
  size_t bits() const { return bits_; }

  BitSpan Row(size_t r) { return BitSpan(words_.data() + r * stride_, bits_); }
  ConstBitSpan Row(size_t r) const {
    return ConstBitSpan(words_.data() + r * stride_, bits_);
  }

 private:
  std::vector<uint64_t> words_;
  size_t rows_ = 0;
  size_t bits_ = 0;
  size_t stride_ = 0;
};

}  // namespace support

#endif  // SRC_SUPPORT_BITSET_H_
