#include "src/support/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace support {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Mean(std::span<const double> xs) {
  if (xs.empty()) {
    return 0.0;
  }
  return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

double Variance(std::span<const double> xs) {
  RunningStats rs;
  for (double x : xs) {
    rs.Add(x);
  }
  return rs.variance();
}

double StdDev(std::span<const double> xs) { return std::sqrt(Variance(xs)); }

double PearsonCorrelation(std::span<const double> xs, std::span<const double> ys) {
  const size_t n = std::min(xs.size(), ys.size());
  if (n < 2) {
    return 0.0;
  }
  const double mx = Mean(xs.subspan(0, n));
  const double my = Mean(ys.subspan(0, n));
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) {
    return 0.0;
  }
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> AverageRanks(std::span<const double> xs) {
  const size_t n = xs.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) {
      ++j;
    }
    // Tie group [i, j]: all get the average 1-based rank.
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) {
      ranks[order[k]] = avg_rank;
    }
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(std::span<const double> xs, std::span<const double> ys) {
  const size_t n = std::min(xs.size(), ys.size());
  if (n < 2) {
    return 0.0;
  }
  const auto rx = AverageRanks(xs.subspan(0, n));
  const auto ry = AverageRanks(ys.subspan(0, n));
  return PearsonCorrelation(rx, ry);
}

double Quantile(std::span<const double> xs, double q) {
  if (xs.empty()) {
    return 0.0;
  }
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Median(std::span<const double> xs) { return Quantile(xs, 0.5); }

LinearFit FitLine(std::span<const double> xs, std::span<const double> ys) {
  LinearFit fit;
  const size_t n = std::min(xs.size(), ys.size());
  fit.n = n;
  if (n < 2) {
    return fit;
  }
  const double mx = Mean(xs.subspan(0, n));
  const double my = Mean(ys.subspan(0, n));
  double sxy = 0.0;
  double sxx = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
  }
  if (sxx <= 0.0) {
    fit.intercept = my;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double pred = fit.intercept + fit.slope * xs[i];
    ss_res += (ys[i] - pred) * (ys[i] - pred);
    ss_tot += (ys[i] - my) * (ys[i] - my);
  }
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 0.0;
  return fit;
}

LinearFit FitLogLog(std::span<const double> xs, std::span<const double> ys) {
  std::vector<double> lx;
  std::vector<double> ly;
  const size_t n = std::min(xs.size(), ys.size());
  lx.reserve(n);
  ly.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (xs[i] > 0.0 && ys[i] > 0.0) {
      lx.push_back(std::log10(xs[i]));
      ly.push_back(std::log10(ys[i]));
    }
  }
  return FitLine(lx, ly);
}

}  // namespace support
