// Descriptive statistics and simple regression used throughout the
// evaluation pipeline (Figure 2/3 trend lines, model metrics, corpus
// calibration checks).
#ifndef SRC_SUPPORT_STATS_H_
#define SRC_SUPPORT_STATS_H_

#include <cstddef>
#include <span>
#include <vector>

namespace support {

// Streaming mean/variance (Welford). Numerically stable; O(1) per sample.
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

double Mean(std::span<const double> xs);
double Variance(std::span<const double> xs);  // Sample variance.
double StdDev(std::span<const double> xs);

// Pearson product-moment correlation; 0 if either side is constant.
double PearsonCorrelation(std::span<const double> xs, std::span<const double> ys);

// Spearman rank correlation (average ranks for ties).
double SpearmanCorrelation(std::span<const double> xs, std::span<const double> ys);

// q in [0,1]; linear interpolation between order statistics.
double Quantile(std::span<const double> xs, double q);
double Median(std::span<const double> xs);

// Ordinary least squares y = intercept + slope * x.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;  // Coefficient of determination.
  size_t n = 0;
};

LinearFit FitLine(std::span<const double> xs, std::span<const double> ys);

// Fits in log10–log10 space, dropping non-positive points (the paper's
// Figure 2 bucket-by-order-of-magnitude regression).
LinearFit FitLogLog(std::span<const double> xs, std::span<const double> ys);

// Ranks with ties averaged; helper exposed for tests.
std::vector<double> AverageRanks(std::span<const double> xs);

}  // namespace support

#endif  // SRC_SUPPORT_STATS_H_
