// Logical-clock leases for supervising distributed(-style) work.
//
// The shard coordinator (clair/shard.h) hands each worker a lease on the
// shard it claimed; the worker renews the lease with heartbeats and the
// coordinator revokes it — and steals the work — when the lease expires.
// Wall clocks make that protocol untestable (a revocation depends on
// scheduler timing), so leases here run on a LeaseClock: a logical tick
// counter the supervisor advances once per supervision round. One tick =
// one Poll() of the worker transport, so "TTL of 3 ticks" means "three
// supervision rounds without a surviving heartbeat" on every transport,
// simulated or real, and a seeded chaos schedule replays identically.
#ifndef SRC_SUPPORT_LEASE_H_
#define SRC_SUPPORT_LEASE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace support {

// Monotonic logical clock; starts at 0, advanced only by its owner.
class LeaseClock {
 public:
  uint64_t now() const { return now_; }
  uint64_t Tick() { return ++now_; }

 private:
  uint64_t now_ = 0;
};

struct LeaseInfo {
  int holder = -1;          // Worker slot holding the lease.
  uint64_t expires_at = 0;  // First tick at which the lease counts expired.
  uint64_t renewals = 0;    // Heartbeats that reached the supervisor.
};

// Resource-id -> lease map with deterministic (sorted) iteration. Not
// thread-safe: the supervisor owns it and mutates it from one loop.
class LeaseTable {
 public:
  // `ttl` is the number of ticks a lease stays live past its last renewal;
  // a claim at tick T expires at T + ttl (so ttl = 1 means "must renew
  // every tick"). A ttl of 0 is clamped to 1.
  explicit LeaseTable(uint64_t ttl);

  // Grants `holder` a fresh lease on `resource`, replacing any prior one.
  void Claim(int resource, int holder, uint64_t now);

  // Extends the lease iff `holder` still owns it (a heartbeat from a
  // revoked worker must not resurrect the lease). Returns whether it did.
  bool Renew(int resource, int holder, uint64_t now);

  // Drops the lease (normal completion or revocation).
  void Release(int resource);

  // Resources whose lease has expired as of `now`, in resource order.
  std::vector<int> Expired(uint64_t now) const;

  // The live lease on `resource`, or nullptr.
  const LeaseInfo* Find(int resource) const;

  size_t active() const { return leases_.size(); }

 private:
  uint64_t ttl_;
  std::map<int, LeaseInfo> leases_;
};

}  // namespace support

#endif  // SRC_SUPPORT_LEASE_H_
