#include "src/support/lease.h"

namespace support {

LeaseTable::LeaseTable(uint64_t ttl) : ttl_(ttl == 0 ? 1 : ttl) {}

void LeaseTable::Claim(int resource, int holder, uint64_t now) {
  LeaseInfo lease;
  lease.holder = holder;
  lease.expires_at = now + ttl_;
  leases_[resource] = lease;
}

bool LeaseTable::Renew(int resource, int holder, uint64_t now) {
  const auto it = leases_.find(resource);
  if (it == leases_.end() || it->second.holder != holder) {
    return false;
  }
  it->second.expires_at = now + ttl_;
  ++it->second.renewals;
  return true;
}

void LeaseTable::Release(int resource) { leases_.erase(resource); }

std::vector<int> LeaseTable::Expired(uint64_t now) const {
  std::vector<int> expired;
  for (const auto& [resource, lease] : leases_) {
    if (now >= lease.expires_at) {
      expired.push_back(resource);
    }
  }
  return expired;
}

const LeaseInfo* LeaseTable::Find(int resource) const {
  const auto it = leases_.find(resource);
  return it == leases_.end() ? nullptr : &it->second;
}

}  // namespace support
