// Cooperative stage watchdog.
//
// Threads cannot be killed, so a runaway analyzer is bounded cooperatively:
// the stage owner hands the analyzer a Deadline and the analyzer's loops
// Tick() it, bailing out once the budget is spent. Two budgets compose:
//
//   - a *step* budget — deterministic: expiry is a pure function of the work
//     done, so a tripped watchdog trips at the same logical point at any
//     CLAIR_THREADS value and results stay bit-identical;
//   - a *wall-clock* budget — nondeterministic by nature, off by default,
//     for production sweeps that must survive genuinely pathological inputs
//     even when the step budget was mis-sized. The clock is polled only
//     every `wall_check_interval` ticks to keep the hot path cheap.
//
// Expiry is sticky; analyzers either return a partial result (the concrete
// interpreter reports kStepLimit) or call ThrowIfExpired and let the stage
// wrapper downgrade the stage to neutral features.
#ifndef SRC_SUPPORT_DEADLINE_H_
#define SRC_SUPPORT_DEADLINE_H_

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace support {

class DeadlineExceeded : public std::runtime_error {
 public:
  explicit DeadlineExceeded(const std::string& what) : std::runtime_error(what) {}
};

class Deadline {
 public:
  // 0 disables the corresponding budget; a default-constructed Deadline is
  // unlimited and Tick() never fails.
  explicit Deadline(uint64_t max_steps = 0, int wall_ms = 0,
                    uint64_t wall_check_interval = 1024)
      : max_steps_(max_steps), wall_check_interval_(wall_check_interval) {
    if (wall_ms > 0) {
      wall_deadline_ = Clock::now() + std::chrono::milliseconds(wall_ms);
      wall_armed_ = true;
      next_wall_check_ = wall_check_interval_;
    }
  }

  static Deadline Unlimited() { return Deadline(); }
  static Deadline Steps(uint64_t max_steps) { return Deadline(max_steps); }
  static Deadline WallClock(int wall_ms) { return Deadline(0, wall_ms); }

  // Consumes `steps` units of budget. Returns false once expired (sticky).
  bool Tick(uint64_t steps = 1) {
    if (expired_) {
      return false;
    }
    steps_ += steps;
    if (max_steps_ != 0 && steps_ > max_steps_) {
      expired_ = true;
      return false;
    }
    if (wall_armed_ && steps_ >= next_wall_check_) {
      next_wall_check_ = steps_ + wall_check_interval_;
      if (Clock::now() > wall_deadline_) {
        expired_ = true;
        return false;
      }
    }
    return true;
  }

  // Tick that throws DeadlineExceeded on expiry, tagged with the stage name.
  void TickOrThrow(const char* stage, uint64_t steps = 1) {
    if (!Tick(steps)) {
      ThrowExpired(stage);
    }
  }

  void ThrowIfExpired(const char* stage) const {
    if (expired_) {
      ThrowExpired(stage);
    }
  }

  bool expired() const { return expired_; }
  uint64_t steps_used() const { return steps_; }

 private:
  using Clock = std::chrono::steady_clock;

  [[noreturn]] void ThrowExpired(const char* stage) const {
    throw DeadlineExceeded(std::string("stage '") + stage +
                           "' exceeded its watchdog budget after " +
                           std::to_string(steps_) + " steps");
  }

  uint64_t max_steps_ = 0;
  uint64_t steps_ = 0;
  uint64_t wall_check_interval_ = 1024;
  uint64_t next_wall_check_ = 0;
  bool wall_armed_ = false;
  bool expired_ = false;
  Clock::time_point wall_deadline_{};
};

}  // namespace support

#endif  // SRC_SUPPORT_DEADLINE_H_
