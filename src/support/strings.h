// Small string utilities shared by the parsers and serializers.
#ifndef SRC_SUPPORT_STRINGS_H_
#define SRC_SUPPORT_STRINGS_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace support {

// Splits on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view text, char sep);

// Splits on any whitespace run, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view text);

std::string_view TrimLeft(std::string_view text);
std::string_view TrimRight(std::string_view text);
std::string_view Trim(std::string_view text);

std::string Join(const std::vector<std::string>& parts, std::string_view sep);

std::string ToLower(std::string_view text);
std::string ToUpper(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// Strict integer / double parsing; std::nullopt on any trailing garbage.
std::optional<long long> ParseInt(std::string_view text);
std::optional<double> ParseDouble(std::string_view text);

// printf-style formatting into a std::string.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace support

#endif  // SRC_SUPPORT_STRINGS_H_
