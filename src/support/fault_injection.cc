#include "src/support/fault_injection.h"

#include <cstdio>
#include <cstdlib>

#include "src/support/strings.h"

namespace support {
namespace {

thread_local uint32_t tl_fault_attempt = 0;

// SplitMix64 finalizer: full-avalanche mixing so adjacent keys (query
// indices, file positions) land on independent verdicts.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

FaultInjector* GlobalSlot() {
  static FaultInjector* injector = [] {
    auto* made = new FaultInjector();
    if (const char* env = std::getenv("CLAIR_FAULTS")) {
      auto parsed = FaultInjector::Parse(env);
      if (parsed.ok()) {
        *made = parsed.value();
      } else {
        std::fprintf(stderr, "CLAIR_FAULTS ignored: %s\n",
                     parsed.error().ToString().c_str());
      }
    }
    return made;
  }();
  return injector;
}

}  // namespace

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kParse:
      return "parse";
    case FaultSite::kLower:
      return "lower";
    case FaultSite::kDataflow:
      return "dataflow";
    case FaultSite::kIntervals:
      return "intervals";
    case FaultSite::kSolver:
      return "solver";
    case FaultSite::kDynamic:
      return "dynamic";
    case FaultSite::kCache:
      return "cache";
    case FaultSite::kWorkerCrash:
      return "worker_crash";
    case FaultSite::kHeartbeatLoss:
      return "heartbeat_loss";
    case FaultSite::kSiteCount:
      break;
  }
  return "?";
}

InjectedFault::InjectedFault(FaultSite site, uint64_t key)
    : std::runtime_error(Format("injected fault at site '%s' (key=%llx)",
                                FaultSiteName(site),
                                static_cast<unsigned long long>(key))),
      site_(site) {}

uint64_t FaultKey(std::string_view bytes, uint64_t seed) {
  uint64_t hash = seed;
  for (const char c : bytes) {
    hash = (hash ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  }
  return hash;
}

uint64_t FaultKeyMix(uint64_t a, uint64_t b) { return Mix64(a ^ Mix64(b)); }

FaultInjector::FaultInjector(const FaultInjector& other)
    : rates_(other.rates_), seed_(other.seed_), any_(other.any_) {
  for (int i = 0; i < kFaultSiteCount; ++i) {
    injected_[static_cast<size_t>(i)].store(
        other.injected_[static_cast<size_t>(i)].load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
}

FaultInjector& FaultInjector::operator=(const FaultInjector& other) {
  rates_ = other.rates_;
  seed_ = other.seed_;
  any_ = other.any_;
  for (int i = 0; i < kFaultSiteCount; ++i) {
    injected_[static_cast<size_t>(i)].store(
        other.injected_[static_cast<size_t>(i)].load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
  return *this;
}

Result<FaultInjector> FaultInjector::Parse(std::string_view config) {
  FaultInjector injector;
  for (const auto& raw_entry : Split(config, ',')) {
    const auto entry = Trim(raw_entry);
    if (entry.empty()) {
      continue;
    }
    const size_t colon = entry.find(':');
    if (colon == std::string_view::npos) {
      return Error(Error::Code::kInvalidArgument,
                   Format("fault entry '%s': expected site:rate",
                          std::string(entry).c_str()));
    }
    const auto name = Trim(entry.substr(0, colon));
    const std::string value(Trim(entry.substr(colon + 1)));
    if (name == "seed") {
      const auto seed = ParseInt(value);
      if (!seed || *seed < 0) {
        return Error(Error::Code::kInvalidArgument,
                     Format("fault seed '%s': expected a non-negative integer",
                            value.c_str()));
      }
      injector.seed_ = static_cast<uint64_t>(*seed);
      continue;
    }
    int site = -1;
    for (int i = 0; i < kFaultSiteCount; ++i) {
      if (name == FaultSiteName(static_cast<FaultSite>(i))) {
        site = i;
        break;
      }
    }
    if (site < 0) {
      return Error(Error::Code::kInvalidArgument,
                   Format("unknown fault site '%s'", std::string(name).c_str()));
    }
    const auto rate = ParseDouble(value);
    if (!rate) {
      return Error(Error::Code::kInvalidArgument,
                   Format("fault rate '%s': expected a number", value.c_str()));
    }
    injector.rates_[static_cast<size_t>(site)] =
        *rate < 0.0 ? 0.0 : (*rate > 1.0 ? 1.0 : *rate);
  }
  for (const double rate : injector.rates_) {
    injector.any_ = injector.any_ || rate > 0.0;
  }
  return injector;
}

FaultInjector& FaultInjector::Global() { return *GlobalSlot(); }

bool FaultInjector::ShouldFailSlow(FaultSite site, uint64_t key,
                                   uint32_t attempt) const {
  const double rate = rates_[static_cast<size_t>(site)];
  if (rate <= 0.0) {
    return false;
  }
  bool fail = rate >= 1.0;
  if (!fail) {
    uint64_t h = Mix64(seed_ ^ (static_cast<uint64_t>(site) << 56));
    h = FaultKeyMix(h, key);
    h = FaultKeyMix(h, attempt);
    // Top 53 bits as a uniform draw in [0, 1).
    fail = static_cast<double>(h >> 11) * 0x1.0p-53 < rate;
  }
  if (fail) {
    injected_[static_cast<size_t>(site)].fetch_add(1, std::memory_order_relaxed);
  }
  return fail;
}

void FaultInjector::ResetCounters() {
  for (auto& counter : injected_) {
    counter.store(0, std::memory_order_relaxed);
  }
}

std::string FaultInjector::ConfigString() const {
  std::string out;
  for (int i = 0; i < kFaultSiteCount; ++i) {
    if (rates_[static_cast<size_t>(i)] > 0.0) {
      if (!out.empty()) {
        out += ',';
      }
      out += Format("%s:%g", FaultSiteName(static_cast<FaultSite>(i)),
                    rates_[static_cast<size_t>(i)]);
    }
  }
  if (any_ && seed_ != 0) {
    out += Format(",seed:%llu", static_cast<unsigned long long>(seed_));
  }
  return out;
}

uint64_t FaultInjector::Fingerprint() const {
  if (!any_) {
    return 0;
  }
  return FaultKey(ConfigString(), FaultKey("clair.faults.v1"));
}

uint32_t FaultInjector::CurrentAttempt() { return tl_fault_attempt; }

FaultInjector::ScopedAttempt::ScopedAttempt(uint32_t attempt)
    : previous_(tl_fault_attempt) {
  tl_fault_attempt = attempt;
}

FaultInjector::ScopedAttempt::~ScopedAttempt() { tl_fault_attempt = previous_; }

FaultInjector::ScopedConfig::ScopedConfig(std::string_view config)
    : previous_(FaultInjector::Global()) {
  auto parsed = FaultInjector::Parse(config);
  if (!parsed.ok()) {
    std::fprintf(stderr, "ScopedConfig: %s\n", parsed.error().ToString().c_str());
    std::abort();
  }
  *GlobalSlot() = parsed.value();
}

FaultInjector::ScopedConfig::~ScopedConfig() { *GlobalSlot() = previous_; }

}  // namespace support
