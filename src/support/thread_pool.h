// Deterministic parallel runtime.
//
// A fixed-size pool of workers plus `ParallelFor`/`ParallelMap` helpers that
// split an index range into per-participant stripes; each participant drains
// its own stripe first and then steals remaining indices from the other
// stripes, so uneven tasks (apps of very different sizes, trees of different
// depths) still load-balance. Determinism contract: results are collected in
// index order and callers derive any randomness from a stable per-index seed
// (`Rng::TaskSeed`), so output is bit-identical to the serial run regardless
// of worker count or scheduling.
//
// Worker-count resolution: an explicit count wins; otherwise the
// `CLAIR_THREADS` environment variable; otherwise `hardware_concurrency`.
// A count of 1 spawns no threads and reproduces the exact serial behaviour.
// Nested parallel regions are safe: a `ParallelFor` issued from inside a
// running task executes inline on the calling worker (no deadlock, no
// oversubscription).
#ifndef SRC_SUPPORT_THREAD_POOL_H_
#define SRC_SUPPORT_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace support {

// Worker count after applying the resolution policy above. `requested` <= 0
// defers to CLAIR_THREADS / hardware_concurrency; the result is always >= 1.
int ResolveThreadCount(int requested = 0);

// True while the calling thread is executing a task inside ParallelFor (on
// any pool). Used to collapse nested parallel regions to inline execution.
bool InParallelRegion();

class ThreadPool {
 public:
  // `threads` <= 0 resolves via ResolveThreadCount(). A pool of size k runs
  // tasks on k participants: k-1 spawned workers plus the submitting thread.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total participants (spawned workers + the caller).
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  // Runs body(0..n-1), each index exactly once, blocking until all finish.
  // The first exception thrown by any task is rethrown on the caller after
  // the region drains; remaining unclaimed indices are skipped. Reentrant
  // calls (from inside a task) run inline and serially.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  // Completion-hook variant: invokes `on_index_done(i)` on the executing
  // participant immediately after body(i) returns normally (a throwing body
  // skips its hook). The hook runs concurrently with other bodies, so it
  // must be thread-safe; keep it short — it executes on the worker's time.
  // The serving scheduler uses this to publish per-request results while the
  // rest of a batch wave is still running, instead of at the region barrier.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body,
                   const std::function<void(size_t)>& on_index_done);

  // Ordered map: out[i] = fn(i), collected in index order. T must be
  // default-constructible and movable.
  template <typename T, typename Fn>
  std::vector<T> ParallelMap(size_t n, Fn&& fn) {
    std::vector<T> out(n);
    ParallelFor(n, [&](size_t i) { out[i] = fn(i); });
    return out;
  }

  // The process-wide pool, created on first use with ResolveThreadCount(0).
  static ThreadPool& Global();
  // Replaces the global pool (0 = re-resolve from the environment). Must not
  // be called while a parallel region is running; intended for startup
  // configuration and for tests comparing worker counts.
  static void SetGlobalThreads(int threads);

 private:
  struct Job;

  void WorkerLoop();
  static void Participate(Job& job, size_t first_stripe);

  std::vector<std::thread> workers_;
  std::mutex mutex_;                  // Guards job_ and generation_.
  std::condition_variable wake_;
  std::shared_ptr<Job> job_;
  uint64_t generation_ = 0;
  bool stopping_ = false;
  std::mutex submit_mutex_;           // One parallel region per pool at a time.
};

// Helpers running on the global pool.
void ParallelFor(size_t n, const std::function<void(size_t)>& body);

template <typename T, typename Fn>
std::vector<T> ParallelMap(size_t n, Fn&& fn) {
  return ThreadPool::Global().ParallelMap<T>(n, std::forward<Fn>(fn));
}

}  // namespace support

#endif  // SRC_SUPPORT_THREAD_POOL_H_
