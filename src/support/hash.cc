#include "src/support/hash.h"

#include <array>

namespace support {
namespace {

// Reflected CRC-64/ECMA-182 byte table, built once at first use. The
// reflected polynomial of 0x42F0E1EBA9EA3693 is 0xC96C5795D7870F42.
constexpr uint64_t kPolyReflected = 0xC96C5795D7870F42ull;

std::array<uint64_t, 256> BuildTable() {
  std::array<uint64_t, 256> table{};
  for (uint64_t byte = 0; byte < 256; ++byte) {
    uint64_t crc = byte;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) != 0 ? (crc >> 1) ^ kPolyReflected : crc >> 1;
    }
    table[byte] = crc;
  }
  return table;
}

const std::array<uint64_t, 256>& Table() {
  static const std::array<uint64_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint64_t Crc64Update(uint64_t state, const void* data, size_t size) {
  const auto& table = Table();
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    state = table[(state ^ bytes[i]) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

uint64_t Crc64(const void* data, size_t size) {
  return Crc64Finish(Crc64Update(kCrc64Init, data, size));
}

}  // namespace support
