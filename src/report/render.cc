#include "src/report/render.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/support/strings.h"

namespace report {
namespace {

struct Range {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();

  void Extend(double v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  bool valid() const { return lo <= hi; }
};

std::string FormatTick(double value, bool log_scale) {
  const double shown = log_scale ? std::pow(10.0, value) : value;
  if (std::fabs(shown) >= 10000 || (std::fabs(shown) < 0.01 && shown != 0.0)) {
    return support::Format("%.1e", shown);
  }
  if (shown == std::floor(shown)) {
    return support::Format("%.0f", shown);
  }
  return support::Format("%.2f", shown);
}

}  // namespace

std::string RenderScatter(const std::vector<Series>& series, const ScatterOptions& options) {
  Range rx;
  Range ry;
  struct Point {
    double x;
    double y;
    char glyph;
  };
  std::vector<Point> points;
  for (const auto& s : series) {
    const size_t n = std::min(s.xs.size(), s.ys.size());
    for (size_t i = 0; i < n; ++i) {
      double x = s.xs[i];
      double y = s.ys[i];
      if (options.log_x) {
        if (x <= 0.0) {
          continue;
        }
        x = std::log10(x);
      }
      if (options.log_y) {
        if (y <= 0.0) {
          continue;
        }
        y = std::log10(y);
      }
      rx.Extend(x);
      ry.Extend(y);
      points.push_back({x, y, s.glyph});
    }
  }
  std::string out;
  if (!options.title.empty()) {
    out += options.title + "\n";
  }
  if (!rx.valid() || !ry.valid()) {
    return out + "(no data)\n";
  }
  if (rx.hi - rx.lo < 1e-12) {
    rx.hi = rx.lo + 1.0;
  }
  if (ry.hi - ry.lo < 1e-12) {
    ry.hi = ry.lo + 1.0;
  }
  const int w = options.width;
  const int h = options.height;
  std::vector<std::string> grid(static_cast<size_t>(h), std::string(static_cast<size_t>(w),
                                                                    ' '));
  for (const auto& p : points) {
    const int col = static_cast<int>((p.x - rx.lo) / (rx.hi - rx.lo) * (w - 1) + 0.5);
    const int row = static_cast<int>((p.y - ry.lo) / (ry.hi - ry.lo) * (h - 1) + 0.5);
    const int r = h - 1 - row;
    if (r >= 0 && r < h && col >= 0 && col < w) {
      grid[static_cast<size_t>(r)][static_cast<size_t>(col)] = p.glyph;
    }
  }
  // Y-axis labels on the left (top, middle, bottom ticks).
  const std::string y_top = FormatTick(ry.hi, options.log_y);
  const std::string y_mid = FormatTick((ry.hi + ry.lo) / 2.0, options.log_y);
  const std::string y_bot = FormatTick(ry.lo, options.log_y);
  size_t label_width = std::max({y_top.size(), y_mid.size(), y_bot.size()});
  for (int r = 0; r < h; ++r) {
    std::string label(label_width, ' ');
    if (r == 0) {
      label = y_top;
    } else if (r == h / 2) {
      label = y_mid;
    } else if (r == h - 1) {
      label = y_bot;
    }
    label.resize(label_width, ' ');
    out += label + " |" + grid[static_cast<size_t>(r)] + "\n";
  }
  out += std::string(label_width, ' ') + " +" + std::string(static_cast<size_t>(w), '-') +
         "\n";
  const std::string x_lo = FormatTick(rx.lo, options.log_x);
  const std::string x_hi = FormatTick(rx.hi, options.log_x);
  std::string x_axis = std::string(label_width, ' ') + "  " + x_lo;
  const std::string x_line_end = x_hi;
  const size_t target = label_width + 2 + static_cast<size_t>(w) - x_line_end.size();
  if (x_axis.size() < target) {
    x_axis += std::string(target - x_axis.size(), ' ');
  }
  x_axis += x_line_end;
  out += x_axis + "\n";
  if (!options.x_label.empty()) {
    out += std::string(label_width, ' ') + "  [x: " + options.x_label +
           (options.log_x ? ", log scale" : "") + "]\n";
  }
  if (!options.y_label.empty()) {
    out += std::string(label_width, ' ') + "  [y: " + options.y_label +
           (options.log_y ? ", log scale" : "") + "]\n";
  }
  // Legend.
  for (const auto& s : series) {
    out += support::Format("%*s  %c = %s\n", static_cast<int>(label_width), "", s.glyph,
                           s.label.c_str());
  }
  return out;
}

std::string RenderBars(const std::vector<Bar>& bars, int width, const std::string& title) {
  std::string out;
  if (!title.empty()) {
    out += title + "\n";
  }
  double max_value = 0.0;
  size_t label_width = 0;
  for (const auto& bar : bars) {
    max_value = std::max(max_value, bar.value);
    label_width = std::max(label_width, bar.label.size());
  }
  if (max_value <= 0.0) {
    max_value = 1.0;
  }
  for (const auto& bar : bars) {
    const int len = static_cast<int>(bar.value / max_value * width + 0.5);
    std::string label = bar.label;
    label.resize(label_width, ' ');
    out += support::Format("%s |%s %.0f\n", label.c_str(),
                           std::string(static_cast<size_t>(len), '#').c_str(), bar.value);
  }
  return out;
}

std::string RenderTable(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows) {
  std::vector<size_t> widths(header.size());
  for (size_t c = 0; c < header.size(); ++c) {
    widths[c] = header[c].size();
  }
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c >= widths.size()) {
        widths.push_back(row[c].size());
      } else {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
  }
  auto render_row = [&widths](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < widths.size(); ++c) {
      std::string cell = c < cells.size() ? cells[c] : "";
      cell.resize(widths[c], ' ');
      line += cell;
      if (c + 1 < widths.size()) {
        line += "  ";
      }
    }
    return line + "\n";
  };
  std::string out = render_row(header);
  size_t total = 0;
  for (const size_t w : widths) {
    total += w;
  }
  total += 2 * (widths.empty() ? 0 : widths.size() - 1);
  out += std::string(total, '-') + "\n";
  for (const auto& row : rows) {
    out += render_row(row);
  }
  return out;
}

std::string ToCsv(const std::vector<std::string>& header,
                  const std::vector<std::vector<std::string>>& rows) {
  auto quote = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) {
      return cell;
    }
    std::string quoted = "\"";
    for (const char c : cell) {
      if (c == '"') {
        quoted += "\"\"";
      } else {
        quoted += c;
      }
    }
    return quoted + "\"";
  };
  std::string out;
  for (size_t c = 0; c < header.size(); ++c) {
    if (c > 0) {
      out += ',';
    }
    out += quote(header[c]);
  }
  out += '\n';
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        out += ',';
      }
      out += quote(row[c]);
    }
    out += '\n';
  }
  return out;
}

}  // namespace report
