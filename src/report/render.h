// Terminal rendering of the paper's figures: log-log scatter plots with
// multiple series, aligned tables, histograms, and CSV emission.
#ifndef SRC_REPORT_RENDER_H_
#define SRC_REPORT_RENDER_H_

#include <string>
#include <vector>

namespace report {

struct Series {
  std::string label;
  char glyph = '*';
  std::vector<double> xs;
  std::vector<double> ys;
};

struct ScatterOptions {
  int width = 72;      // Plot area columns.
  int height = 24;     // Plot area rows.
  bool log_x = false;
  bool log_y = false;
  std::string x_label;
  std::string y_label;
  std::string title;
};

// Renders a multi-series scatter plot with axis tick labels. Non-positive
// points are dropped on log axes.
std::string RenderScatter(const std::vector<Series>& series, const ScatterOptions& options);

// Renders a horizontal bar chart (used for Figure 1's per-venue counts).
struct Bar {
  std::string label;
  double value = 0.0;
};
std::string RenderBars(const std::vector<Bar>& bars, int width = 60,
                       const std::string& title = "");

// Aligned monospace table; `rows[i].size()` may differ, short rows pad.
std::string RenderTable(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows);

// CSV with proper quoting.
std::string ToCsv(const std::vector<std::string>& header,
                  const std::vector<std::vector<std::string>>& rows);

}  // namespace report

#endif  // SRC_REPORT_RENDER_H_
