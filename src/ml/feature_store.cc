#include "src/ml/feature_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>

#include "src/support/hash.h"

namespace ml {
namespace {

static_assert(std::endian::native == std::endian::little,
              "FeatureStore persists raw little-endian columns");

constexpr char kHeaderMagic[8] = {'C', 'L', 'F', 'S', 'T', 'O', 'R', '1'};
constexpr char kFooterMagic[8] = {'C', 'L', 'F', 'S', 'E', 'N', 'D', '1'};
constexpr uint64_t kVersion = 1;
constexpr size_t kHeaderSize = 32;
constexpr size_t kFooterSize = 16;
constexpr size_t kFrameHeaderSize = 16;  // kind + reserved + payload_bytes.

enum BlockKind : uint32_t {
  kSchemaBlock = 1,
  kDataChunk = 2,
  kCodesChunk = 3,
  kStringTable = 4,
  kBinDirectory = 5,
  kDirectoryBlock = 6,
};

constexpr uint64_t Pad8(uint64_t n) { return (n + 7) & ~uint64_t{7}; }

template <typename T>
void AppendPod(std::vector<uint8_t>& out, const T& value) {
  const auto* bytes = reinterpret_cast<const uint8_t*>(&value);
  out.insert(out.end(), bytes, bytes + sizeof(T));
}

void AppendBytes(std::vector<uint8_t>& out, const void* data, size_t size) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  out.insert(out.end(), bytes, bytes + size);
}

void AppendString(std::vector<uint8_t>& out, std::string_view s) {
  AppendPod(out, static_cast<uint32_t>(s.size()));
  AppendBytes(out, s.data(), s.size());
}

template <typename T>
T LoadPod(const uint8_t* p) {
  T value;
  std::memcpy(&value, p, sizeof(T));
  return value;
}

// Cursor over a validated payload for parsing variable-length records.
struct PayloadReader {
  const uint8_t* p;
  size_t remaining;

  template <typename T>
  bool Read(T& out) {
    if (remaining < sizeof(T)) {
      return false;
    }
    out = LoadPod<T>(p);
    p += sizeof(T);
    remaining -= sizeof(T);
    return true;
  }
  bool ReadString(std::string& out) {
    uint32_t len = 0;
    if (!Read(len) || remaining < len) {
      return false;
    }
    out.assign(reinterpret_cast<const char*>(p), len);
    p += len;
    remaining -= len;
    return true;
  }
};

// Expected data-chunk payload size: rows count, targets, columns, name ids.
uint64_t DataPayloadSize(uint64_t rows, uint64_t features) {
  return 8 + rows * (8 + features * 8 + 4);
}

uint64_t CodesPayloadSize(uint64_t rows, uint64_t features) {
  return 8 + rows * features;
}

support::Error MakeError(support::Error::Code code, const std::string& message) {
  return support::Error(code, message);
}

}  // namespace

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

support::Result<std::unique_ptr<FeatureStoreWriter>> FeatureStoreWriter::Create(
    const std::string& path, std::vector<std::string> feature_names,
    std::vector<std::string> class_names, FeatureStoreOptions options) {
  auto writer = std::unique_ptr<FeatureStoreWriter>(new FeatureStoreWriter());
  writer->path_ = path;
  writer->options_ = options;
  writer->options_.chunk_rows = std::max<size_t>(1, options.chunk_rows);
  writer->options_.max_bins = std::clamp<uint16_t>(options.max_bins, 2, 256);
  writer->feature_names_ = std::move(feature_names);
  writer->class_names_ = std::move(class_names);
  writer->file_.open(path, std::ios::in | std::ios::out | std::ios::binary |
                               std::ios::trunc);
  if (!writer->file_) {
    return MakeError(support::Error::Code::kNotFound,
                     "feature store: cannot create " + path);
  }

  const size_t d = writer->feature_names_.size();
  writer->chunk_columns_.resize(d);
  writer->distinct_values_.resize(d);
  writer->distinct_counts_.resize(d);

  // Header.
  std::vector<uint8_t> header;
  AppendBytes(header, kHeaderMagic, sizeof(kHeaderMagic));
  AppendPod(header, kVersion);
  AppendPod(header, uint64_t{writer->class_names_.empty() ? 0u : 1u});
  AppendPod(header, static_cast<uint64_t>(writer->options_.chunk_rows));
  writer->file_.write(reinterpret_cast<const char*>(header.data()),
                      static_cast<std::streamsize>(header.size()));

  // Schema block first, so even a truncated file is interpretable.
  std::vector<uint8_t> schema;
  AppendPod(schema, static_cast<uint64_t>(d));
  AppendPod(schema, static_cast<uint64_t>(writer->class_names_.size()));
  AppendString(schema, writer->class_names_.empty() ? "target" : "class");
  for (const auto& name : writer->feature_names_) {
    AppendString(schema, name);
  }
  for (const auto& name : writer->class_names_) {
    AppendString(schema, name);
  }
  writer->WriteBlock(kSchemaBlock, schema);
  if (!writer->file_) {
    return MakeError(support::Error::Code::kInternal,
                     "feature store: header write failed for " + path);
  }
  return writer;
}

uint32_t FeatureStoreWriter::InternString(std::string_view name) {
  const auto it = string_ids_.find(std::string(name));
  if (it != string_ids_.end()) {
    return it->second;
  }
  const auto id = static_cast<uint32_t>(strings_.size());
  strings_.emplace_back(name);
  string_ids_.emplace(strings_.back(), id);
  return id;
}

void FeatureStoreWriter::Append(std::string_view name,
                                std::span<const double> features, double target) {
  assert(!finished_);
  assert(features.size() == feature_names_.size());
  if (!class_names_.empty()) {
    assert(target >= 0 && target < static_cast<double>(class_names_.size()));
  }
  for (size_t j = 0; j < features.size(); ++j) {
    chunk_columns_[j].push_back(features[j]);
  }
  chunk_targets_.push_back(target);
  chunk_name_ids_.push_back(InternString(name));
  ++rows_appended_;
  if (chunk_targets_.size() >= options_.chunk_rows) {
    FlushChunk();
  }
}

void FeatureStoreWriter::MergeChunkDistincts() {
  // Fold this chunk's sorted distinct (value, count) runs into the
  // cumulative per-column lists, so Finish() can quantile-bin without ever
  // materialising a full column.
  std::vector<double> sorted;
  for (size_t j = 0; j < chunk_columns_.size(); ++j) {
    sorted.assign(chunk_columns_[j].begin(), chunk_columns_[j].end());
    std::sort(sorted.begin(), sorted.end());
    auto& values = distinct_values_[j];
    auto& counts = distinct_counts_[j];
    std::vector<double> merged_values;
    std::vector<size_t> merged_counts;
    merged_values.reserve(values.size() + sorted.size());
    merged_counts.reserve(values.size() + sorted.size());
    size_t a = 0;  // Cursor into the cumulative list.
    size_t b = 0;  // Cursor into the chunk's sorted raw values.
    auto push = [&](double v, size_t c) {
      if (!merged_values.empty() && merged_values.back() == v) {
        merged_counts.back() += c;
      } else {
        merged_values.push_back(v);
        merged_counts.push_back(c);
      }
    };
    while (a < values.size() || b < sorted.size()) {
      if (b >= sorted.size() || (a < values.size() && values[a] <= sorted[b])) {
        push(values[a], counts[a]);
        ++a;
      } else {
        push(sorted[b], 1);
        ++b;
      }
    }
    values = std::move(merged_values);
    counts = std::move(merged_counts);
  }
}

void FeatureStoreWriter::FlushChunk() {
  const uint64_t rows = chunk_targets_.size();
  if (rows == 0) {
    return;
  }
  MergeChunkDistincts();
  std::vector<uint8_t> payload;
  payload.reserve(DataPayloadSize(rows, feature_names_.size()));
  AppendPod(payload, rows);
  AppendBytes(payload, chunk_targets_.data(), rows * sizeof(double));
  for (auto& column : chunk_columns_) {
    AppendBytes(payload, column.data(), rows * sizeof(double));
  }
  AppendBytes(payload, chunk_name_ids_.data(), rows * sizeof(uint32_t));
  ChunkInfo info;
  info.data_offset = WriteBlock(kDataChunk, payload);
  info.rows = rows;
  chunk_index_.push_back(info);
  for (auto& column : chunk_columns_) {
    column.clear();
  }
  chunk_targets_.clear();
  chunk_name_ids_.clear();
}

uint64_t FeatureStoreWriter::WriteBlock(uint32_t kind,
                                        std::span<const uint8_t> payload) {
  file_.seekp(0, std::ios::end);
  const auto offset = static_cast<uint64_t>(file_.tellp());
  std::vector<uint8_t> frame;
  frame.reserve(kFrameHeaderSize + Pad8(payload.size()) + 8);
  AppendPod(frame, kind);
  AppendPod(frame, uint32_t{0});
  AppendPod(frame, static_cast<uint64_t>(payload.size()));
  AppendBytes(frame, payload.data(), payload.size());
  frame.resize(kFrameHeaderSize + Pad8(payload.size()), 0);
  AppendPod(frame, support::Crc64(payload.data(), payload.size()));
  file_.write(reinterpret_cast<const char*>(frame.data()),
              static_cast<std::streamsize>(frame.size()));
  return offset;
}

support::Result<uint64_t> FeatureStoreWriter::Finish() {
  if (finished_) {
    return MakeError(support::Error::Code::kFailedPrecondition,
                     "feature store: Finish called twice");
  }
  finished_ = true;
  FlushChunk();
  const size_t d = feature_names_.size();

  uint64_t bin_dir_offset = 0;
  if (options_.write_codes) {
    // Quantile bins from the merged distinct-value lists — the exact
    // arithmetic BinnedView::Build runs on an in-memory column, so stored
    // codes are bit-identical to a BinnedView of the same rows.
    std::vector<BinBoundaries> bins(d);
    for (size_t j = 0; j < d; ++j) {
      bins[j] = ComputeBinBoundaries(distinct_values_[j], distinct_counts_[j],
                                     rows_appended_, options_.max_bins);
    }

    // Second sequential pass: re-read each chunk's raw columns and emit its
    // uint8 code block. Peak memory stays one column of one chunk.
    file_.flush();
    std::ifstream reader(path_, std::ios::binary);
    if (!reader) {
      return MakeError(support::Error::Code::kInternal,
                       "feature store: reopen for codes pass failed");
    }
    std::vector<double> column;
    std::vector<uint8_t> payload;
    for (auto& info : chunk_index_) {
      const uint64_t rows = info.rows;
      payload.clear();
      payload.reserve(CodesPayloadSize(rows, d));
      AppendPod(payload, rows);
      column.resize(rows);
      for (size_t j = 0; j < d; ++j) {
        const uint64_t column_offset =
            info.data_offset + kFrameHeaderSize + 8 + (1 + j) * rows * 8;
        reader.seekg(static_cast<std::streamoff>(column_offset));
        reader.read(reinterpret_cast<char*>(column.data()),
                    static_cast<std::streamsize>(rows * sizeof(double)));
        if (!reader) {
          return MakeError(support::Error::Code::kInternal,
                           "feature store: codes pass re-read failed");
        }
        for (const double v : column) {
          payload.push_back(bins[j].CodeOf(v));
        }
      }
      info.codes_offset = WriteBlock(kCodesChunk, payload);
    }

    std::vector<uint8_t> bin_payload;
    for (size_t j = 0; j < d; ++j) {
      AppendPod(bin_payload, static_cast<uint32_t>(bins[j].num_bins()));
      AppendPod(bin_payload, static_cast<uint32_t>(bins[j].exact ? 1 : 0));
      AppendBytes(bin_payload, bins[j].thresholds.data(),
                  bins[j].thresholds.size() * sizeof(double));
    }
    bin_dir_offset = WriteBlock(kBinDirectory, bin_payload);
  }

  std::vector<uint8_t> string_payload;
  AppendPod(string_payload, static_cast<uint64_t>(strings_.size()));
  for (const auto& s : strings_) {
    AppendString(string_payload, s);
  }
  const uint64_t string_offset = WriteBlock(kStringTable, string_payload);

  std::vector<uint8_t> directory;
  AppendPod(directory, rows_appended_);
  AppendPod(directory, string_offset);
  AppendPod(directory, bin_dir_offset);
  AppendPod(directory, static_cast<uint64_t>(chunk_index_.size()));
  for (const auto& info : chunk_index_) {
    AppendPod(directory, info.data_offset);
    AppendPod(directory, info.codes_offset);
    AppendPod(directory, info.rows);
  }
  const uint64_t directory_offset = WriteBlock(kDirectoryBlock, directory);

  std::vector<uint8_t> footer;
  AppendPod(footer, directory_offset);
  AppendBytes(footer, kFooterMagic, sizeof(kFooterMagic));
  file_.seekp(0, std::ios::end);
  file_.write(reinterpret_cast<const char*>(footer.data()),
              static_cast<std::streamsize>(footer.size()));
  file_.flush();
  if (!file_) {
    return MakeError(support::Error::Code::kInternal,
                     "feature store: finalisation write failed");
  }
  file_.close();
  return rows_appended_;
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

namespace {

// A validated block: payload pointer + size, or invalid.
struct BlockView {
  bool ok = false;
  uint32_t kind = 0;
  const uint8_t* payload = nullptr;
  uint64_t payload_size = 0;
  uint64_t end_offset = 0;  // Offset just past the block.
};

// Frame + bounds + crc check for the block starting at `offset`.
BlockView ValidateBlock(const uint8_t* base, size_t file_size, uint64_t offset) {
  BlockView view;
  if (offset + kFrameHeaderSize + 8 > file_size || (offset & 7) != 0) {
    return view;
  }
  view.kind = LoadPod<uint32_t>(base + offset);
  view.payload_size = LoadPod<uint64_t>(base + offset + 8);
  const uint64_t end =
      offset + kFrameHeaderSize + Pad8(view.payload_size) + 8;
  if (end > file_size || end < offset) {
    return view;
  }
  view.payload = base + offset + kFrameHeaderSize;
  view.end_offset = end;
  const uint64_t stored_crc = LoadPod<uint64_t>(base + end - 8);
  view.ok = support::Crc64(view.payload, view.payload_size) == stored_crc;
  return view;
}

void ReleaseRange(const uint8_t* base, uint64_t begin, uint64_t length) {
  const long page = sysconf(_SC_PAGESIZE);
  if (page <= 0 || length == 0) {
    return;
  }
  const auto page_size = static_cast<uint64_t>(page);
  const uint64_t aligned_begin = begin & ~(page_size - 1);
  const uint64_t aligned_end = (begin + length + page_size - 1) & ~(page_size - 1);
  ::madvise(const_cast<uint8_t*>(base + aligned_begin),
            static_cast<size_t>(aligned_end - aligned_begin), MADV_DONTNEED);
}

}  // namespace

support::Result<FeatureStore> FeatureStore::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return MakeError(support::Error::Code::kNotFound,
                     "feature store: cannot open " + path);
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return MakeError(support::Error::Code::kInternal,
                     "feature store: stat failed for " + path);
  }
  const auto file_size = static_cast<size_t>(st.st_size);
  if (file_size < kHeaderSize) {
    ::close(fd);
    return MakeError(support::Error::Code::kParseError,
                     "feature store: file shorter than header");
  }
  void* mapping = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
  if (mapping == MAP_FAILED) {
    ::close(fd);
    return MakeError(support::Error::Code::kInternal,
                     "feature store: mmap failed for " + path);
  }

  FeatureStore store;
  store.base_ = static_cast<const uint8_t*>(mapping);
  store.file_size_ = file_size;
  store.fd_ = fd;

  const uint8_t* base = store.base_;
  if (std::memcmp(base, kHeaderMagic, sizeof(kHeaderMagic)) != 0 ||
      LoadPod<uint64_t>(base + 8) != kVersion) {
    return MakeError(support::Error::Code::kParseError,
                     "feature store: bad magic/version in " + path);
  }

  // Schema: required, immediately after the header.
  const BlockView schema = ValidateBlock(base, file_size, kHeaderSize);
  if (!schema.ok || schema.kind != kSchemaBlock) {
    return MakeError(support::Error::Code::kParseError,
                     "feature store: schema block corrupt in " + path);
  }
  {
    PayloadReader cursor{schema.payload, schema.payload_size};
    uint64_t num_features = 0;
    uint64_t num_classes = 0;
    if (!cursor.Read(num_features) || !cursor.Read(num_classes) ||
        !cursor.ReadString(store.target_name_)) {
      return MakeError(support::Error::Code::kParseError,
                       "feature store: schema payload malformed");
    }
    store.feature_names_.resize(num_features);
    for (auto& name : store.feature_names_) {
      if (!cursor.ReadString(name)) {
        return MakeError(support::Error::Code::kParseError,
                         "feature store: schema payload malformed");
      }
    }
    store.class_names_.resize(num_classes);
    for (auto& name : store.class_names_) {
      if (!cursor.ReadString(name)) {
        return MakeError(support::Error::Code::kParseError,
                         "feature store: schema payload malformed");
      }
    }
  }
  const uint64_t d = store.feature_names_.size();

  auto parse_string_table = [&](const BlockView& block) {
    PayloadReader cursor{block.payload, block.payload_size};
    uint64_t count = 0;
    if (!cursor.Read(count)) {
      return;
    }
    store.string_table_.resize(count);
    for (auto& s : store.string_table_) {
      if (!cursor.ReadString(s)) {
        store.string_table_.clear();
        return;
      }
    }
  };

  // Fast path: footer -> directory -> per-chunk validation.
  bool directory_ok = false;
  if (file_size >= kHeaderSize + kFooterSize &&
      std::memcmp(base + file_size - 8, kFooterMagic, 8) == 0) {
    const uint64_t directory_offset = LoadPod<uint64_t>(base + file_size - 16);
    const BlockView dir = ValidateBlock(base, file_size, directory_offset);
    if (dir.ok && dir.kind == kDirectoryBlock) {
      PayloadReader cursor{dir.payload, dir.payload_size};
      uint64_t total_rows = 0;
      uint64_t string_offset = 0;
      uint64_t bin_dir_offset = 0;
      uint64_t num_chunks = 0;
      if (cursor.Read(total_rows) && cursor.Read(string_offset) &&
          cursor.Read(bin_dir_offset) && cursor.Read(num_chunks)) {
        directory_ok = true;
        bool all_codes_ok = bin_dir_offset != 0;

        if (bin_dir_offset != 0) {
          const BlockView bin_dir = ValidateBlock(base, file_size, bin_dir_offset);
          if (bin_dir.ok && bin_dir.kind == kBinDirectory) {
            PayloadReader bins{bin_dir.payload, bin_dir.payload_size};
            store.bins_.resize(d);
            for (auto& info : store.bins_) {
              uint32_t num_bins = 0;
              uint32_t exact = 0;
              if (!bins.Read(num_bins) || !bins.Read(exact) ||
                  bins.remaining < (num_bins > 0 ? (num_bins - 1) * 8u : 0)) {
                store.bins_.clear();
                break;
              }
              info.num_bins = static_cast<uint16_t>(num_bins);
              info.exact = exact != 0;
              const size_t thresholds = num_bins > 0 ? num_bins - 1 : 0;
              info.thresholds.resize(thresholds);
              std::memcpy(info.thresholds.data(), bins.p, thresholds * 8);
              bins.p += thresholds * 8;
              bins.remaining -= thresholds * 8;
            }
          }
          if (store.bins_.size() != d) {
            all_codes_ok = false;
          }
        }

        for (uint64_t c = 0; c < num_chunks; ++c) {
          uint64_t data_offset = 0;
          uint64_t codes_offset = 0;
          uint64_t rows = 0;
          if (!cursor.Read(data_offset) || !cursor.Read(codes_offset) ||
              !cursor.Read(rows)) {
            break;
          }
          const BlockView data = ValidateBlock(base, file_size, data_offset);
          if (!data.ok || data.kind != kDataChunk ||
              data.payload_size != DataPayloadSize(rows, d) ||
              LoadPod<uint64_t>(data.payload) != rows) {
            ++store.stats_.dropped_chunks;
            continue;
          }
          ChunkRef ref;
          ref.data_payload = data_offset + kFrameHeaderSize;
          ref.rows = rows;
          if (codes_offset != 0) {
            const BlockView codes = ValidateBlock(base, file_size, codes_offset);
            if (codes.ok && codes.kind == kCodesChunk &&
                codes.payload_size == CodesPayloadSize(rows, d)) {
              ref.codes_payload = codes_offset + kFrameHeaderSize;
              ReleaseRange(base, codes_offset, codes.end_offset - codes_offset);
            } else {
              all_codes_ok = false;
            }
          } else {
            all_codes_ok = false;
          }
          ReleaseRange(base, data_offset, data.end_offset - data_offset);
          ref.row_begin = store.total_rows_;
          store.total_rows_ += rows;
          store.chunks_.push_back(ref);
        }

        const BlockView strings = ValidateBlock(base, file_size, string_offset);
        if (strings.ok && strings.kind == kStringTable) {
          parse_string_table(strings);
        }
        store.has_codes_ = all_codes_ok;
      }
    }
  }

  if (!directory_ok) {
    // Scan recovery: torn footer or corrupt directory. Walk block frames
    // forward from the schema and keep every intact data chunk; codes are
    // not served in this mode (their pairing is only recorded in the lost
    // directory).
    store.stats_.recovered_by_scan = true;
    store.has_codes_ = false;
    uint64_t offset = schema.end_offset;
    while (offset < file_size) {
      if (offset + kFrameHeaderSize + 8 > file_size) {
        // Leftover tail bytes; a bare (stale) footer is not corruption.
        if (file_size - offset != kFooterSize ||
            std::memcmp(base + file_size - 8, kFooterMagic, 8) != 0) {
          ++store.stats_.dropped_chunks;
        }
        break;
      }
      const uint32_t kind = LoadPod<uint32_t>(base + offset);
      const uint64_t payload_size = LoadPod<uint64_t>(base + offset + 8);
      const uint64_t end = offset + kFrameHeaderSize + Pad8(payload_size) + 8;
      if (kind < kSchemaBlock || kind > kDirectoryBlock || end > file_size ||
          end <= offset) {
        // Unframeable bytes: truncated mid-block.
        ++store.stats_.dropped_chunks;
        break;
      }
      const BlockView block = ValidateBlock(base, file_size, offset);
      if (block.ok) {
        if (kind == kDataChunk &&
            payload_size >= 8 &&
            payload_size == DataPayloadSize(LoadPod<uint64_t>(block.payload), d)) {
          ChunkRef ref;
          ref.data_payload = offset + kFrameHeaderSize;
          ref.rows = LoadPod<uint64_t>(block.payload);
          ref.row_begin = store.total_rows_;
          store.total_rows_ += ref.rows;
          store.chunks_.push_back(ref);
        } else if (kind == kStringTable) {
          parse_string_table(block);
        }
        ReleaseRange(base, offset, end - offset);
      } else if (kind == kDataChunk) {
        ++store.stats_.dropped_chunks;
      }
      offset = end;
    }
  }

  return store;
}

FeatureStore::FeatureStore(FeatureStore&& other) noexcept { *this = std::move(other); }

FeatureStore& FeatureStore::operator=(FeatureStore&& other) noexcept {
  if (this == &other) {
    return *this;
  }
  Unmap();
  base_ = other.base_;
  file_size_ = other.file_size_;
  fd_ = other.fd_;
  feature_names_ = std::move(other.feature_names_);
  class_names_ = std::move(other.class_names_);
  target_name_ = std::move(other.target_name_);
  chunks_ = std::move(other.chunks_);
  string_table_ = std::move(other.string_table_);
  bins_ = std::move(other.bins_);
  total_rows_ = other.total_rows_;
  has_codes_ = other.has_codes_;
  stats_ = other.stats_;
  other.base_ = nullptr;
  other.file_size_ = 0;
  other.fd_ = -1;
  return *this;
}

FeatureStore::~FeatureStore() { Unmap(); }

void FeatureStore::Unmap() {
  if (base_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(base_), file_size_);
    base_ = nullptr;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

FeatureStore::Chunk FeatureStore::chunk(size_t i) const {
  const ChunkRef& ref = chunks_[i];
  Chunk out;
  out.rows = ref.rows;
  out.row_begin = ref.row_begin;
  const uint8_t* payload = base_ + ref.data_payload;
  out.targets = {reinterpret_cast<const double*>(payload + 8), ref.rows};
  out.columns = reinterpret_cast<const double*>(payload + 8 + ref.rows * 8);
  out.name_ids = {reinterpret_cast<const uint32_t*>(
                      payload + 8 + ref.rows * 8 * (1 + feature_names_.size())),
                  ref.rows};
  if (ref.codes_payload != 0) {
    out.codes = base_ + ref.codes_payload + 8;
  }
  return out;
}

void FeatureStore::ReleaseChunk(size_t i) const {
  const ChunkRef& ref = chunks_[i];
  ReleaseRange(base_, ref.data_payload,
               DataPayloadSize(ref.rows, feature_names_.size()));
  if (ref.codes_payload != 0) {
    ReleaseRange(base_, ref.codes_payload,
                 CodesPayloadSize(ref.rows, feature_names_.size()));
  }
}

size_t FeatureStore::ChunkOf(size_t global_row) const {
  assert(global_row < total_rows_);
  size_t lo = 0;
  size_t hi = chunks_.size();
  while (lo + 1 < hi) {
    const size_t mid = (lo + hi) / 2;
    if (chunks_[mid].row_begin <= global_row) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

const std::string& FeatureStore::RowName(size_t global_row) const {
  static const std::string kUnknown;
  const size_t c = ChunkOf(global_row);
  const Chunk view = chunk(c);
  const uint32_t id = view.name_ids[global_row - view.row_begin];
  return id < string_table_.size() ? string_table_[id] : kUnknown;
}

std::vector<double> FeatureStore::GatherRow(size_t global_row) const {
  const size_t c = ChunkOf(global_row);
  const Chunk view = chunk(c);
  const size_t r = global_row - view.row_begin;
  std::vector<double> out(feature_names_.size());
  for (size_t j = 0; j < out.size(); ++j) {
    out[j] = view.Column(j)[r];
  }
  return out;
}

Dataset FeatureStore::ToDataset() const {
  Dataset data = is_classification()
                     ? Dataset::ForClassification(feature_names_, class_names_)
                     : Dataset::ForRegression(feature_names_, target_name_);
  data.Reserve(total_rows_);
  const size_t d = feature_names_.size();
  std::vector<double> row_major;
  for (size_t c = 0; c < chunks_.size(); ++c) {
    const Chunk view = chunk(c);
    row_major.resize(view.rows * d);
    for (size_t j = 0; j < d; ++j) {
      const auto column = view.Column(j);
      for (size_t r = 0; r < view.rows; ++r) {
        row_major[r * d + j] = column[r];
      }
    }
    data.AppendRows(row_major, view.targets);
    ReleaseChunk(c);
  }
  return data;
}

}  // namespace ml
