// Model evaluation: confusion matrices, classification metrics, ROC-AUC,
// regression metrics, and stratified k-fold cross-validation (§5.2: "machine
// learning tool ... with cross validation").
#ifndef SRC_ML_EVAL_H_
#define SRC_ML_EVAL_H_

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/ml/classifier.h"
#include "src/ml/dataset.h"
#include "src/support/rng.h"

namespace ml {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(size_t num_classes)
      : counts_(num_classes, std::vector<size_t>(num_classes, 0)) {}

  void Add(int actual, int predicted) {
    ++counts_[static_cast<size_t>(actual)][static_cast<size_t>(predicted)];
  }

  size_t At(int actual, int predicted) const {
    return counts_[static_cast<size_t>(actual)][static_cast<size_t>(predicted)];
  }
  size_t num_classes() const { return counts_.size(); }
  size_t Total() const;

  double Accuracy() const;
  // One-vs-rest metrics for class `c`.
  double Precision(int c) const;
  double Recall(int c) const;
  double F1(int c) const;
  // Macro averages over classes.
  double MacroF1() const;

  std::string ToString(const std::vector<std::string>& class_names) const;

 private:
  std::vector<std::vector<size_t>> counts_;
};

// Area under the ROC curve for binary problems, from per-instance scores for
// the positive class. Ties handled by trapezoidal averaging.
double RocAuc(const std::vector<double>& positive_scores, const std::vector<int>& labels);

struct RegressionMetrics {
  double r_squared = 0.0;
  double rmse = 0.0;
  double mae = 0.0;
};

RegressionMetrics EvaluateRegression(const std::vector<double>& predicted,
                                     const std::vector<double>& actual);

struct CvMetrics {
  double accuracy = 0.0;
  double macro_f1 = 0.0;
  double auc = 0.0;        // Binary problems only; 0.5 baseline otherwise.
  size_t folds = 0;
  ConfusionMatrix confusion{2};
};

// Runs stratified k-fold CV: trains a fresh classifier per fold via
// `factory`, evaluates on the held-out fold, pools the confusion matrix.
CvMetrics CrossValidate(const Dataset& data,
                        const std::function<std::unique_ptr<Classifier>()>& factory, int k,
                        uint64_t seed);

// k-fold CV for regression: pools out-of-fold predictions and scores them
// against the actual targets (so R² is computed once over all rows).
RegressionMetrics CrossValidateRegression(
    const Dataset& data, const std::function<std::unique_ptr<Regressor>()>& factory, int k,
    uint64_t seed);

// Top-K ranking quality for triage workflows (LEOPARD-style function
// ranking): rank rows by descending score and ask how many of the first K
// are truly positive. Ties break by row index (stable), so results are
// deterministic for equal-score runs.
struct RankingMetrics {
  size_t k = 0;
  size_t hits = 0;          // Positives among the top K.
  double precision = 0.0;   // hits / K.
  double recall = 0.0;      // hits / total positives.
};

// `scores[i]` is the model's positive-class score for row i, `labels[i]` is
// the 0/1 truth. One entry per requested K (Ks clamped to the row count).
std::vector<RankingMetrics> TopKRanking(std::span<const double> scores,
                                        std::span<const int> labels,
                                        std::span<const size_t> ks);

}  // namespace ml

#endif  // SRC_ML_EVAL_H_
