#include "src/ml/binned.h"

#include <algorithm>
#include <cassert>

namespace ml {
namespace {

// Distinct sorted values of `column` with their multiplicities.
void DistinctValues(std::span<const double> column, std::vector<double>& values,
                    std::vector<size_t>& counts) {
  std::vector<double> sorted(column.begin(), column.end());
  std::sort(sorted.begin(), sorted.end());
  values.clear();
  counts.clear();
  for (const double v : sorted) {
    if (values.empty() || v != values.back()) {
      values.push_back(v);
      counts.push_back(1);
    } else {
      ++counts.back();
    }
  }
}

BinnedColumn BinColumn(std::span<const double> column, uint16_t max_bins,
                       std::vector<double>& values, std::vector<size_t>& counts) {
  BinnedColumn out;
  DistinctValues(column, values, counts);
  const BinBoundaries bins =
      ComputeBinBoundaries(values, counts, column.size(), max_bins);

  out.exact = bins.exact;
  out.num_bins = bins.num_bins();
  out.thresholds = bins.thresholds;
  out.codes.resize(column.size());
  for (size_t i = 0; i < column.size(); ++i) {
    out.codes[i] = bins.CodeOf(column[i]);
  }
  return out;
}

}  // namespace

uint8_t BinBoundaries::CodeOf(double value) const {
  const auto it = std::lower_bound(upper.begin(), upper.end(), value);
  return static_cast<uint8_t>(it - upper.begin());
}

BinBoundaries ComputeBinBoundaries(std::span<const double> values,
                                   std::span<const size_t> counts,
                                   size_t total_rows, uint16_t max_bins) {
  BinBoundaries out;
  const size_t distinct = values.size();

  std::vector<double> bin_lower;  // Smallest distinct value in bin b.
  if (distinct <= max_bins) {
    // Exact mode: one bin per distinct value, so every candidate threshold
    // of the sort-based search survives binning unchanged.
    out.exact = true;
    out.upper.assign(values.begin(), values.end());
    bin_lower = out.upper;
  } else {
    // Quantile binning: close a bin once it holds >= rows/max_bins rows, so
    // heavy ties absorb into one bin and the rest split the mass evenly.
    const double per_bin =
        static_cast<double>(total_rows) / static_cast<double>(max_bins);
    size_t cum = 0;
    size_t bin_start = 0;
    for (size_t i = 0; i < distinct; ++i) {
      cum += counts[i];
      const size_t bins_made = out.upper.size();
      const bool last_value = i + 1 == distinct;
      const bool quota_met =
          static_cast<double>(cum) >= per_bin * static_cast<double>(bins_made + 1);
      // Never exceed max_bins: once max_bins - 1 bins are closed the tail
      // all lands in the final bin.
      if (last_value || (quota_met && bins_made + 1 < max_bins)) {
        bin_lower.push_back(values[bin_start]);
        out.upper.push_back(values[i]);
        bin_start = i + 1;
      }
    }
  }

  out.thresholds.reserve(out.upper.empty() ? 0 : out.upper.size() - 1);
  for (size_t b = 0; b + 1 < out.upper.size(); ++b) {
    out.thresholds.push_back(0.5 * (out.upper[b] + bin_lower[b + 1]));
  }
  return out;
}

BinnedView BinnedView::Build(const Dataset& data, uint16_t max_bins) {
  BinnedView view;
  view.max_bins_ = std::clamp<uint16_t>(max_bins, 2, 256);
  view.num_rows_ = data.num_rows();
  view.columns_.reserve(data.num_features());
  std::vector<double> values;
  std::vector<size_t> counts;
  for (size_t j = 0; j < data.num_features(); ++j) {
    view.columns_.push_back(BinColumn(data.Column(j), view.max_bins_, values, counts));
    view.all_exact_ = view.all_exact_ && view.columns_.back().exact;
  }
  return view;
}

}  // namespace ml
