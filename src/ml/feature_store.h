// Out-of-core columnar feature store: an mmap-backed binary format that
// scales ml::Dataset past RAM for fleet-wide per-function sweeps.
//
// Layout (all integers little-endian, every block 8-byte aligned):
//
//   header    32 B  "CLFSTOR1", version, flags, chunk_rows
//   schema    block: feature/class/target names (written first so a
//                    truncated file is still interpretable)
//   data      one block per chunk: targets f64[rows], then each feature
//             column f64[rows], then row-name ids u32[rows]
//   codes     one block per chunk: each feature's uint8 bin codes
//             (the BinnedView <= 256-bin invariant makes this lossless)
//   strings   deduplicating row-name table
//   bins      per-feature bin count + split thresholds
//   directory offsets of everything above
//   footer    16 B  directory offset + "CLFSEND1"
//
// Every block is framed as
//   [u32 kind][u32 reserved][u64 payload_bytes][payload][pad to 8][u64 crc64]
// in the style of the clair/serialize.h checkpoint records: the crc covers
// the payload, and the tolerant reader drops any chunk whose crc fails
// (FeatureStoreStats::dropped_chunks) instead of failing the open, mirroring
// LoadCheckpoint's dropped_blocks semantics. If the footer or directory is
// itself damaged (torn final write), Open falls back to a forward scan from
// the header and recovers every intact data chunk.
//
// The writer is append-only and chunked: rows buffer in memory until
// chunk_rows, then flush as one data block. Per-column sorted distinct-value
// lists are merged chunk-by-chunk so Finish() can compute quantile bins with
// ml::ComputeBinBoundaries — the exact routine BinnedView uses — without
// ever holding a full column; a second sequential pass re-reads each chunk
// and emits the uint8 code blocks. The reader mmaps the file and hands out
// zero-copy column spans per chunk; ReleaseChunk() drops a chunk's pages
// (madvise) so streamed consumers keep peak RSS bounded by the chunk size,
// not the row count.
#ifndef SRC_ML_FEATURE_STORE_H_
#define SRC_ML_FEATURE_STORE_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/ml/binned.h"
#include "src/ml/dataset.h"
#include "src/support/result.h"

namespace ml {

struct FeatureStoreOptions {
  // Rows buffered per chunk; the unit of streaming granularity and of the
  // reader's bounded working set.
  size_t chunk_rows = 1 << 16;
  // Bins per feature for the persisted uint8 codes (clamped to [2, 256]).
  uint16_t max_bins = BinnedView::kDefaultBins;
  // When false Finish() skips the binning pass and the store holds raw
  // columns only (reader reports has_codes() == false).
  bool write_codes = true;
};

// Chunked append-only writer. Create() writes header + schema immediately;
// Append() buffers rows and flushes full chunks; Finish() flushes the tail
// chunk, runs the binning pass, and writes string table, bin directory,
// chunk directory, and footer. The file is not a valid complete store until
// Finish() returns ok (though its data chunks are already scan-recoverable).
class FeatureStoreWriter {
 public:
  // `class_names` empty means a regression target named "target".
  static support::Result<std::unique_ptr<FeatureStoreWriter>> Create(
      const std::string& path, std::vector<std::string> feature_names,
      std::vector<std::string> class_names, FeatureStoreOptions options = {});

  FeatureStoreWriter(const FeatureStoreWriter&) = delete;
  FeatureStoreWriter& operator=(const FeatureStoreWriter&) = delete;

  // Appends one row. `name` is interned in the deduplicating string table;
  // for classification `target` must be an integral class index.
  void Append(std::string_view name, std::span<const double> features, double target);

  // Returns total rows written. No further Append after Finish.
  support::Result<uint64_t> Finish();

  uint64_t rows_appended() const { return rows_appended_; }
  size_t chunks_flushed() const { return chunk_index_.size(); }
  size_t string_count() const { return strings_.size(); }

 private:
  struct ChunkInfo {
    uint64_t data_offset = 0;
    uint64_t codes_offset = 0;
    uint64_t rows = 0;
  };

  FeatureStoreWriter() = default;

  uint32_t InternString(std::string_view name);
  void FlushChunk();
  // Appends one framed block, returns its start offset.
  uint64_t WriteBlock(uint32_t kind, std::span<const uint8_t> payload);
  void MergeChunkDistincts();

  std::fstream file_;
  std::string path_;
  FeatureStoreOptions options_;
  std::vector<std::string> feature_names_;
  std::vector<std::string> class_names_;
  bool finished_ = false;

  // Current chunk buffers (column-major).
  std::vector<std::vector<double>> chunk_columns_;
  std::vector<double> chunk_targets_;
  std::vector<uint32_t> chunk_name_ids_;

  // String intern table.
  std::vector<std::string> strings_;
  std::unordered_map<std::string, uint32_t> string_ids_;

  // Per-column sorted distinct values + multiplicities, merged per chunk.
  std::vector<std::vector<double>> distinct_values_;
  std::vector<std::vector<size_t>> distinct_counts_;

  std::vector<ChunkInfo> chunk_index_;
  uint64_t rows_appended_ = 0;
};

struct FeatureStoreStats {
  // Chunks dropped because their (or their codes block's) crc failed or the
  // file was truncated mid-chunk. Mirrors CheckpointLoadStats.
  size_t dropped_chunks = 0;
  // True when the footer/directory was unusable and the chunks were
  // recovered by a forward scan (codes are not served in this mode).
  bool recovered_by_scan = false;
};

// Read-only mmap view of a finished (or scan-recoverable) store.
class FeatureStore {
 public:
  // Validates header, schema, directory, and the crc of every block;
  // corrupt chunks are dropped (see FeatureStoreStats), corrupt
  // footer/directory triggers scan recovery. Fails only when the header or
  // schema is unusable. Verified pages are madvise-released before
  // returning, so opening a huge store does not pin it resident.
  static support::Result<FeatureStore> Open(const std::string& path);

  FeatureStore(FeatureStore&& other) noexcept;
  FeatureStore& operator=(FeatureStore&& other) noexcept;
  FeatureStore(const FeatureStore&) = delete;
  FeatureStore& operator=(const FeatureStore&) = delete;
  ~FeatureStore();

  bool is_classification() const { return !class_names_.empty(); }
  size_t num_features() const { return feature_names_.size(); }
  size_t num_classes() const { return class_names_.size(); }
  // Rows across surviving chunks.
  size_t num_rows() const { return total_rows_; }
  size_t num_chunks() const { return chunks_.size(); }
  const std::vector<std::string>& feature_names() const { return feature_names_; }
  const std::vector<std::string>& class_names() const { return class_names_; }
  const std::string& target_name() const { return target_name_; }
  const FeatureStoreStats& stats() const { return stats_; }

  // True when every surviving chunk has valid uint8 codes and the bin
  // directory is intact — the precondition for TrainStreaming.
  bool has_codes() const { return has_codes_; }
  uint16_t num_bins(size_t feature) const { return bins_[feature].num_bins; }
  bool bin_exact(size_t feature) const { return bins_[feature].exact; }
  // Split value separating bin b from b+1 (size num_bins - 1); the split
  // "after bin b" is x <= thresholds(feature)[b], as in BinnedColumn.
  std::span<const double> thresholds(size_t feature) const {
    return bins_[feature].thresholds;
  }

  // Zero-copy view of one chunk. Spans point into the mapping and stay
  // valid until the store is destroyed (ReleaseChunk only drops residency,
  // not validity).
  struct Chunk {
    size_t rows = 0;
    size_t row_begin = 0;  // Global index of this chunk's first row.
    std::span<const double> targets;
    std::span<const uint32_t> name_ids;
    const double* columns = nullptr;        // rows * num_features doubles.
    const uint8_t* codes = nullptr;         // rows * num_features codes, or null.
    std::span<const double> Column(size_t feature) const {
      return {columns + feature * rows, rows};
    }
    std::span<const uint8_t> Codes(size_t feature) const {
      return {codes + feature * rows, rows};
    }
  };
  Chunk chunk(size_t i) const;
  // Drops the chunk's data + codes pages from the resident set
  // (madvise(MADV_DONTNEED)); the next access refaults them from page cache.
  void ReleaseChunk(size_t i) const;

  size_t string_count() const { return string_table_.size(); }
  const std::string& StringAt(uint32_t id) const { return string_table_[id]; }
  // Row name via the string table ("" if the table was corrupt).
  const std::string& RowName(size_t global_row) const;

  // Materialised copy of row `global_row`'s features.
  std::vector<double> GatherRow(size_t global_row) const;

  // Fully materialised in-memory Dataset of every surviving row — the
  // in-memory side of the streamed-vs-in-memory equivalence tests.
  Dataset ToDataset() const;

 private:
  struct ChunkRef {
    uint64_t data_payload = 0;   // Offset of the data block payload.
    uint64_t codes_payload = 0;  // Offset of the codes payload, 0 if absent.
    uint64_t rows = 0;
    uint64_t row_begin = 0;
  };
  struct BinInfo {
    uint16_t num_bins = 0;
    bool exact = false;
    std::vector<double> thresholds;
  };

  FeatureStore() = default;
  void Unmap();
  size_t ChunkOf(size_t global_row) const;

  const uint8_t* base_ = nullptr;
  size_t file_size_ = 0;
  int fd_ = -1;

  std::vector<std::string> feature_names_;
  std::vector<std::string> class_names_;
  std::string target_name_;
  std::vector<ChunkRef> chunks_;
  std::vector<std::string> string_table_;
  std::vector<BinInfo> bins_;
  size_t total_rows_ = 0;
  bool has_codes_ = false;
  FeatureStoreStats stats_;
};

}  // namespace ml

#endif  // SRC_ML_FEATURE_STORE_H_
