#include "src/ml/transforms.h"

#include <algorithm>
#include <cmath>

#include "src/support/stats.h"

namespace ml {

void ApplyLog1p(Dataset& data) {
  for (size_t j = 0; j < data.num_features(); ++j) {
    for (double& v : data.MutableColumn(j)) {
      v = v >= 0.0 ? std::log1p(v) : -std::log1p(-v);
    }
  }
}

void Standardizer::Fit(const Dataset& data) {
  means_.assign(data.num_features(), 0.0);
  stddevs_.assign(data.num_features(), 1.0);
  for (size_t j = 0; j < data.num_features(); ++j) {
    const auto column = data.Column(j);
    means_[j] = support::Mean(column);
    const double sd = support::StdDev(column);
    stddevs_[j] = sd > 1e-12 ? sd : 1.0;
  }
}

void Standardizer::Apply(Dataset& data) const {
  const size_t cols = std::min(means_.size(), data.num_features());
  for (size_t j = 0; j < cols; ++j) {
    const double mean = means_[j];
    const double stddev = stddevs_[j];
    for (double& v : data.MutableColumn(j)) {
      v = (v - mean) / stddev;
    }
  }
}

void Discretizer::Fit(const Dataset& data) {
  lo_.assign(data.num_features(), 0.0);
  hi_.assign(data.num_features(), 1.0);
  for (size_t j = 0; j < data.num_features(); ++j) {
    const auto column = data.Column(j);
    if (column.empty()) {
      continue;
    }
    lo_[j] = *std::min_element(column.begin(), column.end());
    hi_[j] = *std::max_element(column.begin(), column.end());
    if (hi_[j] <= lo_[j]) {
      hi_[j] = lo_[j] + 1.0;
    }
  }
}

int Discretizer::BinOf(size_t col, double value) const {
  const double span = hi_[col] - lo_[col];
  const double relative = (value - lo_[col]) / span;
  const int bin = static_cast<int>(relative * bins_);
  return std::clamp(bin, 0, bins_ - 1);
}

void Discretizer::Apply(Dataset& data) const {
  const size_t cols = std::min(lo_.size(), data.num_features());
  for (size_t j = 0; j < cols; ++j) {
    for (double& v : data.MutableColumn(j)) {
      v = static_cast<double>(BinOf(j, v));
    }
  }
}

}  // namespace ml
