// Linear models: ordinary-least-squares / ridge regression (normal equations
// with partial-pivot Gaussian elimination) and binary/multinomial logistic
// regression (batch gradient descent with L2).
#ifndef SRC_ML_LINEAR_H_
#define SRC_ML_LINEAR_H_

#include <vector>

#include "src/ml/classifier.h"

namespace ml {

// Solves (X^T X + lambda I) w = X^T y. Exposed for tests.
// Returns false if the system is singular beyond repair.
bool SolveLinearSystem(std::vector<std::vector<double>> a, std::vector<double> b,
                       std::vector<double>& x);

class LinearRegressor : public Regressor {
 public:
  explicit LinearRegressor(double ridge_lambda = 0.0) : lambda_(ridge_lambda) {}

  void Train(const Dataset& data) override;
  void TrainIndexed(const Dataset& data, std::span<const size_t> rows) override;
  double Predict(std::span<const double> x) const override;
  std::string Name() const override { return lambda_ > 0.0 ? "ridge" : "ols"; }
  std::vector<std::pair<std::string, double>> FeatureImportance() const override;

  // weights()[0] is the intercept; weights()[1 + j] pairs with feature j.
  const std::vector<double>& weights() const { return weights_; }

 private:
  double lambda_;
  std::vector<double> weights_;
  std::vector<std::string> feature_names_;
};

struct LogisticOptions {
  double learning_rate = 0.1;
  int iterations = 500;
  double l2 = 1e-3;
};

// Multinomial logistic regression (softmax); reduces to standard binary
// logistic for two classes.
class LogisticClassifier : public Classifier {
 public:
  explicit LogisticClassifier(LogisticOptions options = {}) : options_(options) {}

  void Train(const Dataset& data) override;
  void TrainIndexed(const Dataset& data, std::span<const size_t> rows) override;
  std::vector<double> PredictProba(std::span<const double> x) const override;
  std::string Name() const override { return "logistic"; }
  std::vector<std::pair<std::string, double>> FeatureImportance() const override;

  // Per-class weight vectors, each laid out [intercept, w_0, w_1, ...].
  const std::vector<std::vector<double>>& weights() const { return weights_; }

 private:
  LogisticOptions options_;
  std::vector<std::vector<double>> weights_;
  std::vector<std::string> feature_names_;
  size_t num_classes_ = 0;
};

}  // namespace ml

#endif  // SRC_ML_LINEAR_H_
