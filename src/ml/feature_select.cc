#include "src/ml/feature_select.h"

#include <algorithm>
#include <cmath>

#include "src/ml/transforms.h"
#include "src/support/stats.h"

namespace ml {
namespace {

double Entropy(const std::vector<double>& counts, double total) {
  if (total <= 0.0) {
    return 0.0;
  }
  double h = 0.0;
  for (const double c : counts) {
    if (c > 0.0) {
      const double p = c / total;
      h -= p * std::log2(p);
    }
  }
  return h;
}

}  // namespace

FeatureRanking RankByInformationGain(const Dataset& data, int bins) {
  FeatureRanking ranking;
  const size_t classes = data.num_classes();
  const size_t rows = data.num_rows();
  if (classes == 0 || rows == 0) {
    return ranking;
  }
  // Class entropy.
  std::vector<double> class_counts(classes, 0.0);
  for (size_t i = 0; i < rows; ++i) {
    class_counts[static_cast<size_t>(data.ClassIndex(i))] += 1.0;
  }
  const double h_class = Entropy(class_counts, static_cast<double>(rows));

  Discretizer disc(bins);
  disc.Fit(data);
  for (size_t j = 0; j < data.num_features(); ++j) {
    // Joint histogram bin × class, filled from one sequential column scan.
    std::vector<std::vector<double>> joint(static_cast<size_t>(bins),
                                           std::vector<double>(classes, 0.0));
    const auto column = data.Column(j);
    for (size_t i = 0; i < rows; ++i) {
      const int bin = disc.BinOf(j, column[i]);
      joint[static_cast<size_t>(bin)][static_cast<size_t>(data.ClassIndex(i))] += 1.0;
    }
    double h_cond = 0.0;
    for (const auto& bin_counts : joint) {
      double bin_total = 0.0;
      for (const double c : bin_counts) {
        bin_total += c;
      }
      if (bin_total > 0.0) {
        h_cond += (bin_total / static_cast<double>(rows)) * Entropy(bin_counts, bin_total);
      }
    }
    ranking.emplace_back(j, h_class - h_cond);
  }
  std::sort(ranking.begin(), ranking.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return ranking;
}

FeatureRanking RankByCorrelation(const Dataset& data) {
  FeatureRanking ranking;
  const auto& targets = data.targets();
  for (size_t j = 0; j < data.num_features(); ++j) {
    const auto column = data.Column(j);
    ranking.emplace_back(j, std::fabs(support::PearsonCorrelation(column, targets)));
  }
  std::sort(ranking.begin(), ranking.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return ranking;
}

Dataset SelectFeatures(const Dataset& data, const FeatureRanking& ranking, size_t top_k) {
  const size_t k = std::min(top_k, ranking.size());
  std::vector<size_t> keep;
  std::vector<std::string> names;
  for (size_t i = 0; i < k; ++i) {
    keep.push_back(ranking[i].first);
    names.push_back(data.feature_names()[ranking[i].first]);
  }
  Dataset out = data.is_classification()
                    ? Dataset::ForClassification(names, data.class_names())
                    : Dataset::ForRegression(names, data.target_name());
  out.Reserve(data.num_rows());
  std::vector<double> row(k);
  for (size_t i = 0; i < data.num_rows(); ++i) {
    for (size_t p = 0; p < k; ++p) {
      row[p] = data.Feature(i, keep[p]);
    }
    out.AddRow(row, data.Target(i));
  }
  return out;
}

}  // namespace ml
