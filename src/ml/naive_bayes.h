// Gaussian naive Bayes: class priors plus per-class per-feature normal
// densities. Fast baseline learner for the hypothesis battery.
#ifndef SRC_ML_NAIVE_BAYES_H_
#define SRC_ML_NAIVE_BAYES_H_

#include <vector>

#include "src/ml/classifier.h"

namespace ml {

class NaiveBayesClassifier : public Classifier {
 public:
  void Train(const Dataset& data) override;
  void TrainIndexed(const Dataset& data, std::span<const size_t> rows) override;
  std::vector<double> PredictProba(std::span<const double> x) const override;
  std::string Name() const override { return "naive-bayes"; }
  std::vector<std::pair<std::string, double>> FeatureImportance() const override;

 private:
  std::vector<double> log_priors_;
  // [class][feature] mean / variance.
  std::vector<std::vector<double>> means_;
  std::vector<std::vector<double>> variances_;
  std::vector<std::string> feature_names_;
};

}  // namespace ml

#endif  // SRC_ML_NAIVE_BAYES_H_
