// Quantile-binned view of a Dataset for histogram-based tree training.
//
// Built once per dataset: every feature column is compressed to <= max_bins
// (default 256) uint8_t codes via quantile binning over its sorted distinct
// values. Split finding then becomes an O(rows + bins) histogram scan per
// candidate feature instead of an O(rows log rows) sort at every tree node,
// and bagging / CV folds index into the shared codes instead of copying the
// dataset.
//
// Exactness: a column with <= max_bins distinct values gets one bin per
// distinct value (`exact == true`); on such columns the histogram split
// search considers exactly the candidate thresholds the sort-based learner
// would, with identical integer class counts, so the chosen splits are
// identical. Columns with more distinct values are quantile-compressed and
// split quality is tolerance-equivalent (the LightGBM-style trade).
#ifndef SRC_ML_BINNED_H_
#define SRC_ML_BINNED_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/ml/dataset.h"

namespace ml {

// Bin boundaries for one column, computed purely from its sorted distinct
// values and their multiplicities. This is the arithmetic core of quantile
// binning, factored out so the in-memory BinnedView and the out-of-core
// FeatureStore writer (which merges per-chunk distinct-value lists instead of
// ever holding the full column) produce bit-identical bins on the same rows.
struct BinBoundaries {
  // upper[b] = largest distinct value assigned to bin b (ascending).
  std::vector<double> upper;
  // thresholds[b] = split value separating bin b from bin b+1, size
  // num_bins() - 1. A split "after bin b" is the predicate x <= thresholds[b].
  std::vector<double> thresholds;
  bool exact = false;  // One bin per distinct value.

  uint16_t num_bins() const { return static_cast<uint16_t>(upper.size()); }

  // Bin index of a raw value observed in the source column.
  uint8_t CodeOf(double value) const;
};

// `values` must be sorted ascending with no duplicates; counts[i] is the
// multiplicity of values[i] and total_rows their sum. max_bins must already
// be clamped to [2, 256].
BinBoundaries ComputeBinBoundaries(std::span<const double> values,
                                   std::span<const size_t> counts,
                                   size_t total_rows, uint16_t max_bins);

// One feature column after binning.
struct BinnedColumn {
  // codes[row] = bin index of the row's raw value; bins are ordered by value.
  std::vector<uint8_t> codes;
  // thresholds[b] = raw split value separating bin b from bin b+1 (midpoint
  // between the largest value in bin b and the smallest in bin b+1), size
  // num_bins - 1. A split "after bin b" is the predicate x <= thresholds[b].
  std::vector<double> thresholds;
  uint16_t num_bins = 0;
  bool exact = false;  // One bin per distinct value.
};

class BinnedView {
 public:
  static constexpr uint16_t kDefaultBins = 256;

  // Bins every column of `data`. max_bins is clamped to [2, 256] (codes are
  // uint8_t).
  static BinnedView Build(const Dataset& data, uint16_t max_bins = kDefaultBins);

  size_t num_features() const { return columns_.size(); }
  size_t num_rows() const { return num_rows_; }
  uint16_t max_bins() const { return max_bins_; }
  const BinnedColumn& column(size_t j) const { return columns_[j]; }
  // True when every column is exact, i.e. histogram split search is
  // bit-equivalent to the sort-based search on this dataset.
  bool all_exact() const { return all_exact_; }

 private:
  std::vector<BinnedColumn> columns_;
  size_t num_rows_ = 0;
  uint16_t max_bins_ = kDefaultBins;
  bool all_exact_ = true;
};

}  // namespace ml

#endif  // SRC_ML_BINNED_H_
