// CART decision tree (binary splits on numeric features, Gini impurity) and
// a bagged random forest with per-split feature subsampling.
//
// Split finding runs in one of two modes:
//  - kHistogram (default): O(rows + bins) scan over the dataset's shared
//    quantile-binned view (ml::BinnedView, <= 256 uint8_t codes/feature).
//    Exactly reproduces the sort-based search whenever every column has
//    <= max_bins distinct values; otherwise tolerance-equivalent.
//  - kExact: the original O(rows log rows) sort per candidate feature at
//    every node, kept as the reference implementation.
// Both modes train on row-index views (TrainIndexed), so bootstrap bags and
// CV folds never copy the dataset.
#ifndef SRC_ML_TREE_H_
#define SRC_ML_TREE_H_

#include <memory>
#include <vector>

#include "src/ml/binned.h"
#include "src/ml/classifier.h"
#include "src/support/rng.h"

namespace ml {

class FeatureStore;

enum class SplitMode {
  kHistogram,  // Binned histogram scan (fast path).
  kExact,      // Sort-based exact search (reference path).
};

// How the per-split candidate-feature subset is drawn when
// features_per_split is active.
enum class FeatureSample {
  // Legacy default: one RNG stream consumed in depth-first build order. The
  // draw a node sees depends on how many nodes were built before it.
  kSequential,
  // Per-node stream keyed by (tree seed, heap path id: root 1, children
  // 2p / 2p+1). A node's draw depends only on its position, so depth-first
  // and level-wise (streaming) builds choose identical candidates — the
  // property TrainStreaming's bit-identity rests on.
  kStableByNode,
};

struct TreeOptions {
  int max_depth = 12;
  size_t min_samples_leaf = 2;
  // 0 = consider all features at each split; otherwise sample this many.
  size_t features_per_split = 0;
  SplitMode split_mode = SplitMode::kHistogram;
  // Histogram mode: bins per feature (clamped to [2, 256]).
  uint16_t max_bins = BinnedView::kDefaultBins;
  FeatureSample feature_sample = FeatureSample::kSequential;
};

class DecisionTreeClassifier : public Classifier {
 public:
  explicit DecisionTreeClassifier(TreeOptions options = {}, uint64_t seed = 1)
      : options_(options), rng_(seed), seed_(seed) {}

  void Train(const Dataset& data) override;
  void TrainIndexed(const Dataset& data, std::span<const size_t> rows) override;
  // Out-of-core training over a finished FeatureStore (classification with
  // codes required): a level-wise histogram build that streams the store's
  // uint8 code chunks, touching one chunk at a time. `multiplicity[row]` is
  // how many times the row appears in the (bootstrap) sample; empty means
  // every row once. Bit-identical to TrainIndexed on the equivalent row
  // multiset when feature_sample == kStableByNode (class counts are
  // integer-valued doubles, so accumulation order cannot perturb them).
  void TrainStreaming(const FeatureStore& store);
  void TrainStreaming(const FeatureStore& store,
                      std::span<const uint32_t> multiplicity);
  std::vector<double> PredictProba(std::span<const double> x) const override;
  std::string Name() const override { return "decision-tree"; }
  std::vector<std::pair<std::string, double>> FeatureImportance() const override;

  int node_count() const { return static_cast<int>(nodes_.size()); }
  int depth() const;
  // crc64 over the node array (structure, thresholds, leaf distributions):
  // equal digests mean bit-identical trees. Used by the streamed-vs-indexed
  // equivalence tests and the bench's mismatch gate.
  uint64_t StructureDigest() const;

 private:
  struct Node {
    bool leaf = true;
    int feature = -1;
    double threshold = 0.0;       // Goes left when x[feature] <= threshold.
    int left = -1;
    int right = -1;
    std::vector<double> proba;    // Leaf class distribution.
    int depth = 0;
  };

  int BuildExact(const Dataset& data, std::vector<size_t>& rows, int depth,
                 uint64_t path);
  // Histogram path: partitions `rows` in place and recurses on sub-spans.
  int BuildBinned(const Dataset& data, const BinnedView& view,
                  std::span<size_t> rows, int depth, uint64_t path);
  // Candidate features for the split at heap path `path`, per
  // options_.feature_sample.
  std::vector<size_t> SplitCandidates(size_t num_features, uint64_t path);
  std::vector<double> Distribution(const Dataset& data,
                                   std::span<const size_t> rows) const;
  static double Gini(const std::vector<double>& distribution);

  TreeOptions options_;
  support::Rng rng_;
  uint64_t seed_ = 1;
  std::vector<Node> nodes_;
  std::vector<std::string> feature_names_;
  std::vector<double> importance_;  // Gini decrease per feature.
  std::vector<double> hist_;        // Scratch: bins x classes counts.
};

struct ForestOptions {
  int num_trees = 32;
  TreeOptions tree;
  uint64_t seed = 1;
};

class RandomForestClassifier : public Classifier {
 public:
  explicit RandomForestClassifier(ForestOptions options = {}) : options_(options) {}

  void Train(const Dataset& data) override;
  void TrainIndexed(const Dataset& data, std::span<const size_t> rows) override;
  // Out-of-core forest training over a finished FeatureStore: per-tree
  // bootstrap draws replicate TrainIndexed's RNG call sequence exactly
  // (row multiplicities instead of an index list), and every tree trains
  // with DecisionTreeClassifier::TrainStreaming. feature_sample is forced
  // to kStableByNode; the result is bit-identical to TrainIndexed over the
  // materialised store with that same setting, at any CLAIR_THREADS.
  void TrainStreaming(const FeatureStore& store);
  std::vector<double> PredictProba(std::span<const double> x) const override;
  std::vector<std::vector<double>> PredictProbaBatch(
      const std::vector<std::vector<double>>& rows) const override;
  std::string Name() const override { return "random-forest"; }
  std::vector<std::pair<std::string, double>> FeatureImportance() const override;

  // Combined crc64 of every member tree's StructureDigest.
  uint64_t StructureDigest() const;

 private:
  ForestOptions options_;
  std::vector<std::unique_ptr<DecisionTreeClassifier>> trees_;
  size_t num_classes_ = 0;
};

// CART regression tree: binary splits minimising within-node variance.
class DecisionTreeRegressor : public Regressor {
 public:
  explicit DecisionTreeRegressor(TreeOptions options = {}, uint64_t seed = 1)
      : options_(options), rng_(seed), seed_(seed) {}

  void Train(const Dataset& data) override;
  void TrainIndexed(const Dataset& data, std::span<const size_t> rows) override;
  double Predict(std::span<const double> x) const override;
  std::string Name() const override { return "tree-regressor"; }
  std::vector<std::pair<std::string, double>> FeatureImportance() const override;

 private:
  struct Node {
    bool leaf = true;
    int feature = -1;
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    double value = 0.0;  // Leaf mean.
  };

  int BuildExact(const Dataset& data, std::vector<size_t>& rows, int depth,
                 uint64_t path);
  int BuildBinned(const Dataset& data, const BinnedView& view,
                  std::span<size_t> rows, int depth, uint64_t path);
  std::vector<size_t> SplitCandidates(size_t num_features, uint64_t path);

  TreeOptions options_;
  support::Rng rng_;
  uint64_t seed_ = 1;
  std::vector<Node> nodes_;
  std::vector<std::string> feature_names_;
  std::vector<double> importance_;
  std::vector<double> hist_;  // Scratch: bins x (count, sum, sum-of-squares).
};

// Bagged regression forest.
class RandomForestRegressor : public Regressor {
 public:
  explicit RandomForestRegressor(ForestOptions options = {}) : options_(options) {}

  void Train(const Dataset& data) override;
  void TrainIndexed(const Dataset& data, std::span<const size_t> rows) override;
  double Predict(std::span<const double> x) const override;
  std::string Name() const override { return "forest-regressor"; }
  std::vector<std::pair<std::string, double>> FeatureImportance() const override;

 private:
  ForestOptions options_;
  std::vector<std::unique_ptr<DecisionTreeRegressor>> trees_;
};

// k-nearest-neighbours on Euclidean distance (inputs should be standardised).
// Keeps its own flat row-major copy of the training rows: predict-time
// distance scans want contiguous rows, not the dataset's columnar layout.
class KnnClassifier : public Classifier {
 public:
  explicit KnnClassifier(int k = 5) : k_(k) {}

  void Train(const Dataset& data) override;
  void TrainIndexed(const Dataset& data, std::span<const size_t> rows) override;
  std::vector<double> PredictProba(std::span<const double> x) const override;
  std::string Name() const override { return "knn"; }

 private:
  int k_;
  size_t dim_ = 0;
  size_t num_classes_ = 0;
  std::vector<double> train_x_;  // Row-major rows x dim.
  std::vector<int> train_y_;
};

}  // namespace ml

#endif  // SRC_ML_TREE_H_
