// CART decision tree (binary splits on numeric features, Gini impurity) and
// a bagged random forest with per-split feature subsampling.
#ifndef SRC_ML_TREE_H_
#define SRC_ML_TREE_H_

#include <memory>
#include <vector>

#include "src/ml/classifier.h"
#include "src/support/rng.h"

namespace ml {

struct TreeOptions {
  int max_depth = 12;
  size_t min_samples_leaf = 2;
  // 0 = consider all features at each split; otherwise sample this many.
  size_t features_per_split = 0;
};

class DecisionTreeClassifier : public Classifier {
 public:
  explicit DecisionTreeClassifier(TreeOptions options = {}, uint64_t seed = 1)
      : options_(options), rng_(seed) {}

  void Train(const Dataset& data) override;
  std::vector<double> PredictProba(std::span<const double> x) const override;
  std::string Name() const override { return "decision-tree"; }
  std::vector<std::pair<std::string, double>> FeatureImportance() const override;

  int node_count() const { return static_cast<int>(nodes_.size()); }
  int depth() const;

 private:
  struct Node {
    bool leaf = true;
    int feature = -1;
    double threshold = 0.0;       // Goes left when x[feature] <= threshold.
    int left = -1;
    int right = -1;
    std::vector<double> proba;    // Leaf class distribution.
    int depth = 0;
  };

  int Build(const Dataset& data, std::vector<size_t>& rows, int depth);
  static std::vector<double> Distribution(const Dataset& data,
                                          const std::vector<size_t>& rows);
  static double Gini(const std::vector<double>& distribution);

  TreeOptions options_;
  support::Rng rng_;
  std::vector<Node> nodes_;
  std::vector<std::string> feature_names_;
  std::vector<double> importance_;  // Gini decrease per feature.
};

struct ForestOptions {
  int num_trees = 32;
  TreeOptions tree;
  uint64_t seed = 1;
};

class RandomForestClassifier : public Classifier {
 public:
  explicit RandomForestClassifier(ForestOptions options = {}) : options_(options) {}

  void Train(const Dataset& data) override;
  std::vector<double> PredictProba(std::span<const double> x) const override;
  std::string Name() const override { return "random-forest"; }
  std::vector<std::pair<std::string, double>> FeatureImportance() const override;

 private:
  ForestOptions options_;
  std::vector<std::unique_ptr<DecisionTreeClassifier>> trees_;
  size_t num_classes_ = 0;
};

// CART regression tree: binary splits minimising within-node variance.
class DecisionTreeRegressor : public Regressor {
 public:
  explicit DecisionTreeRegressor(TreeOptions options = {}, uint64_t seed = 1)
      : options_(options), rng_(seed) {}

  void Train(const Dataset& data) override;
  double Predict(std::span<const double> x) const override;
  std::string Name() const override { return "tree-regressor"; }
  std::vector<std::pair<std::string, double>> FeatureImportance() const override;

 private:
  struct Node {
    bool leaf = true;
    int feature = -1;
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    double value = 0.0;  // Leaf mean.
  };

  int Build(const Dataset& data, std::vector<size_t>& rows, int depth);

  TreeOptions options_;
  support::Rng rng_;
  std::vector<Node> nodes_;
  std::vector<std::string> feature_names_;
  std::vector<double> importance_;
};

// Bagged regression forest.
class RandomForestRegressor : public Regressor {
 public:
  explicit RandomForestRegressor(ForestOptions options = {}) : options_(options) {}

  void Train(const Dataset& data) override;
  double Predict(std::span<const double> x) const override;
  std::string Name() const override { return "forest-regressor"; }
  std::vector<std::pair<std::string, double>> FeatureImportance() const override;

 private:
  ForestOptions options_;
  std::vector<std::unique_ptr<DecisionTreeRegressor>> trees_;
};

// k-nearest-neighbours on Euclidean distance (inputs should be standardised).
class KnnClassifier : public Classifier {
 public:
  explicit KnnClassifier(int k = 5) : k_(k) {}

  void Train(const Dataset& data) override;
  std::vector<double> PredictProba(std::span<const double> x) const override;
  std::string Name() const override { return "knn"; }

 private:
  int k_;
  Dataset train_ = Dataset::ForClassification({}, {"0", "1"});
};

}  // namespace ml

#endif  // SRC_ML_TREE_H_
