// CART decision tree (binary splits on numeric features, Gini impurity) and
// a bagged random forest with per-split feature subsampling.
//
// Split finding runs in one of two modes:
//  - kHistogram (default): O(rows + bins) scan over the dataset's shared
//    quantile-binned view (ml::BinnedView, <= 256 uint8_t codes/feature).
//    Exactly reproduces the sort-based search whenever every column has
//    <= max_bins distinct values; otherwise tolerance-equivalent.
//  - kExact: the original O(rows log rows) sort per candidate feature at
//    every node, kept as the reference implementation.
// Both modes train on row-index views (TrainIndexed), so bootstrap bags and
// CV folds never copy the dataset.
#ifndef SRC_ML_TREE_H_
#define SRC_ML_TREE_H_

#include <memory>
#include <vector>

#include "src/ml/binned.h"
#include "src/ml/classifier.h"
#include "src/support/rng.h"

namespace ml {

enum class SplitMode {
  kHistogram,  // Binned histogram scan (fast path).
  kExact,      // Sort-based exact search (reference path).
};

struct TreeOptions {
  int max_depth = 12;
  size_t min_samples_leaf = 2;
  // 0 = consider all features at each split; otherwise sample this many.
  size_t features_per_split = 0;
  SplitMode split_mode = SplitMode::kHistogram;
  // Histogram mode: bins per feature (clamped to [2, 256]).
  uint16_t max_bins = BinnedView::kDefaultBins;
};

class DecisionTreeClassifier : public Classifier {
 public:
  explicit DecisionTreeClassifier(TreeOptions options = {}, uint64_t seed = 1)
      : options_(options), rng_(seed) {}

  void Train(const Dataset& data) override;
  void TrainIndexed(const Dataset& data, std::span<const size_t> rows) override;
  std::vector<double> PredictProba(std::span<const double> x) const override;
  std::string Name() const override { return "decision-tree"; }
  std::vector<std::pair<std::string, double>> FeatureImportance() const override;

  int node_count() const { return static_cast<int>(nodes_.size()); }
  int depth() const;

 private:
  struct Node {
    bool leaf = true;
    int feature = -1;
    double threshold = 0.0;       // Goes left when x[feature] <= threshold.
    int left = -1;
    int right = -1;
    std::vector<double> proba;    // Leaf class distribution.
    int depth = 0;
  };

  int BuildExact(const Dataset& data, std::vector<size_t>& rows, int depth);
  // Histogram path: partitions `rows` in place and recurses on sub-spans.
  int BuildBinned(const Dataset& data, const BinnedView& view,
                  std::span<size_t> rows, int depth);
  std::vector<double> Distribution(const Dataset& data,
                                   std::span<const size_t> rows) const;
  static double Gini(const std::vector<double>& distribution);

  TreeOptions options_;
  support::Rng rng_;
  std::vector<Node> nodes_;
  std::vector<std::string> feature_names_;
  std::vector<double> importance_;  // Gini decrease per feature.
  std::vector<double> hist_;        // Scratch: bins x classes counts.
};

struct ForestOptions {
  int num_trees = 32;
  TreeOptions tree;
  uint64_t seed = 1;
};

class RandomForestClassifier : public Classifier {
 public:
  explicit RandomForestClassifier(ForestOptions options = {}) : options_(options) {}

  void Train(const Dataset& data) override;
  void TrainIndexed(const Dataset& data, std::span<const size_t> rows) override;
  std::vector<double> PredictProba(std::span<const double> x) const override;
  std::vector<std::vector<double>> PredictProbaBatch(
      const std::vector<std::vector<double>>& rows) const override;
  std::string Name() const override { return "random-forest"; }
  std::vector<std::pair<std::string, double>> FeatureImportance() const override;

 private:
  ForestOptions options_;
  std::vector<std::unique_ptr<DecisionTreeClassifier>> trees_;
  size_t num_classes_ = 0;
};

// CART regression tree: binary splits minimising within-node variance.
class DecisionTreeRegressor : public Regressor {
 public:
  explicit DecisionTreeRegressor(TreeOptions options = {}, uint64_t seed = 1)
      : options_(options), rng_(seed) {}

  void Train(const Dataset& data) override;
  void TrainIndexed(const Dataset& data, std::span<const size_t> rows) override;
  double Predict(std::span<const double> x) const override;
  std::string Name() const override { return "tree-regressor"; }
  std::vector<std::pair<std::string, double>> FeatureImportance() const override;

 private:
  struct Node {
    bool leaf = true;
    int feature = -1;
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    double value = 0.0;  // Leaf mean.
  };

  int BuildExact(const Dataset& data, std::vector<size_t>& rows, int depth);
  int BuildBinned(const Dataset& data, const BinnedView& view,
                  std::span<size_t> rows, int depth);

  TreeOptions options_;
  support::Rng rng_;
  std::vector<Node> nodes_;
  std::vector<std::string> feature_names_;
  std::vector<double> importance_;
  std::vector<double> hist_;  // Scratch: bins x (count, sum, sum-of-squares).
};

// Bagged regression forest.
class RandomForestRegressor : public Regressor {
 public:
  explicit RandomForestRegressor(ForestOptions options = {}) : options_(options) {}

  void Train(const Dataset& data) override;
  void TrainIndexed(const Dataset& data, std::span<const size_t> rows) override;
  double Predict(std::span<const double> x) const override;
  std::string Name() const override { return "forest-regressor"; }
  std::vector<std::pair<std::string, double>> FeatureImportance() const override;

 private:
  ForestOptions options_;
  std::vector<std::unique_ptr<DecisionTreeRegressor>> trees_;
};

// k-nearest-neighbours on Euclidean distance (inputs should be standardised).
// Keeps its own flat row-major copy of the training rows: predict-time
// distance scans want contiguous rows, not the dataset's columnar layout.
class KnnClassifier : public Classifier {
 public:
  explicit KnnClassifier(int k = 5) : k_(k) {}

  void Train(const Dataset& data) override;
  void TrainIndexed(const Dataset& data, std::span<const size_t> rows) override;
  std::vector<double> PredictProba(std::span<const double> x) const override;
  std::string Name() const override { return "knn"; }

 private:
  int k_;
  size_t dim_ = 0;
  size_t num_classes_ = 0;
  std::vector<double> train_x_;  // Row-major rows x dim.
  std::vector<int> train_y_;
};

}  // namespace ml

#endif  // SRC_ML_TREE_H_
