// Dataset representation for the learning pipeline (the in-repo stand-in for
// Weka's ARFF instances): named numeric features, a nominal or numeric
// target, and helpers for subsetting and stratified fold construction.
//
// Storage is columnar (SoA): one flat contiguous buffer per feature, so the
// per-column scans that dominate training (split finding, transform fits,
// feature ranking) are sequential reads, and a whole column can be handed out
// as a zero-copy span. Row access materialises a gather; hot row-major
// consumers (linear models, kNN) gather their own matrix once per Train.
#ifndef SRC_ML_DATASET_H_
#define SRC_ML_DATASET_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "src/support/rng.h"

namespace ml {

class BinnedView;

class Dataset {
 public:
  // A classification dataset (nominal target with `class_names`).
  static Dataset ForClassification(std::vector<std::string> feature_names,
                                   std::vector<std::string> class_names);
  // A regression dataset (numeric target named `target_name`).
  static Dataset ForRegression(std::vector<std::string> feature_names,
                               std::string target_name);

  Dataset(const Dataset& other);
  Dataset& operator=(const Dataset& other);
  Dataset(Dataset&& other) noexcept;
  Dataset& operator=(Dataset&& other) noexcept;

  bool is_classification() const { return !class_names_.empty(); }
  size_t num_features() const { return feature_names_.size(); }
  size_t num_rows() const { return targets_.size(); }
  size_t num_classes() const { return class_names_.size(); }

  const std::vector<std::string>& feature_names() const { return feature_names_; }
  const std::vector<std::string>& class_names() const { return class_names_; }
  const std::string& target_name() const { return target_name_; }

  // Pre-sizes every column (and the target buffer) for `rows` rows, so bulk
  // conversion (testbed -> feature matrix) appends without reallocation.
  void Reserve(size_t rows);

  // Appends a row. For classification `target` must be an integral class
  // index in [0, num_classes).
  void AddRow(std::span<const double> features, double target);
  void AddRow(std::initializer_list<double> features, double target) {
    AddRow(std::span<const double>(features.begin(), features.size()), target);
  }

  // Bulk append of `targets.size()` rows stored row-major in `row_major`
  // (row_major.size() == targets.size() * num_features()). One cache
  // invalidation and one reserve per column instead of per-row work — the
  // hot path for testbed collection and for materialising FeatureStore
  // chunks.
  void AppendRows(std::span<const double> row_major, std::span<const double> targets);

  // Materialised copy of row `i` (the storage is columnar).
  std::vector<double> Row(size_t i) const;
  double Feature(size_t row, size_t col) const { return columns_[col][row]; }
  void SetFeature(size_t row, size_t col, double v) {
    InvalidateBinned();
    columns_[col][row] = v;
  }
  double Target(size_t i) const { return targets_[i]; }
  int ClassIndex(size_t i) const { return static_cast<int>(targets_[i]); }

  // Zero-copy view of one feature column.
  std::span<const double> Column(size_t col) const {
    return {columns_[col].data(), columns_[col].size()};
  }
  // Writable column view for in-place transforms; drops the binned cache.
  std::span<double> MutableColumn(size_t col) {
    InvalidateBinned();
    return {columns_[col].data(), columns_[col].size()};
  }
  // All targets.
  const std::vector<double>& targets() const { return targets_; }

  // Class frequency histogram (classification only).
  std::vector<size_t> ClassCounts() const;

  // A new dataset containing the given rows (indices may repeat). Training
  // hot paths use index views instead (Classifier::TrainIndexed); this
  // remains for consumers that need a standalone materialised copy.
  Dataset Subset(std::span<const size_t> rows) const;

  // Deterministic stratified k-fold split: returns `k` disjoint index sets
  // whose union is all rows, each approximately class-balanced. For
  // regression the split is a plain shuffled partition.
  std::vector<std::vector<size_t>> StratifiedFolds(int k, support::Rng& rng) const;

  // The lazily-built quantile-binned view of this dataset (<= max_bins codes
  // per feature; see binned.h). Built once under a lock and shared by every
  // tree, bag, and CV fold that trains on this dataset; mutation (AddRow /
  // SetFeature / MutableColumn) invalidates the cache.
  std::shared_ptr<const BinnedView> Binned(uint16_t max_bins = 256) const;

 private:
  Dataset() = default;

  void InvalidateBinned();

  std::vector<std::string> feature_names_;
  std::vector<std::string> class_names_;  // Empty => regression.
  std::string target_name_;
  std::vector<std::vector<double>> columns_;  // [feature][row], flat per column.
  std::vector<double> targets_;

  mutable std::mutex binned_mutex_;
  mutable std::shared_ptr<const BinnedView> binned_;
  mutable uint16_t binned_bins_ = 0;
};

}  // namespace ml

#endif  // SRC_ML_DATASET_H_
