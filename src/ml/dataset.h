// Dataset representation for the learning pipeline (the in-repo stand-in for
// Weka's ARFF instances): named numeric features, a nominal or numeric
// target, and helpers for subsetting and stratified fold construction.
#ifndef SRC_ML_DATASET_H_
#define SRC_ML_DATASET_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/support/rng.h"

namespace ml {

class Dataset {
 public:
  // A classification dataset (nominal target with `class_names`).
  static Dataset ForClassification(std::vector<std::string> feature_names,
                                   std::vector<std::string> class_names);
  // A regression dataset (numeric target named `target_name`).
  static Dataset ForRegression(std::vector<std::string> feature_names,
                               std::string target_name);

  bool is_classification() const { return !class_names_.empty(); }
  size_t num_features() const { return feature_names_.size(); }
  size_t num_rows() const { return targets_.size(); }
  size_t num_classes() const { return class_names_.size(); }

  const std::vector<std::string>& feature_names() const { return feature_names_; }
  const std::vector<std::string>& class_names() const { return class_names_; }
  const std::string& target_name() const { return target_name_; }

  // Appends a row. For classification `target` must be an integral class
  // index in [0, num_classes).
  void AddRow(std::vector<double> features, double target);

  std::span<const double> Row(size_t i) const {
    return {features_[i].data(), features_[i].size()};
  }
  double Feature(size_t row, size_t col) const { return features_[row][col]; }
  void SetFeature(size_t row, size_t col, double v) { features_[row][col] = v; }
  double Target(size_t i) const { return targets_[i]; }
  int ClassIndex(size_t i) const { return static_cast<int>(targets_[i]); }

  // All values of one feature column.
  std::vector<double> Column(size_t col) const;
  // All targets.
  const std::vector<double>& targets() const { return targets_; }

  // Class frequency histogram (classification only).
  std::vector<size_t> ClassCounts() const;

  // A new dataset containing the given rows (indices may repeat — used by
  // bootstrap sampling).
  Dataset Subset(std::span<const size_t> rows) const;

  // Deterministic stratified k-fold split: returns `k` disjoint index sets
  // whose union is all rows, each approximately class-balanced. For
  // regression the split is a plain shuffled partition.
  std::vector<std::vector<size_t>> StratifiedFolds(int k, support::Rng& rng) const;

 private:
  std::vector<std::string> feature_names_;
  std::vector<std::string> class_names_;  // Empty => regression.
  std::string target_name_;
  std::vector<std::vector<double>> features_;
  std::vector<double> targets_;
};

}  // namespace ml

#endif  // SRC_ML_DATASET_H_
