// Abstract learner interfaces. Classifiers predict a distribution over the
// training dataset's classes; regressors predict a numeric target. Both
// expose per-feature importances where the model has a natural notion of
// them (§5.3: "each weight in the trained model shows the importance of the
// corresponding code property").
#ifndef SRC_ML_CLASSIFIER_H_
#define SRC_ML_CLASSIFIER_H_

#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/ml/dataset.h"

namespace ml {

class Classifier {
 public:
  virtual ~Classifier() = default;

  virtual void Train(const Dataset& data) = 0;
  // Trains on a row-index view of `data` (indices may repeat — bootstrap
  // bags and CV folds both pass these). Implementations override this to
  // avoid materialising a subset copy; the fallback copies.
  virtual void TrainIndexed(const Dataset& data, std::span<const size_t> rows) {
    Train(data.Subset(rows));
  }
  // Probability (or score) per class; sums to 1.
  virtual std::vector<double> PredictProba(std::span<const double> x) const = 0;
  // Batched predict: out[i] == PredictProba(rows[i]) exactly — overrides
  // must stay bit-identical to the per-row loop (the serving scheduler's
  // batched-equals-sequential guarantee depends on it). The default loops;
  // models override to amortize shared work across rows (the forest walks
  // each tree once for the whole batch instead of once per row).
  virtual std::vector<std::vector<double>> PredictProbaBatch(
      const std::vector<std::vector<double>>& rows) const {
    std::vector<std::vector<double>> out;
    out.reserve(rows.size());
    for (const auto& row : rows) {
      out.push_back(PredictProba(row));
    }
    return out;
  }
  virtual std::string Name() const = 0;
  // (feature name, importance >= 0), descending. Empty if not supported.
  virtual std::vector<std::pair<std::string, double>> FeatureImportance() const {
    return {};
  }

  int Predict(std::span<const double> x) const {
    const auto proba = PredictProba(x);
    int best = 0;
    for (size_t c = 1; c < proba.size(); ++c) {
      if (proba[c] > proba[static_cast<size_t>(best)]) {
        best = static_cast<int>(c);
      }
    }
    return best;
  }
};

class Regressor {
 public:
  virtual ~Regressor() = default;
  virtual void Train(const Dataset& data) = 0;
  // Index-view training; see Classifier::TrainIndexed.
  virtual void TrainIndexed(const Dataset& data, std::span<const size_t> rows) {
    Train(data.Subset(rows));
  }
  virtual double Predict(std::span<const double> x) const = 0;
  virtual std::string Name() const = 0;
  virtual std::vector<std::pair<std::string, double>> FeatureImportance() const {
    return {};
  }
};

using ClassifierFactory = std::unique_ptr<Classifier> (*)();

}  // namespace ml

#endif  // SRC_ML_CLASSIFIER_H_
