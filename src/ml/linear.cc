#include "src/ml/linear.h"

#include <algorithm>
#include <cmath>

namespace ml {

bool SolveLinearSystem(std::vector<std::vector<double>> a, std::vector<double> b,
                       std::vector<double>& x) {
  const size_t n = a.size();
  for (size_t col = 0; col < n; ++col) {
    // Partial pivot.
    size_t pivot = col;
    for (size_t row = col + 1; row < n; ++row) {
      if (std::fabs(a[row][col]) > std::fabs(a[pivot][col])) {
        pivot = row;
      }
    }
    if (std::fabs(a[pivot][col]) < 1e-12) {
      return false;
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (size_t row = col + 1; row < n; ++row) {
      const double factor = a[row][col] / a[col][col];
      if (factor == 0.0) {
        continue;
      }
      for (size_t k = col; k < n; ++k) {
        a[row][k] -= factor * a[col][k];
      }
      b[row] -= factor * b[col];
    }
  }
  x.assign(n, 0.0);
  for (size_t row = n; row-- > 0;) {
    double sum = b[row];
    for (size_t k = row + 1; k < n; ++k) {
      sum -= a[row][k] * x[k];
    }
    x[row] = sum / a[row][row];
  }
  return true;
}

void LinearRegressor::Train(const Dataset& data) {
  feature_names_ = data.feature_names();
  const size_t n = data.num_features() + 1;  // +1 intercept.
  std::vector<std::vector<double>> xtx(n, std::vector<double>(n, 0.0));
  std::vector<double> xty(n, 0.0);
  for (size_t i = 0; i < data.num_rows(); ++i) {
    const auto row = data.Row(i);
    // Augmented feature vector [1, x...].
    auto feature = [&row](size_t j) { return j == 0 ? 1.0 : row[j - 1]; };
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = 0; q < n; ++q) {
        xtx[p][q] += feature(p) * feature(q);
      }
      xty[p] += feature(p) * data.Target(i);
    }
  }
  for (size_t p = 1; p < n; ++p) {
    xtx[p][p] += lambda_;  // Intercept is not regularised.
  }
  if (!SolveLinearSystem(std::move(xtx), std::move(xty), weights_)) {
    // Singular system: retry with a stabilising ridge.
    std::vector<std::vector<double>> xtx2(n, std::vector<double>(n, 0.0));
    std::vector<double> xty2(n, 0.0);
    for (size_t i = 0; i < data.num_rows(); ++i) {
      const auto row = data.Row(i);
      auto feature = [&row](size_t j) { return j == 0 ? 1.0 : row[j - 1]; };
      for (size_t p = 0; p < n; ++p) {
        for (size_t q = 0; q < n; ++q) {
          xtx2[p][q] += feature(p) * feature(q);
        }
        xty2[p] += feature(p) * data.Target(i);
      }
    }
    for (size_t p = 0; p < n; ++p) {
      xtx2[p][p] += 1e-6;
    }
    SolveLinearSystem(std::move(xtx2), std::move(xty2), weights_);
  }
}

double LinearRegressor::Predict(std::span<const double> x) const {
  if (weights_.empty()) {
    return 0.0;
  }
  double value = weights_[0];
  const size_t n = std::min(x.size(), weights_.size() - 1);
  for (size_t j = 0; j < n; ++j) {
    value += weights_[j + 1] * x[j];
  }
  return value;
}

std::vector<std::pair<std::string, double>> LinearRegressor::FeatureImportance() const {
  std::vector<std::pair<std::string, double>> out;
  for (size_t j = 0; j + 1 < weights_.size() && j < feature_names_.size(); ++j) {
    out.emplace_back(feature_names_[j], std::fabs(weights_[j + 1]));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

void LogisticClassifier::Train(const Dataset& data) {
  feature_names_ = data.feature_names();
  num_classes_ = data.num_classes();
  const size_t dim = data.num_features() + 1;
  weights_.assign(num_classes_, std::vector<double>(dim, 0.0));
  if (data.num_rows() == 0) {
    return;
  }
  std::vector<std::vector<double>> gradients(num_classes_, std::vector<double>(dim, 0.0));
  const double inv_n = 1.0 / static_cast<double>(data.num_rows());
  for (int iter = 0; iter < options_.iterations; ++iter) {
    for (auto& g : gradients) {
      std::fill(g.begin(), g.end(), 0.0);
    }
    for (size_t i = 0; i < data.num_rows(); ++i) {
      const auto x = data.Row(i);
      const auto proba = PredictProba(x);
      const auto label = static_cast<size_t>(data.ClassIndex(i));
      for (size_t c = 0; c < num_classes_; ++c) {
        const double error = proba[c] - (c == label ? 1.0 : 0.0);
        gradients[c][0] += error;
        for (size_t j = 0; j < x.size(); ++j) {
          gradients[c][j + 1] += error * x[j];
        }
      }
    }
    for (size_t c = 0; c < num_classes_; ++c) {
      for (size_t j = 0; j < dim; ++j) {
        const double l2 = j == 0 ? 0.0 : options_.l2 * weights_[c][j];
        weights_[c][j] -= options_.learning_rate * (gradients[c][j] * inv_n + l2);
      }
    }
  }
}

std::vector<double> LogisticClassifier::PredictProba(std::span<const double> x) const {
  std::vector<double> logits(num_classes_, 0.0);
  for (size_t c = 0; c < num_classes_; ++c) {
    double z = weights_[c].empty() ? 0.0 : weights_[c][0];
    const size_t n = std::min(x.size(), weights_[c].size() - 1);
    for (size_t j = 0; j < n; ++j) {
      z += weights_[c][j + 1] * x[j];
    }
    logits[c] = z;
  }
  // Stable softmax.
  const double max_logit = *std::max_element(logits.begin(), logits.end());
  double total = 0.0;
  for (double& logit : logits) {
    logit = std::exp(logit - max_logit);
    total += logit;
  }
  for (double& logit : logits) {
    logit /= total;
  }
  return logits;
}

std::vector<std::pair<std::string, double>> LogisticClassifier::FeatureImportance() const {
  // Importance: max |weight| across classes per feature.
  std::vector<std::pair<std::string, double>> out;
  for (size_t j = 0; j < feature_names_.size(); ++j) {
    double best = 0.0;
    for (const auto& class_weights : weights_) {
      if (j + 1 < class_weights.size()) {
        best = std::max(best, std::fabs(class_weights[j + 1]));
      }
    }
    out.emplace_back(feature_names_[j], best);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

}  // namespace ml
