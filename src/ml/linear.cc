#include "src/ml/linear.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ml {
namespace {

// Gathers the row-index view into a flat row-major matrix + target vector.
// Linear models are row-major hot loops; one gather out of the columnar
// storage beats materialising a row per access (or a Subset per fold).
void GatherMatrix(const Dataset& data, std::span<const size_t> rows,
                  std::vector<double>& x, std::vector<double>& y) {
  const size_t dim = data.num_features();
  x.resize(rows.size() * dim);
  y.resize(rows.size());
  for (size_t j = 0; j < dim; ++j) {
    const auto column = data.Column(j);
    for (size_t i = 0; i < rows.size(); ++i) {
      x[i * dim + j] = column[rows[i]];
    }
  }
  const auto& targets = data.targets();
  for (size_t i = 0; i < rows.size(); ++i) {
    y[i] = targets[rows[i]];
  }
}

std::vector<size_t> AllRows(const Dataset& data) {
  std::vector<size_t> rows(data.num_rows());
  std::iota(rows.begin(), rows.end(), size_t{0});
  return rows;
}

}  // namespace

bool SolveLinearSystem(std::vector<std::vector<double>> a, std::vector<double> b,
                       std::vector<double>& x) {
  const size_t n = a.size();
  for (size_t col = 0; col < n; ++col) {
    // Partial pivot.
    size_t pivot = col;
    for (size_t row = col + 1; row < n; ++row) {
      if (std::fabs(a[row][col]) > std::fabs(a[pivot][col])) {
        pivot = row;
      }
    }
    if (std::fabs(a[pivot][col]) < 1e-12) {
      return false;
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (size_t row = col + 1; row < n; ++row) {
      const double factor = a[row][col] / a[col][col];
      if (factor == 0.0) {
        continue;
      }
      for (size_t k = col; k < n; ++k) {
        a[row][k] -= factor * a[col][k];
      }
      b[row] -= factor * b[col];
    }
  }
  x.assign(n, 0.0);
  for (size_t row = n; row-- > 0;) {
    double sum = b[row];
    for (size_t k = row + 1; k < n; ++k) {
      sum -= a[row][k] * x[k];
    }
    x[row] = sum / a[row][row];
  }
  return true;
}

void LinearRegressor::Train(const Dataset& data) {
  const auto rows = AllRows(data);
  TrainIndexed(data, rows);
}

void LinearRegressor::TrainIndexed(const Dataset& data, std::span<const size_t> rows) {
  feature_names_ = data.feature_names();
  const size_t dim = data.num_features();
  const size_t n = dim + 1;  // +1 intercept.
  std::vector<double> x;
  std::vector<double> y;
  GatherMatrix(data, rows, x, y);
  auto accumulate = [&](std::vector<std::vector<double>>& xtx, std::vector<double>& xty) {
    for (size_t i = 0; i < rows.size(); ++i) {
      const double* row = x.data() + i * dim;
      // Augmented feature vector [1, x...].
      auto feature = [row](size_t j) { return j == 0 ? 1.0 : row[j - 1]; };
      for (size_t p = 0; p < n; ++p) {
        for (size_t q = 0; q < n; ++q) {
          xtx[p][q] += feature(p) * feature(q);
        }
        xty[p] += feature(p) * y[i];
      }
    }
  };
  std::vector<std::vector<double>> xtx(n, std::vector<double>(n, 0.0));
  std::vector<double> xty(n, 0.0);
  accumulate(xtx, xty);
  for (size_t p = 1; p < n; ++p) {
    xtx[p][p] += lambda_;  // Intercept is not regularised.
  }
  if (!SolveLinearSystem(std::move(xtx), std::move(xty), weights_)) {
    // Singular system: retry with a stabilising ridge.
    std::vector<std::vector<double>> xtx2(n, std::vector<double>(n, 0.0));
    std::vector<double> xty2(n, 0.0);
    accumulate(xtx2, xty2);
    for (size_t p = 0; p < n; ++p) {
      xtx2[p][p] += 1e-6;
    }
    SolveLinearSystem(std::move(xtx2), std::move(xty2), weights_);
  }
}

double LinearRegressor::Predict(std::span<const double> x) const {
  if (weights_.empty()) {
    return 0.0;
  }
  double value = weights_[0];
  const size_t n = std::min(x.size(), weights_.size() - 1);
  for (size_t j = 0; j < n; ++j) {
    value += weights_[j + 1] * x[j];
  }
  return value;
}

std::vector<std::pair<std::string, double>> LinearRegressor::FeatureImportance() const {
  std::vector<std::pair<std::string, double>> out;
  for (size_t j = 0; j + 1 < weights_.size() && j < feature_names_.size(); ++j) {
    out.emplace_back(feature_names_[j], std::fabs(weights_[j + 1]));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

void LogisticClassifier::Train(const Dataset& data) {
  const auto rows = AllRows(data);
  TrainIndexed(data, rows);
}

void LogisticClassifier::TrainIndexed(const Dataset& data, std::span<const size_t> rows) {
  feature_names_ = data.feature_names();
  num_classes_ = data.num_classes();
  const size_t features = data.num_features();
  const size_t dim = features + 1;
  weights_.assign(num_classes_, std::vector<double>(dim, 0.0));
  if (rows.empty()) {
    return;
  }
  // Gather once: the gradient loop touches every row 500 times.
  std::vector<double> x;
  std::vector<double> y;
  GatherMatrix(data, rows, x, y);
  std::vector<std::vector<double>> gradients(num_classes_, std::vector<double>(dim, 0.0));
  const double inv_n = 1.0 / static_cast<double>(rows.size());
  for (int iter = 0; iter < options_.iterations; ++iter) {
    for (auto& g : gradients) {
      std::fill(g.begin(), g.end(), 0.0);
    }
    for (size_t i = 0; i < rows.size(); ++i) {
      const std::span<const double> row(x.data() + i * features, features);
      const auto proba = PredictProba(row);
      const auto label = static_cast<size_t>(y[i]);
      for (size_t c = 0; c < num_classes_; ++c) {
        const double error = proba[c] - (c == label ? 1.0 : 0.0);
        gradients[c][0] += error;
        for (size_t j = 0; j < features; ++j) {
          gradients[c][j + 1] += error * row[j];
        }
      }
    }
    for (size_t c = 0; c < num_classes_; ++c) {
      for (size_t j = 0; j < dim; ++j) {
        const double l2 = j == 0 ? 0.0 : options_.l2 * weights_[c][j];
        weights_[c][j] -= options_.learning_rate * (gradients[c][j] * inv_n + l2);
      }
    }
  }
}

std::vector<double> LogisticClassifier::PredictProba(std::span<const double> x) const {
  std::vector<double> logits(num_classes_, 0.0);
  for (size_t c = 0; c < num_classes_; ++c) {
    double z = weights_[c].empty() ? 0.0 : weights_[c][0];
    const size_t n = std::min(x.size(), weights_[c].size() - 1);
    for (size_t j = 0; j < n; ++j) {
      z += weights_[c][j + 1] * x[j];
    }
    logits[c] = z;
  }
  // Stable softmax.
  const double max_logit = *std::max_element(logits.begin(), logits.end());
  double total = 0.0;
  for (double& logit : logits) {
    logit = std::exp(logit - max_logit);
    total += logit;
  }
  for (double& logit : logits) {
    logit /= total;
  }
  return logits;
}

std::vector<std::pair<std::string, double>> LogisticClassifier::FeatureImportance() const {
  // Importance: max |weight| across classes per feature.
  std::vector<std::pair<std::string, double>> out;
  for (size_t j = 0; j < feature_names_.size(); ++j) {
    double best = 0.0;
    for (const auto& class_weights : weights_) {
      if (j + 1 < class_weights.size()) {
        best = std::max(best, std::fabs(class_weights[j + 1]));
      }
    }
    out.emplace_back(feature_names_[j], best);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

}  // namespace ml
