#include "src/ml/eval.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "src/support/stats.h"
#include "src/support/strings.h"
#include "src/support/thread_pool.h"

namespace ml {

size_t ConfusionMatrix::Total() const {
  size_t total = 0;
  for (const auto& row : counts_) {
    for (const size_t count : row) {
      total += count;
    }
  }
  return total;
}

double ConfusionMatrix::Accuracy() const {
  const size_t total = Total();
  if (total == 0) {
    return 0.0;
  }
  size_t correct = 0;
  for (size_t c = 0; c < counts_.size(); ++c) {
    correct += counts_[c][c];
  }
  return static_cast<double>(correct) / static_cast<double>(total);
}

double ConfusionMatrix::Precision(int c) const {
  const auto cls = static_cast<size_t>(c);
  size_t predicted = 0;
  for (size_t actual = 0; actual < counts_.size(); ++actual) {
    predicted += counts_[actual][cls];
  }
  if (predicted == 0) {
    return 0.0;
  }
  return static_cast<double>(counts_[cls][cls]) / static_cast<double>(predicted);
}

double ConfusionMatrix::Recall(int c) const {
  const auto cls = static_cast<size_t>(c);
  size_t actual_total = 0;
  for (const size_t count : counts_[cls]) {
    actual_total += count;
  }
  if (actual_total == 0) {
    return 0.0;
  }
  return static_cast<double>(counts_[cls][cls]) / static_cast<double>(actual_total);
}

double ConfusionMatrix::F1(int c) const {
  const double p = Precision(c);
  const double r = Recall(c);
  return p + r > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

double ConfusionMatrix::MacroF1() const {
  if (counts_.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (size_t c = 0; c < counts_.size(); ++c) {
    total += F1(static_cast<int>(c));
  }
  return total / static_cast<double>(counts_.size());
}

std::string ConfusionMatrix::ToString(const std::vector<std::string>& class_names) const {
  std::string out = "actual\\predicted";
  for (size_t c = 0; c < counts_.size(); ++c) {
    out += support::Format("\t%s", c < class_names.size() ? class_names[c].c_str() : "?");
  }
  out += '\n';
  for (size_t a = 0; a < counts_.size(); ++a) {
    out += a < class_names.size() ? class_names[a] : "?";
    for (const size_t count : counts_[a]) {
      out += support::Format("\t%zu", count);
    }
    out += '\n';
  }
  return out;
}

double RocAuc(const std::vector<double>& positive_scores, const std::vector<int>& labels) {
  // Mann–Whitney U formulation: AUC = P(score⁺ > score⁻) + ½P(tie).
  const size_t n = std::min(positive_scores.size(), labels.size());
  double positives = 0.0;
  double negatives = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (labels[i] == 1) {
      positives += 1.0;
    } else {
      negatives += 1.0;
    }
  }
  if (positives == 0.0 || negatives == 0.0) {
    return 0.5;
  }
  // Rank-based computation handles ties exactly.
  const auto ranks = support::AverageRanks(
      std::span<const double>(positive_scores.data(), n));
  double positive_rank_sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (labels[i] == 1) {
      positive_rank_sum += ranks[i];
    }
  }
  const double u = positive_rank_sum - positives * (positives + 1.0) / 2.0;
  return u / (positives * negatives);
}

RegressionMetrics EvaluateRegression(const std::vector<double>& predicted,
                                     const std::vector<double>& actual) {
  RegressionMetrics metrics;
  const size_t n = std::min(predicted.size(), actual.size());
  if (n == 0) {
    return metrics;
  }
  const double mean_actual =
      support::Mean(std::span<const double>(actual.data(), n));
  double ss_res = 0.0;
  double ss_tot = 0.0;
  double abs_sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double err = actual[i] - predicted[i];
    ss_res += err * err;
    abs_sum += std::fabs(err);
    ss_tot += (actual[i] - mean_actual) * (actual[i] - mean_actual);
  }
  metrics.rmse = std::sqrt(ss_res / static_cast<double>(n));
  metrics.mae = abs_sum / static_cast<double>(n);
  metrics.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 0.0;
  return metrics;
}

RegressionMetrics CrossValidateRegression(
    const Dataset& data, const std::function<std::unique_ptr<Regressor>()>& factory, int k,
    uint64_t seed) {
  support::Rng rng(seed);
  const auto folds = data.StratifiedFolds(k, rng);
  std::vector<double> predicted(data.num_rows(), 0.0);
  std::vector<double> actual(data.num_rows(), 0.0);
  // Folds are independent once the split is fixed; each task trains on the
  // other folds and writes predictions for its own disjoint row set, so the
  // pooled vectors are identical at any worker count.
  support::ParallelFor(folds.size(), [&](size_t f) {
    std::vector<size_t> train_rows;
    for (size_t g = 0; g < folds.size(); ++g) {
      if (g != f) {
        train_rows.insert(train_rows.end(), folds[g].begin(), folds[g].end());
      }
    }
    auto model = factory();
    model->TrainIndexed(data, train_rows);
    for (const size_t row : folds[f]) {
      predicted[row] = model->Predict(data.Row(row));
      actual[row] = data.Target(row);
    }
  });
  return EvaluateRegression(predicted, actual);
}

CvMetrics CrossValidate(const Dataset& data,
                        const std::function<std::unique_ptr<Classifier>()>& factory, int k,
                        uint64_t seed) {
  CvMetrics metrics;
  metrics.confusion = ConfusionMatrix(data.num_classes());
  metrics.folds = static_cast<size_t>(k);
  support::Rng rng(seed);
  const auto folds = data.StratifiedFolds(k, rng);
  // Per-fold held-out results, collected in fold order then merged serially,
  // so the pooled confusion matrix and AUC score sequence are bit-identical
  // to the serial sweep at any worker count.
  struct FoldResult {
    std::vector<std::pair<int, int>> confusion_pairs;  // (actual, predicted).
    std::vector<double> scores;
    std::vector<int> labels;
  };
  const auto fold_results =
      support::ParallelMap<FoldResult>(folds.size(), [&](size_t f) {
        std::vector<size_t> train_rows;
        for (size_t g = 0; g < folds.size(); ++g) {
          if (g != f) {
            train_rows.insert(train_rows.end(), folds[g].begin(), folds[g].end());
          }
        }
        auto model = factory();
        model->TrainIndexed(data, train_rows);
        FoldResult result;
        for (const size_t row : folds[f]) {
          const auto proba = model->PredictProba(data.Row(row));
          int best = 0;
          for (size_t c = 1; c < proba.size(); ++c) {
            if (proba[c] > proba[static_cast<size_t>(best)]) {
              best = static_cast<int>(c);
            }
          }
          result.confusion_pairs.emplace_back(data.ClassIndex(row), best);
          if (data.num_classes() == 2) {
            result.scores.push_back(proba.size() > 1 ? proba[1] : 0.0);
            result.labels.push_back(data.ClassIndex(row));
          }
        }
        return result;
      });
  std::vector<double> all_scores;
  std::vector<int> all_labels;
  for (const auto& result : fold_results) {
    for (const auto& [actual, predicted] : result.confusion_pairs) {
      metrics.confusion.Add(actual, predicted);
    }
    all_scores.insert(all_scores.end(), result.scores.begin(), result.scores.end());
    all_labels.insert(all_labels.end(), result.labels.begin(), result.labels.end());
  }
  metrics.accuracy = metrics.confusion.Accuracy();
  metrics.macro_f1 = metrics.confusion.MacroF1();
  metrics.auc = data.num_classes() == 2 ? RocAuc(all_scores, all_labels) : 0.5;
  return metrics;
}

std::vector<RankingMetrics> TopKRanking(std::span<const double> scores,
                                        std::span<const int> labels,
                                        std::span<const size_t> ks) {
  assert(scores.size() == labels.size());
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), size_t{0});
  // Stable by construction: equal scores keep row order, so ranking output
  // is deterministic.
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return scores[a] > scores[b]; });
  size_t total_positive = 0;
  for (const int label : labels) {
    total_positive += label != 0 ? 1 : 0;
  }
  // Prefix positive counts over the ranked order.
  std::vector<size_t> prefix_hits(order.size() + 1, 0);
  for (size_t i = 0; i < order.size(); ++i) {
    prefix_hits[i + 1] = prefix_hits[i] + (labels[order[i]] != 0 ? 1 : 0);
  }
  std::vector<RankingMetrics> out;
  out.reserve(ks.size());
  for (const size_t requested : ks) {
    RankingMetrics m;
    m.k = std::min(requested, order.size());
    m.hits = prefix_hits[m.k];
    m.precision = m.k > 0 ? static_cast<double>(m.hits) / static_cast<double>(m.k) : 0.0;
    m.recall = total_positive > 0
                   ? static_cast<double>(m.hits) / static_cast<double>(total_positive)
                   : 0.0;
    out.push_back(m);
  }
  return out;
}

}  // namespace ml
