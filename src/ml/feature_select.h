// Feature ranking / selection (§5.2: "filtering features that are irrelevant
// to the prediction"): information-gain ranking over discretised features
// and absolute-Pearson-correlation ranking.
#ifndef SRC_ML_FEATURE_SELECT_H_
#define SRC_ML_FEATURE_SELECT_H_

#include <string>
#include <utility>
#include <vector>

#include "src/ml/dataset.h"

namespace ml {

// (feature index, score) sorted by descending score.
using FeatureRanking = std::vector<std::pair<size_t, double>>;

// Information gain of each feature w.r.t. the nominal class, with numeric
// features discretised into `bins` equal-width buckets.
FeatureRanking RankByInformationGain(const Dataset& data, int bins = 10);

// |Pearson correlation| of each feature against the (numeric or 0/1) target.
FeatureRanking RankByCorrelation(const Dataset& data);

// Projects the dataset onto the top-k features of a ranking.
Dataset SelectFeatures(const Dataset& data, const FeatureRanking& ranking, size_t top_k);

}  // namespace ml

#endif  // SRC_ML_FEATURE_SELECT_H_
