#include "src/ml/tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <numeric>

#include "src/ml/feature_store.h"
#include "src/support/hash.h"
#include "src/support/thread_pool.h"

namespace ml {
namespace {

std::vector<size_t> AllRows(const Dataset& data) {
  std::vector<size_t> rows(data.num_rows());
  std::iota(rows.begin(), rows.end(), size_t{0});
  return rows;
}

// Candidate features for one split, honouring TreeOptions::feature_sample.
// kSequential consumes `sequential_rng` (build-order dependent, the legacy
// behaviour); kStableByNode derives a throwaway stream from (seed, path) so
// the draw depends only on the node's heap position.
std::vector<size_t> SplitCandidateOrder(const TreeOptions& options,
                                        size_t num_features,
                                        support::Rng& sequential_rng,
                                        uint64_t seed, uint64_t path) {
  std::vector<size_t> candidates(num_features);
  std::iota(candidates.begin(), candidates.end(), size_t{0});
  if (options.features_per_split > 0 &&
      options.features_per_split < candidates.size()) {
    if (options.feature_sample == FeatureSample::kStableByNode) {
      support::Rng node_rng = support::Rng::ForTask(seed, path);
      node_rng.Shuffle(candidates);
    } else {
      sequential_rng.Shuffle(candidates);
    }
    candidates.resize(options.features_per_split);
  }
  return candidates;
}

double GiniOfCounts(const std::vector<double>& counts, double n) {
  double g = 1.0;
  for (const double c : counts) {
    const double p = c / n;
    g -= p * p;
  }
  return g;
}

// Scores every boundary of one feature's bins x classes histogram, updating
// best_gain/best_bin when a boundary improves on the carried-in best. This
// is the single split-sweep used by both the depth-first in-memory build and
// the level-wise streaming build: one code path, one floating-point op
// sequence, so the two builds choose bit-identical splits.
bool SweepClassHistogram(const double* hist, size_t bins, size_t classes,
                         const std::vector<double>& total_counts,
                         double parent_gini, double n_total, double min_leaf,
                         std::vector<double>& left_counts,
                         std::vector<double>& right_counts, double& best_gain,
                         int& best_bin) {
  std::fill(left_counts.begin(), left_counts.end(), 0.0);
  right_counts = total_counts;
  double n_left = 0.0;
  bool improved = false;
  for (size_t b = 0; b + 1 < bins; ++b) {
    double bin_n = 0.0;
    for (size_t c = 0; c < classes; ++c) {
      const double v = hist[b * classes + c];
      left_counts[c] += v;
      right_counts[c] -= v;
      bin_n += v;
    }
    if (bin_n == 0.0) {
      continue;  // Empty bin: same boundary as the previous candidate.
    }
    n_left += bin_n;
    const double n_right = n_total - n_left;
    if (n_right <= 0.0) {
      break;  // No rows to the right of any later boundary.
    }
    if (n_left < min_leaf || n_right < min_leaf) {
      continue;
    }
    const double gain = parent_gini -
                        (n_left / n_total) * GiniOfCounts(left_counts, n_left) -
                        (n_right / n_total) * GiniOfCounts(right_counts, n_right);
    if (gain > best_gain) {
      best_gain = gain;
      best_bin = static_cast<int>(b);
      improved = true;
    }
  }
  return improved;
}

}  // namespace

std::vector<double> DecisionTreeClassifier::Distribution(
    const Dataset& data, std::span<const size_t> rows) const {
  std::vector<double> dist(data.num_classes(), 0.0);
  for (const size_t row : rows) {
    dist[static_cast<size_t>(data.ClassIndex(row))] += 1.0;
  }
  const double total = static_cast<double>(rows.size());
  if (total > 0.0) {
    for (double& d : dist) {
      d /= total;
    }
  }
  return dist;
}

double DecisionTreeClassifier::Gini(const std::vector<double>& distribution) {
  double gini = 1.0;
  for (const double p : distribution) {
    gini -= p * p;
  }
  return gini;
}

void DecisionTreeClassifier::Train(const Dataset& data) {
  const auto rows = AllRows(data);
  TrainIndexed(data, rows);
}

void DecisionTreeClassifier::TrainIndexed(const Dataset& data,
                                          std::span<const size_t> rows) {
  feature_names_ = data.feature_names();
  importance_.assign(data.num_features(), 0.0);
  nodes_.clear();
  std::vector<size_t> working(rows.begin(), rows.end());
  if (options_.split_mode == SplitMode::kHistogram) {
    const auto view = data.Binned(options_.max_bins);
    BuildBinned(data, *view, std::span<size_t>(working), 0, 1);
  } else {
    BuildExact(data, working, 0, 1);
  }
}

std::vector<size_t> DecisionTreeClassifier::SplitCandidates(size_t num_features,
                                                            uint64_t path) {
  return SplitCandidateOrder(options_, num_features, rng_, seed_, path);
}

// Histogram split search: one O(rows) pass builds per-bin class counts, then
// an O(bins) sweep scores every boundary. On exactly-binned columns this
// considers the same candidates with the same integer counts as the sort
// sweep in BuildExact, so the chosen split is identical.
int DecisionTreeClassifier::BuildBinned(const Dataset& data, const BinnedView& view,
                                        std::span<size_t> rows, int depth,
                                        uint64_t path) {
  const int index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<size_t>(index)].depth = depth;
  auto distribution = Distribution(data, rows);
  const double parent_gini = Gini(distribution);
  const bool pure = parent_gini < 1e-12;
  if (pure || depth >= options_.max_depth || rows.size() < 2 * options_.min_samples_leaf) {
    nodes_[static_cast<size_t>(index)].proba = std::move(distribution);
    return index;
  }

  const size_t classes = data.num_classes();
  std::vector<double> total_counts(classes, 0.0);
  for (const size_t row : rows) {
    total_counts[static_cast<size_t>(data.ClassIndex(row))] += 1.0;
  }

  // Feature subset for this split.
  const std::vector<size_t> candidates = SplitCandidates(data.num_features(), path);

  double best_gain = 1e-12;
  int best_feature = -1;
  int best_bin = -1;
  double best_threshold = 0.0;
  const double n_total = static_cast<double>(rows.size());
  std::vector<double> left_counts(classes, 0.0);
  std::vector<double> right_counts(classes, 0.0);
  for (const size_t feature : candidates) {
    const BinnedColumn& col = view.column(feature);
    const size_t bins = col.num_bins;
    if (bins < 2) {
      continue;  // Constant column: nothing to split on.
    }
    hist_.assign(bins * classes, 0.0);
    for (const size_t row : rows) {
      hist_[static_cast<size_t>(col.codes[row]) * classes +
            static_cast<size_t>(data.ClassIndex(row))] += 1.0;
    }
    int bin = -1;
    if (SweepClassHistogram(hist_.data(), bins, classes, total_counts, parent_gini,
                            n_total, static_cast<double>(options_.min_samples_leaf),
                            left_counts, right_counts, best_gain, bin)) {
      best_feature = static_cast<int>(feature);
      best_bin = bin;
      best_threshold = col.thresholds[static_cast<size_t>(bin)];
    }
  }

  if (best_feature < 0) {
    nodes_[static_cast<size_t>(index)].proba = std::move(distribution);
    return index;
  }

  importance_[static_cast<size_t>(best_feature)] += best_gain * n_total;
  const auto& codes = view.column(static_cast<size_t>(best_feature)).codes;
  const auto mid = std::stable_partition(rows.begin(), rows.end(), [&](size_t row) {
    return static_cast<int>(codes[row]) <= best_bin;
  });
  const auto n_left_rows = static_cast<size_t>(mid - rows.begin());
  const int left = BuildBinned(data, view, rows.first(n_left_rows), depth + 1, path * 2);
  const int right =
      BuildBinned(data, view, rows.subspan(n_left_rows), depth + 1, path * 2 + 1);
  Node& node = nodes_[static_cast<size_t>(index)];
  node.leaf = false;
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return index;
}

int DecisionTreeClassifier::BuildExact(const Dataset& data, std::vector<size_t>& rows,
                                       int depth, uint64_t path) {
  const int index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<size_t>(index)].depth = depth;
  auto distribution = Distribution(data, rows);
  const double parent_gini = Gini(distribution);
  const bool pure = parent_gini < 1e-12;
  if (pure || depth >= options_.max_depth || rows.size() < 2 * options_.min_samples_leaf) {
    nodes_[static_cast<size_t>(index)].proba = std::move(distribution);
    return index;
  }

  // Feature subset for this split.
  const std::vector<size_t> candidates = SplitCandidates(data.num_features(), path);

  double best_gain = 1e-12;
  int best_feature = -1;
  double best_threshold = 0.0;
  const double n_total = static_cast<double>(rows.size());
  std::vector<std::pair<double, int>> sorted_values;  // (value, class).
  for (const size_t feature : candidates) {
    sorted_values.clear();
    sorted_values.reserve(rows.size());
    for (const size_t row : rows) {
      sorted_values.emplace_back(data.Feature(row, feature), data.ClassIndex(row));
    }
    std::sort(sorted_values.begin(), sorted_values.end());
    // Sweep split points between distinct values, maintaining left counts.
    std::vector<double> left_counts(data.num_classes(), 0.0);
    std::vector<double> right_counts(data.num_classes(), 0.0);
    for (const auto& [value, cls] : sorted_values) {
      right_counts[static_cast<size_t>(cls)] += 1.0;
    }
    for (size_t i = 0; i + 1 < sorted_values.size(); ++i) {
      const auto cls = static_cast<size_t>(sorted_values[i].second);
      left_counts[cls] += 1.0;
      right_counts[cls] -= 1.0;
      if (sorted_values[i].first == sorted_values[i + 1].first) {
        continue;  // Not a valid split point.
      }
      const double n_left = static_cast<double>(i + 1);
      const double n_right = n_total - n_left;
      if (n_left < static_cast<double>(options_.min_samples_leaf) ||
          n_right < static_cast<double>(options_.min_samples_leaf)) {
        continue;
      }
      auto gini_of = [](const std::vector<double>& counts, double n) {
        double g = 1.0;
        for (const double c : counts) {
          const double p = c / n;
          g -= p * p;
        }
        return g;
      };
      const double gain = parent_gini - (n_left / n_total) * gini_of(left_counts, n_left) -
                          (n_right / n_total) * gini_of(right_counts, n_right);
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(feature);
        best_threshold = 0.5 * (sorted_values[i].first + sorted_values[i + 1].first);
      }
    }
  }

  if (best_feature < 0) {
    nodes_[static_cast<size_t>(index)].proba = std::move(distribution);
    return index;
  }

  importance_[static_cast<size_t>(best_feature)] += best_gain * n_total;
  std::vector<size_t> left_rows;
  std::vector<size_t> right_rows;
  for (const size_t row : rows) {
    if (data.Feature(row, static_cast<size_t>(best_feature)) <= best_threshold) {
      left_rows.push_back(row);
    } else {
      right_rows.push_back(row);
    }
  }
  rows.clear();
  rows.shrink_to_fit();
  const int left = BuildExact(data, left_rows, depth + 1, path * 2);
  const int right = BuildExact(data, right_rows, depth + 1, path * 2 + 1);
  Node& node = nodes_[static_cast<size_t>(index)];
  node.leaf = false;
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return index;
}

void DecisionTreeClassifier::TrainStreaming(const FeatureStore& store) {
  TrainStreaming(store, {});
}

// Level-wise out-of-core build. The recursive BuildBinned holds the whole
// code matrix and partitions row indices in place; here each level instead
// streams the store chunk-by-chunk twice (histogram pass, partition pass),
// with per-row state limited to one uint32 node slot. Bit-identity with the
// depth-first build rests on three facts: (1) all histogram/count values are
// integer-valued doubles (sums of row multiplicities), exact in any
// accumulation order; (2) both builds score splits through the shared
// SweepClassHistogram, so the floating-point gain comparisons are the same
// op sequence; (3) with feature_sample == kStableByNode the candidate draw
// depends only on the node's heap path, not build order. The finished tree
// is renumbered into depth-first preorder and importance is replayed in
// that order, making the node array byte-equal to TrainIndexed's.
void DecisionTreeClassifier::TrainStreaming(const FeatureStore& store,
                                            std::span<const uint32_t> multiplicity) {
  assert(store.is_classification());
  assert(store.has_codes());
  assert(multiplicity.empty() || multiplicity.size() == store.num_rows());
  feature_names_ = store.feature_names();
  const size_t d = store.num_features();
  const size_t classes = store.num_classes();
  importance_.assign(d, 0.0);
  nodes_.clear();

  struct PendingNode {
    uint64_t path = 1;
    int depth = 0;
    std::vector<double> counts;  // Per-class multiplicity sums (integers).
    double n = 0.0;
    double parent_gini = 0.0;
    bool decided = false;
    bool leaf = true;
    int feature = -1;
    int bin = -1;
    double threshold = 0.0;
    double gain = 0.0;
    uint32_t left = 0;
    uint32_t right = 0;
    std::vector<double> proba;
    std::vector<size_t> candidates;  // Split candidates while undecided.
  };
  constexpr uint32_t kNoNode = 0xFFFFFFFFu;
  std::vector<PendingNode> pending;
  pending.emplace_back();
  pending[0].counts.assign(classes, 0.0);

  // slot[row] = pending-node the row currently sits in (kNoNode once it
  // reaches a leaf or has zero multiplicity) — the only O(rows) state.
  std::vector<uint32_t> slot(store.num_rows(), 0);
  const auto row_weight = [&](size_t global_row) {
    return multiplicity.empty() ? 1.0
                                : static_cast<double>(multiplicity[global_row]);
  };

  // Root class counts: one streamed pass.
  for (size_t c = 0; c < store.num_chunks(); ++c) {
    const FeatureStore::Chunk chunk = store.chunk(c);
    for (size_t r = 0; r < chunk.rows; ++r) {
      const size_t g = chunk.row_begin + r;
      const double m = row_weight(g);
      if (m == 0.0) {
        slot[g] = kNoNode;
        continue;
      }
      pending[0].counts[static_cast<size_t>(chunk.targets[r])] += m;
      pending[0].n += m;
    }
    store.ReleaseChunk(c);
  }

  // Histogram arena budget per batch: bins the frontier into groups small
  // enough that every (node, candidate-feature) histogram of the group fits
  // in ~64 MiB, keeping peak memory independent of tree width.
  constexpr size_t kArenaBudgetDoubles = (64u << 20) / sizeof(double);

  std::vector<uint32_t> frontier{0};
  std::vector<double> left_counts(classes, 0.0);
  std::vector<double> right_counts(classes, 0.0);
  while (!frontier.empty()) {
    // Decide which frontier nodes want a split; the rest become leaves now.
    std::vector<uint32_t> splitting;
    for (const uint32_t id : frontier) {
      PendingNode& node = pending[id];
      std::vector<double> dist = node.counts;
      if (node.n > 0.0) {
        for (double& v : dist) {
          v /= node.n;
        }
      }
      node.parent_gini = Gini(dist);
      const bool pure = node.parent_gini < 1e-12;
      if (pure || node.depth >= options_.max_depth ||
          node.n < 2.0 * static_cast<double>(options_.min_samples_leaf)) {
        node.decided = true;
        node.leaf = true;
        node.proba = std::move(dist);
        continue;
      }
      node.candidates = SplitCandidates(d, node.path);
      splitting.push_back(id);
    }

    std::vector<uint32_t> next_frontier;
    size_t batch_begin = 0;
    while (batch_begin < splitting.size()) {
      // Take nodes until the histogram arena budget is reached.
      std::vector<uint32_t> batch;
      std::vector<size_t> arena_offset;
      size_t arena_size = 0;
      for (size_t i = batch_begin; i < splitting.size(); ++i) {
        const PendingNode& node = pending[splitting[i]];
        size_t node_doubles = 0;
        for (const size_t feature : node.candidates) {
          node_doubles += static_cast<size_t>(store.num_bins(feature)) * classes;
        }
        if (!batch.empty() && arena_size + node_doubles > kArenaBudgetDoubles) {
          break;
        }
        arena_offset.push_back(arena_size);
        arena_size += node_doubles;
        batch.push_back(splitting[i]);
      }
      batch_begin += batch.size();

      std::vector<int> batch_slot(pending.size(), -1);
      for (size_t i = 0; i < batch.size(); ++i) {
        batch_slot[batch[i]] = static_cast<int>(i);
      }
      std::vector<double> arena(arena_size, 0.0);

      // Histogram pass: one streamed read of codes + targets per chunk.
      for (size_t c = 0; c < store.num_chunks(); ++c) {
        const FeatureStore::Chunk chunk = store.chunk(c);
        for (size_t r = 0; r < chunk.rows; ++r) {
          const size_t g = chunk.row_begin + r;
          const uint32_t s = slot[g];
          if (s == kNoNode || batch_slot[s] < 0) {
            continue;
          }
          const double m = row_weight(g);
          const auto cls = static_cast<size_t>(chunk.targets[r]);
          const PendingNode& node = pending[s];
          double* hist = arena.data() + arena_offset[static_cast<size_t>(batch_slot[s])];
          for (const size_t feature : node.candidates) {
            const size_t bins = store.num_bins(feature);
            hist[static_cast<size_t>(chunk.Codes(feature)[r]) * classes + cls] += m;
            hist += bins * classes;
          }
        }
        store.ReleaseChunk(c);
      }

      // Score each batch node through the shared sweep.
      for (size_t i = 0; i < batch.size(); ++i) {
        PendingNode& node = pending[batch[i]];
        double best_gain = 1e-12;
        int best_feature = -1;
        int best_bin = -1;
        double best_threshold = 0.0;
        const double* hist = arena.data() + arena_offset[i];
        const double* best_hist = nullptr;
        for (const size_t feature : node.candidates) {
          const size_t bins = store.num_bins(feature);
          if (bins < 2) {
            hist += bins * classes;
            continue;  // Constant column: nothing to split on.
          }
          int bin = -1;
          if (SweepClassHistogram(hist, bins, classes, node.counts,
                                  node.parent_gini, node.n,
                                  static_cast<double>(options_.min_samples_leaf),
                                  left_counts, right_counts, best_gain, bin)) {
            best_feature = static_cast<int>(feature);
            best_bin = bin;
            best_threshold = store.thresholds(feature)[static_cast<size_t>(bin)];
            best_hist = hist;
          }
          hist += bins * classes;
        }

        node.decided = true;
        if (best_feature < 0) {
          node.leaf = true;
          node.proba = node.counts;
          if (node.n > 0.0) {
            for (double& v : node.proba) {
              v /= node.n;
            }
          }
          continue;
        }
        node.leaf = false;
        node.feature = best_feature;
        node.bin = best_bin;
        node.threshold = best_threshold;
        node.gain = best_gain;

        // Children counts straight from the winning histogram (exact
        // integer sums, identical to re-counting the partitioned rows).
        PendingNode left_child;
        left_child.path = node.path * 2;
        left_child.depth = node.depth + 1;
        left_child.counts.assign(classes, 0.0);
        for (int b = 0; b <= best_bin; ++b) {
          for (size_t cls = 0; cls < classes; ++cls) {
            left_child.counts[cls] +=
                best_hist[static_cast<size_t>(b) * classes + cls];
          }
        }
        PendingNode right_child;
        right_child.path = node.path * 2 + 1;
        right_child.depth = node.depth + 1;
        right_child.counts.assign(classes, 0.0);
        for (size_t cls = 0; cls < classes; ++cls) {
          left_child.n += left_child.counts[cls];
          right_child.counts[cls] = node.counts[cls] - left_child.counts[cls];
          right_child.n += right_child.counts[cls];
        }
        node.candidates.clear();
        node.candidates.shrink_to_fit();
        const auto left_id = static_cast<uint32_t>(pending.size());
        // Note: reserve-free push_back may invalidate `node`; re-fetch.
        pending.push_back(std::move(left_child));
        pending.push_back(std::move(right_child));
        pending[batch[i]].left = left_id;
        pending[batch[i]].right = left_id + 1;
        next_frontier.push_back(left_id);
        next_frontier.push_back(left_id + 1);
      }

      // Partition pass: route rows of freshly split batch nodes to their
      // children; rows landing in leaves retire their slot.
      for (size_t c = 0; c < store.num_chunks(); ++c) {
        const FeatureStore::Chunk chunk = store.chunk(c);
        for (size_t r = 0; r < chunk.rows; ++r) {
          const size_t g = chunk.row_begin + r;
          const uint32_t s = slot[g];
          if (s == kNoNode) {
            continue;
          }
          const PendingNode& node = pending[s];
          if (!node.decided) {
            continue;
          }
          if (node.leaf) {
            slot[g] = kNoNode;
            continue;
          }
          if (batch_slot.size() <= s || batch_slot[s] < 0) {
            continue;  // Split in an earlier level/batch; already routed.
          }
          const int code = chunk.Codes(static_cast<size_t>(node.feature))[r];
          slot[g] = code <= node.bin ? node.left : node.right;
        }
        store.ReleaseChunk(c);
      }
    }

    // A level with no splitting nodes runs no partition pass, leaving rows
    // pointing at retired leaves — harmless, since the frontier is then
    // empty and the loop ends.
    frontier = std::move(next_frontier);
  }

  // Renumber into depth-first preorder, replaying importance accumulation
  // in the recursive builder's order.
  nodes_.reserve(pending.size());
  auto emit = [&](auto&& self, uint32_t id, int depth) -> int {
    const PendingNode& p = pending[id];
    const int index = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    nodes_[static_cast<size_t>(index)].depth = depth;
    if (p.leaf) {
      nodes_[static_cast<size_t>(index)].proba = p.proba;
      return index;
    }
    importance_[static_cast<size_t>(p.feature)] += p.gain * p.n;
    const int left = self(self, p.left, depth + 1);
    const int right = self(self, p.right, depth + 1);
    Node& node = nodes_[static_cast<size_t>(index)];
    node.leaf = false;
    node.feature = p.feature;
    node.threshold = p.threshold;
    node.left = left;
    node.right = right;
    return index;
  };
  emit(emit, 0, 0);
}

uint64_t DecisionTreeClassifier::StructureDigest() const {
  uint64_t state = support::kCrc64Init;
  for (const Node& node : nodes_) {
    const uint32_t leaf = node.leaf ? 1 : 0;
    state = support::Crc64Update(state, &leaf, sizeof(leaf));
    state = support::Crc64Update(state, &node.feature, sizeof(node.feature));
    state = support::Crc64Update(state, &node.threshold, sizeof(node.threshold));
    state = support::Crc64Update(state, &node.left, sizeof(node.left));
    state = support::Crc64Update(state, &node.right, sizeof(node.right));
    state = support::Crc64Update(state, &node.depth, sizeof(node.depth));
    state = support::Crc64Update(state, node.proba.data(),
                                 node.proba.size() * sizeof(double));
  }
  return support::Crc64Finish(state);
}

std::vector<double> DecisionTreeClassifier::PredictProba(std::span<const double> x) const {
  if (nodes_.empty()) {
    return {};
  }
  int index = 0;
  while (!nodes_[static_cast<size_t>(index)].leaf) {
    const Node& node = nodes_[static_cast<size_t>(index)];
    const double value =
        static_cast<size_t>(node.feature) < x.size() ? x[static_cast<size_t>(node.feature)]
                                                     : 0.0;
    index = value <= node.threshold ? node.left : node.right;
  }
  return nodes_[static_cast<size_t>(index)].proba;
}

int DecisionTreeClassifier::depth() const {
  int best = 0;
  for (const auto& node : nodes_) {
    best = std::max(best, node.depth);
  }
  return best;
}

std::vector<std::pair<std::string, double>> DecisionTreeClassifier::FeatureImportance()
    const {
  std::vector<std::pair<std::string, double>> out;
  for (size_t j = 0; j < feature_names_.size(); ++j) {
    out.emplace_back(feature_names_[j], importance_[j]);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

void RandomForestClassifier::Train(const Dataset& data) {
  const auto rows = AllRows(data);
  TrainIndexed(data, rows);
}

void RandomForestClassifier::TrainIndexed(const Dataset& data,
                                          std::span<const size_t> rows) {
  num_classes_ = data.num_classes();
  TreeOptions tree_options = options_.tree;
  if (tree_options.features_per_split == 0) {
    // Default: sqrt(d), the standard forest heuristic.
    tree_options.features_per_split = static_cast<size_t>(
        std::max(1.0, std::sqrt(static_cast<double>(data.num_features()))));
  }
  if (tree_options.split_mode == SplitMode::kHistogram && data.num_rows() > 0) {
    // Build (or reuse) the shared binned view before fanning out, so the
    // one-time binning pass is not raced by the per-tree tasks.
    data.Binned(tree_options.max_bins);
  }
  // Each tree draws its bootstrap sample and split stream from a stable
  // per-tree seed, so bagging parallelises with bit-identical forests at any
  // worker count (and tree t is the same forest-member regardless of
  // num_trees). Bags are row-index views into the shared dataset: no copies.
  trees_ = support::ParallelMap<std::unique_ptr<DecisionTreeClassifier>>(
      static_cast<size_t>(options_.num_trees), [&](size_t t) {
        support::Rng rng = support::Rng::ForTask(options_.seed, t);
        std::vector<size_t> sample(rows.size());
        for (auto& row : sample) {
          row = rows[rng.NextBelow(rows.size())];
        }
        auto tree = std::make_unique<DecisionTreeClassifier>(tree_options, rng.NextU64());
        tree->TrainIndexed(data, sample);
        return tree;
      });
}

void RandomForestClassifier::TrainStreaming(const FeatureStore& store) {
  num_classes_ = store.num_classes();
  TreeOptions tree_options = options_.tree;
  if (tree_options.features_per_split == 0) {
    tree_options.features_per_split = static_cast<size_t>(
        std::max(1.0, std::sqrt(static_cast<double>(store.num_features()))));
  }
  // The streaming build is histogram-only and needs traversal-order-free
  // candidate draws; force both so the result matches TrainIndexed with
  // kStableByNode over the materialised store.
  tree_options.split_mode = SplitMode::kHistogram;
  tree_options.feature_sample = FeatureSample::kStableByNode;
  const size_t n = store.num_rows();
  // Per-tree RNG call sequence is exactly TrainIndexed's (n NextBelow draws
  // then the tree seed), with the bag kept as per-row multiplicities — 4
  // bytes/row — instead of an index list.
  trees_ = support::ParallelMap<std::unique_ptr<DecisionTreeClassifier>>(
      static_cast<size_t>(options_.num_trees), [&](size_t t) {
        support::Rng rng = support::Rng::ForTask(options_.seed, t);
        std::vector<uint32_t> multiplicity(n, 0);
        for (size_t i = 0; i < n; ++i) {
          ++multiplicity[rng.NextBelow(n)];
        }
        auto tree = std::make_unique<DecisionTreeClassifier>(tree_options, rng.NextU64());
        tree->TrainStreaming(store, multiplicity);
        return tree;
      });
}

uint64_t RandomForestClassifier::StructureDigest() const {
  uint64_t state = support::kCrc64Init;
  for (const auto& tree : trees_) {
    const uint64_t digest = tree->StructureDigest();
    state = support::Crc64Update(state, &digest, sizeof(digest));
  }
  return support::Crc64Finish(state);
}

std::vector<double> RandomForestClassifier::PredictProba(std::span<const double> x) const {
  std::vector<double> total(num_classes_, 0.0);
  if (trees_.empty()) {
    return total;
  }
  // Fan out over trees; summing the per-tree distributions in index order
  // keeps floating-point results identical to the serial loop. Inside an
  // outer parallel region (CV folds, the corpus sweep) this collapses to
  // the inline serial path.
  const auto per_tree = support::ParallelMap<std::vector<double>>(
      trees_.size(), [&](size_t t) { return trees_[t]->PredictProba(x); });
  for (const auto& proba : per_tree) {
    for (size_t c = 0; c < total.size() && c < proba.size(); ++c) {
      total[c] += proba[c];
    }
  }
  for (double& p : total) {
    p /= static_cast<double>(trees_.size());
  }
  return total;
}

std::vector<std::vector<double>> RandomForestClassifier::PredictProbaBatch(
    const std::vector<std::vector<double>>& rows) const {
  std::vector<std::vector<double>> out(rows.size(),
                                       std::vector<double>(num_classes_, 0.0));
  if (trees_.empty() || rows.empty()) {
    return out;
  }
  // One parallel region for the whole batch, fanned over trees rather than
  // rows: each task walks a single tree for every row, keeping that tree's
  // nodes hot in cache, and the region count drops from |rows| to 1.
  // Accumulating per row in tree-index order then dividing reproduces
  // PredictProba's floating-point sums exactly, so batched output is
  // bit-identical to the per-row loop at any thread count.
  const auto per_tree = support::ParallelMap<std::vector<std::vector<double>>>(
      trees_.size(), [&](size_t t) {
        std::vector<std::vector<double>> tree_out;
        tree_out.reserve(rows.size());
        for (const auto& row : rows) {
          tree_out.push_back(trees_[t]->PredictProba(row));
        }
        return tree_out;
      });
  for (size_t i = 0; i < rows.size(); ++i) {
    auto& total = out[i];
    for (const auto& tree_out : per_tree) {
      const auto& proba = tree_out[i];
      for (size_t c = 0; c < total.size() && c < proba.size(); ++c) {
        total[c] += proba[c];
      }
    }
    for (double& p : total) {
      p /= static_cast<double>(trees_.size());
    }
  }
  return out;
}

std::vector<std::pair<std::string, double>> RandomForestClassifier::FeatureImportance()
    const {
  std::map<std::string, double> merged;
  for (const auto& tree : trees_) {
    for (const auto& [name, value] : tree->FeatureImportance()) {
      merged[name] += value;
    }
  }
  std::vector<std::pair<std::string, double>> out(merged.begin(), merged.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

void DecisionTreeRegressor::Train(const Dataset& data) {
  const auto rows = AllRows(data);
  TrainIndexed(data, rows);
}

void DecisionTreeRegressor::TrainIndexed(const Dataset& data,
                                         std::span<const size_t> rows) {
  feature_names_ = data.feature_names();
  importance_.assign(data.num_features(), 0.0);
  nodes_.clear();
  std::vector<size_t> working(rows.begin(), rows.end());
  if (options_.split_mode == SplitMode::kHistogram) {
    const auto view = data.Binned(options_.max_bins);
    BuildBinned(data, *view, std::span<size_t>(working), 0, 1);
  } else {
    BuildExact(data, working, 0, 1);
  }
}

std::vector<size_t> DecisionTreeRegressor::SplitCandidates(size_t num_features,
                                                           uint64_t path) {
  return SplitCandidateOrder(options_, num_features, rng_, seed_, path);
}

// Histogram split search for regression: per-bin (count, sum, sum-of-squares)
// accumulators, then an O(bins) SSE sweep. Accumulation order differs from
// the sorted exact sweep, so gains agree to floating-point tolerance rather
// than bit-exactly.
int DecisionTreeRegressor::BuildBinned(const Dataset& data, const BinnedView& view,
                                       std::span<size_t> rows, int depth,
                                       uint64_t path) {
  const int index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  double sum = 0.0;
  double sq = 0.0;
  for (const size_t row : rows) {
    sum += data.Target(row);
    sq += data.Target(row) * data.Target(row);
  }
  const double n_total = static_cast<double>(rows.size());
  const double mean = n_total > 0.0 ? sum / n_total : 0.0;
  const double sse_parent = sq - n_total * mean * mean;
  nodes_[static_cast<size_t>(index)].value = mean;
  if (depth >= options_.max_depth || rows.size() < 2 * options_.min_samples_leaf ||
      sse_parent < 1e-12) {
    return index;
  }

  const std::vector<size_t> candidates = SplitCandidates(data.num_features(), path);

  double best_gain = 1e-12;
  int best_feature = -1;
  int best_bin = -1;
  double best_threshold = 0.0;
  const auto& targets = data.targets();
  for (const size_t feature : candidates) {
    const BinnedColumn& col = view.column(feature);
    const size_t bins = col.num_bins;
    if (bins < 2) {
      continue;
    }
    hist_.assign(bins * 3, 0.0);  // (count, sum, sum of squares) per bin.
    for (const size_t row : rows) {
      const size_t base = static_cast<size_t>(col.codes[row]) * 3;
      const double y = targets[row];
      hist_[base] += 1.0;
      hist_[base + 1] += y;
      hist_[base + 2] += y * y;
    }
    double n_left = 0.0;
    double left_sum = 0.0;
    double left_sq = 0.0;
    for (size_t b = 0; b + 1 < bins; ++b) {
      const double bin_n = hist_[b * 3];
      n_left += bin_n;
      left_sum += hist_[b * 3 + 1];
      left_sq += hist_[b * 3 + 2];
      if (bin_n == 0.0) {
        continue;
      }
      const double n_right = n_total - n_left;
      if (n_right <= 0.0) {
        break;
      }
      if (n_left < static_cast<double>(options_.min_samples_leaf) ||
          n_right < static_cast<double>(options_.min_samples_leaf)) {
        continue;
      }
      const double right_sum = sum - left_sum;
      const double right_sq = sq - left_sq;
      const double sse_left = left_sq - left_sum * left_sum / n_left;
      const double sse_right = right_sq - right_sum * right_sum / n_right;
      const double gain = sse_parent - sse_left - sse_right;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(feature);
        best_bin = static_cast<int>(b);
        best_threshold = col.thresholds[b];
      }
    }
  }

  if (best_feature < 0) {
    return index;
  }
  importance_[static_cast<size_t>(best_feature)] += best_gain;
  const auto& codes = view.column(static_cast<size_t>(best_feature)).codes;
  const auto mid = std::stable_partition(rows.begin(), rows.end(), [&](size_t row) {
    return static_cast<int>(codes[row]) <= best_bin;
  });
  const auto n_left_rows = static_cast<size_t>(mid - rows.begin());
  const int left = BuildBinned(data, view, rows.first(n_left_rows), depth + 1, path * 2);
  const int right =
      BuildBinned(data, view, rows.subspan(n_left_rows), depth + 1, path * 2 + 1);
  Node& node = nodes_[static_cast<size_t>(index)];
  node.leaf = false;
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return index;
}

int DecisionTreeRegressor::BuildExact(const Dataset& data, std::vector<size_t>& rows,
                                      int depth, uint64_t path) {
  const int index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  double sum = 0.0;
  double sq = 0.0;
  for (const size_t row : rows) {
    sum += data.Target(row);
    sq += data.Target(row) * data.Target(row);
  }
  const double n_total = static_cast<double>(rows.size());
  const double mean = n_total > 0.0 ? sum / n_total : 0.0;
  const double sse_parent = sq - n_total * mean * mean;
  nodes_[static_cast<size_t>(index)].value = mean;
  if (depth >= options_.max_depth || rows.size() < 2 * options_.min_samples_leaf ||
      sse_parent < 1e-12) {
    return index;
  }

  const std::vector<size_t> candidates = SplitCandidates(data.num_features(), path);

  double best_gain = 1e-12;
  int best_feature = -1;
  double best_threshold = 0.0;
  std::vector<std::pair<double, double>> sorted_values;  // (feature value, target).
  for (const size_t feature : candidates) {
    sorted_values.clear();
    sorted_values.reserve(rows.size());
    for (const size_t row : rows) {
      sorted_values.emplace_back(data.Feature(row, feature), data.Target(row));
    }
    std::sort(sorted_values.begin(), sorted_values.end());
    // Incremental SSE sweep: SSE = sq - n*mean².
    double left_sum = 0.0;
    double left_sq = 0.0;
    for (size_t i = 0; i + 1 < sorted_values.size(); ++i) {
      left_sum += sorted_values[i].second;
      left_sq += sorted_values[i].second * sorted_values[i].second;
      if (sorted_values[i].first == sorted_values[i + 1].first) {
        continue;
      }
      const double n_left = static_cast<double>(i + 1);
      const double n_right = n_total - n_left;
      if (n_left < static_cast<double>(options_.min_samples_leaf) ||
          n_right < static_cast<double>(options_.min_samples_leaf)) {
        continue;
      }
      const double right_sum = sum - left_sum;
      const double right_sq = sq - left_sq;
      const double sse_left = left_sq - left_sum * left_sum / n_left;
      const double sse_right = right_sq - right_sum * right_sum / n_right;
      const double gain = sse_parent - sse_left - sse_right;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(feature);
        best_threshold = 0.5 * (sorted_values[i].first + sorted_values[i + 1].first);
      }
    }
  }

  if (best_feature < 0) {
    return index;
  }
  importance_[static_cast<size_t>(best_feature)] += best_gain;
  std::vector<size_t> left_rows;
  std::vector<size_t> right_rows;
  for (const size_t row : rows) {
    if (data.Feature(row, static_cast<size_t>(best_feature)) <= best_threshold) {
      left_rows.push_back(row);
    } else {
      right_rows.push_back(row);
    }
  }
  rows.clear();
  rows.shrink_to_fit();
  const int left = BuildExact(data, left_rows, depth + 1, path * 2);
  const int right = BuildExact(data, right_rows, depth + 1, path * 2 + 1);
  Node& node = nodes_[static_cast<size_t>(index)];
  node.leaf = false;
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return index;
}

double DecisionTreeRegressor::Predict(std::span<const double> x) const {
  if (nodes_.empty()) {
    return 0.0;
  }
  int index = 0;
  while (!nodes_[static_cast<size_t>(index)].leaf) {
    const Node& node = nodes_[static_cast<size_t>(index)];
    const double value =
        static_cast<size_t>(node.feature) < x.size() ? x[static_cast<size_t>(node.feature)]
                                                     : 0.0;
    index = value <= node.threshold ? node.left : node.right;
  }
  return nodes_[static_cast<size_t>(index)].value;
}

std::vector<std::pair<std::string, double>> DecisionTreeRegressor::FeatureImportance()
    const {
  std::vector<std::pair<std::string, double>> out;
  for (size_t j = 0; j < feature_names_.size(); ++j) {
    out.emplace_back(feature_names_[j], importance_[j]);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

void RandomForestRegressor::Train(const Dataset& data) {
  const auto rows = AllRows(data);
  TrainIndexed(data, rows);
}

void RandomForestRegressor::TrainIndexed(const Dataset& data,
                                         std::span<const size_t> rows) {
  TreeOptions tree_options = options_.tree;
  if (tree_options.features_per_split == 0) {
    // Regression forests conventionally use d/3 features per split.
    tree_options.features_per_split =
        std::max<size_t>(1, data.num_features() / 3);
  }
  if (tree_options.split_mode == SplitMode::kHistogram && data.num_rows() > 0) {
    data.Binned(tree_options.max_bins);
  }
  // Stable per-tree seeds; see RandomForestClassifier::TrainIndexed.
  trees_ = support::ParallelMap<std::unique_ptr<DecisionTreeRegressor>>(
      static_cast<size_t>(options_.num_trees), [&](size_t t) {
        support::Rng rng = support::Rng::ForTask(options_.seed, t);
        std::vector<size_t> sample(rows.size());
        for (auto& row : sample) {
          row = rows[rng.NextBelow(rows.size())];
        }
        auto tree = std::make_unique<DecisionTreeRegressor>(tree_options, rng.NextU64());
        tree->TrainIndexed(data, sample);
        return tree;
      });
}

double RandomForestRegressor::Predict(std::span<const double> x) const {
  if (trees_.empty()) {
    return 0.0;
  }
  const auto per_tree = support::ParallelMap<double>(
      trees_.size(), [&](size_t t) { return trees_[t]->Predict(x); });
  double total = 0.0;
  for (const double value : per_tree) {
    total += value;
  }
  return total / static_cast<double>(trees_.size());
}

std::vector<std::pair<std::string, double>> RandomForestRegressor::FeatureImportance()
    const {
  std::map<std::string, double> merged;
  for (const auto& tree : trees_) {
    for (const auto& [name, value] : tree->FeatureImportance()) {
      merged[name] += value;
    }
  }
  std::vector<std::pair<std::string, double>> out(merged.begin(), merged.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

void KnnClassifier::Train(const Dataset& data) {
  const auto rows = AllRows(data);
  TrainIndexed(data, rows);
}

void KnnClassifier::TrainIndexed(const Dataset& data, std::span<const size_t> rows) {
  dim_ = data.num_features();
  num_classes_ = data.num_classes();
  train_x_.resize(rows.size() * dim_);
  train_y_.resize(rows.size());
  // Gather column-by-column out of the columnar storage into the flat
  // row-major matrix the distance scan wants.
  for (size_t j = 0; j < dim_; ++j) {
    const auto column = data.Column(j);
    for (size_t i = 0; i < rows.size(); ++i) {
      train_x_[i * dim_ + j] = column[rows[i]];
    }
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    train_y_[i] = data.ClassIndex(rows[i]);
  }
}

std::vector<double> KnnClassifier::PredictProba(std::span<const double> x) const {
  std::vector<double> proba(num_classes_, 0.0);
  if (train_y_.empty()) {
    return proba;
  }
  std::vector<std::pair<double, int>> distances;  // (distance², class).
  distances.reserve(train_y_.size());
  const size_t n = std::min(dim_, x.size());
  for (size_t i = 0; i < train_y_.size(); ++i) {
    const double* row = train_x_.data() + i * dim_;
    double d2 = 0.0;
    for (size_t j = 0; j < n; ++j) {
      const double d = row[j] - x[j];
      d2 += d * d;
    }
    distances.emplace_back(d2, train_y_[i]);
  }
  const size_t k = std::min(static_cast<size_t>(k_), distances.size());
  std::partial_sort(distances.begin(), distances.begin() + static_cast<long>(k),
                    distances.end());
  for (size_t i = 0; i < k; ++i) {
    proba[static_cast<size_t>(distances[i].second)] += 1.0;
  }
  for (double& p : proba) {
    p /= static_cast<double>(k);
  }
  return proba;
}

}  // namespace ml
