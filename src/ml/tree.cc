#include "src/ml/tree.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "src/support/thread_pool.h"

namespace ml {

std::vector<double> DecisionTreeClassifier::Distribution(const Dataset& data,
                                                         const std::vector<size_t>& rows) {
  std::vector<double> dist(data.num_classes(), 0.0);
  for (const size_t row : rows) {
    dist[static_cast<size_t>(data.ClassIndex(row))] += 1.0;
  }
  const double total = static_cast<double>(rows.size());
  if (total > 0.0) {
    for (double& d : dist) {
      d /= total;
    }
  }
  return dist;
}

double DecisionTreeClassifier::Gini(const std::vector<double>& distribution) {
  double gini = 1.0;
  for (const double p : distribution) {
    gini -= p * p;
  }
  return gini;
}

void DecisionTreeClassifier::Train(const Dataset& data) {
  feature_names_ = data.feature_names();
  importance_.assign(data.num_features(), 0.0);
  nodes_.clear();
  std::vector<size_t> rows(data.num_rows());
  std::iota(rows.begin(), rows.end(), size_t{0});
  Build(data, rows, 0);
}

int DecisionTreeClassifier::Build(const Dataset& data, std::vector<size_t>& rows,
                                  int depth) {
  const int index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<size_t>(index)].depth = depth;
  auto distribution = Distribution(data, rows);
  const double parent_gini = Gini(distribution);
  const bool pure = parent_gini < 1e-12;
  if (pure || depth >= options_.max_depth || rows.size() < 2 * options_.min_samples_leaf) {
    nodes_[static_cast<size_t>(index)].proba = std::move(distribution);
    return index;
  }

  // Feature subset for this split.
  std::vector<size_t> candidates(data.num_features());
  std::iota(candidates.begin(), candidates.end(), size_t{0});
  if (options_.features_per_split > 0 &&
      options_.features_per_split < candidates.size()) {
    rng_.Shuffle(candidates);
    candidates.resize(options_.features_per_split);
  }

  double best_gain = 1e-12;
  int best_feature = -1;
  double best_threshold = 0.0;
  const double n_total = static_cast<double>(rows.size());
  std::vector<std::pair<double, int>> sorted_values;  // (value, class).
  for (const size_t feature : candidates) {
    sorted_values.clear();
    sorted_values.reserve(rows.size());
    for (const size_t row : rows) {
      sorted_values.emplace_back(data.Feature(row, feature), data.ClassIndex(row));
    }
    std::sort(sorted_values.begin(), sorted_values.end());
    // Sweep split points between distinct values, maintaining left counts.
    std::vector<double> left_counts(data.num_classes(), 0.0);
    std::vector<double> right_counts(data.num_classes(), 0.0);
    for (const auto& [value, cls] : sorted_values) {
      right_counts[static_cast<size_t>(cls)] += 1.0;
    }
    for (size_t i = 0; i + 1 < sorted_values.size(); ++i) {
      const auto cls = static_cast<size_t>(sorted_values[i].second);
      left_counts[cls] += 1.0;
      right_counts[cls] -= 1.0;
      if (sorted_values[i].first == sorted_values[i + 1].first) {
        continue;  // Not a valid split point.
      }
      const double n_left = static_cast<double>(i + 1);
      const double n_right = n_total - n_left;
      if (n_left < static_cast<double>(options_.min_samples_leaf) ||
          n_right < static_cast<double>(options_.min_samples_leaf)) {
        continue;
      }
      auto gini_of = [](const std::vector<double>& counts, double n) {
        double g = 1.0;
        for (const double c : counts) {
          const double p = c / n;
          g -= p * p;
        }
        return g;
      };
      const double gain = parent_gini - (n_left / n_total) * gini_of(left_counts, n_left) -
                          (n_right / n_total) * gini_of(right_counts, n_right);
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(feature);
        best_threshold = 0.5 * (sorted_values[i].first + sorted_values[i + 1].first);
      }
    }
  }

  if (best_feature < 0) {
    nodes_[static_cast<size_t>(index)].proba = std::move(distribution);
    return index;
  }

  importance_[static_cast<size_t>(best_feature)] += best_gain * n_total;
  std::vector<size_t> left_rows;
  std::vector<size_t> right_rows;
  for (const size_t row : rows) {
    if (data.Feature(row, static_cast<size_t>(best_feature)) <= best_threshold) {
      left_rows.push_back(row);
    } else {
      right_rows.push_back(row);
    }
  }
  rows.clear();
  rows.shrink_to_fit();
  const int left = Build(data, left_rows, depth + 1);
  const int right = Build(data, right_rows, depth + 1);
  Node& node = nodes_[static_cast<size_t>(index)];
  node.leaf = false;
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return index;
}

std::vector<double> DecisionTreeClassifier::PredictProba(std::span<const double> x) const {
  if (nodes_.empty()) {
    return {};
  }
  int index = 0;
  while (!nodes_[static_cast<size_t>(index)].leaf) {
    const Node& node = nodes_[static_cast<size_t>(index)];
    const double value =
        static_cast<size_t>(node.feature) < x.size() ? x[static_cast<size_t>(node.feature)]
                                                     : 0.0;
    index = value <= node.threshold ? node.left : node.right;
  }
  return nodes_[static_cast<size_t>(index)].proba;
}

int DecisionTreeClassifier::depth() const {
  int best = 0;
  for (const auto& node : nodes_) {
    best = std::max(best, node.depth);
  }
  return best;
}

std::vector<std::pair<std::string, double>> DecisionTreeClassifier::FeatureImportance()
    const {
  std::vector<std::pair<std::string, double>> out;
  for (size_t j = 0; j < feature_names_.size(); ++j) {
    out.emplace_back(feature_names_[j], importance_[j]);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

void RandomForestClassifier::Train(const Dataset& data) {
  num_classes_ = data.num_classes();
  TreeOptions tree_options = options_.tree;
  if (tree_options.features_per_split == 0) {
    // Default: sqrt(d), the standard forest heuristic.
    tree_options.features_per_split = static_cast<size_t>(
        std::max(1.0, std::sqrt(static_cast<double>(data.num_features()))));
  }
  // Each tree draws its bootstrap sample and split stream from a stable
  // per-tree seed, so bagging parallelises with bit-identical forests at any
  // worker count (and tree t is the same forest-member regardless of
  // num_trees).
  trees_ = support::ParallelMap<std::unique_ptr<DecisionTreeClassifier>>(
      static_cast<size_t>(options_.num_trees), [&](size_t t) {
        support::Rng rng = support::Rng::ForTask(options_.seed, t);
        std::vector<size_t> sample(data.num_rows());
        for (auto& row : sample) {
          row = static_cast<size_t>(rng.NextBelow(data.num_rows()));
        }
        const Dataset bagged = data.Subset(sample);
        auto tree = std::make_unique<DecisionTreeClassifier>(tree_options, rng.NextU64());
        tree->Train(bagged);
        return tree;
      });
}

std::vector<double> RandomForestClassifier::PredictProba(std::span<const double> x) const {
  std::vector<double> total(num_classes_, 0.0);
  if (trees_.empty()) {
    return total;
  }
  // Fan out over trees; summing the per-tree distributions in index order
  // keeps floating-point results identical to the serial loop. Inside an
  // outer parallel region (CV folds, the corpus sweep) this collapses to
  // the inline serial path.
  const auto per_tree = support::ParallelMap<std::vector<double>>(
      trees_.size(), [&](size_t t) { return trees_[t]->PredictProba(x); });
  for (const auto& proba : per_tree) {
    for (size_t c = 0; c < total.size() && c < proba.size(); ++c) {
      total[c] += proba[c];
    }
  }
  for (double& p : total) {
    p /= static_cast<double>(trees_.size());
  }
  return total;
}

std::vector<std::pair<std::string, double>> RandomForestClassifier::FeatureImportance()
    const {
  std::map<std::string, double> merged;
  for (const auto& tree : trees_) {
    for (const auto& [name, value] : tree->FeatureImportance()) {
      merged[name] += value;
    }
  }
  std::vector<std::pair<std::string, double>> out(merged.begin(), merged.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

void DecisionTreeRegressor::Train(const Dataset& data) {
  feature_names_ = data.feature_names();
  importance_.assign(data.num_features(), 0.0);
  nodes_.clear();
  std::vector<size_t> rows(data.num_rows());
  std::iota(rows.begin(), rows.end(), size_t{0});
  Build(data, rows, 0);
}

int DecisionTreeRegressor::Build(const Dataset& data, std::vector<size_t>& rows,
                                 int depth) {
  const int index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  double sum = 0.0;
  double sq = 0.0;
  for (const size_t row : rows) {
    sum += data.Target(row);
    sq += data.Target(row) * data.Target(row);
  }
  const double n_total = static_cast<double>(rows.size());
  const double mean = n_total > 0.0 ? sum / n_total : 0.0;
  const double sse_parent = sq - n_total * mean * mean;
  nodes_[static_cast<size_t>(index)].value = mean;
  if (depth >= options_.max_depth || rows.size() < 2 * options_.min_samples_leaf ||
      sse_parent < 1e-12) {
    return index;
  }

  std::vector<size_t> candidates(data.num_features());
  std::iota(candidates.begin(), candidates.end(), size_t{0});
  if (options_.features_per_split > 0 &&
      options_.features_per_split < candidates.size()) {
    rng_.Shuffle(candidates);
    candidates.resize(options_.features_per_split);
  }

  double best_gain = 1e-12;
  int best_feature = -1;
  double best_threshold = 0.0;
  std::vector<std::pair<double, double>> sorted_values;  // (feature value, target).
  for (const size_t feature : candidates) {
    sorted_values.clear();
    sorted_values.reserve(rows.size());
    for (const size_t row : rows) {
      sorted_values.emplace_back(data.Feature(row, feature), data.Target(row));
    }
    std::sort(sorted_values.begin(), sorted_values.end());
    // Incremental SSE sweep: SSE = sq - n*mean².
    double left_sum = 0.0;
    double left_sq = 0.0;
    for (size_t i = 0; i + 1 < sorted_values.size(); ++i) {
      left_sum += sorted_values[i].second;
      left_sq += sorted_values[i].second * sorted_values[i].second;
      if (sorted_values[i].first == sorted_values[i + 1].first) {
        continue;
      }
      const double n_left = static_cast<double>(i + 1);
      const double n_right = n_total - n_left;
      if (n_left < static_cast<double>(options_.min_samples_leaf) ||
          n_right < static_cast<double>(options_.min_samples_leaf)) {
        continue;
      }
      const double right_sum = sum - left_sum;
      const double right_sq = sq - left_sq;
      const double sse_left = left_sq - left_sum * left_sum / n_left;
      const double sse_right = right_sq - right_sum * right_sum / n_right;
      const double gain = sse_parent - sse_left - sse_right;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(feature);
        best_threshold = 0.5 * (sorted_values[i].first + sorted_values[i + 1].first);
      }
    }
  }

  if (best_feature < 0) {
    return index;
  }
  importance_[static_cast<size_t>(best_feature)] += best_gain;
  std::vector<size_t> left_rows;
  std::vector<size_t> right_rows;
  for (const size_t row : rows) {
    if (data.Feature(row, static_cast<size_t>(best_feature)) <= best_threshold) {
      left_rows.push_back(row);
    } else {
      right_rows.push_back(row);
    }
  }
  rows.clear();
  rows.shrink_to_fit();
  const int left = Build(data, left_rows, depth + 1);
  const int right = Build(data, right_rows, depth + 1);
  Node& node = nodes_[static_cast<size_t>(index)];
  node.leaf = false;
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return index;
}

double DecisionTreeRegressor::Predict(std::span<const double> x) const {
  if (nodes_.empty()) {
    return 0.0;
  }
  int index = 0;
  while (!nodes_[static_cast<size_t>(index)].leaf) {
    const Node& node = nodes_[static_cast<size_t>(index)];
    const double value =
        static_cast<size_t>(node.feature) < x.size() ? x[static_cast<size_t>(node.feature)]
                                                     : 0.0;
    index = value <= node.threshold ? node.left : node.right;
  }
  return nodes_[static_cast<size_t>(index)].value;
}

std::vector<std::pair<std::string, double>> DecisionTreeRegressor::FeatureImportance()
    const {
  std::vector<std::pair<std::string, double>> out;
  for (size_t j = 0; j < feature_names_.size(); ++j) {
    out.emplace_back(feature_names_[j], importance_[j]);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

void RandomForestRegressor::Train(const Dataset& data) {
  TreeOptions tree_options = options_.tree;
  if (tree_options.features_per_split == 0) {
    // Regression forests conventionally use d/3 features per split.
    tree_options.features_per_split =
        std::max<size_t>(1, data.num_features() / 3);
  }
  // Stable per-tree seeds; see RandomForestClassifier::Train.
  trees_ = support::ParallelMap<std::unique_ptr<DecisionTreeRegressor>>(
      static_cast<size_t>(options_.num_trees), [&](size_t t) {
        support::Rng rng = support::Rng::ForTask(options_.seed, t);
        std::vector<size_t> sample(data.num_rows());
        for (auto& row : sample) {
          row = static_cast<size_t>(rng.NextBelow(data.num_rows()));
        }
        const Dataset bagged = data.Subset(sample);
        auto tree = std::make_unique<DecisionTreeRegressor>(tree_options, rng.NextU64());
        tree->Train(bagged);
        return tree;
      });
}

double RandomForestRegressor::Predict(std::span<const double> x) const {
  if (trees_.empty()) {
    return 0.0;
  }
  const auto per_tree = support::ParallelMap<double>(
      trees_.size(), [&](size_t t) { return trees_[t]->Predict(x); });
  double total = 0.0;
  for (const double value : per_tree) {
    total += value;
  }
  return total / static_cast<double>(trees_.size());
}

std::vector<std::pair<std::string, double>> RandomForestRegressor::FeatureImportance()
    const {
  std::map<std::string, double> merged;
  for (const auto& tree : trees_) {
    for (const auto& [name, value] : tree->FeatureImportance()) {
      merged[name] += value;
    }
  }
  std::vector<std::pair<std::string, double>> out(merged.begin(), merged.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

void KnnClassifier::Train(const Dataset& data) { train_ = data; }

std::vector<double> KnnClassifier::PredictProba(std::span<const double> x) const {
  std::vector<double> proba(train_.num_classes(), 0.0);
  if (train_.num_rows() == 0) {
    return proba;
  }
  std::vector<std::pair<double, int>> distances;  // (distance², class).
  distances.reserve(train_.num_rows());
  for (size_t i = 0; i < train_.num_rows(); ++i) {
    const auto row = train_.Row(i);
    double d2 = 0.0;
    const size_t n = std::min(row.size(), x.size());
    for (size_t j = 0; j < n; ++j) {
      const double d = row[j] - x[j];
      d2 += d * d;
    }
    distances.emplace_back(d2, train_.ClassIndex(i));
  }
  const size_t k = std::min(static_cast<size_t>(k_), distances.size());
  std::partial_sort(distances.begin(), distances.begin() + static_cast<long>(k),
                    distances.end());
  for (size_t i = 0; i < k; ++i) {
    proba[static_cast<size_t>(distances[i].second)] += 1.0;
  }
  for (double& p : proba) {
    p /= static_cast<double>(k);
  }
  return proba;
}

}  // namespace ml
