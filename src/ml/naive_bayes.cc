#include "src/ml/naive_bayes.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ml {

namespace {
constexpr double kMinVariance = 1e-9;
}  // namespace

void NaiveBayesClassifier::Train(const Dataset& data) {
  std::vector<size_t> rows(data.num_rows());
  std::iota(rows.begin(), rows.end(), size_t{0});
  TrainIndexed(data, rows);
}

void NaiveBayesClassifier::TrainIndexed(const Dataset& data,
                                        std::span<const size_t> rows) {
  feature_names_ = data.feature_names();
  const size_t classes = data.num_classes();
  const size_t features = data.num_features();
  log_priors_.assign(classes, 0.0);
  means_.assign(classes, std::vector<double>(features, 0.0));
  variances_.assign(classes, std::vector<double>(features, 1.0));
  std::vector<size_t> counts(classes, 0);
  // Class of each view row, gathered once; the two sweeps below are then
  // pure column scans over the SoA storage.
  std::vector<size_t> row_class(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    row_class[i] = static_cast<size_t>(data.ClassIndex(rows[i]));
    ++counts[row_class[i]];
  }
  for (size_t j = 0; j < features; ++j) {
    const auto column = data.Column(j);
    for (size_t i = 0; i < rows.size(); ++i) {
      means_[row_class[i]][j] += column[rows[i]];
    }
  }
  for (size_t c = 0; c < classes; ++c) {
    // Laplace-smoothed prior.
    log_priors_[c] = std::log((static_cast<double>(counts[c]) + 1.0) /
                              (static_cast<double>(rows.size()) +
                               static_cast<double>(classes)));
    if (counts[c] > 0) {
      for (size_t j = 0; j < features; ++j) {
        means_[c][j] /= static_cast<double>(counts[c]);
      }
    }
  }
  std::vector<std::vector<double>> sq(classes, std::vector<double>(features, 0.0));
  for (size_t j = 0; j < features; ++j) {
    const auto column = data.Column(j);
    for (size_t i = 0; i < rows.size(); ++i) {
      const double d = column[rows[i]] - means_[row_class[i]][j];
      sq[row_class[i]][j] += d * d;
    }
  }
  for (size_t c = 0; c < classes; ++c) {
    for (size_t j = 0; j < features; ++j) {
      variances_[c][j] =
          counts[c] > 1 ? std::max(sq[c][j] / static_cast<double>(counts[c] - 1),
                                   kMinVariance)
                        : 1.0;
    }
  }
}

std::vector<double> NaiveBayesClassifier::PredictProba(std::span<const double> x) const {
  const size_t classes = log_priors_.size();
  std::vector<double> log_post(classes, 0.0);
  for (size_t c = 0; c < classes; ++c) {
    double lp = log_priors_[c];
    const size_t features = std::min(x.size(), means_[c].size());
    for (size_t j = 0; j < features; ++j) {
      const double var = variances_[c][j];
      const double d = x[j] - means_[c][j];
      lp += -0.5 * (std::log(2.0 * 3.14159265358979323846 * var) + d * d / var);
    }
    log_post[c] = lp;
  }
  const double max_lp = *std::max_element(log_post.begin(), log_post.end());
  double total = 0.0;
  for (double& lp : log_post) {
    lp = std::exp(lp - max_lp);
    total += lp;
  }
  for (double& lp : log_post) {
    lp /= total;
  }
  return log_post;
}

std::vector<std::pair<std::string, double>> NaiveBayesClassifier::FeatureImportance() const {
  // Importance: spread of class means relative to pooled stddev.
  std::vector<std::pair<std::string, double>> out;
  for (size_t j = 0; j < feature_names_.size(); ++j) {
    double min_mean = 0.0;
    double max_mean = 0.0;
    double pooled_var = 0.0;
    for (size_t c = 0; c < means_.size(); ++c) {
      if (c == 0) {
        min_mean = max_mean = means_[c][j];
      } else {
        min_mean = std::min(min_mean, means_[c][j]);
        max_mean = std::max(max_mean, means_[c][j]);
      }
      pooled_var += variances_[c][j];
    }
    pooled_var /= static_cast<double>(means_.empty() ? 1 : means_.size());
    out.emplace_back(feature_names_[j],
                     (max_mean - min_mean) / std::sqrt(std::max(pooled_var, kMinVariance)));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

}  // namespace ml
