// Feature transformations (§5.2 names "determining necessary data
// transformation for numeric features" as part of refining the model).
// Each transform is fit on training data only and then applied to any split.
#ifndef SRC_ML_TRANSFORMS_H_
#define SRC_ML_TRANSFORMS_H_

#include <vector>

#include "src/ml/dataset.h"

namespace ml {

// log1p on every feature (code properties are heavy-tailed; the paper's
// Figure 2 regression is in log space). Stateless.
void ApplyLog1p(Dataset& data);

// Z-score standardisation fit on one dataset, applicable to others.
class Standardizer {
 public:
  void Fit(const Dataset& data);
  void Apply(Dataset& data) const;

  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& stddevs() const { return stddevs_; }

 private:
  std::vector<double> means_;
  std::vector<double> stddevs_;
};

// Equal-width discretisation into `bins` integer-valued buckets.
class Discretizer {
 public:
  explicit Discretizer(int bins) : bins_(bins) {}
  void Fit(const Dataset& data);
  void Apply(Dataset& data) const;
  // Bin index for a raw value in column `col`.
  int BinOf(size_t col, double value) const;
  int bins() const { return bins_; }

 private:
  int bins_;
  std::vector<double> lo_;
  std::vector<double> hi_;
};

}  // namespace ml

#endif  // SRC_ML_TRANSFORMS_H_
