#include "src/ml/dataset.h"

#include <cassert>

#include "src/ml/binned.h"

namespace ml {

Dataset Dataset::ForClassification(std::vector<std::string> feature_names,
                                   std::vector<std::string> class_names) {
  Dataset data;
  data.feature_names_ = std::move(feature_names);
  data.class_names_ = std::move(class_names);
  data.target_name_ = "class";
  data.columns_.resize(data.feature_names_.size());
  return data;
}

Dataset Dataset::ForRegression(std::vector<std::string> feature_names,
                               std::string target_name) {
  Dataset data;
  data.feature_names_ = std::move(feature_names);
  data.target_name_ = std::move(target_name);
  data.columns_.resize(data.feature_names_.size());
  return data;
}

Dataset::Dataset(const Dataset& other)
    : feature_names_(other.feature_names_),
      class_names_(other.class_names_),
      target_name_(other.target_name_),
      columns_(other.columns_),
      targets_(other.targets_) {
  std::lock_guard<std::mutex> lock(other.binned_mutex_);
  binned_ = other.binned_;  // Immutable snapshot; safe to share.
  binned_bins_ = other.binned_bins_;
}

Dataset& Dataset::operator=(const Dataset& other) {
  if (this == &other) {
    return *this;
  }
  feature_names_ = other.feature_names_;
  class_names_ = other.class_names_;
  target_name_ = other.target_name_;
  columns_ = other.columns_;
  targets_ = other.targets_;
  std::shared_ptr<const BinnedView> view;
  uint16_t bins = 0;
  {
    std::lock_guard<std::mutex> lock(other.binned_mutex_);
    view = other.binned_;
    bins = other.binned_bins_;
  }
  std::lock_guard<std::mutex> lock(binned_mutex_);
  binned_ = std::move(view);
  binned_bins_ = bins;
  return *this;
}

Dataset::Dataset(Dataset&& other) noexcept
    : feature_names_(std::move(other.feature_names_)),
      class_names_(std::move(other.class_names_)),
      target_name_(std::move(other.target_name_)),
      columns_(std::move(other.columns_)),
      targets_(std::move(other.targets_)),
      binned_(std::move(other.binned_)),
      binned_bins_(other.binned_bins_) {}

Dataset& Dataset::operator=(Dataset&& other) noexcept {
  if (this == &other) {
    return *this;
  }
  feature_names_ = std::move(other.feature_names_);
  class_names_ = std::move(other.class_names_);
  target_name_ = std::move(other.target_name_);
  columns_ = std::move(other.columns_);
  targets_ = std::move(other.targets_);
  binned_ = std::move(other.binned_);
  binned_bins_ = other.binned_bins_;
  return *this;
}

void Dataset::Reserve(size_t rows) {
  for (auto& column : columns_) {
    column.reserve(rows);
  }
  targets_.reserve(rows);
}

void Dataset::AddRow(std::span<const double> features, double target) {
  assert(features.size() == feature_names_.size());
  if (is_classification()) {
    assert(target >= 0 && target < static_cast<double>(class_names_.size()));
  }
  InvalidateBinned();
  for (size_t j = 0; j < columns_.size(); ++j) {
    columns_[j].push_back(features[j]);
  }
  targets_.push_back(target);
}

void Dataset::AppendRows(std::span<const double> row_major,
                         std::span<const double> targets) {
  const size_t d = feature_names_.size();
  const size_t n = targets.size();
  assert(row_major.size() == n * d);
  if (is_classification()) {
    for (const double target : targets) {
      assert(target >= 0 && target < static_cast<double>(class_names_.size()));
      (void)target;
    }
  }
  InvalidateBinned();
  for (size_t j = 0; j < d; ++j) {
    auto& column = columns_[j];
    column.reserve(column.size() + n);
    for (size_t i = 0; i < n; ++i) {
      column.push_back(row_major[i * d + j]);
    }
  }
  targets_.insert(targets_.end(), targets.begin(), targets.end());
}

std::vector<double> Dataset::Row(size_t i) const {
  std::vector<double> out(columns_.size());
  for (size_t j = 0; j < columns_.size(); ++j) {
    out[j] = columns_[j][i];
  }
  return out;
}

std::vector<size_t> Dataset::ClassCounts() const {
  std::vector<size_t> counts(num_classes(), 0);
  for (const double target : targets_) {
    ++counts[static_cast<size_t>(target)];
  }
  return counts;
}

Dataset Dataset::Subset(std::span<const size_t> rows) const {
  Dataset out;
  out.feature_names_ = feature_names_;
  out.class_names_ = class_names_;
  out.target_name_ = target_name_;
  out.columns_.resize(columns_.size());
  for (size_t j = 0; j < columns_.size(); ++j) {
    out.columns_[j].reserve(rows.size());
    for (const size_t row : rows) {
      out.columns_[j].push_back(columns_[j][row]);
    }
  }
  out.targets_.reserve(rows.size());
  for (const size_t row : rows) {
    out.targets_.push_back(targets_[row]);
  }
  return out;
}

std::vector<std::vector<size_t>> Dataset::StratifiedFolds(int k, support::Rng& rng) const {
  assert(k >= 2);
  std::vector<std::vector<size_t>> folds(static_cast<size_t>(k));
  if (is_classification()) {
    // Group rows by class, shuffle each group, deal round-robin.
    std::vector<std::vector<size_t>> by_class(num_classes());
    for (size_t i = 0; i < num_rows(); ++i) {
      by_class[static_cast<size_t>(ClassIndex(i))].push_back(i);
    }
    size_t next_fold = 0;
    for (auto& group : by_class) {
      rng.Shuffle(group);
      for (const size_t row : group) {
        folds[next_fold].push_back(row);
        next_fold = (next_fold + 1) % folds.size();
      }
    }
  } else {
    std::vector<size_t> order(num_rows());
    for (size_t i = 0; i < order.size(); ++i) {
      order[i] = i;
    }
    rng.Shuffle(order);
    for (size_t i = 0; i < order.size(); ++i) {
      folds[i % folds.size()].push_back(order[i]);
    }
  }
  return folds;
}

std::shared_ptr<const BinnedView> Dataset::Binned(uint16_t max_bins) const {
  std::lock_guard<std::mutex> lock(binned_mutex_);
  if (!binned_ || binned_bins_ != max_bins) {
    binned_ = std::make_shared<const BinnedView>(BinnedView::Build(*this, max_bins));
    binned_bins_ = max_bins;
  }
  return binned_;
}

void Dataset::InvalidateBinned() {
  std::lock_guard<std::mutex> lock(binned_mutex_);
  binned_.reset();
  binned_bins_ = 0;
}

}  // namespace ml
