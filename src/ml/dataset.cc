#include "src/ml/dataset.h"

#include <cassert>

namespace ml {

Dataset Dataset::ForClassification(std::vector<std::string> feature_names,
                                   std::vector<std::string> class_names) {
  Dataset data;
  data.feature_names_ = std::move(feature_names);
  data.class_names_ = std::move(class_names);
  data.target_name_ = "class";
  return data;
}

Dataset Dataset::ForRegression(std::vector<std::string> feature_names,
                               std::string target_name) {
  Dataset data;
  data.feature_names_ = std::move(feature_names);
  data.target_name_ = std::move(target_name);
  return data;
}

void Dataset::AddRow(std::vector<double> features, double target) {
  assert(features.size() == feature_names_.size());
  if (is_classification()) {
    assert(target >= 0 && target < static_cast<double>(class_names_.size()));
  }
  features_.push_back(std::move(features));
  targets_.push_back(target);
}

std::vector<double> Dataset::Column(size_t col) const {
  std::vector<double> out;
  out.reserve(num_rows());
  for (const auto& row : features_) {
    out.push_back(row[col]);
  }
  return out;
}

std::vector<size_t> Dataset::ClassCounts() const {
  std::vector<size_t> counts(num_classes(), 0);
  for (const double target : targets_) {
    ++counts[static_cast<size_t>(target)];
  }
  return counts;
}

Dataset Dataset::Subset(std::span<const size_t> rows) const {
  Dataset out;
  out.feature_names_ = feature_names_;
  out.class_names_ = class_names_;
  out.target_name_ = target_name_;
  out.features_.reserve(rows.size());
  out.targets_.reserve(rows.size());
  for (const size_t row : rows) {
    out.features_.push_back(features_[row]);
    out.targets_.push_back(targets_[row]);
  }
  return out;
}

std::vector<std::vector<size_t>> Dataset::StratifiedFolds(int k, support::Rng& rng) const {
  assert(k >= 2);
  std::vector<std::vector<size_t>> folds(static_cast<size_t>(k));
  if (is_classification()) {
    // Group rows by class, shuffle each group, deal round-robin.
    std::vector<std::vector<size_t>> by_class(num_classes());
    for (size_t i = 0; i < num_rows(); ++i) {
      by_class[static_cast<size_t>(ClassIndex(i))].push_back(i);
    }
    size_t next_fold = 0;
    for (auto& group : by_class) {
      rng.Shuffle(group);
      for (const size_t row : group) {
        folds[next_fold].push_back(row);
        next_fold = (next_fold + 1) % folds.size();
      }
    }
  } else {
    std::vector<size_t> order(num_rows());
    for (size_t i = 0; i < order.size(); ++i) {
      order[i] = i;
    }
    rng.Shuffle(order);
    for (size_t i = 0; i < order.size(); ++i) {
      folds[i % folds.size()].push_back(order[i]);
    }
  }
  return folds;
}

}  // namespace ml
