#include "src/cvedb/cvedb.h"

#include <algorithm>
#include <set>

#include "src/support/strings.h"

namespace cvedb {

using support::Error;

void Database::Add(CveRecord record) {
  by_app_.emplace(record.app, records_.size());
  records_.push_back(std::move(record));
}

std::vector<const CveRecord*> Database::ForApp(std::string_view app) const {
  std::vector<const CveRecord*> out;
  const auto [begin, end] = by_app_.equal_range(app);
  for (auto it = begin; it != end; ++it) {
    out.push_back(&records_[it->second]);
  }
  std::sort(out.begin(), out.end(), [](const CveRecord* a, const CveRecord* b) {
    if (a->published != b->published) {
      return a->published < b->published;
    }
    return a->id < b->id;
  });
  return out;
}

std::vector<std::string> Database::Apps() const {
  std::vector<std::string> apps;
  for (auto it = by_app_.begin(); it != by_app_.end();
       it = by_app_.upper_bound(it->first)) {
    apps.push_back(it->first);
  }
  return apps;
}

AppSummary Database::Summarize(std::string_view app) const {
  AppSummary summary;
  summary.app = std::string(app);
  const auto records = ForApp(app);
  if (records.empty()) {
    return summary;
  }
  summary.first = records.front()->published;
  summary.last = records.back()->published;
  double score_sum = 0.0;
  for (const CveRecord* record : records) {
    ++summary.total;
    const double score = record->BaseScore();
    score_sum += score;
    summary.max_score = std::max(summary.max_score, score);
    if (score >= 9.0) {
      ++summary.critical;
    }
    if (score > 7.0) {
      ++summary.high_or_worse;
    }
    if (record->vector.av == cvss::AttackVector::kNetwork) {
      ++summary.network_vector;
    }
    if (record->vector.ac == cvss::AttackComplexity::kLow) {
      ++summary.low_complexity;
    }
    if (record->vector.pr == cvss::PrivilegesRequired::kNone) {
      ++summary.no_privileges;
    }
    if (record->vector.confidentiality == cvss::Impact::kHigh) {
      ++summary.high_confidentiality;
    }
    if (record->cwe != 0) {
      ++summary.by_cwe[record->cwe];
    }
  }
  summary.mean_score = score_sum / static_cast<double>(summary.total);
  return summary;
}

std::vector<std::string> Database::AppsWithConvergingHistory(double min_years) const {
  std::vector<std::string> selected;
  for (const auto& app : Apps()) {
    const auto records = ForApp(app);
    if (records.empty()) {
      continue;
    }
    const double years = static_cast<double>(records.back()->published -
                                             records.front()->published) /
                         kDaysPerYear;
    if (years >= min_years) {
      selected.push_back(app);
    }
  }
  return selected;
}

std::vector<const CveRecord*> Database::InDateRange(DayStamp from, DayStamp to) const {
  std::vector<const CveRecord*> out;
  for (const auto& record : records_) {
    if (record.published >= from && record.published < to) {
      out.push_back(&record);
    }
  }
  std::sort(out.begin(), out.end(), [](const CveRecord* a, const CveRecord* b) {
    if (a->published != b->published) {
      return a->published < b->published;
    }
    return a->id < b->id;
  });
  return out;
}

std::string Database::Serialize() const {
  // Deterministic order: by app, then date, then id.
  std::string out;
  for (const auto& app : Apps()) {
    for (const CveRecord* record : ForApp(app)) {
      out += support::Format("%s|%s|%d|%d|%s\n", record->id.c_str(), record->app.c_str(),
                             record->published, record->cwe,
                             cvss::ToVectorString(record->vector).c_str());
    }
  }
  return out;
}

support::Result<Database> Database::Deserialize(std::string_view text) {
  Database db;
  int line_no = 0;
  for (const auto& line : support::Split(text, '\n')) {
    ++line_no;
    if (support::Trim(line).empty()) {
      continue;
    }
    const auto fields = support::Split(line, '|');
    if (fields.size() != 5) {
      return Error(Error::Code::kParseError,
                   support::Format("line %d: expected 5 fields, got %zu", line_no,
                                   fields.size()));
    }
    CveRecord record;
    record.id = fields[0];
    record.app = fields[1];
    const auto published = support::ParseInt(fields[2]);
    const auto cwe = support::ParseInt(fields[3]);
    if (!published || !cwe) {
      return Error(Error::Code::kParseError,
                   support::Format("line %d: bad numeric field", line_no));
    }
    record.published = static_cast<DayStamp>(*published);
    record.cwe = static_cast<int>(*cwe);
    auto vector = cvss::ParseVectorString(fields[4]);
    if (!vector.ok()) {
      return Error(Error::Code::kParseError,
                   support::Format("line %d: %s", line_no,
                                   vector.error().message().c_str()));
    }
    record.vector = vector.value();
    db.Add(std::move(record));
  }
  return db;
}

}  // namespace cvedb
