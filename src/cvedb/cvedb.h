// An in-memory CVE (Common Vulnerabilities and Exposures) database — the
// paper's §5.1 testbed substrate. Holds per-application vulnerability
// histories with CVSS vectors and CWE classifications, supports the
// "converging history" application-selection policy (≥ 5 years of reports),
// and aggregates per-app label summaries for the training hypotheses.
#ifndef SRC_CVEDB_CVEDB_H_
#define SRC_CVEDB_CVEDB_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/cvss/cvss.h"
#include "src/support/result.h"

namespace cvedb {

// Days since 1999-01-01 (the CVE program's first year); a plain count keeps
// date arithmetic trivial and deterministic.
using DayStamp = int32_t;
inline constexpr int32_t kDaysPerYear = 365;

struct CveRecord {
  std::string id;          // "CVE-2014-01234".
  std::string app;         // Application identifier.
  DayStamp published = 0;
  cvss::Vector vector;     // CVSS v3.0 metrics.
  int cwe = 0;             // CWE id (0 = unclassified).

  double BaseScore() const { return cvss::BaseScore(vector); }
  int Year() const { return 1999 + published / kDaysPerYear; }
};

// Per-application aggregation used as ML ground truth.
struct AppSummary {
  std::string app;
  int total = 0;
  int critical = 0;           // CVSS >= 9.0.
  int high_or_worse = 0;      // CVSS > 7.0 (the paper's "CVSS > 7" hypothesis).
  int network_vector = 0;     // AV:N.
  int low_complexity = 0;     // AC:L.
  int no_privileges = 0;      // PR:N.
  int high_confidentiality = 0;
  std::map<int, int> by_cwe;
  DayStamp first = 0;
  DayStamp last = 0;
  double max_score = 0.0;
  double mean_score = 0.0;

  double HistoryYears() const {
    return static_cast<double>(last - first) / kDaysPerYear;
  }
  int CountCwe(int cwe) const {
    const auto it = by_cwe.find(cwe);
    return it == by_cwe.end() ? 0 : it->second;
  }
};

class Database {
 public:
  void Add(CveRecord record);

  size_t size() const { return records_.size(); }
  const std::vector<CveRecord>& records() const { return records_; }

  // All records for `app`, ordered by publication date.
  std::vector<const CveRecord*> ForApp(std::string_view app) const;

  // Distinct application names, sorted.
  std::vector<std::string> Apps() const;

  // Aggregates one application (empty summary if unknown).
  AppSummary Summarize(std::string_view app) const;

  // The paper's selection policy: applications whose CVE history spans at
  // least `min_years` (newest minus oldest report).
  std::vector<std::string> AppsWithConvergingHistory(double min_years = 5.0) const;

  // Records in [from, to) by publication day.
  std::vector<const CveRecord*> InDateRange(DayStamp from, DayStamp to) const;

  // --- Serialization (one record per line, pipe-separated) ---
  //   id|app|published|cwe|vector-string
  std::string Serialize() const;
  static support::Result<Database> Deserialize(std::string_view text);

 private:
  std::vector<CveRecord> records_;
  std::multimap<std::string, size_t, std::less<>> by_app_;
};

}  // namespace cvedb

#endif  // SRC_CVEDB_CVEDB_H_
