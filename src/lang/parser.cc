#include "src/lang/parser.h"

#include <utility>

#include "src/lang/lexer.h"
#include "src/support/fault_injection.h"
#include "src/support/strings.h"

namespace lang {
namespace {

using support::Error;

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  support::Result<TranslationUnit> Run() {
    TranslationUnit unit;
    while (!Check(TokenKind::kEof)) {
      if (!ParseTopLevel(unit)) {
        return Error(Error::Code::kParseError, error_);
      }
    }
    return unit;
  }

 private:
  // --- Token cursor ---------------------------------------------------------

  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  const Token& Advance() {
    const Token& tok = Peek();
    if (pos_ + 1 < tokens_.size()) {
      ++pos_;
    }
    return tok;
  }

  bool Check(TokenKind kind) const { return Peek().kind == kind; }

  bool Match(TokenKind kind) {
    if (Check(kind)) {
      Advance();
      return true;
    }
    return false;
  }

  bool Expect(TokenKind kind, const char* context) {
    if (Match(kind)) {
      return true;
    }
    Fail(support::Format("expected '%s' %s, got '%s'", TokenKindName(kind), context,
                         TokenKindName(Peek().kind)));
    return false;
  }

  bool Fail(const std::string& message) {
    if (error_.empty()) {
      error_ = support::Format("line %d: %s", Peek().line, message.c_str());
    }
    return false;
  }

  // --- Declarations ---------------------------------------------------------

  static bool IsTypeKeyword(TokenKind kind) {
    return kind == TokenKind::kKwInt || kind == TokenKind::kKwChar ||
           kind == TokenKind::kKwBool || kind == TokenKind::kKwVoid;
  }

  bool ParseBaseType(BaseType& out) {
    switch (Peek().kind) {
      case TokenKind::kKwInt:
        out = BaseType::kInt;
        break;
      case TokenKind::kKwChar:
        out = BaseType::kChar;
        break;
      case TokenKind::kKwBool:
        out = BaseType::kBool;
        break;
      case TokenKind::kKwVoid:
        out = BaseType::kVoid;
        break;
      default:
        return Fail("expected a type name");
    }
    Advance();
    return true;
  }

  bool ParseTopLevel(TranslationUnit& unit) {
    BaseType base;
    if (!ParseBaseType(base)) {
      return false;
    }
    if (!Check(TokenKind::kIdentifier)) {
      return Fail("expected an identifier after type");
    }
    const Token name_tok = Advance();
    if (Check(TokenKind::kLParen)) {
      return ParseFunctionRest(unit, base, name_tok);
    }
    return ParseGlobalRest(unit, base, name_tok);
  }

  bool ParseGlobalRest(TranslationUnit& unit, BaseType base, const Token& name_tok) {
    GlobalDecl global;
    global.name = name_tok.text;
    global.type.base = base;
    global.line = name_tok.line;
    if (Match(TokenKind::kLBracket)) {
      if (!Check(TokenKind::kIntLiteral)) {
        return Fail("expected array size");
      }
      global.type.is_array = true;
      global.type.array_size = Advance().int_value;
      if (!Expect(TokenKind::kRBracket, "after array size")) {
        return false;
      }
    }
    if (Match(TokenKind::kAssign)) {
      bool negative = Match(TokenKind::kMinus);
      if (!Check(TokenKind::kIntLiteral) && !Check(TokenKind::kCharLiteral) &&
          !Check(TokenKind::kKwTrue) && !Check(TokenKind::kKwFalse)) {
        return Fail("global initializers must be constant literals");
      }
      global.init_value = Advance().int_value;
      if (negative) {
        global.init_value = -global.init_value;
      }
    }
    if (!Expect(TokenKind::kSemicolon, "after global declaration")) {
      return false;
    }
    unit.globals.push_back(std::move(global));
    return true;
  }

  bool ParseFunctionRest(TranslationUnit& unit, BaseType base, const Token& name_tok) {
    FunctionDecl fn;
    fn.name = name_tok.text;
    fn.return_type.base = base;
    fn.line = name_tok.line;
    Advance();  // '('
    if (!Check(TokenKind::kRParen)) {
      do {
        ParamDecl param;
        if (!ParseBaseType(param.type.base)) {
          return false;
        }
        if (!Check(TokenKind::kIdentifier)) {
          return Fail("expected parameter name");
        }
        param.name = Advance().text;
        if (Match(TokenKind::kLBracket)) {
          if (!Check(TokenKind::kIntLiteral)) {
            return Fail("expected array size in parameter");
          }
          param.type.is_array = true;
          param.type.array_size = Advance().int_value;
          if (!Expect(TokenKind::kRBracket, "after array size")) {
            return false;
          }
        }
        fn.params.push_back(std::move(param));
      } while (Match(TokenKind::kComma));
    }
    if (!Expect(TokenKind::kRParen, "after parameter list")) {
      return false;
    }
    if (!Expect(TokenKind::kLBrace, "to open function body")) {
      return false;
    }
    if (!ParseStmtListUntilBrace(fn.body)) {
      return false;
    }
    fn.end_line = Peek().line;
    if (!Expect(TokenKind::kRBrace, "to close function body")) {
      return false;
    }
    unit.functions.push_back(std::move(fn));
    return true;
  }

  // --- Statements -----------------------------------------------------------

  bool ParseStmtListUntilBrace(std::vector<std::unique_ptr<Stmt>>& out) {
    while (!Check(TokenKind::kRBrace) && !Check(TokenKind::kEof)) {
      auto stmt = ParseStmt();
      if (!stmt) {
        return false;
      }
      out.push_back(std::move(stmt));
    }
    return true;
  }

  std::unique_ptr<Stmt> ParseStmt() {
    const int line = Peek().line;
    if (Check(TokenKind::kLBrace)) {
      return ParseBlock();
    }
    if (Check(TokenKind::kKwIf)) {
      return ParseIf();
    }
    if (Check(TokenKind::kKwWhile)) {
      return ParseWhile();
    }
    if (Check(TokenKind::kKwFor)) {
      return ParseFor();
    }
    if (Check(TokenKind::kKwSwitch)) {
      return ParseSwitch();
    }
    if (Match(TokenKind::kKwReturn)) {
      auto stmt = NewStmt(StmtKind::kReturn, line);
      if (!Check(TokenKind::kSemicolon)) {
        stmt->expr = ParseExpr();
        if (!stmt->expr) {
          return nullptr;
        }
      }
      if (!Expect(TokenKind::kSemicolon, "after return")) {
        return nullptr;
      }
      return stmt;
    }
    if (Match(TokenKind::kKwBreak)) {
      auto stmt = NewStmt(StmtKind::kBreak, line);
      if (!Expect(TokenKind::kSemicolon, "after break")) {
        return nullptr;
      }
      return stmt;
    }
    if (Match(TokenKind::kKwContinue)) {
      auto stmt = NewStmt(StmtKind::kContinue, line);
      if (!Expect(TokenKind::kSemicolon, "after continue")) {
        return nullptr;
      }
      return stmt;
    }
    if (IsTypeKeyword(Peek().kind)) {
      auto stmt = ParseVarDecl();
      if (!stmt || !Expect(TokenKind::kSemicolon, "after declaration")) {
        return nullptr;
      }
      return stmt;
    }
    auto stmt = NewStmt(StmtKind::kExpr, line);
    stmt->expr = ParseExpr();
    if (!stmt->expr || !Expect(TokenKind::kSemicolon, "after expression")) {
      return nullptr;
    }
    return stmt;
  }

  std::unique_ptr<Stmt> ParseBlock() {
    auto stmt = NewStmt(StmtKind::kBlock, Peek().line);
    Advance();  // '{'
    if (!ParseStmtListUntilBrace(stmt->block)) {
      return nullptr;
    }
    if (!Expect(TokenKind::kRBrace, "to close block")) {
      return nullptr;
    }
    return stmt;
  }

  std::unique_ptr<Stmt> ParseVarDecl() {
    auto stmt = NewStmt(StmtKind::kVarDecl, Peek().line);
    if (!ParseBaseType(stmt->decl_type.base)) {
      return nullptr;
    }
    if (!Check(TokenKind::kIdentifier)) {
      Fail("expected variable name");
      return nullptr;
    }
    stmt->decl_name = Advance().text;
    if (Match(TokenKind::kLBracket)) {
      if (!Check(TokenKind::kIntLiteral)) {
        Fail("expected array size");
        return nullptr;
      }
      stmt->decl_type.is_array = true;
      stmt->decl_type.array_size = Advance().int_value;
      if (!Expect(TokenKind::kRBracket, "after array size")) {
        return nullptr;
      }
    }
    if (Match(TokenKind::kAssign)) {
      stmt->decl_init = ParseExpr();
      if (!stmt->decl_init) {
        return nullptr;
      }
    }
    return stmt;
  }

  std::unique_ptr<Stmt> ParseIf() {
    auto stmt = NewStmt(StmtKind::kIf, Peek().line);
    Advance();  // 'if'
    if (!Expect(TokenKind::kLParen, "after if")) {
      return nullptr;
    }
    stmt->expr = ParseExpr();
    if (!stmt->expr || !Expect(TokenKind::kRParen, "after condition")) {
      return nullptr;
    }
    auto then_stmt = ParseStmt();
    if (!then_stmt) {
      return nullptr;
    }
    stmt->then_body.push_back(std::move(then_stmt));
    if (Match(TokenKind::kKwElse)) {
      auto else_stmt = ParseStmt();
      if (!else_stmt) {
        return nullptr;
      }
      stmt->else_body.push_back(std::move(else_stmt));
    }
    return stmt;
  }

  std::unique_ptr<Stmt> ParseWhile() {
    auto stmt = NewStmt(StmtKind::kWhile, Peek().line);
    Advance();  // 'while'
    if (!Expect(TokenKind::kLParen, "after while")) {
      return nullptr;
    }
    stmt->expr = ParseExpr();
    if (!stmt->expr || !Expect(TokenKind::kRParen, "after condition")) {
      return nullptr;
    }
    auto body = ParseStmt();
    if (!body) {
      return nullptr;
    }
    stmt->then_body.push_back(std::move(body));
    return stmt;
  }

  std::unique_ptr<Stmt> ParseFor() {
    auto stmt = NewStmt(StmtKind::kFor, Peek().line);
    Advance();  // 'for'
    if (!Expect(TokenKind::kLParen, "after for")) {
      return nullptr;
    }
    if (!Check(TokenKind::kSemicolon)) {
      if (IsTypeKeyword(Peek().kind)) {
        stmt->init_stmt = ParseVarDecl();
      } else {
        auto init = NewStmt(StmtKind::kExpr, Peek().line);
        init->expr = ParseExpr();
        if (!init->expr) {
          return nullptr;
        }
        stmt->init_stmt = std::move(init);
      }
      if (!stmt->init_stmt) {
        return nullptr;
      }
    }
    if (!Expect(TokenKind::kSemicolon, "after for-init")) {
      return nullptr;
    }
    if (!Check(TokenKind::kSemicolon)) {
      stmt->expr = ParseExpr();
      if (!stmt->expr) {
        return nullptr;
      }
    }
    if (!Expect(TokenKind::kSemicolon, "after for-condition")) {
      return nullptr;
    }
    if (!Check(TokenKind::kRParen)) {
      stmt->step_expr = ParseExpr();
      if (!stmt->step_expr) {
        return nullptr;
      }
    }
    if (!Expect(TokenKind::kRParen, "after for-step")) {
      return nullptr;
    }
    auto body = ParseStmt();
    if (!body) {
      return nullptr;
    }
    stmt->then_body.push_back(std::move(body));
    return stmt;
  }

  std::unique_ptr<Stmt> ParseSwitch() {
    auto stmt = NewStmt(StmtKind::kSwitch, Peek().line);
    Advance();  // 'switch'
    if (!Expect(TokenKind::kLParen, "after switch")) {
      return nullptr;
    }
    stmt->expr = ParseExpr();
    if (!stmt->expr || !Expect(TokenKind::kRParen, "after scrutinee") ||
        !Expect(TokenKind::kLBrace, "to open switch body")) {
      return nullptr;
    }
    while (!Check(TokenKind::kRBrace) && !Check(TokenKind::kEof)) {
      SwitchCase sc;
      if (Match(TokenKind::kKwCase)) {
        bool negative = Match(TokenKind::kMinus);
        if (!Check(TokenKind::kIntLiteral) && !Check(TokenKind::kCharLiteral)) {
          Fail("expected constant after case");
          return nullptr;
        }
        sc.value = Advance().int_value;
        if (negative) {
          sc.value = -sc.value;
        }
      } else if (Match(TokenKind::kKwDefault)) {
        sc.is_default = true;
      } else {
        Fail("expected case or default");
        return nullptr;
      }
      if (!Expect(TokenKind::kColon, "after case label")) {
        return nullptr;
      }
      while (!Check(TokenKind::kKwCase) && !Check(TokenKind::kKwDefault) &&
             !Check(TokenKind::kRBrace) && !Check(TokenKind::kEof)) {
        auto body_stmt = ParseStmt();
        if (!body_stmt) {
          return nullptr;
        }
        sc.body.push_back(std::move(body_stmt));
      }
      stmt->cases.push_back(std::move(sc));
    }
    if (!Expect(TokenKind::kRBrace, "to close switch body")) {
      return nullptr;
    }
    return stmt;
  }

  // --- Expressions ----------------------------------------------------------

  std::unique_ptr<Expr> ParseExpr() { return ParseAssignment(); }

  std::unique_ptr<Expr> ParseAssignment() {
    auto lhs = ParseConditional();
    if (!lhs) {
      return nullptr;
    }
    AssignOp op;
    if (Check(TokenKind::kAssign)) {
      op = AssignOp::kPlain;
    } else if (Check(TokenKind::kPlusAssign)) {
      op = AssignOp::kAdd;
    } else if (Check(TokenKind::kMinusAssign)) {
      op = AssignOp::kSub;
    } else {
      return lhs;
    }
    if (lhs->kind != ExprKind::kVarRef && lhs->kind != ExprKind::kIndex) {
      Fail("assignment target must be a variable or array element");
      return nullptr;
    }
    const int line = Peek().line;
    Advance();
    auto rhs = ParseAssignment();
    if (!rhs) {
      return nullptr;
    }
    auto expr = NewExpr(ExprKind::kAssign, line);
    expr->assign_op = op;
    expr->children.push_back(std::move(lhs));
    expr->children.push_back(std::move(rhs));
    return expr;
  }

  std::unique_ptr<Expr> ParseConditional() {
    auto cond = ParseBinary(0);
    if (!cond) {
      return nullptr;
    }
    if (!Check(TokenKind::kQuestion)) {
      return cond;
    }
    const int line = Advance().line;
    auto then_expr = ParseExpr();
    if (!then_expr || !Expect(TokenKind::kColon, "in conditional expression")) {
      return nullptr;
    }
    auto else_expr = ParseConditional();
    if (!else_expr) {
      return nullptr;
    }
    auto expr = NewExpr(ExprKind::kConditional, line);
    expr->children.push_back(std::move(cond));
    expr->children.push_back(std::move(then_expr));
    expr->children.push_back(std::move(else_expr));
    return expr;
  }

  struct BinOpInfo {
    BinaryOp op;
    int precedence;
  };

  static bool BinaryOpFor(TokenKind kind, BinOpInfo& info) {
    switch (kind) {
      case TokenKind::kPipePipe:
        info = {BinaryOp::kOr, 1};
        return true;
      case TokenKind::kAmpAmp:
        info = {BinaryOp::kAnd, 2};
        return true;
      case TokenKind::kPipe:
        info = {BinaryOp::kBitOr, 3};
        return true;
      case TokenKind::kCaret:
        info = {BinaryOp::kBitXor, 4};
        return true;
      case TokenKind::kAmp:
        info = {BinaryOp::kBitAnd, 5};
        return true;
      case TokenKind::kEq:
        info = {BinaryOp::kEq, 6};
        return true;
      case TokenKind::kNe:
        info = {BinaryOp::kNe, 6};
        return true;
      case TokenKind::kLt:
        info = {BinaryOp::kLt, 7};
        return true;
      case TokenKind::kLe:
        info = {BinaryOp::kLe, 7};
        return true;
      case TokenKind::kGt:
        info = {BinaryOp::kGt, 7};
        return true;
      case TokenKind::kGe:
        info = {BinaryOp::kGe, 7};
        return true;
      case TokenKind::kShl:
        info = {BinaryOp::kShl, 8};
        return true;
      case TokenKind::kShr:
        info = {BinaryOp::kShr, 8};
        return true;
      case TokenKind::kPlus:
        info = {BinaryOp::kAdd, 9};
        return true;
      case TokenKind::kMinus:
        info = {BinaryOp::kSub, 9};
        return true;
      case TokenKind::kStar:
        info = {BinaryOp::kMul, 10};
        return true;
      case TokenKind::kSlash:
        info = {BinaryOp::kDiv, 10};
        return true;
      case TokenKind::kPercent:
        info = {BinaryOp::kRem, 10};
        return true;
      default:
        return false;
    }
  }

  std::unique_ptr<Expr> ParseBinary(int min_precedence) {
    auto lhs = ParseUnary();
    if (!lhs) {
      return nullptr;
    }
    for (;;) {
      BinOpInfo info;
      if (!BinaryOpFor(Peek().kind, info) || info.precedence < min_precedence) {
        return lhs;
      }
      const int line = Advance().line;
      auto rhs = ParseBinary(info.precedence + 1);
      if (!rhs) {
        return nullptr;
      }
      auto expr = NewExpr(ExprKind::kBinary, line);
      expr->binary_op = info.op;
      expr->children.push_back(std::move(lhs));
      expr->children.push_back(std::move(rhs));
      lhs = std::move(expr);
    }
  }

  std::unique_ptr<Expr> ParseUnary() {
    const int line = Peek().line;
    UnaryOp op;
    if (Match(TokenKind::kMinus)) {
      op = UnaryOp::kNeg;
    } else if (Match(TokenKind::kBang)) {
      op = UnaryOp::kNot;
    } else if (Match(TokenKind::kTilde)) {
      op = UnaryOp::kBitNot;
    } else if (Match(TokenKind::kPlusPlus)) {
      op = UnaryOp::kPreInc;
    } else if (Match(TokenKind::kMinusMinus)) {
      op = UnaryOp::kPreDec;
    } else {
      return ParsePostfix();
    }
    auto operand = ParseUnary();
    if (!operand) {
      return nullptr;
    }
    if ((op == UnaryOp::kPreInc || op == UnaryOp::kPreDec) &&
        operand->kind != ExprKind::kVarRef && operand->kind != ExprKind::kIndex) {
      Fail("++/-- requires a variable or array element");
      return nullptr;
    }
    auto expr = NewExpr(ExprKind::kUnary, line);
    expr->unary_op = op;
    expr->children.push_back(std::move(operand));
    return expr;
  }

  std::unique_ptr<Expr> ParsePostfix() {
    auto base = ParsePrimary();
    if (!base) {
      return nullptr;
    }
    while (Check(TokenKind::kLBracket)) {
      const int line = Advance().line;
      auto index = ParseExpr();
      if (!index || !Expect(TokenKind::kRBracket, "after index")) {
        return nullptr;
      }
      if (base->kind != ExprKind::kVarRef) {
        Fail("only named arrays can be indexed");
        return nullptr;
      }
      auto expr = NewExpr(ExprKind::kIndex, line);
      expr->name = base->name;
      expr->children.push_back(std::move(base));
      expr->children.push_back(std::move(index));
      base = std::move(expr);
    }
    return base;
  }

  std::unique_ptr<Expr> ParsePrimary() {
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokenKind::kIntLiteral: {
        auto expr = NewExpr(ExprKind::kIntLiteral, tok.line);
        expr->int_value = Advance().int_value;
        return expr;
      }
      case TokenKind::kCharLiteral: {
        auto expr = NewExpr(ExprKind::kCharLiteral, tok.line);
        expr->int_value = Advance().int_value;
        return expr;
      }
      case TokenKind::kStringLiteral: {
        auto expr = NewExpr(ExprKind::kStringLiteral, tok.line);
        expr->str_value = Advance().text;
        return expr;
      }
      case TokenKind::kKwTrue:
      case TokenKind::kKwFalse: {
        auto expr = NewExpr(ExprKind::kBoolLiteral, tok.line);
        expr->int_value = tok.kind == TokenKind::kKwTrue ? 1 : 0;
        Advance();
        return expr;
      }
      case TokenKind::kIdentifier: {
        const Token name_tok = Advance();
        if (Check(TokenKind::kLParen)) {
          Advance();
          auto expr = NewExpr(ExprKind::kCall, name_tok.line);
          expr->name = name_tok.text;
          if (!Check(TokenKind::kRParen)) {
            do {
              auto arg = ParseExpr();
              if (!arg) {
                return nullptr;
              }
              expr->children.push_back(std::move(arg));
            } while (Match(TokenKind::kComma));
          }
          if (!Expect(TokenKind::kRParen, "after call arguments")) {
            return nullptr;
          }
          return expr;
        }
        auto expr = NewExpr(ExprKind::kVarRef, name_tok.line);
        expr->name = name_tok.text;
        return expr;
      }
      case TokenKind::kLParen: {
        Advance();
        auto expr = ParseExpr();
        if (!expr || !Expect(TokenKind::kRParen, "to close parenthesised expression")) {
          return nullptr;
        }
        return expr;
      }
      default:
        Fail(support::Format("unexpected token '%s'", TokenKindName(tok.kind)));
        return nullptr;
    }
  }

  static std::unique_ptr<Stmt> NewStmt(StmtKind kind, int line) {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = kind;
    stmt->line = line;
    return stmt;
  }

  static std::unique_ptr<Expr> NewExpr(ExprKind kind, int line) {
    auto expr = std::make_unique<Expr>();
    expr->kind = kind;
    expr->line = line;
    return expr;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

support::Result<TranslationUnit> Parse(std::string_view source) {
  // Robustness injection site: keyed by the source digest, so a configured
  // parse-fault rate hits the same files at any thread count.
  const auto& faults = support::FaultInjector::Global();
  if (faults.ShouldFail(support::FaultSite::kParse, support::FaultKey(source))) {
    return support::Error(support::Error::Code::kInternal,
                          "injected fault: parse");
  }
  auto lexed = Lex(source);
  if (!lexed.ok()) {
    return lexed.error();
  }
  return Parser(std::move(lexed.value().tokens)).Run();
}

}  // namespace lang
