#include "src/lang/token.h"

#include <unordered_map>

namespace lang {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof:
      return "<eof>";
    case TokenKind::kIntLiteral:
      return "int-literal";
    case TokenKind::kCharLiteral:
      return "char-literal";
    case TokenKind::kStringLiteral:
      return "string-literal";
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kKwInt:
      return "int";
    case TokenKind::kKwChar:
      return "char";
    case TokenKind::kKwBool:
      return "bool";
    case TokenKind::kKwVoid:
      return "void";
    case TokenKind::kKwIf:
      return "if";
    case TokenKind::kKwElse:
      return "else";
    case TokenKind::kKwWhile:
      return "while";
    case TokenKind::kKwFor:
      return "for";
    case TokenKind::kKwReturn:
      return "return";
    case TokenKind::kKwBreak:
      return "break";
    case TokenKind::kKwContinue:
      return "continue";
    case TokenKind::kKwSwitch:
      return "switch";
    case TokenKind::kKwCase:
      return "case";
    case TokenKind::kKwDefault:
      return "default";
    case TokenKind::kKwTrue:
      return "true";
    case TokenKind::kKwFalse:
      return "false";
    case TokenKind::kLParen:
      return "(";
    case TokenKind::kRParen:
      return ")";
    case TokenKind::kLBrace:
      return "{";
    case TokenKind::kRBrace:
      return "}";
    case TokenKind::kLBracket:
      return "[";
    case TokenKind::kRBracket:
      return "]";
    case TokenKind::kComma:
      return ",";
    case TokenKind::kSemicolon:
      return ";";
    case TokenKind::kColon:
      return ":";
    case TokenKind::kPlus:
      return "+";
    case TokenKind::kMinus:
      return "-";
    case TokenKind::kStar:
      return "*";
    case TokenKind::kSlash:
      return "/";
    case TokenKind::kPercent:
      return "%";
    case TokenKind::kAssign:
      return "=";
    case TokenKind::kPlusAssign:
      return "+=";
    case TokenKind::kMinusAssign:
      return "-=";
    case TokenKind::kEq:
      return "==";
    case TokenKind::kNe:
      return "!=";
    case TokenKind::kLt:
      return "<";
    case TokenKind::kLe:
      return "<=";
    case TokenKind::kGt:
      return ">";
    case TokenKind::kGe:
      return ">=";
    case TokenKind::kAmpAmp:
      return "&&";
    case TokenKind::kPipePipe:
      return "||";
    case TokenKind::kBang:
      return "!";
    case TokenKind::kAmp:
      return "&";
    case TokenKind::kPipe:
      return "|";
    case TokenKind::kCaret:
      return "^";
    case TokenKind::kTilde:
      return "~";
    case TokenKind::kShl:
      return "<<";
    case TokenKind::kShr:
      return ">>";
    case TokenKind::kQuestion:
      return "?";
    case TokenKind::kPlusPlus:
      return "++";
    case TokenKind::kMinusMinus:
      return "--";
  }
  return "<bad>";
}

bool IsOperatorToken(TokenKind kind) {
  switch (kind) {
    case TokenKind::kPlus:
    case TokenKind::kMinus:
    case TokenKind::kStar:
    case TokenKind::kSlash:
    case TokenKind::kPercent:
    case TokenKind::kAssign:
    case TokenKind::kPlusAssign:
    case TokenKind::kMinusAssign:
    case TokenKind::kEq:
    case TokenKind::kNe:
    case TokenKind::kLt:
    case TokenKind::kLe:
    case TokenKind::kGt:
    case TokenKind::kGe:
    case TokenKind::kAmpAmp:
    case TokenKind::kPipePipe:
    case TokenKind::kBang:
    case TokenKind::kAmp:
    case TokenKind::kPipe:
    case TokenKind::kCaret:
    case TokenKind::kTilde:
    case TokenKind::kShl:
    case TokenKind::kShr:
    case TokenKind::kQuestion:
    case TokenKind::kPlusPlus:
    case TokenKind::kMinusMinus:
    case TokenKind::kLBracket:
      return true;
    default:
      return IsKeywordToken(kind) && kind != TokenKind::kKwTrue && kind != TokenKind::kKwFalse;
  }
}

bool IsOperandToken(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIntLiteral:
    case TokenKind::kCharLiteral:
    case TokenKind::kStringLiteral:
    case TokenKind::kIdentifier:
    case TokenKind::kKwTrue:
    case TokenKind::kKwFalse:
      return true;
    default:
      return false;
  }
}

bool IsKeywordToken(TokenKind kind) {
  switch (kind) {
    case TokenKind::kKwInt:
    case TokenKind::kKwChar:
    case TokenKind::kKwBool:
    case TokenKind::kKwVoid:
    case TokenKind::kKwIf:
    case TokenKind::kKwElse:
    case TokenKind::kKwWhile:
    case TokenKind::kKwFor:
    case TokenKind::kKwReturn:
    case TokenKind::kKwBreak:
    case TokenKind::kKwContinue:
    case TokenKind::kKwSwitch:
    case TokenKind::kKwCase:
    case TokenKind::kKwDefault:
    case TokenKind::kKwTrue:
    case TokenKind::kKwFalse:
      return true;
    default:
      return false;
  }
}

TokenKind ClassifyIdentifier(std::string_view text) {
  static const std::unordered_map<std::string_view, TokenKind> kKeywords = {
      {"int", TokenKind::kKwInt},         {"char", TokenKind::kKwChar},
      {"bool", TokenKind::kKwBool},       {"void", TokenKind::kKwVoid},
      {"if", TokenKind::kKwIf},           {"else", TokenKind::kKwElse},
      {"while", TokenKind::kKwWhile},     {"for", TokenKind::kKwFor},
      {"return", TokenKind::kKwReturn},   {"break", TokenKind::kKwBreak},
      {"continue", TokenKind::kKwContinue}, {"switch", TokenKind::kKwSwitch},
      {"case", TokenKind::kKwCase},       {"default", TokenKind::kKwDefault},
      {"true", TokenKind::kKwTrue},       {"false", TokenKind::kKwFalse},
  };
  const auto it = kKeywords.find(text);
  return it == kKeywords.end() ? TokenKind::kIdentifier : it->second;
}

}  // namespace lang
