#include <map>
#include <utility>

#include "src/lang/ir.h"
#include "src/support/fault_injection.h"
#include "src/support/strings.h"

namespace lang {
namespace {

using support::Error;

// One scope frame's view of a name.
struct Binding {
  enum class Kind { kReg, kLocalArray, kGlobalScalar, kGlobalArray } kind = Kind::kReg;
  RegId reg = kNoReg;
  ArrayId array = -1;
  GlobalId global = -1;
};

class FunctionLowerer {
 public:
  FunctionLowerer(const TranslationUnit& unit, const IrModule& module, const FunctionDecl& decl)
      : unit_(unit), module_(module), decl_(decl) {}

  support::Result<IrFunction> Run() {
    fn_.name = decl_.name;
    fn_.return_type = decl_.return_type;
    NewBlock();  // Entry block 0.

    PushScope();
    for (const auto& param : decl_.params) {
      if (param.type.is_array) {
        const ArrayId id = static_cast<ArrayId>(fn_.arrays.size());
        fn_.arrays.push_back({param.name, param.type.array_size, /*is_param=*/true});
        fn_.param_arrays.push_back(id);
        Binding binding;
        binding.kind = Binding::Kind::kLocalArray;
        binding.array = id;
        if (!Declare(param.name, binding)) {
          return TakeError();
        }
      } else {
        const RegId reg = NewReg(param.name);
        fn_.param_regs.push_back(reg);
        Binding binding;
        binding.kind = Binding::Kind::kReg;
        binding.reg = reg;
        if (!Declare(param.name, binding)) {
          return TakeError();
        }
      }
    }

    for (const auto& stmt : decl_.body) {
      if (!LowerStmt(*stmt)) {
        return TakeError();
      }
    }
    PopScope();

    // Fall off the end: implicit return.
    if (!Sealed()) {
      Terminator term;
      term.kind = TerminatorKind::kReturn;
      term.value = kNoReg;
      if (decl_.return_type.base != BaseType::kVoid) {
        // C-style: falling off a non-void function yields 0 here (defined
        // behaviour keeps the interpreter and symbolic executor aligned).
        const RegId zero = EmitConst(0, decl_.end_line);
        term.value = zero;
      }
      term.line = decl_.end_line;
      Seal(term);
    }
    return std::move(fn_);
  }

 private:
  // --- Error plumbing -------------------------------------------------------

  bool Fail(int line, const std::string& message) {
    if (error_.empty()) {
      error_ = support::Format("%s: line %d: %s", decl_.name.c_str(), line, message.c_str());
    }
    return false;
  }

  Error TakeError() { return Error(Error::Code::kInvalidArgument, error_); }

  // --- Scopes ---------------------------------------------------------------

  void PushScope() { scopes_.emplace_back(); }
  void PopScope() { scopes_.pop_back(); }

  bool Declare(const std::string& name, const Binding& binding) {
    auto& scope = scopes_.back();
    if (scope.contains(name)) {
      return Fail(0, "duplicate declaration of '" + name + "'");
    }
    scope[name] = binding;
    return true;
  }

  const Binding* Lookup(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      const auto found = it->find(name);
      if (found != it->end()) {
        return &found->second;
      }
    }
    // Fall back to module globals.
    for (size_t i = 0; i < module_.globals.size(); ++i) {
      if (module_.globals[i].name == name) {
        global_binding_.kind = module_.globals[i].type.is_array ? Binding::Kind::kGlobalArray
                                                                : Binding::Kind::kGlobalScalar;
        global_binding_.global = static_cast<GlobalId>(i);
        return &global_binding_;
      }
    }
    return nullptr;
  }

  // --- Block / register helpers ---------------------------------------------

  BlockId NewBlock() {
    fn_.blocks.emplace_back();
    fn_.blocks.back().term.kind = TerminatorKind::kReturn;
    fn_.blocks.back().term.value = kNoReg;
    return static_cast<BlockId>(fn_.blocks.size() - 1);
  }

  RegId NewReg(const std::string& name) {
    fn_.reg_names.push_back(name);
    return fn_.reg_count++;
  }

  RegId NewTemp() { return NewReg(support::Format("t%d", fn_.reg_count)); }

  IrBlock& Current() { return fn_.blocks[current_]; }

  bool Sealed() const { return sealed_; }

  void Seal(Terminator term) {
    if (!sealed_) {
      fn_.blocks[current_].term = std::move(term);
      sealed_ = true;
    }
  }

  void SwitchTo(BlockId block) {
    current_ = block;
    sealed_ = false;
  }

  void Emit(IrInstr instr) {
    if (!sealed_) {
      Current().instrs.push_back(std::move(instr));
    }
  }

  RegId EmitConst(int64_t value, int line) {
    IrInstr instr;
    instr.op = IrOpcode::kConst;
    instr.dst = NewTemp();
    instr.imm = value;
    instr.line = line;
    const RegId dst = instr.dst;
    Emit(std::move(instr));
    return dst;
  }

  void EmitJump(BlockId target, int line) {
    Terminator term;
    term.kind = TerminatorKind::kJump;
    term.target_true = target;
    term.line = line;
    Seal(term);
  }

  void EmitBranch(RegId cond, BlockId if_true, BlockId if_false, int line) {
    Terminator term;
    term.kind = TerminatorKind::kBranch;
    term.cond = cond;
    term.target_true = if_true;
    term.target_false = if_false;
    term.line = line;
    Seal(term);
  }

  // --- Statements -----------------------------------------------------------

  bool LowerStmt(const Stmt& stmt) {
    if (sealed_) {
      // Unreachable code (after return/break/...). Still valid MiniC; lower
      // into a fresh dead block so analyses see it.
      SwitchTo(NewBlock());
    }
    switch (stmt.kind) {
      case StmtKind::kExpr: {
        RegId ignored;
        return LowerExpr(*stmt.expr, ignored);
      }
      case StmtKind::kVarDecl:
        return LowerVarDecl(stmt);
      case StmtKind::kIf:
        return LowerIf(stmt);
      case StmtKind::kWhile:
        return LowerWhile(stmt);
      case StmtKind::kFor:
        return LowerFor(stmt);
      case StmtKind::kReturn:
        return LowerReturn(stmt);
      case StmtKind::kBreak:
        if (break_targets_.empty()) {
          return Fail(stmt.line, "break outside loop/switch");
        }
        EmitJump(break_targets_.back(), stmt.line);
        return true;
      case StmtKind::kContinue:
        if (continue_targets_.empty()) {
          return Fail(stmt.line, "continue outside loop");
        }
        EmitJump(continue_targets_.back(), stmt.line);
        return true;
      case StmtKind::kBlock: {
        PushScope();
        for (const auto& child : stmt.block) {
          if (!LowerStmt(*child)) {
            return false;
          }
        }
        PopScope();
        return true;
      }
      case StmtKind::kSwitch:
        return LowerSwitch(stmt);
    }
    return Fail(stmt.line, "unhandled statement kind");
  }

  bool LowerVarDecl(const Stmt& stmt) {
    if (stmt.decl_type.is_array) {
      const ArrayId id = static_cast<ArrayId>(fn_.arrays.size());
      fn_.arrays.push_back({stmt.decl_name, stmt.decl_type.array_size, /*is_param=*/false});
      Binding binding;
      binding.kind = Binding::Kind::kLocalArray;
      binding.array = id;
      return Declare(stmt.decl_name, binding);
    }
    const RegId reg = NewReg(stmt.decl_name);
    Binding binding;
    binding.kind = Binding::Kind::kReg;
    binding.reg = reg;
    if (!Declare(stmt.decl_name, binding)) {
      return false;
    }
    RegId init;
    if (stmt.decl_init) {
      if (!LowerExpr(*stmt.decl_init, init)) {
        return false;
      }
    } else {
      init = EmitConst(0, stmt.line);
    }
    IrInstr copy;
    copy.op = IrOpcode::kCopy;
    copy.dst = reg;
    copy.a = init;
    copy.line = stmt.line;
    Emit(std::move(copy));
    return true;
  }

  bool LowerIf(const Stmt& stmt) {
    RegId cond;
    if (!LowerExpr(*stmt.expr, cond)) {
      return false;
    }
    const BlockId then_block = NewBlock();
    const BlockId join_block = NewBlock();
    const BlockId else_block = stmt.else_body.empty() ? join_block : NewBlock();
    EmitBranch(cond, then_block, else_block, stmt.line);

    SwitchTo(then_block);
    PushScope();
    for (const auto& child : stmt.then_body) {
      if (!LowerStmt(*child)) {
        return false;
      }
    }
    PopScope();
    EmitJump(join_block, stmt.line);

    if (!stmt.else_body.empty()) {
      SwitchTo(else_block);
      PushScope();
      for (const auto& child : stmt.else_body) {
        if (!LowerStmt(*child)) {
          return false;
        }
      }
      PopScope();
      EmitJump(join_block, stmt.line);
    }
    SwitchTo(join_block);
    return true;
  }

  bool LowerWhile(const Stmt& stmt) {
    const BlockId header = NewBlock();
    EmitJump(header, stmt.line);
    SwitchTo(header);
    RegId cond;
    if (!LowerExpr(*stmt.expr, cond)) {
      return false;
    }
    const BlockId body = NewBlock();
    const BlockId exit = NewBlock();
    EmitBranch(cond, body, exit, stmt.line);

    SwitchTo(body);
    break_targets_.push_back(exit);
    continue_targets_.push_back(header);
    PushScope();
    for (const auto& child : stmt.then_body) {
      if (!LowerStmt(*child)) {
        return false;
      }
    }
    PopScope();
    continue_targets_.pop_back();
    break_targets_.pop_back();
    EmitJump(header, stmt.line);

    SwitchTo(exit);
    return true;
  }

  bool LowerFor(const Stmt& stmt) {
    PushScope();
    if (stmt.init_stmt && !LowerStmt(*stmt.init_stmt)) {
      return false;
    }
    const BlockId header = NewBlock();
    EmitJump(header, stmt.line);
    SwitchTo(header);
    RegId cond;
    if (stmt.expr) {
      if (!LowerExpr(*stmt.expr, cond)) {
        return false;
      }
    } else {
      cond = EmitConst(1, stmt.line);
    }
    const BlockId body = NewBlock();
    const BlockId step = NewBlock();
    const BlockId exit = NewBlock();
    EmitBranch(cond, body, exit, stmt.line);

    SwitchTo(body);
    break_targets_.push_back(exit);
    continue_targets_.push_back(step);
    PushScope();
    for (const auto& child : stmt.then_body) {
      if (!LowerStmt(*child)) {
        return false;
      }
    }
    PopScope();
    continue_targets_.pop_back();
    break_targets_.pop_back();
    EmitJump(step, stmt.line);

    SwitchTo(step);
    if (stmt.step_expr) {
      RegId ignored;
      if (!LowerExpr(*stmt.step_expr, ignored)) {
        return false;
      }
    }
    EmitJump(header, stmt.line);

    SwitchTo(exit);
    PopScope();
    return true;
  }

  bool LowerReturn(const Stmt& stmt) {
    Terminator term;
    term.kind = TerminatorKind::kReturn;
    term.line = stmt.line;
    term.value = kNoReg;
    if (stmt.expr) {
      RegId value;
      if (!LowerExpr(*stmt.expr, value)) {
        return false;
      }
      term.value = value;
    }
    Seal(term);
    return true;
  }

  bool LowerSwitch(const Stmt& stmt) {
    RegId scrutinee;
    if (!LowerExpr(*stmt.expr, scrutinee)) {
      return false;
    }
    const BlockId exit = NewBlock();
    // Lower as a compare-and-branch chain; C fallthrough is modelled by each
    // case body jumping to the next case's body block.
    std::vector<BlockId> body_blocks;
    body_blocks.reserve(stmt.cases.size());
    for (size_t i = 0; i < stmt.cases.size(); ++i) {
      body_blocks.push_back(NewBlock());
    }
    BlockId default_body = exit;
    for (size_t i = 0; i < stmt.cases.size(); ++i) {
      if (stmt.cases[i].is_default) {
        default_body = body_blocks[i];
      }
    }
    // Dispatch chain.
    for (size_t i = 0; i < stmt.cases.size(); ++i) {
      if (stmt.cases[i].is_default) {
        continue;
      }
      const RegId case_const = EmitConst(stmt.cases[i].value, stmt.line);
      IrInstr cmp;
      cmp.op = IrOpcode::kBinOp;
      cmp.binary_op = BinaryOp::kEq;
      cmp.dst = NewTemp();
      cmp.a = scrutinee;
      cmp.b = case_const;
      cmp.line = stmt.line;
      const RegId cmp_reg = cmp.dst;
      Emit(std::move(cmp));
      const BlockId next_test = NewBlock();
      EmitBranch(cmp_reg, body_blocks[i], next_test, stmt.line);
      SwitchTo(next_test);
    }
    EmitJump(default_body, stmt.line);

    // Case bodies with fallthrough.
    break_targets_.push_back(exit);
    for (size_t i = 0; i < stmt.cases.size(); ++i) {
      SwitchTo(body_blocks[i]);
      PushScope();
      for (const auto& child : stmt.cases[i].body) {
        if (!LowerStmt(*child)) {
          return false;
        }
      }
      PopScope();
      const BlockId fallthrough = i + 1 < stmt.cases.size() ? body_blocks[i + 1] : exit;
      EmitJump(fallthrough, stmt.line);
    }
    break_targets_.pop_back();
    SwitchTo(exit);
    return true;
  }

  // --- Expressions ----------------------------------------------------------

  bool LowerExpr(const Expr& expr, RegId& out) {
    switch (expr.kind) {
      case ExprKind::kIntLiteral:
      case ExprKind::kBoolLiteral:
      case ExprKind::kCharLiteral:
        out = EmitConst(expr.int_value, expr.line);
        return true;
      case ExprKind::kStringLiteral:
        // Strings only appear as puts() arguments; value is its length.
        out = EmitConst(static_cast<int64_t>(expr.str_value.size()), expr.line);
        return true;
      case ExprKind::kVarRef:
        return LowerVarRead(expr, out);
      case ExprKind::kUnary:
        return LowerUnary(expr, out);
      case ExprKind::kBinary:
        return LowerBinary(expr, out);
      case ExprKind::kAssign:
        return LowerAssign(expr, out);
      case ExprKind::kCall:
        return LowerCall(expr, out);
      case ExprKind::kIndex:
        return LowerIndexRead(expr, out);
      case ExprKind::kConditional:
        return LowerConditional(expr, out);
    }
    return Fail(expr.line, "unhandled expression kind");
  }

  bool LowerVarRead(const Expr& expr, RegId& out) {
    const Binding* binding = Lookup(expr.name);
    if (binding == nullptr) {
      return Fail(expr.line, "use of undeclared variable '" + expr.name + "'");
    }
    switch (binding->kind) {
      case Binding::Kind::kReg:
        out = binding->reg;
        return true;
      case Binding::Kind::kGlobalScalar: {
        IrInstr load;
        load.op = IrOpcode::kLoadGlobal;
        load.dst = NewTemp();
        load.global = binding->global;
        load.line = expr.line;
        out = load.dst;
        Emit(std::move(load));
        return true;
      }
      default:
        return Fail(expr.line, "array '" + expr.name + "' used as a scalar");
    }
  }

  bool LowerUnary(const Expr& expr, RegId& out) {
    const Expr& operand_expr = *expr.children[0];
    if (expr.unary_op == UnaryOp::kPreInc || expr.unary_op == UnaryOp::kPreDec) {
      // ++x  =>  x = x + 1, value is new x.
      Expr synthetic;
      synthetic.kind = ExprKind::kAssign;
      synthetic.line = expr.line;
      synthetic.assign_op = expr.unary_op == UnaryOp::kPreInc ? AssignOp::kAdd : AssignOp::kSub;
      // Build without copying the operand: lower directly.
      RegId current;
      if (!LowerExpr(operand_expr, current)) {
        return false;
      }
      const RegId one = EmitConst(1, expr.line);
      IrInstr add;
      add.op = IrOpcode::kBinOp;
      add.binary_op = expr.unary_op == UnaryOp::kPreInc ? BinaryOp::kAdd : BinaryOp::kSub;
      add.dst = NewTemp();
      add.a = current;
      add.b = one;
      add.line = expr.line;
      const RegId updated = add.dst;
      Emit(std::move(add));
      if (!StoreInto(operand_expr, updated)) {
        return false;
      }
      out = updated;
      return true;
    }
    RegId operand;
    if (!LowerExpr(operand_expr, operand)) {
      return false;
    }
    IrInstr instr;
    instr.op = IrOpcode::kUnOp;
    instr.unary_op = expr.unary_op;
    instr.dst = NewTemp();
    instr.a = operand;
    instr.line = expr.line;
    out = instr.dst;
    Emit(std::move(instr));
    return true;
  }

  bool LowerBinary(const Expr& expr, RegId& out) {
    if (expr.binary_op == BinaryOp::kAnd || expr.binary_op == BinaryOp::kOr) {
      return LowerShortCircuit(expr, out);
    }
    RegId lhs;
    RegId rhs;
    if (!LowerExpr(*expr.children[0], lhs) || !LowerExpr(*expr.children[1], rhs)) {
      return false;
    }
    IrInstr instr;
    instr.op = IrOpcode::kBinOp;
    instr.binary_op = expr.binary_op;
    instr.dst = NewTemp();
    instr.a = lhs;
    instr.b = rhs;
    instr.line = expr.line;
    out = instr.dst;
    Emit(std::move(instr));
    return true;
  }

  bool LowerShortCircuit(const Expr& expr, RegId& out) {
    const bool is_and = expr.binary_op == BinaryOp::kAnd;
    const RegId result = NewTemp();
    RegId lhs;
    if (!LowerExpr(*expr.children[0], lhs)) {
      return false;
    }
    const BlockId rhs_block = NewBlock();
    const BlockId short_block = NewBlock();
    const BlockId join_block = NewBlock();
    if (is_and) {
      EmitBranch(lhs, rhs_block, short_block, expr.line);
    } else {
      EmitBranch(lhs, short_block, rhs_block, expr.line);
    }

    SwitchTo(short_block);
    {
      IrInstr instr;
      instr.op = IrOpcode::kConst;
      instr.dst = result;
      instr.imm = is_and ? 0 : 1;
      instr.line = expr.line;
      Emit(std::move(instr));
    }
    EmitJump(join_block, expr.line);

    SwitchTo(rhs_block);
    RegId rhs;
    if (!LowerExpr(*expr.children[1], rhs)) {
      return false;
    }
    {
      // Normalise to 0/1.
      const RegId zero = EmitConst(0, expr.line);
      IrInstr instr;
      instr.op = IrOpcode::kBinOp;
      instr.binary_op = BinaryOp::kNe;
      instr.dst = result;
      instr.a = rhs;
      instr.b = zero;
      instr.line = expr.line;
      Emit(std::move(instr));
    }
    EmitJump(join_block, expr.line);

    SwitchTo(join_block);
    out = result;
    return true;
  }

  bool LowerAssign(const Expr& expr, RegId& out) {
    const Expr& target = *expr.children[0];
    RegId value;
    if (!LowerExpr(*expr.children[1], value)) {
      return false;
    }
    if (expr.assign_op != AssignOp::kPlain) {
      RegId current;
      if (!LowerExpr(target, current)) {
        return false;
      }
      IrInstr instr;
      instr.op = IrOpcode::kBinOp;
      instr.binary_op = expr.assign_op == AssignOp::kAdd ? BinaryOp::kAdd : BinaryOp::kSub;
      instr.dst = NewTemp();
      instr.a = current;
      instr.b = value;
      instr.line = expr.line;
      value = instr.dst;
      Emit(std::move(instr));
    }
    if (!StoreInto(target, value)) {
      return false;
    }
    out = value;
    return true;
  }

  bool StoreInto(const Expr& target, RegId value) {
    if (target.kind == ExprKind::kVarRef) {
      const Binding* binding = Lookup(target.name);
      if (binding == nullptr) {
        return Fail(target.line, "assignment to undeclared variable '" + target.name + "'");
      }
      switch (binding->kind) {
        case Binding::Kind::kReg: {
          IrInstr copy;
          copy.op = IrOpcode::kCopy;
          copy.dst = binding->reg;
          copy.a = value;
          copy.line = target.line;
          Emit(std::move(copy));
          return true;
        }
        case Binding::Kind::kGlobalScalar: {
          IrInstr store;
          store.op = IrOpcode::kStoreGlobal;
          store.global = binding->global;
          store.a = value;
          store.line = target.line;
          Emit(std::move(store));
          return true;
        }
        default:
          return Fail(target.line, "cannot assign to array '" + target.name + "' as a whole");
      }
    }
    if (target.kind == ExprKind::kIndex) {
      RegId index;
      if (!LowerExpr(*target.children[1], index)) {
        return false;
      }
      const Binding* binding = Lookup(target.name);
      if (binding == nullptr) {
        return Fail(target.line, "use of undeclared array '" + target.name + "'");
      }
      IrInstr store;
      store.op = IrOpcode::kArrayStore;
      store.a = index;
      store.b = value;
      store.line = target.line;
      if (binding->kind == Binding::Kind::kLocalArray) {
        store.array = binding->array;
      } else if (binding->kind == Binding::Kind::kGlobalArray) {
        store.array = -1;
        store.global = binding->global;
      } else {
        return Fail(target.line, "'" + target.name + "' is not an array");
      }
      Emit(std::move(store));
      return true;
    }
    return Fail(target.line, "invalid assignment target");
  }

  bool LowerIndexRead(const Expr& expr, RegId& out) {
    RegId index;
    if (!LowerExpr(*expr.children[1], index)) {
      return false;
    }
    const Binding* binding = Lookup(expr.name);
    if (binding == nullptr) {
      return Fail(expr.line, "use of undeclared array '" + expr.name + "'");
    }
    IrInstr load;
    load.op = IrOpcode::kArrayLoad;
    load.dst = NewTemp();
    load.a = index;
    load.line = expr.line;
    if (binding->kind == Binding::Kind::kLocalArray) {
      load.array = binding->array;
    } else if (binding->kind == Binding::Kind::kGlobalArray) {
      load.array = -1;
      load.global = binding->global;
    } else {
      return Fail(expr.line, "'" + expr.name + "' is not an array");
    }
    out = load.dst;
    Emit(std::move(load));
    return true;
  }

  bool LowerCall(const Expr& expr, RegId& out) {
    // Built-ins first.
    if (expr.name == "input") {
      if (!expr.children.empty()) {
        return Fail(expr.line, "input() takes no arguments");
      }
      IrInstr instr;
      instr.op = IrOpcode::kInput;
      instr.dst = NewTemp();
      instr.line = expr.line;
      out = instr.dst;
      Emit(std::move(instr));
      return true;
    }
    if (expr.name == "print" || expr.name == "puts" || expr.name == "sink") {
      if (expr.children.size() != 1) {
        return Fail(expr.line, expr.name + "() takes exactly one argument");
      }
      RegId arg;
      if (!LowerExpr(*expr.children[0], arg)) {
        return false;
      }
      IrInstr instr;
      instr.op = IrOpcode::kOutput;
      instr.a = arg;
      instr.is_sink = expr.name == "sink";
      instr.line = expr.line;
      Emit(std::move(instr));
      out = EmitConst(0, expr.line);
      return true;
    }
    if (expr.name == "assume") {
      if (expr.children.size() != 1) {
        return Fail(expr.line, "assume() takes exactly one argument");
      }
      RegId arg;
      if (!LowerExpr(*expr.children[0], arg)) {
        return false;
      }
      IrInstr instr;
      instr.op = IrOpcode::kAssume;
      instr.a = arg;
      instr.line = expr.line;
      Emit(std::move(instr));
      out = EmitConst(0, expr.line);
      return true;
    }
    if (expr.name == "abort") {
      if (!expr.children.empty()) {
        return Fail(expr.line, "abort() takes no arguments");
      }
      Terminator term;
      term.kind = TerminatorKind::kAbort;
      term.line = expr.line;
      Seal(term);
      SwitchTo(NewBlock());  // Dead continuation for any trailing code.
      out = EmitConst(0, expr.line);
      return true;
    }

    // User-defined function.
    const FunctionDecl* callee = unit_.FindFunction(expr.name);
    if (callee != nullptr && callee->params.size() != expr.children.size()) {
      return Fail(expr.line, support::Format("call to '%s' with %zu args, expected %zu",
                                             expr.name.c_str(), expr.children.size(),
                                             callee->params.size()));
    }
    IrInstr instr;
    instr.op = IrOpcode::kCall;
    instr.callee = expr.name;
    instr.line = expr.line;
    for (const auto& arg_expr : expr.children) {
      RegId arg;
      if (!LowerExpr(*arg_expr, arg)) {
        return false;
      }
      instr.args.push_back(arg);
    }
    instr.dst = NewTemp();
    out = instr.dst;
    Emit(std::move(instr));
    return true;
  }

  bool LowerConditional(const Expr& expr, RegId& out) {
    const RegId result = NewTemp();
    RegId cond;
    if (!LowerExpr(*expr.children[0], cond)) {
      return false;
    }
    const BlockId then_block = NewBlock();
    const BlockId else_block = NewBlock();
    const BlockId join_block = NewBlock();
    EmitBranch(cond, then_block, else_block, expr.line);

    SwitchTo(then_block);
    RegId then_value;
    if (!LowerExpr(*expr.children[1], then_value)) {
      return false;
    }
    {
      IrInstr copy;
      copy.op = IrOpcode::kCopy;
      copy.dst = result;
      copy.a = then_value;
      copy.line = expr.line;
      Emit(std::move(copy));
    }
    EmitJump(join_block, expr.line);

    SwitchTo(else_block);
    RegId else_value;
    if (!LowerExpr(*expr.children[2], else_value)) {
      return false;
    }
    {
      IrInstr copy;
      copy.op = IrOpcode::kCopy;
      copy.dst = result;
      copy.a = else_value;
      copy.line = expr.line;
      Emit(std::move(copy));
    }
    EmitJump(join_block, expr.line);

    SwitchTo(join_block);
    out = result;
    return true;
  }

  const TranslationUnit& unit_;
  const IrModule& module_;
  const FunctionDecl& decl_;
  IrFunction fn_;
  BlockId current_ = 0;
  bool sealed_ = false;
  std::vector<std::map<std::string, Binding>> scopes_;
  std::vector<BlockId> break_targets_;
  std::vector<BlockId> continue_targets_;
  Binding global_binding_;  // Scratch for Lookup's global fallback.
  std::string error_;
};

}  // namespace

support::Result<IrModule> LowerToIr(const TranslationUnit& unit) {
  // Robustness injection site: keyed by the unit's declaration names (the
  // source text is gone by this point), deterministic per unit.
  const auto& faults = support::FaultInjector::Global();
  if (faults.enabled()) {
    uint64_t key = support::FaultKey("lang.lower");
    for (const auto& global : unit.globals) {
      key = support::FaultKey(global.name, key);
    }
    for (const auto& fn_decl : unit.functions) {
      key = support::FaultKey(fn_decl.name, key);
    }
    if (faults.ShouldFail(support::FaultSite::kLower, key)) {
      return support::Error(support::Error::Code::kInternal,
                            "injected fault: lower");
    }
  }
  IrModule module;
  for (const auto& global : unit.globals) {
    IrGlobal g;
    g.name = global.name;
    g.type = global.type;
    g.init_value = global.init_value;
    g.array_size = global.type.is_array ? global.type.array_size : 0;
    module.globals.push_back(std::move(g));
  }
  for (const auto& fn_decl : unit.functions) {
    auto lowered = FunctionLowerer(unit, module, fn_decl).Run();
    if (!lowered.ok()) {
      return lowered.error();
    }
    module.functions.push_back(std::move(lowered).value());
  }
  return module;
}

}  // namespace lang
