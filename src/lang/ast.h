// Abstract syntax tree for MiniC.
//
// The tree is an owning hierarchy (unique_ptr children). Nodes carry source
// line numbers so metrics and diagnostics can point back at the source.
#ifndef SRC_LANG_AST_H_
#define SRC_LANG_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace lang {

// ---------------------------------------------------------------------------
// Types. MiniC has int, char, bool, void, and fixed-size int/char arrays.
// ---------------------------------------------------------------------------

enum class BaseType : uint8_t { kInt, kChar, kBool, kVoid };

struct TypeRef {
  BaseType base = BaseType::kInt;
  bool is_array = false;
  int64_t array_size = 0;  // Valid when is_array.

  bool operator==(const TypeRef&) const = default;
};

const char* BaseTypeName(BaseType type);
std::string TypeRefName(const TypeRef& type);

// ---------------------------------------------------------------------------
// Expressions.
// ---------------------------------------------------------------------------

enum class ExprKind : uint8_t {
  kIntLiteral,
  kBoolLiteral,
  kCharLiteral,
  kStringLiteral,
  kVarRef,
  kUnary,
  kBinary,
  kAssign,       // target = value / target += value / ...
  kCall,
  kIndex,        // base[index]
  kConditional,  // cond ? then : else
};

enum class UnaryOp : uint8_t { kNeg, kNot, kBitNot, kPreInc, kPreDec };
enum class BinaryOp : uint8_t {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kRem,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,    // Logical &&, short-circuiting.
  kOr,     // Logical ||, short-circuiting.
  kBitAnd,
  kBitOr,
  kBitXor,
  kShl,
  kShr,
};
enum class AssignOp : uint8_t { kPlain, kAdd, kSub };

const char* UnaryOpName(UnaryOp op);
const char* BinaryOpName(BinaryOp op);

struct Expr {
  ExprKind kind = ExprKind::kIntLiteral;
  int line = 0;

  // kIntLiteral / kBoolLiteral / kCharLiteral.
  int64_t int_value = 0;
  // kStringLiteral.
  std::string str_value;
  // kVarRef / kCall (callee name) / kIndex (array name via base).
  std::string name;
  // kUnary / kBinary / kAssign operator selectors.
  UnaryOp unary_op = UnaryOp::kNeg;
  BinaryOp binary_op = BinaryOp::kAdd;
  AssignOp assign_op = AssignOp::kPlain;
  // Children. Meaning depends on kind:
  //   kUnary:        children[0] = operand
  //   kBinary:       children[0] = lhs, children[1] = rhs
  //   kAssign:       children[0] = target (VarRef or Index), children[1] = value
  //   kCall:         children   = arguments
  //   kIndex:        children[0] = base (VarRef), children[1] = index
  //   kConditional:  children[0] = cond, children[1] = then, children[2] = else
  std::vector<std::unique_ptr<Expr>> children;
};

std::unique_ptr<Expr> MakeIntLiteral(int64_t value, int line);

// ---------------------------------------------------------------------------
// Statements.
// ---------------------------------------------------------------------------

enum class StmtKind : uint8_t {
  kExpr,
  kVarDecl,
  kIf,
  kWhile,
  kFor,
  kReturn,
  kBreak,
  kContinue,
  kBlock,
  kSwitch,
};

struct Stmt;

struct SwitchCase {
  bool is_default = false;
  int64_t value = 0;  // Valid when !is_default.
  std::vector<std::unique_ptr<Stmt>> body;
};

struct Stmt {
  StmtKind kind = StmtKind::kExpr;
  int line = 0;

  // kExpr / kReturn (may be null for `return;`).
  std::unique_ptr<Expr> expr;
  // kVarDecl.
  std::string decl_name;
  TypeRef decl_type;
  std::unique_ptr<Expr> decl_init;  // May be null.
  // kIf: cond=expr, then_body, else_body. kWhile: cond=expr, body=then_body.
  // kFor: init_stmt, cond=expr, step_expr, body=then_body.
  std::unique_ptr<Stmt> init_stmt;
  std::unique_ptr<Expr> step_expr;
  std::vector<std::unique_ptr<Stmt>> then_body;
  std::vector<std::unique_ptr<Stmt>> else_body;
  // kBlock.
  std::vector<std::unique_ptr<Stmt>> block;
  // kSwitch: expr = scrutinee.
  std::vector<SwitchCase> cases;
};

// ---------------------------------------------------------------------------
// Declarations.
// ---------------------------------------------------------------------------

struct ParamDecl {
  std::string name;
  TypeRef type;
};

struct FunctionDecl {
  std::string name;
  TypeRef return_type;
  std::vector<ParamDecl> params;
  std::vector<std::unique_ptr<Stmt>> body;
  int line = 0;
  int end_line = 0;  // Line of the closing brace.
};

struct GlobalDecl {
  std::string name;
  TypeRef type;
  int64_t init_value = 0;
  int line = 0;
};

struct TranslationUnit {
  std::vector<GlobalDecl> globals;
  std::vector<FunctionDecl> functions;

  const FunctionDecl* FindFunction(const std::string& name) const;
};

// Names treated as built-in functions by the analyses:
//   input()            -> int   : untrusted external input (taint source).
//   print(int) / puts(str)      : output sinks.
//   sink(int)          -> void  : security-sensitive sink for taint analysis.
//   abort()            -> void  : terminates the path.
//   assume(bool)       -> void  : symbolic-execution path constraint.
bool IsBuiltinFunction(const std::string& name);

}  // namespace lang

#endif  // SRC_LANG_AST_H_
