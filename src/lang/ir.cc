#include "src/lang/ir.h"

#include "src/support/fault_injection.h"
#include "src/support/strings.h"

namespace lang {

std::vector<BlockId> IrFunction::Successors(BlockId block) const {
  const Terminator& term = blocks[block].term;
  switch (term.kind) {
    case TerminatorKind::kJump:
      return {term.target_true};
    case TerminatorKind::kBranch:
      return {term.target_true, term.target_false};
    case TerminatorKind::kReturn:
    case TerminatorKind::kAbort:
      return {};
  }
  return {};
}

const IrFunction* IrModule::FindFunction(const std::string& name) const {
  for (const auto& fn : functions) {
    if (fn.name == name) {
      return &fn;
    }
  }
  return nullptr;
}

uint64_t ModuleFingerprint(const IrModule& module) {
  uint64_t key = support::FaultKey("lang.ir.module");
  for (const auto& global : module.globals) {
    key = support::FaultKey(global.name, key);
  }
  for (const auto& fn : module.functions) {
    key = support::FaultKey(fn.name, key);
    key = support::FaultKeyMix(key, fn.blocks.size());
  }
  return key;
}

namespace {

std::string RegName(const IrFunction& fn, RegId reg) {
  if (reg == kNoReg) {
    return "_";
  }
  if (reg >= 0 && static_cast<size_t>(reg) < fn.reg_names.size()) {
    return support::Format("%%%s", fn.reg_names[reg].c_str());
  }
  return support::Format("%%r%d", reg);
}

std::string DumpInstr(const IrFunction& fn, const IrInstr& instr) {
  switch (instr.op) {
    case IrOpcode::kConst:
      return support::Format("%s = const %lld", RegName(fn, instr.dst).c_str(),
                             static_cast<long long>(instr.imm));
    case IrOpcode::kCopy:
      return support::Format("%s = %s", RegName(fn, instr.dst).c_str(),
                             RegName(fn, instr.a).c_str());
    case IrOpcode::kUnOp:
      return support::Format("%s = %s %s", RegName(fn, instr.dst).c_str(),
                             UnaryOpName(instr.unary_op), RegName(fn, instr.a).c_str());
    case IrOpcode::kBinOp:
      return support::Format("%s = %s %s %s", RegName(fn, instr.dst).c_str(),
                             RegName(fn, instr.a).c_str(), BinaryOpName(instr.binary_op),
                             RegName(fn, instr.b).c_str());
    case IrOpcode::kLoadGlobal:
      return support::Format("%s = load_global #%d", RegName(fn, instr.dst).c_str(),
                             instr.global);
    case IrOpcode::kStoreGlobal:
      return support::Format("store_global #%d, %s", instr.global,
                             RegName(fn, instr.a).c_str());
    case IrOpcode::kArrayLoad:
      if (instr.array >= 0) {
        return support::Format("%s = %s[%s]", RegName(fn, instr.dst).c_str(),
                               fn.arrays[instr.array].name.c_str(),
                               RegName(fn, instr.a).c_str());
      }
      return support::Format("%s = garray#%d[%s]", RegName(fn, instr.dst).c_str(), instr.global,
                             RegName(fn, instr.a).c_str());
    case IrOpcode::kArrayStore:
      if (instr.array >= 0) {
        return support::Format("%s[%s] = %s", fn.arrays[instr.array].name.c_str(),
                               RegName(fn, instr.a).c_str(), RegName(fn, instr.b).c_str());
      }
      return support::Format("garray#%d[%s] = %s", instr.global, RegName(fn, instr.a).c_str(),
                             RegName(fn, instr.b).c_str());
    case IrOpcode::kCall: {
      std::string args;
      for (size_t i = 0; i < instr.args.size(); ++i) {
        if (i > 0) {
          args += ", ";
        }
        args += RegName(fn, instr.args[i]);
      }
      return support::Format("%s = call %s(%s)", RegName(fn, instr.dst).c_str(),
                             instr.callee.c_str(), args.c_str());
    }
    case IrOpcode::kInput:
      return support::Format("%s = input", RegName(fn, instr.dst).c_str());
    case IrOpcode::kOutput:
      return support::Format("%s %s", instr.is_sink ? "sink" : "output",
                             RegName(fn, instr.a).c_str());
    case IrOpcode::kAssume:
      return support::Format("assume %s", RegName(fn, instr.a).c_str());
  }
  return "<bad-instr>";
}

std::string DumpTerminator(const IrFunction& fn, const Terminator& term) {
  switch (term.kind) {
    case TerminatorKind::kJump:
      return support::Format("jump bb%d", term.target_true);
    case TerminatorKind::kBranch:
      return support::Format("branch %s, bb%d, bb%d", RegName(fn, term.cond).c_str(),
                             term.target_true, term.target_false);
    case TerminatorKind::kReturn:
      return term.value == kNoReg ? "return"
                                  : support::Format("return %s", RegName(fn, term.value).c_str());
    case TerminatorKind::kAbort:
      return "abort";
  }
  return "<bad-term>";
}

}  // namespace

std::string DumpFunction(const IrFunction& fn) {
  std::string out = support::Format("func %s (%d regs, %zu arrays)\n", fn.name.c_str(),
                                    fn.reg_count, fn.arrays.size());
  for (size_t b = 0; b < fn.blocks.size(); ++b) {
    out += support::Format("bb%zu:\n", b);
    for (const auto& instr : fn.blocks[b].instrs) {
      out += "  " + DumpInstr(fn, instr) + "\n";
    }
    out += "  " + DumpTerminator(fn, fn.blocks[b].term) + "\n";
  }
  return out;
}

std::string DumpModule(const IrModule& module) {
  std::string out;
  for (const auto& global : module.globals) {
    out += support::Format("global %s %s\n", TypeRefName(global.type).c_str(),
                           global.name.c_str());
  }
  for (const auto& fn : module.functions) {
    out += DumpFunction(fn);
  }
  return out;
}

}  // namespace lang
