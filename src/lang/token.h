// Token definitions for the MiniC language.
//
// MiniC is the in-repo C-like language used as the analysis substrate: the
// synthetic corpus emits MiniC translation units, and the static-analysis,
// dataflow, and symbolic-execution layers all consume the same frontend.
#ifndef SRC_LANG_TOKEN_H_
#define SRC_LANG_TOKEN_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace lang {

enum class TokenKind : uint8_t {
  kEof,
  // Literals and names.
  kIntLiteral,
  kCharLiteral,
  kStringLiteral,
  kIdentifier,
  // Keywords.
  kKwInt,
  kKwChar,
  kKwBool,
  kKwVoid,
  kKwIf,
  kKwElse,
  kKwWhile,
  kKwFor,
  kKwReturn,
  kKwBreak,
  kKwContinue,
  kKwSwitch,
  kKwCase,
  kKwDefault,
  kKwTrue,
  kKwFalse,
  // Punctuation.
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kComma,
  kSemicolon,
  kColon,
  // Operators.
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kAssign,
  kPlusAssign,
  kMinusAssign,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAmpAmp,
  kPipePipe,
  kBang,
  kAmp,
  kPipe,
  kCaret,
  kTilde,
  kShl,
  kShr,
  kQuestion,
  kPlusPlus,
  kMinusMinus,
};

// Returns a stable printable name ("'+='" / "identifier" / ...).
const char* TokenKindName(TokenKind kind);

// True for kinds that Halstead counting treats as operators.
bool IsOperatorToken(TokenKind kind);
// True for kinds Halstead counting treats as operands (literals + names).
bool IsOperandToken(TokenKind kind);
bool IsKeywordToken(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;     // Source spelling (identifier name, literal spelling).
  int64_t int_value = 0;  // Value for kIntLiteral / kCharLiteral.
  int line = 0;         // 1-based.
  int column = 0;       // 1-based.
};

// Maps an identifier spelling to its keyword kind, or kIdentifier.
TokenKind ClassifyIdentifier(std::string_view text);

}  // namespace lang

#endif  // SRC_LANG_TOKEN_H_
