// Concrete interpreter for the MiniC IR.
//
// Used as (a) a test oracle for the lowering pass, (b) the ground truth the
// symbolic executor's path enumeration is validated against, and (c) the
// "dynamic trace" extension sketched in the paper's §5.3.
#ifndef SRC_LANG_INTERP_H_
#define SRC_LANG_INTERP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/lang/ir.h"
#include "src/support/deadline.h"
#include "src/support/result.h"

namespace lang {

enum class ExecOutcome : uint8_t {
  kReturned,        // Normal completion.
  kAborted,         // abort() reached.
  kOutOfBounds,     // Array index outside [0, size).
  kDivisionByZero,  // Integer / or % by zero.
  kAssumeViolated,  // assume(false) — the path is infeasible, not a bug.
  kStepLimit,       // Ran past the configured step budget.
  kError,           // Malformed program (missing function, bad arity).
};

struct ExecTrace {
  ExecOutcome outcome = ExecOutcome::kReturned;
  int64_t return_value = 0;
  std::vector<int64_t> outputs;       // Values passed to print/puts.
  std::vector<int64_t> sink_values;   // Values passed to sink().
  uint64_t steps = 0;                 // Instructions executed.
  uint64_t branches = 0;              // Conditional branches taken.
  uint64_t inputs_consumed = 0;
  // Arithmetic ops whose two's-complement result differs from the
  // mathematical one (add/sub/mul/neg overflow, INT64_MIN / -1). Lets
  // soundness cross-checks against the interval analysis — which models
  // non-wrapping integers — skip traces the analysis does not claim to
  // cover.
  uint64_t wraps = 0;
  int fault_line = 0;                 // Source line for abnormal outcomes.
  std::string error;                  // For kError.
};

// Callback fired when control enters a basic block, with the full register
// file at entry (before the block's first instruction). Used by tests to
// cross-check concrete register values against per-block proven ranges.
class BlockObserver {
 public:
  virtual ~BlockObserver() = default;
  virtual void OnBlockEntry(const IrFunction& fn, BlockId block,
                            const std::vector<int64_t>& regs) = 0;
};

struct InterpOptions {
  uint64_t max_steps = 1u << 20;
  uint64_t max_call_depth = 256;
  // Cooperative watchdog shared across a caller's trials (not owned); ticked
  // once per executed instruction. Expiry halts the run with kStepLimit —
  // the interpreter degrades gracefully rather than throwing, and the stage
  // owner decides whether an expired deadline downgrades the whole stage.
  support::Deadline* deadline = nullptr;
  // Per-block entry hook (not owned). Fires in every function activation,
  // including callees.
  BlockObserver* observer = nullptr;
};

// Runs `entry` with the given scalar arguments. Each input() call consumes the
// next element of `inputs` (0 once exhausted).
ExecTrace Execute(const IrModule& module, const std::string& entry,
                  std::vector<int64_t> args, std::vector<int64_t> inputs,
                  const InterpOptions& options = {});

}  // namespace lang

#endif  // SRC_LANG_INTERP_H_
