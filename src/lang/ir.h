// Three-address IR with an explicit control-flow graph.
//
// The lowering pass (`LowerToIr`) translates a parsed MiniC translation unit
// into this IR. Scalar locals and parameters become virtual registers; arrays
// become indexed storage with a statically known size, which lets the
// dataflow and symbolic-execution layers check bounds. Short-circuit logical
// operators and conditional expressions are lowered into control flow.
#ifndef SRC_LANG_IR_H_
#define SRC_LANG_IR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/lang/ast.h"
#include "src/support/result.h"

namespace lang {

using RegId = int32_t;
using BlockId = int32_t;
using ArrayId = int32_t;
using GlobalId = int32_t;

inline constexpr RegId kNoReg = -1;

enum class IrOpcode : uint8_t {
  kConst,        // dst = imm
  kCopy,         // dst = a
  kUnOp,         // dst = unary_op a
  kBinOp,        // dst = a binary_op b
  kLoadGlobal,   // dst = globals[global]
  kStoreGlobal,  // globals[global] = a
  kArrayLoad,    // dst = arrays[array][a]          (bounds-sensitive)
  kArrayStore,   // arrays[array][a] = b            (bounds-sensitive)
  kCall,         // dst? = call callee(args)
  kInput,        // dst = external untrusted input  (taint source)
  kOutput,       // print/puts/sink of a            (sink when is_sink)
  kAssume,       // constrain path with a != 0
};

struct IrInstr {
  IrOpcode op = IrOpcode::kConst;
  RegId dst = kNoReg;
  RegId a = kNoReg;
  RegId b = kNoReg;
  int64_t imm = 0;
  UnaryOp unary_op = UnaryOp::kNeg;
  BinaryOp binary_op = BinaryOp::kAdd;
  ArrayId array = -1;
  GlobalId global = -1;
  std::string callee;           // kCall.
  std::vector<RegId> args;      // kCall.
  bool is_sink = false;         // kOutput: true for sink() (security-sensitive).
  int line = 0;
};

enum class TerminatorKind : uint8_t {
  kJump,    // goto target_true
  kBranch,  // if (cond) goto target_true else goto target_false
  kReturn,  // return value (kNoReg for void)
  kAbort,   // program terminates abnormally
};

struct Terminator {
  TerminatorKind kind = TerminatorKind::kReturn;
  RegId cond = kNoReg;
  BlockId target_true = -1;
  BlockId target_false = -1;
  RegId value = kNoReg;
  int line = 0;
};

struct IrBlock {
  std::vector<IrInstr> instrs;
  Terminator term;
};

struct IrArray {
  std::string name;
  int64_t size = 0;
  bool is_param = false;  // Parameter arrays have caller-defined (symbolic) contents.
};

struct IrFunction {
  std::string name;
  TypeRef return_type;
  std::vector<RegId> param_regs;       // One per scalar parameter, in order.
  std::vector<ArrayId> param_arrays;   // Array parameters, in order of appearance.
  std::vector<IrBlock> blocks;         // blocks[0] is the entry.
  std::vector<std::string> reg_names;  // Debug names, indexed by RegId.
  std::vector<IrArray> arrays;         // Function-local (incl. parameter) arrays.
  int32_t reg_count = 0;

  // Successor block ids of `block` (0, 1, or 2 entries).
  std::vector<BlockId> Successors(BlockId block) const;
};

struct IrGlobal {
  std::string name;
  TypeRef type;
  int64_t init_value = 0;
  int64_t array_size = 0;  // When type.is_array.
};

struct IrModule {
  std::vector<IrGlobal> globals;
  std::vector<IrFunction> functions;

  const IrFunction* FindFunction(const std::string& name) const;
};

// Cheap deterministic digest of a module's shape (global/function names and
// block counts). Used as the subject key for fault-injection sites inside
// analyses that no longer see the source text.
uint64_t ModuleFingerprint(const IrModule& module);

// Lowers a parsed unit. Performs name resolution; fails on references to
// undeclared variables/functions and call-arity mismatches against
// locally-defined functions.
support::Result<IrModule> LowerToIr(const TranslationUnit& unit);

// Human-readable dump, for tests and debugging.
std::string DumpFunction(const IrFunction& fn);
std::string DumpModule(const IrModule& module);

}  // namespace lang

#endif  // SRC_LANG_IR_H_
