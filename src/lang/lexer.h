// MiniC lexer. Produces a token stream plus line-accounting facts
// (comment/blank/code lines) that the metrics layer reuses.
#ifndef SRC_LANG_LEXER_H_
#define SRC_LANG_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/lang/token.h"
#include "src/support/result.h"

namespace lang {

// Per-file line accounting gathered during a lex pass.
struct LineFacts {
  int total_lines = 0;
  int blank_lines = 0;
  int comment_lines = 0;  // Lines containing only comment text.
  int code_lines = 0;     // Lines with at least one token.
};

struct LexOutput {
  std::vector<Token> tokens;  // Always terminated by a kEof token.
  LineFacts lines;
};

// Tokenizes `source`. Fails on unterminated comments/strings and on
// characters outside the language.
support::Result<LexOutput> Lex(std::string_view source);

}  // namespace lang

#endif  // SRC_LANG_LEXER_H_
