#include "src/lang/ast.h"

namespace lang {

const char* BaseTypeName(BaseType type) {
  switch (type) {
    case BaseType::kInt:
      return "int";
    case BaseType::kChar:
      return "char";
    case BaseType::kBool:
      return "bool";
    case BaseType::kVoid:
      return "void";
  }
  return "<bad>";
}

std::string TypeRefName(const TypeRef& type) {
  std::string out = BaseTypeName(type.base);
  if (type.is_array) {
    out += "[" + std::to_string(type.array_size) + "]";
  }
  return out;
}

const char* UnaryOpName(UnaryOp op) {
  switch (op) {
    case UnaryOp::kNeg:
      return "-";
    case UnaryOp::kNot:
      return "!";
    case UnaryOp::kBitNot:
      return "~";
    case UnaryOp::kPreInc:
      return "++";
    case UnaryOp::kPreDec:
      return "--";
  }
  return "<bad>";
}

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kRem:
      return "%";
    case BinaryOp::kEq:
      return "==";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "&&";
    case BinaryOp::kOr:
      return "||";
    case BinaryOp::kBitAnd:
      return "&";
    case BinaryOp::kBitOr:
      return "|";
    case BinaryOp::kBitXor:
      return "^";
    case BinaryOp::kShl:
      return "<<";
    case BinaryOp::kShr:
      return ">>";
  }
  return "<bad>";
}

std::unique_ptr<Expr> MakeIntLiteral(int64_t value, int line) {
  auto expr = std::make_unique<Expr>();
  expr->kind = ExprKind::kIntLiteral;
  expr->int_value = value;
  expr->line = line;
  return expr;
}

const FunctionDecl* TranslationUnit::FindFunction(const std::string& name) const {
  for (const auto& fn : functions) {
    if (fn.name == name) {
      return &fn;
    }
  }
  return nullptr;
}

bool IsBuiltinFunction(const std::string& name) {
  return name == "input" || name == "print" || name == "puts" || name == "sink" ||
         name == "abort" || name == "assume";
}

}  // namespace lang
