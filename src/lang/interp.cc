#include "src/lang/interp.h"

#include <unordered_map>

#include "src/support/fault_injection.h"
#include "src/support/strings.h"

namespace lang {
namespace {

// Evaluates a binary op with C-like 64-bit semantics. Division by zero is
// reported via `ok`; `wrapped` is set when the two's-complement result
// differs from the mathematical one.
int64_t EvalBinOp(BinaryOp op, int64_t a, int64_t b, bool& ok, bool& wrapped) {
  ok = true;
  wrapped = false;
  int64_t exact;
  switch (op) {
    case BinaryOp::kAdd:
      wrapped = __builtin_add_overflow(a, b, &exact);
      return static_cast<int64_t>(static_cast<uint64_t>(a) + static_cast<uint64_t>(b));
    case BinaryOp::kSub:
      wrapped = __builtin_sub_overflow(a, b, &exact);
      return static_cast<int64_t>(static_cast<uint64_t>(a) - static_cast<uint64_t>(b));
    case BinaryOp::kMul:
      wrapped = __builtin_mul_overflow(a, b, &exact);
      return static_cast<int64_t>(static_cast<uint64_t>(a) * static_cast<uint64_t>(b));
    case BinaryOp::kDiv:
      if (b == 0) {
        ok = false;
        return 0;
      }
      if (a == INT64_MIN && b == -1) {
        wrapped = true;
        return INT64_MIN;  // Wrap, matching two's complement hardware.
      }
      return a / b;
    case BinaryOp::kRem:
      if (b == 0) {
        ok = false;
        return 0;
      }
      if (a == INT64_MIN && b == -1) {
        return 0;
      }
      return a % b;
    case BinaryOp::kEq:
      return a == b ? 1 : 0;
    case BinaryOp::kNe:
      return a != b ? 1 : 0;
    case BinaryOp::kLt:
      return a < b ? 1 : 0;
    case BinaryOp::kLe:
      return a <= b ? 1 : 0;
    case BinaryOp::kGt:
      return a > b ? 1 : 0;
    case BinaryOp::kGe:
      return a >= b ? 1 : 0;
    case BinaryOp::kAnd:
      return (a != 0 && b != 0) ? 1 : 0;
    case BinaryOp::kOr:
      return (a != 0 || b != 0) ? 1 : 0;
    case BinaryOp::kBitAnd:
      return a & b;
    case BinaryOp::kBitOr:
      return a | b;
    case BinaryOp::kBitXor:
      return a ^ b;
    case BinaryOp::kShl:
      return static_cast<int64_t>(static_cast<uint64_t>(a)
                                  << (static_cast<uint64_t>(b) & 63u));
    case BinaryOp::kShr:
      return static_cast<int64_t>(static_cast<uint64_t>(a) >>
                                  (static_cast<uint64_t>(b) & 63u));
  }
  ok = false;
  return 0;
}

int64_t EvalUnOp(UnaryOp op, int64_t a, bool& wrapped) {
  wrapped = false;
  switch (op) {
    case UnaryOp::kNeg:
      wrapped = a == INT64_MIN;
      return static_cast<int64_t>(0 - static_cast<uint64_t>(a));
    case UnaryOp::kNot:
      return a == 0 ? 1 : 0;
    case UnaryOp::kBitNot:
      return ~a;
    case UnaryOp::kPreInc:
    case UnaryOp::kPreDec:
      // Lowered away; unreachable.
      return a;
  }
  return a;
}

class Machine {
 public:
  Machine(const IrModule& module, std::vector<int64_t> inputs, const InterpOptions& options)
      : module_(module), inputs_(std::move(inputs)), options_(options) {
    globals_.reserve(module.globals.size());
    for (const auto& g : module.globals) {
      if (g.type.is_array) {
        global_arrays_.emplace_back(static_cast<size_t>(g.array_size), 0);
        globals_.push_back(0);
      } else {
        global_arrays_.emplace_back();
        globals_.push_back(g.init_value);
      }
    }
  }

  ExecTrace Run(const std::string& entry, std::vector<int64_t> args) {
    const IrFunction* fn = module_.FindFunction(entry);
    if (fn == nullptr) {
      trace_.outcome = ExecOutcome::kError;
      trace_.error = "entry function '" + entry + "' not found";
      return std::move(trace_);
    }
    int64_t result = 0;
    if (CallFunction(*fn, args, 0, result)) {
      trace_.outcome = ExecOutcome::kReturned;
      trace_.return_value = result;
    }
    return std::move(trace_);
  }

 private:
  bool Halt(ExecOutcome outcome, int line) {
    trace_.outcome = outcome;
    trace_.fault_line = line;
    return false;
  }

  // Returns true on normal return; false if execution halted abnormally
  // (outcome already recorded in trace_).
  bool CallFunction(const IrFunction& fn, const std::vector<int64_t>& args, uint64_t depth,
                    int64_t& result) {
    if (depth > options_.max_call_depth) {
      trace_.outcome = ExecOutcome::kStepLimit;
      trace_.error = "call depth limit";
      return false;
    }
    std::vector<int64_t> regs(static_cast<size_t>(fn.reg_count), 0);
    std::vector<std::vector<int64_t>> arrays;
    arrays.reserve(fn.arrays.size());
    for (const auto& arr : fn.arrays) {
      arrays.emplace_back(static_cast<size_t>(arr.size), 0);
    }
    // Bind scalar args positionally; missing args are 0, extras ignored —
    // external (unanalysed) callers are modelled as passing zeros.
    for (size_t i = 0; i < fn.param_regs.size(); ++i) {
      regs[static_cast<size_t>(fn.param_regs[i])] = i < args.size() ? args[i] : 0;
    }

    BlockId block = 0;
    for (;;) {
      if (options_.observer != nullptr) {
        options_.observer->OnBlockEntry(fn, block, regs);
      }
      const IrBlock& bb = fn.blocks[static_cast<size_t>(block)];
      for (const auto& instr : bb.instrs) {
        if (++trace_.steps > options_.max_steps) {
          return Halt(ExecOutcome::kStepLimit, instr.line);
        }
        if (options_.deadline != nullptr && !options_.deadline->Tick()) {
          return Halt(ExecOutcome::kStepLimit, instr.line);
        }
        if (!Step(fn, instr, regs, arrays, depth)) {
          return false;
        }
      }
      const Terminator& term = bb.term;
      switch (term.kind) {
        case TerminatorKind::kJump:
          block = term.target_true;
          break;
        case TerminatorKind::kBranch:
          ++trace_.branches;
          block = regs[static_cast<size_t>(term.cond)] != 0 ? term.target_true
                                                            : term.target_false;
          break;
        case TerminatorKind::kReturn:
          result = term.value == kNoReg ? 0 : regs[static_cast<size_t>(term.value)];
          return true;
        case TerminatorKind::kAbort:
          return Halt(ExecOutcome::kAborted, term.line);
      }
    }
  }

  bool Step(const IrFunction& fn, const IrInstr& instr, std::vector<int64_t>& regs,
            std::vector<std::vector<int64_t>>& arrays, uint64_t depth) {
    auto reg = [&regs](RegId r) { return regs[static_cast<size_t>(r)]; };
    switch (instr.op) {
      case IrOpcode::kConst:
        regs[static_cast<size_t>(instr.dst)] = instr.imm;
        return true;
      case IrOpcode::kCopy:
        regs[static_cast<size_t>(instr.dst)] = reg(instr.a);
        return true;
      case IrOpcode::kUnOp: {
        bool wrapped;
        regs[static_cast<size_t>(instr.dst)] = EvalUnOp(instr.unary_op, reg(instr.a), wrapped);
        trace_.wraps += wrapped ? 1 : 0;
        return true;
      }
      case IrOpcode::kBinOp: {
        bool ok;
        bool wrapped;
        const int64_t value =
            EvalBinOp(instr.binary_op, reg(instr.a), reg(instr.b), ok, wrapped);
        if (!ok) {
          return Halt(ExecOutcome::kDivisionByZero, instr.line);
        }
        trace_.wraps += wrapped ? 1 : 0;
        regs[static_cast<size_t>(instr.dst)] = value;
        return true;
      }
      case IrOpcode::kLoadGlobal:
        regs[static_cast<size_t>(instr.dst)] = globals_[static_cast<size_t>(instr.global)];
        return true;
      case IrOpcode::kStoreGlobal:
        globals_[static_cast<size_t>(instr.global)] = reg(instr.a);
        return true;
      case IrOpcode::kArrayLoad:
      case IrOpcode::kArrayStore: {
        std::vector<int64_t>* storage;
        int64_t size;
        if (instr.array >= 0) {
          storage = &arrays[static_cast<size_t>(instr.array)];
          size = fn.arrays[static_cast<size_t>(instr.array)].size;
        } else {
          storage = &global_arrays_[static_cast<size_t>(instr.global)];
          size = module_.globals[static_cast<size_t>(instr.global)].array_size;
        }
        const int64_t index = reg(instr.a);
        if (index < 0 || index >= size) {
          return Halt(ExecOutcome::kOutOfBounds, instr.line);
        }
        if (instr.op == IrOpcode::kArrayLoad) {
          regs[static_cast<size_t>(instr.dst)] = (*storage)[static_cast<size_t>(index)];
        } else {
          (*storage)[static_cast<size_t>(index)] = reg(instr.b);
        }
        return true;
      }
      case IrOpcode::kCall: {
        const IrFunction* callee = module_.FindFunction(instr.callee);
        if (callee == nullptr) {
          // Unknown external function: modelled as returning 0 with no
          // side effects.
          regs[static_cast<size_t>(instr.dst)] = 0;
          return true;
        }
        std::vector<int64_t> args;
        args.reserve(instr.args.size());
        for (RegId arg : instr.args) {
          args.push_back(reg(arg));
        }
        int64_t result = 0;
        if (!CallFunction(*callee, args, depth + 1, result)) {
          return false;
        }
        regs[static_cast<size_t>(instr.dst)] = result;
        return true;
      }
      case IrOpcode::kInput: {
        const int64_t value =
            trace_.inputs_consumed < inputs_.size() ? inputs_[trace_.inputs_consumed] : 0;
        ++trace_.inputs_consumed;
        regs[static_cast<size_t>(instr.dst)] = value;
        return true;
      }
      case IrOpcode::kOutput:
        if (instr.is_sink) {
          trace_.sink_values.push_back(reg(instr.a));
        } else {
          trace_.outputs.push_back(reg(instr.a));
        }
        return true;
      case IrOpcode::kAssume:
        if (reg(instr.a) == 0) {
          return Halt(ExecOutcome::kAssumeViolated, instr.line);
        }
        return true;
    }
    trace_.error = "bad opcode";
    return Halt(ExecOutcome::kError, instr.line);
  }

  const IrModule& module_;
  std::vector<int64_t> inputs_;
  InterpOptions options_;
  std::vector<int64_t> globals_;
  std::vector<std::vector<int64_t>> global_arrays_;
  ExecTrace trace_;
};

}  // namespace

ExecTrace Execute(const IrModule& module, const std::string& entry, std::vector<int64_t> args,
                  std::vector<int64_t> inputs, const InterpOptions& options) {
  // Robustness injection site: keyed by the module, entry, and concrete
  // inputs, so one trial of one subject fails — deterministically — while
  // sibling trials proceed.
  const auto& faults = support::FaultInjector::Global();
  if (faults.enabled()) {
    uint64_t key = support::FaultKey(entry, ModuleFingerprint(module));
    for (const int64_t arg : args) {
      key = support::FaultKeyMix(key, static_cast<uint64_t>(arg));
    }
    for (const int64_t input : inputs) {
      key = support::FaultKeyMix(key, static_cast<uint64_t>(input));
    }
    faults.MaybeFail(support::FaultSite::kDynamic, key);
  }
  Machine machine(module, std::move(inputs), options);
  return machine.Run(entry, std::move(args));
}

}  // namespace lang
