// Static-dispatch operand walks over IR instructions.
//
// The dataflow analyses, the lint/smell passes, and the interval analyzer all
// need "which registers does this instruction read / write". Centralising the
// opcode switches here keeps the three layers in agreement when opcodes are
// added, and the templated visitor compiles to a direct call per operand —
// no std::function allocation per instruction, which used to dominate the
// block-local scans of hot fixpoint loops.
#ifndef SRC_LANG_IR_WALK_H_
#define SRC_LANG_IR_WALK_H_

#include "src/lang/ir.h"

namespace lang {

// True when the instruction writes a register (its `dst` field).
inline bool WritesDst(const IrInstr& instr) {
  switch (instr.op) {
    case IrOpcode::kConst:
    case IrOpcode::kCopy:
    case IrOpcode::kUnOp:
    case IrOpcode::kBinOp:
    case IrOpcode::kLoadGlobal:
    case IrOpcode::kArrayLoad:
    case IrOpcode::kCall:
    case IrOpcode::kInput:
      return instr.dst != kNoReg;
    default:
      return false;
  }
}

// The register defined by the instruction, or kNoReg.
inline RegId DstOf(const IrInstr& instr) {
  return WritesDst(instr) ? instr.dst : kNoReg;
}

// Calls `fn(reg)` for every register operand the instruction reads.
template <typename Fn>
inline void ForEachUse(const IrInstr& instr, Fn&& fn) {
  switch (instr.op) {
    case IrOpcode::kConst:
    case IrOpcode::kInput:
    case IrOpcode::kLoadGlobal:
      break;
    case IrOpcode::kCopy:
    case IrOpcode::kUnOp:
    case IrOpcode::kStoreGlobal:
    case IrOpcode::kOutput:
    case IrOpcode::kAssume:
    case IrOpcode::kArrayLoad:
      if (instr.a != kNoReg) {
        fn(instr.a);
      }
      break;
    case IrOpcode::kBinOp:
    case IrOpcode::kArrayStore:
      if (instr.a != kNoReg) {
        fn(instr.a);
      }
      if (instr.b != kNoReg) {
        fn(instr.b);
      }
      break;
    case IrOpcode::kCall:
      for (RegId arg : instr.args) {
        fn(arg);
      }
      break;
  }
}

// Block-local upward-exposed-use scan shared by liveness construction in both
// engine and reference modes: `mark_use(r)` fires for every register read
// before any in-block definition (instruction operands first, then the
// terminator's cond/value, which execute after every instruction and so
// respect all in-block defs); `mark_def(r)` fires for every defined register.
template <typename IsDef, typename MarkDef, typename MarkUse>
inline void ForEachUpwardExposed(const IrBlock& block, IsDef&& is_def,
                                 MarkDef&& mark_def, MarkUse&& mark_use) {
  for (const IrInstr& instr : block.instrs) {
    ForEachUse(instr, [&](RegId reg) {
      if (!is_def(reg)) {
        mark_use(reg);
      }
    });
    if (WritesDst(instr)) {
      mark_def(instr.dst);
    }
  }
  if (block.term.cond != kNoReg && !is_def(block.term.cond)) {
    mark_use(block.term.cond);
  }
  if (block.term.value != kNoReg && !is_def(block.term.value)) {
    mark_use(block.term.value);
  }
}

}  // namespace lang

#endif  // SRC_LANG_IR_WALK_H_
