// MiniC recursive-descent parser.
//
// Grammar sketch (EBNF):
//   unit        := (global | function)*
//   global      := type ident ("=" int-literal)? ";"
//   function    := type ident "(" params? ")" block
//   params      := type ident ("," type ident)*
//   type        := ("int" | "char" | "bool" | "void") ("[" int-literal "]")?
//   block       := "{" stmt* "}"
//   stmt        := block | if | while | for | switch | return | break ";"
//                | continue ";" | vardecl ";" | expr ";"
//   if          := "if" "(" expr ")" stmt ("else" stmt)?
//   while       := "while" "(" expr ")" stmt
//   for         := "for" "(" (vardecl | expr)? ";" expr? ";" expr? ")" stmt
//   switch      := "switch" "(" expr ")" "{" case* "}"
//   case        := ("case" int-literal | "default") ":" stmt*
//   expr        := assignment
//   assignment  := conditional (("=" | "+=" | "-=") assignment)?
//   conditional := logical_or ("?" expr ":" conditional)?
//   ... standard C precedence down to unary and postfix (call, index) ...
#ifndef SRC_LANG_PARSER_H_
#define SRC_LANG_PARSER_H_

#include <string_view>

#include "src/lang/ast.h"
#include "src/support/result.h"

namespace lang {

// Lexes and parses a full translation unit.
support::Result<TranslationUnit> Parse(std::string_view source);

}  // namespace lang

#endif  // SRC_LANG_PARSER_H_
