#include "src/lang/lexer.h"

#include <cctype>
#include <set>

#include "src/support/strings.h"

namespace lang {
namespace {

using support::Error;

class LexerImpl {
 public:
  explicit LexerImpl(std::string_view source) : src_(source) {}

  support::Result<LexOutput> Run() {
    while (!AtEnd()) {
      SkipWhitespaceAndComments();
      if (!error_.empty()) {
        return Error(Error::Code::kParseError, error_);
      }
      if (AtEnd()) {
        break;
      }
      const int line = line_;
      const int col = column_;
      Token tok;
      if (!LexOne(tok)) {
        return Error(Error::Code::kParseError,
                     support::Format("line %d:%d: %s", line, col, error_.c_str()));
      }
      tok.line = line;
      tok.column = col;
      code_line_set_.insert(line);
      out_.tokens.push_back(std::move(tok));
    }
    Token eof;
    eof.kind = TokenKind::kEof;
    eof.line = line_;
    eof.column = column_;
    out_.tokens.push_back(std::move(eof));
    FinishLineFacts();
    return std::move(out_);
  }

 private:
  bool AtEnd() const { return pos_ >= src_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  char Advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void SkipWhitespaceAndComments() {
    for (;;) {
      if (AtEnd()) {
        return;
      }
      const char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
        continue;
      }
      if (c == '/' && Peek(1) == '/') {
        comment_line_set_.insert(line_);
        while (!AtEnd() && Peek() != '\n') {
          Advance();
        }
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        const int start_line = line_;
        Advance();
        Advance();
        bool closed = false;
        while (!AtEnd()) {
          comment_line_set_.insert(line_);
          if (Peek() == '*' && Peek(1) == '/') {
            Advance();
            Advance();
            closed = true;
            break;
          }
          Advance();
        }
        if (!closed) {
          error_ = support::Format("line %d: unterminated block comment", start_line);
          return;
        }
        comment_line_set_.insert(start_line);
        continue;
      }
      return;
    }
  }

  bool LexOne(Token& tok) {
    const char c = Peek();
    if (std::isdigit(static_cast<unsigned char>(c))) {
      return LexNumber(tok);
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return LexIdentifier(tok);
    }
    if (c == '\'') {
      return LexCharLiteral(tok);
    }
    if (c == '"') {
      return LexStringLiteral(tok);
    }
    return LexOperator(tok);
  }

  bool LexNumber(Token& tok) {
    std::string text;
    int64_t value = 0;
    if (Peek() == '0' && (Peek(1) == 'x' || Peek(1) == 'X')) {
      text += Advance();
      text += Advance();
      if (!std::isxdigit(static_cast<unsigned char>(Peek()))) {
        error_ = "malformed hex literal";
        return false;
      }
      while (std::isxdigit(static_cast<unsigned char>(Peek()))) {
        const char d = Advance();
        text += d;
        int digit;
        if (d >= '0' && d <= '9') {
          digit = d - '0';
        } else {
          digit = std::tolower(static_cast<unsigned char>(d)) - 'a' + 10;
        }
        value = value * 16 + digit;
      }
    } else {
      while (std::isdigit(static_cast<unsigned char>(Peek()))) {
        const char d = Advance();
        text += d;
        value = value * 10 + (d - '0');
      }
    }
    tok.kind = TokenKind::kIntLiteral;
    tok.text = std::move(text);
    tok.int_value = value;
    return true;
  }

  bool LexIdentifier(Token& tok) {
    std::string text;
    while (std::isalnum(static_cast<unsigned char>(Peek())) || Peek() == '_') {
      text += Advance();
    }
    tok.kind = ClassifyIdentifier(text);
    if (tok.kind == TokenKind::kKwTrue) {
      tok.int_value = 1;
    }
    tok.text = std::move(text);
    return true;
  }

  bool LexCharLiteral(Token& tok) {
    Advance();  // Opening quote.
    if (AtEnd()) {
      error_ = "unterminated character literal";
      return false;
    }
    char value = Advance();
    if (value == '\\') {
      if (AtEnd()) {
        error_ = "unterminated escape";
        return false;
      }
      value = Unescape(Advance());
    }
    if (AtEnd() || Peek() != '\'') {
      error_ = "unterminated character literal";
      return false;
    }
    Advance();  // Closing quote.
    tok.kind = TokenKind::kCharLiteral;
    tok.text = std::string(1, value);
    tok.int_value = static_cast<unsigned char>(value);
    return true;
  }

  bool LexStringLiteral(Token& tok) {
    Advance();  // Opening quote.
    std::string text;
    while (!AtEnd() && Peek() != '"') {
      char c = Advance();
      if (c == '\n') {
        error_ = "newline in string literal";
        return false;
      }
      if (c == '\\') {
        if (AtEnd()) {
          error_ = "unterminated escape";
          return false;
        }
        c = Unescape(Advance());
      }
      text += c;
    }
    if (AtEnd()) {
      error_ = "unterminated string literal";
      return false;
    }
    Advance();  // Closing quote.
    tok.kind = TokenKind::kStringLiteral;
    tok.text = std::move(text);
    return true;
  }

  static char Unescape(char c) {
    switch (c) {
      case 'n':
        return '\n';
      case 't':
        return '\t';
      case 'r':
        return '\r';
      case '0':
        return '\0';
      default:
        return c;
    }
  }

  bool LexOperator(Token& tok) {
    struct OpEntry {
      const char* spelling;
      TokenKind kind;
    };
    // Longest-match first.
    static const OpEntry kOps[] = {
        {"<<", TokenKind::kShl},        {">>", TokenKind::kShr},
        {"<=", TokenKind::kLe},         {">=", TokenKind::kGe},
        {"==", TokenKind::kEq},         {"!=", TokenKind::kNe},
        {"&&", TokenKind::kAmpAmp},     {"||", TokenKind::kPipePipe},
        {"+=", TokenKind::kPlusAssign}, {"-=", TokenKind::kMinusAssign},
        {"++", TokenKind::kPlusPlus},   {"--", TokenKind::kMinusMinus},
        {"(", TokenKind::kLParen},      {")", TokenKind::kRParen},
        {"{", TokenKind::kLBrace},      {"}", TokenKind::kRBrace},
        {"[", TokenKind::kLBracket},    {"]", TokenKind::kRBracket},
        {",", TokenKind::kComma},       {";", TokenKind::kSemicolon},
        {":", TokenKind::kColon},       {"+", TokenKind::kPlus},
        {"-", TokenKind::kMinus},       {"*", TokenKind::kStar},
        {"/", TokenKind::kSlash},       {"%", TokenKind::kPercent},
        {"=", TokenKind::kAssign},      {"<", TokenKind::kLt},
        {">", TokenKind::kGt},          {"!", TokenKind::kBang},
        {"&", TokenKind::kAmp},         {"|", TokenKind::kPipe},
        {"^", TokenKind::kCaret},       {"~", TokenKind::kTilde},
        {"?", TokenKind::kQuestion},
    };
    for (const auto& op : kOps) {
      const std::string_view spelling(op.spelling);
      if (src_.substr(pos_).substr(0, spelling.size()) == spelling) {
        for (size_t i = 0; i < spelling.size(); ++i) {
          Advance();
        }
        tok.kind = op.kind;
        tok.text = std::string(spelling);
        return true;
      }
    }
    error_ = support::Format("unexpected character '%c'", Peek());
    return false;
  }

  void FinishLineFacts() {
    // A line is counted when newline-terminated, plus a final unterminated
    // line if the file does not end in '\n' (cloc semantics).
    int total = 0;
    for (char c : src_) {
      if (c == '\n') {
        ++total;
      }
    }
    if (!src_.empty() && src_.back() != '\n') {
      ++total;
    }
    out_.lines.total_lines = total;
    out_.lines.code_lines = static_cast<int>(code_line_set_.size());
    int comment_only = 0;
    for (int line : comment_line_set_) {
      if (!code_line_set_.contains(line)) {
        ++comment_only;
      }
    }
    out_.lines.comment_lines = comment_only;
    out_.lines.blank_lines =
        total - static_cast<int>(code_line_set_.size()) - comment_only;
    if (out_.lines.blank_lines < 0) {
      out_.lines.blank_lines = 0;
    }
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  LexOutput out_;
  std::set<int> code_line_set_;
  std::set<int> comment_line_set_;
  std::string error_;
};

}  // namespace

support::Result<LexOutput> Lex(std::string_view source) { return LexerImpl(source).Run(); }

}  // namespace lang
