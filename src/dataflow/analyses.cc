#include "src/dataflow/analyses.h"

#include <algorithm>
#include <optional>

#include "src/lang/ir_walk.h"
#include "src/support/fault_injection.h"

namespace dataflow {
namespace {

// Classic dense set union, kept for the reference oracle.
void SetUnion(std::vector<bool>& dst, const std::vector<bool>& src) {
  for (size_t i = 0; i < dst.size(); ++i) {
    if (src[i]) {
      dst[i] = true;
    }
  }
}

// Builds a CfgView on demand when the caller did not share one.
const CfgView& ViewOrLocal(const lang::IrFunction& fn, const CfgView* cfg,
                           std::optional<CfgView>& local) {
  if (cfg != nullptr) {
    return *cfg;
  }
  return local.emplace(fn);
}

}  // namespace

// --- Reaching definitions ----------------------------------------------------

ReachingDefinitions::ReachingDefinitions(const lang::IrFunction& fn,
                                         const CfgView* cfg, DataflowMode mode)
    : fn_(fn) {
  // Collect all definition sites in (block, instruction) order.
  for (size_t b = 0; b < fn.blocks.size(); ++b) {
    const auto& block = fn.blocks[b];
    for (size_t i = 0; i < block.instrs.size(); ++i) {
      if (lang::WritesDst(block.instrs[i])) {
        defs_.push_back({static_cast<lang::BlockId>(b), static_cast<int>(i),
                         block.instrs[i].dst});
      }
    }
  }
  in_ = support::BitMatrix(fn.blocks.size(), defs_.size());
  std::optional<CfgView> local;
  const CfgView& view = ViewOrLocal(fn, cfg, local);
  if (mode == DataflowMode::kEngine) {
    BuildEngine(view);
  } else {
    BuildReference(view);
  }
}

void ReachingDefinitions::BuildEngine(const CfgView& cfg) {
  const size_t num_blocks = fn_.blocks.size();
  const size_t num_defs = defs_.size();
  support::BitMatrix gen(num_blocks, num_defs);
  support::BitMatrix kill(num_blocks, num_defs);
  // Def-site buckets per register. Bucket entries inherit the global
  // (block, instruction) collection order, so each block's defs form one
  // contiguous run; gen/kill construction is O(defs + sum of bucket^2 per
  // register) instead of O(defs^2) over all pairs.
  std::vector<std::vector<uint32_t>> by_reg(static_cast<size_t>(fn_.reg_count));
  for (uint32_t d = 0; d < num_defs; ++d) {
    by_reg[static_cast<size_t>(defs_[d].reg)].push_back(d);
  }
  for (const auto& bucket : by_reg) {
    size_t i = 0;
    while (i < bucket.size()) {
      const lang::BlockId block = defs_[bucket[i]].block;
      size_t j = i;
      while (j < bucket.size() && defs_[bucket[j]].block == block) {
        ++j;
      }
      // The last def of the run generates; every same-register def outside
      // this block is killed here.
      gen.Row(static_cast<size_t>(block)).Set(bucket[j - 1]);
      auto kill_row = kill.Row(static_cast<size_t>(block));
      for (size_t k = 0; k < i; ++k) {
        kill_row.Set(bucket[k]);
      }
      for (size_t k = j; k < bucket.size(); ++k) {
        kill_row.Set(bucket[k]);
      }
      i = j;
    }
  }
  support::BitMatrix out(num_blocks, num_defs);
  support::BitSet new_in(num_defs);
  FixpointEngine engine(cfg, FixpointEngine::Direction::kForward);
  engine.Run([&](lang::BlockId b) {
    const auto bu = static_cast<size_t>(b);
    auto in_scratch = new_in.Span();
    in_scratch.ClearAll();
    for (const lang::BlockId p : cfg.preds[bu]) {
      in_scratch.UnionWith(out.Row(static_cast<size_t>(p)));
    }
    in_.Row(bu).AssignFrom(in_scratch);
    return out.Row(bu).AssignTransfer(in_scratch, kill.Row(bu), gen.Row(bu));
  });
}

void ReachingDefinitions::BuildReference(const CfgView& cfg) {
  const size_t num_defs = defs_.size();
  const size_t num_blocks = fn_.blocks.size();
  std::vector<std::vector<bool>> gen(num_blocks, std::vector<bool>(num_defs, false));
  std::vector<std::vector<bool>> kill(num_blocks, std::vector<bool>(num_defs, false));
  // Defs of the same register kill each other; the last def in a block
  // generates.
  for (size_t d = 0; d < num_defs; ++d) {
    const auto& site = defs_[d];
    // Is d the last def of its reg in its block?
    bool is_last = true;
    for (size_t e = 0; e < num_defs; ++e) {
      if (e != d && defs_[e].block == site.block && defs_[e].reg == site.reg &&
          defs_[e].instr_index > site.instr_index) {
        is_last = false;
        break;
      }
    }
    if (is_last) {
      gen[static_cast<size_t>(site.block)][d] = true;
    }
    for (size_t e = 0; e < num_defs; ++e) {
      if (defs_[e].reg == site.reg && defs_[e].block != site.block) {
        kill[static_cast<size_t>(site.block)][e] = true;
      }
    }
  }
  std::vector<std::vector<bool>> in(num_blocks, std::vector<bool>(num_defs, false));
  std::vector<std::vector<bool>> out(num_blocks, std::vector<bool>(num_defs, false));
  bool changed = true;
  while (changed) {
    changed = false;
    for (lang::BlockId b : cfg.rpo) {
      const auto bu = static_cast<size_t>(b);
      std::vector<bool> new_in(num_defs, false);
      for (lang::BlockId p : cfg.preds[bu]) {
        SetUnion(new_in, out[static_cast<size_t>(p)]);
      }
      std::vector<bool> new_out = new_in;
      for (size_t d = 0; d < num_defs; ++d) {
        if (kill[bu][d]) {
          new_out[d] = false;
        }
        if (gen[bu][d]) {
          new_out[d] = true;
        }
      }
      if (new_in != in[bu] || new_out != out[bu]) {
        in[bu] = std::move(new_in);
        out[bu] = std::move(new_out);
        changed = true;
      }
    }
  }
  for (size_t b = 0; b < num_blocks; ++b) {
    auto row = in_.Row(b);
    for (size_t d = 0; d < num_defs; ++d) {
      if (in[b][d]) {
        row.Set(d);
      }
    }
  }
}

int ReachingDefinitions::CountReaching(lang::BlockId block, lang::RegId reg) const {
  int count = 0;
  in_.Row(static_cast<size_t>(block)).ForEach([&](size_t d) {
    if (defs_[d].reg == reg) {
      ++count;
    }
  });
  return count;
}

double ReachingDefinitions::MeanReachingPerUse() const {
  long long total = 0;
  long long uses = 0;
  // Per-register running count, seeded from the block's in-set and updated
  // as the block's own definitions execute.
  std::vector<int> reaching(static_cast<size_t>(fn_.reg_count), 0);
  for (size_t b = 0; b < fn_.blocks.size(); ++b) {
    std::fill(reaching.begin(), reaching.end(), 0);
    in_.Row(b).ForEach(
        [&](size_t d) { ++reaching[static_cast<size_t>(defs_[d].reg)]; });
    for (const auto& instr : fn_.blocks[b].instrs) {
      lang::ForEachUse(instr, [&](lang::RegId reg) {
        total += reaching[static_cast<size_t>(reg)];
        ++uses;
      });
      if (lang::WritesDst(instr)) {
        reaching[static_cast<size_t>(instr.dst)] = 1;  // Strong update.
      }
    }
  }
  return uses == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(uses);
}

// --- Liveness ----------------------------------------------------------------

Liveness::Liveness(const lang::IrFunction& fn, const CfgView* cfg, DataflowMode mode) {
  live_in_ = support::BitMatrix(fn.blocks.size(), static_cast<size_t>(fn.reg_count));
  std::optional<CfgView> local;
  const CfgView& view = ViewOrLocal(fn, cfg, local);
  if (mode == DataflowMode::kEngine) {
    BuildEngine(fn, view);
  } else {
    BuildReference(fn, view);
  }
}

void Liveness::BuildEngine(const lang::IrFunction& fn, const CfgView& cfg) {
  const size_t num_blocks = fn.blocks.size();
  const size_t num_regs = static_cast<size_t>(fn.reg_count);
  support::BitMatrix use(num_blocks, num_regs);
  support::BitMatrix def(num_blocks, num_regs);
  for (size_t b = 0; b < num_blocks; ++b) {
    auto def_row = def.Row(b);
    auto use_row = use.Row(b);
    lang::ForEachUpwardExposed(
        fn.blocks[b],
        [&](lang::RegId r) { return def_row.Test(static_cast<size_t>(r)); },
        [&](lang::RegId r) { def_row.Set(static_cast<size_t>(r)); },
        [&](lang::RegId r) { use_row.Set(static_cast<size_t>(r)); });
  }
  support::BitSet new_out(num_regs);
  // Unreachable blocks carry live-in facts too (the reference sweeps the
  // whole block range), so the worklist covers them as well.
  FixpointEngine engine(cfg, FixpointEngine::Direction::kBackward,
                        /*include_unreachable=*/true);
  engine.Run([&](lang::BlockId b) {
    const auto bu = static_cast<size_t>(b);
    auto out_scratch = new_out.Span();
    out_scratch.ClearAll();
    for (const lang::BlockId succ : cfg.succs[bu]) {
      out_scratch.UnionWith(live_in_.Row(static_cast<size_t>(succ)));
    }
    // live_in = use ∪ (live_out \ def).
    return live_in_.Row(bu).AssignTransfer(out_scratch, def.Row(bu), use.Row(bu));
  });
}

void Liveness::BuildReference(const lang::IrFunction& fn, const CfgView& cfg) {
  const size_t num_blocks = fn.blocks.size();
  const size_t num_regs = static_cast<size_t>(fn.reg_count);
  std::vector<std::vector<bool>> use(num_blocks, std::vector<bool>(num_regs, false));
  std::vector<std::vector<bool>> def(num_blocks, std::vector<bool>(num_regs, false));
  for (size_t b = 0; b < num_blocks; ++b) {
    lang::ForEachUpwardExposed(
        fn.blocks[b],
        [&](lang::RegId r) -> bool { return def[b][static_cast<size_t>(r)]; },
        [&](lang::RegId r) { def[b][static_cast<size_t>(r)] = true; },
        [&](lang::RegId r) { use[b][static_cast<size_t>(r)] = true; });
  }
  std::vector<std::vector<bool>> live_in(num_blocks, std::vector<bool>(num_regs, false));
  std::vector<std::vector<bool>> live_out(num_blocks, std::vector<bool>(num_regs, false));
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t b = num_blocks; b-- > 0;) {
      std::vector<bool> new_out(num_regs, false);
      for (lang::BlockId succ : cfg.succs[b]) {
        SetUnion(new_out, live_in[static_cast<size_t>(succ)]);
      }
      std::vector<bool> new_in = use[b];
      for (size_t r = 0; r < num_regs; ++r) {
        if (new_out[r] && !def[b][r]) {
          new_in[r] = true;
        }
      }
      if (new_in != live_in[b] || new_out != live_out[b]) {
        live_in[b] = std::move(new_in);
        live_out[b] = std::move(new_out);
        changed = true;
      }
    }
  }
  for (size_t b = 0; b < num_blocks; ++b) {
    auto row = live_in_.Row(b);
    for (size_t r = 0; r < num_regs; ++r) {
      if (live_in[b][r]) {
        row.Set(r);
      }
    }
  }
}

int Liveness::MaxLiveAtEntry() const {
  int best = 0;
  for (size_t b = 0; b < live_in_.rows(); ++b) {
    best = std::max(best, static_cast<int>(live_in_.Row(b).Count()));
  }
  return best;
}

// --- Dominators --------------------------------------------------------------

Dominators::Dominators(const lang::IrFunction& fn, const CfgView* cfg,
                       DataflowMode mode) {
  idom_.assign(fn.blocks.size(), -1);
  if (fn.blocks.empty()) {
    return;
  }
  std::optional<CfgView> local;
  const CfgView& view = ViewOrLocal(fn, cfg, local);
  idom_[0] = 0;
  if (mode == DataflowMode::kEngine) {
    BuildEngine(view);
  } else {
    BuildReference(view);
  }
}

void Dominators::BuildEngine(const CfgView& cfg) {
  const auto& rpo_index = cfg.rpo_index;
  auto intersect = [&](lang::BlockId a, lang::BlockId b) {
    while (a != b) {
      while (rpo_index[static_cast<size_t>(a)] > rpo_index[static_cast<size_t>(b)]) {
        a = idom_[static_cast<size_t>(a)];
      }
      while (rpo_index[static_cast<size_t>(b)] > rpo_index[static_cast<size_t>(a)]) {
        b = idom_[static_cast<size_t>(b)];
      }
    }
    return a;
  };
  auto transfer = [&](lang::BlockId b) {
    if (b == 0) {
      return false;
    }
    lang::BlockId new_idom = -1;
    for (lang::BlockId p : cfg.preds[static_cast<size_t>(b)]) {
      if (idom_[static_cast<size_t>(p)] == -1) {
        continue;  // Unprocessed or unreachable predecessor.
      }
      new_idom = new_idom == -1 ? p : intersect(p, new_idom);
    }
    if (new_idom != -1 && idom_[static_cast<size_t>(b)] != new_idom) {
      idom_[static_cast<size_t>(b)] = new_idom;
      return true;
    }
    return false;
  };
  FixpointEngine engine(cfg, FixpointEngine::Direction::kForward);
  engine.Run(transfer);
  // Unlike the pure set problems, the idom-chain encoding means a block's
  // update reads chain ancestors that are not its CFG predecessors, so the
  // worklist's change propagation alone is not a proof of convergence.
  // Confirm with full sweeps until stable — almost always a single no-change
  // pass, and each sweep is the reference algorithm's own termination check,
  // so both modes end at the same (unique) dominator tree.
  bool changed = true;
  while (changed) {
    changed = false;
    for (lang::BlockId b : cfg.rpo) {
      changed |= transfer(b);
    }
  }
}

void Dominators::BuildReference(const CfgView& cfg) {
  const auto& rpo_index = cfg.rpo_index;
  auto intersect = [&](lang::BlockId a, lang::BlockId b) {
    while (a != b) {
      while (rpo_index[static_cast<size_t>(a)] > rpo_index[static_cast<size_t>(b)]) {
        a = idom_[static_cast<size_t>(a)];
      }
      while (rpo_index[static_cast<size_t>(b)] > rpo_index[static_cast<size_t>(a)]) {
        b = idom_[static_cast<size_t>(b)];
      }
    }
    return a;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (lang::BlockId b : cfg.rpo) {
      if (b == 0) {
        continue;
      }
      lang::BlockId new_idom = -1;
      for (lang::BlockId p : cfg.preds[static_cast<size_t>(b)]) {
        if (idom_[static_cast<size_t>(p)] == -1) {
          continue;  // Unprocessed or unreachable predecessor.
        }
        new_idom = new_idom == -1 ? p : intersect(p, new_idom);
      }
      if (new_idom != -1 && idom_[static_cast<size_t>(b)] != new_idom) {
        idom_[static_cast<size_t>(b)] = new_idom;
        changed = true;
      }
    }
  }
}

bool Dominators::DominatesInTree(const std::vector<lang::BlockId>& idom,
                                 lang::BlockId a, lang::BlockId b) {
  if (b < 0 || static_cast<size_t>(b) >= idom.size() ||
      idom[static_cast<size_t>(b)] == -1) {
    return false;  // Unreachable.
  }
  lang::BlockId current = b;
  // A well-formed idom chain reaches the self-rooted entry in at most
  // idom.size() hops; anything longer is a malformed cycle and walks off as
  // "does not dominate" instead of spinning forever.
  for (size_t steps = 0; steps <= idom.size(); ++steps) {
    if (current == a) {
      return true;
    }
    const lang::BlockId next = idom[static_cast<size_t>(current)];
    if (next == current) {
      return false;  // Reached the entry without meeting `a`.
    }
    if (next < 0 || static_cast<size_t>(next) >= idom.size()) {
      return false;  // Malformed chain.
    }
    current = next;
  }
  return false;  // Cycle guard tripped.
}

int Dominators::TreeDepth() const {
  int best = 0;
  const size_t limit = idom_.size();
  for (size_t b = 0; b < idom_.size(); ++b) {
    if (idom_[b] == -1) {
      continue;
    }
    int depth = 0;
    lang::BlockId current = static_cast<lang::BlockId>(b);
    size_t steps = 0;
    while (idom_[static_cast<size_t>(current)] != current && steps++ < limit) {
      current = idom_[static_cast<size_t>(current)];
      ++depth;
    }
    best = std::max(best, depth);
  }
  return best;
}

// --- Taint -------------------------------------------------------------------

namespace {

// Word-packed per-program-point taint state (registers + arrays), shared by
// the engine fixpoint and the final counting pass of both modes.
struct TaintState {
  support::BitSpan regs;
  support::BitSpan arrays;
};

inline bool TaintedReg(const TaintState& state, lang::RegId r) {
  return r != lang::kNoReg && state.regs.Test(static_cast<size_t>(r));
}

inline void SetRegTaint(TaintState& state, lang::RegId r, bool tainted) {
  if (tainted) {
    state.regs.Set(static_cast<size_t>(r));
  } else {
    state.regs.Reset(static_cast<size_t>(r));
  }
}

// Advances the state through one instruction (the taint transfer function).
inline void StepTaint(const lang::IrInstr& instr, TaintState& state) {
  switch (instr.op) {
    case lang::IrOpcode::kInput:
      SetRegTaint(state, instr.dst, true);
      break;
    case lang::IrOpcode::kConst:
      SetRegTaint(state, instr.dst, false);
      break;
    case lang::IrOpcode::kCopy:
    case lang::IrOpcode::kUnOp:
      SetRegTaint(state, instr.dst, TaintedReg(state, instr.a));
      break;
    case lang::IrOpcode::kBinOp:
      SetRegTaint(state, instr.dst,
                  TaintedReg(state, instr.a) || TaintedReg(state, instr.b));
      break;
    case lang::IrOpcode::kArrayLoad:
      SetRegTaint(state, instr.dst,
                  instr.array >= 0 &&
                      state.arrays.Test(static_cast<size_t>(instr.array)));
      break;
    case lang::IrOpcode::kArrayStore:
      if (instr.array >= 0 && TaintedReg(state, instr.b)) {
        state.arrays.Set(static_cast<size_t>(instr.array));
      }
      break;
    case lang::IrOpcode::kCall: {
      // Conservative: result of a call with tainted args is tainted.
      bool any = false;
      for (lang::RegId arg : instr.args) {
        if (TaintedReg(state, arg)) {
          any = true;
        }
      }
      if (instr.dst != lang::kNoReg) {
        SetRegTaint(state, instr.dst, any);
      }
      break;
    }
    default:
      break;
  }
}

// Counting pass over the stable block-entry states; identical for both modes
// because both hand it the same fixpoint in-states.
TaintSummary CountTaint(const lang::IrFunction& fn, const CfgView& cfg,
                        const support::BitMatrix& in_regs,
                        const support::BitMatrix& in_arrays) {
  TaintSummary summary;
  support::BitSet regs_scratch(in_regs.bits());
  support::BitSet arrays_scratch(in_arrays.bits());
  for (lang::BlockId b : cfg.rpo) {
    const auto bu = static_cast<size_t>(b);
    regs_scratch.AssignFrom(in_regs.Row(bu));
    arrays_scratch.AssignFrom(in_arrays.Row(bu));
    TaintState state{regs_scratch.Span(), arrays_scratch.Span()};
    for (const auto& instr : fn.blocks[bu].instrs) {
      bool instr_tainted = false;
      switch (instr.op) {
        case lang::IrOpcode::kInput:
          ++summary.input_sites;
          break;
        case lang::IrOpcode::kArrayLoad:
        case lang::IrOpcode::kArrayStore:
          if (TaintedReg(state, instr.a)) {
            ++summary.tainted_array_indices;
            instr_tainted = true;
          }
          if (instr.op == lang::IrOpcode::kArrayStore && TaintedReg(state, instr.b)) {
            instr_tainted = true;
          }
          break;
        case lang::IrOpcode::kOutput:
          if (instr.is_sink && TaintedReg(state, instr.a)) {
            ++summary.tainted_sinks;
            instr_tainted = true;
          }
          break;
        case lang::IrOpcode::kCall:
          for (lang::RegId arg : instr.args) {
            if (TaintedReg(state, arg)) {
              ++summary.tainted_call_args;
              instr_tainted = true;
            }
          }
          break;
        default:
          if (TaintedReg(state, instr.a) || TaintedReg(state, instr.b)) {
            instr_tainted = true;
          }
          break;
      }
      if (instr_tainted) {
        ++summary.tainted_instructions;
      }
      StepTaint(instr, state);
    }
    const auto& term = fn.blocks[bu].term;
    if (term.kind == lang::TerminatorKind::kBranch && term.cond != lang::kNoReg &&
        state.regs.Test(static_cast<size_t>(term.cond))) {
      ++summary.tainted_branches;
    }
  }
  return summary;
}

void TaintFixpointEngine(const lang::IrFunction& fn, const CfgView& cfg,
                         support::BitMatrix& in_regs, support::BitMatrix& in_arrays) {
  const size_t num_regs = in_regs.bits();
  const size_t num_arrays = in_arrays.bits();
  support::BitMatrix out_regs(fn.blocks.size(), num_regs);
  support::BitMatrix out_arrays(fn.blocks.size(), num_arrays);
  support::BitSet regs_scratch(num_regs);
  support::BitSet arrays_scratch(num_arrays);
  // The reference joins transfer(p, in[p]) over *all* predecessors, and an
  // unreachable predecessor's in-state stays bottom there — so its out-state
  // is the constant transfer-from-empty. Pre-seed those rows once; the
  // worklist then only iterates the reachable region.
  for (size_t u = 0; u < fn.blocks.size(); ++u) {
    if (cfg.Reachable(static_cast<lang::BlockId>(u))) {
      continue;
    }
    auto regs_span = regs_scratch.Span();
    auto arrays_span = arrays_scratch.Span();
    regs_span.ClearAll();
    arrays_span.ClearAll();
    TaintState state{regs_span, arrays_span};
    for (const auto& instr : fn.blocks[u].instrs) {
      StepTaint(instr, state);
    }
    out_regs.Row(u).AssignFrom(regs_span);
    out_arrays.Row(u).AssignFrom(arrays_span);
  }
  FixpointEngine engine(cfg, FixpointEngine::Direction::kForward);
  engine.Run([&](lang::BlockId b) {
    const auto bu = static_cast<size_t>(b);
    auto regs_span = regs_scratch.Span();
    auto arrays_span = arrays_scratch.Span();
    regs_span.ClearAll();
    arrays_span.ClearAll();
    for (const lang::BlockId p : cfg.preds[bu]) {
      regs_span.UnionWith(out_regs.Row(static_cast<size_t>(p)));
      arrays_span.UnionWith(out_arrays.Row(static_cast<size_t>(p)));
    }
    in_regs.Row(bu).AssignFrom(regs_span);
    in_arrays.Row(bu).AssignFrom(arrays_span);
    // Advance the scratch (in) state through the block to produce the out
    // state; dependents re-run only when it changed.
    TaintState state{regs_span, arrays_span};
    for (const auto& instr : fn.blocks[bu].instrs) {
      StepTaint(instr, state);
    }
    bool changed = out_regs.Row(bu).AssignFrom(regs_span);
    changed |= out_arrays.Row(bu).AssignFrom(arrays_span);
    return changed;
  });
}

void TaintFixpointReference(const lang::IrFunction& fn, const CfgView& cfg,
                            support::BitMatrix& in_regs,
                            support::BitMatrix& in_arrays) {
  const size_t num_blocks = fn.blocks.size();
  const size_t num_regs = static_cast<size_t>(fn.reg_count);
  const size_t num_arrays = fn.arrays.size();
  // State per block entry: tainted regs + tainted arrays (array-granular).
  struct State {
    std::vector<bool> regs;
    std::vector<bool> arrays;
    bool operator==(const State&) const = default;
  };
  State empty{std::vector<bool>(num_regs, false), std::vector<bool>(num_arrays, false)};
  std::vector<State> in(num_blocks, empty);

  auto transfer = [&](lang::BlockId b, State state) {
    for (const auto& instr : fn.blocks[static_cast<size_t>(b)].instrs) {
      auto tainted = [&state](lang::RegId r) {
        return r != lang::kNoReg && state.regs[static_cast<size_t>(r)];
      };
      switch (instr.op) {
        case lang::IrOpcode::kInput:
          state.regs[static_cast<size_t>(instr.dst)] = true;
          break;
        case lang::IrOpcode::kConst:
          state.regs[static_cast<size_t>(instr.dst)] = false;
          break;
        case lang::IrOpcode::kCopy:
        case lang::IrOpcode::kUnOp:
          state.regs[static_cast<size_t>(instr.dst)] = tainted(instr.a);
          break;
        case lang::IrOpcode::kBinOp:
          state.regs[static_cast<size_t>(instr.dst)] = tainted(instr.a) || tainted(instr.b);
          break;
        case lang::IrOpcode::kArrayLoad:
          state.regs[static_cast<size_t>(instr.dst)] =
              instr.array >= 0 && state.arrays[static_cast<size_t>(instr.array)];
          break;
        case lang::IrOpcode::kArrayStore:
          if (instr.array >= 0 && tainted(instr.b)) {
            state.arrays[static_cast<size_t>(instr.array)] = true;
          }
          break;
        case lang::IrOpcode::kCall: {
          bool any = false;
          for (lang::RegId arg : instr.args) {
            if (tainted(arg)) {
              any = true;
            }
          }
          if (instr.dst != lang::kNoReg) {
            state.regs[static_cast<size_t>(instr.dst)] = any;
          }
          break;
        }
        default:
          break;
      }
    }
    return state;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (lang::BlockId b : cfg.rpo) {
      State new_in = empty;
      for (lang::BlockId p : cfg.preds[static_cast<size_t>(b)]) {
        const State out_p = transfer(p, in[static_cast<size_t>(p)]);
        for (size_t r = 0; r < num_regs; ++r) {
          if (out_p.regs[r]) {
            new_in.regs[r] = true;
          }
        }
        for (size_t a = 0; a < num_arrays; ++a) {
          if (out_p.arrays[a]) {
            new_in.arrays[a] = true;
          }
        }
      }
      if (!(new_in == in[static_cast<size_t>(b)])) {
        in[static_cast<size_t>(b)] = std::move(new_in);
        changed = true;
      }
    }
  }

  for (size_t b = 0; b < num_blocks; ++b) {
    auto regs_row = in_regs.Row(b);
    auto arrays_row = in_arrays.Row(b);
    for (size_t r = 0; r < num_regs; ++r) {
      if (in[b].regs[r]) {
        regs_row.Set(r);
      }
    }
    for (size_t a = 0; a < num_arrays; ++a) {
      if (in[b].arrays[a]) {
        arrays_row.Set(a);
      }
    }
  }
}

}  // namespace

TaintSummary AnalyzeTaint(const lang::IrFunction& fn, const CfgView* cfg,
                          DataflowMode mode) {
  std::optional<CfgView> local;
  const CfgView& view = ViewOrLocal(fn, cfg, local);
  support::BitMatrix in_regs(fn.blocks.size(), static_cast<size_t>(fn.reg_count));
  support::BitMatrix in_arrays(fn.blocks.size(), fn.arrays.size());
  if (mode == DataflowMode::kEngine) {
    TaintFixpointEngine(fn, view, in_regs, in_arrays);
  } else {
    TaintFixpointReference(fn, view, in_regs, in_arrays);
  }
  return CountTaint(fn, view, in_regs, in_arrays);
}

metrics::FeatureVector DataflowFeatures(const lang::IrModule& module,
                                        support::Deadline* deadline,
                                        DataflowMode mode) {
  support::FaultInjector::Global().MaybeFail(support::FaultSite::kDataflow,
                                             lang::ModuleFingerprint(module));
  metrics::FeatureVector fv;
  double mean_reaching_sum = 0.0;
  int max_live = 0;
  int max_dom_depth = 0;
  TaintSummary total;
  for (const auto& fn : module.functions) {
    if (deadline != nullptr) {
      // Weight by block count: the fixpoint analyses below are linear-ish in
      // blocks per iteration, so the watchdog tracks real work. The tick is
      // deliberately identical in both modes (and at any worklist schedule),
      // so step budgets trip at the same logical point and feature rows stay
      // byte-identical between engine and reference runs.
      deadline->TickOrThrow("dataflow", fn.blocks.size() + 1);
    }
    const CfgView cfg(fn);
    const ReachingDefinitions rd(fn, &cfg, mode);
    mean_reaching_sum += rd.MeanReachingPerUse();
    const Liveness lv(fn, &cfg, mode);
    max_live = std::max(max_live, lv.MaxLiveAtEntry());
    const Dominators dom(fn, &cfg, mode);
    max_dom_depth = std::max(max_dom_depth, dom.TreeDepth());
    const TaintSummary ts = AnalyzeTaint(fn, &cfg, mode);
    total.tainted_instructions += ts.tainted_instructions;
    total.tainted_branches += ts.tainted_branches;
    total.tainted_array_indices += ts.tainted_array_indices;
    total.tainted_sinks += ts.tainted_sinks;
    total.tainted_call_args += ts.tainted_call_args;
    total.input_sites += ts.input_sites;
  }
  const double fn_count =
      module.functions.empty() ? 1.0 : static_cast<double>(module.functions.size());
  fv.Set("dataflow.mean_reaching_defs", mean_reaching_sum / fn_count);
  fv.Set("dataflow.max_live_regs", static_cast<double>(max_live));
  fv.Set("dataflow.max_dom_depth", static_cast<double>(max_dom_depth));
  fv.Set("dataflow.tainted_instructions", static_cast<double>(total.tainted_instructions));
  fv.Set("dataflow.tainted_branches", static_cast<double>(total.tainted_branches));
  fv.Set("dataflow.tainted_array_indices",
         static_cast<double>(total.tainted_array_indices));
  fv.Set("dataflow.tainted_sinks", static_cast<double>(total.tainted_sinks));
  fv.Set("dataflow.tainted_call_args", static_cast<double>(total.tainted_call_args));
  fv.Set("dataflow.input_sites", static_cast<double>(total.input_sites));
  return fv;
}

}  // namespace dataflow
