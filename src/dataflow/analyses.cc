#include "src/dataflow/analyses.h"

#include <algorithm>
#include <functional>

#include "src/support/fault_injection.h"

namespace dataflow {
namespace {

bool WritesDst(const lang::IrInstr& instr) {
  switch (instr.op) {
    case lang::IrOpcode::kConst:
    case lang::IrOpcode::kCopy:
    case lang::IrOpcode::kUnOp:
    case lang::IrOpcode::kBinOp:
    case lang::IrOpcode::kLoadGlobal:
    case lang::IrOpcode::kArrayLoad:
    case lang::IrOpcode::kCall:
    case lang::IrOpcode::kInput:
      return instr.dst != lang::kNoReg;
    default:
      return false;
  }
}

// Register operands read by an instruction.
void ForEachUse(const lang::IrInstr& instr, const std::function<void(lang::RegId)>& fn) {
  switch (instr.op) {
    case lang::IrOpcode::kConst:
    case lang::IrOpcode::kInput:
      break;
    case lang::IrOpcode::kCopy:
    case lang::IrOpcode::kUnOp:
    case lang::IrOpcode::kStoreGlobal:
    case lang::IrOpcode::kOutput:
    case lang::IrOpcode::kAssume:
    case lang::IrOpcode::kArrayLoad:
      if (instr.a != lang::kNoReg) {
        fn(instr.a);
      }
      break;
    case lang::IrOpcode::kBinOp:
    case lang::IrOpcode::kArrayStore:
      if (instr.a != lang::kNoReg) {
        fn(instr.a);
      }
      if (instr.b != lang::kNoReg) {
        fn(instr.b);
      }
      break;
    case lang::IrOpcode::kCall:
      for (lang::RegId arg : instr.args) {
        fn(arg);
      }
      break;
    case lang::IrOpcode::kLoadGlobal:
      break;
  }
}

std::vector<lang::BlockId> ReversePostOrder(const lang::IrFunction& fn) {
  std::vector<bool> seen(fn.blocks.size(), false);
  std::vector<lang::BlockId> post;
  // Iterative DFS with explicit post-order emission.
  std::vector<std::pair<lang::BlockId, size_t>> stack;
  stack.emplace_back(0, 0);
  seen[0] = true;
  while (!stack.empty()) {
    auto& [block, child] = stack.back();
    const auto succs = fn.Successors(block);
    if (child < succs.size()) {
      const lang::BlockId next = succs[child++];
      if (!seen[static_cast<size_t>(next)]) {
        seen[static_cast<size_t>(next)] = true;
        stack.emplace_back(next, 0);
      }
    } else {
      post.push_back(block);
      stack.pop_back();
    }
  }
  std::reverse(post.begin(), post.end());
  return post;
}

std::vector<std::vector<lang::BlockId>> Predecessors(const lang::IrFunction& fn) {
  std::vector<std::vector<lang::BlockId>> preds(fn.blocks.size());
  for (size_t b = 0; b < fn.blocks.size(); ++b) {
    for (lang::BlockId succ : fn.Successors(static_cast<lang::BlockId>(b))) {
      preds[static_cast<size_t>(succ)].push_back(static_cast<lang::BlockId>(b));
    }
  }
  return preds;
}

void SetUnion(std::vector<bool>& dst, const std::vector<bool>& src) {
  for (size_t i = 0; i < dst.size(); ++i) {
    if (src[i]) {
      dst[i] = true;
    }
  }
}

}  // namespace

// --- Reaching definitions ----------------------------------------------------

ReachingDefinitions::ReachingDefinitions(const lang::IrFunction& fn) : fn_(fn) {
  // Collect all definition sites.
  for (size_t b = 0; b < fn.blocks.size(); ++b) {
    const auto& block = fn.blocks[b];
    for (size_t i = 0; i < block.instrs.size(); ++i) {
      if (WritesDst(block.instrs[i])) {
        defs_.push_back({static_cast<lang::BlockId>(b), static_cast<int>(i),
                         block.instrs[i].dst});
      }
    }
  }
  const size_t num_defs = defs_.size();
  const size_t num_blocks = fn.blocks.size();
  std::vector<std::vector<bool>> gen(num_blocks, std::vector<bool>(num_defs, false));
  std::vector<std::vector<bool>> kill(num_blocks, std::vector<bool>(num_defs, false));
  // Defs of the same register kill each other; the last def in a block
  // generates.
  for (size_t d = 0; d < num_defs; ++d) {
    const auto& site = defs_[d];
    // Is d the last def of its reg in its block?
    bool is_last = true;
    for (size_t e = 0; e < num_defs; ++e) {
      if (e != d && defs_[e].block == site.block && defs_[e].reg == site.reg &&
          defs_[e].instr_index > site.instr_index) {
        is_last = false;
        break;
      }
    }
    if (is_last) {
      gen[static_cast<size_t>(site.block)][d] = true;
    }
    for (size_t e = 0; e < num_defs; ++e) {
      if (defs_[e].reg == site.reg && defs_[e].block != site.block) {
        kill[static_cast<size_t>(site.block)][e] = true;
      }
    }
  }
  in_.assign(num_blocks, std::vector<bool>(num_defs, false));
  out_.assign(num_blocks, std::vector<bool>(num_defs, false));
  const auto preds = Predecessors(fn);
  const auto rpo = ReversePostOrder(fn);
  bool changed = true;
  while (changed) {
    changed = false;
    for (lang::BlockId b : rpo) {
      const auto bu = static_cast<size_t>(b);
      std::vector<bool> new_in(num_defs, false);
      for (lang::BlockId p : preds[bu]) {
        SetUnion(new_in, out_[static_cast<size_t>(p)]);
      }
      std::vector<bool> new_out = new_in;
      for (size_t d = 0; d < num_defs; ++d) {
        if (kill[bu][d]) {
          new_out[d] = false;
        }
        if (gen[bu][d]) {
          new_out[d] = true;
        }
      }
      if (new_in != in_[bu] || new_out != out_[bu]) {
        in_[bu] = std::move(new_in);
        out_[bu] = std::move(new_out);
        changed = true;
      }
    }
  }
}

int ReachingDefinitions::CountReaching(lang::BlockId block, lang::RegId reg) const {
  const auto& in = in_[static_cast<size_t>(block)];
  int count = 0;
  for (size_t d = 0; d < defs_.size(); ++d) {
    if (in[d] && defs_[d].reg == reg) {
      ++count;
    }
  }
  return count;
}

double ReachingDefinitions::MeanReachingPerUse() const {
  long long total = 0;
  long long uses = 0;
  for (size_t b = 0; b < fn_.blocks.size(); ++b) {
    // Per-register running count, seeded from the block's in-set and updated
    // as the block's own definitions execute.
    std::vector<int> reaching(static_cast<size_t>(fn_.reg_count), 0);
    const auto& in = in_[b];
    for (size_t d = 0; d < defs_.size(); ++d) {
      if (in[d]) {
        ++reaching[static_cast<size_t>(defs_[d].reg)];
      }
    }
    for (const auto& instr : fn_.blocks[b].instrs) {
      ForEachUse(instr, [&](lang::RegId reg) {
        total += reaching[static_cast<size_t>(reg)];
        ++uses;
      });
      if (WritesDst(instr)) {
        reaching[static_cast<size_t>(instr.dst)] = 1;  // Strong update.
      }
    }
  }
  return uses == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(uses);
}

// --- Liveness ----------------------------------------------------------------

Liveness::Liveness(const lang::IrFunction& fn) {
  const size_t num_blocks = fn.blocks.size();
  const size_t num_regs = static_cast<size_t>(fn.reg_count);
  std::vector<std::vector<bool>> use(num_blocks, std::vector<bool>(num_regs, false));
  std::vector<std::vector<bool>> def(num_blocks, std::vector<bool>(num_regs, false));
  for (size_t b = 0; b < num_blocks; ++b) {
    const auto& block = fn.blocks[b];
    for (const auto& instr : block.instrs) {
      ForEachUse(instr, [&](lang::RegId reg) {
        const auto r = static_cast<size_t>(reg);
        if (!def[b][r]) {
          use[b][r] = true;
        }
      });
      if (WritesDst(instr)) {
        def[b][static_cast<size_t>(instr.dst)] = true;
      }
    }
    const auto& term = block.term;
    if (term.cond != lang::kNoReg && !def[b][static_cast<size_t>(term.cond)]) {
      use[b][static_cast<size_t>(term.cond)] = true;
    }
    if (term.cond != lang::kNoReg && def[b][static_cast<size_t>(term.cond)]) {
      // Already defined in block; terminator use is local.
    }
    if (term.value != lang::kNoReg && !def[b][static_cast<size_t>(term.value)]) {
      use[b][static_cast<size_t>(term.value)] = true;
    }
  }
  live_in_.assign(num_blocks, std::vector<bool>(num_regs, false));
  std::vector<std::vector<bool>> live_out(num_blocks, std::vector<bool>(num_regs, false));
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t b = num_blocks; b-- > 0;) {
      std::vector<bool> new_out(num_regs, false);
      for (lang::BlockId succ : fn.Successors(static_cast<lang::BlockId>(b))) {
        SetUnion(new_out, live_in_[static_cast<size_t>(succ)]);
      }
      std::vector<bool> new_in = use[b];
      for (size_t r = 0; r < num_regs; ++r) {
        if (new_out[r] && !def[b][r]) {
          new_in[r] = true;
        }
      }
      if (new_in != live_in_[b] || new_out != live_out[b]) {
        live_in_[b] = std::move(new_in);
        live_out[b] = std::move(new_out);
        changed = true;
      }
    }
  }
}

bool Liveness::LiveIn(lang::BlockId block, lang::RegId reg) const {
  return live_in_[static_cast<size_t>(block)][static_cast<size_t>(reg)];
}

int Liveness::MaxLiveAtEntry() const {
  int best = 0;
  for (const auto& in : live_in_) {
    int count = 0;
    for (bool live : in) {
      if (live) {
        ++count;
      }
    }
    best = std::max(best, count);
  }
  return best;
}

// --- Dominators --------------------------------------------------------------

Dominators::Dominators(const lang::IrFunction& fn) {
  const size_t num_blocks = fn.blocks.size();
  idom_.assign(num_blocks, -1);
  const auto rpo = ReversePostOrder(fn);
  std::vector<int> rpo_index(num_blocks, -1);
  for (size_t i = 0; i < rpo.size(); ++i) {
    rpo_index[static_cast<size_t>(rpo[i])] = static_cast<int>(i);
  }
  const auto preds = Predecessors(fn);
  idom_[0] = 0;
  auto intersect = [&](lang::BlockId a, lang::BlockId b) {
    while (a != b) {
      while (rpo_index[static_cast<size_t>(a)] > rpo_index[static_cast<size_t>(b)]) {
        a = idom_[static_cast<size_t>(a)];
      }
      while (rpo_index[static_cast<size_t>(b)] > rpo_index[static_cast<size_t>(a)]) {
        b = idom_[static_cast<size_t>(b)];
      }
    }
    return a;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (lang::BlockId b : rpo) {
      if (b == 0) {
        continue;
      }
      lang::BlockId new_idom = -1;
      for (lang::BlockId p : preds[static_cast<size_t>(b)]) {
        if (idom_[static_cast<size_t>(p)] == -1) {
          continue;  // Unprocessed or unreachable predecessor.
        }
        new_idom = new_idom == -1 ? p : intersect(p, new_idom);
      }
      if (new_idom != -1 && idom_[static_cast<size_t>(b)] != new_idom) {
        idom_[static_cast<size_t>(b)] = new_idom;
        changed = true;
      }
    }
  }
}

bool Dominators::Dominates(lang::BlockId a, lang::BlockId b) const {
  if (idom_[static_cast<size_t>(b)] == -1) {
    return false;  // Unreachable.
  }
  lang::BlockId current = b;
  for (;;) {
    if (current == a) {
      return true;
    }
    const lang::BlockId next = idom_[static_cast<size_t>(current)];
    if (next == current) {
      return a == current;
    }
    current = next;
  }
}

int Dominators::TreeDepth() const {
  int best = 0;
  for (size_t b = 0; b < idom_.size(); ++b) {
    if (idom_[b] == -1) {
      continue;
    }
    int depth = 0;
    lang::BlockId current = static_cast<lang::BlockId>(b);
    while (idom_[static_cast<size_t>(current)] != current) {
      current = idom_[static_cast<size_t>(current)];
      ++depth;
    }
    best = std::max(best, depth);
  }
  return best;
}

// --- Taint -------------------------------------------------------------------

TaintSummary AnalyzeTaint(const lang::IrFunction& fn) {
  TaintSummary summary;
  const size_t num_blocks = fn.blocks.size();
  const size_t num_regs = static_cast<size_t>(fn.reg_count);
  const size_t num_arrays = fn.arrays.size();
  // State per block entry: tainted regs + tainted arrays (array-granular).
  struct State {
    std::vector<bool> regs;
    std::vector<bool> arrays;
    bool operator==(const State&) const = default;
  };
  State empty{std::vector<bool>(num_regs, false), std::vector<bool>(num_arrays, false)};
  std::vector<State> in(num_blocks, empty);
  const auto preds = Predecessors(fn);
  const auto rpo = ReversePostOrder(fn);

  auto transfer = [&](lang::BlockId b, State state) {
    for (const auto& instr : fn.blocks[static_cast<size_t>(b)].instrs) {
      auto tainted = [&state](lang::RegId r) {
        return r != lang::kNoReg && state.regs[static_cast<size_t>(r)];
      };
      switch (instr.op) {
        case lang::IrOpcode::kInput:
          state.regs[static_cast<size_t>(instr.dst)] = true;
          break;
        case lang::IrOpcode::kConst:
          state.regs[static_cast<size_t>(instr.dst)] = false;
          break;
        case lang::IrOpcode::kCopy:
        case lang::IrOpcode::kUnOp:
          state.regs[static_cast<size_t>(instr.dst)] = tainted(instr.a);
          break;
        case lang::IrOpcode::kBinOp:
          state.regs[static_cast<size_t>(instr.dst)] = tainted(instr.a) || tainted(instr.b);
          break;
        case lang::IrOpcode::kArrayLoad:
          state.regs[static_cast<size_t>(instr.dst)] =
              instr.array >= 0 && state.arrays[static_cast<size_t>(instr.array)];
          break;
        case lang::IrOpcode::kArrayStore:
          if (instr.array >= 0 && tainted(instr.b)) {
            state.arrays[static_cast<size_t>(instr.array)] = true;
          }
          break;
        case lang::IrOpcode::kCall: {
          // Conservative: result of a call with tainted args is tainted.
          bool any = false;
          for (lang::RegId arg : instr.args) {
            if (tainted(arg)) {
              any = true;
            }
          }
          if (instr.dst != lang::kNoReg) {
            state.regs[static_cast<size_t>(instr.dst)] = any;
          }
          break;
        }
        default:
          break;
      }
    }
    return state;
  };

  // Fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (lang::BlockId b : rpo) {
      State new_in = empty;
      for (lang::BlockId p : preds[static_cast<size_t>(b)]) {
        const State out_p = transfer(p, in[static_cast<size_t>(p)]);
        for (size_t r = 0; r < num_regs; ++r) {
          if (out_p.regs[r]) {
            new_in.regs[r] = true;
          }
        }
        for (size_t a = 0; a < num_arrays; ++a) {
          if (out_p.arrays[a]) {
            new_in.arrays[a] = true;
          }
        }
      }
      if (!(new_in == in[static_cast<size_t>(b)])) {
        in[static_cast<size_t>(b)] = std::move(new_in);
        changed = true;
      }
    }
  }

  // Final counting pass.
  for (lang::BlockId b : rpo) {
    State state = in[static_cast<size_t>(b)];
    for (const auto& instr : fn.blocks[static_cast<size_t>(b)].instrs) {
      auto tainted = [&state](lang::RegId r) {
        return r != lang::kNoReg && state.regs[static_cast<size_t>(r)];
      };
      bool instr_tainted = false;
      switch (instr.op) {
        case lang::IrOpcode::kInput:
          ++summary.input_sites;
          break;
        case lang::IrOpcode::kArrayLoad:
        case lang::IrOpcode::kArrayStore:
          if (tainted(instr.a)) {
            ++summary.tainted_array_indices;
            instr_tainted = true;
          }
          if (instr.op == lang::IrOpcode::kArrayStore && tainted(instr.b)) {
            instr_tainted = true;
          }
          break;
        case lang::IrOpcode::kOutput:
          if (instr.is_sink && tainted(instr.a)) {
            ++summary.tainted_sinks;
            instr_tainted = true;
          }
          break;
        case lang::IrOpcode::kCall:
          for (lang::RegId arg : instr.args) {
            if (tainted(arg)) {
              ++summary.tainted_call_args;
              instr_tainted = true;
            }
          }
          break;
        default:
          if (tainted(instr.a) || tainted(instr.b)) {
            instr_tainted = true;
          }
          break;
      }
      if (instr_tainted) {
        ++summary.tainted_instructions;
      }
      // Advance the state through this instruction (re-run transfer inline).
      switch (instr.op) {
        case lang::IrOpcode::kInput:
          state.regs[static_cast<size_t>(instr.dst)] = true;
          break;
        case lang::IrOpcode::kConst:
          state.regs[static_cast<size_t>(instr.dst)] = false;
          break;
        case lang::IrOpcode::kCopy:
        case lang::IrOpcode::kUnOp:
          state.regs[static_cast<size_t>(instr.dst)] = tainted(instr.a);
          break;
        case lang::IrOpcode::kBinOp:
          state.regs[static_cast<size_t>(instr.dst)] = tainted(instr.a) || tainted(instr.b);
          break;
        case lang::IrOpcode::kArrayLoad:
          state.regs[static_cast<size_t>(instr.dst)] =
              instr.array >= 0 && state.arrays[static_cast<size_t>(instr.array)];
          break;
        case lang::IrOpcode::kArrayStore:
          if (instr.array >= 0 && tainted(instr.b)) {
            state.arrays[static_cast<size_t>(instr.array)] = true;
          }
          break;
        case lang::IrOpcode::kCall: {
          bool any = false;
          for (lang::RegId arg : instr.args) {
            if (tainted(arg)) {
              any = true;
            }
          }
          if (instr.dst != lang::kNoReg) {
            state.regs[static_cast<size_t>(instr.dst)] = any;
          }
          break;
        }
        default:
          break;
      }
    }
    const auto& term = fn.blocks[static_cast<size_t>(b)].term;
    if (term.kind == lang::TerminatorKind::kBranch && term.cond != lang::kNoReg &&
        state.regs[static_cast<size_t>(term.cond)]) {
      ++summary.tainted_branches;
    }
  }
  return summary;
}

metrics::FeatureVector DataflowFeatures(const lang::IrModule& module,
                                        support::Deadline* deadline) {
  support::FaultInjector::Global().MaybeFail(support::FaultSite::kDataflow,
                                             lang::ModuleFingerprint(module));
  metrics::FeatureVector fv;
  double mean_reaching_sum = 0.0;
  int max_live = 0;
  int max_dom_depth = 0;
  TaintSummary total;
  for (const auto& fn : module.functions) {
    if (deadline != nullptr) {
      // Weight by block count: the fixpoint analyses below are linear-ish in
      // blocks per iteration, so the watchdog tracks real work.
      deadline->TickOrThrow("dataflow", fn.blocks.size() + 1);
    }
    const ReachingDefinitions rd(fn);
    mean_reaching_sum += rd.MeanReachingPerUse();
    const Liveness lv(fn);
    max_live = std::max(max_live, lv.MaxLiveAtEntry());
    const Dominators dom(fn);
    max_dom_depth = std::max(max_dom_depth, dom.TreeDepth());
    const TaintSummary ts = AnalyzeTaint(fn);
    total.tainted_instructions += ts.tainted_instructions;
    total.tainted_branches += ts.tainted_branches;
    total.tainted_array_indices += ts.tainted_array_indices;
    total.tainted_sinks += ts.tainted_sinks;
    total.tainted_call_args += ts.tainted_call_args;
    total.input_sites += ts.input_sites;
  }
  const double fn_count =
      module.functions.empty() ? 1.0 : static_cast<double>(module.functions.size());
  fv.Set("dataflow.mean_reaching_defs", mean_reaching_sum / fn_count);
  fv.Set("dataflow.max_live_regs", static_cast<double>(max_live));
  fv.Set("dataflow.max_dom_depth", static_cast<double>(max_dom_depth));
  fv.Set("dataflow.tainted_instructions", static_cast<double>(total.tainted_instructions));
  fv.Set("dataflow.tainted_branches", static_cast<double>(total.tainted_branches));
  fv.Set("dataflow.tainted_array_indices",
         static_cast<double>(total.tainted_array_indices));
  fv.Set("dataflow.tainted_sinks", static_cast<double>(total.tainted_sinks));
  fv.Set("dataflow.tainted_call_args", static_cast<double>(total.tainted_call_args));
  fv.Set("dataflow.input_sites", static_cast<double>(total.input_sites));
  return fv;
}

}  // namespace dataflow
