// Interval abstract interpretation (§4.1 cites Cousot & Cousot's abstract
// interpretation as a source of code properties).
//
// A classic widening/narrowing interval analysis over the MiniC IR: every
// register carries a [lo, hi] range, arrays carry a value-range summary, and
// loop heads widen after a bounded number of visits. The analysis proves
// array accesses in-bounds and divisors non-zero where it can; everything it
// cannot prove is a "possible" finding. Being a sound may-analysis it has
// false positives but no false negatives within the modelled semantics —
// the opposite trade to the lint pass, and costlier than both lint and
// cheaper than symbolic execution; the three are compared in
// bench/ablation_analyses.
#ifndef SRC_DATAFLOW_INTERVALS_H_
#define SRC_DATAFLOW_INTERVALS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/dataflow/engine.h"
#include "src/lang/ir.h"
#include "src/metrics/feature_vector.h"
#include "src/support/constant_interval.h"
#include "src/support/deadline.h"

namespace dataflow {

// A (possibly unbounded) integer interval. Empty intervals are normalised to
// the canonical Bottom().
struct Interval {
  // Sentinels: kMin/kMax stand for -inf/+inf.
  static constexpr int64_t kMin = INT64_MIN;
  static constexpr int64_t kMax = INT64_MAX;

  int64_t lo = kMin;
  int64_t hi = kMax;
  bool bottom = false;  // Unreachable / no value.

  static Interval Top() { return {}; }
  static Interval Bottom() {
    Interval i;
    i.bottom = true;
    return i;
  }
  static Interval Const(int64_t v) { return {v, v, false}; }
  static Interval Range(int64_t lo, int64_t hi) {
    if (lo > hi) {
      return Bottom();
    }
    return {lo, hi, false};
  }

  bool IsTop() const { return !bottom && lo == kMin && hi == kMax; }
  bool Contains(int64_t v) const { return !bottom && lo <= v && v <= hi; }
  bool IsConst() const { return !bottom && lo == hi; }

  bool operator==(const Interval&) const = default;
};

// Conversion to/from the support-layer constant-interval algebra. The
// mapping is the canonical bijection between sentinel intervals and
// *normalised* ConstantIntervals: lo == kMin <-> min undefined, hi == kMax
// <-> max undefined, Bottom <-> Empty. FromConstantInterval normalises
// (a defined bound sitting exactly on an int64 extreme becomes the
// corresponding sentinel), so the roundtrip conflates the genuine extreme
// constants with infinities — exactly as the sentinel domain itself does.
support::ConstantInterval ToConstantInterval(const Interval& iv);
Interval FromConstantInterval(const support::ConstantInterval& ci);

// Lattice and arithmetic operations (all saturating; documented in the .cc).
Interval Join(const Interval& a, const Interval& b);
Interval Meet(const Interval& a, const Interval& b);
Interval Widen(const Interval& older, const Interval& newer);
Interval AddI(const Interval& a, const Interval& b);
Interval SubI(const Interval& a, const Interval& b);
Interval MulI(const Interval& a, const Interval& b);
Interval NegI(const Interval& a);
// Division/modulo assuming the divisor excludes zero (the analysis refines
// the divisor interval first).
Interval DivI(const Interval& a, const Interval& b);
Interval RemI(const Interval& a, const Interval& b);

// A finding the analysis could not discharge.
struct AiFinding {
  enum class Kind { kPossibleOutOfBounds, kPossibleDivByZero };
  Kind kind;
  std::string function;
  int line = 0;
};

struct IntervalReport {
  long long array_accesses = 0;
  long long proven_in_bounds = 0;
  long long divisions = 0;
  long long proven_nonzero_divisor = 0;
  std::vector<AiFinding> findings;  // Deterministic order.
  // Proven per-register ranges at each block's entry, in sentinel-Interval
  // currency for both modes. Filled only when
  // IntervalOptions::record_block_ranges is set; unreachable blocks keep an
  // empty register vector. Used by the concrete-trace cross-check in
  // interp_property_test.
  std::vector<std::vector<Interval>> block_entry_regs;
};

struct IntervalOptions {
  // Visits of a block before widening kicks in.
  int widen_after = 3;
  // Iteration budget per function (defensive bound; widening guarantees
  // termination well below this).
  int max_iterations = 1000;
  // Value range assumed for input(): full width by default.
  Interval input_range = Interval::Top();
  // Cooperative watchdog, ticked once per worklist visit; expiry throws
  // support::DeadlineExceeded out of the analysis. Not owned.
  support::Deadline* deadline = nullptr;
  // Record the stable per-block entry ranges into
  // IntervalReport::block_entry_regs (off by default; the vectors are
  // O(blocks * regs)).
  bool record_block_ranges = false;
  // Selects both the CFG-fact provenance (shared CfgView vs inline
  // recomputation) and the value domain: engine mode runs on the
  // support::ConstantInterval algebra, reference mode on the original
  // sentinel domain. The FIFO worklist and every transfer/refinement rule
  // are one shared template: widening makes interval results
  // visitation-order-sensitive, so the analyzer control flow is kept
  // verbatim and only the domain representation differs. The two domains
  // are related by the ToConstantInterval/FromConstantInterval bijection
  // (engine values stay normalised), so both modes produce identical
  // reports by construction.
  DataflowMode mode = DefaultDataflowMode();
};

// Analyzes one function (intraprocedural; calls return Top). `cfg`, when
// given, must view `fn`; it supplies precomputed CFG facts in engine mode
// (DataflowFeatures-style sharing) and is ignored in reference mode.
IntervalReport AnalyzeIntervals(const lang::IrFunction& fn,
                                const IntervalOptions& options = {},
                                const CfgView* cfg = nullptr);

// Whole-module aggregation into "ai.*" features.
metrics::FeatureVector IntervalFeatures(const lang::IrModule& module,
                                        const IntervalOptions& options = {});

}  // namespace dataflow

#endif  // SRC_DATAFLOW_INTERVALS_H_
