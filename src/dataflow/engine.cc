#include "src/dataflow/engine.h"

#include <cstdlib>
#include <utility>

namespace dataflow {

DataflowMode DefaultDataflowMode() {
  static const DataflowMode mode = [] {
    const char* text = std::getenv("CLAIR_DATAFLOW");
    if (text != nullptr && std::string_view(text) == "reference") {
      return DataflowMode::kReference;
    }
    return DataflowMode::kEngine;
  }();
  return mode;
}

CfgView::CfgView(const lang::IrFunction& function)
    : fn(&function), num_blocks(function.blocks.size()) {
  rpo_index.assign(num_blocks, -1);
  preds.resize(num_blocks);
  succs.resize(num_blocks);
  widen_point.assign(num_blocks, false);
  if (num_blocks == 0) {
    return;  // No entry block; every list stays empty.
  }
  for (size_t b = 0; b < num_blocks; ++b) {
    succs[b] = function.Successors(static_cast<lang::BlockId>(b));
    for (const lang::BlockId succ : succs[b]) {
      preds[static_cast<size_t>(succ)].push_back(static_cast<lang::BlockId>(b));
    }
  }
  // Iterative DFS from the entry with explicit post-order emission.
  std::vector<bool> seen(num_blocks, false);
  std::vector<lang::BlockId> post;
  post.reserve(num_blocks);
  std::vector<std::pair<lang::BlockId, size_t>> stack;
  stack.emplace_back(0, 0);
  seen[0] = true;
  while (!stack.empty()) {
    auto& [block, child] = stack.back();
    const auto& children = succs[static_cast<size_t>(block)];
    if (child < children.size()) {
      const lang::BlockId next = children[child++];
      if (!seen[static_cast<size_t>(next)]) {
        seen[static_cast<size_t>(next)] = true;
        stack.emplace_back(next, 0);
      }
    } else {
      post.push_back(block);
      stack.pop_back();
    }
  }
  rpo.assign(post.rbegin(), post.rend());
  for (size_t i = 0; i < rpo.size(); ++i) {
    rpo_index[static_cast<size_t>(rpo[i])] = static_cast<int32_t>(i);
  }
  // Back edges: u->v with rpo(u) >= rpo(v) (the self-loop counts).
  for (size_t u = 0; u < num_blocks; ++u) {
    if (rpo_index[u] < 0) {
      continue;
    }
    for (const lang::BlockId v : succs[u]) {
      if (rpo_index[static_cast<size_t>(v)] >= 0 &&
          rpo_index[u] >= rpo_index[static_cast<size_t>(v)]) {
        widen_point[static_cast<size_t>(v)] = true;
      }
    }
  }
}

FixpointEngine::FixpointEngine(const CfgView& cfg, Direction direction,
                               bool include_unreachable) {
  order_.reserve(include_unreachable ? cfg.num_blocks : cfg.rpo.size());
  if (direction == Direction::kForward) {
    order_ = cfg.rpo;
  } else {
    order_.assign(cfg.rpo.rbegin(), cfg.rpo.rend());
  }
  if (include_unreachable) {
    // Unreachable facts can depend on reachable ones (dead blocks branching
    // into live code) but never the reverse, so they sort after the RPO part.
    if (direction == Direction::kForward) {
      for (size_t b = 0; b < cfg.num_blocks; ++b) {
        if (!cfg.Reachable(static_cast<lang::BlockId>(b))) {
          order_.push_back(static_cast<lang::BlockId>(b));
        }
      }
    } else {
      for (size_t b = cfg.num_blocks; b-- > 0;) {
        if (!cfg.Reachable(static_cast<lang::BlockId>(b))) {
          order_.push_back(static_cast<lang::BlockId>(b));
        }
      }
    }
  }
  std::vector<int32_t> position(cfg.num_blocks, -1);
  for (size_t i = 0; i < order_.size(); ++i) {
    position[static_cast<size_t>(order_[i])] = static_cast<int32_t>(i);
  }
  deps_.resize(order_.size());
  for (size_t i = 0; i < order_.size(); ++i) {
    const auto block = static_cast<size_t>(order_[i]);
    const auto& dependents =
        direction == Direction::kForward ? cfg.succs[block] : cfg.preds[block];
    deps_[i].reserve(dependents.size());
    for (const lang::BlockId dep : dependents) {
      const int32_t dep_position = position[static_cast<size_t>(dep)];
      if (dep_position >= 0) {
        deps_[i].push_back(dep_position);
      }
    }
  }
}

}  // namespace dataflow
