// Seeded random IrFunction generator for dataflow testing and benching.
//
// Builds structurally messy CFGs on purpose: forward edges, back edges
// (irreducible loops included), unreachable blocks that branch back into
// live code, self-loops, multiple defs per register, array traffic, taint
// sources/sinks, and conditional branches on computed registers. The intent
// is to exercise every corner the engine/reference equivalence proof relies
// on, not to look like lowered MiniC.
#ifndef SRC_DATAFLOW_RANDOM_CFG_H_
#define SRC_DATAFLOW_RANDOM_CFG_H_

#include <string>

#include "src/lang/ir.h"
#include "src/support/rng.h"

namespace dataflow {

struct RandomCfgOptions {
  int min_blocks = 1;
  int max_blocks = 64;
  int max_instrs_per_block = 8;
  int num_regs = 12;
  int num_arrays = 2;
  // Probability that a block's terminator is a conditional branch (the rest
  // split between jumps and returns).
  double branch_prob = 0.55;
  double return_prob = 0.12;
};

inline lang::IrFunction MakeRandomFunction(support::Rng& rng,
                                           const RandomCfgOptions& options = {}) {
  lang::IrFunction fn;
  fn.name = "synthetic";
  const int num_blocks =
      options.min_blocks +
      static_cast<int>(rng.NextBelow(
          static_cast<uint64_t>(options.max_blocks - options.min_blocks + 1)));
  fn.reg_count = options.num_regs;
  fn.reg_names.resize(static_cast<size_t>(options.num_regs));
  for (int r = 0; r < options.num_regs; ++r) {
    fn.reg_names[static_cast<size_t>(r)] = "r" + std::to_string(r);
  }
  for (int a = 0; a < options.num_arrays; ++a) {
    lang::IrArray array;
    array.name = "arr" + std::to_string(a);
    array.size = 4 + static_cast<int64_t>(rng.NextBelow(12));
    fn.arrays.push_back(array);
  }
  // A couple of parameters so liveness has upward-exposed entry uses.
  if (options.num_regs >= 2) {
    fn.param_regs = {0, 1};
  }
  auto reg = [&] {
    return static_cast<lang::RegId>(rng.NextBelow(static_cast<uint64_t>(options.num_regs)));
  };
  auto block_id = [&] {
    return static_cast<lang::BlockId>(rng.NextBelow(static_cast<uint64_t>(num_blocks)));
  };
  fn.blocks.resize(static_cast<size_t>(num_blocks));
  for (int b = 0; b < num_blocks; ++b) {
    lang::IrBlock& block = fn.blocks[static_cast<size_t>(b)];
    const int num_instrs =
        static_cast<int>(rng.NextBelow(static_cast<uint64_t>(options.max_instrs_per_block + 1)));
    for (int i = 0; i < num_instrs; ++i) {
      lang::IrInstr instr;
      instr.line = b * 100 + i;
      switch (rng.NextBelow(10)) {
        case 0:
          instr.op = lang::IrOpcode::kConst;
          instr.dst = reg();
          instr.imm = static_cast<int64_t>(rng.NextBelow(200)) - 100;
          break;
        case 1:
          instr.op = lang::IrOpcode::kInput;
          instr.dst = reg();
          break;
        case 2:
          instr.op = lang::IrOpcode::kCopy;
          instr.dst = reg();
          instr.a = reg();
          break;
        case 3:
          instr.op = lang::IrOpcode::kUnOp;
          instr.dst = reg();
          instr.a = reg();
          instr.unary_op = rng.NextBool() ? lang::UnaryOp::kNeg : lang::UnaryOp::kNot;
          break;
        case 4:
        case 5:
          instr.op = lang::IrOpcode::kBinOp;
          instr.dst = reg();
          instr.a = reg();
          instr.b = reg();
          instr.binary_op = rng.NextBool() ? lang::BinaryOp::kAdd
                           : rng.NextBool() ? lang::BinaryOp::kSub
                                            : lang::BinaryOp::kLt;
          break;
        case 6:
          if (!fn.arrays.empty()) {
            instr.op = lang::IrOpcode::kArrayLoad;
            instr.dst = reg();
            instr.a = reg();
            instr.array = static_cast<lang::ArrayId>(rng.NextBelow(fn.arrays.size()));
          } else {
            instr.op = lang::IrOpcode::kConst;
            instr.dst = reg();
          }
          break;
        case 7:
          if (!fn.arrays.empty()) {
            instr.op = lang::IrOpcode::kArrayStore;
            instr.a = reg();
            instr.b = reg();
            instr.array = static_cast<lang::ArrayId>(rng.NextBelow(fn.arrays.size()));
          } else {
            instr.op = lang::IrOpcode::kCopy;
            instr.dst = reg();
            instr.a = reg();
          }
          break;
        case 8: {
          instr.op = lang::IrOpcode::kCall;
          instr.callee = "callee";
          if (rng.NextBool(0.7)) {
            instr.dst = reg();
          }
          const int num_args = static_cast<int>(rng.NextBelow(3));
          for (int arg = 0; arg < num_args; ++arg) {
            instr.args.push_back(reg());
          }
          break;
        }
        default:
          instr.op = lang::IrOpcode::kOutput;
          instr.a = reg();
          instr.is_sink = rng.NextBool(0.3);
          break;
      }
      block.instrs.push_back(std::move(instr));
    }
    // Terminator: edges may target *any* block, including earlier ones (back
    // edges / irreducible regions) and the block itself (self-loops).
    const double roll = rng.NextDouble();
    if (roll < options.branch_prob && num_blocks > 1) {
      block.term.kind = lang::TerminatorKind::kBranch;
      block.term.cond = reg();
      block.term.target_true = block_id();
      block.term.target_false = block_id();
    } else if (roll < options.branch_prob + options.return_prob || num_blocks == 1) {
      block.term.kind = lang::TerminatorKind::kReturn;
      if (rng.NextBool()) {
        block.term.value = reg();
      }
    } else {
      block.term.kind = lang::TerminatorKind::kJump;
      block.term.target_true = block_id();
    }
    block.term.line = b * 100 + 99;
  }
  return fn;
}

}  // namespace dataflow

#endif  // SRC_DATAFLOW_RANDOM_CFG_H_
