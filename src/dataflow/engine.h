// Shared dataflow kernel: per-function CFG facts computed once, plus a
// priority-worklist fixpoint driver reused by every dataflow client.
//
// Before this kernel existed, each analysis recomputed reverse post-order and
// predecessor lists itself and iterated `while (changed)` sweeps over the
// whole CFG. The kernel replaces that with:
//
//   - CfgView: RPO, RPO indices, predecessor/successor lists, and back-edge
//     (widening) targets, computed once per function and shared by
//     ReachingDefinitions / Liveness / Dominators / AnalyzeTaint /
//     AnalyzeIntervals;
//   - FixpointEngine: a worklist keyed by RPO position (reverse RPO for
//     backward problems) with per-block dirty bits, so only blocks whose
//     inputs actually changed are revisited. For the monotone set problems it
//     drives, chaotic iteration converges to the same unique least fixpoint
//     as the reference full-program sweeps — scheduling affects time, never
//     results.
//
// Every analysis keeps its original dense implementation behind
// DataflowMode::kReference as an oracle; randomized-CFG tests and the
// dataflow_fixpoint bench cross-check the two modes.
#ifndef SRC_DATAFLOW_ENGINE_H_
#define SRC_DATAFLOW_ENGINE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/lang/ir.h"
#include "src/support/deadline.h"

namespace dataflow {

enum class DataflowMode {
  kEngine,     // Word-packed bitsets + priority worklist (default).
  kReference,  // Original dense full-sweep implementations (oracle).
};

// Process-wide default, resolved once from CLAIR_DATAFLOW
// ("reference" selects the oracle; anything else selects the engine).
DataflowMode DefaultDataflowMode();

// CFG facts computed once per function and shared across all analyses.
struct CfgView {
  explicit CfgView(const lang::IrFunction& fn);

  bool Reachable(lang::BlockId block) const {
    return rpo_index[static_cast<size_t>(block)] >= 0;
  }

  const lang::IrFunction* fn = nullptr;
  size_t num_blocks = 0;
  // Reachable blocks in reverse post-order; empty for zero-block functions.
  std::vector<lang::BlockId> rpo;
  // Block -> position in `rpo`, -1 for unreachable blocks.
  std::vector<int32_t> rpo_index;
  std::vector<std::vector<lang::BlockId>> preds;
  std::vector<std::vector<lang::BlockId>> succs;
  // Back-edge targets (u->v with rpo(u) >= rpo(v)): widening points for the
  // interval analysis.
  std::vector<bool> widen_point;
};

// Min-heap worklist over RPO positions with per-entry dirty bits; a block
// already queued is never queued twice, and the lowest-priority (earliest in
// iteration order) block is always processed next.
class PriorityWorklist {
 public:
  explicit PriorityWorklist(size_t size) : queued_(size, false) {}

  void Push(int32_t position) {
    if (queued_[static_cast<size_t>(position)]) {
      return;
    }
    queued_[static_cast<size_t>(position)] = true;
    heap_.push_back(position);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<int32_t>());
  }

  int32_t Pop() {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<int32_t>());
    const int32_t position = heap_.back();
    heap_.pop_back();
    queued_[static_cast<size_t>(position)] = false;
    return position;
  }

  bool Empty() const { return heap_.empty(); }

 private:
  std::vector<int32_t> heap_;
  std::vector<bool> queued_;
};

// Priority-worklist driver. `transfer(block)` recomputes one block's facts
// and returns true when the block's *output* changed; the engine then queues
// the block's dependents (successors for forward problems, predecessors for
// backward ones). Iteration order is a pure function of the CFG, so results
// are deterministic.
class FixpointEngine {
 public:
  enum class Direction { kForward, kBackward };

  // `include_unreachable` appends blocks outside the RPO (dead code) to the
  // iteration order — after the reachable blocks, in descending numeric order
  // for backward problems and ascending for forward ones — with dependency
  // edges spanning the whole graph. Liveness needs this: the reference
  // full-graph sweep assigns live-in facts to unreachable blocks (which can
  // branch into live code), and those facts feed MaxLiveAtEntry.
  FixpointEngine(const CfgView& cfg, Direction direction,
                 bool include_unreachable = false);

  // Runs to fixpoint. Every block is visited at least once: the first pass
  // walks the iteration order directly (no heap traffic), queueing only the
  // already-visited dependents of blocks whose output changed; the drain
  // phase then processes stragglers in priority order. `deadline`, when
  // given, is ticked once per visit under the given stage tag.
  template <typename Transfer>
  void Run(Transfer&& transfer, support::Deadline* deadline = nullptr,
           const char* stage = "dataflow") {
    PriorityWorklist worklist(order_.size());
    for (size_t position = 0; position < order_.size(); ++position) {
      if (deadline != nullptr) {
        deadline->TickOrThrow(stage);
      }
      if (transfer(order_[position])) {
        for (const int32_t dependent : deps_[position]) {
          // Dependents still ahead in this pass get visited anyway.
          if (dependent <= static_cast<int32_t>(position)) {
            worklist.Push(dependent);
          }
        }
      }
    }
    while (!worklist.Empty()) {
      const int32_t position = worklist.Pop();
      if (deadline != nullptr) {
        deadline->TickOrThrow(stage);
      }
      if (transfer(order_[static_cast<size_t>(position)])) {
        for (const int32_t dependent : deps_[static_cast<size_t>(position)]) {
          worklist.Push(dependent);
        }
      }
    }
  }

 private:
  // Reachable blocks in iteration order (RPO forward, reverse RPO backward).
  std::vector<lang::BlockId> order_;
  // Per position, the positions to re-queue when that block's output changes.
  std::vector<std::vector<int32_t>> deps_;
};

}  // namespace dataflow

#endif  // SRC_DATAFLOW_ENGINE_H_
