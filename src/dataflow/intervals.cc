#include "src/dataflow/intervals.h"

#include <algorithm>
#include <deque>

#include "src/lang/ir_walk.h"
#include "src/support/fault_injection.h"

namespace dataflow {
namespace {

bool IsInf(int64_t v) { return v == Interval::kMin || v == Interval::kMax; }

// Saturating add of possibly-infinite bounds. inf + finite = inf;
// (-inf) + (+inf) never occurs for valid interval corners of the same side.
int64_t SatAdd(int64_t a, int64_t b) {
  if (a == Interval::kMin || b == Interval::kMin) {
    return Interval::kMin;
  }
  if (a == Interval::kMax || b == Interval::kMax) {
    return Interval::kMax;
  }
  int64_t out;
  if (__builtin_add_overflow(a, b, &out)) {
    return a > 0 ? Interval::kMax : Interval::kMin;
  }
  return out;
}

int64_t SatNeg(int64_t a) {
  if (a == Interval::kMin) {
    return Interval::kMax;
  }
  if (a == Interval::kMax) {
    return Interval::kMin;
  }
  return -a;
}

int64_t SatMul(int64_t a, int64_t b) {
  if (a == 0 || b == 0) {
    return 0;
  }
  const bool negative = (a < 0) != (b < 0);
  if (IsInf(a) || IsInf(b)) {
    return negative ? Interval::kMin : Interval::kMax;
  }
  int64_t out;
  if (__builtin_mul_overflow(a, b, &out)) {
    return negative ? Interval::kMin : Interval::kMax;
  }
  return out;
}

}  // namespace

Interval Join(const Interval& a, const Interval& b) {
  if (a.bottom) {
    return b;
  }
  if (b.bottom) {
    return a;
  }
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi), false};
}

Interval Meet(const Interval& a, const Interval& b) {
  if (a.bottom || b.bottom) {
    return Interval::Bottom();
  }
  return Interval::Range(std::max(a.lo, b.lo), std::min(a.hi, b.hi));
}

Interval Widen(const Interval& older, const Interval& newer) {
  if (older.bottom) {
    return newer;
  }
  if (newer.bottom) {
    return older;
  }
  Interval out = older;
  if (newer.lo < older.lo) {
    out.lo = Interval::kMin;
  }
  if (newer.hi > older.hi) {
    out.hi = Interval::kMax;
  }
  return out;
}

Interval AddI(const Interval& a, const Interval& b) {
  if (a.bottom || b.bottom) {
    return Interval::Bottom();
  }
  return {SatAdd(a.lo, b.lo), SatAdd(a.hi, b.hi), false};
}

Interval NegI(const Interval& a) {
  if (a.bottom) {
    return a;
  }
  return {SatNeg(a.hi), SatNeg(a.lo), false};
}

Interval SubI(const Interval& a, const Interval& b) { return AddI(a, NegI(b)); }

Interval MulI(const Interval& a, const Interval& b) {
  if (a.bottom || b.bottom) {
    return Interval::Bottom();
  }
  const int64_t products[] = {SatMul(a.lo, b.lo), SatMul(a.lo, b.hi), SatMul(a.hi, b.lo),
                              SatMul(a.hi, b.hi)};
  return {*std::min_element(products, products + 4),
          *std::max_element(products, products + 4), false};
}

Interval DivI(const Interval& a, const Interval& b) {
  if (a.bottom || b.bottom) {
    return Interval::Bottom();
  }
  if (IsInf(a.lo) || IsInf(a.hi) || IsInf(b.lo) || IsInf(b.hi)) {
    return Interval::Top();
  }
  // Divisor interval must not contain zero (caller refines first).
  std::vector<int64_t> corners;
  for (const int64_t x : {a.lo, a.hi}) {
    for (const int64_t y : {b.lo, b.hi}) {
      if (y != 0) {
        corners.push_back(x / y);
      }
    }
  }
  // If b straddles ±1 around the excluded zero, include ±|a| extremes.
  if (b.lo < 0 && b.hi > 0) {
    for (const int64_t x : {a.lo, a.hi}) {
      corners.push_back(x);
      corners.push_back(SatNeg(x));
    }
  }
  if (corners.empty()) {
    return Interval::Bottom();
  }
  return {*std::min_element(corners.begin(), corners.end()),
          *std::max_element(corners.begin(), corners.end()), false};
}

Interval RemI(const Interval& a, const Interval& b) {
  if (a.bottom || b.bottom) {
    return Interval::Bottom();
  }
  if (IsInf(b.lo) || IsInf(b.hi)) {
    return Interval::Top();
  }
  // |a % b| < max(|b.lo|, |b.hi|); sign follows the dividend.
  const int64_t mag = std::max(b.lo == Interval::kMin ? Interval::kMax : std::abs(b.lo),
                               b.hi == Interval::kMin ? Interval::kMax : std::abs(b.hi));
  if (mag == 0) {
    return Interval::Bottom();
  }
  Interval out = Interval::Range(SatNeg(mag - 1), mag - 1);
  if (!a.bottom && a.lo >= 0) {
    out = Meet(out, Interval::Range(0, Interval::kMax));
  }
  if (!a.bottom && a.hi <= 0) {
    out = Meet(out, Interval::Range(Interval::kMin, 0));
  }
  return out;
}

namespace {

// Per-program-point abstract state.
struct AbsState {
  std::vector<Interval> regs;
  std::vector<Interval> arrays;  // Value summary per local array.
  bool reachable = false;

  bool operator==(const AbsState&) const = default;
};

// A comparison definition used for branch refinement: reg = a OP b.
struct CmpDef {
  lang::BinaryOp op;
  lang::RegId a = lang::kNoReg;
  lang::RegId b = lang::kNoReg;
  int64_t const_a = 0;  // Valid when a == kNoReg.
  int64_t const_b = 0;  // Valid when b == kNoReg.
  bool valid = false;
};

bool IsComparisonOp(lang::BinaryOp op) {
  switch (op) {
    case lang::BinaryOp::kEq:
    case lang::BinaryOp::kNe:
    case lang::BinaryOp::kLt:
    case lang::BinaryOp::kLe:
    case lang::BinaryOp::kGt:
    case lang::BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

class IntervalAnalyzer {
 public:
  IntervalAnalyzer(const lang::IrFunction& fn, const IntervalOptions& options,
                   const CfgView* cfg)
      : fn_(fn), options_(options), cfg_(cfg) {}

  IntervalReport Run() {
    const size_t num_blocks = fn_.blocks.size();
    if (num_blocks == 0) {
      return IntervalReport{};  // No entry block to seed.
    }
    in_.assign(num_blocks, MakeBottom());
    visits_.assign(num_blocks, 0);
    ComputeCfgFacts();
    // Entry: parameters (and everything else) start at Top / zero.
    AbsState entry = MakeBottom();
    entry.reachable = true;
    for (auto& reg : entry.regs) {
      reg = Interval::Const(0);
    }
    for (const lang::RegId param : fn_.param_regs) {
      entry.regs[static_cast<size_t>(param)] = Interval::Top();
    }
    for (size_t a = 0; a < fn_.arrays.size(); ++a) {
      entry.arrays[a] = fn_.arrays[a].is_param ? Interval::Top() : Interval::Const(0);
    }
    in_[0] = entry;

    std::deque<lang::BlockId> worklist = {0};
    int iterations = 0;
    while (!worklist.empty() && ++iterations < options_.max_iterations) {
      if (options_.deadline != nullptr) {
        options_.deadline->TickOrThrow("intervals");
      }
      const lang::BlockId block = worklist.front();
      worklist.pop_front();
      AbsState out = in_[static_cast<size_t>(block)];
      if (!out.reachable) {
        continue;
      }
      CmpDefMap cmp_defs;
      TransferBlock(block, out, cmp_defs, nullptr);
      // Propagate along edges with branch refinement.
      const auto& term = fn_.blocks[static_cast<size_t>(block)].term;
      auto propagate = [&](lang::BlockId succ, const AbsState& state) {
        const auto su = static_cast<size_t>(succ);
        AbsState joined = JoinStates(in_[su], state);
        ++visits_[su];
        // Widening only at loop headers (back-edge targets): widening at
        // ordinary join blocks would erase branch refinements for no
        // termination benefit.
        if (widen_point_[su] && visits_[su] > options_.widen_after) {
          joined = WidenStates(in_[su], joined);
        }
        if (!(joined == in_[su])) {
          in_[su] = std::move(joined);
          worklist.push_back(succ);
        }
      };
      switch (term.kind) {
        case lang::TerminatorKind::kJump:
          propagate(term.target_true, out);
          break;
        case lang::TerminatorKind::kBranch: {
          AbsState true_state = out;
          AbsState false_state = out;
          RefineBranch(term.cond, cmp_defs, /*taken=*/true, true_state);
          RefineBranch(term.cond, cmp_defs, /*taken=*/false, false_state);
          if (!StateIsBottom(true_state)) {
            propagate(term.target_true, true_state);
          }
          if (!StateIsBottom(false_state)) {
            propagate(term.target_false, false_state);
          }
          break;
        }
        case lang::TerminatorKind::kReturn:
        case lang::TerminatorKind::kAbort:
          break;
      }
    }

    // Final checking pass with the stable states.
    IntervalReport report;
    for (size_t b = 0; b < num_blocks; ++b) {
      if (!in_[b].reachable) {
        continue;
      }
#ifdef CLAIR_AI_DEBUG
      std::fprintf(stderr, "bb%zu in:", b);
      for (size_t r = 0; r < in_[b].regs.size(); ++r) {
        const auto& iv = in_[b].regs[r];
        std::fprintf(stderr, " %s=[%lld,%lld]%s", fn_.reg_names[r].c_str(),
                     (long long)iv.lo, (long long)iv.hi, iv.bottom ? "B" : "");
      }
      std::fprintf(stderr, "\n");
#endif
      AbsState state = in_[b];
      CmpDefMap cmp_defs;
      TransferBlock(static_cast<lang::BlockId>(b), state, cmp_defs, &report);
    }
    return report;
  }

 private:
  using CmpDefMap = std::vector<CmpDef>;

  AbsState MakeBottom() const {
    AbsState state;
    state.regs.assign(static_cast<size_t>(fn_.reg_count), Interval::Bottom());
    state.arrays.assign(fn_.arrays.size(), Interval::Bottom());
    state.reachable = false;
    return state;
  }

  static bool StateIsBottom(const AbsState& state) {
    // A refinement that produced an empty interval for some register proves
    // the edge infeasible.
    for (const auto& reg : state.regs) {
      if (reg.bottom) {
        return true;
      }
    }
    return false;
  }

  AbsState JoinStates(const AbsState& a, const AbsState& b) const {
    if (!a.reachable) {
      return b;
    }
    if (!b.reachable) {
      return a;
    }
    AbsState out = a;
    for (size_t r = 0; r < out.regs.size(); ++r) {
      out.regs[r] = Join(a.regs[r], b.regs[r]);
    }
    for (size_t arr = 0; arr < out.arrays.size(); ++arr) {
      out.arrays[arr] = Join(a.arrays[arr], b.arrays[arr]);
    }
    return out;
  }

  AbsState WidenStates(const AbsState& older, const AbsState& newer) const {
    if (!older.reachable) {
      return newer;
    }
    AbsState out = newer;
    for (size_t r = 0; r < out.regs.size(); ++r) {
      out.regs[r] = Widen(older.regs[r], newer.regs[r]);
    }
    for (size_t arr = 0; arr < out.arrays.size(); ++arr) {
      out.arrays[arr] = Widen(older.arrays[arr], newer.arrays[arr]);
    }
    return out;
  }

  // Runs the block's instructions over `state`. Records comparison
  // definitions for branch refinement, and (when `report` is non-null)
  // checks array accesses and divisions.
  void TransferBlock(lang::BlockId block, AbsState& state, CmpDefMap& cmp_defs,
                     IntervalReport* report) {
    cmp_defs.assign(static_cast<size_t>(fn_.reg_count), CmpDef{});
    for (const auto& instr : fn_.blocks[static_cast<size_t>(block)].instrs) {
      TransferInstr(instr, state, cmp_defs, report);
    }
  }

  Interval RegOf(const AbsState& state, lang::RegId reg) const {
    return state.regs[static_cast<size_t>(reg)];
  }

  void TransferInstr(const lang::IrInstr& instr, AbsState& state, CmpDefMap& cmp_defs,
                     IntervalReport* report) {
    auto set = [&state, &cmp_defs](lang::RegId reg, const Interval& value) {
      state.regs[static_cast<size_t>(reg)] = value;
      cmp_defs[static_cast<size_t>(reg)].valid = false;
    };
    switch (instr.op) {
      case lang::IrOpcode::kConst:
        set(instr.dst, Interval::Const(instr.imm));
        break;
      case lang::IrOpcode::kCopy:
        set(instr.dst, RegOf(state, instr.a));
        // Copies preserve the comparison shape for refinement.
        cmp_defs[static_cast<size_t>(instr.dst)] = cmp_defs[static_cast<size_t>(instr.a)];
        break;
      case lang::IrOpcode::kUnOp: {
        const Interval a = RegOf(state, instr.a);
        switch (instr.unary_op) {
          case lang::UnaryOp::kNeg:
            set(instr.dst, NegI(a));
            break;
          case lang::UnaryOp::kNot:
            set(instr.dst, Interval::Range(0, 1));
            break;
          default:
            set(instr.dst, Interval::Top());
            break;
        }
        break;
      }
      case lang::IrOpcode::kBinOp: {
        const Interval a = RegOf(state, instr.a);
        const Interval b = RegOf(state, instr.b);
        Interval value = Interval::Top();
        switch (instr.binary_op) {
          case lang::BinaryOp::kAdd:
            value = AddI(a, b);
            break;
          case lang::BinaryOp::kSub:
            value = SubI(a, b);
            break;
          case lang::BinaryOp::kMul:
            value = MulI(a, b);
            break;
          case lang::BinaryOp::kDiv:
          case lang::BinaryOp::kRem: {
            if (report != nullptr) {
              ++report->divisions;
            }
            const bool divisor_nonzero = !b.Contains(0);
            if (report != nullptr) {
              if (divisor_nonzero) {
                ++report->proven_nonzero_divisor;
              } else {
                report->findings.push_back(
                    {AiFinding::Kind::kPossibleDivByZero, fn_.name, instr.line});
              }
            }
            const Interval refined_divisor =
                divisor_nonzero ? b
                                : Join(Meet(b, Interval::Range(Interval::kMin, -1)),
                                       Meet(b, Interval::Range(1, Interval::kMax)));
            value = instr.binary_op == lang::BinaryOp::kDiv ? DivI(a, refined_divisor)
                                                            : RemI(a, refined_divisor);
            break;
          }
          case lang::BinaryOp::kEq:
          case lang::BinaryOp::kNe:
          case lang::BinaryOp::kLt:
          case lang::BinaryOp::kLe:
          case lang::BinaryOp::kGt:
          case lang::BinaryOp::kGe:
            value = Interval::Range(0, 1);
            break;
          case lang::BinaryOp::kAnd:
          case lang::BinaryOp::kOr:
            value = Interval::Range(0, 1);
            break;
          case lang::BinaryOp::kBitAnd:
            if (!a.bottom && !b.bottom && a.lo >= 0 && b.lo >= 0) {
              value = Interval::Range(0, std::min(a.hi, b.hi));
            }
            break;
          case lang::BinaryOp::kBitOr:
          case lang::BinaryOp::kBitXor:
          case lang::BinaryOp::kShl:
          case lang::BinaryOp::kShr:
            value = Interval::Top();
            break;
        }
        set(instr.dst, value);
        if (IsComparisonOp(instr.binary_op)) {
          CmpDef def;
          def.op = instr.binary_op;
          def.a = instr.a;
          def.b = instr.b;
          def.valid = true;
          cmp_defs[static_cast<size_t>(instr.dst)] = def;
        }
        break;
      }
      case lang::IrOpcode::kLoadGlobal:
        set(instr.dst, Interval::Top());  // Globals are modelled as Top.
        break;
      case lang::IrOpcode::kStoreGlobal:
        break;
      case lang::IrOpcode::kArrayLoad:
      case lang::IrOpcode::kArrayStore: {
        int64_t size = 0;
        Interval summary = Interval::Top();
        if (instr.array >= 0) {
          size = fn_.arrays[static_cast<size_t>(instr.array)].size;
          summary = state.arrays[static_cast<size_t>(instr.array)];
        } else {
          size = 0;  // Global arrays: size known but values Top; look up size.
        }
        if (instr.array < 0) {
          // Global arrays carry Top values; use declared size for checking.
          // (Module reference is unavailable here; size 0 would flag every
          // access, so the caller passes module-level accesses via the
          // whole-module wrapper below. For intraprocedural runs this arm is
          // conservative.)
        }
        const Interval index = RegOf(state, instr.a);
        if (report != nullptr && size > 0) {
          ++report->array_accesses;
          if (!index.bottom && index.lo >= 0 && index.hi < size) {
            ++report->proven_in_bounds;
          } else {
            report->findings.push_back(
                {AiFinding::Kind::kPossibleOutOfBounds, fn_.name, instr.line});
          }
        }
        if (instr.op == lang::IrOpcode::kArrayLoad) {
          set(instr.dst, instr.array >= 0 ? summary : Interval::Top());
        } else if (instr.array >= 0) {
          state.arrays[static_cast<size_t>(instr.array)] =
              Join(summary, RegOf(state, instr.b));
        }
        break;
      }
      case lang::IrOpcode::kCall:
        if (instr.dst != lang::kNoReg) {
          set(instr.dst, Interval::Top());
        }
        break;
      case lang::IrOpcode::kInput:
        set(instr.dst, options_.input_range);
        break;
      case lang::IrOpcode::kOutput:
      case lang::IrOpcode::kAssume:
        break;
    }
  }

  // Refines `state` given that register `cond` evaluated to `taken` at a
  // branch. Tries the branch block's local comparison map first (covers
  // multi-def variables compared immediately before branching), then the
  // global unique-definition resolver (covers short-circuit diamonds and
  // conditions carried through copies).
  void RefineBranch(lang::RegId cond, const CmpDefMap& cmp_defs, bool taken,
                    AbsState& state) const {
    const CmpDef& def = cmp_defs[static_cast<size_t>(cond)];
    if (def.valid) {
      RefineComparison(def.op, def.a, def.b, taken, state, /*may_write_a=*/true,
                       /*may_write_b=*/true);
      return;
    }
    RefineGlobal(cond, taken, state, /*depth=*/6);
  }

  // --- CFG facts for widening points and cross-block refinement -------------

  struct PredEdge {
    lang::BlockId pred;
    bool is_branch = false;
    bool taken = false;  // Which arm of the predecessor's branch.
  };

  void ComputeCfgFacts() {
    const size_t num_blocks = fn_.blocks.size();
    preds_.assign(num_blocks, {});
    for (size_t b = 0; b < num_blocks; ++b) {
      const auto& term = fn_.blocks[b].term;
      switch (term.kind) {
        case lang::TerminatorKind::kJump:
          preds_[static_cast<size_t>(term.target_true)].push_back(
              {static_cast<lang::BlockId>(b), false, false});
          break;
        case lang::TerminatorKind::kBranch:
          preds_[static_cast<size_t>(term.target_true)].push_back(
              {static_cast<lang::BlockId>(b), true, true});
          preds_[static_cast<size_t>(term.target_false)].push_back(
              {static_cast<lang::BlockId>(b), true, false});
          break;
        default:
          break;
      }
    }
    // Back-edge targets (u->v with rpo(u) >= rpo(v)) are the widening
    // points. Engine mode takes them from the shared CfgView (computed once
    // per function and reused by every analysis); reference mode keeps the
    // original inline recomputation. Both derive the same RPO, so the
    // widening points — and with them the whole analysis — are identical.
    if (options_.mode == DataflowMode::kEngine) {
      if (cfg_ != nullptr) {
        widen_point_ = cfg_->widen_point;
      } else {
        widen_point_ = CfgView(fn_).widen_point;
      }
    } else {
      std::vector<int> rpo_index(num_blocks, -1);
      {
        std::vector<bool> seen(num_blocks, false);
        std::vector<lang::BlockId> post;
        std::vector<std::pair<lang::BlockId, size_t>> stack = {{0, 0}};
        seen[0] = true;
        while (!stack.empty()) {
          auto& [block, child] = stack.back();
          const auto succs = fn_.Successors(block);
          if (child < succs.size()) {
            const lang::BlockId next = succs[child++];
            if (!seen[static_cast<size_t>(next)]) {
              seen[static_cast<size_t>(next)] = true;
              stack.emplace_back(next, 0);
            }
          } else {
            post.push_back(block);
            stack.pop_back();
          }
        }
        // Reverse post-order index: last-finished block (the entry) gets 0.
        for (auto it = post.rbegin(); it != post.rend(); ++it) {
          rpo_index[static_cast<size_t>(*it)] = static_cast<int>(it - post.rbegin());
        }
      }
      widen_point_.assign(num_blocks, false);
      for (size_t u = 0; u < num_blocks; ++u) {
        if (rpo_index[u] < 0) {
          continue;
        }
        for (const lang::BlockId v : fn_.Successors(static_cast<lang::BlockId>(u))) {
          if (rpo_index[static_cast<size_t>(v)] >= 0 &&
              rpo_index[u] >= rpo_index[static_cast<size_t>(v)]) {
            widen_point_[static_cast<size_t>(v)] = true;
          }
        }
      }
    }
    // Definition sites per register.
    def_count_.assign(static_cast<size_t>(fn_.reg_count), 0);
    def_block_.assign(static_cast<size_t>(fn_.reg_count), -1);
    def_instr_.assign(static_cast<size_t>(fn_.reg_count), nullptr);
    for (size_t b = 0; b < num_blocks; ++b) {
      for (const auto& instr : fn_.blocks[b].instrs) {
        const lang::RegId dst = lang::DstOf(instr);
        if (dst != lang::kNoReg) {
          ++def_count_[static_cast<size_t>(dst)];
          def_block_[static_cast<size_t>(dst)] = static_cast<lang::BlockId>(b);
          def_instr_[static_cast<size_t>(dst)] = &instr;
        }
      }
    }
    // Parameters behave like an extra definition.
    for (const lang::RegId param : fn_.param_regs) {
      ++def_count_[static_cast<size_t>(param)];
    }
  }

  bool SingleDef(lang::RegId reg) const {
    return def_count_[static_cast<size_t>(reg)] == 1 &&
           def_instr_[static_cast<size_t>(reg)] != nullptr;
  }

  // Cross-block refinement: resolves `cond` through unique definitions,
  // Truthy wrappers, copies, and the lowered short-circuit diamond (where
  // one definition is a constant that cannot produce the taken value).
  // `depth` bounds recursion through chained conditions.
  void RefineGlobal(lang::RegId cond, bool taken, AbsState& state, int depth) const {
    if (depth <= 0) {
      return;
    }
    // Collect candidate definitions able to produce `taken`.
    const lang::IrInstr* candidate = nullptr;
    int candidates = 0;
    for (const auto& block : fn_.blocks) {
      for (const auto& instr : block.instrs) {
        if (instr.dst != cond || !lang::WritesDst(instr)) {
          continue;
        }
        if (instr.op == lang::IrOpcode::kConst) {
          const bool can_produce = taken ? instr.imm != 0 : instr.imm == 0;
          if (!can_produce) {
            continue;  // This definition cannot be the live one.
          }
        }
        ++candidates;
        candidate = &instr;
      }
    }
    for (const lang::RegId param : fn_.param_regs) {
      if (param == cond) {
        ++candidates;  // Parameter value: opaque definition.
      }
    }
    if (candidates != 1 || candidate == nullptr) {
      return;
    }
    ApplyDefRefinement(*candidate, taken, state, depth);
    // Execution necessarily passed through the definition's block: fold in
    // the branch conditions along its single-predecessor chain.
    lang::BlockId block = def_block_of(*candidate);
    for (int hops = 0; hops < 4 && block >= 0; ++hops) {
      const auto& edges = preds_[static_cast<size_t>(block)];
      if (edges.size() != 1) {
        break;
      }
      const PredEdge& edge = edges[0];
      if (edge.is_branch) {
        const auto& term = fn_.blocks[static_cast<size_t>(edge.pred)].term;
        RefineGlobal(term.cond, edge.taken, state, depth - 1);
      }
      block = edge.pred;
    }
  }

  lang::BlockId def_block_of(const lang::IrInstr& instr) const {
    for (size_t b = 0; b < fn_.blocks.size(); ++b) {
      for (const auto& candidate : fn_.blocks[b].instrs) {
        if (&candidate == &instr) {
          return static_cast<lang::BlockId>(b);
        }
      }
    }
    return -1;
  }

  void ApplyDefRefinement(const lang::IrInstr& def, bool taken, AbsState& state,
                          int depth) const {
    switch (def.op) {
      case lang::IrOpcode::kCopy:
        RefineGlobal(def.a, taken, state, depth - 1);
        return;
      case lang::IrOpcode::kUnOp:
        if (def.unary_op == lang::UnaryOp::kNot) {
          RefineGlobal(def.a, !taken, state, depth - 1);
        }
        return;
      case lang::IrOpcode::kBinOp:
        break;
      default:
        return;
    }
    // Truthy wrapper: (x != 0) / (x == 0).
    const auto is_zero_const = [this](lang::RegId reg) {
      return SingleDef(reg) &&
             def_instr_[static_cast<size_t>(reg)]->op == lang::IrOpcode::kConst &&
             def_instr_[static_cast<size_t>(reg)]->imm == 0;
    };
    if (def.binary_op == lang::BinaryOp::kNe && is_zero_const(def.b)) {
      RefineGlobal(def.a, taken, state, depth - 1);
      return;
    }
    if (def.binary_op == lang::BinaryOp::kEq && is_zero_const(def.b)) {
      RefineGlobal(def.a, !taken, state, depth - 1);
      return;
    }
    if (!IsComparisonOp(def.binary_op)) {
      return;
    }
    // A real comparison: refine its operands (only single-assignment
    // registers may be written — multi-def variables could have changed
    // between the comparison and the branch).
    RefineComparison(def.binary_op, def.a, def.b, taken, state,
                     /*may_write_a=*/SingleDef(def.a),
                     /*may_write_b=*/SingleDef(def.b));
  }

  // Shared comparison-refinement arithmetic; used by both the local (same
  // block, always writable) and global (single-def operands only) paths.
  void RefineComparison(lang::BinaryOp op, lang::RegId reg_a, lang::RegId reg_b,
                        bool taken, AbsState& state, bool may_write_a,
                        bool may_write_b) const {
    if (!taken) {
      switch (op) {
        case lang::BinaryOp::kEq:
          op = lang::BinaryOp::kNe;
          break;
        case lang::BinaryOp::kNe:
          op = lang::BinaryOp::kEq;
          break;
        case lang::BinaryOp::kLt:
          op = lang::BinaryOp::kGe;
          break;
        case lang::BinaryOp::kLe:
          op = lang::BinaryOp::kGt;
          break;
        case lang::BinaryOp::kGt:
          op = lang::BinaryOp::kLe;
          break;
        case lang::BinaryOp::kGe:
          op = lang::BinaryOp::kLt;
          break;
        default:
          return;
      }
    }
    Interval& ia = state.regs[static_cast<size_t>(reg_a)];
    Interval& ib = state.regs[static_cast<size_t>(reg_b)];
    Interval new_a = ia;
    Interval new_b = ib;
    switch (op) {
      case lang::BinaryOp::kEq: {
        const Interval met = Meet(ia, ib);
        new_a = met;
        new_b = met;
        break;
      }
      case lang::BinaryOp::kNe:
        if (ib.IsConst() && ia.Contains(ib.lo)) {
          if (ia.lo == ib.lo) {
            new_a = Interval::Range(SatAdd(ia.lo, 1), ia.hi);
          } else if (ia.hi == ib.lo) {
            new_a = Interval::Range(ia.lo, SatAdd(ia.hi, -1));
          }
        }
        break;
      case lang::BinaryOp::kLt:
        new_a = Meet(ia, Interval::Range(Interval::kMin, SatAdd(ib.hi, -1)));
        new_b = Meet(ib, Interval::Range(SatAdd(ia.lo, 1), Interval::kMax));
        break;
      case lang::BinaryOp::kLe:
        new_a = Meet(ia, Interval::Range(Interval::kMin, ib.hi));
        new_b = Meet(ib, Interval::Range(ia.lo, Interval::kMax));
        break;
      case lang::BinaryOp::kGt:
        new_a = Meet(ia, Interval::Range(SatAdd(ib.lo, 1), Interval::kMax));
        new_b = Meet(ib, Interval::Range(Interval::kMin, SatAdd(ia.hi, -1)));
        break;
      case lang::BinaryOp::kGe:
        new_a = Meet(ia, Interval::Range(ib.lo, Interval::kMax));
        new_b = Meet(ib, Interval::Range(Interval::kMin, ia.hi));
        break;
      default:
        return;
    }
    if (may_write_a) {
      ia = new_a;
    }
    if (may_write_b) {
      ib = new_b;
    }
  }

  const lang::IrFunction& fn_;
  IntervalOptions options_;
  const CfgView* cfg_ = nullptr;  // Shared CFG facts (engine mode); not owned.
  std::vector<AbsState> in_;
  std::vector<int> visits_;
  std::vector<std::vector<PredEdge>> preds_;
  std::vector<bool> widen_point_;
  std::vector<int> def_count_;
  std::vector<lang::BlockId> def_block_;
  std::vector<const lang::IrInstr*> def_instr_;
};

}  // namespace

IntervalReport AnalyzeIntervals(const lang::IrFunction& fn, const IntervalOptions& options,
                                const CfgView* cfg) {
  return IntervalAnalyzer(fn, options, cfg).Run();
}

metrics::FeatureVector IntervalFeatures(const lang::IrModule& module,
                                        const IntervalOptions& options) {
  support::FaultInjector::Global().MaybeFail(support::FaultSite::kIntervals,
                                             lang::ModuleFingerprint(module));
  metrics::FeatureVector fv;
  long long accesses = 0;
  long long proven = 0;
  long long divisions = 0;
  long long proven_div = 0;
  long long possible_oob = 0;
  long long possible_div0 = 0;
  for (const auto& fn : module.functions) {
    const IntervalReport report = AnalyzeIntervals(fn, options);  // CfgView built per mode inside.
    accesses += report.array_accesses;
    proven += report.proven_in_bounds;
    divisions += report.divisions;
    proven_div += report.proven_nonzero_divisor;
    for (const auto& finding : report.findings) {
      if (finding.kind == AiFinding::Kind::kPossibleOutOfBounds) {
        ++possible_oob;
      } else {
        ++possible_div0;
      }
    }
  }
  fv.Set("ai.array_accesses", static_cast<double>(accesses));
  fv.Set("ai.proven_in_bounds", static_cast<double>(proven));
  fv.Set("ai.possible_oob", static_cast<double>(possible_oob));
  fv.Set("ai.divisions", static_cast<double>(divisions));
  fv.Set("ai.proven_nonzero_divisor", static_cast<double>(proven_div));
  fv.Set("ai.possible_div0", static_cast<double>(possible_div0));
  if (accesses > 0) {
    fv.Set("ai.unproven_access_ratio",
           static_cast<double>(possible_oob) / static_cast<double>(accesses));
  }
  return fv;
}

}  // namespace dataflow
